// Package tellme is an interactive recommendation system: a Go
// implementation of Alon, Awerbuch, Azar and Patt-Shamir, "Tell Me Who I
// Am: An Interactive Recommendation System" (SPAA 2006).
//
// n players each hold an unknown 0/1 preference vector over m objects.
// A player can learn one of its own grades by probing an object (unit
// cost); every probe result is posted on a shared billboard. Players
// with similar taste — an (α,D)-typical community — can split the
// probing work: the paper's algorithms let every member of a large
// community reconstruct its entire preference vector to within a
// constant factor of the community diameter using only polylogarithmic
// probes per player, with no assumptions on the preference matrix.
//
// # Quick start
//
//	inst := tellme.PlantedInstance(1024, 1024, 0.5, 8, 42)
//	rep, err := tellme.Run(inst, tellme.Options{
//		Algorithm: tellme.AlgoAuto, // diameter unknown
//		Alpha:     0.5,
//		Seed:      7,
//	})
//	// rep.Outputs[p] is player p's reconstructed preference vector;
//	// rep.MaxProbes is the paper's "rounds" cost measure.
//
// The underlying algorithms are also available individually through
// Options.Algorithm: AlgoZero (identical communities, Theorem 3.1),
// AlgoSmall (small diameter, Theorem 4.4), AlgoLarge (large diameter,
// Theorem 5.4), AlgoMain (known-D dispatcher, Fig. 1), AlgoAuto
// (unknown D, Section 6) and AlgoAnytime (unknown α and D, Section 6).
package tellme

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/metrics"
	"tellme/internal/netboard"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
	"tellme/internal/trace"
	"tellme/internal/wire"
)

// Vector is a packed binary preference vector.
type Vector = bitvec.Vector

// Partial is a preference vector over {0,1,?}; algorithm outputs may
// leave a bounded number of coordinates undetermined.
type Partial = bitvec.Partial

// Instance is a ground-truth preference matrix with planted community
// metadata.
type Instance = prefs.Instance

// Community is a planted (α,D)-typical player set.
type Community = prefs.Community

// Config exposes the algorithms' tunable constants; see DefaultConfig.
type Config = core.Config

// DefaultConfig returns the constants used throughout the experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// Algorithm selects which of the paper's procedures Run executes.
type Algorithm int

const (
	// AlgoAuto runs the Section 6 wrapper: D unknown, α given.
	AlgoAuto Algorithm = iota
	// AlgoMain runs the known-(α,D) dispatcher of Fig. 1.
	AlgoMain
	// AlgoZero runs Algorithm Zero Radius (D = 0, Theorem 3.1).
	AlgoZero
	// AlgoSmall runs Algorithm Small Radius (Theorem 4.4).
	AlgoSmall
	// AlgoLarge runs Algorithm Large Radius (Theorem 5.4).
	AlgoLarge
	// AlgoAnytime runs the unknown-α anytime algorithm (Section 6).
	AlgoAnytime
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto(unknown D)"
	case AlgoMain:
		return "main(known D)"
	case AlgoZero:
		return "zero-radius"
	case AlgoSmall:
		return "small-radius"
	case AlgoLarge:
		return "large-radius"
	case AlgoAnytime:
		return "anytime"
	default:
		return "invalid"
	}
}

// Options configure a Run.
type Options struct {
	// Algorithm picks the procedure; AlgoAuto is the default.
	Algorithm Algorithm
	// Alpha is the assumed community fraction (0,1]. Required except
	// for AlgoAnytime, which discovers it.
	Alpha float64
	// D is the assumed community diameter; used by AlgoMain, AlgoSmall
	// and AlgoLarge.
	D int
	// Seed makes the run reproducible. Two runs with equal seeds and
	// options produce identical outputs.
	Seed uint64
	// Config overrides algorithm constants; zero value means defaults.
	Config *Config
	// Parallelism bounds the worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Budget caps per-player probes for AlgoAnytime (0 = run all
	// phases).
	Budget int64
	// K overrides the SmallRadius confidence parameter (0 = Θ(log n)).
	K int
	// FlipNoise, if positive, flips each probe result independently
	// with this probability — fault injection beyond the paper's model.
	FlipNoise float64
	// OnPhase, if set with AlgoAnytime, is invoked after each phase;
	// returning false stops early.
	OnPhase func(PhaseInfo) bool
	// BoardURL, if non-empty, runs against a remote billboard instead
	// of an in-memory board: one base URL addresses a single server
	// (cmd/billboard), and a comma-separated list of base URLs
	// addresses a sharded cluster (cmd/billboard -shards), routed by
	// consistent hashing (see DESIGN.md §12). The simulation is
	// deterministic either way; probe posts and vote reads travel over
	// the batched wire protocol (see DESIGN.md §8).
	BoardURL string
	// BoardCodec selects the wire encoding for BoardURL targets:
	// "json" (the default) or "binary" (packed bit-plane frames, see
	// DESIGN.md §15; falls back to JSON per-request against servers
	// that don't speak it). Ignored when Board is set or the board is
	// in-memory.
	BoardCodec string
	// Board, if non-nil, is used as the billboard directly and takes
	// precedence over BoardURL. This is how a pre-configured
	// netboard.Client or netboard.Cluster (custom retries, backoff,
	// fault-injecting transport) or any other boardclient.Interface
	// implementation is injected into a run.
	Board boardclient.Interface
	// TraceCapacity, if positive, enables structured tracing: the run
	// retains up to this many sub-algorithm span events, returned in
	// Report.TraceEvents. Tracing never changes algorithm behavior.
	TraceCapacity int
	// Telemetry, if non-nil, receives runtime counters from the whole
	// stack during the run: billboard cache hits and posts (when Run
	// creates the in-memory board), probe charges per policy,
	// per-sub-algorithm cost ("core.<kind>.{calls,probes,ns}"), and
	// netboard client request/retry counters (when BoardURL is used).
	// A nil registry costs nothing on the probe hot path.
	Telemetry *telemetry.Registry
	// Timeout, if positive, bounds the run's wall-clock time: RunContext
	// derives a deadline from it (on top of any deadline already on the
	// caller's context) and a run that exceeds it returns a partial
	// Report with a *RunError whose cause is context.DeadlineExceeded.
	// Negative timeouts are a validation error.
	Timeout time.Duration
}

// RunError is the typed failure of a cancelled or crashed run: Phase
// says where in the algorithm stack the run died, Cause says why.
// errors.Is sees through it — errors.Is(err, context.DeadlineExceeded)
// identifies a blown deadline whether cancellation was observed by a
// coordinator loop, a phase worker, the probe engine, or an in-flight
// netboard request.
type RunError struct {
	// Phase is the innermost sub-algorithm that was running when the
	// run aborted ("zeroradius", "smallradius", ...), falling back to
	// the Options.Algorithm name when the run died before entering one.
	Phase string
	// Cause is the underlying failure: a context cancellation cause, a
	// *sim.PanicError from player code, or a transport error such as
	// *netboard.TransportError.
	Cause error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("tellme: run aborted during %s: %v", e.Phase, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Cause }

// Timeout reports whether the run died to a blown deadline.
func (e *RunError) Timeout() bool { return errors.Is(e.Cause, context.DeadlineExceeded) }

// TraceEvent is one recorded observability event; see Options.TraceCapacity.
type TraceEvent = trace.Event

// PhaseInfo reports anytime progress.
type PhaseInfo struct {
	Phase     int
	Alpha     float64
	MaxProbes int64
}

// Report is the result of a Run.
type Report struct {
	// Outputs[p] is player p's reconstructed preference vector.
	Outputs []Partial
	// MaxProbes is the maximum probes charged to one player — the
	// paper's parallel round count.
	MaxProbes int64
	// TotalProbes sums probes over all players.
	TotalProbes int64
	// MeanProbes is TotalProbes / n.
	MeanProbes float64
	// Duration is the wall-clock simulation time.
	Duration time.Duration
	// Algorithm echoes what ran.
	Algorithm Algorithm
	// CompletedEpochs is the number of completed anytime phases whose
	// results Outputs reflects (0 for the single-shot algorithms and for
	// refresh runs). On a partial report it identifies exactly which
	// epoch's outputs survived the abort: Outputs is byte-identical to a
	// run stopped cleanly after that phase.
	CompletedEpochs int
	// Communities reports reconstruction quality for each planted
	// community of the instance (empty if the instance has none).
	Communities []CommunityReport
	// SubAlgorithmRuns counts nested invocations of each sub-algorithm
	// (ZeroRadius, SmallRadius, LargeRadius, Coalesce) during the run.
	SubAlgorithmRuns map[string]int64
	// TraceEvents holds the retained span events when tracing was
	// enabled via Options.TraceCapacity (nil otherwise).
	TraceEvents []TraceEvent
}

// CommunityReport measures output quality over one planted community.
type CommunityReport struct {
	// Size is the community's member count.
	Size int
	// Diameter is the exact realized diameter D(P*).
	Diameter int
	// Discrepancy is the paper's Δ(P*): worst member error.
	Discrepancy int
	// Stretch is ρ(P*) = Δ/D (D treated as 1 when zero).
	Stretch float64
	// MeanErr is the average member error.
	MeanErr float64
}

// Run executes one algorithm over the instance and reports outputs and
// costs. It is RunContext with an uncancellable context — the zero-cost
// fast path through every layer.
func Run(in *Instance, opt Options) (*Report, error) {
	return RunContext(context.Background(), in, opt)
}

// RunContext is Run governed by a context: cancelling ctx (or blowing
// Options.Timeout) aborts the run promptly at every layer — coordinator
// loops stop at the next iteration, phase workers stop claiming work at
// chunk boundaries, the probe engine aborts players mid-phase, and a
// networked billboard cancels in-flight requests and retry waits.
//
// A cancelled or crashed run returns a non-nil *RunError together with
// a partial Report: probe costs, duration and sub-algorithm counts
// reflect the work actually done. For algorithms with epoch structure
// (AlgoAnytime, and Refresh's stale inputs) Outputs is the last
// *completed* epoch's checkpoint — a consistent output set, never a mix
// of a half-written epoch with the previous one — with CompletedEpochs
// naming the epoch, and Communities grading those same outputs. For
// single-shot algorithms no epoch ever completes, so Outputs and
// Communities are absent. An uncancellable ctx (nil,
// context.Background, ...) with zero Timeout takes the same fast path
// as Run.
func RunContext(ctx context.Context, in *Instance, opt Options) (*Report, error) {
	if in == nil || in.N == 0 || in.M == 0 {
		return nil, errors.New("tellme: empty instance")
	}
	if opt.Algorithm != AlgoAnytime {
		if opt.Alpha <= 0 || opt.Alpha > 1 {
			return nil, fmt.Errorf("tellme: alpha %v out of (0,1]", opt.Alpha)
		}
	}
	if opt.D < 0 || opt.D > in.M {
		return nil, fmt.Errorf("tellme: D %d out of [0,%d]", opt.D, in.M)
	}
	if opt.Algorithm < AlgoAuto || opt.Algorithm > AlgoAnytime {
		return nil, fmt.Errorf("tellme: unknown algorithm %d", opt.Algorithm)
	}
	if opt.Timeout < 0 {
		return nil, fmt.Errorf("tellme: negative timeout %v", opt.Timeout)
	}
	if opt.BoardCodec != "" {
		if _, err := wire.ByName(opt.BoardCodec); err != nil {
			return nil, fmt.Errorf("tellme: %w", err)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	cfg := core.DefaultConfig()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	if opt.K > 0 {
		cfg.K = opt.K
	}

	src := rng.NewSource(opt.Seed)
	var board boardclient.Interface
	switch {
	case opt.Board != nil:
		board = opt.Board
	case strings.Contains(opt.BoardURL, ","):
		cluster, err := netboard.NewCluster(netboard.ClusterConfig{
			Shards: strings.Split(opt.BoardURL, ","),
			Client: netboard.Config{Telemetry: opt.Telemetry, Codec: opt.BoardCodec},
		})
		if err != nil {
			return nil, fmt.Errorf("tellme: board url %q: %w", opt.BoardURL, err)
		}
		board = cluster
	case opt.BoardURL != "":
		board = netboard.NewClientWithConfig(opt.BoardURL, netboard.Config{Telemetry: opt.Telemetry, Codec: opt.BoardCodec})
	default:
		mem := billboard.New(in.N, in.M)
		mem.SetTelemetry(opt.Telemetry)
		board = mem
	}
	var popts []probe.Option
	if opt.FlipNoise > 0 {
		popts = append(popts, probe.WithNoise(probe.FlipNoise(opt.FlipNoise)))
	}
	if opt.Telemetry != nil {
		popts = append(popts, probe.WithTelemetry(opt.Telemetry))
	}
	if ctx.Done() != nil {
		// The engine binds the board to ctx and checks it between
		// probes; core.NewEnv picks the same context up for the
		// coordinator loops and phases.
		popts = append(popts, probe.WithContext(ctx))
	}
	engine := probe.NewEngine(in, board, src.Child("engine", 0), popts...)
	runner := sim.NewRunner(opt.Parallelism)
	env := core.NewEnv(engine, runner, src.Child("public", 0), cfg)
	env.Telemetry = opt.Telemetry
	if opt.TraceCapacity > 0 {
		env.Trace = trace.New(opt.TraceCapacity)
	}

	start := time.Now()
	outputs, runErr := execute(env, in, opt, cfg)
	elapsed := time.Since(start)

	st := metrics.Probes(engine, in.N, nil)
	rep := &Report{
		Outputs:          outputs,
		MaxProbes:        st.Max,
		TotalProbes:      st.Total,
		MeanProbes:       st.Mean,
		Duration:         elapsed,
		Algorithm:        opt.Algorithm,
		SubAlgorithmRuns: env.RunCounts(),
	}
	_, rep.CompletedEpochs = env.Checkpoint()
	if env.Trace != nil {
		rep.TraceEvents = env.Trace.Events()
	}
	if fullOutputs(outputs, in.M) {
		rep.Communities = gradeCommunities(in, outputs)
	}
	if runErr != nil {
		// Partial report: cost accounting is valid (probes charged are
		// real); Outputs is the last completed epoch's checkpoint, or nil
		// when no epoch completed.
		return rep, runErr
	}
	return rep, nil
}

// fullOutputs reports whether every player has a full-length output —
// the precondition for grading communities. A partial report whose
// checkpoint predates some players' first output fails this.
func fullOutputs(outputs []Partial, m int) bool {
	if outputs == nil {
		return false
	}
	for _, o := range outputs {
		if o.Len() != m {
			return false
		}
	}
	return true
}

// gradeCommunities measures output quality over each planted community.
func gradeCommunities(in *Instance, outputs []Partial) []CommunityReport {
	var reps []CommunityReport
	for _, c := range in.Communities {
		diam := in.Diameter(c.Members)
		reps = append(reps, CommunityReport{
			Size:        len(c.Members),
			Diameter:    diam,
			Discrepancy: metrics.Discrepancy(in, c.Members, outputs),
			Stretch:     metrics.Stretch(in, c.Members, outputs),
			MeanErr:     metrics.MeanErr(in, c.Members, outputs),
		})
	}
	return reps
}

// execute dispatches to the selected algorithm and converts an abort —
// cancellation or a player panic, unwound through the recursion as a
// panic because the algorithms return values, not errors — into a
// *RunError at this single boundary.
func execute(env *core.Env, in *Instance, opt Options, cfg Config) (outputs []Partial, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			// Report the last completed epoch's checkpoint (nil when the
			// algorithm has no epoch structure or none completed) instead
			// of the aborted epoch's half-written outputs.
			outputs, _ = env.Checkpoint()
			err = asRunError(rec, env, opt)
		}
	}()
	players := ints.Iota(in.N)
	objs := ints.Iota(in.M)
	switch opt.Algorithm {
	case AlgoAuto:
		outputs = core.UnknownD(env, opt.Alpha)
	case AlgoMain:
		outputs = core.Main(env, opt.Alpha, opt.D)
	case AlgoZero:
		zr := core.ZeroRadiusBits(env, players, objs, opt.Alpha)
		outputs = make([]Partial, in.N)
		for p := range outputs {
			v := bitvec.New(in.M)
			for j, x := range zr[p] {
				if x != 0 {
					v.Set(j, 1)
				}
			}
			outputs[p] = bitvec.PartialOf(v)
		}
	case AlgoSmall:
		sr := core.SmallRadius(env, players, objs, opt.Alpha, opt.D, cfg.K)
		outputs = make([]Partial, in.N)
		for p := range outputs {
			outputs[p] = bitvec.PartialOf(sr[p])
		}
	case AlgoLarge:
		outputs = core.LargeRadius(env, players, objs, opt.Alpha, opt.D)
	case AlgoAnytime:
		var cb func(core.AnytimePhase) bool
		if opt.OnPhase != nil {
			cb = func(ph core.AnytimePhase) bool {
				return opt.OnPhase(PhaseInfo{Phase: ph.Phase, Alpha: ph.Alpha, MaxProbes: ph.MaxProbes})
			}
		}
		outputs = core.Anytime(env, opt.Budget, cb)
	}
	return outputs, nil
}

// asRunError maps a recovered run panic to the *RunError the facade
// returns. The phase is the innermost sub-algorithm the Env saw start.
func asRunError(rec any, env *core.Env, opt Options) error {
	phase := env.ActiveKind()
	if phase == "" {
		phase = opt.Algorithm.String()
	}
	var cause error
	switch v := rec.(type) {
	case *core.Abort:
		cause = v.Err
	case *probe.Canceled:
		// A cancellation observed outside a phase body (coordinator
		// code probing directly) reaches here unwrapped.
		cause = v.Cause
	case error:
		cause = v
	default:
		cause = &sim.PanicError{Value: rec}
	}
	return &RunError{Phase: phase, Cause: cause}
}

// Evaluate measures output quality over an arbitrary player set — the
// same numbers Run reports per planted community, usable with
// CustomInstance data or ad-hoc groupings.
func Evaluate(in *Instance, players []int, outputs []Partial) CommunityReport {
	diam := in.Diameter(players)
	return CommunityReport{
		Size:        len(players),
		Diameter:    diam,
		Discrepancy: metrics.Discrepancy(in, players, outputs),
		Stretch:     metrics.Stretch(in, players, outputs),
		MeanErr:     metrics.MeanErr(in, players, outputs),
	}
}

// RefreshOptions configure RunRefresh.
type RefreshOptions struct {
	// Alpha is the consensus-group threshold: stale vectors shared by
	// at least alpha·n players form repair groups.
	Alpha float64
	// ExpectedDrift sizes the patch-verification budget (0 = generous
	// default).
	ExpectedDrift int
	// Seed makes the run reproducible.
	Seed uint64
	// Parallelism bounds the worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Timeout, if positive, bounds the repair's wall-clock time; see
	// Options.Timeout.
	Timeout time.Duration
}

// RunRefresh repairs previously-computed outputs against the current
// (possibly drifted) instance, at ~2m/(αn) + drift probes per community
// member instead of a fresh polylog run — the incremental-repair
// extension measured in experiments E17/E20. Players whose stale output
// is not shared by an α fraction keep it unchanged.
func RunRefresh(in *Instance, stale []Partial, opt RefreshOptions) (*Report, error) {
	return RunRefreshContext(context.Background(), in, stale, opt)
}

// RunRefreshContext is RunRefresh governed by a context; the
// cancellation and partial-report semantics match RunContext.
func RunRefreshContext(ctx context.Context, in *Instance, stale []Partial, opt RefreshOptions) (*Report, error) {
	if in == nil || in.N == 0 || in.M == 0 {
		return nil, errors.New("tellme: empty instance")
	}
	if len(stale) != in.N {
		return nil, fmt.Errorf("tellme: %d stale outputs for %d players", len(stale), in.N)
	}
	if opt.Alpha <= 0 || opt.Alpha > 1 {
		return nil, fmt.Errorf("tellme: alpha %v out of (0,1]", opt.Alpha)
	}
	if opt.Timeout < 0 {
		return nil, fmt.Errorf("tellme: negative timeout %v", opt.Timeout)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	src := rng.NewSource(opt.Seed)
	board := billboard.New(in.N, in.M)
	var popts []probe.Option
	if ctx.Done() != nil {
		popts = append(popts, probe.WithContext(ctx))
	}
	engine := probe.NewEngine(in, board, src.Child("engine", 0), popts...)
	env := core.NewEnv(engine, sim.NewRunner(opt.Parallelism), src.Child("public", 0), core.DefaultConfig())
	players := ints.Iota(in.N)
	objs := ints.Iota(in.M)
	red, maxP := core.RefreshBudget(opt.ExpectedDrift)
	start := time.Now()
	outputs, runErr := executeRefresh(env, players, objs, stale, opt, red, maxP)
	elapsed := time.Since(start)
	st := metrics.Probes(engine, in.N, nil)
	rep := &Report{
		Outputs:     outputs,
		MaxProbes:   st.Max,
		TotalProbes: st.Total,
		MeanProbes:  st.Mean,
		Duration:    elapsed,
	}
	if fullOutputs(outputs, in.M) {
		rep.Communities = gradeCommunities(in, outputs)
	}
	if runErr != nil {
		// Partial report: an aborted repair reports the stale inputs
		// unchanged — the last completed epoch — never a half-patched mix.
		return rep, runErr
	}
	return rep, nil
}

// executeRefresh runs Refresh under the same abort-recovery boundary as
// execute.
func executeRefresh(env *core.Env, players, objs []int, stale []Partial, opt RefreshOptions, red, maxP int) (outputs []Partial, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			outputs, _ = env.Checkpoint()
			err = asRunError(rec, env, Options{})
		}
	}()
	return core.Refresh(env, players, objs, stale, opt.Alpha, red, maxP), nil
}
