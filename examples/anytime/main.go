// Anytime: neither the community fraction α nor the diameter D is
// known. Section 6's doubling scheme tries α = 1/2, 1/4, 1/8, ... and
// keeps, per player, the output that looks closest to its own taste.
// Quality at every moment is close to the best achievable with the
// probes spent so far — stop whenever the budget runs out.
package main

import (
	"fmt"
	"log"

	"tellme"
)

func main() {
	// The true community is 1/8 of the players with diameter 6 — both
	// facts hidden from the algorithm.
	inst := tellme.PlantedInstance(256, 256, 0.125, 6, 31)
	comm := inst.Communities[0].Members

	fmt.Println("anytime run: unknown α and D (truth: α=0.125, D≤6)")
	fmt.Println("phase  α-tried   probes(max)  community worst-err")

	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoAnytime,
		Seed:      5,
		OnPhase: func(ph tellme.PhaseInfo) bool {
			// The observer sees intermediate outputs only through the
			// final report; recompute quality when the run finishes.
			fmt.Printf("%4d   %7.4f   %10d   (see final report)\n",
				ph.Phase, ph.Alpha, ph.MaxProbes)
			return ph.Phase < 3 // stop once α reaches the true 1/8
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0
	for _, p := range comm {
		if e := inst.Err(p, rep.Outputs[p]); e > worst {
			worst = e
		}
	}
	fmt.Printf("\nfinal: probes(max)=%d  community worst-err=%d  stretch=%.2f\n",
		rep.MaxProbes, worst, rep.Communities[0].Stretch)
	fmt.Println("(the final phase, α=1/8, is the first to match the true community size;")
	fmt.Println(" earlier phases over-assume cohesion and the per-player RSelect")
	fmt.Println(" keeps whichever phase output fits each player best)")
}
