// Quickstart: players with similar taste split the cost of exploring
// the object space by sharing probe results on a public billboard.
//
// Part 1 shows the headline effect at its clearest: a community with
// identical preferences reconstructs all 1024 grades from ~20 probes
// per player instead of 1024 — while adversarial players try to split
// the votes.
//
// Part 2 runs the general algorithm (community diameter unknown) on a
// noisy community and reports the paper's quality measure, the stretch
// ρ = worst member error / community diameter.
package main

import (
	"fmt"
	"log"

	"tellme"
)

func main() {
	// --- Part 1: identical tastes, adversarial outsiders -------------
	inst := tellme.AdversarialInstance(1024, 1024, 0.5, 0, 42)
	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero, // Theorem 3.1 regime (D = 0)
		Alpha:     0.5,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := rep.Communities[0]
	fmt.Println("part 1: identical-taste community among colluding adversaries")
	fmt.Printf("  probes per player: max %d   (going solo: %d)\n", rep.MaxProbes, inst.M)
	fmt.Printf("  community of %d players — worst reconstruction error: %d\n\n",
		c.Size, c.Discrepancy)

	// --- Part 2: diverse community, diameter unknown -----------------
	inst2 := tellme.PlantedInstance(256, 256, 0.5, 8, 43)
	rep2, err := tellme.Run(inst2, tellme.Options{
		Algorithm: tellme.AlgoAuto, // Section 6: D unknown
		Alpha:     0.5,
		Seed:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	c2 := rep2.Communities[0]
	fmt.Println("part 2: community of diameter 8, diameter not known to the players")
	fmt.Printf("  worst member error %d on diameter %d → stretch %.2f (Theorem 1.1: O(1))\n",
		c2.Discrepancy, c2.Diameter, c2.Stretch)
	fmt.Printf("  probes per player: max %d — the polylog bound has large constants;\n", rep2.MaxProbes)
	fmt.Println("  it crosses below solo cost only at much larger n (see EXPERIMENTS.md, E8)")

	// Inspect one member's output up close.
	p := inst2.Communities[0].Members[0]
	fmt.Printf("\nplayer %d: output errors=%d, undetermined coordinates=%d\n",
		p, inst2.Err(p, rep2.Outputs[p]), rep2.Outputs[p].UnknownCount())
}
