// Movie recommendations: when do the classical collaborative-filtering
// baselines work, and what does the paper's worst-case guarantee buy?
//
// Watching a movie is a probe: it costs an evening and reveals one bit
// (liked / disliked).
//
// Act 1 uses a benign catalog — viewers cluster into a few noisy taste
// types, the low-rank world the non-interactive literature assumes.
// Budget-matched kNN and SVD do well there, and that is the point: the
// paper does not claim they never work, only that they need assumptions.
//
// Act 2 uses an adversarial catalog — colluding cliques rate so as to
// split every vote. The same baselines collapse while the interactive
// algorithm still reconstructs the community exactly, from ~30 movies
// per viewer.
package main

import (
	"fmt"
	"log"

	"tellme"
)

const (
	viewers = 512
	movies  = 512
)

func main() {
	fmt.Println("act 1: benign catalog (4 noisy taste types — low-rank)")
	benign()
	fmt.Println("\nact 2: adversarial catalog (colluding rating cliques)")
	adversarial()
}

func show(name string, r *tellme.Report) {
	c := r.Communities[0]
	fmt.Printf("  %-10s %9d %10d %9.2f\n", name, r.MaxProbes, c.Discrepancy, c.MeanErr)
}

func header() {
	fmt.Println("  algorithm   watched   worst-err  mean-err")
}

func benign() {
	inst := tellme.MixtureInstance(viewers, movies, 4, 0.01, 7)
	comm := inst.Communities[0]
	fmt.Printf("  type-0 community: %d viewers, taste diameter %d\n",
		len(comm.Members), inst.Diameter(comm.Members))

	budget := 64 // an eight of the catalog per viewer
	header()
	for _, b := range []tellme.Baseline{tellme.BaselineKNN, tellme.BaselineSpectral, tellme.BaselineMajority} {
		br, err := tellme.RunBaseline(inst, tellme.BaselineOptions{
			Baseline: b, Budget: budget, Rank: 4, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		show(b.String(), br)
	}

	// Produce actual recommendations for one viewer with the kNN
	// baseline: unwatched movies predicted "like".
	br, err := tellme.RunBaseline(inst, tellme.BaselineOptions{
		Baseline: tellme.BaselineKNN, Budget: budget, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	u := comm.Members[0]
	recs, good := []int{}, 0
	for o := 0; o < movies && len(recs) < 10; o++ {
		if br.Outputs[u].Get(o) == 1 {
			recs = append(recs, o)
			if inst.Vector(u).Get(o) == 1 {
				good++
			}
		}
	}
	fmt.Printf("  viewer %d recommendations %v — %d/%d actually liked\n",
		u, recs, good, len(recs))
}

func adversarial() {
	inst := tellme.AdversarialInstance(viewers, movies, 0.3, 0, 13)
	fmt.Printf("  community: %d viewers with one shared taste; cliques of\n",
		len(inst.Communities[0].Members))
	fmt.Println("  colluding raters fill the rest")

	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero, Alpha: 0.3, Seed: 14,
	})
	if err != nil {
		log.Fatal(err)
	}
	budget := int(rep.MaxProbes)
	header()
	show("tellme", rep)
	for _, b := range []tellme.Baseline{tellme.BaselineKNN, tellme.BaselineSpectral, tellme.BaselineMajority} {
		br, err := tellme.RunBaseline(inst, tellme.BaselineOptions{
			Baseline: b, Budget: budget, Rank: 4, Seed: 15,
		})
		if err != nil {
			log.Fatal(err)
		}
		show(b.String(), br)
	}
	fmt.Printf("  (all algorithms limited to %d movies per viewer; 'solo' would need %d)\n",
		budget, movies)
}
