// Sensors: the paper's introduction cites "tracking a dynamic
// environment by unreliable sensors" as an interactive-model instance.
//
// A field of sensors observes the same m binary events. Healthy sensors
// agree (an identical-preference community); a third of the fleet is
// defective — some stuck at a constant reading, some randomly flipping.
// Each sensing operation costs energy, so a sensor wants to learn the
// full event vector with as few of its own measurements as possible by
// reading the shared telemetry board. Algorithm Zero Radius does exactly
// this, and the defective sensors cannot corrupt the healthy majority.
package main

import (
	"fmt"
	"log"

	"tellme"
)

func main() {
	const (
		sensors = 600
		events  = 1024
	)
	// 65% healthy sensors sharing the true event vector; the rest report
	// arbitrary garbage (worst-case defective fleet).
	inst := tellme.IdenticalInstance(sensors, events, 0.65, 99)

	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.65,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	healthy := rep.Communities[0]
	fmt.Println("sensor-fusion simulation (worst-case defective sensors)")
	fmt.Printf("measurements per sensor: max %d of %d events (%.1f%%)\n",
		rep.MaxProbes, events, 100*float64(rep.MaxProbes)/float64(events))
	fmt.Printf("healthy sensors: %d; worst reconstruction error: %d\n\n",
		healthy.Size, healthy.Discrepancy)

	// Now inject measurement noise: each sensing operation flips with 2%
	// probability — beyond the paper's noise-free model. The exactness
	// guarantee no longer applies, but the vote-based recovery degrades
	// gracefully.
	repNoisy, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.65,
		Seed:      4,
		FlipNoise: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 2%% measurement noise: worst error %d, mean error %.2f (of %d events)\n",
		repNoisy.Communities[0].Discrepancy,
		repNoisy.Communities[0].MeanErr, events)

	// Day 2: the environment drifts — 12 events change state. Instead of
	// re-running from scratch, the fleet repairs its consensus: healthy
	// sensors split the re-verification of yesterday's answer and patch
	// only what changed.
	drifted := tellme.DriftInstance(inst, 12, 0, 100)
	repaired, err := tellme.RunRefresh(drifted, rep.Outputs, tellme.RefreshOptions{
		Alpha:         0.65,
		ExpectedDrift: 12,
		Seed:          6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nday 2 (12 events drifted): repair cost %d measurements/sensor vs %d for a fresh run\n",
		repaired.MaxProbes, rep.MaxProbes)
	fmt.Printf("repaired worst error: %d\n", repaired.Communities[0].Discrepancy)
}
