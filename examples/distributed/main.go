// Distributed: the billboard as an actual network service.
//
// The paper's players communicate only through a shared public board.
// This example starts a billboard HTTP server (the same one
// cmd/billboard runs standalone) and executes Algorithm Zero Radius
// against it four times:
//
//  1. over the batched wire protocol (the default),
//  2. over the legacy one-request-per-operation protocol,
//  3. over a deliberately hostile transport that drops requests, loses
//     responses after the server committed, and duplicates deliveries,
//  4. over a three-shard cluster: topics and probe columns spread
//     across three independent billboard servers by consistent
//     hashing, behind the same boardclient interface.
//
// All four runs produce byte-identical outputs: the simulation is
// deterministic, batching only changes how posts travel, the client's
// idempotent retries make the faults invisible — the server's counters
// prove no post was lost or applied twice — and sharding only changes
// where each key lives, not what any player observes.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"tellme"
	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/netboard"
	"tellme/internal/netboard/faultnet"
)

const (
	players = 48
	objects = 256
)

// serve starts a fresh billboard service on an ephemeral local port.
func serve() (*billboard.Board, string, func()) {
	board := billboard.New(players, objects)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, netboard.NewServer(board))
	return board, "http://" + ln.Addr().String(), func() { ln.Close() }
}

// runOn executes Zero Radius against the given board client.
func runOn(inst *tellme.Instance, board boardclient.Interface) *tellme.Report {
	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.6,
		Seed:      4,
		Board:     board, // every billboard access goes through it
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

// run executes Zero Radius through one single-server client built from
// cfg and returns the report plus how many HTTP requests it issued.
func run(inst *tellme.Instance, url string, cfg netboard.Config) (*tellme.Report, int64) {
	meter := faultnet.New(nil, 1)
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Transport: meter}
	}
	return runOn(inst, netboard.NewClientWithConfig(url, cfg)), meter.Delivered()
}

func main() {
	// Players share one hidden taste among 60% of them.
	inst := tellme.IdenticalInstance(players, objects, 0.6, 3)

	// 1. Batched protocol: probe posts travel in per-player batches and
	// vote tallies through the epoch-tagged snapshot cache.
	board, url, stop := serve()
	fmt.Printf("billboard service listening at %s\n", url)
	rep, batchedReqs := run(inst, url, netboard.Config{})
	c := rep.Communities[0]
	fmt.Printf("community of %d recovered its %d grades with worst error %d\n",
		c.Size, objects, c.Discrepancy)
	fmt.Printf("probes per player: max %d (solo = %d)\n", rep.MaxProbes, objects)
	fmt.Printf("server-side state: %d probe postings, %d vector postings\n",
		board.ProbeCount(), board.VectorPostCount())
	wantProbes, wantVectors := board.ProbeCount(), board.VectorPostCount()
	stop()

	// 2. Legacy protocol: same simulation, one request per operation.
	_, url, stop = serve()
	legacyRep, legacyReqs := run(inst, url, netboard.Config{DisableBatch: true})
	stop()
	fmt.Printf("\nHTTP requests for the identical simulation:\n")
	fmt.Printf("  batched protocol: %5d requests\n", batchedReqs)
	fmt.Printf("  legacy protocol:  %5d requests (%.1fx more)\n",
		legacyReqs, float64(legacyReqs)/float64(batchedReqs))
	if !reflect.DeepEqual(rep.Outputs, legacyRep.Outputs) {
		log.Fatal("batched and legacy runs diverged")
	}

	// 3. Hostile transport: 10% dropped requests, 10% responses lost
	// after the server already committed, 20% duplicated deliveries.
	// Idempotent retries (request-id dedupe on the server) keep the
	// board exact.
	board, url, stop = serve()
	ft := faultnet.New(nil, 99)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.1, 0.1, 0.2
	faultyRep, _ := run(inst, url, netboard.Config{
		HTTPClient:   &http.Client{Transport: ft},
		Retries:      40,
		RetryBackoff: 200 * time.Microsecond,
	})
	stop()
	fmt.Printf("\nflaky transport: %d requests dropped, %d responses lost after commit, %d duplicated\n",
		ft.DroppedRequests(), ft.LostResponses(), ft.Duplicated())
	if !reflect.DeepEqual(rep.Outputs, faultyRep.Outputs) {
		log.Fatal("faulty-transport run diverged")
	}
	if board.ProbeCount() != wantProbes || board.VectorPostCount() != wantVectors {
		log.Fatalf("board drifted under faults: %d/%d probes, %d/%d vectors",
			board.ProbeCount(), wantProbes, board.VectorPostCount(), wantVectors)
	}
	fmt.Printf("outputs identical, server counters exact (%d probes, %d vector posts):\n",
		wantProbes, wantVectors)
	fmt.Println("zero posts lost, zero posts double-applied")

	// 4. Sharded cluster: three independent billboard servers, keys
	// spread across them by consistent hashing. The run sees one board.
	const shards = 3
	boards := make([]*billboard.Board, shards)
	urls := make([]string, shards)
	for i := range boards {
		var stopShard func()
		boards[i], urls[i], stopShard = serve()
		defer stopShard()
	}
	cluster, err := netboard.NewCluster(netboard.ClusterConfig{Shards: urls})
	if err != nil {
		log.Fatal(err)
	}
	clusterRep := runOn(inst, cluster)
	if !reflect.DeepEqual(rep.Outputs, clusterRep.Outputs) {
		log.Fatal("sharded-cluster run diverged")
	}
	var clusterProbes, clusterVectors int64
	fmt.Printf("\nsharded cluster (%d shards):\n", shards)
	for i, b := range boards {
		fmt.Printf("  shard %d (%s): %d probe postings, %d vector postings\n",
			i, urls[i], b.ProbeCount(), b.VectorPostCount())
		clusterProbes += b.ProbeCount()
		clusterVectors += b.VectorPostCount()
	}
	if clusterProbes != wantProbes || clusterVectors != wantVectors {
		log.Fatalf("cluster totals drifted: %d/%d probes, %d/%d vectors",
			clusterProbes, wantProbes, clusterVectors, wantVectors)
	}
	fmt.Printf("outputs identical to the single-server run; shard totals sum to %d probes, %d vector posts\n",
		clusterProbes, clusterVectors)
}
