// Distributed: the billboard as an actual network service.
//
// The paper's players communicate only through a shared public board.
// This example starts a billboard HTTP server (the same one
// cmd/billboard runs standalone) and executes Algorithm Zero Radius
// against it three times:
//
//  1. over the batched wire protocol (the default),
//  2. over the legacy one-request-per-operation protocol, and
//  3. over a deliberately hostile transport that drops requests, loses
//     responses after the server committed, and duplicates deliveries.
//
// All three runs produce byte-identical outputs: the simulation is
// deterministic, batching only changes how posts travel, and the
// client's idempotent retries make the faults invisible — the server's
// counters prove no post was lost or applied twice.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"tellme"
	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/netboard/faultnet"
)

const (
	players = 48
	objects = 256
)

// serve starts a fresh billboard service on an ephemeral local port.
func serve() (*billboard.Board, string, func()) {
	board := billboard.New(players, objects)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, netboard.NewServer(board))
	return board, "http://" + ln.Addr().String(), func() { ln.Close() }
}

// run executes Zero Radius through the given client and returns the
// report plus how many HTTP requests the run issued.
func run(inst *tellme.Instance, url string, configure func(*netboard.Client)) (*tellme.Report, int64) {
	meter := faultnet.New(nil, 1)
	c := netboard.NewClient(url)
	c.HTTPClient = &http.Client{Transport: meter}
	if configure != nil {
		configure(c)
	}
	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.6,
		Seed:      4,
		Board:     c, // every billboard access goes over this client
	})
	if err != nil {
		log.Fatal(err)
	}
	return rep, meter.Delivered()
}

func main() {
	// Players share one hidden taste among 60% of them.
	inst := tellme.IdenticalInstance(players, objects, 0.6, 3)

	// 1. Batched protocol: probe posts travel in per-player batches and
	// vote tallies through the epoch-tagged snapshot cache.
	board, url, stop := serve()
	fmt.Printf("billboard service listening at %s\n", url)
	rep, batchedReqs := run(inst, url, nil)
	c := rep.Communities[0]
	fmt.Printf("community of %d recovered its %d grades with worst error %d\n",
		c.Size, objects, c.Discrepancy)
	fmt.Printf("probes per player: max %d (solo = %d)\n", rep.MaxProbes, objects)
	fmt.Printf("server-side state: %d probe postings, %d vector postings\n",
		board.ProbeCount(), board.VectorPostCount())
	wantProbes, wantVectors := board.ProbeCount(), board.VectorPostCount()
	stop()

	// 2. Legacy protocol: same simulation, one request per operation.
	_, url, stop = serve()
	legacyRep, legacyReqs := run(inst, url, func(c *netboard.Client) { c.DisableBatch = true })
	stop()
	fmt.Printf("\nHTTP requests for the identical simulation:\n")
	fmt.Printf("  batched protocol: %5d requests\n", batchedReqs)
	fmt.Printf("  legacy protocol:  %5d requests (%.1fx more)\n",
		legacyReqs, float64(legacyReqs)/float64(batchedReqs))
	if !reflect.DeepEqual(rep.Outputs, legacyRep.Outputs) {
		log.Fatal("batched and legacy runs diverged")
	}

	// 3. Hostile transport: 10% dropped requests, 10% responses lost
	// after the server already committed, 20% duplicated deliveries.
	// Idempotent retries (request-id dedupe on the server) keep the
	// board exact.
	board, url, stop = serve()
	ft := faultnet.New(nil, 99)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.1, 0.1, 0.2
	faultyRep, _ := run(inst, url, func(c *netboard.Client) {
		c.HTTPClient = &http.Client{Transport: ft}
		c.Retries = 40
		c.RetryBackoff = 200 * time.Microsecond
	})
	stop()
	fmt.Printf("\nflaky transport: %d requests dropped, %d responses lost after commit, %d duplicated\n",
		ft.DroppedRequests(), ft.LostResponses(), ft.Duplicated())
	if !reflect.DeepEqual(rep.Outputs, faultyRep.Outputs) {
		log.Fatal("faulty-transport run diverged")
	}
	if board.ProbeCount() != wantProbes || board.VectorPostCount() != wantVectors {
		log.Fatalf("board drifted under faults: %d/%d probes, %d/%d vectors",
			board.ProbeCount(), wantProbes, board.VectorPostCount(), wantVectors)
	}
	fmt.Printf("outputs identical, server counters exact (%d probes, %d vector posts):\n",
		wantProbes, wantVectors)
	fmt.Println("zero posts lost, zero posts double-applied")
}
