// Distributed: the billboard as an actual network service.
//
// The paper's players communicate only through a shared public board.
// This example starts a billboard HTTP server (the same one
// cmd/billboard runs standalone), then executes Algorithm Zero Radius
// with every billboard operation — probe postings, vector postings,
// vote tallies — going over HTTP. The run is deterministic, so it
// produces exactly the outputs an in-memory run would.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"tellme"
	"tellme/internal/billboard"
	"tellme/internal/netboard"
)

func main() {
	const (
		players = 48
		objects = 64
	)

	// Start the billboard service on an ephemeral local port.
	board := billboard.New(players, objects)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, netboard.NewServer(board)); err != nil {
			log.Print(err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("billboard service listening at %s\n", url)

	// Players share one hidden taste among 60% of them.
	inst := tellme.IdenticalInstance(players, objects, 0.6, 3)

	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.6,
		Seed:      4,
		BoardURL:  url, // every billboard access is an HTTP round trip
	})
	if err != nil {
		log.Fatal(err)
	}

	c := rep.Communities[0]
	fmt.Printf("community of %d recovered its %d grades with worst error %d\n",
		c.Size, objects, c.Discrepancy)
	fmt.Printf("probes per player: max %d (solo = %d)\n", rep.MaxProbes, objects)
	fmt.Printf("server-side state: %d probe postings, %d vector postings\n",
		board.ProbeCount(), board.VectorPostCount())
	fmt.Println("\ninspect the board yourself, e.g.:")
	fmt.Printf("  curl '%s/v1/probe?player=0&object=0'\n", url)
}
