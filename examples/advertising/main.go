// Advertising: the paper's introduction motivates the interactive model
// with ad placement — "probing" a (user, product) pair means showing the
// user an ad; the click (or its absence) reveals the matrix entry at the
// cost of one impression.
//
// An advertiser faces several audience segments, each sharing a taste
// profile, plus a long tail of idiosyncratic users. One run of Algorithm
// Zero Radius lets EVERY segment reconstruct its full preference row
// simultaneously — the algorithm never needs to be told who belongs to
// which segment, only a lower bound α on segment size — at a tiny
// fraction of the impressions exhaustive testing would burn.
package main

import (
	"fmt"
	"log"

	"tellme"
)

func main() {
	const (
		users    = 900
		products = 1024
	)
	// Segments share a canonical taste profile (D = 0): 40% casual, 25%
	// enthusiasts, 15% bargain hunters; 20% idiosyncratic tail.
	inst := tellme.MultiCommunityInstance(users, products, []tellme.CommunitySpec{
		{Alpha: 0.40, D: 0},
		{Alpha: 0.25, D: 0},
		{Alpha: 0.15, D: 0},
	}, 2026)

	// α = 0.15 is a safe lower bound on every segment's size; all three
	// segments are recovered by the same run.
	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     0.15,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ad-placement simulation: learning user preference rows")
	fmt.Printf("impressions per user: max %d (exhaustive testing = %d)\n\n",
		rep.MaxProbes, products)
	fmt.Println("segment  users  worst-err  mean-err")
	for i, c := range rep.Communities {
		fmt.Printf("   %d     %4d     %4d     %7.2f\n", i+1, c.Size, c.Discrepancy, c.MeanErr)
	}

	// The advertiser's payoff: predicted-to-click products the user was
	// never shown an ad for.
	seg := inst.Communities[0].Members
	var hits, preds int
	for _, u := range seg[:10] {
		row := rep.Outputs[u]
		truth := inst.Vector(u)
		for o := 0; o < products; o++ {
			if row.Get(o) == 1 {
				preds++
				if truth.Get(o) == 1 {
					hits++
				}
			}
		}
	}
	fmt.Printf("\nsegment-1 sample: %d click predictions, %.1f%% correct\n",
		preds, 100*float64(hits)/float64(preds))
}
