// Multi-valued grades: the paper remarks that Zero Radius works for
// non-binary values ("the set of allowed values for an object is not
// necessarily binary"). This example exercises that through the
// bit-encoding reduction: a fleet of weather stations reports 5-level
// readings (0 = calm … 4 = storm) for a grid of locations; healthy
// stations agree on the true field, faulty ones report garbage. Each
// measurement costs energy, and one run reconstructs every healthy
// station's full 5-level field from a handful of measurements.
package main

import (
	"fmt"
	"log"

	"tellme"
	"tellme/internal/rng"
)

func main() {
	const (
		stations = 300
		cells    = 400
		levels   = 5
		healthy  = 180 // 60%
	)

	// Ground truth: healthy stations share the true field; the rest are
	// broken and report arbitrary levels.
	r := rng.New(77)
	field := make([]int, cells)
	for i := range field {
		field[i] = r.Intn(levels)
	}
	readings := make([][]int, stations)
	for s := 0; s < stations; s++ {
		if s < healthy {
			readings[s] = field
			continue
		}
		row := make([]int, cells)
		for i := range row {
			row[i] = r.Intn(levels)
		}
		readings[s] = row
	}

	inst, err := tellme.EncodeValuesInstance(readings, levels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d stations × %d cells × %d levels → %d binary objects (%d bits/cell)\n",
		stations, cells, levels, inst.M, tellme.ValueBits(levels))

	rep, err := tellme.Run(inst, tellme.Options{
		Algorithm: tellme.AlgoZero,
		Alpha:     float64(healthy) / stations,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}

	worst, undecidedMax := 0, 0
	for s := 0; s < healthy; s++ {
		got, undecided := tellme.DecodeValues(rep.Outputs[s], cells, levels)
		if d := tellme.ValueDist(got, field); d > worst {
			worst = d
		}
		if undecided > undecidedMax {
			undecidedMax = undecided
		}
	}
	fmt.Printf("measurements per station: max %d (measuring everything: %d)\n",
		rep.MaxProbes, inst.M)
	fmt.Printf("healthy stations: worst field error %d/%d cells, %d undecided\n",
		worst, cells, undecidedMax)
}
