package tellme

import "testing"

func TestRunOneGoodPublicAPI(t *testing.T) {
	in := SharedLikesInstance(128, 1024, 0.5, 4, 4, 1)
	rec, err := RunOneGood(in, OneGoodOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunOneGood(in, OneGoodOptions{Seed: 3, RandomOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	comm := in.Communities[0].Members
	sum := func(found []int) int {
		s := 0
		for _, p := range comm {
			if found[p] == 0 {
				t.Fatal("community member unsatisfied")
			}
			s += found[p]
		}
		return s
	}
	if 2*sum(rec.FoundAt) > sum(rnd.FoundAt) {
		t.Fatalf("propagation (%d) not well below random (%d)", sum(rec.FoundAt), sum(rnd.FoundAt))
	}
	for p := 0; p < in.N; p++ {
		if rec.Liked[p] >= 0 && in.Grade(p, rec.Liked[p]) != 1 {
			t.Fatalf("player %d 'found' a disliked object", p)
		}
	}
	if _, err := RunOneGood(nil, OneGoodOptions{}); err == nil {
		t.Fatal("nil instance accepted")
	}
}
