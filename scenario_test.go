package tellme

import (
	"strings"
	"testing"
)

const scenarioJSON = `[
  {
    "name": "adversarial-zero",
    "generator": {"kind": "adversarial", "n": 128, "m": 128, "alpha": 0.3, "d": 0, "seed": 1},
    "run": {"algorithm": "zero", "alpha": 0.3, "seed": 2}
  },
  {
    "name": "planted-small",
    "generator": {"kind": "planted", "n": 128, "m": 128, "alpha": 0.5, "d": 4, "seed": 3},
    "run": {"algorithm": "small", "alpha": 0.5, "d": 4, "seed": 4, "k": 4}
  }
]`

func TestLoadAndRunScenarios(t *testing.T) {
	scs, err := LoadScenarios(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].Name != "adversarial-zero" {
		t.Fatalf("scenarios: %+v", scs)
	}
	results, err := RunScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Report.Communities[0].Discrepancy != 0 {
		t.Fatalf("adversarial-zero discrepancy %d", results[0].Report.Communities[0].Discrepancy)
	}
	if results[1].Report.Communities[0].Discrepancy > 20 {
		t.Fatalf("planted-small discrepancy %d", results[1].Report.Communities[0].Discrepancy)
	}
}

func TestLoadScenariosRejectsInvalid(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`[]`,
		`[{"generator": {"kind": "planted", "n": 4}, "run": {"algorithm": "zero"}}]`, // no name
	}
	for i, c := range cases {
		if _, err := LoadScenarios(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestGeneratorSpecKinds(t *testing.T) {
	for _, kind := range []string{"identical", "planted", "adversarial", "mixture", "random"} {
		g := GeneratorSpec{Kind: kind, N: 16, M: 16, Alpha: 0.5, D: 2, Seed: 1}
		in, err := g.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if in.N != 16 || in.M != 16 {
			t.Fatalf("%s dims %dx%d", kind, in.N, in.M)
		}
	}
	if _, err := (GeneratorSpec{Kind: "nope", N: 4}).Build(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (GeneratorSpec{Kind: "planted"}).Build(); err == nil {
		t.Fatal("n=0 accepted")
	}
	// m defaults to n
	in, err := (GeneratorSpec{Kind: "random", N: 8, Seed: 2}).Build()
	if err != nil || in.M != 8 {
		t.Fatalf("m default: %v %v", in, err)
	}
}

func TestRunScenariosStopsOnError(t *testing.T) {
	scs := []Scenario{
		{Name: "ok", Generator: GeneratorSpec{Kind: "random", N: 8, Seed: 1},
			Run: RunSpec{Algorithm: "zero", Alpha: 0.5, Seed: 1}},
		{Name: "bad", Generator: GeneratorSpec{Kind: "random", N: 8, Seed: 1},
			Run: RunSpec{Algorithm: "nope"}},
	}
	results, err := RunScenarios(scs)
	if err == nil {
		t.Fatal("bad scenario accepted")
	}
	if len(results) != 1 {
		t.Fatalf("%d results before error", len(results))
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %v does not name the scenario", err)
	}
}
