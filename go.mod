module tellme

go 1.23
