module tellme

go 1.22
