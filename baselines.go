package tellme

import (
	"errors"
	"fmt"
	"time"

	"tellme/internal/baseline"
	"tellme/internal/billboard"
	"tellme/internal/metrics"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// Baseline identifies one of the comparison algorithms from the paper's
// related work (see package baseline for details).
type Baseline int

const (
	// BaselineSolo probes every object individually (exact, cost m).
	BaselineSolo Baseline = iota
	// BaselineMajority samples a budget and fills gaps with the global
	// per-object majority.
	BaselineMajority
	// BaselineKNN samples a budget and adopts the k nearest players'
	// majority grades (memory-based collaborative filtering).
	BaselineKNN
	// BaselineSpectral reconstructs via a sampled rank-k SVD in the
	// style of Drineas et al. [6].
	BaselineSpectral
)

// String names the baseline.
func (b Baseline) String() string {
	switch b {
	case BaselineSolo:
		return "solo"
	case BaselineMajority:
		return "majority"
	case BaselineKNN:
		return "kNN"
	case BaselineSpectral:
		return "spectral"
	default:
		return "invalid"
	}
}

// BaselineOptions configure RunBaseline.
type BaselineOptions struct {
	// Baseline picks the algorithm.
	Baseline Baseline
	// Budget is the per-player probe budget for the sampled baselines
	// (ignored by BaselineSolo).
	Budget int
	// K is the neighbor count for BaselineKNN (default 8).
	K int
	// Rank and Iters configure BaselineSpectral (defaults 2 and 10).
	Rank, Iters int
	// Seed makes the run reproducible.
	Seed uint64
	// Parallelism bounds the worker pool (0 = GOMAXPROCS).
	Parallelism int
}

// RunBaseline executes a baseline on the instance, using the same probe
// engine and cost accounting as Run, so reports are directly comparable.
func RunBaseline(in *Instance, opt BaselineOptions) (*Report, error) {
	if in == nil || in.N == 0 || in.M == 0 {
		return nil, errors.New("tellme: empty instance")
	}
	if opt.Baseline != BaselineSolo && opt.Budget <= 0 {
		return nil, fmt.Errorf("tellme: baseline %v needs a positive budget", opt.Baseline)
	}
	if opt.K <= 0 {
		opt.K = 8
	}
	if opt.Rank <= 0 {
		opt.Rank = 2
	}
	if opt.Iters <= 0 {
		opt.Iters = 10
	}
	src := rng.NewSource(opt.Seed)
	board := billboard.New(in.N, in.M)
	engine := probe.NewEngine(in, board, src.Child("engine", 0))
	runner := sim.NewRunner(opt.Parallelism)

	start := time.Now()
	var outputs []Partial
	switch opt.Baseline {
	case BaselineSolo:
		outputs = baseline.Solo(engine, runner)
	case BaselineMajority:
		outputs = baseline.SampleMajority(engine, runner, opt.Budget, src.Child("algo", 0))
	case BaselineKNN:
		outputs = baseline.KNN(engine, runner, opt.Budget, opt.K, src.Child("algo", 0))
	case BaselineSpectral:
		outputs = baseline.Spectral(engine, runner, opt.Budget, opt.Rank, opt.Iters, src.Child("algo", 0))
	default:
		return nil, fmt.Errorf("tellme: unknown baseline %d", opt.Baseline)
	}
	elapsed := time.Since(start)

	st := metrics.Probes(engine, in.N, nil)
	rep := &Report{
		Outputs:     outputs,
		MaxProbes:   st.Max,
		TotalProbes: st.Total,
		MeanProbes:  st.Mean,
		Duration:    elapsed,
	}
	for _, c := range in.Communities {
		diam := in.Diameter(c.Members)
		rep.Communities = append(rep.Communities, CommunityReport{
			Size:        len(c.Members),
			Diameter:    diam,
			Discrepancy: metrics.Discrepancy(in, c.Members, outputs),
			Stretch:     metrics.Stretch(in, c.Members, outputs),
			MeanErr:     metrics.MeanErr(in, c.Members, outputs),
		})
	}
	return rep, nil
}
