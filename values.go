package tellme

import (
	"fmt"
	"math/bits"

	"tellme/internal/bitvec"
)

// Multi-valued grades. The paper remarks (Section 3.1) that Zero Radius
// generalizes beyond binary grades: "the set of allowed values for an
// object is not necessarily binary". This file provides that extension
// through a bit-encoding reduction: an object with values in
// [0, numValues) becomes ceil(log2 numValues) binary objects, preserving
// communities (players who agree on a value agree on all its bits, and
// each differing value contributes between 1 and b bit differences, so
// an (α,D)-typical set stays (α, b·D)-typical).

// ValueBits returns the number of binary objects one multi-valued
// object expands to.
func ValueBits(numValues int) int {
	if numValues < 2 {
		return 1
	}
	return bits.Len(uint(numValues - 1))
}

// EncodeValuesInstance converts an n×m matrix of grades over
// [0, numValues) into a binary Instance with m·ValueBits(numValues)
// objects. Bit b of object o lands at binary coordinate o·bits + b,
// least significant bit first.
func EncodeValuesInstance(values [][]int, numValues int) (*Instance, error) {
	if len(values) == 0 || len(values[0]) == 0 {
		return nil, fmt.Errorf("tellme: empty value matrix")
	}
	if numValues < 2 {
		return nil, fmt.Errorf("tellme: numValues must be ≥ 2")
	}
	m := len(values[0])
	b := ValueBits(numValues)
	vecs := make([]Vector, len(values))
	for p, row := range values {
		if len(row) != m {
			return nil, fmt.Errorf("tellme: row %d has %d objects, want %d", p, len(row), m)
		}
		v := bitvec.New(m * b)
		for o, val := range row {
			if val < 0 || val >= numValues {
				return nil, fmt.Errorf("tellme: value %d at (%d,%d) out of [0,%d)", val, p, o, numValues)
			}
			for k := 0; k < b; k++ {
				if val>>k&1 == 1 {
					v.Set(o*b+k, 1)
				}
			}
		}
		vecs[p] = v
	}
	return CustomInstance(vecs), nil
}

// DecodeValues converts a binary output vector back to grades.
// Undetermined bits ('?') decode as 0, matching the paper's convention;
// UndecodedCount reports how many objects had any undetermined bit.
func DecodeValues(out Partial, m, numValues int) (values []int, undecided int) {
	b := ValueBits(numValues)
	values = make([]int, m)
	for o := 0; o < m; o++ {
		val := 0
		sawUnknown := false
		for k := 0; k < b; k++ {
			switch out.Get(o*b + k) {
			case 1:
				val |= 1 << k
			case bitvec.Unknown:
				sawUnknown = true
			}
		}
		if val >= numValues {
			// A corrupted high bit can exceed the range; clamp.
			val = numValues - 1
		}
		values[o] = val
		if sawUnknown {
			undecided++
		}
	}
	return values, undecided
}

// ValueDist is the generalized Hamming distance between two grade rows:
// the number of objects with differing values.
func ValueDist(a, b []int) int {
	if len(a) != len(b) {
		panic("tellme: ValueDist length mismatch")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
