package tellme

import (
	"encoding/json"
	"fmt"
	"io"
)

// Scenario describes one generated instance plus one algorithm run, for
// scripted batch execution (cmd/tellme -scenarios). JSON shape:
//
//	{
//	  "name":      "adversarial-zero",
//	  "generator": {"kind": "adversarial", "n": 512, "m": 512,
//	                "alpha": 0.3, "d": 0, "seed": 1},
//	  "run":       {"algorithm": "zero", "alpha": 0.3, "seed": 2}
//	}
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Generator describes the instance to build.
	Generator GeneratorSpec `json:"generator"`
	// Run describes the algorithm invocation.
	Run RunSpec `json:"run"`
}

// GeneratorSpec selects and parameterizes an instance generator.
type GeneratorSpec struct {
	// Kind: identical|planted|adversarial|mixture|random|sharedlikes.
	Kind  string  `json:"kind"`
	N     int     `json:"n"`
	M     int     `json:"m"`
	Alpha float64 `json:"alpha,omitempty"`
	D     int     `json:"d,omitempty"`
	// Types and Noise parameterize the mixture generator.
	Types int     `json:"types,omitempty"`
	Noise float64 `json:"noise,omitempty"`
	Seed  uint64  `json:"seed"`
}

// RunSpec selects and parameterizes the algorithm.
type RunSpec struct {
	// Algorithm: auto|main|zero|small|large|anytime.
	Algorithm string  `json:"algorithm"`
	Alpha     float64 `json:"alpha,omitempty"`
	D         int     `json:"d,omitempty"`
	Seed      uint64  `json:"seed"`
	K         int     `json:"k,omitempty"`
	Budget    int64   `json:"budget,omitempty"`
	FlipNoise float64 `json:"flipNoise,omitempty"`
}

// ScenarioResult pairs a scenario with its report.
type ScenarioResult struct {
	Scenario Scenario
	Report   *Report
}

// Build materializes the scenario's instance.
func (g GeneratorSpec) Build() (*Instance, error) {
	if g.N <= 0 {
		return nil, fmt.Errorf("tellme: scenario n must be positive")
	}
	m := g.M
	if m == 0 {
		m = g.N
	}
	switch g.Kind {
	case "identical":
		return IdenticalInstance(g.N, m, g.Alpha, g.Seed), nil
	case "planted":
		return PlantedInstance(g.N, m, g.Alpha, g.D, g.Seed), nil
	case "adversarial":
		return AdversarialInstance(g.N, m, g.Alpha, g.D, g.Seed), nil
	case "mixture":
		types := g.Types
		if types <= 0 {
			types = 4
		}
		return MixtureInstance(g.N, m, types, g.Noise, g.Seed), nil
	case "random":
		return RandomInstance(g.N, m, g.Seed), nil
	default:
		return nil, fmt.Errorf("tellme: unknown generator kind %q", g.Kind)
	}
}

// options converts the RunSpec into Options.
func (r RunSpec) options() (Options, error) {
	algos := map[string]Algorithm{
		"auto": AlgoAuto, "main": AlgoMain, "zero": AlgoZero,
		"small": AlgoSmall, "large": AlgoLarge, "anytime": AlgoAnytime,
	}
	a, ok := algos[r.Algorithm]
	if !ok {
		return Options{}, fmt.Errorf("tellme: unknown algorithm %q", r.Algorithm)
	}
	return Options{
		Algorithm: a,
		Alpha:     r.Alpha,
		D:         r.D,
		Seed:      r.Seed,
		K:         r.K,
		Budget:    r.Budget,
		FlipNoise: r.FlipNoise,
	}, nil
}

// LoadScenarios parses a JSON array of scenarios.
func LoadScenarios(r io.Reader) ([]Scenario, error) {
	var out []Scenario
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("tellme: scenarios: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tellme: no scenarios in input")
	}
	for i, sc := range out {
		if sc.Name == "" {
			return nil, fmt.Errorf("tellme: scenario %d has no name", i)
		}
	}
	return out, nil
}

// RunScenarios executes every scenario in order, stopping at the first
// error.
func RunScenarios(scs []Scenario) ([]ScenarioResult, error) {
	out := make([]ScenarioResult, 0, len(scs))
	for _, sc := range scs {
		in, err := sc.Generator.Build()
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name, err)
		}
		opt, err := sc.Run.options()
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name, err)
		}
		rep, err := Run(in, opt)
		if err != nil {
			return out, fmt.Errorf("%s: %w", sc.Name, err)
		}
		out = append(out, ScenarioResult{Scenario: sc, Report: rep})
	}
	return out, nil
}
