package tellme

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/netboard"
	"tellme/internal/netboard/faultnet"
	"tellme/internal/sim"
)

func TestRunOptionsValidation(t *testing.T) {
	ok := IdenticalInstance(16, 16, 0.5, 1)
	cases := []struct {
		name string
		in   *Instance
		opt  Options
		want string
	}{
		{"nil instance", nil, Options{Alpha: 0.5}, "empty instance"},
		{"empty instance", new(Instance), Options{Alpha: 0.5}, "empty instance"},
		{"alpha zero", ok, Options{Alpha: 0}, "alpha"},
		{"alpha above one", ok, Options{Alpha: 1.5}, "alpha"},
		{"negative D", ok, Options{Alpha: 0.5, D: -1}, "out of"},
		{"D above m", ok, Options{Alpha: 0.5, D: 17}, "out of"},
		{"unknown algorithm", ok, Options{Alpha: 0.5, Algorithm: Algorithm(42)}, "unknown algorithm"},
		{"negative timeout", ok, Options{Alpha: 0.5, Timeout: -time.Second}, "negative timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(tc.in, tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			if rep != nil {
				t.Fatalf("validation error returned a report: %+v", rep)
			}
			var rerr *RunError
			if errors.As(err, &rerr) {
				t.Fatalf("validation failure is a *RunError: %v", err)
			}
		})
	}
}

// panicBoard panics on the victim player's first probe post and counts
// which other players got their posts through.
type panicBoard struct {
	boardclient.Interface
	victim int

	mu     sync.Mutex
	posted map[int]bool
}

func (b *panicBoard) PostProbe(p, o int, val byte) {
	if p == b.victim {
		panic("player exploded")
	}
	b.mu.Lock()
	b.posted[p] = true
	b.mu.Unlock()
	b.Interface.PostProbe(p, o, val)
}

func (b *panicBoard) PostProbes(p int, objs []int, grades []byte) {
	if p == b.victim {
		panic("player exploded")
	}
	b.mu.Lock()
	b.posted[p] = true
	b.mu.Unlock()
	b.Interface.PostProbes(p, objs, grades)
}

func TestPlayerPanicBecomesRunError(t *testing.T) {
	in := IdenticalInstance(32, 64, 0.5, 9)
	pb := &panicBoard{
		Interface: billboard.New(in.N, in.M),
		posted:    map[int]bool{},
	}
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 10, Board: pb})
	if err == nil {
		t.Fatal("panicking player produced no error")
	}
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if rerr.Phase != "zeroradius" {
		t.Fatalf("Phase = %q, want zeroradius", rerr.Phase)
	}
	var perr *sim.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("cause = %T %v, want *sim.PanicError in chain", rerr.Cause, rerr.Cause)
	}
	if perr.Value != "player exploded" {
		t.Fatalf("panic value = %v", perr.Value)
	}
	if rep == nil || rep.Outputs != nil {
		t.Fatalf("want partial report without outputs, got %+v", rep)
	}
	// The barrier still completed: the other workers kept claiming
	// players after the panic, so everyone but the victim posted.
	pb.mu.Lock()
	defer pb.mu.Unlock()
	for p := 0; p < in.N; p++ {
		if p == pb.victim {
			continue
		}
		if !pb.posted[p] {
			t.Fatalf("player %d never posted: barrier abandoned after panic", p)
		}
	}
}

func TestDeadRemoteBoardHitsDeadline(t *testing.T) {
	// A netboard client whose every request vanishes (faultnet drop
	// probability 1) must not spin in retry backoff forever: the run's
	// deadline cancels in-flight requests and backoff waits, and the
	// whole run returns a *RunError well within a small multiple of the
	// deadline.
	in := IdenticalInstance(16, 16, 0.5, 11)
	ft := faultnet.New(nil, 7)
	ft.DropRequest = 1.0
	client := netboard.NewClient("http://127.0.0.1:0")
	client.HTTPClient = &http.Client{Transport: ft}
	client.Retries = 1000
	client.RetryBackoff = 50 * time.Millisecond

	const deadline = 100 * time.Millisecond
	start := time.Now()
	rep, err := Run(in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 12, Board: client, Timeout: deadline})
	elapsed := time.Since(start)

	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err chain hides the deadline: %v", err)
	}
	if !rerr.Timeout() {
		t.Fatal("RunError.Timeout() = false for a blown deadline")
	}
	if rep == nil {
		t.Fatal("no partial report")
	}
	// ~2× deadline is the spec; allow generous CI slack on top.
	if elapsed > 10*deadline {
		t.Fatalf("run took %v against a %v deadline", elapsed, deadline)
	}
}

// cancelBoard cancels the run's context after the k-th topic post.
type cancelBoard struct {
	boardclient.Interface
	cancel context.CancelFunc

	mu    sync.Mutex
	posts int
	after int
}

func (b *cancelBoard) PostValues(name string, player int, vals []uint32) {
	b.Interface.PostValues(name, player, vals)
	b.mu.Lock()
	b.posts++
	if b.posts == b.after {
		b.cancel()
	}
	b.mu.Unlock()
}

func TestCancelMidZeroRadiusLeavesBoardConsistent(t *testing.T) {
	in := IdenticalInstance(32, 64, 0.5, 13)
	opt := Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 14}

	// Reference: the outputs of an undisturbed run on a fresh board.
	want, err := Run(in, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Aborted run: cancel mid-ZeroRadius, on a board we keep.
	shared := billboard.New(in.N, in.M)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cb := &cancelBoard{Interface: shared, cancel: cancel, after: 5}
	aopt := opt
	aopt.Board = cb
	_, err = RunContext(ctx, in, aopt)
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err chain hides the cancellation: %v", err)
	}

	// Consistency 1: the abort path dropped every partially-posted
	// topic, so no in-flight phase state leaks to the next run.
	if n := shared.TopicCount(); n != 0 {
		t.Fatalf("%d topics left on the board after an aborted run", n)
	}

	// Consistency 2: a subsequent run on the same board sees only
	// committed probe postings (which are deterministic ground truth)
	// and reproduces the fresh-board outputs exactly.
	ropt := opt
	ropt.Board = shared
	got, err := Run(in, ropt)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.N; p++ {
		if !want.Outputs[p].Equal(got.Outputs[p]) {
			t.Fatalf("player %d output differs after running on the aborted run's board", p)
		}
	}
}

// TestCancelBetweenEpochsReportsLastCompleted pins the anytime
// checkpoint contract: a run cancelled between epochs J and J+1 returns
// a partial Report whose Outputs are byte-identical to a clean run
// stopped at epoch J (OnPhase returning false), and whose
// CompletedEpochs says J — never the aborted epoch's half-written
// outputs, and never one epoch stale.
func TestCancelBetweenEpochsReportsLastCompleted(t *testing.T) {
	in := IdenticalInstance(32, 64, 0.25, 17)
	const stopAt = 2

	// Reference: stop cleanly right after epoch stopAt completes.
	clean, err := Run(in, Options{
		Algorithm: AlgoAnytime,
		Alpha:     0.5,
		Seed:      18,
		OnPhase:   func(ph PhaseInfo) bool { return ph.Phase < stopAt },
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.CompletedEpochs != stopAt {
		t.Fatalf("clean run completed %d epochs, want %d", clean.CompletedEpochs, stopAt)
	}
	if clean.Outputs == nil {
		t.Fatal("clean run has no outputs")
	}

	// Cancelled run: same seed, but the context dies between epochs —
	// OnPhase keeps going and epoch stopAt+1 aborts on entry.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := RunContext(ctx, in, Options{
		Algorithm: AlgoAnytime,
		Alpha:     0.5,
		Seed:      18,
		OnPhase: func(ph PhaseInfo) bool {
			if ph.Phase == stopAt {
				cancel()
			}
			return true
		},
	})
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err chain hides the cancellation: %v", err)
	}
	if rep == nil {
		t.Fatal("no partial report")
	}
	if rep.CompletedEpochs != stopAt {
		t.Fatalf("partial report says %d completed epochs, want %d", rep.CompletedEpochs, stopAt)
	}
	if rep.Outputs == nil {
		t.Fatal("partial report lost the completed epoch's checkpoint")
	}
	for p := 0; p < in.N; p++ {
		if !clean.Outputs[p].Equal(rep.Outputs[p]) {
			t.Fatalf("player %d: cancelled-run output %s differs from clean epoch-%d output %s",
				p, rep.Outputs[p].String(), stopAt, clean.Outputs[p].String())
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	in := IdenticalInstance(16, 16, 0.5, 15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, in, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 16})
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %T %v, want *RunError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if rep == nil || rep.Outputs != nil {
		t.Fatalf("want partial report without outputs, got %+v", rep)
	}
}
