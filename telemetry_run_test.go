package tellme

import (
	"testing"

	"tellme/internal/telemetry"
)

// TestRunTelemetryCountsMatchReport runs the full stack with telemetry
// attached — players probing concurrently, all instruments shared — and
// cross-checks the registry against the report's own accounting. Run
// under -race this doubles as the concurrency test for the registry.
func TestRunTelemetryCountsMatchReport(t *testing.T) {
	in := PlantedInstance(128, 128, 0.5, 6, 1)
	reg := telemetry.New()
	rep, err := Run(in, Options{Algorithm: AlgoAuto, Alpha: 0.5, Seed: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	// Every charged probe incremented the per-policy counter exactly
	// once; the default policy is charge_all.
	if got := snap.Counters["probe.charged.charge_all"]; got != rep.TotalProbes {
		t.Fatalf("probe.charged.charge_all = %d, report.TotalProbes = %d", got, rep.TotalProbes)
	}
	if got := snap.Counters["probe.invoked.charge_all"]; got < rep.TotalProbes {
		t.Fatalf("probe.invoked.charge_all = %d < charged %d", got, rep.TotalProbes)
	}
	// The in-memory board Run created was instrumented too: posts can't
	// exceed charges (duplicate posts are dropped, every post was
	// charged first).
	posts := snap.Counters["billboard.probe.posts"]
	if posts <= 0 || posts > rep.TotalProbes {
		t.Fatalf("billboard.probe.posts = %d, want in (0, %d]", posts, rep.TotalProbes)
	}
	// The core spans attributed every charged probe to some
	// sub-algorithm; the top-level kinds partition the run, so their
	// probe counters are bounded by the total.
	var spanned int64
	for _, kind := range []string{"unknownd"} {
		spanned += snap.Counters["core."+kind+".probes"]
	}
	if spanned != rep.TotalProbes {
		t.Fatalf("core.unknownd.probes = %d, want %d (the top-level span wraps the whole run)", spanned, rep.TotalProbes)
	}
	if snap.Counters["core.unknownd.calls"] != 1 {
		t.Fatalf("core.unknownd.calls = %d, want 1", snap.Counters["core.unknownd.calls"])
	}

	// Telemetry must not perturb the simulation: same seed without a
	// registry reproduces the exact outputs.
	rep2, err := Run(in, Options{Algorithm: AlgoAuto, Alpha: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outputs) != len(rep2.Outputs) {
		t.Fatalf("output count diverged: %d vs %d", len(rep.Outputs), len(rep2.Outputs))
	}
	for p := range rep.Outputs {
		if rep.Outputs[p].String() != rep2.Outputs[p].String() {
			t.Fatalf("player %d output diverged with telemetry enabled", p)
		}
	}
	if rep.TotalProbes != rep2.TotalProbes {
		t.Fatalf("probe totals diverged: %d with telemetry, %d without", rep.TotalProbes, rep2.TotalProbes)
	}
}
