# Tier-1 verification targets. `make verify` is the full gate: vet plus
# the whole suite under the race detector, which exercises the lock-free
# probe shards and the epoch-cached vote tallies under real
# interleavings (see internal/billboard/stress_test.go), and the
# netboard fault-injection stress (internal/netboard/stress_test.go):
# dropped requests, responses lost after the server committed, and
# concurrent duplicated deliveries, proving zero lost and zero
# double-applied posts under -race.

GO ?= go

.PHONY: build test race stress-net race-telemetry verify bench bench-net bench-telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./... && $(GO) test -race ./...

# The netboard fault-injection stress on its own (it also runs as part
# of `race`); useful when iterating on the wire protocol.
stress-net:
	$(GO) test -race -run 'FaultSchedule|FaultyHTTP|Faultnet|Dedupe|RetryAfterCommit' ./internal/netboard/

# The telemetry concurrency gate on its own (also part of `race`): a
# full Run with every instrument shared across the player goroutines,
# plus the registry hammer test, under the race detector.
race-telemetry:
	$(GO) test -race -run 'RunTelemetryCountsMatchReport' . && $(GO) test -race -run 'TelemetryConcurrentUpdates' ./internal/telemetry/

verify: build race stress-net race-telemetry

# Refresh the perf-trajectory snapshots at the repo root.
# BENCH_1.json: core experiment benchmarks.
bench:
	$(GO) run ./cmd/benchdiff -bench 'E1ZeroRadius|E8Main' -count 5

# BENCH_2.json: networked-billboard throughput — full Zero Radius runs
# over HTTP, batched vs legacy wire protocol, with requests/op.
bench-net:
	$(GO) run ./cmd/benchdiff -suite netboard -count 3

# BENCH_3.json: telemetry overhead — E1/E8 with the registry disabled
# (nil, the zero-cost path) vs enabled; enabled stays within ~2%.
bench-telemetry:
	$(GO) run ./cmd/benchdiff -suite telemetry -count 5 -interleave
