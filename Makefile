# Tier-1 verification targets. `make verify` is the full gate: vet plus
# the whole suite under the race detector, which exercises the lock-free
# probe shards and the epoch-cached vote tallies under real
# interleavings (see internal/billboard/stress_test.go), and the
# netboard fault-injection stress (internal/netboard/stress_test.go):
# dropped requests, responses lost after the server committed, and
# concurrent duplicated deliveries, proving zero lost and zero
# double-applied posts under -race.

GO ?= go

.PHONY: build test race stress-net stress-cluster stress-churn race-telemetry race-cancel loadgen-smoke verify bench bench-net bench-telemetry bench-cancel bench-core bench-core-ab bench-wire bench-loadgen

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./... && $(GO) test -race ./...

# The netboard fault-injection stress on its own (it also runs as part
# of `race`); useful when iterating on the wire protocol.
stress-net:
	$(GO) test -race -run 'FaultSchedule|FaultyHTTP|Faultnet|Dedupe|RetryAfterCommit' ./internal/netboard/

# The sharded-cluster gate on its own (also part of `race`): the
# consistent-hash ring invariants, the cluster-vs-single-board identity
# oracles, resharding drains, and the multi-shard fault-injection
# stress — one shard's network degraded while concurrent players post —
# proving zero lost and zero double-applied posts under -race
# (internal/netboard/cluster_stress_test.go).
stress-cluster:
	$(GO) test -race -run 'Ring|Cluster' ./internal/netboard/

# The serving-churn gate on its own (also part of `race`): players
# joining and leaving at every epoch boundary against a 4-shard cluster
# behind a fault-injecting transport, compared snapshot-for-snapshot
# against an in-process engine with the same seed — zero lost and zero
# duplicated posts, and every recommendation served from the epoch it
# claims (internal/serve/churn_stress_test.go).
stress-churn:
	$(GO) test -race -run 'StressChurn' ./internal/serve/

# The telemetry concurrency gate on its own (also part of `race`): a
# full Run with every instrument shared across the player goroutines,
# plus the registry hammer test, under the race detector.
race-telemetry:
	$(GO) test -race -run 'RunTelemetryCountsMatchReport' . && $(GO) test -race -run 'TelemetryConcurrentUpdates' ./internal/telemetry/

# The cancellation gate on its own (also part of `race`): phase workers
# cancelled mid-phase, player panics surfacing as errors with the
# barrier intact, a dead networked billboard hitting its deadline, and
# an aborted run leaving the shared board consistent.
race-cancel:
	$(GO) test -race -run 'Cancel|PanicBecomes|Deadline|PreCancelled' . ./internal/sim/ ./internal/netboard/

# The load-generator smoke (also part of `race` via the package tests):
# a 10k-player in-process fleet plus a 2-shard loopback cluster run,
# each audited against the board's exact probe counter — zero lost,
# zero duplicated posts — then a real loadgen binary run that emits a
# capacity artifact (to a scratch path, so the committed BENCH_NET.json
# from the full `bench-loadgen` run is never clobbered by a smoke).
loadgen-smoke:
	$(GO) test -run 'Smoke|ResolveTarget|ExpectedProbes' ./cmd/loadgen/
	$(GO) run ./cmd/loadgen -players 10000 -m 64 -post-batch 16 -workers 40 \
		-rates 20000 -duration 1s -out BENCH_NET.smoke.json

verify: build race stress-net stress-cluster stress-churn race-telemetry race-cancel loadgen-smoke

# Refresh the perf-trajectory snapshots at the repo root.
# BENCH_1.json: core experiment benchmarks.
bench:
	$(GO) run ./cmd/benchdiff -bench 'E1ZeroRadius|E8Main' -count 5

# BENCH_2.json: networked-billboard throughput — full Zero Radius runs
# over HTTP, batched vs legacy wire protocol, with requests/op.
bench-net:
	$(GO) run ./cmd/benchdiff -suite netboard -count 3

# BENCH_3.json: telemetry overhead — E1/E8 with the registry disabled
# (nil, the zero-cost path) vs enabled; enabled stays within ~2%.
bench-telemetry:
	$(GO) run ./cmd/benchdiff -suite telemetry -count 5 -interleave

# BENCH_4.json: context-threading overhead — the same E1/E8 benchmarks
# after ctx plumbing reached every layer, compared against the
# pre-context BENCH_3 baseline; the nil/Background fast path must keep
# them within ~2%.
bench-cancel:
	$(GO) run ./cmd/benchdiff -suite cancel -count 5 -interleave -baseline BENCH_3.json

# BENCH_5.json: the bit-plane tally engine and arena scratch reuse —
# E1/E8 end to end plus the billboard tally microbenchmarks, compared
# against the pre-rewrite BENCH_4 baseline. Fails (exit 1) if an E8
# benchmark regresses more than 10% over the baseline. The gate is
# scoped to E8 because BENCH_4's wall-clock numbers were recorded under
# that session's machine speed: E8's rewrite headroom (>2×) absorbs any
# plausible drift, while gating E1 (a ~1.2× win) against stale numbers
# would fail spuriously whenever the box runs slower than it did then.
# For a drift-immune comparison, benchmark the baseline *code* in the
# same window instead: make bench-core-ab REF=<pre-rewrite commit>.
bench-core:
	$(GO) run ./cmd/benchdiff -suite core -count 5 -interleave -baseline BENCH_4.json -fail-regress 10 -fail-bench 'E8Main'

# Same suite, but measured A/B against the code at REF (default HEAD:
# working tree vs last commit) in alternating runs within one
# wall-clock window — machine-speed drift cancels out, so any benchmark
# may be gated, not just the high-headroom ones. Point REF at an older
# commit (e.g. the one recorded in a BENCH_N.json) to re-measure a
# whole PR's effect on today's machine.
REF ?= HEAD
bench-core-ab:
	$(GO) run ./cmd/benchdiff -suite core -count 5 -ref "$(REF)" -fail-regress 10

# BENCH_WIRE.json: the wire-codec microbenchmarks — encode/decode of
# the hot message shapes under the JSON and binary codecs, with
# allocs/op from the pooled-buffer path. Fast enough to run as a CI
# smoke (BENCHTIME trims it further there).
BENCHTIME ?= 1s
bench-wire:
	$(GO) run ./cmd/benchdiff -suite wire -count 3 -benchtime $(BENCHTIME)

# BENCH_NET.json: the serving-capacity table from a full local loadgen
# run — a million-player fleet auto-ramping its round rate against a
# 4-shard loopback cluster until the p99 SLO breaks, with the exact
# probe-counter audit on. The -codec sweep runs the whole ramp once per
# wire codec against a fresh cluster, so the table carries a JSON row
# and a binary row at every rate for A/B reading. Heavier knobs than
# loadgen-smoke; see EXPERIMENTS.md for reading the table.
bench-loadgen:
	$(GO) run ./cmd/loadgen -players 1000000 -m 512 -post-batch 64 \
		-workers 128 -local-shards 4 -duration 5s -warmup 2s -repeat 3 \
		-codec json,binary -out BENCH_NET.json
