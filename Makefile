# Tier-1 verification targets. `make verify` is the full gate: vet plus
# the whole suite under the race detector, which exercises the lock-free
# probe shards and the epoch-cached vote tallies under real
# interleavings (see internal/billboard/stress_test.go).

GO ?= go

.PHONY: build test race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./... && $(GO) test -race ./...

verify: build race

# Refresh the perf-trajectory snapshot (BENCH_1.json at the repo root).
bench:
	$(GO) run ./cmd/benchdiff -bench 'E1ZeroRadius|E8Main' -count 5
