package tellme

import "fmt"

func ExampleRun() {
	inst := IdenticalInstance(256, 256, 0.5, 42)
	rep, err := Run(inst, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 7})
	if err != nil {
		panic(err)
	}
	c := rep.Communities[0]
	fmt.Printf("community %d players, worst error %d, probes/player %d of %d\n",
		c.Size, c.Discrepancy, rep.MaxProbes, inst.M)
	// Output: community 128 players, worst error 0, probes/player 16 of 256
}

func ExampleRunBaseline() {
	inst := IdenticalInstance(128, 128, 0.5, 9)
	rep, err := RunBaseline(inst, BaselineOptions{Baseline: BaselineMajority, Budget: 16, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("majority baseline probes/player: %d\n", rep.MaxProbes)
	// Output: majority baseline probes/player: 16
}

func ExampleEncodeValuesInstance() {
	values := [][]int{
		{0, 3, 1},
		{0, 3, 1},
		{2, 2, 2},
	}
	inst, err := EncodeValuesInstance(values, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d players × %d objects → %d binary objects\n",
		inst.N, 3, inst.M)
	decoded, undecided := DecodeValues(PartialOfVector(inst.Vector(0)), 3, 4)
	fmt.Println(decoded, undecided)
	// Output:
	// 3 players × 3 objects → 6 binary objects
	// [0 3 1] 0
}

func ExampleRunOneGood() {
	// Reference [4]: find one liked object each. 4 shared liked objects
	// among 1024; recommendation propagation makes the community's
	// search nearly free.
	inst := SharedLikesInstance(128, 1024, 0.5, 4, 4, 1)
	res, err := RunOneGood(inst, OneGoodOptions{Seed: 2})
	if err != nil {
		panic(err)
	}
	comm := inst.Communities[0].Members
	worst := 0
	for _, p := range comm {
		if res.FoundAt[p] > worst {
			worst = res.FoundAt[p]
		}
	}
	fmt.Printf("all %d community members satisfied within %d rounds\n", len(comm), worst)
	// Output: all 64 community members satisfied within 9 rounds
}

func ExampleRunRefresh() {
	inst := IdenticalInstance(128, 128, 0.5, 95)
	first, _ := Run(inst, Options{Algorithm: AlgoZero, Alpha: 0.5, Seed: 96})
	// the world drifts by 6 coordinates; repair instead of re-running
	drifted := DriftInstance(inst, 6, 0, 97)
	rep, _ := RunRefresh(drifted, first.Outputs, RefreshOptions{
		Alpha: 0.5, ExpectedDrift: 6, Seed: 98,
	})
	fmt.Printf("repaired with %d probes/player (fresh run took %d), error %d\n",
		rep.MaxProbes, first.MaxProbes, rep.Communities[0].Discrepancy)
	// Output: repaired with 10 probes/player (fresh run took 16), error 0
}
