package tellme

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	in := PlantedInstance(32, 32, 0.5, 4, 40)
	rep, err := Run(in, Options{Algorithm: AlgoSmall, Alpha: 0.5, D: 4, Seed: 41, TraceCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, traceLines, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxProbes != rep.MaxProbes || got.TotalProbes != rep.TotalProbes {
		t.Fatalf("probe stats changed: %+v", got)
	}
	if len(got.Outputs) != in.N {
		t.Fatalf("%d outputs", len(got.Outputs))
	}
	for p := 0; p < in.N; p++ {
		if !got.Outputs[p].Equal(rep.Outputs[p]) {
			t.Fatalf("output %d changed", p)
		}
	}
	if len(got.Communities) != 1 || got.Communities[0].Discrepancy != rep.Communities[0].Discrepancy {
		t.Fatalf("communities changed: %+v", got.Communities)
	}
	if got.SubAlgorithmRuns["ZeroRadius"] != rep.SubAlgorithmRuns["ZeroRadius"] {
		t.Fatal("sub-run counts changed")
	}
	if len(traceLines) == 0 || !strings.Contains(traceLines[0], "smallradius.start") {
		t.Fatalf("trace lines: %v", traceLines[:min(3, len(traceLines))])
	}
}

func TestSaveReportNil(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveReport(&buf, nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestLoadReportRejectsBadOutputs(t *testing.T) {
	if _, _, err := LoadReport(strings.NewReader(`{"outputs":["01x"]}`)); err == nil {
		t.Fatal("bad output vector accepted")
	}
	if _, _, err := LoadReport(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
