package tellme

import (
	"io"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
)

// IdenticalInstance plants one community of ≥ alpha·n players sharing a
// single random preference vector (the D = 0 case of Theorem 3.1).
func IdenticalInstance(n, m int, alpha float64, seed uint64) *Instance {
	return prefs.Identical(n, m, alpha, seed)
}

// PlantedInstance plants one (alpha, d)-typical community: members lie
// within d/2 of a random center, so pairwise diameter is at most d.
func PlantedInstance(n, m int, alpha float64, d int, seed uint64) *Instance {
	return prefs.Planted(n, m, alpha, d, seed)
}

// CommunitySpec describes one community for MultiCommunityInstance.
type CommunitySpec = prefs.CommunitySpec

// MultiCommunityInstance plants several disjoint communities; leftover
// players get uniformly random preferences.
func MultiCommunityInstance(n, m int, specs []CommunitySpec, seed uint64) *Instance {
	return prefs.MultiCommunity(n, m, specs, seed)
}

// AdversarialInstance plants an (alpha, d)-typical community among
// colluding outsider blocks designed to attack vote-counting steps.
func AdversarialInstance(n, m int, alpha float64, d int, seed uint64) *Instance {
	return prefs.AdversarialVoteSplit(n, m, alpha, d, seed)
}

// MixtureInstance generates the low-rank model of the non-interactive
// literature: k type vectors, each player a noisy copy of one type.
func MixtureInstance(n, m, k int, noise float64, seed uint64) *Instance {
	return prefs.TypesMixture(n, m, k, noise, seed)
}

// RandomInstance has fully independent uniform preferences — the
// unstructured floor where collaboration cannot help.
func RandomInstance(n, m int, seed uint64) *Instance {
	return prefs.UniformRandom(n, m, seed)
}

// CustomInstance wraps explicit preference vectors (all the same
// length) into an Instance, e.g. to run the algorithms on your own data.
func CustomInstance(vectors []Vector) *Instance {
	return prefs.FromVectors(vectors)
}

// NewVector returns an all-zero preference vector of length m.
func NewVector(m int) Vector { return bitvec.New(m) }

// VectorFromString parses a '0'/'1' string into a Vector.
func VectorFromString(s string) (Vector, error) { return bitvec.FromString(s) }

// PartialOfVector lifts a total vector into a fully-known Partial.
func PartialOfVector(v Vector) Partial { return bitvec.PartialOf(v) }

// SaveInstance writes the instance in the compact binary format
// (roughly n·m/8 bytes), suitable for archiving experiment inputs.
func SaveInstance(w io.Writer, in *Instance) error { return in.WriteBinary(w) }

// LoadInstance reads an instance written by SaveInstance.
func LoadInstance(r io.Reader) (*Instance, error) { return prefs.ReadBinary(r) }

// SaveInstanceJSON writes the instance as JSON (larger, greppable).
func SaveInstanceJSON(w io.Writer, in *Instance) error { return in.WriteJSON(w) }

// LoadInstanceJSON reads an instance written by SaveInstanceJSON.
func LoadInstanceJSON(r io.Reader) (*Instance, error) { return prefs.ReadJSON(r) }

// DriftInstance returns a drifted copy of the instance: each planted
// community's taste shifts coherently by communityFlips coordinates and
// every player suffers up to playerFlips idiosyncratic flips (the
// dynamic-environment model measured in experiments E17/E20).
func DriftInstance(in *Instance, communityFlips, playerFlips int, seed uint64) *Instance {
	return prefs.Drift(in, communityFlips, playerFlips, seed)
}

// SharedLikesInstance builds the one-good-object setting of the paper's
// reference [4]: a community of ≥ alpha·n players who like exactly the
// same `liked` objects, with every outsider liking `outsiderLikes`
// random objects of its own.
func SharedLikesInstance(n, m int, alpha float64, liked, outsiderLikes int, seed uint64) *Instance {
	return prefs.SharedLikes(n, m, alpha, liked, outsiderLikes, seed)
}
