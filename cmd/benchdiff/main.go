// Command benchdiff runs the repository's experiment benchmarks and
// records a perf-trajectory snapshot as JSON, so successive PRs can
// compare ns/op and allocs/op against earlier baselines.
//
// Usage:
//
//	go run ./cmd/benchdiff                         # run and write BENCH_1.json
//	go run ./cmd/benchdiff -bench 'E1|E8' -count 3
//	go run ./cmd/benchdiff -input old.txt          # parse a saved `go test -bench` log
//	go run ./cmd/benchdiff -baseline BENCH_0.json  # embed a before/after comparison
//
// Each benchmark is summarized by its minimum ns/op over the repeated
// runs (minimum is the standard low-noise estimator for wall time) and
// the per-op bytes and allocation counts, which Go reports
// deterministically.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is one benchmark's aggregate over all -count runs.
type Summary struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`      // minimum over runs
	MeanNs   float64 `json:"ns_per_op_mean"` // mean over runs
	BytesOp  int64   `json:"bytes_per_op"`   // minimum over runs
	AllocsOp int64   `json:"allocs_per_op"`  // minimum over runs
	// Extra holds custom b.ReportMetric units (e.g. "requests/op" from
	// the netboard suite), each the minimum over runs.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// suites are named benchmark presets: -suite <name> fills in the
// package, regexp, and output path so trajectory files stay comparable
// across PRs.
var suites = map[string]struct {
	pkg, bench, out string
}{
	// The experiment benchmarks of the root package (the default).
	"experiments": {pkg: ".", bench: ".", out: "BENCH_1.json"},
	// The networked-billboard throughput suite: full Zero Radius runs
	// over HTTP, batched vs legacy wire protocol, reporting requests/op.
	"netboard": {pkg: "./internal/netboard", bench: "NetboardRun|HTTP", out: "BENCH_2.json"},
	// The telemetry-overhead suite: E1/E8 with telemetry disabled (the
	// plain benchmarks — nil registry on the hot path) and enabled (the
	// *Telemetry variants); enabled must stay within ~2% of disabled.
	"telemetry": {pkg: ".", bench: "E1ZeroRadius|E8Main", out: "BENCH_3.json"},
	// The context-threading suite: the same E1/E8 benchmarks after ctx
	// plumbing reached every layer. Run with -baseline BENCH_3.json to
	// prove the nil/Background fast path keeps the hot loops within ~2%
	// of the pre-context numbers.
	"cancel": {pkg: ".", bench: "E1ZeroRadius|E8Main", out: "BENCH_4.json"},
	// The core-engine suite: E1/E8 end to end plus the billboard tally
	// microbenchmarks behind them. Run with -baseline BENCH_4.json to
	// track the bit-plane/arena rewrite; `make bench-core` adds
	// -fail-regress 10 so a >10% E1/E8 slowdown fails the build.
	"core": {pkg: ".,./internal/billboard", bench: "E1ZeroRadius|E8Main|VotesLargeTopic|PopularVectors|PostValues", out: "BENCH_5.json"},
	// The wire-codec suite: encode/decode microbenchmarks of the two hot
	// message shapes (topic snapshot, probe batch) under the JSON and
	// binary codecs, with allocs/op from the pooled-buffer path. `make
	// bench-wire` runs it as the CI smoke.
	"wire": {pkg: "./internal/netboard", bench: "WireEncode|WireDecode", out: "BENCH_WIRE.json"},
}

// Comparison is the per-benchmark before/after delta when -baseline is
// given.
type Comparison struct {
	Name         string  `json:"name"`
	BaseNsPerOp  float64 `json:"base_ns_per_op"`
	NsPerOp      float64 `json:"ns_per_op"`
	Speedup      float64 `json:"speedup"` // base / current, >1 is faster
	BaseAllocsOp int64   `json:"base_allocs_per_op"`
	AllocsOp     int64   `json:"allocs_per_op"`
}

// File is the BENCH_N.json schema.
type File struct {
	Command string `json:"command"`
	Go      string `json:"go"`
	// Commit is the HEAD commit the benchmarks ran on (best-effort), so
	// a later PR can re-run this snapshot's code with -ref instead of
	// trusting wall-clock numbers recorded on a different machine state.
	Commit string `json:"commit,omitempty"`
	// RefCommit is set when -ref was used: the baseline summaries were
	// measured from this commit in the same wall-clock window as the
	// current ones (alternating runs), so their ns/op ratio is valid
	// even on a machine whose speed drifts between sessions.
	RefCommit  string       `json:"ref_commit,omitempty"`
	Benchmarks []Summary    `json:"benchmarks"`
	Baseline   []Summary    `json:"baseline,omitempty"`
	Comparison []Comparison `json:"comparison,omitempty"`
}

func main() {
	var (
		bench    = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		count    = flag.Int("count", 5, "repetitions per benchmark (go test -count)")
		btime    = flag.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime); empty keeps go's default")
		pkg      = flag.String("pkg", ".", "package to benchmark")
		out      = flag.String("out", "BENCH_1.json", "output JSON path")
		suite    = flag.String("suite", "", "named preset (experiments, netboard); sets -pkg/-bench/-out unless overridden")
		input    = flag.String("input", "", "parse this saved benchmark log instead of running go test")
		baseline = flag.String("baseline", "", "prior benchdiff JSON or raw benchmark log to compare against")
		inter    = flag.Bool("interleave", false, "run go test -count times with -count=1 instead of once with -count=N: each benchmark's samples then spread across the whole wall-clock window, so slow machine drift hits every benchmark equally (use when benchmarks are compared against each other, as in the telemetry suite)")
		failPct  = flag.Float64("fail-regress", 0, "exit nonzero when any benchmark present in the baseline is more than this percent slower (ns/op) than the baseline; 0 disables the gate")
		failRe   = flag.String("fail-bench", "", "restrict the -fail-regress gate to benchmarks matching this regexp; wall-clock numbers in a saved baseline were recorded under that machine's speed, so gate only the benchmarks whose budget has headroom for drift (or use -ref, which is drift-immune)")
		ref      = flag.String("ref", "", "git rev to benchmark as the baseline in the same wall-clock window: the rev is checked out into a temporary worktree and its runs alternate with the current tree's, so the comparison (and -fail-regress) is immune to machine-speed drift; implies -interleave and overrides -baseline")
	)
	flag.Parse()
	if *suite != "" {
		preset, ok := suites[*suite]
		if !ok {
			fatal(fmt.Errorf("unknown suite %q (have: experiments, netboard, telemetry, cancel, core, wire)", *suite))
		}
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["pkg"] {
			*pkg = preset.pkg
		}
		if !set["bench"] {
			*bench = preset.bench
		}
		if !set["out"] {
			*out = preset.out
		}
	}

	benchtime = *btime
	cmdline := fmt.Sprintf("go test -run ^$ -bench %s -benchmem -count=%d %s", *bench, *count, *pkg)
	var sums, baseSums []Summary
	var err error
	refCommit := ""
	switch {
	case *input != "":
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		sums, err = parseBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cmdline = "parsed from " + *input
	case *ref != "":
		sums, baseSums, refCommit = runAB(*bench, *count, *pkg, *ref)
		cmdline = fmt.Sprintf("%d x go test -run ^$ -bench %s -benchmem -count=1 %s (interleaved A/B vs %s)",
			*count, *bench, *pkg, *ref)
	case *inter:
		var all strings.Builder
		for i := 0; i < *count; i++ {
			out, err := runGoTest("", *bench, 1, *pkg)
			if err != nil {
				fatal(err)
			}
			all.WriteString(out)
		}
		sums, err = parseBench(strings.NewReader(all.String()))
		if err != nil {
			fatal(err)
		}
		cmdline = fmt.Sprintf("%d x go test -run ^$ -bench %s -benchmem -count=1 %s (interleaved)", *count, *bench, *pkg)
	default:
		out, err := runGoTest("", *bench, *count, *pkg)
		if err != nil {
			fatal(err)
		}
		sums, err = parseBench(strings.NewReader(out))
		if err != nil {
			fatal(err)
		}
	}
	if baseSums == nil && *baseline != "" {
		baseSums, err = loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
	}

	comps := write(*out, cmdline, refCommit, sums, baseSums)
	if *failPct > 0 {
		gate := regexp.MustCompile(*failRe) // "" matches everything
		failed := false
		for _, c := range comps {
			if !gate.MatchString(c.Name) {
				continue
			}
			if c.BaseNsPerOp > 0 && c.NsPerOp > c.BaseNsPerOp*(1+*failPct/100) {
				fmt.Fprintf(os.Stderr, "REGRESSION: %s %.0f -> %.0f ns/op (more than %.0f%% slower than baseline)\n",
					c.Name, c.BaseNsPerOp, c.NsPerOp, *failPct)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// runAB benchmarks the working tree against a git rev in the same
// wall-clock window: the rev is checked out into a temporary worktree
// and single-count runs of the two trees alternate, so machine-speed
// drift during (or before) the session biases both sides equally. The
// returned baseline summaries come from the rev's code, freshly
// measured — never from numbers recorded on an earlier machine state.
func runAB(bench string, count int, pkgs, ref string) (cur, base []Summary, refCommit string) {
	dir, err := os.MkdirTemp("", "benchdiff-ref-")
	if err != nil {
		fatal(err)
	}
	cleanup := func() {
		exec.Command("git", "worktree", "remove", "--force", dir).Run()
		os.RemoveAll(dir)
	}
	fail := func(err error) {
		cleanup()
		fatal(err)
	}
	if out, err := exec.Command("git", "worktree", "add", "--detach", dir, ref).CombinedOutput(); err != nil {
		fail(fmt.Errorf("git worktree add %s: %v\n%s", ref, err, out))
	}
	defer cleanup()
	if out, err := exec.Command("git", "-C", dir, "rev-parse", "HEAD").Output(); err == nil {
		refCommit = strings.TrimSpace(string(out))
	}
	var curBuf, refBuf strings.Builder
	for i := 0; i < count; i++ {
		out, err := runGoTest(dir, bench, 1, pkgs)
		if err != nil {
			fail(err)
		}
		refBuf.WriteString(out)
		if out, err = runGoTest("", bench, 1, pkgs); err != nil {
			fail(err)
		}
		curBuf.WriteString(out)
	}
	if cur, err = parseBench(strings.NewReader(curBuf.String())); err != nil {
		fail(err)
	}
	if base, err = parseBench(strings.NewReader(refBuf.String())); err != nil {
		fail(err)
	}
	return cur, base, refCommit
}

// benchtime is the -benchtime value passed through to every go test
// invocation ("" keeps go's default).
var benchtime string

// runGoTest executes one `go test -bench` invocation per comma-separated
// package in dir ("" = current directory) and returns the concatenated
// stdout (benchmark lines).
func runGoTest(dir, bench string, count int, pkgs string) (string, error) {
	var all strings.Builder
	for _, pkg := range strings.Split(pkgs, ",") {
		args := []string{"test", "-run", "^$", "-bench", bench,
			"-benchmem", fmt.Sprintf("-count=%d", count)}
		if benchtime != "" {
			args = append(args, "-benchtime", benchtime)
		}
		cmd := exec.Command("go", append(args, pkg)...)
		cmd.Dir = dir
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fmt.Fprint(os.Stderr, string(out))
			return "", fmt.Errorf("go test %s: %w", pkg, err)
		}
		all.Write(out)
	}
	return all.String(), nil
}

func write(path, cmdline, refCommit string, sums, base []Summary) []Comparison {
	f := File{Command: cmdline, Go: goVersion(), Commit: headCommit(), RefCommit: refCommit, Benchmarks: sums}
	if base != nil {
		f.Baseline = base
		f.Comparison = compare(base, sums)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	for _, s := range sums {
		fmt.Printf("%-40s %12.0f ns/op %10d B/op %8d allocs/op  (%d runs)\n",
			s.Name, s.NsPerOp, s.BytesOp, s.AllocsOp, s.Runs)
		units := make([]string, 0, len(s.Extra))
		for u := range s.Extra {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Printf("%-40s %12.1f %s\n", "", s.Extra[u], u)
		}
	}
	for _, c := range f.Comparison {
		fmt.Printf("%-40s %6.2fx ns/op  allocs %d -> %d\n",
			c.Name, c.Speedup, c.BaseAllocsOp, c.AllocsOp)
	}
	fmt.Printf("wrote %s\n", path)
	return f.Comparison
}

// parseBench reads `go test -bench -benchmem` output lines of the form
//
//	BenchmarkName-8   123   456789 ns/op   1024 B/op   17 allocs/op
//
// and aggregates repeated runs of the same benchmark.
func parseBench(r io.Reader) ([]Summary, error) {
	type acc struct {
		runs    int
		minNs   float64
		sumNs   float64
		bytes   int64
		allocs  int64
		extra   map[string]float64
		hasMem  bool
		hasInit bool
	}
	byName := map[string]*acc{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.SplitN(fields[0], "-", 2)[0] // strip -GOMAXPROCS suffix
		var ns float64
		var bytesOp, allocsOp int64 = -1, -1
		var extra map[string]float64
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				ns = v
			case "B/op":
				bytesOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				allocsOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				// A custom b.ReportMetric unit, e.g. "requests/op".
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if extra == nil {
						extra = map[string]float64{}
					}
					extra[unit] = v
				}
			}
		}
		a, ok := byName[name]
		if !ok {
			a = &acc{}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		a.sumNs += ns
		if !a.hasInit || ns < a.minNs {
			a.minNs = ns
			a.hasInit = true
		}
		if bytesOp >= 0 && (!a.hasMem || bytesOp < a.bytes) {
			a.bytes = bytesOp
		}
		if allocsOp >= 0 && (!a.hasMem || allocsOp < a.allocs) {
			a.allocs = allocsOp
		}
		if bytesOp >= 0 || allocsOp >= 0 {
			a.hasMem = true
		}
		for unit, v := range extra {
			if a.extra == nil {
				a.extra = map[string]float64{}
			}
			if old, ok := a.extra[unit]; !ok || v < old {
				a.extra[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	out := make([]Summary, 0, len(order))
	for _, name := range order {
		a := byName[name]
		out = append(out, Summary{
			Name:     name,
			Runs:     a.runs,
			NsPerOp:  a.minNs,
			MeanNs:   a.sumNs / float64(a.runs),
			BytesOp:  a.bytes,
			AllocsOp: a.allocs,
			Extra:    a.extra,
		})
	}
	return out, nil
}

// loadBaseline accepts either a prior benchdiff JSON file or a raw
// `go test -bench` log.
func loadBaseline(path string) ([]Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if json.Valid(data) {
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, err
		}
		return f.Benchmarks, nil
	}
	return parseBench(strings.NewReader(string(data)))
}

func compare(base, cur []Summary) []Comparison {
	byName := map[string]Summary{}
	for _, b := range base {
		byName[b.Name] = b
	}
	var out []Comparison
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok || c.NsPerOp == 0 {
			continue
		}
		out = append(out, Comparison{
			Name:         c.Name,
			BaseNsPerOp:  b.NsPerOp,
			NsPerOp:      c.NsPerOp,
			Speedup:      b.NsPerOp / c.NsPerOp,
			BaseAllocsOp: b.AllocsOp,
			AllocsOp:     c.AllocsOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	// A dirty tree means the numbers reflect code beyond the commit;
	// say so rather than record a misleadingly precise provenance.
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		commit += "-dirty"
	}
	return commit
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
