package main

import (
	"os"
	"testing"

	"tellme/internal/billboard"
)

func TestLoadBoardFresh(t *testing.T) {
	b, err := loadBoard("", 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 8 || b.M() != 16 {
		t.Fatalf("dims %dx%d", b.N(), b.M())
	}
}

func TestLoadBoardMissingFileIsFresh(t *testing.T) {
	b, err := loadBoard(t.TempDir()+"/none.json", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.ProbeCount() != 0 {
		t.Fatal("missing file produced non-empty board")
	}
}

func TestSaveLoadBoardRoundTrip(t *testing.T) {
	path := t.TempDir() + "/state.json"
	b := billboard.New(4, 8)
	b.PostProbe(1, 2, 1)
	b.PostValues("t", 0, []uint32{5})
	if err := saveBoard(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := loadBoard(path, 0, 0) // dims come from the snapshot
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.M() != 8 {
		t.Fatalf("dims %dx%d", got.N(), got.M())
	}
	if v, ok := got.LookupProbe(1, 2); !ok || v != 1 {
		t.Fatal("probe lost across save/load")
	}
	if len(got.ValuePostings("t")) != 1 {
		t.Fatal("value posting lost")
	}
	// atomic write: no stray temp file
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestLoadBoardCorruptFails(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBoard(path, 4, 4); err == nil {
		t.Fatal("corrupt state accepted")
	}
}
