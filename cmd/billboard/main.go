// Command billboard serves a shared billboard over HTTP — the paper's
// public board as an actual service. Players in other processes connect
// through the same billboard interface the in-memory simulator uses
// (see Options.BoardURL in the tellme package).
//
//	billboard -addr :7070 -n 1024 -m 1024
//	billboard -addr :7070 -n 1024 -m 1024 -state board.json  # persistent
//	billboard -addr :7070 -n 1024 -m 1024 -shards 4          # cluster
//
// With -shards K (K > 1), the command runs K independent shard servers
// on consecutive ports starting at -addr's port and prints the cluster
// spec — the comma-separated base-URL list that tellme -board,
// Options.BoardURL and netboard.NewCluster accept. Each shard is a
// complete billboard server; clients route topics and probe columns
// across them by consistent hashing (DESIGN.md §12). With -state, each
// shard snapshots to its own file (<state>.shard<i>).
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -shutdown-grace before exiting. With
// -state, the board is restored from the file at startup (if it exists)
// and snapshotted back after the drain.
//
// The server always exposes runtime telemetry: GET /debug/telemetry
// returns every counter and histogram as JSON, and
// /debug/telemetry/prometheus the same registry in the Prometheus text
// format. With -pprof, the standard net/http/pprof profile endpoints
// are mounted under /debug/pprof/ as well.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address (with -shards K, the first of K consecutive ports)")
		n         = flag.Int("n", 1024, "number of players")
		m         = flag.Int("m", 1024, "number of objects")
		shards    = flag.Int("shards", 1, "shard servers to run on consecutive ports; >1 prints the cluster spec")
		state     = flag.String("state", "", "snapshot file: restore at start, save on shutdown (per shard: <state>.shard<i>)")
		dedupe    = flag.Int("dedupe", netboard.DefaultDedupeWindow, "idempotency window: remembered request ids (0 disables dedupe)")
		codec     = flag.String("codec", "auto", "wire codec policy: auto (negotiate binary per request) or json (pin JSON, answer binary bodies with 415)")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		readHdrT  = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		readT     = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout for a full request")
		idleT     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		grace     = flag.Duration("shutdown-grace", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *n <= 0 || *m <= 0 {
		fmt.Fprintln(os.Stderr, "n and m must be positive")
		os.Exit(2)
	}
	if *shards <= 0 {
		fmt.Fprintln(os.Stderr, "shards must be positive")
		os.Exit(2)
	}
	var codecOpts []netboard.ServerOption
	switch *codec {
	case "auto":
	case "json":
		codecOpts = append(codecOpts, netboard.WithJSONOnly())
	default:
		fmt.Fprintf(os.Stderr, "-codec %q: want auto or json\n", *codec)
		os.Exit(2)
	}

	addrs, err := shardAddrs(*addr, *shards)
	if err != nil {
		log.Fatal(err)
	}

	type shard struct {
		board *billboard.Board
		hsrv  *http.Server
		state string
	}
	servers := make([]*shard, *shards)
	for i := range servers {
		statePath := *state
		if statePath != "" && *shards > 1 {
			statePath = statePath + ".shard" + strconv.Itoa(i)
		}
		board, err := loadBoard(statePath, *n, *m)
		if err != nil {
			log.Fatal(err)
		}
		reg := telemetry.New()
		board.SetTelemetry(reg)
		opts := append([]netboard.ServerOption{netboard.WithDedupeWindow(*dedupe), netboard.WithTelemetry(reg)}, codecOpts...)
		srv := netboard.NewServer(board, opts...)

		var handler http.Handler = srv
		if *withPprof {
			// Mount the profile endpoints on an outer mux so they are only
			// reachable when explicitly asked for; everything else falls
			// through to the board server (including /debug/telemetry).
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/", srv)
			handler = mux
		}
		servers[i] = &shard{
			board: board,
			state: statePath,
			hsrv: &http.Server{
				Addr:              addrs[i],
				Handler:           handler,
				ReadHeaderTimeout: *readHdrT,
				ReadTimeout:       *readT,
				IdleTimeout:       *idleT,
			},
		}
	}
	if *withPprof {
		log.Printf("pprof enabled at /debug/pprof/")
	}

	// Graceful shutdown: on SIGINT/SIGTERM every shard stops accepting
	// connections, drains in-flight requests for up to -shutdown-grace
	// (concurrently — the grace budget is shared wall-clock, not per
	// shard), then (with -state) snapshots its board. Snapshotting after
	// the drain means the saved state includes every request the server
	// acknowledged.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		s := <-sig
		log.Printf("received %v, draining %d shard(s) (grace %v)", s, len(servers), *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		var wg sync.WaitGroup
		failed := make([]bool, len(servers))
		for i, sh := range servers {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				if err := sh.hsrv.Shutdown(ctx); err != nil {
					log.Printf("shard %d shutdown: %v (closing remaining connections)", i, err)
					sh.hsrv.Close()
				}
				if sh.state != "" {
					if err := saveBoard(sh.state, sh.board); err != nil {
						log.Printf("shard %d snapshot failed: %v", i, err)
						failed[i] = true
						return
					}
					log.Printf("shard %d state saved to %s", i, sh.state)
				}
			}(i, sh)
		}
		wg.Wait()
		for _, f := range failed {
			if f {
				os.Exit(1)
			}
		}
	}()

	errc := make(chan error, len(servers))
	for _, sh := range servers {
		go func(sh *shard) {
			if err := sh.hsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
				return
			}
			errc <- nil
		}(sh)
	}
	if len(servers) == 1 {
		log.Printf("billboard for %d players × %d objects listening on %s (telemetry at %s)", *n, *m, addrs[0], netboard.PathTelemetry)
	} else {
		urls := make([]string, len(addrs))
		for i, a := range addrs {
			urls[i] = "http://" + hostPortForURL(a)
		}
		log.Printf("billboard cluster for %d players × %d objects: %d shards on %s..%s", *n, *m, len(addrs), addrs[0], addrs[len(addrs)-1])
		log.Printf("cluster spec: %s", strings.Join(urls, ","))
	}
	for range servers {
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
	}
	<-done
}

// shardAddrs derives k consecutive listen addresses from base:
// base's port, port+1, ..., port+k-1 on the same host.
func shardAddrs(base string, k int) ([]string, error) {
	if k == 1 {
		return []string{base}, nil
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("-addr %q: %v (need host:port with -shards > 1)", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 {
		return nil, fmt.Errorf("-addr %q: explicit numeric port required with -shards > 1", base)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return out, nil
}

// hostPortForURL makes a listen address dialable: an empty host
// (":7070") listens on all interfaces but cannot be dialed, so the
// printed cluster spec substitutes localhost.
func hostPortForURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "localhost"
	}
	return net.JoinHostPort(host, port)
}

// loadBoard restores the board from path, or builds a fresh one when
// path is empty or absent.
func loadBoard(path string, n, m int) (*billboard.Board, error) {
	if path == "" {
		return billboard.New(n, m), nil
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return billboard.New(n, m), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	board, err := billboard.Restore(f)
	if err != nil {
		return nil, fmt.Errorf("restoring %s: %w", path, err)
	}
	log.Printf("restored state from %s (%d probes)", path, board.ProbeCount())
	return board, nil
}

// saveBoard snapshots the board atomically (write temp, rename).
func saveBoard(path string, board *billboard.Board) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := board.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
