// Command billboard serves a shared billboard over HTTP — the paper's
// public board as an actual service. Players in other processes connect
// through the same billboard interface the in-memory simulator uses
// (see Options.BoardURL in the tellme package).
//
//	billboard -addr :7070 -n 1024 -m 1024
//	billboard -addr :7070 -n 1024 -m 1024 -state board.json  # persistent
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -shutdown-grace before exiting. With
// -state, the board is restored from the file at startup (if it exists)
// and snapshotted back after the drain.
//
// The server always exposes runtime telemetry: GET /debug/telemetry
// returns every counter and histogram as JSON, and
// /debug/telemetry/prometheus the same registry in the Prometheus text
// format. With -pprof, the standard net/http/pprof profile endpoints
// are mounted under /debug/pprof/ as well.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		n         = flag.Int("n", 1024, "number of players")
		m         = flag.Int("m", 1024, "number of objects")
		state     = flag.String("state", "", "snapshot file: restore at start, save on shutdown")
		dedupe    = flag.Int("dedupe", netboard.DefaultDedupeWindow, "idempotency window: remembered request ids (0 disables dedupe)")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		readHdrT  = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		readT     = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout for a full request")
		idleT     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		grace     = flag.Duration("shutdown-grace", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *n <= 0 || *m <= 0 {
		fmt.Fprintln(os.Stderr, "n and m must be positive")
		os.Exit(2)
	}

	board, err := loadBoard(*state, *n, *m)
	if err != nil {
		log.Fatal(err)
	}

	reg := telemetry.New()
	board.SetTelemetry(reg)
	srv := netboard.NewServer(board, netboard.WithDedupeWindow(*dedupe), netboard.WithTelemetry(reg))

	var handler http.Handler = srv
	if *withPprof {
		// Mount the profile endpoints on an outer mux so they are only
		// reachable when explicitly asked for; everything else falls
		// through to the board server (including /debug/telemetry).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}
	hsrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHdrT,
		ReadTimeout:       *readT,
		IdleTimeout:       *idleT,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests for up to -shutdown-grace, then (with
	// -state) snapshot the board. Snapshotting after the drain means the
	// saved state includes every request the server acknowledged.
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		s := <-sig
		log.Printf("received %v, draining (grace %v)", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hsrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v (closing remaining connections)", err)
			hsrv.Close()
		}
		if *state != "" {
			if err := saveBoard(*state, board); err != nil {
				log.Printf("snapshot failed: %v", err)
				os.Exit(1)
			}
			log.Printf("state saved to %s", *state)
		}
	}()

	log.Printf("billboard for %d players × %d objects listening on %s (telemetry at %s)", board.N(), board.M(), *addr, netboard.PathTelemetry)
	if err := hsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// loadBoard restores the board from path, or builds a fresh one when
// path is empty or absent.
func loadBoard(path string, n, m int) (*billboard.Board, error) {
	if path == "" {
		return billboard.New(n, m), nil
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return billboard.New(n, m), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	board, err := billboard.Restore(f)
	if err != nil {
		return nil, fmt.Errorf("restoring %s: %w", path, err)
	}
	log.Printf("restored state from %s (%d probes)", path, board.ProbeCount())
	return board, nil
}

// saveBoard snapshots the board atomically (write temp, rename).
func saveBoard(path string, board *billboard.Board) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := board.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
