// Command tellme runs one of the paper's algorithms on a generated
// instance and prints cost and quality statistics.
//
// Examples:
//
//	tellme -n 1024 -m 1024 -gen planted -alpha 0.5 -d 8 -algo auto
//	tellme -n 512 -gen adversarial -alpha 0.25 -d 4 -algo main
//	tellme -n 256 -gen identical -alpha 0.5 -algo zero -v
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tellme"
)

func main() {
	var (
		n     = flag.Int("n", 512, "number of players")
		m     = flag.Int("m", 0, "number of objects (0 = n)")
		gen   = flag.String("gen", "planted", "instance generator: identical|planted|adversarial|mixture|random")
		alpha = flag.Float64("alpha", 0.5, "community fraction α")
		d     = flag.Int("d", 8, "community diameter D (generator and known-D algorithms)")
		types = flag.Int("types", 4, "mixture generator: number of types")
		noise = flag.Float64("noise", 0.02, "mixture generator: per-coordinate flip noise")
		algo  = flag.String("algo", "auto", "algorithm: auto|main|zero|small|large|anytime")
		seed  = flag.Uint64("seed", 1, "random seed")
		budg  = flag.Int64("budget", 0, "anytime: per-player probe budget (0 = all phases)")
		flip  = flag.Float64("probe-noise", 0, "probe fault injection: flip probability")
		verb  = flag.Bool("v", false, "print per-community details")
		save  = flag.String("save", "", "write the generated instance to this file (binary) and exit")
		load  = flag.String("load", "", "load the instance from this file instead of generating")
		board = flag.String("board", "", "run against a remote billboard at this base URL, or a sharded cluster given a comma-separated URL list")
		codec = flag.String("codec", "json", "wire codec for -board targets: json or binary")
		tmo   = flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit)")
		cnts  = flag.Bool("counts", false, "print nested sub-algorithm invocation counts")
		scen  = flag.String("scenarios", "", "run a JSON scenario file (see tellme.Scenario) and exit")
	)
	flag.Parse()
	if *m == 0 {
		*m = *n
	}

	if *scen != "" {
		if err := runScenarios(os.Stdout, *scen); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	var in *tellme.Instance
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		in, err = tellme.LoadInstance(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := runOn(os.Stdout, in, *algo, *alpha, *d, *seed, *budg, *flip, *board, *codec, *tmo, *verb, *cnts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	switch *gen {
	case "identical":
		in = tellme.IdenticalInstance(*n, *m, *alpha, *seed)
	case "planted":
		in = tellme.PlantedInstance(*n, *m, *alpha, *d, *seed)
	case "adversarial":
		in = tellme.AdversarialInstance(*n, *m, *alpha, *d, *seed)
	case "mixture":
		in = tellme.MixtureInstance(*n, *m, *types, *noise, *seed)
	case "random":
		in = tellme.RandomInstance(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown generator %q\n", *gen)
		os.Exit(2)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := tellme.SaveInstance(f, in); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("saved %s (%d players × %d objects) to %s\n", in.Name, in.N, in.M, *save)
		return
	}
	if err := runOn(os.Stdout, in, *algo, *alpha, *d, *seed, *budg, *flip, *board, *codec, *tmo, *verb, *cnts); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// runScenarios executes a JSON scenario file and prints one summary
// line per scenario.
func runScenarios(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	scs, err := tellme.LoadScenarios(f)
	f.Close()
	if err != nil {
		return err
	}
	results, err := tellme.RunScenarios(scs)
	for _, res := range results {
		fmt.Fprintf(w, "%-24s algo=%-16s probes(max)=%-8d", res.Scenario.Name,
			res.Report.Algorithm, res.Report.MaxProbes)
		if len(res.Report.Communities) > 0 {
			c := res.Report.Communities[0]
			fmt.Fprintf(w, " discrepancy=%-5d stretch=%.2f", c.Discrepancy, c.Stretch)
		}
		fmt.Fprintln(w)
	}
	return err
}

// runOn executes one algorithm over the instance and writes the report
// to w. Split from main for testability.
func runOn(w io.Writer, in *tellme.Instance, algo string, alpha float64, d int, seed uint64, budg int64, flip float64, board, codec string, timeout time.Duration, verb, cnts bool) error {
	algos := map[string]tellme.Algorithm{
		"auto":    tellme.AlgoAuto,
		"main":    tellme.AlgoMain,
		"zero":    tellme.AlgoZero,
		"small":   tellme.AlgoSmall,
		"large":   tellme.AlgoLarge,
		"anytime": tellme.AlgoAnytime,
	}
	a, ok := algos[algo]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	opt := tellme.Options{
		Algorithm:  a,
		Alpha:      alpha,
		D:          d,
		Seed:       seed + 1,
		Budget:     budg,
		FlipNoise:  flip,
		BoardURL:   board,
		BoardCodec: codec,
		Timeout:    timeout,
	}
	if a == tellme.AlgoAnytime {
		opt.OnPhase = func(ph tellme.PhaseInfo) bool {
			fmt.Fprintf(w, "phase %d: alpha=%.4f probes(max)=%d\n", ph.Phase, ph.Alpha, ph.MaxProbes)
			return true
		}
	}

	rep, err := tellme.Run(in, opt)
	var rerr *tellme.RunError
	if errors.As(err, &rerr) && rep != nil {
		// A cancelled run still reports the probes it charged.
		fmt.Fprintf(w, "aborted during %s: %v\n", rerr.Phase, rerr.Cause)
		fmt.Fprintf(w, "partial probes max=%d mean=%.1f total=%d  time %v\n",
			rep.MaxProbes, rep.MeanProbes, rep.TotalProbes, rep.Duration.Round(time.Millisecond))
		return err
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "instance   %s\n", in.Name)
	fmt.Fprintf(w, "algorithm  %s\n", rep.Algorithm)
	fmt.Fprintf(w, "probes     max=%d (solo would be %d)  mean=%.1f  total=%d\n",
		rep.MaxProbes, in.M, rep.MeanProbes, rep.TotalProbes)
	fmt.Fprintf(w, "time       %v\n", rep.Duration.Round(1000000))
	if cnts {
		fmt.Fprintf(w, "sub-algorithm runs: ZeroRadius=%d SmallRadius=%d LargeRadius=%d Coalesce=%d\n",
			rep.SubAlgorithmRuns["ZeroRadius"], rep.SubAlgorithmRuns["SmallRadius"],
			rep.SubAlgorithmRuns["LargeRadius"], rep.SubAlgorithmRuns["Coalesce"])
	}
	for i, c := range rep.Communities {
		fmt.Fprintf(w, "community %d: size=%d diameter=%d discrepancy=%d stretch=%.2f meanErr=%.2f\n",
			i, c.Size, c.Diameter, c.Discrepancy, c.Stretch, c.MeanErr)
		if verb {
			members := in.Communities[i].Members
			limit := 5
			for j, p := range members {
				if j >= limit {
					break
				}
				fmt.Fprintf(w, "  player %4d: err=%d  ?s=%d\n", p, in.Err(p, rep.Outputs[p]), rep.Outputs[p].UnknownCount())
			}
		}
	}
	return nil
}
