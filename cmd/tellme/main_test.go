package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"tellme"
)

func TestRunOnZero(t *testing.T) {
	in := tellme.IdenticalInstance(64, 64, 0.5, 1)
	var buf bytes.Buffer
	if err := runOn(&buf, in, "zero", 0.5, 0, 2, 0, 0, "", "json", 0, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"algorithm  zero-radius", "probes", "community 0:", "discrepancy=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunOnVerboseAndCounts(t *testing.T) {
	in := tellme.PlantedInstance(128, 128, 0.5, 16, 3)
	var buf bytes.Buffer
	if err := runOn(&buf, in, "large", 0.5, 16, 4, 0, 0, "", "json", 0, true, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sub-algorithm runs:") {
		t.Fatalf("counts missing:\n%s", out)
	}
	if !strings.Contains(out, "player ") {
		t.Fatalf("verbose per-player lines missing:\n%s", out)
	}
}

func TestRunOnAnytimePhases(t *testing.T) {
	in := tellme.PlantedInstance(64, 64, 0.5, 4, 5)
	var buf bytes.Buffer
	if err := runOn(&buf, in, "anytime", 0.5, 0, 6, 50, 0, "", "json", 0, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "phase 1: alpha=0.5000") {
		t.Fatalf("phase lines missing:\n%s", buf.String())
	}
}

func TestRunOnUnknownAlgorithm(t *testing.T) {
	in := tellme.IdenticalInstance(8, 8, 0.5, 7)
	var buf bytes.Buffer
	if err := runOn(&buf, in, "nope", 0.5, 0, 1, 0, 0, "", "json", 0, false, false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunOnPropagatesRunError(t *testing.T) {
	in := tellme.IdenticalInstance(8, 8, 0.5, 8)
	var buf bytes.Buffer
	if err := runOn(&buf, in, "zero", 0, 0, 1, 0, 0, "", "json", 0, false, false); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}

func TestRunScenariosFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/scs.json"
	content := `[{"name":"s1","generator":{"kind":"identical","n":64,"alpha":0.5,"seed":1},"run":{"algorithm":"zero","alpha":0.5,"seed":2}}]`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runScenarios(&buf, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s1") || !strings.Contains(buf.String(), "discrepancy=0") {
		t.Fatalf("output:\n%s", buf.String())
	}
	if err := runScenarios(&buf, dir+"/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
