package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/telemetry"
)

// TestResolveTargetSpecProgression pins the board-spec progression the
// serving stack shares: nothing → in-process, one URL → server,
// comma-separated URLs → cluster, plus loadgen's -local-shards mode.
func TestResolveTargetSpecProgression(t *testing.T) {
	reg := telemetry.New()

	inproc, err := resolveTarget("", 0, 8, 16, "json", reg)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	if inproc.kind != "inproc" || inproc.shards != 1 {
		t.Fatalf("empty spec resolved to %q/%d, want inproc/1", inproc.kind, inproc.shards)
	}
	if _, ok := inproc.board.(*billboard.Board); !ok {
		t.Fatalf("empty spec board is %T, want *billboard.Board", inproc.board)
	}

	srv1 := httptest.NewServer(netboard.NewServer(billboard.New(8, 16)))
	defer srv1.Close()
	srv2 := httptest.NewServer(netboard.NewServer(billboard.New(8, 16)))
	defer srv2.Close()

	single, err := resolveTarget(srv1.URL, 0, 8, 16, "binary", reg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if single.kind != "server" || single.shards != 1 {
		t.Fatalf("URL spec resolved to %q/%d, want server/1", single.kind, single.shards)
	}
	single.board.PostProbes(1, []int{3}, []byte{1})
	if q, ok := single.board.(quiescer); ok {
		q.Quiesce()
	}
	if got := single.board.(probeCounter).ProbeCount(); got != 1 {
		t.Fatalf("server probe count = %d, want 1", got)
	}

	cluster, err := resolveTarget(srv1.URL+","+srv2.URL, 0, 8, 16, "json", reg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if cluster.kind != "cluster(2)" || cluster.shards != 2 {
		t.Fatalf("cluster spec resolved to %q/%d, want cluster(2)/2", cluster.kind, cluster.shards)
	}

	if _, err := resolveTarget(srv1.URL, 2, 8, 16, "json", reg); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("spec + local-shards accepted, err=%v", err)
	}

	local, err := resolveTarget("", 3, 8, 16, "binary", reg)
	if err != nil {
		t.Fatalf("local shards: %v", err)
	}
	defer local.close()
	if local.kind != "local-shards(3)" || local.shards != 3 || local.close == nil {
		t.Fatalf("local-shards resolved to %q/%d", local.kind, local.shards)
	}
	// The spawned shards answer the real wire protocol.
	local.board.PostProbes(2, []int{0, 1, 2, 3}, []byte{0, 1, 0, 1})
	local.board.(quiescer).Quiesce()
	if got := local.board.(probeCounter).ProbeCount(); got != 4 {
		t.Fatalf("local shard probe count = %d, want 4", got)
	}
}
