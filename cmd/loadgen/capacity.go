package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"tellme/internal/telemetry"
)

// CapacityRow is one (players × shards × target rate) measurement of
// the capacity table: what the fleet asked for, what it got, and the
// latency quantiles read from the telemetry histogram. The open-loop
// arrival model makes the latency column honest about overload: a round
// is charged from its *scheduled* arrival time, so when the target rate
// exceeds capacity the backlog shows up as latency instead of the
// generator politely slowing down.
type CapacityRow struct {
	Players int `json:"players"`
	Shards  int `json:"shards"`
	// Codec is the client wire encoding of this row's leg ("json" or
	// "binary"; empty for the in-process board, which has no wire).
	Codec      string  `json:"codec,omitempty"`
	TargetRate float64 `json:"target_rounds_per_sec"`
	// AchievedRate is rounds completed over the step's wall clock.
	AchievedRate float64 `json:"achieved_rounds_per_sec"`
	Rounds       int64   `json:"rounds"`
	P50Ns        int64   `json:"p50_ns"`
	P99Ns        int64   `json:"p99_ns"`
	MaxNs        int64   `json:"max_ns"`
	// Sustained means the step kept up: achieved ≥ 95% of target AND
	// p99 within the SLO. The capacity claim for a configuration is the
	// highest sustained target.
	Sustained bool `json:"sustained"`
}

// VerifyResult is the exact-counter audit of a run: every posted probe
// is accounted for against the board's authoritative counter, so lost
// or double-applied posts cannot hide inside latency statistics.
type VerifyResult struct {
	// ExpectedProbes is Σ_p min(k_p·B, M) over the fleet — the number of
	// distinct (player, object) probes the deterministic schedule must
	// have landed on the board.
	ExpectedProbes int64 `json:"expected_probes"`
	// BoardProbes is the board's ProbeCount after the run quiesced.
	BoardProbes int64 `json:"board_probes"`
	// Lost is max(0, expected-board): posts that never applied.
	Lost int64 `json:"lost"`
	// Duplicated is max(0, board-expected): posts applied twice (the
	// board is first-post-wins, so any excess means the idempotency
	// machinery double-applied).
	Duplicated int64 `json:"duplicated"`
	OK         bool  `json:"ok"`
}

// ServeStats summarizes the serve plane of a run (zero value when the
// serve plane was off).
type ServeStats struct {
	Players         int     `json:"players"`
	Epochs          int64   `json:"epochs_completed"`
	Recommends      int64   `json:"recommends"`
	RecommendRate   float64 `json:"recommend_per_sec"`
	RecommendP50Ns  int64   `json:"recommend_p50_ns"`
	RecommendP99Ns  int64   `json:"recommend_p99_ns"`
	ChurnApplied    int64   `json:"churn_applied"`
	RecommendErrors int64   `json:"recommend_errors"`
}

// BenchNetFile is the BENCH_NET.json artifact, following the benchdiff
// File conventions (command/go/commit header + result rows) so the
// trajectory tooling can diff capacity tables across PRs.
type BenchNetFile struct {
	Command string `json:"command"`
	Go      string `json:"go"`
	Commit  string `json:"commit,omitempty"`

	Players   int    `json:"players"`
	Shards    int    `json:"shards"`
	M         int    `json:"m"`
	PostBatch int    `json:"post_batch"`
	Target    string `json:"target"` // inproc | server | cluster(n) | local-shards(n)
	SLONs     int64  `json:"slo_ns"`

	Rows []CapacityRow `json:"rows"`
	// MaxSustainedRate is the capacity claim: the highest sustained
	// target rate in Rows (0 when nothing sustained).
	MaxSustainedRate float64 `json:"max_sustained_rounds_per_sec"`

	Verify *VerifyResult `json:"verify,omitempty"`
	Serve  *ServeStats   `json:"serve,omitempty"`
}

// buildRow computes one capacity-table row from a completed step: the
// step's target, how many rounds ran, the elapsed wall clock, and the
// step's latency histogram snapshot. Pure math — the unit tests pin it.
func buildRow(players, shards int, target float64, rounds int64, elapsed time.Duration, h telemetry.HistogramSnapshot, slo time.Duration) CapacityRow {
	row := CapacityRow{
		Players:    players,
		Shards:     shards,
		TargetRate: target,
		Rounds:     rounds,
		P50Ns:      h.Quantile(0.50),
		P99Ns:      h.Quantile(0.99),
		MaxNs:      h.Max,
	}
	if elapsed > 0 {
		row.AchievedRate = float64(rounds) / elapsed.Seconds()
	}
	row.Sustained = row.AchievedRate >= 0.95*target && row.P99Ns <= slo.Nanoseconds()
	return row
}

// maxSustained returns the capacity claim over a table: the highest
// sustained target rate (0 when no row sustained).
func maxSustained(rows []CapacityRow) float64 {
	best := 0.0
	for _, r := range rows {
		if r.Sustained && r.TargetRate > best {
			best = r.TargetRate
		}
	}
	return best
}

// verifyCounts audits expected vs the board's counter.
func verifyCounts(expected, board int64) VerifyResult {
	v := VerifyResult{ExpectedProbes: expected, BoardProbes: board}
	if d := expected - board; d > 0 {
		v.Lost = d
	} else {
		v.Duplicated = -d
	}
	v.OK = v.Lost == 0 && v.Duplicated == 0
	return v
}

// writeBenchNet writes the artifact (pretty-printed, trailing newline,
// like benchdiff).
func writeBenchNet(path string, f *BenchNetFile) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// printTable renders the capacity table for the terminal.
func printTable(w io.Writer, f *BenchNetFile) {
	fmt.Fprintf(w, "%10s %7s %7s %12s %12s %10s %10s %s\n", "players", "shards", "codec", "target r/s", "achieved", "p50", "p99", "sustained")
	for _, r := range f.Rows {
		codec := r.Codec
		if codec == "" {
			codec = "-"
		}
		fmt.Fprintf(w, "%10d %7d %7s %12.0f %12.0f %10v %10v %v\n",
			r.Players, r.Shards, codec, r.TargetRate, r.AchievedRate,
			time.Duration(r.P50Ns).Round(time.Microsecond),
			time.Duration(r.P99Ns).Round(time.Microsecond),
			r.Sustained)
	}
	if f.MaxSustainedRate > 0 {
		fmt.Fprintf(w, "max sustained: %.0f rounds/sec (p99 SLO %v)\n", f.MaxSustainedRate, time.Duration(f.SLONs))
	} else {
		fmt.Fprintln(w, "no target sustained within SLO")
	}
	if f.Verify != nil {
		fmt.Fprintf(w, "verify: expected %d probes, board %d (lost %d, duplicated %d) ok=%v\n",
			f.Verify.ExpectedProbes, f.Verify.BoardProbes, f.Verify.Lost, f.Verify.Duplicated, f.Verify.OK)
	}
	if f.Serve != nil {
		s := f.Serve
		fmt.Fprintf(w, "serve: %d players, %d epochs, %d recommends (%.0f/s, p50 %v, p99 %v), churn %d, errors %d\n",
			s.Players, s.Epochs, s.Recommends, s.RecommendRate,
			time.Duration(s.RecommendP50Ns).Round(time.Microsecond),
			time.Duration(s.RecommendP99Ns).Round(time.Microsecond),
			s.ChurnApplied, s.RecommendErrors)
	}
}

// goVersion / gitCommit mirror benchdiff's header fields.
func goVersion() string { return runtime.Version() }

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
