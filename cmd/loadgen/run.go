package main

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"tellme/internal/telemetry"
	"tellme/internal/wire"
)

// config is one loadgen run, fully specified — run() is deterministic
// in it up to wall-clock jitter (the probe/post schedule and all truth
// vectors derive from Seed and the arrival indices alone).
type config struct {
	// Board plane.
	Players   int
	M         int
	PostBatch int
	Lookups   bool
	Workers   int
	// Rates are the target rounds/sec steps to sweep; empty means
	// auto-ramp (RampStart, doubling until a step fails to sustain).
	Rates     []float64
	RampStart float64
	RampMax   float64
	// Duration sizes each step: arrivals = rate × Duration, unless
	// RoundsPerStep pins the arrival count exactly (tests do).
	Duration      time.Duration
	RoundsPerStep int64
	// Warmup runs the sweep's first rate unmeasured for this long at
	// the start of each leg, so the measured rows don't eat the
	// cold-start tail (first-touch page faults on freshly allocated
	// boards, connection-pool establishment). Warmup rounds still count
	// toward the exact probe audit — they hit the same board.
	Warmup time.Duration
	// Repeat runs the whole codec sweep this many times (codec legs
	// interleaved, so machine-speed drift hits every codec equally) and
	// keeps, per (codec, rate), the row with the lowest p99 — the
	// minimum over repetitions is the standard low-noise estimator,
	// matching benchdiff's min-over-runs. 0 means 1.
	Repeat int

	// Board target: mutually exclusive spec / LocalShards.
	Board       string
	LocalShards int
	// Codecs are the wire codecs to sweep ("json", "binary"); each
	// codec runs the full rate sweep as its own leg against a fresh
	// target, so the legs' capacity rows A/B the encoding layer under
	// identical schedules. Empty means just "json". Ignored (single
	// unlabeled leg) when the target is the in-process board — there is
	// no wire to encode for.
	Codecs []string

	// Serve plane (off when ServePlayers == 0).
	ServePlayers  int
	ServeM        int
	ServeAlpha    float64
	ServeURL      string
	ChurnPerSec   float64
	RecommendRate float64
	EpochEvery    time.Duration

	Seed   uint64
	SLO    time.Duration
	Verify bool
	Out    string
	Logf   func(string, ...any)
}

func (cfg *config) validate() error {
	if cfg.Players <= 0 {
		return fmt.Errorf("loadgen: players must be positive, got %d", cfg.Players)
	}
	if cfg.M <= 0 || cfg.PostBatch <= 0 || cfg.PostBatch > cfg.M {
		return fmt.Errorf("loadgen: need 0 < post-batch <= m, got batch %d m %d", cfg.PostBatch, cfg.M)
	}
	if cfg.M%cfg.PostBatch != 0 {
		// The exact-counter audit needs the per-round windows to tile
		// the universe: min(k·B, M) counts distinct probes only when the
		// wrapped windows land exactly on earlier ones.
		return fmt.Errorf("loadgen: post-batch %d must divide m %d (exact probe accounting)", cfg.PostBatch, cfg.M)
	}
	for _, r := range cfg.Rates {
		if r <= 0 {
			return fmt.Errorf("loadgen: non-positive rate %v", r)
		}
	}
	if len(cfg.Codecs) == 0 {
		cfg.Codecs = []string{wire.JSON.Name()}
	}
	for _, c := range cfg.Codecs {
		if _, err := wire.ByName(c); err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 50 * time.Millisecond
	}
	if cfg.RampStart <= 0 {
		cfg.RampStart = 1000
	}
	if cfg.RampMax <= 0 {
		cfg.RampMax = 1 << 22 // ~4.2M rounds/sec: past any plausible single host
	}
	if cfg.ServePlayers > 0 {
		if cfg.ServeM <= 0 {
			cfg.ServeM = 64
		}
		if cfg.ServeAlpha <= 0 || cfg.ServeAlpha > 1 {
			cfg.ServeAlpha = 0.5
		}
		if cfg.EpochEvery <= 0 {
			cfg.EpochEvery = time.Second
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// parseRates parses the -rates CSV ("1000,2000,4000").
func parseRates(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("loadgen: bad rate %q", p)
		}
		out = append(out, r)
	}
	return out, nil
}

// quiescer is the optional drain barrier of remote boards (Client and
// Cluster implement it; the in-process board needs none).
type quiescer interface{ Quiesce() }

// probeCounter reads the authoritative distinct-probe counter.
type probeCounter interface{ ProbeCount() int64 }

// run executes the configured sweep — once per requested codec, each
// leg against a fresh target — and returns the capacity artifact.
func run(ctx context.Context, cfg *config) (*BenchNetFile, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	codecs := cfg.Codecs
	inproc := strings.TrimSpace(cfg.Board) == "" && cfg.LocalShards <= 0
	if inproc {
		// No wire between the fleet and an in-process board: one leg,
		// and its rows claim no codec.
		codecs = codecs[:1]
	}

	var plane *servePlane
	if cfg.ServePlayers > 0 {
		var err error
		plane, err = startServePlane(cfg, cfg.Logf)
		if err != nil {
			return nil, err
		}
	}

	file := &BenchNetFile{
		Command: fmt.Sprintf("loadgen -players %d -m %d -post-batch %d -codec %s",
			cfg.Players, cfg.M, cfg.PostBatch, strings.Join(codecs, ",")),
		Go:        goVersion(),
		Commit:    gitCommit(),
		Players:   cfg.Players,
		M:         cfg.M,
		PostBatch: cfg.PostBatch,
		SLONs:     cfg.SLO.Nanoseconds(),
	}

	// Each leg audits its own fresh board; the artifact reports the
	// union (a lost post in any leg fails the run). Repetitions
	// interleave the codec legs so a machine slowdown mid-run biases
	// every codec equally, then the rows reduce to the min-p99 one per
	// (codec, rate).
	repeat := cfg.Repeat
	if repeat <= 0 {
		repeat = 1
	}
	var total *VerifyResult
	for rep := 0; rep < repeat; rep++ {
		for i, codec := range codecs {
			if rep > 0 || i > 0 {
				// Level the heap between legs: the previous leg's shard
				// boards (gigabytes at a million players) are dead but
				// uncollected, and on small machines their collection
				// would otherwise land in the next leg's tail latency —
				// leg order must not color the codec comparison.
				runtime.GC()
				debug.FreeOSMemory()
			}
			v, err := runLeg(ctx, cfg, codec, inproc, file)
			if err != nil {
				return nil, err
			}
			if v != nil {
				if total == nil {
					total = &VerifyResult{OK: true}
				}
				total.ExpectedProbes += v.ExpectedProbes
				total.BoardProbes += v.BoardProbes
				total.Lost += v.Lost
				total.Duplicated += v.Duplicated
				total.OK = total.OK && v.OK
			}
		}
	}
	file.Rows = reduceRows(file.Rows)
	file.MaxSustainedRate = maxSustained(file.Rows)
	file.Verify = total

	if plane != nil {
		s := plane.stop()
		file.Serve = &s
	}
	return file, nil
}

// reduceRows keeps, for each (codec, target rate), the row with the
// lowest p99 across sweep repetitions, preserving first-appearance
// order. With a single repetition it is the identity.
func reduceRows(rows []CapacityRow) []CapacityRow {
	type key struct {
		codec string
		rate  float64
	}
	best := map[key]CapacityRow{}
	var order []key
	for _, r := range rows {
		k := key{r.Codec, r.TargetRate}
		b, seen := best[k]
		if !seen {
			order = append(order, k)
		}
		if !seen || r.P99Ns < b.P99Ns {
			best[k] = r
		}
	}
	out := make([]CapacityRow, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

// runLeg sweeps the configured rates once with the fleet's client
// encoding with the given codec, against a freshly resolved target (so
// the legs of a multi-codec run start from identical empty boards and
// a reset arrival schedule), appends the codec-labeled rows to the
// artifact, and returns the leg's exact-counter audit (nil when off).
func runLeg(ctx context.Context, cfg *config, codec string, inproc bool, file *BenchNetFile) (*VerifyResult, error) {
	reg := telemetry.New()
	target, err := resolveTarget(cfg.Board, cfg.LocalShards, cfg.Players, cfg.M, codec, reg)
	if err != nil {
		return nil, err
	}
	if target.close != nil {
		defer target.close()
	}
	file.Target, file.Shards = target.kind, target.shards
	label := codec
	if inproc {
		label = ""
	}
	cfg.Logf("board plane: %d players, m=%d, batch=%d, target %s, codec %s, %d workers",
		cfg.Players, cfg.M, cfg.PostBatch, target.kind, codec, cfg.Workers)

	next := int64(0) // global arrival index, continuous across steps

	if cfg.Warmup > 0 {
		rate := cfg.RampStart
		if len(cfg.Rates) > 0 {
			rate = cfg.Rates[0]
		}
		n := int64(rate * cfg.Warmup.Seconds())
		if n < int64(cfg.Workers) {
			n = int64(cfg.Workers)
		}
		if _, err := runStep(ctx, target.board, cfg, next, n, rate); err != nil {
			return nil, err
		}
		next += n
	}

	step := func(rate float64) (CapacityRow, error) {
		n := cfg.RoundsPerStep
		if n <= 0 {
			n = int64(rate * cfg.Duration.Seconds())
		}
		if n < int64(cfg.Workers) {
			n = int64(cfg.Workers)
		}
		res, err := runStep(ctx, target.board, cfg, next, n, rate)
		if err != nil {
			return CapacityRow{}, err
		}
		next += n
		row := buildRow(cfg.Players, target.shards, rate, res.rounds, res.elapsed, res.hist, cfg.SLO)
		row.Codec = label
		cfg.Logf("rate %8.0f: achieved %8.0f r/s, p50 %v, p99 %v, sustained=%v",
			rate, row.AchievedRate,
			time.Duration(row.P50Ns).Round(time.Microsecond),
			time.Duration(row.P99Ns).Round(time.Microsecond), row.Sustained)
		return row, nil
	}

	if len(cfg.Rates) > 0 {
		for _, rate := range cfg.Rates {
			row, err := step(rate)
			if err != nil {
				return nil, err
			}
			file.Rows = append(file.Rows, row)
		}
	} else {
		for rate := cfg.RampStart; rate <= cfg.RampMax; rate *= 2 {
			row, err := step(rate)
			if err != nil {
				return nil, err
			}
			file.Rows = append(file.Rows, row)
			if !row.Sustained {
				break // past the knee; the previous row is the capacity
			}
		}
	}

	if !cfg.Verify {
		return nil, nil
	}
	if q, ok := target.board.(quiescer); ok {
		q.Quiesce()
	}
	pc, ok := target.board.(probeCounter)
	if !ok {
		return nil, fmt.Errorf("loadgen: board target %s cannot report ProbeCount", target.kind)
	}
	v := verifyCounts(expectedProbes(next, cfg.Players, cfg.PostBatch, cfg.M), pc.ProbeCount())
	return &v, nil
}
