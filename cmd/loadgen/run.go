package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"tellme/internal/telemetry"
)

// config is one loadgen run, fully specified — run() is deterministic
// in it up to wall-clock jitter (the probe/post schedule and all truth
// vectors derive from Seed and the arrival indices alone).
type config struct {
	// Board plane.
	Players   int
	M         int
	PostBatch int
	Lookups   bool
	Workers   int
	// Rates are the target rounds/sec steps to sweep; empty means
	// auto-ramp (RampStart, doubling until a step fails to sustain).
	Rates     []float64
	RampStart float64
	RampMax   float64
	// Duration sizes each step: arrivals = rate × Duration, unless
	// RoundsPerStep pins the arrival count exactly (tests do).
	Duration      time.Duration
	RoundsPerStep int64

	// Board target: mutually exclusive spec / LocalShards.
	Board       string
	LocalShards int

	// Serve plane (off when ServePlayers == 0).
	ServePlayers  int
	ServeM        int
	ServeAlpha    float64
	ServeURL      string
	ChurnPerSec   float64
	RecommendRate float64
	EpochEvery    time.Duration

	Seed   uint64
	SLO    time.Duration
	Verify bool
	Out    string
	Logf   func(string, ...any)
}

func (cfg *config) validate() error {
	if cfg.Players <= 0 {
		return fmt.Errorf("loadgen: players must be positive, got %d", cfg.Players)
	}
	if cfg.M <= 0 || cfg.PostBatch <= 0 || cfg.PostBatch > cfg.M {
		return fmt.Errorf("loadgen: need 0 < post-batch <= m, got batch %d m %d", cfg.PostBatch, cfg.M)
	}
	if cfg.M%cfg.PostBatch != 0 {
		// The exact-counter audit needs the per-round windows to tile
		// the universe: min(k·B, M) counts distinct probes only when the
		// wrapped windows land exactly on earlier ones.
		return fmt.Errorf("loadgen: post-batch %d must divide m %d (exact probe accounting)", cfg.PostBatch, cfg.M)
	}
	for _, r := range cfg.Rates {
		if r <= 0 {
			return fmt.Errorf("loadgen: non-positive rate %v", r)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 50 * time.Millisecond
	}
	if cfg.RampStart <= 0 {
		cfg.RampStart = 1000
	}
	if cfg.RampMax <= 0 {
		cfg.RampMax = 1 << 22 // ~4.2M rounds/sec: past any plausible single host
	}
	if cfg.ServePlayers > 0 {
		if cfg.ServeM <= 0 {
			cfg.ServeM = 64
		}
		if cfg.ServeAlpha <= 0 || cfg.ServeAlpha > 1 {
			cfg.ServeAlpha = 0.5
		}
		if cfg.EpochEvery <= 0 {
			cfg.EpochEvery = time.Second
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// parseRates parses the -rates CSV ("1000,2000,4000").
func parseRates(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("loadgen: bad rate %q", p)
		}
		out = append(out, r)
	}
	return out, nil
}

// quiescer is the optional drain barrier of remote boards (Client and
// Cluster implement it; the in-process board needs none).
type quiescer interface{ Quiesce() }

// probeCounter reads the authoritative distinct-probe counter.
type probeCounter interface{ ProbeCount() int64 }

// run executes the configured sweep and returns the capacity artifact.
func run(ctx context.Context, cfg *config) (*BenchNetFile, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := telemetry.New()
	target, err := resolveTarget(cfg.Board, cfg.LocalShards, cfg.Players, cfg.M, reg)
	if err != nil {
		return nil, err
	}
	if target.close != nil {
		defer target.close()
	}
	cfg.Logf("board plane: %d players, m=%d, batch=%d, target %s, %d workers",
		cfg.Players, cfg.M, cfg.PostBatch, target.kind, cfg.Workers)

	var plane *servePlane
	if cfg.ServePlayers > 0 {
		plane, err = startServePlane(cfg, cfg.Logf)
		if err != nil {
			return nil, err
		}
	}

	file := &BenchNetFile{
		Command:   fmt.Sprintf("loadgen -players %d -m %d -post-batch %d", cfg.Players, cfg.M, cfg.PostBatch),
		Go:        goVersion(),
		Commit:    gitCommit(),
		Players:   cfg.Players,
		Shards:    target.shards,
		M:         cfg.M,
		PostBatch: cfg.PostBatch,
		Target:    target.kind,
		SLONs:     cfg.SLO.Nanoseconds(),
	}

	next := int64(0) // global arrival index, continuous across steps
	step := func(rate float64) (CapacityRow, error) {
		n := cfg.RoundsPerStep
		if n <= 0 {
			n = int64(rate * cfg.Duration.Seconds())
		}
		if n < int64(cfg.Workers) {
			n = int64(cfg.Workers)
		}
		res, err := runStep(ctx, target.board, cfg, next, n, rate)
		if err != nil {
			return CapacityRow{}, err
		}
		next += n
		row := buildRow(cfg.Players, target.shards, rate, res.rounds, res.elapsed, res.hist, cfg.SLO)
		cfg.Logf("rate %8.0f: achieved %8.0f r/s, p50 %v, p99 %v, sustained=%v",
			rate, row.AchievedRate,
			time.Duration(row.P50Ns).Round(time.Microsecond),
			time.Duration(row.P99Ns).Round(time.Microsecond), row.Sustained)
		return row, nil
	}

	if len(cfg.Rates) > 0 {
		for _, rate := range cfg.Rates {
			row, err := step(rate)
			if err != nil {
				return nil, err
			}
			file.Rows = append(file.Rows, row)
		}
	} else {
		for rate := cfg.RampStart; rate <= cfg.RampMax; rate *= 2 {
			row, err := step(rate)
			if err != nil {
				return nil, err
			}
			file.Rows = append(file.Rows, row)
			if !row.Sustained {
				break // past the knee; the previous row is the capacity
			}
		}
	}
	file.MaxSustainedRate = maxSustained(file.Rows)

	if plane != nil {
		s := plane.stop()
		file.Serve = &s
	}

	if cfg.Verify {
		if q, ok := target.board.(quiescer); ok {
			q.Quiesce()
		}
		pc, ok := target.board.(probeCounter)
		if !ok {
			return nil, fmt.Errorf("loadgen: board target %s cannot report ProbeCount", target.kind)
		}
		v := verifyCounts(expectedProbes(next, cfg.Players, cfg.PostBatch, cfg.M), pc.ProbeCount())
		file.Verify = &v
	}
	return file, nil
}
