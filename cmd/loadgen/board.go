package main

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/netboard"
	"tellme/internal/telemetry"
)

// boardTarget is the resolved billboard the board plane drives, plus
// everything the run needs to describe and tear it down.
type boardTarget struct {
	board boardclient.Interface
	// kind is the target label for the artifact: "inproc", "server",
	// "cluster(n)", or "local-shards(n)".
	kind string
	// shards is the shard count reported in the capacity table (1 for
	// an unsharded target).
	shards int
	// close tears down any servers this process spawned (nil-safe).
	close func()
}

// resolveTarget builds the board plane's target from the spec
// progression shared with tellmed and the batch facade — nothing (the
// in-process board), one URL (a single netboard server), a
// comma-separated list (a consistent-hashed cluster) — plus the
// loadgen-only localShards mode, which spawns that many loopback
// netboard servers in-process and drives them as a cluster over real
// HTTP: the full wire protocol and connection pool under load, no
// external processes to babysit. codec selects the client-side wire
// encoding of the remote targets ("json" or "binary"; moot for the
// in-process board).
func resolveTarget(spec string, localShards, players, m int, codec string, reg *telemetry.Registry) (*boardTarget, error) {
	spec = strings.TrimSpace(spec)
	if localShards > 0 {
		if spec != "" {
			return nil, fmt.Errorf("loadgen: -board and -local-shards are mutually exclusive")
		}
		return spawnLocalShards(localShards, players, m, codec, reg)
	}
	switch {
	case spec == "":
		mem := billboard.New(players, m)
		mem.SetTelemetry(reg)
		return &boardTarget{board: mem, kind: "inproc", shards: 1}, nil
	case strings.Contains(spec, ","):
		shards := strings.Split(spec, ",")
		cluster, err := netboard.NewCluster(netboard.ClusterConfig{
			Shards: shards,
			Client: netboard.Config{Telemetry: reg, Retries: 2, Codec: codec},
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: board %q: %w", spec, err)
		}
		return &boardTarget{board: cluster, kind: fmt.Sprintf("cluster(%d)", len(shards)), shards: len(shards)}, nil
	default:
		c := netboard.NewClientWithConfig(spec, netboard.Config{Telemetry: reg, Retries: 2, Codec: codec})
		return &boardTarget{board: c, kind: "server", shards: 1}, nil
	}
}

// spawnLocalShards starts n loopback netboard servers and returns a
// cluster client over them. Each shard serves its own board dimensioned
// for the full fleet (objects are partitioned across shards by the
// ring, players are not).
func spawnLocalShards(n, players, m int, codec string, reg *telemetry.Registry) (*boardTarget, error) {
	urls := make([]string, n)
	servers := make([]*http.Server, n)
	closeAll := func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("loadgen: shard %d listen: %w", i, err)
		}
		srv := &http.Server{
			Handler:           netboard.NewServer(billboard.New(players, m)),
			ReadHeaderTimeout: 5 * time.Second,
		}
		servers[i] = srv
		urls[i] = "http://" + ln.Addr().String()
		go srv.Serve(ln)
	}
	cluster, err := netboard.NewCluster(netboard.ClusterConfig{
		Shards: urls,
		Client: netboard.Config{Telemetry: reg, Retries: 2, Codec: codec},
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	return &boardTarget{
		board:  cluster,
		kind:   fmt.Sprintf("local-shards(%d)", n),
		shards: n,
		close:  closeAll,
	}, nil
}
