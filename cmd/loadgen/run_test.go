package main

import (
	"context"
	"testing"
	"time"
)

// TestSmokeInprocTenThousandPlayers is the CI smoke: a 10k-player fleet
// runs three full rounds each against the in-process board at an
// unconstrained rate, and the run's exact-counter audit must come back
// clean — every scheduled probe on the board, none double-applied.
func TestSmokeInprocTenThousandPlayers(t *testing.T) {
	const players, m, batch = 10_000, 64, 16
	const arrivals = 3 * players
	cfg := &config{
		Players:       players,
		M:             m,
		PostBatch:     batch,
		Workers:       40,
		Rates:         []float64{1e9}, // flat out: pacing sleeps vanish
		RoundsPerStep: arrivals,
		Seed:          1,
		Verify:        true,
		Logf:          t.Logf,
	}
	file, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(file.Rows) != 1 || file.Rows[0].Rounds != arrivals {
		t.Fatalf("rows = %+v, want one row of %d rounds", file.Rows, arrivals)
	}
	if file.Verify == nil {
		t.Fatal("verification missing from artifact")
	}
	wantProbes := int64(players) * 3 * batch // 3 rounds each, no wrap (48 < 64)
	if file.Verify.ExpectedProbes != wantProbes {
		t.Fatalf("expected probes %d, want %d", file.Verify.ExpectedProbes, wantProbes)
	}
	if !file.Verify.OK || file.Verify.Lost != 0 || file.Verify.Duplicated != 0 {
		t.Fatalf("probe audit failed: %+v", file.Verify)
	}
	if file.Target != "inproc" || file.Players != players {
		t.Fatalf("artifact header wrong: target=%q players=%d", file.Target, file.Players)
	}
}

// TestSmokeLocalShardCluster drives a smaller fleet through two real
// loopback netboard shards — wire protocol, batching, dedupe, and the
// pooled transport all under load — and audits the cluster-wide counter.
func TestSmokeLocalShardCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("network smoke")
	}
	const players, m, batch = 600, 64, 16
	cfg := &config{
		Players:       players,
		M:             m,
		PostBatch:     batch,
		Workers:       8,
		LocalShards:   2,
		Rates:         []float64{1e9},
		RoundsPerStep: 3 * players,
		Seed:          1,
		Verify:        true,
		Logf:          t.Logf,
	}
	file, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if file.Target != "local-shards(2)" || file.Shards != 2 {
		t.Fatalf("artifact header wrong: %q/%d", file.Target, file.Shards)
	}
	if !file.Verify.OK {
		t.Fatalf("cluster probe audit failed: %+v", file.Verify)
	}
	if want := int64(players) * 3 * batch; file.Verify.BoardProbes != want {
		t.Fatalf("cluster holds %d probes, want %d", file.Verify.BoardProbes, want)
	}
}

// TestSmokeServePlane runs both planes: the board fleet paced at a real
// rate so the serve plane has wall-clock time to join, complete epochs,
// and serve recommend reads.
func TestSmokeServePlane(t *testing.T) {
	if testing.Short() {
		t.Skip("timed smoke")
	}
	cfg := &config{
		Players:       1000,
		M:             32,
		PostBatch:     16,
		Workers:       10,
		Rates:         []float64{5000},
		RoundsPerStep: 5000, // ~1s of wall clock at the target rate
		ServePlayers:  64,
		ServeM:        32,
		RecommendRate: 500,
		ChurnPerSec:   20,
		EpochEvery:    10 * time.Millisecond,
		Seed:          7,
		Verify:        true,
		Logf:          t.Logf,
	}
	file, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !file.Verify.OK {
		t.Fatalf("board audit failed with serve plane on: %+v", file.Verify)
	}
	s := file.Serve
	if s == nil {
		t.Fatal("serve stats missing")
	}
	if s.Players != 64 {
		t.Fatalf("serve plane holds %d players, want 64", s.Players)
	}
	if s.Epochs == 0 {
		t.Fatal("serve plane completed no epochs")
	}
	if s.Recommends == 0 {
		t.Fatal("serve plane issued no recommends")
	}
}
