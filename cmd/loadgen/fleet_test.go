package main

import (
	"testing"
	"time"
)

func TestDueOffsetPacing(t *testing.T) {
	cases := []struct {
		i    int64
		rate float64
		want time.Duration
	}{
		{0, 100, 0},
		{50, 100, 500 * time.Millisecond},
		{100, 100, time.Second},
		{1, 1, time.Second},
		{10_000, 10_000, time.Second},
	}
	for _, c := range cases {
		if got := dueOffset(c.i, c.rate); got != c.want {
			t.Errorf("dueOffset(%d, %v) = %v, want %v", c.i, c.rate, got, c.want)
		}
	}
	// Monotone: arrival i+1 never due before arrival i.
	prev := time.Duration(-1)
	for i := int64(0); i < 1000; i++ {
		d := dueOffset(i, 333)
		if d < prev {
			t.Fatalf("dueOffset not monotone at i=%d: %v < %v", i, d, prev)
		}
		prev = d
	}
}

// bruteProbes replays the deterministic schedule into a set and counts
// distinct (player, object) pairs — the reference expectedProbes must
// match exactly.
func bruteProbes(t *testing.T, n int64, players, batch, m int) int64 {
	t.Helper()
	seen := make(map[[2]int]byte)
	objs := make([]int, batch)
	grades := make([]byte, batch)
	for i := int64(0); i < n; i++ {
		p := roundObjects(i, players, batch, m, objs, grades)
		for j, o := range objs {
			if o < 0 || o >= m {
				t.Fatalf("arrival %d: object %d out of [0,%d)", i, o, m)
			}
			key := [2]int{p, o}
			if prev, ok := seen[key]; ok && prev != grades[j] {
				t.Fatalf("arrival %d: grade for (%d,%d) changed %d -> %d", i, p, o, prev, grades[j])
			}
			seen[key] = grades[j]
		}
	}
	return int64(len(seen))
}

func TestExpectedProbesMatchesBruteForce(t *testing.T) {
	cases := []struct {
		players, batch, m int
	}{
		{3, 2, 8},
		{5, 4, 4},
		{1, 8, 8},
		{7, 2, 6},
		{16, 16, 64},
	}
	for _, c := range cases {
		maxN := int64(c.players*(c.m/c.batch)*2 + 3) // well past full coverage
		for n := int64(0); n <= maxN; n++ {
			want := bruteProbes(t, n, c.players, c.batch, c.m)
			if got := expectedProbes(n, c.players, c.batch, c.m); got != want {
				t.Fatalf("expectedProbes(n=%d, p=%d, b=%d, m=%d) = %d, want %d",
					n, c.players, c.batch, c.m, got, want)
			}
		}
	}
}

func TestRoundObjectsWrapsAndSaturates(t *testing.T) {
	const players, batch, m = 2, 4, 8
	objs := make([]int, batch)
	grades := make([]byte, batch)

	// Player 0's rounds are arrivals 0, 2, 4, ... — the first m/batch
	// rounds tile the universe, then windows repeat.
	covered := make(map[int]bool)
	for k := 0; k < m/batch; k++ {
		if p := roundObjects(int64(k*players), players, batch, m, objs, grades); p != 0 {
			t.Fatalf("arrival %d: player %d, want 0", k*players, p)
		}
		for _, o := range objs {
			covered[o] = true
		}
	}
	if len(covered) != m {
		t.Fatalf("first %d rounds covered %d objects, want %d", m/batch, len(covered), m)
	}
	// Round m/batch wraps back to the same window as round 0.
	roundObjects(0, players, batch, m, objs, grades)
	first := append([]int(nil), objs...)
	roundObjects(int64(m/batch*players), players, batch, m, objs, grades)
	for j := range objs {
		if objs[j] != first[j] {
			t.Fatalf("wrapped round window %v, want %v", objs, first)
		}
	}
}
