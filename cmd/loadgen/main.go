// Command loadgen is the synthetic-fleet driver: it sustains open-loop
// join/probe/post/recommend traffic from up to a million simulated
// players against an in-process board, a live netboard server, or a
// billboard cluster, and emits a capacity table (BENCH_NET.json)
// stating the highest sustained rounds/sec per configuration with p50
// and p99 latency read from the telemetry histograms.
//
// Examples:
//
//	loadgen -players 10000 -duration 2s                      # in-process smoke
//	loadgen -players 1000000 -local-shards 4 -rates 5000     # loopback cluster
//	loadgen -players 50000 -board http://a:8080,http://b:8080
//	loadgen -players 10000 -serve-players 512 -recommend-rate 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	cfg := &config{}
	var rates, codecs string
	flag.IntVar(&cfg.Players, "players", 10000, "simulated players in the board-plane fleet")
	flag.IntVar(&cfg.M, "m", 512, "object universe size")
	flag.IntVar(&cfg.PostBatch, "post-batch", 32, "probes posted per round (must divide m)")
	flag.BoolVar(&cfg.Lookups, "lookups", false, "also issue a lookup per round")
	flag.IntVar(&cfg.Workers, "workers", 64, "concurrent fleet workers")
	flag.StringVar(&rates, "rates", "", "comma-separated target rounds/sec steps (default: auto-ramp, doubling)")
	flag.Float64Var(&cfg.RampStart, "ramp-start", 1000, "auto-ramp starting rate")
	flag.Float64Var(&cfg.RampMax, "ramp-max", 0, "auto-ramp ceiling (0 = default)")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "duration of each rate step")
	flag.DurationVar(&cfg.Warmup, "warmup", time.Second, "unmeasured warmup at each leg's first rate (0 disables)")
	flag.IntVar(&cfg.Repeat, "repeat", 1, "repetitions of the whole codec sweep; rows keep the min-p99 per (codec, rate)")
	flag.StringVar(&cfg.Board, "board", "", "board target: empty = in-process, URL = server, comma-separated URLs = cluster")
	flag.StringVar(&codecs, "codec", "json", "comma-separated wire codecs to sweep (json,binary); each runs a fresh-target leg")
	flag.IntVar(&cfg.LocalShards, "local-shards", 0, "spawn N loopback netboard shards and drive them as a cluster")
	flag.IntVar(&cfg.ServePlayers, "serve-players", 0, "serve-plane fleet size (0 = board plane only)")
	flag.IntVar(&cfg.ServeM, "serve-m", 64, "serve-plane object universe")
	flag.Float64Var(&cfg.ServeAlpha, "serve-alpha", 0.5, "serve-plane community threshold")
	flag.StringVar(&cfg.ServeURL, "serve", "", "drive a live tellmed at this URL instead of an in-process engine")
	flag.Float64Var(&cfg.ChurnPerSec, "churn", 0, "serve-plane player replacements per second")
	flag.Float64Var(&cfg.RecommendRate, "recommend-rate", 0, "serve-plane recommend reads per second")
	flag.DurationVar(&cfg.EpochEvery, "epoch-every", time.Second, "in-process serve engine epoch cadence")
	flag.Uint64Var(&cfg.Seed, "seed", 1, "deterministic seed for truth vectors")
	flag.DurationVar(&cfg.SLO, "slo", 50*time.Millisecond, "p99 latency budget for 'sustained'")
	flag.BoolVar(&cfg.Verify, "verify", true, "audit posts against the board's exact probe counter")
	flag.StringVar(&cfg.Out, "out", "", "write BENCH_NET.json artifact to this path")
	flag.Parse()

	var err error
	if cfg.Rates, err = parseRates(rates); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, c := range strings.Split(codecs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			cfg.Codecs = append(cfg.Codecs, c)
		}
	}
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	file, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printTable(os.Stdout, file)
	if cfg.Out != "" {
		if err := writeBenchNet(cfg.Out, file); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Logf("wrote %s", cfg.Out)
	}
	if file.Verify != nil && !file.Verify.OK {
		fmt.Fprintln(os.Stderr, "loadgen: VERIFICATION FAILED: probe accounting mismatch")
		os.Exit(1)
	}
}
