package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tellme/internal/bitvec"
	"tellme/internal/netboard"
	"tellme/internal/rng"
	"tellme/internal/serve"
	"tellme/internal/telemetry"
)

// The serve plane exercises the recommendation side of the system —
// joins, churn, and recommend reads against a serve.Engine — while the
// board plane hammers the billboard. The two planes use disjoint
// boards: epoch compute cost is superlinear in members, so the serve
// fleet is sized to epoch throughput while the board fleet scales to
// millions, and keeping their boards separate preserves the board
// plane's exact probe accounting.
//
// The backend is either an in-process engine (the default) or a live
// tellmed daemon (-serve URL), reached through the same bulk-join and
// recommend API either way.
type serveBackend interface {
	joinBatch(bits []string) ([]uint64, error)
	leave(id uint64) error
	// recommend blocks up to wait for an epoch covering id.
	recommend(id uint64, wait time.Duration) error
	epochs() int64
	stop()
}

// servePlane drives churn and open-loop recommends against a backend.
type servePlane struct {
	backend serveBackend
	cfg     *config
	reg     *telemetry.Registry
	recHist *telemetry.Histogram
	recErrs *telemetry.Counter

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	ids   []uint64
	churn int64

	start time.Time
}

// startServePlane joins the serve fleet (bulk batches), then launches
// the churn and recommend loops. The caller must stopServePlane.
func startServePlane(cfg *config, logf func(string, ...any)) (*servePlane, error) {
	reg := telemetry.New()
	var backend serveBackend
	var err error
	if cfg.ServeURL != "" {
		backend, err = newTellmedClient(cfg.ServeURL, reg)
	} else {
		backend, err = newInprocServe(cfg, reg)
	}
	if err != nil {
		return nil, err
	}

	// One shared truth vector: the whole serve fleet is one community,
	// which any alpha ≤ 1 admits. Deterministic in the seed.
	r := rng.NewSource(cfg.Seed).Stream("serve-truth", 0)
	truth := bitvec.New(cfg.ServeM)
	for i := 0; i < cfg.ServeM; i++ {
		if r.Bool() {
			truth.Set(i, 1)
		}
	}
	bits := truth.String()

	p := &servePlane{
		backend: backend,
		cfg:     cfg,
		reg:     reg,
		recHist: reg.Histogram("loadgen.recommend.ns", telemetry.LatencyBucketsFine()),
		recErrs: reg.Counter("loadgen.recommend.errors"),
	}

	const joinChunk = 1024
	for off := 0; off < cfg.ServePlayers; off += joinChunk {
		n := min(joinChunk, cfg.ServePlayers-off)
		chunk := make([]string, n)
		for i := range chunk {
			chunk[i] = bits
		}
		ids, err := backend.joinBatch(chunk)
		if err != nil {
			backend.stop()
			return nil, fmt.Errorf("loadgen: serve join batch at %d: %w", off, err)
		}
		p.ids = append(p.ids, ids...)
	}
	logf("serve plane: joined %d players (%d bulk batches)", len(p.ids), (cfg.ServePlayers+joinChunk-1)/joinChunk)

	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.start = time.Now()
	if cfg.ChurnPerSec > 0 {
		p.wg.Add(1)
		go p.churnLoop(ctx, bits)
	}
	if cfg.RecommendRate > 0 {
		workers := min(cfg.Workers, 16)
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.recommendLoop(ctx, w, workers)
		}
	}
	return p, nil
}

// churnLoop retires the oldest player and admits a replacement at the
// configured rate — every replacement lands at an epoch boundary per
// the scheduler's churn contract.
func (p *servePlane) churnLoop(ctx context.Context, bits string) {
	defer p.wg.Done()
	for i := int64(0); ; i++ {
		due := p.start.Add(dueOffset(i, p.cfg.ChurnPerSec))
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Until(due)):
		}
		p.mu.Lock()
		var oldest uint64
		if len(p.ids) > 0 {
			oldest = p.ids[0]
		}
		p.mu.Unlock()
		if oldest == 0 {
			continue
		}
		if err := p.backend.leave(oldest); err != nil {
			continue
		}
		ids, err := p.backend.joinBatch([]string{bits})
		if err != nil || len(ids) != 1 {
			continue
		}
		p.mu.Lock()
		p.ids = append(p.ids[1:], ids[0])
		p.churn++
		p.mu.Unlock()
	}
}

// recommendLoop issues open-loop recommend reads, striding arrivals
// across workers like the board plane.
func (p *servePlane) recommendLoop(ctx context.Context, w, workers int) {
	defer p.wg.Done()
	for i := int64(w); ; i += int64(workers) {
		due := p.start.Add(dueOffset(i, p.cfg.RecommendRate))
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Until(due)):
		}
		p.mu.Lock()
		var id uint64
		if len(p.ids) > 0 {
			id = p.ids[int(i)%len(p.ids)]
		}
		p.mu.Unlock()
		if id == 0 {
			continue
		}
		if err := p.backend.recommend(id, p.cfg.SLO); err != nil {
			p.recErrs.Inc()
		}
		p.recHist.Observe(time.Since(due).Nanoseconds())
	}
}

// stop halts the loops and returns the plane's stats.
func (p *servePlane) stop() ServeStats {
	elapsed := time.Since(p.start)
	p.cancel()
	p.wg.Wait()
	p.backend.stop()
	snap := p.reg.Snapshot()
	h := snap.Histograms["loadgen.recommend.ns"]
	p.mu.Lock()
	churn := p.churn
	players := len(p.ids)
	p.mu.Unlock()
	s := ServeStats{
		Players:         players,
		Epochs:          p.backend.epochs(),
		Recommends:      h.Count,
		RecommendP50Ns:  h.Quantile(0.50),
		RecommendP99Ns:  h.Quantile(0.99),
		ChurnApplied:    churn,
		RecommendErrors: snap.Counters["loadgen.recommend.errors"],
	}
	if elapsed > 0 {
		s.RecommendRate = float64(h.Count) / elapsed.Seconds()
	}
	return s
}

// inprocServe runs a serve.Engine with its own in-process board.
type inprocServe struct {
	engine *serve.Engine
	cancel context.CancelFunc
	done   chan struct{}
}

func newInprocServe(cfg *config, reg *telemetry.Registry) (*inprocServe, error) {
	engine, err := serve.New(serve.Config{
		M:         cfg.ServeM,
		Capacity:  cfg.ServePlayers + 1, // one spare slot for churn replacement overlap
		Alpha:     cfg.ServeAlpha,
		Seed:      cfg.Seed,
		Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &inprocServe{engine: engine, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		engine.Run(ctx, cfg.EpochEvery)
	}()
	return s, nil
}

func (s *inprocServe) joinBatch(bits []string) ([]uint64, error) {
	truths := make([]bitvec.Vector, len(bits))
	for i, b := range bits {
		v, err := vectorFromBits(b)
		if err != nil {
			return nil, err
		}
		truths[i] = v
	}
	return s.engine.JoinBatch(truths)
}

func (s *inprocServe) leave(id uint64) error { return s.engine.Leave(id) }

func (s *inprocServe) recommend(id uint64, wait time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	_, _, err := s.engine.Recommend(ctx, id)
	return err
}

func (s *inprocServe) epochs() int64 { return s.engine.CompletedEpochs() }

func (s *inprocServe) stop() {
	s.cancel()
	<-s.done
}

// vectorFromBits parses a '0'/'1' string (the serve wire format).
func vectorFromBits(bits string) (bitvec.Vector, error) {
	v := bitvec.New(len(bits))
	for i := 0; i < len(bits); i++ {
		switch bits[i] {
		case '0':
		case '1':
			v.Set(i, 1)
		default:
			return bitvec.Vector{}, fmt.Errorf("loadgen: bad bit %q at %d", bits[i], i)
		}
	}
	return v, nil
}

// tellmedClient drives a live tellmed daemon over its HTTP API, using
// the netboard pool defaults for the transport.
type tellmedClient struct {
	base  string
	httpc *http.Client
}

func newTellmedClient(base string, _ *telemetry.Registry) (*tellmedClient, error) {
	return &tellmedClient{
		base:  strings.TrimRight(base, "/"),
		httpc: netboard.Config{}.PooledHTTPClient(),
	}, nil
}

func (c *tellmedClient) joinBatch(bits []string) ([]uint64, error) {
	type player struct {
		Bits string `json:"bits"`
	}
	req := struct {
		Players []player `json:"players"`
	}{Players: make([]player, len(bits))}
	for i, b := range bits {
		req.Players[i] = player{Bits: b}
	}
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Post(c.base+"/v1/players/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("loadgen: batch join: %s: %s", resp.Status, msg)
	}
	var rep struct {
		IDs []uint64 `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return rep.IDs, nil
}

func (c *tellmedClient) leave(id uint64) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/players/%d", c.base, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("loadgen: leave %d: %s", id, resp.Status)
	}
	return nil
}

func (c *tellmedClient) recommend(id uint64, wait time.Duration) error {
	resp, err := c.httpc.Get(fmt.Sprintf("%s/v1/recommend/%d?wait=%s", c.base, id, wait))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: recommend %d: %s", id, resp.Status)
	}
	return nil
}

func (c *tellmedClient) epochs() int64 {
	resp, err := c.httpc.Get(c.base + "/v1/status")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var st struct {
		Epoch int64 `json:"epoch"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	return st.Epoch
}

func (c *tellmedClient) stop() { c.httpc.CloseIdleConnections() }
