package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tellme/internal/boardclient"
	"tellme/internal/telemetry"
)

// The board plane simulates a fleet of players running probe rounds
// against the billboard. The schedule is fully deterministic in the
// global arrival index i:
//
//	player  p = i mod P
//	round   k = i div P        (how many rounds p has run before this one)
//	objects   = offset..offset+B-1, offset = (k·B) mod M
//	grade     = (p + o) & 1    (stable per (player, object))
//
// Because B divides M, a player's first M/B rounds cover M distinct
// objects and every later round re-posts an already-covered window —
// the board is first-post-wins, so re-posts are no-ops. The number of
// distinct probes the board must hold after N arrivals is therefore
// exactly computable (expectedProbes), which is what lets the run
// assert zero lost and zero duplicated posts from the server's own
// counter instead of trusting client-side bookkeeping.
//
// Arrivals are open-loop: arrival i is *due* at start + i/rate,
// regardless of how the previous rounds are doing. Workers stride the
// arrival sequence (worker w takes i ≡ w mod W), sleep until each
// arrival's due time, and charge the round's latency from the due time
// — so queueing delay under overload is measured, not hidden.

// dueOffset returns arrival i's scheduled offset from the step start at
// the target rate.
func dueOffset(i int64, rate float64) time.Duration {
	return time.Duration(float64(i) / rate * float64(time.Second))
}

// expectedProbes is the exact distinct-probe count after n arrivals
// over a fleet of players, batch objects per round, universe m:
// Σ_p min(k_p·B, M) with k_p = per-player round count. Requires B | M
// (validated at config time) — otherwise wrapped windows would overlap
// partially and the count would not be closed-form.
func expectedProbes(n int64, players, batch, m int) int64 {
	if players <= 0 || n <= 0 {
		return 0
	}
	q, r := n/int64(players), n%int64(players)
	distinct := func(k int64) int64 {
		d := k * int64(batch)
		if d > int64(m) {
			return int64(m)
		}
		return d
	}
	return r*distinct(q+1) + (int64(players)-r)*distinct(q)
}

// roundObjects fills objs/grades for arrival i's round. Buffers are
// caller-owned (one pair per worker; the board client copies what it
// needs).
func roundObjects(i int64, players, batch, m int, objs []int, grades []byte) (player int) {
	p := int(i % int64(players))
	k := i / int64(players)
	offset := int(k*int64(batch)) % m
	for j := 0; j < batch; j++ {
		o := offset + j
		objs[j] = o
		grades[j] = byte((p + o) & 1)
	}
	return p
}

// stepResult is one rate step's raw outcome.
type stepResult struct {
	rounds  int64
	elapsed time.Duration
	hist    telemetry.HistogramSnapshot
}

// runStep drives n open-loop arrivals at the target rate against the
// board, starting from global arrival index first (the fleet's schedule
// continues across steps so the expected-count math stays exact).
// Latencies land in reg's "loadgen.round.ns" histogram, reset per step
// by using a fresh registry.
func runStep(ctx context.Context, board boardclient.Interface, cfg *config, first, n int64, rate float64) (stepResult, error) {
	if n <= 0 {
		return stepResult{}, fmt.Errorf("loadgen: step with %d arrivals", n)
	}
	reg := telemetry.New()
	hist := reg.Histogram("loadgen.round.ns", telemetry.LatencyBucketsFine())
	// The board's PostProbe duplicate check relies on a single writer per
	// player. Worker w takes arrivals i ≡ w (mod W), and player is
	// i mod P — so every arrival of a given player lands on the same
	// worker exactly when W divides P. Round W down to a divisor.
	workers := cfg.Workers
	if workers > cfg.Players {
		workers = cfg.Players
	}
	for cfg.Players%workers != 0 {
		workers--
	}

	b := boardclient.BindContext(ctx, board)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			objs := make([]int, cfg.PostBatch)
			grades := make([]byte, cfg.PostBatch)
			lookGrades := make([]byte, cfg.PostBatch)
			lookKnown := make([]bool, cfg.PostBatch)
			for i := int64(w); i < n; i += int64(workers) {
				due := start.Add(dueOffset(i, rate))
				if d := time.Until(due); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				} else if ctx.Err() != nil {
					return
				}
				p := roundObjects(first+i, cfg.Players, cfg.PostBatch, cfg.M, objs, grades)
				b.PostProbes(p, objs, grades)
				if cfg.Lookups {
					b.LookupProbes(p, objs, lookGrades, lookKnown)
				}
				hist.Observe(time.Since(due).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return stepResult{}, context.Cause(ctx)
	}
	elapsed := time.Since(start)
	snap := reg.Snapshot().Histograms["loadgen.round.ns"]
	return stepResult{rounds: snap.Count, elapsed: elapsed, hist: snap}, nil
}
