package main

import (
	"reflect"
	"testing"
	"time"

	"tellme/internal/telemetry"
)

func snapshotOf(t *testing.T, samples []int64) telemetry.HistogramSnapshot {
	t.Helper()
	reg := telemetry.New()
	h := reg.Histogram("test.ns", telemetry.LatencyBucketsFine())
	for _, s := range samples {
		h.Observe(s)
	}
	return h.Snapshot()
}

func TestBuildRowCapacityMath(t *testing.T) {
	fast := snapshotOf(t, []int64{int64(time.Millisecond), int64(2 * time.Millisecond)})

	// 1000 rounds over 1s at a 1000/s target, low latency: sustained.
	row := buildRow(500, 2, 1000, 1000, time.Second, fast, 50*time.Millisecond)
	if row.Players != 500 || row.Shards != 2 || row.Rounds != 1000 {
		t.Fatalf("row identity fields wrong: %+v", row)
	}
	if row.AchievedRate < 999 || row.AchievedRate > 1001 {
		t.Fatalf("achieved rate %v, want ~1000", row.AchievedRate)
	}
	if !row.Sustained {
		t.Fatalf("fast full-rate row not sustained: %+v", row)
	}

	// Same step but only 900 rounds completed: achieved < 95% of target.
	row = buildRow(500, 2, 1000, 900, time.Second, fast, 50*time.Millisecond)
	if row.Sustained {
		t.Fatalf("90%% throughput row marked sustained: %+v", row)
	}

	// Full throughput but p99 past the SLO: not sustained.
	slow := snapshotOf(t, []int64{int64(200 * time.Millisecond)})
	row = buildRow(500, 2, 1000, 1000, time.Second, slow, 50*time.Millisecond)
	if row.Sustained {
		t.Fatalf("slow row marked sustained: p99=%v", time.Duration(row.P99Ns))
	}
}

func TestMaxSustained(t *testing.T) {
	rows := []CapacityRow{
		{TargetRate: 1000, Sustained: true},
		{TargetRate: 2000, Sustained: true},
		{TargetRate: 4000, Sustained: false},
	}
	if got := maxSustained(rows); got != 2000 {
		t.Fatalf("maxSustained = %v, want 2000", got)
	}
	if got := maxSustained(nil); got != 0 {
		t.Fatalf("maxSustained(nil) = %v, want 0", got)
	}
	if got := maxSustained([]CapacityRow{{TargetRate: 100, Sustained: false}}); got != 0 {
		t.Fatalf("maxSustained all-failed = %v, want 0", got)
	}
}

func TestVerifyCounts(t *testing.T) {
	if v := verifyCounts(100, 100); !v.OK || v.Lost != 0 || v.Duplicated != 0 {
		t.Fatalf("exact match: %+v", v)
	}
	if v := verifyCounts(100, 97); v.OK || v.Lost != 3 || v.Duplicated != 0 {
		t.Fatalf("lost posts: %+v", v)
	}
	if v := verifyCounts(100, 104); v.OK || v.Lost != 0 || v.Duplicated != 4 {
		t.Fatalf("duplicated posts: %+v", v)
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates(" 1000, 2000,4000 ")
	if err != nil || !reflect.DeepEqual(got, []float64{1000, 2000, 4000}) {
		t.Fatalf("parseRates = %v, %v", got, err)
	}
	if got, err := parseRates(""); err != nil || got != nil {
		t.Fatalf("empty spec = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"x", "1000,-5", "1000,,2000", "0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := func() *config {
		return &config{Players: 100, M: 64, PostBatch: 16}
	}
	if err := good().validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	c := good()
	c.Players = 0
	if err := c.validate(); err == nil {
		t.Error("players=0 accepted")
	}
	c = good()
	c.PostBatch = 10 // does not divide 64: breaks exact probe accounting
	if err := c.validate(); err == nil {
		t.Error("non-dividing post-batch accepted")
	}
	c = good()
	c.PostBatch = 128 // larger than the universe
	if err := c.validate(); err == nil {
		t.Error("post-batch > m accepted")
	}
	c = good()
	c.Rates = []float64{1000, -1}
	if err := c.validate(); err == nil {
		t.Error("negative rate accepted")
	}
}
