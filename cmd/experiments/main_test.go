package main

import (
	"os"
	"strings"
	"testing"

	"tellme/internal/exp"
	"tellme/internal/metrics"
)

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(exp.All()) {
		t.Fatalf("selected %d of %d", len(got), len(exp.All()))
	}
}

func TestSelectExperimentsByID(t *testing.T) {
	got, err := selectExperiments("E4, E1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "E4" || got[1].ID != "E1" {
		t.Fatalf("selected %+v", got)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	_, err := selectExperiments("E1,E99")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), "E99") || !strings.Contains(err.Error(), "available") {
		t.Fatalf("error %v not helpful", err)
	}
}

func TestWriteCSV(t *testing.T) {
	path := t.TempDir() + "/t.csv"
	tab := &metrics.Table{Header: []string{"a", "b"}}
	tab.AddRow(1, "x")
	if err := writeCSV(path, tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,x\n" {
		t.Fatalf("csv = %q", data)
	}
}
