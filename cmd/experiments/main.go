// Command experiments regenerates the reproduction tables E1–E20 (see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for a
// recorded reference run).
//
// Examples:
//
//	experiments                  # run everything at reference scale
//	experiments -run E4,E6       # selected experiments
//	experiments -scale 1 -seeds 1 -quick   # fast smoke pass
//	experiments -format markdown # emit markdown tables
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tellme/internal/core"
	"tellme/internal/exp"
	"tellme/internal/metrics"
	"tellme/internal/probe"
	"tellme/internal/telemetry"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs (empty = all)")
		seeds   = flag.Int("seeds", 3, "repetitions per configuration")
		scale   = flag.Int("scale", 2, "instance size scale (1 = quick, 2 = reference)")
		format  = flag.String("format", "text", "output format: text|csv|markdown")
		quick   = flag.Bool("quick", false, "shorthand for -seeds 1 -scale 1")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		outDir  = flag.String("out", "", "also write each table as CSV into this directory")
		withTel = flag.Bool("telemetry", false, "collect runtime telemetry and print a per-experiment cost breakdown")
		tmo     = flag.Duration("timeout", 0, "per-experiment wall-clock budget; a timed-out experiment is skipped (0 = no limit)")
	)
	flag.Parse()
	if *quick {
		*seeds, *scale = 1, 1
	}

	opts := exp.Options{Seeds: *seeds, Scale: *scale}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(t *metrics.Table) error {
		switch *format {
		case "text":
			return t.Render(os.Stdout)
		case "csv":
			return t.CSV(os.Stdout)
		case "markdown":
			return t.Markdown(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	exitCode := 0
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "--- %s: %s (%s)\n", e.ID, e.Title, e.Claim)
		if *withTel {
			opts.Telemetry = telemetry.New()
		}
		tables, err := runExperiment(e, opts, *tmo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s aborted: %v\n", e.ID, err)
			exitCode = 1
			continue
		}
		for i, t := range tables {
			if err := emit(t); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println()
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				if err := writeCSV(filepath.Join(*outDir, name), t); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
			}
		}
		if *withTel {
			if t := costBreakdown(e.ID, opts.Telemetry); t != nil {
				if err := emit(t); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				fmt.Println()
			}
			if t := tallyBreakdown(e.ID, opts.Telemetry); t != nil {
				if err := emit(t); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
				fmt.Println()
			}
		}
	}
	os.Exit(exitCode)
}

// runExperiment executes one experiment under an optional wall-clock
// budget. A cancelled context surfaces from player code as a
// *core.Abort or *probe.Canceled panic; recover it here so one
// timed-out experiment does not kill the rest of the sweep. Any other
// panic is a real bug and is re-raised.
func runExperiment(e exp.Experiment, opts exp.Options, timeout time.Duration) (tables []*metrics.Table, err error) {
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		opts.Context = ctx
	}
	defer func() {
		rec := recover()
		switch v := rec.(type) {
		case nil:
		case *core.Abort:
			tables, err = nil, v
		case *probe.Canceled:
			tables, err = nil, v
		default:
			panic(rec)
		}
	}()
	return e.Run(opts), nil
}

// costBreakdown turns the "core.<kind>.{calls,probes,ns}" span counters
// accumulated across one experiment's sessions into a per-sub-algorithm
// cost table (nil when the experiment never entered an instrumented
// span).
func costBreakdown(id string, reg *telemetry.Registry) *metrics.Table {
	snap := reg.Snapshot()
	kinds := map[string]bool{}
	for name := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, "core."); ok {
			if kind, ok := strings.CutSuffix(rest, ".calls"); ok {
				kinds[kind] = true
			}
		}
	}
	if len(kinds) == 0 {
		return nil
	}
	sorted := make([]string, 0, len(kinds))
	for k := range kinds {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	t := &metrics.Table{
		Title:  fmt.Sprintf("%s cost breakdown (all seeds and configurations)", id),
		Note:   "per sub-algorithm: invocations, probes charged inside the span, wall time",
		Header: []string{"sub-algorithm", "calls", "probes", "probes/call", "wall", "wall/call"},
	}
	for _, kind := range sorted {
		calls := snap.Counters["core."+kind+".calls"]
		probes := snap.Counters["core."+kind+".probes"]
		ns := snap.Counters["core."+kind+".ns"]
		if calls == 0 {
			continue
		}
		t.AddRow(kind, calls, probes,
			fmt.Sprintf("%.1f", float64(probes)/float64(calls)),
			time.Duration(ns).Round(time.Microsecond),
			time.Duration(ns/calls).Round(time.Microsecond))
	}
	return t
}

// tallyBreakdown summarizes the billboard's tally-cache behaviour for
// one experiment: epoch-cache hits vs rebuilds, the hit rate, total and
// mean rebuild wall time, and how many rebuilds took the parallel
// grouping path (nil when the board posted nothing).
func tallyBreakdown(id string, reg *telemetry.Registry) *metrics.Table {
	snap := reg.Snapshot()
	hits := snap.Counters["billboard.tally.cache_hits"]
	rebuilds := snap.Counters["billboard.tally.rebuilds"]
	if hits+rebuilds == 0 {
		return nil
	}
	rebuildNs := snap.Counters["billboard.tally.rebuild_ns"]
	par := snap.Counters["billboard.tally.par_rebuilds"]
	meanNs := int64(0)
	if rebuilds > 0 {
		meanNs = rebuildNs / rebuilds
	}
	t := &metrics.Table{
		Title:  fmt.Sprintf("%s billboard tally cache (all seeds and configurations)", id),
		Note:   "epoch-cache effectiveness and rebuild cost of the vote tallies",
		Header: []string{"hits", "rebuilds", "hit rate", "rebuild wall", "wall/rebuild", "parallel rebuilds"},
	}
	t.AddRow(hits, rebuilds,
		fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+rebuilds)),
		time.Duration(rebuildNs).Round(time.Microsecond),
		time.Duration(meanNs).Round(time.Microsecond),
		par)
	return t
}

// selectExperiments resolves a comma-separated ID list ("" = all).
func selectExperiments(run string) ([]exp.Experiment, error) {
	if run == "" {
		return exp.All(), nil
	}
	var selected []exp.Experiment
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		e, ok := exp.ByID(id)
		if !ok {
			avail := make([]string, 0, len(exp.All()))
			for _, e := range exp.All() {
				avail = append(avail, e.ID)
			}
			return nil, fmt.Errorf("unknown experiment %q; available: %s", id, strings.Join(avail, " "))
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func writeCSV(path string, t *metrics.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
