// Command experiments regenerates the reproduction tables E1–E20 (see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for a
// recorded reference run).
//
// Examples:
//
//	experiments                  # run everything at reference scale
//	experiments -run E4,E6       # selected experiments
//	experiments -scale 1 -seeds 1 -quick   # fast smoke pass
//	experiments -format markdown # emit markdown tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tellme/internal/exp"
	"tellme/internal/metrics"
)

func main() {
	var (
		run    = flag.String("run", "", "comma-separated experiment IDs (empty = all)")
		seeds  = flag.Int("seeds", 3, "repetitions per configuration")
		scale  = flag.Int("scale", 2, "instance size scale (1 = quick, 2 = reference)")
		format = flag.String("format", "text", "output format: text|csv|markdown")
		quick  = flag.Bool("quick", false, "shorthand for -seeds 1 -scale 1")
		quiet  = flag.Bool("q", false, "suppress progress lines")
		outDir = flag.String("out", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *quick {
		*seeds, *scale = 1, 1
	}

	opts := exp.Options{Seeds: *seeds, Scale: *scale}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(t *metrics.Table) error {
		switch *format {
		case "text":
			return t.Render(os.Stdout)
		case "csv":
			return t.CSV(os.Stdout)
		case "markdown":
			return t.Markdown(os.Stdout)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "--- %s: %s (%s)\n", e.ID, e.Title, e.Claim)
		for i, t := range e.Run(opts) {
			if err := emit(t); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println()
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", e.ID, i)
				if err := writeCSV(filepath.Join(*outDir, name), t); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
			}
		}
	}
}

// selectExperiments resolves a comma-separated ID list ("" = all).
func selectExperiments(run string) ([]exp.Experiment, error) {
	if run == "" {
		return exp.All(), nil
	}
	var selected []exp.Experiment
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		e, ok := exp.ByID(id)
		if !ok {
			avail := make([]string, 0, len(exp.All()))
			for _, e := range exp.All() {
				avail = append(avail, e.ID)
			}
			return nil, fmt.Errorf("unknown experiment %q; available: %s", id, strings.Join(avail, " "))
		}
		selected = append(selected, e)
	}
	return selected, nil
}

func writeCSV(path string, t *metrics.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.CSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
