package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/serve"
	"tellme/internal/telemetry"
)

func TestResolveBoardInProcess(t *testing.T) {
	b, err := resolveBoard("", 8, 32, "json", telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*billboard.Board); !ok {
		t.Fatalf("empty spec resolved to %T, want *billboard.Board", b)
	}
}

func TestResolveBoardSingleURL(t *testing.T) {
	b, err := resolveBoard(" http://localhost:7070 ", 8, 32, "json", telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := b.(*netboard.Client)
	if !ok {
		t.Fatalf("single URL resolved to %T, want *netboard.Client", b)
	}
	if c.BaseURL != "http://localhost:7070" {
		t.Fatalf("BaseURL = %q (spec must be trimmed)", c.BaseURL)
	}
}

func TestResolveBoardCluster(t *testing.T) {
	b, err := resolveBoard("http://a:1,http://b:2", 8, 32, "json", telemetry.New())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*netboard.Cluster); !ok {
		t.Fatalf("shard list resolved to %T, want *netboard.Cluster", b)
	}
	if _, err := resolveBoard("http://a:1,", 8, 32, "json", telemetry.New()); err == nil {
		t.Fatal("empty shard in list must be rejected")
	}
}

// TestDaemonAgainstClusterBoard is the end-to-end smoke for the wiring
// main performs: a two-shard billboard cluster, a serving engine
// resolved from the comma-separated spec, and the HTTP API on top —
// join, recommend from a completed epoch, leave.
func TestDaemonAgainstClusterBoard(t *testing.T) {
	const m = 32
	var backends []*httptest.Server
	var urls []string
	for i := 0; i < 2; i++ {
		bs := httptest.NewServer(netboard.NewServer(billboard.New(8, m)))
		t.Cleanup(bs.Close)
		backends = append(backends, bs)
		urls = append(urls, bs.URL)
	}
	reg := telemetry.New()
	board, err := resolveBoard(strings.Join(urls, ","), 8, m, "binary", reg)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := serve.New(serve.Config{M: m, Capacity: 8, Alpha: 0.4, Board: board, Seed: 42, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(serve.Handler(engine, serve.HandlerConfig{RecommendDeadline: 10 * time.Second, Telemetry: reg}))
	t.Cleanup(front.Close)
	stop := startEpochLoop(t, engine)
	defer stop()

	bits := strings.Repeat("10", m/2)
	var ids [2]uint64
	for i := range ids {
		body, _ := json.Marshal(map[string]string{"bits": bits})
		resp, err := http.Post(front.URL+"/v1/players", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var reply struct {
			ID uint64 `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("join status %d", resp.StatusCode)
		}
		ids[i] = reply.ID
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/recommend/%d", front.URL, ids[0]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status %d", resp.StatusCode)
	}
	var rec struct {
		Epoch int64  `json:"epoch"`
		Bits  string `json:"bits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Epoch < 1 || rec.Bits != bits {
		t.Fatalf("recommend = %+v, want epoch >= 1 and bits %q", rec, bits)
	}
	req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/players/%d", front.URL, ids[0]), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("leave status %d", dresp.StatusCode)
	}
}

// startEpochLoop runs the engine loop the way main does and returns the
// shutdown half of the wiring.
func startEpochLoop(t *testing.T, e *serve.Engine) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run(ctx, 50*time.Millisecond)
	}()
	return func() { cancel(); <-done }
}
