// Command tellmed is the online serving daemon: a long-lived
// recommendation service where players join and leave dynamically and
// recommendations are answered from the latest completed epoch.
//
//	tellmed -addr :7080 -m 1024 -capacity 256 -alpha 0.25
//	tellmed -addr :7080 -m 1024 -capacity 256 -board http://boards:7070
//	tellmed -addr :7080 -m 1024 -capacity 256 \
//	    -board http://s0:7070,http://s1:7071,http://s2:7072
//
// Players register their preference vector with POST /v1/players and
// are admitted at the next epoch boundary; DELETE /v1/players/{id}
// retires a player at the next boundary. The daemon runs one
// reconstruction epoch every -epoch-every (earlier when churn is
// pending): a full unknown-D run, or the incremental refresh repair
// when the previous epoch's outputs cover enough of the membership.
// GET /v1/recommend/{id} answers from the latest completed epoch,
// waiting up to -deadline (or the request's shorter ?wait=) for an
// epoch that covers the player. GET /v1/status and /debug/telemetry
// expose progress and runtime counters.
//
// With -board, epochs run against a remote billboard — one URL for a
// single cmd/billboard server, a comma-separated list for a sharded
// cluster routed by consistent hashing — instead of the in-process
// board. The serving loop is identical either way (see DESIGN.md §13).
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for up to -shutdown-grace, and exits; an epoch in
// flight is cancelled (membership stands, no snapshot is published).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/netboard"
	"tellme/internal/serve"
	"tellme/internal/telemetry"
	"tellme/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7080", "listen address")
		m          = flag.Int("m", 1024, "object universe size")
		capacity   = flag.Int("capacity", 256, "maximum concurrently registered players")
		alpha      = flag.Float64("alpha", 0.25, "assumed community fraction (0,1]")
		boardSpec  = flag.String("board", "", "remote billboard: one base URL, or a comma-separated shard list (empty = in-process board)")
		boardCodec = flag.String("codec", "json", "wire codec for the remote billboard: json or binary (binary falls back to json against servers that refuse it)")
		epochEvery = flag.Duration("epoch-every", 5*time.Second, "epoch interval (epochs run earlier when churn is pending)")
		epochT     = flag.Duration("epoch-timeout", 0, "per-epoch wall-clock bound (0 = none); an epoch exceeding it aborts and the previous snapshot keeps serving")
		deadline   = flag.Duration("deadline", serve.DefaultRecommendDeadline, "default per-request recommend deadline")
		seed       = flag.Uint64("seed", 1, "seed for reproducible serving runs")
		workers    = flag.Int("parallelism", 0, "phase worker pool bound (0 = GOMAXPROCS)")
		drift      = flag.Int("expected-drift", 0, "expected per-player preference drift, sizes the refresh budget (0 = generous default)")
		readHdrT   = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		idleT      = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
	)
	flag.Parse()

	reg := telemetry.New()
	if _, err := wire.ByName(*boardCodec); err != nil {
		log.Fatal(err)
	}
	board, err := resolveBoard(*boardSpec, *capacity, *m, *boardCodec, reg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := serve.New(serve.Config{
		M:             *m,
		Capacity:      *capacity,
		Alpha:         *alpha,
		Board:         board,
		Seed:          *seed,
		Parallelism:   *workers,
		EpochTimeout:  *epochT,
		ExpectedDrift: *drift,
		Telemetry:     reg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	loopCtx, stopLoop := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		engine.Run(loopCtx, *epochEvery)
	}()

	hsrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.Handler(engine, serve.HandlerConfig{RecommendDeadline: *deadline, Telemetry: reg}),
		ReadHeaderTimeout: *readHdrT,
		IdleTimeout:       *idleT,
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		s := <-sig
		log.Printf("received %v, draining (grace %v)", s, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hsrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v (closing remaining connections)", err)
			hsrv.Close()
		}
		stopLoop()
		<-loopDone
	}()

	where := "in-process board"
	if *boardSpec != "" {
		where = "board " + *boardSpec
	}
	log.Printf("tellmed serving on %s (capacity %d, m %d, alpha %v, %s)", *addr, *capacity, *m, *alpha, where)
	if err := hsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("tellmed exited cleanly (%d epochs completed)", engine.CompletedEpochs())
}

// resolveBoard builds the billboard the epochs run against: the
// in-process board for an empty spec, a single netboard client for one
// URL, a consistent-hashed cluster for a comma-separated list — the
// same resolution the batch facade's Options.BoardURL performs.
func resolveBoard(spec string, capacity, m int, codec string, reg *telemetry.Registry) (boardclient.Interface, error) {
	spec = strings.TrimSpace(spec)
	switch {
	case spec == "":
		mem := billboard.New(capacity, m)
		mem.SetTelemetry(reg)
		return mem, nil
	case strings.Contains(spec, ","):
		cluster, err := netboard.NewCluster(netboard.ClusterConfig{
			Shards: strings.Split(spec, ","),
			Client: netboard.Config{Telemetry: reg, Codec: codec},
		})
		if err != nil {
			return nil, fmt.Errorf("tellmed: board %q: %w", spec, err)
		}
		return cluster, nil
	default:
		return netboard.NewClientWithConfig(spec, netboard.Config{Telemetry: reg, Codec: codec}), nil
	}
}
