package netboard

// Tests for the hardened wire protocol: server-side input validation,
// method enforcement, batched endpoints, the epoch-tagged snapshot
// cache, request-id deduplication, degraded-mode client semantics, and
// retry/backoff accounting. The fault-injection stress lives in
// stress_test.go.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/netboard/faultnet"
)

// postJSON sends a raw JSON POST and returns the status code.
func postJSON(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestMutatingHandlersValidateInput(t *testing.T) {
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	cases := []struct {
		name, path, body string
	}{
		{"vector player out of range", PathVector, `{"topic":"t","player":99,"bits":"0101"}`},
		{"vector negative player", PathVector, `{"topic":"t","player":-1,"bits":"0101"}`},
		{"vector empty topic", PathVector, `{"topic":"","player":0,"bits":"0101"}`},
		{"values player out of range", PathValues, `{"topic":"t","player":99,"vals":[1]}`},
		{"values negative player", PathValues, `{"topic":"t","player":-1,"vals":[1]}`},
		{"values empty topic", PathValues, `{"topic":"","player":0,"vals":[1]}`},
		{"drop empty topic", PathDropTopic, `{"topic":""}`},
		{"batch probes player out of range", PathBatchProbes, `{"player":99,"objects":[0],"grades":"1"}`},
		{"batch probes object out of range", PathBatchProbes, `{"player":0,"objects":[99],"grades":"1"}`},
		{"batch probes length mismatch", PathBatchProbes, `{"player":0,"objects":[0,1],"grades":"1"}`},
		{"batch probes bad grade", PathBatchProbes, `{"player":0,"objects":[0],"grades":"x"}`},
	}
	for _, tc := range cases {
		if code := postJSON(t, srv.URL+tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Nothing of the above reached the board.
	if board.VectorPostCount() != 0 || board.ProbeCount() != 0 || board.TopicCount() != 0 {
		t.Fatalf("invalid requests mutated the board: %d vectors, %d probes, %d topics",
			board.VectorPostCount(), board.ProbeCount(), board.TopicCount())
	}
}

func TestReadHandlersRequireGET(t *testing.T) {
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	paths := []string{
		PathPostings, PathVotes, PathValuePostings, PathValueVotes,
		PathProbedObjects, PathStats, PathBatchLookups, PathTopicSnapshot,
	}
	for _, path := range paths {
		if code := postJSON(t, srv.URL+path+"?topic=t&player=0&objects=0", `{}`); code != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, code)
		}
	}
}

func TestBatchProbesParity(t *testing.T) {
	// A batched post+lookup round trip must land on the board exactly
	// like the equivalent singles.
	board, c, done := newPair(t, 4, 64)
	defer done()

	objs := []int{3, 17, 40, 63}
	grades := []byte{1, 0, 1, 1}
	c.PostProbes(2, objs, grades)

	if got := board.ProbeCount(); got != int64(len(objs)) {
		t.Fatalf("ProbeCount = %d, want %d", got, len(objs))
	}
	for k, o := range objs {
		if v, ok := board.LookupProbe(2, o); !ok || v != grades[k] {
			t.Fatalf("object %d: board has (%d,%v), want (%d,true)", o, v, ok, grades[k])
		}
	}

	// Batched lookup: known objects mixed with unknown ones.
	look := []int{3, 4, 40, 5}
	gotGrades := make([]byte, len(look))
	gotKnown := make([]bool, len(look))
	c.LookupProbes(2, look, gotGrades, gotKnown)
	wantKnown := []bool{true, false, true, false}
	wantGrades := []byte{1, 0, 1, 0}
	for k := range look {
		if gotKnown[k] != wantKnown[k] || gotGrades[k] != wantGrades[k] {
			t.Fatalf("lookup[%d] = (%d,%v), want (%d,%v)", k, gotGrades[k], gotKnown[k], wantGrades[k], wantKnown[k])
		}
	}
}

func TestBatchEndpointsMatchLegacy(t *testing.T) {
	// The batched client and the legacy client must observe identical
	// board state.
	board, c, done := newPair(t, 4, 32)
	defer done()
	legacy := NewClient(c.BaseURL)
	legacy.DisableBatch = true

	c.PostProbes(1, []int{2, 9}, []byte{1, 0})
	legacy.PostProbes(1, []int{20, 21}, []byte{0, 1})
	if board.ProbeCount() != 4 {
		t.Fatalf("ProbeCount = %d", board.ProbeCount())
	}
	for _, cl := range []*Client{c, legacy} {
		grades := make([]byte, 3)
		known := make([]bool, 3)
		cl.LookupProbes(1, []int{2, 21, 30}, grades, known)
		if !known[0] || grades[0] != 1 || !known[1] || grades[1] != 1 || known[2] {
			t.Fatalf("DisableBatch=%v lookup mismatch: %v %v", cl.DisableBatch, grades, known)
		}
	}

	c.PostValues("t", 0, []uint32{1, 2})
	c.PostValues("t", 1, []uint32{1, 2})
	bv := c.ValueVotes("t")
	lv := legacy.ValueVotes("t")
	if len(bv) != 1 || len(lv) != 1 || bv[0].Count != lv[0].Count {
		t.Fatalf("votes differ: batched %+v legacy %+v", bv, lv)
	}
}

func TestTopicSnapshotCache(t *testing.T) {
	_, c, done := newPair(t, 8, 8)
	defer done()

	c.PostValues("s", 0, []uint32{1, 2})
	c.PostValues("s", 1, []uint32{1, 2})
	v1 := c.ValueVotes("s")
	v2 := c.ValueVotes("s")
	if len(v1) != 1 || v1[0].Count != 2 {
		t.Fatalf("ValueVotes = %+v", v1)
	}
	// Same epoch ⇒ the second call must be served from the cache: the
	// shared immutable slice, not a re-decoded copy.
	if &v1[0] != &v2[0] {
		t.Fatal("unchanged topic was re-decoded instead of served from the snapshot cache")
	}

	// A new posting bumps the epoch and invalidates the cache.
	c.PostValues("s", 2, []uint32{9})
	v3 := c.ValueVotes("s")
	if len(v3) != 2 {
		t.Fatalf("after new post: %+v", v3)
	}

	// Drop + recreate restarts the epoch but changes the generation;
	// the cache must not serve the dropped topic's content.
	c.DropTopic("s")
	c.PostValues("s", 3, []uint32{7})
	v4 := c.ValueVotes("s")
	if len(v4) != 1 || v4[0].Count != 1 || v4[0].Voters[0] != 3 {
		t.Fatalf("after drop+recreate: %+v", v4)
	}

	// Vector votes flow through the same snapshot.
	p, _ := bitvec.PartialFromString("01?")
	c.Post("vec", 0, p)
	c.Post("vec", 1, p)
	w1 := c.Votes("vec")
	w2 := c.Votes("vec")
	if len(w1) != 1 || w1[0].Count != 2 || &w1[0] != &w2[0] {
		t.Fatalf("vector votes not cached: %+v vs %+v", w1, w2)
	}
}

func TestSnapshotCacheStaleGenerationMissesAcrossClients(t *testing.T) {
	// Two clients against one server: client A caches a tally, client B
	// drops the topic and posts fresh content whose epoch matches A's
	// cached epoch. A must observe the new content (generation differs).
	_, a, done := newPair(t, 8, 8)
	defer done()
	bcl := NewClient(a.BaseURL)

	a.PostValues("g", 0, []uint32{1})
	if got := a.ValueVotes("g"); len(got) != 1 || got[0].Voters[0] != 0 {
		t.Fatalf("initial votes: %+v", got)
	}
	bcl.DropTopic("g")
	bcl.PostValues("g", 1, []uint32{2}) // recreated topic, epoch 1 again
	got := a.ValueVotes("g")
	if len(got) != 1 || got[0].Voters[0] != 1 || got[0].Vals[0] != 2 {
		t.Fatalf("stale generation served from cache: %+v", got)
	}
}

func TestDedupeDo(t *testing.T) {
	d := newDedupe(2)
	applied := 0
	d.Do("a", func() { applied++ })
	d.Do("a", func() { applied++ })
	if applied != 1 {
		t.Fatalf("id applied %d times", applied)
	}
	// Empty ids are never deduplicated.
	d.Do("", func() { applied++ })
	d.Do("", func() { applied++ })
	if applied != 3 {
		t.Fatalf("empty ids: %d", applied)
	}
	// Eviction: capacity 2, so after b and c, a is forgotten.
	d.Do("b", func() {})
	d.Do("c", func() {})
	if !d.Do("a", func() { applied++ }) || applied != 4 {
		t.Fatal("evicted id was still deduplicated")
	}
}

func TestDedupeConcurrentDuplicates(t *testing.T) {
	// Racing duplicates of one id: exactly one applies, the others wait
	// for it rather than racing the mutation.
	d := newDedupe(64)
	var applied atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d.Do(fmt.Sprintf("id%d", i), func() {
					applied.Add(1)
					time.Sleep(time.Microsecond)
				})
			}
		}()
	}
	wg.Wait()
	if applied.Load() != 50 {
		t.Fatalf("applied %d mutations for 50 ids", applied.Load())
	}
}

// commitThenKill applies the first `kills` POSTs on the real board but
// severs the connection before any response bytes are written — the
// "server committed, response lost" failure that makes naive retries
// double-apply.
type commitThenKill struct {
	inner http.Handler
	kills atomic.Int32
}

func (h *commitThenKill) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && h.kills.Add(-1) >= 0 {
		rec := httptest.NewRecorder()
		h.inner.ServeHTTP(rec, r) // the server really commits
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	h.inner.ServeHTTP(w, r)
}

func TestRetryAfterCommitDoesNotDoubleApply(t *testing.T) {
	// Regression for the double-apply bug: the server applies a vector
	// post, the response is lost, the client retries. With request-id
	// dedupe the retry is acknowledged without re-applying.
	board := billboard.New(4, 8)
	h := &commitThenKill{inner: NewServer(board)}
	h.kills.Store(1)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = 4
	c.RetryBackoff = time.Millisecond
	p, _ := bitvec.PartialFromString("0101")
	c.Post("t", 1, p)

	if got := board.VectorPostCount(); got != 1 {
		t.Fatalf("VectorPostCount = %d, want 1 (retry double-applied the post)", got)
	}
	if got := board.Postings("t"); len(got) != 1 {
		t.Fatalf("%d postings, want 1", len(got))
	}

	// Control: with the dedupe window disabled the same schedule
	// double-applies — the window is what fixes the bug.
	board2 := billboard.New(4, 8)
	h2 := &commitThenKill{inner: NewServer(board2, WithDedupeWindow(0))}
	h2.kills.Store(1)
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	c2 := NewClient(srv2.URL)
	c2.Retries = 4
	c2.RetryBackoff = time.Millisecond
	c2.Post("t", 1, p)
	if got := board2.VectorPostCount(); got != 2 {
		t.Fatalf("control without dedupe: VectorPostCount = %d, want 2", got)
	}
}

func TestIdempotentBatchProbeRetry(t *testing.T) {
	// Same schedule for the batched probe endpoint; probe posts are
	// first-write-wins anyway, but the counter must not inflate either.
	board := billboard.New(4, 16)
	h := &commitThenKill{inner: NewServer(board)}
	h.kills.Store(1)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 4
	c.RetryBackoff = time.Millisecond
	c.PostProbes(0, []int{1, 2, 3}, []byte{1, 0, 1})
	if got := board.ProbeCount(); got != 3 {
		t.Fatalf("ProbeCount = %d, want 3", got)
	}
}

func TestClientDegradedModeIsDetectable(t *testing.T) {
	// With a non-panicking OnError a dead transport yields zero values;
	// Err/Failures must expose that so the zeros cannot masquerade as
	// an empty board.
	c := NewClient("http://127.0.0.1:1") // nothing listening
	var seen []error
	c.OnError = func(err error) { seen = append(seen, err) }

	if c.Err() != nil {
		t.Fatal("fresh client already degraded")
	}
	if got := c.Postings("t"); len(got) != 0 {
		t.Fatalf("degraded Postings = %v", got)
	}
	if c.Err() == nil || c.Failures() != 1 {
		t.Fatalf("degraded call not recorded: err=%v failures=%d", c.Err(), c.Failures())
	}
	if v, ok := c.LookupProbe(0, 0); v != 0 || ok {
		t.Fatalf("degraded LookupProbe = (%d,%v)", v, ok)
	}
	if got := c.Votes("t"); got != nil {
		t.Fatalf("degraded Votes = %v", got)
	}
	grades := []byte{9}
	known := []bool{true}
	c.LookupProbes(0, []int{0}, grades, known)
	if known[0] {
		t.Fatal("degraded LookupProbes left known=true")
	}
	if c.Failures() != int64(len(seen)) || c.Failures() != 4 {
		t.Fatalf("failures=%d, OnError calls=%d", c.Failures(), len(seen))
	}
	first := c.Err()
	c.ProbeCount()
	if c.Err() != first {
		t.Fatal("Err did not stick to the first failure")
	}
}

// status500 always fails with an injectable status.
type statusHandler struct{ code int }

func (h statusHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", h.code)
}

func TestRetryAttemptCountAndLinearBackoff(t *testing.T) {
	srv := httptest.NewServer(statusHandler{code: http.StatusInternalServerError})
	defer srv.Close()

	meter := faultnet.New(nil, 1)
	c := NewClient(srv.URL)
	c.HTTPClient = &http.Client{Transport: meter}
	c.Retries = 3
	c.RetryBackoff = 10 * time.Millisecond
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	var errs int
	c.OnError = func(error) { errs++ }

	c.PostProbe(0, 0, 1)
	if got := meter.Delivered(); got != 4 {
		t.Fatalf("delivered %d attempts, want 1 + 3 retries", got)
	}
	if errs != 1 {
		t.Fatalf("OnError fired %d times", errs)
	}
	// Attempt i waits i·RetryBackoff scaled by a jitter factor in
	// [0.5, 1.5), so the linear ramp shows through the randomness.
	if len(slept) != 3 {
		t.Fatalf("backoff slept %v, want 3 waits", slept)
	}
	for i, d := range slept {
		base := time.Duration(i+1) * c.RetryBackoff
		lo, hi := base/2, base+base/2
		if d < lo || d >= hi {
			t.Fatalf("backoff attempt %d slept %v, want [%v, %v) (linear in the attempt number, ±50%% jitter)", i+1, d, lo, hi)
		}
	}
}

func TestNoRetryOn4xxCountsOneAttempt(t *testing.T) {
	srv := httptest.NewServer(statusHandler{code: http.StatusBadRequest})
	defer srv.Close()
	meter := faultnet.New(nil, 1)
	c := NewClient(srv.URL)
	c.HTTPClient = &http.Client{Transport: meter}
	c.Retries = 5
	var slept int
	c.sleep = func(time.Duration) { slept++ }
	var errs int
	c.OnError = func(error) { errs++ }

	c.PostProbe(0, 0, 1)
	c.LookupProbe(0, 0)
	if got := meter.Delivered(); got != 2 {
		t.Fatalf("delivered %d attempts for two 4xx calls, want 2", got)
	}
	if slept != 0 {
		t.Fatalf("4xx slept %d times", slept)
	}
	if errs != 2 {
		t.Fatalf("OnError fired %d times", errs)
	}
}

func TestRetriesKeepOneRequestID(t *testing.T) {
	// All attempts of one logical post must carry the same idempotency
	// key, and distinct posts must carry distinct keys.
	var mu sync.Mutex
	ids := map[string]int{}
	board := billboard.New(4, 8)
	inner := NewServer(board)
	var failFirst atomic.Int32
	failFirst.Store(1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(HeaderRequestID)
		if id == "" {
			t.Error("mutating request without request id")
		}
		mu.Lock()
		ids[id]++
		mu.Unlock()
		if failFirst.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	c.PostProbe(0, 0, 1)
	c.PostProbe(0, 1, 1)

	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 2 {
		t.Fatalf("saw %d distinct request ids, want 2 (one per logical post)", len(ids))
	}
	var counts []int
	for _, n := range ids {
		counts = append(counts, n)
	}
	if counts[0]+counts[1] != 3 {
		t.Fatalf("attempt counts %v, want 3 total (one retried once)", counts)
	}
}
