package netboard

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func newPair(t *testing.T, n, m int) (*billboard.Board, *Client, func()) {
	t.Helper()
	board := billboard.New(n, m)
	srv := httptest.NewServer(NewServer(board))
	client := NewClient(srv.URL)
	return board, client, srv.Close
}

func TestProbeRoundTrip(t *testing.T) {
	_, c, done := newPair(t, 4, 16)
	defer done()
	if _, ok := c.LookupProbe(1, 5); ok {
		t.Fatal("empty board lookup succeeded")
	}
	c.PostProbe(1, 5, 1)
	v, ok := c.LookupProbe(1, 5)
	if !ok || v != 1 {
		t.Fatalf("lookup = %v,%v", v, ok)
	}
	if c.ProbeCount() != 1 {
		t.Fatalf("ProbeCount = %d", c.ProbeCount())
	}
	m := c.ProbedObjects(1)
	if len(m) != 1 || m[5] != 1 {
		t.Fatalf("ProbedObjects = %v", m)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	_, c, done := newPair(t, 4, 8)
	defer done()
	p, _ := bitvec.PartialFromString("01?1")
	c.Post("topic", 2, p)
	got := c.Postings("topic")
	if len(got) != 1 || got[0].Player != 2 || !got[0].Vec.Equal(p) {
		t.Fatalf("Postings = %+v", got)
	}
	q, _ := bitvec.PartialFromString("0101")
	c.Post("topic", 3, q)
	c.Post("topic", 1, q)
	votes := c.Votes("topic")
	if len(votes) != 2 || votes[0].Count != 2 {
		t.Fatalf("Votes = %+v", votes)
	}
	pop := c.PopularVectors("topic", 2)
	if len(pop) != 1 || !pop[0].Equal(q) {
		t.Fatalf("PopularVectors = %+v", pop)
	}
}

func TestValueRoundTrip(t *testing.T) {
	_, c, done := newPair(t, 4, 8)
	defer done()
	c.PostValues("v", 0, []uint32{1, 2, 3})
	c.PostValues("v", 1, []uint32{1, 2, 3})
	c.PostValues("v", 2, []uint32{9})
	postings := c.ValuePostings("v")
	if len(postings) != 3 {
		t.Fatalf("%d value postings", len(postings))
	}
	votes := c.ValueVotes("v")
	if len(votes) != 2 || votes[0].Count != 2 || votes[0].Vals[2] != 3 {
		t.Fatalf("ValueVotes = %+v", votes)
	}
}

func TestDropTopicAndStats(t *testing.T) {
	_, c, done := newPair(t, 2, 4)
	defer done()
	c.PostVector("a", 0, bitvec.New(4))
	c.PostValues("b", 1, []uint32{1})
	if c.TopicCount() != 2 {
		t.Fatalf("TopicCount = %d", c.TopicCount())
	}
	if c.VectorPostCount() != 2 {
		t.Fatalf("VectorPostCount = %d", c.VectorPostCount())
	}
	c.DropTopic("a")
	if c.TopicCount() != 1 {
		t.Fatal("DropTopic failed")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, c, done := newPair(t, 4, 8)
	defer done()
	var errs []string
	c.OnError = func(err error) { errs = append(errs, err.Error()) }
	c.PostProbe(99, 0, 1) // player out of range
	c.PostProbe(0, 99, 1) // object out of range
	c.PostProbe(0, 0, 7)  // bad grade
	if len(errs) != 3 {
		t.Fatalf("expected 3 rejections, got %v", errs)
	}
	for _, e := range errs {
		if !strings.Contains(e, "400") {
			t.Fatalf("expected 400 error, got %q", e)
		}
	}
}

func TestClientPanicsByDefault(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listening
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unreachable server")
		}
	}()
	c.ProbeCount()
}

func TestConcurrentClients(t *testing.T) {
	board, c, done := newPair(t, 32, 64)
	defer done()
	var wg sync.WaitGroup
	for p := 0; p < 32; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < 16; o++ {
				c.PostProbe(p, o, byte(o&1))
			}
			c.PostValues("t", p, []uint32{uint32(p % 3)})
		}(p)
	}
	wg.Wait()
	if board.ProbeCount() != 32*16 {
		t.Fatalf("ProbeCount = %d", board.ProbeCount())
	}
	if len(c.ValueVotes("t")) != 3 {
		t.Fatal("value votes wrong")
	}
}

// TestZeroRadiusOverHTTP is the end-to-end check: the full distributed
// algorithm runs against the remote billboard and produces exactly the
// same outputs as against the in-memory board (the simulation is
// deterministic given the seed, and the board is just shared state).
func TestZeroRadiusOverHTTP(t *testing.T) {
	in := prefs.Identical(64, 64, 0.5, 7)

	run := func(b boardclient.Interface) [][]uint32 {
		e := probe.NewEngine(in, b, rng.NewSource(8))
		env := core.NewEnv(e, sim.NewRunner(4), rng.NewSource(9), core.DefaultConfig())
		players := ints.Iota(in.N)
		objs := ints.Iota(in.M)
		return core.ZeroRadiusBits(env, players, objs, 0.5)
	}

	local := run(billboard.New(in.N, in.M))

	board := billboard.New(in.N, in.M)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	remote := run(NewClient(srv.URL))

	for p := 0; p < in.N; p++ {
		for j := 0; j < in.M; j++ {
			if local[p][j] != remote[p][j] {
				t.Fatalf("remote run diverged at player %d object %d", p, j)
			}
		}
	}
	// and the community actually recovered its vector
	c := in.Communities[0]
	for _, p := range c.Members {
		for j := 0; j < in.M; j++ {
			if byte(remote[p][j]) != c.Center.Get(j) {
				t.Fatalf("HTTP run wrong at member %d object %d", p, j)
			}
		}
	}
}

func BenchmarkHTTPProbeRoundTrip(b *testing.B) {
	board := billboard.New(4, 1024)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	c := NewClient(srv.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PostProbe(0, i&1023, 1)
	}
}

func BenchmarkHTTPValueVotes(b *testing.B) {
	board := billboard.New(64, 64)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	c := NewClient(srv.URL)
	for p := 0; p < 64; p++ {
		c.PostValues("t", p, []uint32{uint32(p % 4), 1, 2})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ValueVotes("t")
	}
}

// flakyHandler fails the first `fails` requests with 500, then proxies.
type flakyHandler struct {
	inner http.Handler
	mu    sync.Mutex
	fails int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	shouldFail := f.fails > 0
	if shouldFail {
		f.fails--
	}
	f.mu.Unlock()
	if shouldFail {
		http.Error(w, "transient", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestClientRetriesTransientFailures(t *testing.T) {
	board := billboard.New(4, 8)
	fh := &flakyHandler{inner: NewServer(board), fails: 2}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	c.PostProbe(1, 2, 1) // would panic without retries
	if v, ok := c.LookupProbe(1, 2); !ok || v != 1 {
		t.Fatalf("lookup after retries: %v %v", v, ok)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 5
	c.RetryBackoff = time.Millisecond
	calls := 0
	c.OnError = func(error) { calls++ }
	start := time.Now()
	c.PostProbe(99, 0, 1) // 400: must fail once, quickly
	if calls != 1 {
		t.Fatalf("OnError fired %d times", calls)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("4xx was retried with backoff")
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	board := billboard.New(4, 8)
	fh := &flakyHandler{inner: NewServer(board), fails: 100}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 2
	c.RetryBackoff = time.Millisecond
	var got error
	c.OnError = func(err error) { got = err }
	c.PostProbe(0, 0, 1)
	if got == nil || !strings.Contains(got.Error(), "500") {
		t.Fatalf("error after exhausted retries: %v", got)
	}
}

func TestClientForEachProbe(t *testing.T) {
	board, c, done := newPair(t, 4, 128)
	defer done()
	for o := 1; o < 128; o += 3 {
		board.PostProbe(2, o, byte(o&1))
	}
	var got []int
	last := -1
	c.ForEachProbe(2, func(o int, g byte) {
		if o <= last {
			t.Fatalf("object %d after %d: not ascending", o, last)
		}
		last = o
		if g != byte(o&1) {
			t.Fatalf("object %d: grade %d", o, g)
		}
		got = append(got, o)
	})
	if want := len(board.ProbedObjects(2)); len(got) != want {
		t.Fatalf("iterated %d objects, want %d", len(got), want)
	}
	// An empty shard iterates nothing.
	c.ForEachProbe(3, func(o int, g byte) { t.Fatalf("unexpected probe %d", o) })
}
