package netboard

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
)

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Shards are the base URLs of the shard servers, e.g.
	// ["http://localhost:7070", "http://localhost:7071"]. At least one,
	// all distinct. Shard order defines shard indices (telemetry keys,
	// deterministic merge order); every process addressing the same
	// cluster must list the shards in the same order.
	Shards []string
	// VirtualNodes is the consistent-hash ring's per-shard virtual-node
	// count (<=0 means DefaultVirtualNodes).
	VirtualNodes int
	// Client configures the per-shard clients. TelemetryPrefix is used
	// as the *base*: shard i's instruments are keyed under
	// "<base>.shard<i>" (base defaults to "netboard.cluster"), so all
	// request/latency/retry counters come out keyed by shard. A nonzero
	// JitterSeed is decorrelated per shard, keeping runs reproducible
	// without synchronizing the shards' backoff schedules.
	Client Config
}

// Cluster implements boardclient.Interface over N shard servers,
// routing every key to its owner on a consistent-hash ring: topics by
// topic name, probe results by object. The same algorithm code that
// runs against an in-memory Board or a single Client runs against a
// Cluster unchanged.
//
// Batch operations are split by owning shard, the per-shard
// sub-batches dispatched concurrently over the batched wire protocol
// (each with the Client's idempotent request-id retries), and the
// results merged in deterministic order — LookupProbes answers land at
// their original indices, ForEachProbe k-way-merges the per-shard
// ascending streams — so a Cluster run is byte-identical to a
// single-board run of the same seeds.
//
// Failure semantics are the Client's, per shard: a terminal failure on
// any shard panics with its *TransportError unless Config.OnError is
// installed, in which case that shard's client goes degraded and
// Err/Failures aggregate across shards. A concurrent scatter that
// panics on several shards at once re-panics the lowest-indexed
// shard's value, deterministically.
//
// AddShard/RemoveShard reshard a quiescent cluster in place; see their
// docs for the (static-topology) contract.
type Cluster struct {
	cfg ClusterConfig

	// topoMu guards the (ring, clients) pair, swapped atomically by a
	// reshard. Board operations take the read lock only long enough to
	// snapshot the pair.
	topoMu  sync.RWMutex
	ring    *Ring
	clients []*Client
}

var _ boardclient.Interface = (*Cluster)(nil)
var _ boardclient.ContextBinder = (*Cluster)(nil)

// NewCluster builds a Cluster from cfg (see ClusterConfig for the
// validated defaults). The shard servers are not contacted.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("netboard: cluster needs at least one shard")
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, u := range cfg.Shards {
		if u == "" {
			return nil, fmt.Errorf("netboard: empty shard URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("netboard: duplicate shard URL %q", u)
		}
		seen[u] = true
	}
	cl := &Cluster{cfg: cfg}
	if cl.cfg.Client.HTTPClient == nil {
		// Resolve the pooled client ONCE and share it across shards (and
		// any shards added later): per-host pool limits apply per shard
		// server either way, but a shared transport keeps the process at
		// one coherent connection pool instead of len(Shards) of them.
		cl.cfg.Client.HTTPClient = cl.cfg.Client.PooledHTTPClient()
	}
	cl.ring = newRing(cfg.Shards, cfg.VirtualNodes)
	cl.clients = make([]*Client, len(cfg.Shards))
	for i, u := range cfg.Shards {
		cl.clients[i] = cl.shardClient(u, i)
	}
	return cl, nil
}

// shardClient builds shard i's client: the shared Config with the
// telemetry prefix specialized to the shard and the jitter seed
// decorrelated from the other shards'.
func (cl *Cluster) shardClient(baseURL string, i int) *Client {
	shardCfg := cl.cfg.Client
	base := shardCfg.TelemetryPrefix
	if base == "" {
		base = "netboard.cluster"
	}
	shardCfg.TelemetryPrefix = base + ".shard" + strconv.Itoa(i)
	if shardCfg.JitterSeed != 0 {
		// Same fixed seed on every shard would sync their backoff
		// schedules — exactly the stampede jitter exists to break.
		shardCfg.JitterSeed = decorrelate(shardCfg.JitterSeed, uint64(i))
	}
	return NewClientWithConfig(baseURL, shardCfg)
}

// decorrelate derives a distinct nonzero per-shard seed that also
// differs from the base seed itself. A bare golden-ratio shift is
// affine: shard i of seed s equals shard i+k of seed s−k·φ, so nearby
// seeds run their shard fleets on shifted copies of the same backoff
// schedule, and wraparound can hand a shard the base seed back — which
// a standalone client with the same configured seed is already using.
// Running the shifted value through the splitmix64 finalizer makes
// every (seed, shard) pair land pseudo-independently; the guards keep
// the result nonzero (zero means "seed randomly" downstream) and never
// the base seed (the standalone client's stream).
func decorrelate(seed, i uint64) uint64 {
	s := seed + (i+1)*0x9e3779b97f4a7c15 // golden-ratio stream separation
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	if s == 0 || s == seed {
		s = seed ^ 0x74656c6c6d65 // "tellme"
		if s == 0 {
			s = 1
		}
	}
	return s
}

// topo snapshots the current (ring, clients) pair.
func (cl *Cluster) topo() (*Ring, []*Client) {
	cl.topoMu.RLock()
	defer cl.topoMu.RUnlock()
	return cl.ring, cl.clients
}

// Shards returns the current shard base URLs, in shard-index order.
func (cl *Cluster) Shards() []string {
	ring, _ := cl.topo()
	return append([]string(nil), ring.names...)
}

// objKey is the ring key of object o. Probes route by object (not by
// player): one object's column lives whole on one shard, and a
// player's probe batch splits across shards.
func objKey(o int) string { return "o/" + strconv.Itoa(o) }

// topicClient resolves the shard owning topic name.
func (cl *Cluster) topicClient(name string) *Client {
	ring, clients := cl.topo()
	return clients[ring.Owner(name)]
}

// scatter runs fn(k) for k in 0..n-1 concurrently and waits for all of
// them. Panics (a shard client's default failure mode) are captured
// per goroutine and the lowest-k panic is re-thrown on the caller, so
// concurrent shard failures surface deterministically and the
// WaitGroup barrier is never abandoned.
func scatter(n int, fn func(k int)) {
	if n == 1 {
		fn(0)
		return
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() { panics[k] = recover() }()
			fn(k)
		}(k)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// ── Probe operations (routed by object) ──────────────────────────────

// PostProbe implements billboard.Interface.
func (cl *Cluster) PostProbe(p, o int, val byte) { cl.postProbe(bg, p, o, val) }

func (cl *Cluster) postProbe(ctx context.Context, p, o int, val byte) {
	ring, clients := cl.topo()
	clients[ring.Owner(objKey(o))].postProbe(ctx, p, o, val)
}

// LookupProbe implements billboard.Interface.
func (cl *Cluster) LookupProbe(p, o int) (byte, bool) { return cl.lookupProbe(bg, p, o) }

func (cl *Cluster) lookupProbe(ctx context.Context, p, o int) (byte, bool) {
	ring, clients := cl.topo()
	return clients[ring.Owner(objKey(o))].lookupProbe(ctx, p, o)
}

// shardSplit partitions a batch's positions by owning shard:
// byShard[s] lists the batch indices owned by shard s, in batch order.
// Only shards with at least one index appear.
func shardSplit(ring *Ring, objs []int) map[int][]int {
	byShard := make(map[int][]int)
	for k, o := range objs {
		s := ring.Owner(objKey(o))
		byShard[s] = append(byShard[s], k)
	}
	return byShard
}

// shardList returns the shard indices of byShard in ascending order —
// the deterministic dispatch/merge order of a split batch.
func shardList[T any](byShard map[int]T) []int {
	out := make([]int, 0, len(byShard))
	for s := range byShard {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// PostProbes implements billboard.Interface: the batch is split by
// owning shard and the per-shard sub-batches are posted concurrently,
// each as one idempotent request.
func (cl *Cluster) PostProbes(p int, objs []int, grades []byte) { cl.postProbes(bg, p, objs, grades) }

func (cl *Cluster) postProbes(ctx context.Context, p int, objs []int, grades []byte) {
	if len(objs) == 0 {
		return
	}
	ring, clients := cl.topo()
	byShard := shardSplit(ring, objs)
	shards := shardList(byShard)
	scatter(len(shards), func(k int) {
		idx := byShard[shards[k]]
		subObjs := make([]int, len(idx))
		subGrades := make([]byte, len(idx))
		for j, i := range idx {
			subObjs[j] = objs[i]
			subGrades[j] = grades[i]
		}
		clients[shards[k]].postProbes(ctx, p, subObjs, subGrades)
	})
}

// LookupProbes implements billboard.Interface: split by shard, looked
// up concurrently, and each answer written back at its original batch
// index — the merged result is independent of shard completion order.
func (cl *Cluster) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	cl.lookupProbes(bg, p, objs, grades, known)
}

func (cl *Cluster) lookupProbes(ctx context.Context, p int, objs []int, grades []byte, known []bool) {
	if len(objs) == 0 {
		return
	}
	ring, clients := cl.topo()
	byShard := shardSplit(ring, objs)
	shards := shardList(byShard)
	scatter(len(shards), func(k int) {
		idx := byShard[shards[k]]
		subObjs := make([]int, len(idx))
		for j, i := range idx {
			subObjs[j] = objs[i]
		}
		subGrades := make([]byte, len(idx))
		subKnown := make([]bool, len(idx))
		clients[shards[k]].lookupProbes(ctx, p, subObjs, subGrades, subKnown)
		for j, i := range idx {
			grades[i], known[i] = subGrades[j], subKnown[j]
		}
	})
}

// ProbedObjects implements billboard.Interface. Objects are
// partitioned across shards, so the per-shard maps are disjoint.
func (cl *Cluster) ProbedObjects(p int) map[int]byte { return cl.probedObjects(bg, p) }

func (cl *Cluster) probedObjects(ctx context.Context, p int) map[int]byte {
	out := make(map[int]byte)
	var mu sync.Mutex
	_, clients := cl.topo()
	scatter(len(clients), func(k int) {
		m := clients[k].probedObjects(ctx, p)
		mu.Lock()
		for o, g := range m {
			out[o] = g
		}
		mu.Unlock()
	})
	return out
}

// ForEachProbe implements billboard.Interface: the per-shard ascending
// (object, grade) streams are fetched concurrently and merged into one
// ascending iteration, matching the in-memory board's order exactly.
func (cl *Cluster) ForEachProbe(p int, fn func(o int, grade byte)) { cl.forEachProbe(bg, p, fn) }

func (cl *Cluster) forEachProbe(ctx context.Context, p int, fn func(o int, grade byte)) {
	_, clients := cl.topo()
	perShard := make([][]objGrade, len(clients))
	scatter(len(clients), func(k int) {
		perShard[k] = clients[k].probedPairs(ctx, p)
	})
	var all []objGrade
	for _, pairs := range perShard {
		all = append(all, pairs...)
	}
	// Shards partition objects, so objects are distinct and the sort is
	// a pure k-way merge of the per-shard ascending runs.
	sort.Slice(all, func(a, b int) bool { return all[a].Object < all[b].Object })
	for _, og := range all {
		fn(og.Object, og.Grade)
	}
}

// ProbeCount implements billboard.Interface: the sum over shards.
func (cl *Cluster) ProbeCount() int64 { return cl.sumStats(bg, func(s statsReply) int64 { return s.ProbeCount }) }

// ClearProbes removes player p's probe results for objs, each object
// routed to its owner shard (mirrors billboard.Board.ClearProbes and
// Client.ClearProbes, including the quiescence requirement). The
// serving daemon uses it to release a departed player's probe storage
// at an epoch boundary. Not part of boardclient.Interface.
func (cl *Cluster) ClearProbes(p int, objs []int) {
	if len(objs) == 0 {
		return
	}
	ring, clients := cl.topo()
	byShard := shardSplit(ring, objs)
	shards := shardList(byShard)
	scatter(len(shards), func(k int) {
		idx := byShard[shards[k]]
		sub := make([]int, len(idx))
		for j, i := range idx {
			sub[j] = objs[i]
		}
		clients[shards[k]].clearProbes(bg, p, sub)
	})
}

// ── Topic operations (routed by topic name) ──────────────────────────

// Post implements billboard.Interface.
func (cl *Cluster) Post(name string, player int, v bitvec.Partial) {
	cl.postTopic(bg, name, player, v)
}

func (cl *Cluster) postTopic(ctx context.Context, name string, player int, v bitvec.Partial) {
	cl.topicClient(name).postTopic(ctx, name, player, v)
}

// PostVector implements billboard.Interface.
func (cl *Cluster) PostVector(name string, player int, v bitvec.Vector) {
	cl.postTopic(bg, name, player, bitvec.PartialOf(v))
}

// Postings implements billboard.Interface.
func (cl *Cluster) Postings(name string) []billboard.Posting { return cl.postings(bg, name) }

func (cl *Cluster) postings(ctx context.Context, name string) []billboard.Posting {
	return cl.topicClient(name).postings(ctx, name)
}

// Votes implements billboard.Interface.
func (cl *Cluster) Votes(name string) []billboard.Vote { return cl.votes(bg, name) }

func (cl *Cluster) votes(ctx context.Context, name string) []billboard.Vote {
	return cl.topicClient(name).votes(ctx, name)
}

// PopularVectors implements billboard.Interface.
func (cl *Cluster) PopularVectors(name string, minVotes int) []bitvec.Partial {
	return cl.popularVectors(bg, name, minVotes)
}

func (cl *Cluster) popularVectors(ctx context.Context, name string, minVotes int) []bitvec.Partial {
	return cl.topicClient(name).popularVectors(ctx, name, minVotes)
}

// PostValues implements billboard.Interface.
func (cl *Cluster) PostValues(name string, player int, vals []uint32) {
	cl.postValues(bg, name, player, vals)
}

func (cl *Cluster) postValues(ctx context.Context, name string, player int, vals []uint32) {
	cl.topicClient(name).postValues(ctx, name, player, vals)
}

// ValuePostings implements billboard.Interface.
func (cl *Cluster) ValuePostings(name string) []billboard.ValuePosting {
	return cl.valuePostings(bg, name)
}

func (cl *Cluster) valuePostings(ctx context.Context, name string) []billboard.ValuePosting {
	return cl.topicClient(name).valuePostings(ctx, name)
}

// ValueVotes implements billboard.Interface.
func (cl *Cluster) ValueVotes(name string) []billboard.ValueVote { return cl.valueVotes(bg, name) }

func (cl *Cluster) valueVotes(ctx context.Context, name string) []billboard.ValueVote {
	return cl.topicClient(name).valueVotes(ctx, name)
}

// DropTopic implements billboard.Interface.
func (cl *Cluster) DropTopic(name string) { cl.dropTopic(bg, name) }

func (cl *Cluster) dropTopic(ctx context.Context, name string) {
	cl.topicClient(name).dropTopic(ctx, name)
}

// TopicSnapshot implements boardclient.Interface.
func (cl *Cluster) TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	return cl.topicSnapshot(bg, name, sinceGen, sinceEpoch)
}

func (cl *Cluster) topicSnapshot(ctx context.Context, name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	return cl.topicClient(name).topicSnapshot(ctx, name, sinceGen, sinceEpoch)
}

// TopicCount implements billboard.Interface: the sum over shards
// (topics are partitioned, so no topic is counted twice).
func (cl *Cluster) TopicCount() int {
	return int(cl.sumStats(bg, func(s statsReply) int64 { return int64(s.TopicCount) }))
}

// VectorPostCount implements billboard.Interface: the sum over shards.
func (cl *Cluster) VectorPostCount() int64 {
	return cl.sumStats(bg, func(s statsReply) int64 { return s.VectorPostCount })
}

// sumStats fetches all shards' stats concurrently and sums field.
func (cl *Cluster) sumStats(ctx context.Context, field func(statsReply) int64) int64 {
	_, clients := cl.topo()
	per := make([]int64, len(clients))
	scatter(len(clients), func(k int) {
		per[k] = field(clients[k].stats(ctx))
	})
	var total int64
	for _, v := range per {
		total += v
	}
	return total
}

// Quiesce drains every shard client's posting pipeline (concurrently)
// and returns once all previously issued posts are acknowledged — the
// cluster-wide analogue of Client.Quiesce, needed before reading
// cluster-wide counters like ProbeCount for exact accounting.
func (cl *Cluster) Quiesce() {
	_, clients := cl.topo()
	scatter(len(clients), func(k int) {
		clients[k].Quiesce()
	})
}

// ── Degraded-mode aggregation ────────────────────────────────────────

// Err implements boardclient.Interface: the first swallowed terminal
// failure across shards, lowest shard index first (nil if none). See
// Client.Err for the degraded-mode contract.
func (cl *Cluster) Err() error {
	_, clients := cl.topo()
	for _, c := range clients {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Failures implements boardclient.Interface: the total number of
// terminally failed calls across shards.
func (cl *Cluster) Failures() int64 {
	_, clients := cl.topo()
	var total int64
	for _, c := range clients {
		total += c.Failures()
	}
	return total
}

// ── Context binding ──────────────────────────────────────────────────

// BindContext implements boardclient.ContextBinder: the returned view
// shares all state with cl but every shard request runs under ctx.
func (cl *Cluster) BindContext(ctx context.Context) boardclient.Interface {
	if ctx == nil || ctx.Done() == nil {
		return cl
	}
	return &boundCluster{cl: cl, ctx: ctx}
}

// boundCluster is the context-bound view of a Cluster, mirroring
// boundClient: it forwards every operation with the bound context.
type boundCluster struct {
	cl  *Cluster
	ctx context.Context
}

var _ boardclient.Interface = (*boundCluster)(nil)
var _ boardclient.ContextBinder = (*boundCluster)(nil)

// BindContext rebinds to a different context, still sharing the cluster.
func (b *boundCluster) BindContext(ctx context.Context) boardclient.Interface {
	return b.cl.BindContext(ctx)
}

func (b *boundCluster) PostProbe(p, o int, val byte) { b.cl.postProbe(b.ctx, p, o, val) }
func (b *boundCluster) PostProbes(p int, objs []int, grades []byte) {
	b.cl.postProbes(b.ctx, p, objs, grades)
}
func (b *boundCluster) LookupProbe(p, o int) (byte, bool) { return b.cl.lookupProbe(b.ctx, p, o) }
func (b *boundCluster) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	b.cl.lookupProbes(b.ctx, p, objs, grades, known)
}
func (b *boundCluster) ProbedObjects(p int) map[int]byte { return b.cl.probedObjects(b.ctx, p) }
func (b *boundCluster) ForEachProbe(p int, fn func(o int, grade byte)) {
	b.cl.forEachProbe(b.ctx, p, fn)
}
func (b *boundCluster) ProbeCount() int64 {
	return b.cl.sumStats(b.ctx, func(s statsReply) int64 { return s.ProbeCount })
}
func (b *boundCluster) Post(name string, player int, v bitvec.Partial) {
	b.cl.postTopic(b.ctx, name, player, v)
}
func (b *boundCluster) PostVector(name string, player int, v bitvec.Vector) {
	b.cl.postTopic(b.ctx, name, player, bitvec.PartialOf(v))
}
func (b *boundCluster) Postings(name string) []billboard.Posting {
	return b.cl.postings(b.ctx, name)
}
func (b *boundCluster) Votes(name string) []billboard.Vote { return b.cl.votes(b.ctx, name) }
func (b *boundCluster) PopularVectors(name string, minVotes int) []bitvec.Partial {
	return b.cl.popularVectors(b.ctx, name, minVotes)
}
func (b *boundCluster) PostValues(name string, player int, vals []uint32) {
	b.cl.postValues(b.ctx, name, player, vals)
}
func (b *boundCluster) ValuePostings(name string) []billboard.ValuePosting {
	return b.cl.valuePostings(b.ctx, name)
}
func (b *boundCluster) ValueVotes(name string) []billboard.ValueVote {
	return b.cl.valueVotes(b.ctx, name)
}
func (b *boundCluster) DropTopic(name string) { b.cl.dropTopic(b.ctx, name) }
func (b *boundCluster) TopicCount() int {
	return int(b.cl.sumStats(b.ctx, func(s statsReply) int64 { return int64(s.TopicCount) }))
}
func (b *boundCluster) VectorPostCount() int64 {
	return b.cl.sumStats(b.ctx, func(s statsReply) int64 { return s.VectorPostCount })
}
func (b *boundCluster) TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	return b.cl.topicSnapshot(b.ctx, name, sinceGen, sinceEpoch)
}
func (b *boundCluster) Err() error      { return b.cl.Err() }
func (b *boundCluster) Failures() int64 { return b.cl.Failures() }

// ── Static-topology resharding ───────────────────────────────────────

// AddShard grows a *quiescent* cluster by one shard server and drains
// every key whose owner changed onto it: for each moved topic, the
// donor's postings (vector and value, in posting order) are replayed
// onto the new owner and the topic is dropped from the donor; for each
// moved probe column, the probe results are re-posted to the new owner
// and cleared from the donor (copy-then-drop, so a failure mid-drain
// leaves data present on the donor, never lost — rerunning the same
// AddShard on a consistent snapshot converges).
//
// The topology is static while AddShard runs: no concurrent board
// traffic through this or any other process (the consistent-hash ring
// is a pure function of the cluster spec, so *other* processes keep
// routing by the old spec until they are restarted with the new one —
// this is the PR's static-topology contract, not a live migration).
// Transport failures abort the drain and are returned as errors (the
// per-shard OnError is not consulted).
func (cl *Cluster) AddShard(ctx context.Context, baseURL string) error {
	cl.topoMu.RLock()
	oldRing, oldClients := cl.ring, cl.clients
	cl.topoMu.RUnlock()
	for _, name := range oldRing.names {
		if name == baseURL {
			return fmt.Errorf("netboard: shard %q already in cluster", baseURL)
		}
	}
	if baseURL == "" {
		return fmt.Errorf("netboard: empty shard URL")
	}
	newNames := append(append([]string(nil), oldRing.names...), baseURL)
	newRing := newRing(newNames, cl.cfg.VirtualNodes)
	newClients := append(append([]*Client(nil), oldClients...), cl.shardClient(baseURL, len(oldClients)))

	// Existing shard indices are unchanged by an append, so a key moved
	// iff its new owner differs from its old one — and then the new
	// owner is the added shard.
	err := captureTransport(func() {
		converge(ctx, oldClients, func() int {
			moved := 0
			for donorIdx, donor := range oldClients {
				moved += cl.drainMoved(ctx, donor, donorIdx, oldRing, newRing, newClients)
			}
			return moved
		})
	})
	if err != nil {
		return fmt.Errorf("netboard: add shard %s: %w", baseURL, err)
	}
	cl.topoMu.Lock()
	cl.ring, cl.clients = newRing, newClients
	cl.topoMu.Unlock()
	return nil
}

// RemoveShard shrinks a *quiescent* cluster by one shard server,
// draining everything it owns onto the shards that own those keys in
// the shrunken ring (same copy-then-drop replay as AddShard, same
// static-topology contract). The last shard cannot be removed.
func (cl *Cluster) RemoveShard(ctx context.Context, baseURL string) error {
	cl.topoMu.RLock()
	oldRing, oldClients := cl.ring, cl.clients
	cl.topoMu.RUnlock()
	donorIdx := -1
	for i, name := range oldRing.names {
		if name == baseURL {
			donorIdx = i
			break
		}
	}
	if donorIdx < 0 {
		return fmt.Errorf("netboard: shard %q not in cluster", baseURL)
	}
	if len(oldClients) == 1 {
		return fmt.Errorf("netboard: cannot remove the last shard")
	}
	newNames := make([]string, 0, len(oldRing.names)-1)
	newClients := make([]*Client, 0, len(oldClients)-1)
	for i, name := range oldRing.names {
		if i == donorIdx {
			continue
		}
		newNames = append(newNames, name)
		newClients = append(newClients, oldClients[i])
	}
	newRing := newRing(newNames, cl.cfg.VirtualNodes)

	// Every key the donor owned moves; keys on other shards stay put
	// (removing a shard's points leaves all other points in place).
	donor := oldClients[donorIdx]
	err := captureTransport(func() {
		converge(ctx, []*Client{donor}, func() int {
			return cl.drainAll(ctx, donor, newRing, newClients)
		})
	})
	if err != nil {
		return fmt.Errorf("netboard: remove shard %s: %w", baseURL, err)
	}
	cl.topoMu.Lock()
	cl.ring, cl.clients = newRing, newClients
	cl.topoMu.Unlock()
	return nil
}

// maxDrainPasses bounds the drain's converge loop. A pass beyond the
// first only happens when a straggler committed on a donor between the
// previous pass's snapshot and its conditional drop; stragglers are
// bounded by the mutations in flight when the drain started, so two
// passes (move everything, verify nothing is left) is the norm.
const maxDrainPasses = 16

// converge closes the copy-then-drop window: before each pass it
// quiesces the donors — a post the network delivered but whose response
// was lost is applied and visible before the pass snapshots anything —
// and it repeats the pass until one moves nothing, so a retry or
// network duplicate that commits on a donor *after* a snapshot (the
// conditional drop refuses to erase it) is picked up by the next pass
// instead of being silently lost.
func converge(ctx context.Context, donors []*Client, pass func() int) {
	for i := 0; ; i++ {
		if i == maxDrainPasses {
			panic(&TransportError{Err: fmt.Errorf("drain did not converge after %d passes: new postings keep arriving on the donor (cluster is not quiescent)", maxDrainPasses)})
		}
		scatter(len(donors), func(k int) { donors[k].quiesce(ctx) })
		if pass() == 0 {
			return
		}
	}
}

// drainMoved moves the donor's keys whose owner changed between
// oldRing and newRing (shard indices aligned) to their new owners,
// returning how many postings and probe results it moved.
func (cl *Cluster) drainMoved(ctx context.Context, donor *Client, donorIdx int, oldRing, newRing *Ring, newClients []*Client) int {
	moved := 0
	for _, topic := range donor.topics(ctx) {
		if oldRing.Owner(topic) != donorIdx {
			// Not this donor's key (possible only if the cluster was fed
			// through a differently-specced client); leave it alone.
			continue
		}
		if dest := newRing.Owner(topic); dest != donorIdx {
			moved += moveTopic(ctx, donor, newClients[dest], topic)
		}
	}
	n := donor.stats(ctx).N
	for p := 0; p < n; p++ {
		moved += cl.moveProbes(ctx, donor, donorIdx, newRing, newClients, p, func(o int) bool {
			return oldRing.Owner(objKey(o)) == donorIdx
		})
	}
	return moved
}

// drainAll moves everything the donor holds to its owner in newRing
// (the donor is not in newRing), returning how much it moved.
func (cl *Cluster) drainAll(ctx context.Context, donor *Client, newRing *Ring, newClients []*Client) int {
	moved := 0
	for _, topic := range donor.topics(ctx) {
		moved += moveTopic(ctx, donor, newClients[newRing.Owner(topic)], topic)
	}
	n := donor.stats(ctx).N
	for p := 0; p < n; p++ {
		moved += cl.moveProbes(ctx, donor, -1, newRing, newClients, p, func(int) bool { return true })
	}
	return moved
}

// moveTopic replays one topic's postings — vector then value, each in
// the donor's posting order, so the destination's tallies come out
// byte-identical — onto dest, then drops the topic from the donor with
// a conditional drop that only erases exactly what was replayed. If a
// straggler commits on the donor between the snapshot and the drop, the
// drop refuses, and the loop replays just the delta (donor postings are
// append-ordered) and tries again. Returns the number of postings
// replayed.
func moveTopic(ctx context.Context, donor, dest *Client, topic string) int {
	replayedVec, replayedVal, moved := 0, 0, 0
	for attempt := 0; ; attempt++ {
		if attempt == maxDrainPasses {
			panic(&TransportError{Err: fmt.Errorf("drain of topic %q did not converge after %d attempts", topic, maxDrainPasses)})
		}
		posts := donor.postings(ctx, topic)
		vals := donor.valuePostings(ctx, topic)
		if len(posts) == 0 && len(vals) == 0 {
			// Dropped (this loop's previous attempt succeeded) or the
			// topic never existed.
			return moved
		}
		if len(posts) < replayedVec || len(vals) < replayedVal {
			// The previous conditional drop succeeded and a straggler
			// recreated the topic: everything now on the donor is new.
			replayedVec, replayedVal = 0, 0
		}
		for _, p := range posts[replayedVec:] {
			dest.postTopic(ctx, topic, p.Player, p.Vec)
		}
		for _, vp := range vals[replayedVal:] {
			dest.postValues(ctx, topic, vp.Player, vp.Vals)
		}
		moved += len(posts) - replayedVec + len(vals) - replayedVal
		replayedVec, replayedVal = len(posts), len(vals)
		// The acknowledgement carries no outcome (a deduplicated retry
		// could not reproduce it); the re-read at the top of the loop
		// verifies the drop took.
		donor.dropTopicIf(ctx, topic, replayedVec, replayedVal)
	}
}

// moveProbes migrates player p's probe results held by donor whose
// object is owned (per owned) by the donor and whose new owner is a
// different shard (donorIdx; -1 means every object moves). Results are
// posted to their new owners first, then cleared from the donor —
// clearing exactly the snapshot that was replayed, so a probe result a
// straggler lands after the snapshot survives on the donor for the next
// converge pass instead of being erased unmoved. Returns the number of
// results moved.
func (cl *Cluster) moveProbes(ctx context.Context, donor *Client, donorIdx int, newRing *Ring, newClients []*Client, p int, owned func(o int) bool) int {
	pairs := donor.probedPairs(ctx, p)
	byDest := make(map[int][]objGrade)
	for _, og := range pairs {
		if !owned(og.Object) {
			continue
		}
		dest := newRing.Owner(objKey(og.Object))
		if dest == donorIdx {
			continue
		}
		byDest[dest] = append(byDest[dest], og)
	}
	var moved []int
	for _, dest := range shardList(byDest) {
		group := byDest[dest]
		objs := make([]int, len(group))
		grades := make([]byte, len(group))
		for j, og := range group {
			objs[j] = og.Object
			grades[j] = og.Grade
		}
		newClients[dest].postProbes(ctx, p, objs, grades)
		moved = append(moved, objs...)
	}
	donor.clearProbes(ctx, p, moved)
	return len(moved)
}

// captureTransport runs fn, converting a shard client's terminal-panic
// failure mode (*TransportError) into a returned error; anything else
// propagates.
func captureTransport(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(*TransportError); ok {
				err = te
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
