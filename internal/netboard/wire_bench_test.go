package netboard

// Codec micro-benchmarks: encode and decode of the two hot message
// shapes (a loaded topic snapshot, a fleet probe batch) under both
// codecs, with ReportAllocs so the pooled-buffer claim is measurable.
// `make bench-wire` runs these through benchdiff into BENCH_WIRE.json.

import (
	"fmt"
	"strings"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/wire"
)

// benchSnapshot is a representative hot-topic snapshot: 32 tallied
// 512-bit candidate vectors with voter lists, plus value votes.
func benchSnapshot() *topicSnapshotReply {
	const width = 512
	votes := make(voteList, 32)
	for i := range votes {
		s := strings.Repeat("1?0", width/3+1)[:width]
		p, err := bitvec.PartialFromString(s)
		if err != nil {
			panic(err)
		}
		voters := make([]int, 8)
		for j := range voters {
			voters[j] = i*8 + j
		}
		votes[i] = voteJSON{Bits: wire.Bits{P: p}, Count: len(voters), Voters: voters}
	}
	valueVotes := make(valueVoteList, 16)
	for i := range valueVotes {
		vals := make([]uint32, 16)
		for j := range vals {
			vals[j] = uint32(i*16 + j)
		}
		valueVotes[i] = valueVoteJSON{Vals: vals, Count: 2, Voters: []int{i, i + 1}}
	}
	return &topicSnapshotReply{Gen: 3, Epoch: 41, Votes: votes, ValueVotes: valueVotes}
}

// benchBatch is one fleet worker's probe round.
func benchBatch() *batchProbesPost {
	objs := make([]int, 64)
	grades := make([]byte, 64)
	for i := range objs {
		objs[i] = i * 3
		grades[i] = "01"[i%2]
	}
	return &batchProbesPost{Player: 12345, Objects: objs, Grades: string(grades)}
}

func benchMessages() []struct {
	name  string
	msg   wire.Message
	fresh func() wire.Message
} {
	return []struct {
		name  string
		msg   wire.Message
		fresh func() wire.Message
	}{
		{"snapshot", benchSnapshot(), func() wire.Message { return &topicSnapshotReply{} }},
		{"batch", benchBatch(), func() wire.Message { return &batchProbesPost{} }},
	}
}

func BenchmarkWireEncode(b *testing.B) {
	for _, m := range benchMessages() {
		for _, c := range []wire.Codec{wire.JSON, wire.Binary} {
			b.Run(fmt.Sprintf("%s/%s", m.name, c.Name()), func(b *testing.B) {
				buf := wire.GetBuffer()
				defer wire.PutBuffer(buf)
				var size int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					data, err := c.Append((*buf)[:0], m.msg)
					if err != nil {
						b.Fatal(err)
					}
					size = len(data)
					*buf = data[:0]
				}
				b.SetBytes(int64(size))
			})
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	for _, m := range benchMessages() {
		for _, c := range []wire.Codec{wire.JSON, wire.Binary} {
			data, err := c.Append(nil, m.msg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", m.name, c.Name()), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					if err := c.Decode(data, m.fresh()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestEncodePooledBufferDoesNotAllocate is the satellite claim as a
// hard test (not just a benchmark number): steady-state binary encodes
// into a pooled buffer allocate nothing.
func TestEncodePooledBufferDoesNotAllocate(t *testing.T) {
	msg := benchBatch()
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	// Warm the buffer to capacity.
	data, err := wire.Binary.Append((*buf)[:0], msg)
	if err != nil {
		t.Fatal(err)
	}
	*buf = data[:0]
	allocs := testing.AllocsPerRun(100, func() {
		out, err := wire.Binary.Append((*buf)[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		*buf = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state pooled binary encode allocates %.1f/op, want 0", allocs)
	}
}
