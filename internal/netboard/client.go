package netboard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
)

// Client implements billboard.Interface against a remote Server.
//
// billboard.Interface is error-free (the model treats the billboard as
// reliable shared memory), so transport failures are routed to OnError,
// which defaults to panicking with a descriptive message. Set OnError to
// intercept failures when the transport is expected to be flaky.
type Client struct {
	// BaseURL is the server's root, e.g. "http://localhost:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// OnError handles transport/protocol failures; default panics.
	OnError func(error)
	// Retries is the number of times a failed request is retried with
	// linear backoff before OnError fires (0 = no retries). 4xx
	// responses are not retried — they are protocol errors, not
	// transient failures.
	Retries int
	// RetryBackoff is the per-attempt backoff unit (default 50ms).
	RetryBackoff time.Duration
}

var _ billboard.Interface = (*Client)(nil)

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) fail(err error) {
	if c.OnError != nil {
		c.OnError(err)
		return
	}
	panic(fmt.Sprintf("netboard: %v", err))
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoff sleeps before retry attempt i (1-based).
func (c *Client) backoff(i int) {
	unit := c.RetryBackoff
	if unit <= 0 {
		unit = 50 * time.Millisecond
	}
	time.Sleep(time.Duration(i) * unit)
}

// post sends a JSON POST and expects 2xx, retrying transient failures.
func (c *Client) post(path string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		c.fail(err)
		return
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		resp, err := c.httpc().Post(c.BaseURL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 == 2 {
			resp.Body.Close()
			return
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		lastErr = fmt.Errorf("POST %s: %s: %s", path, resp.Status, msg)
		if code/100 == 4 {
			break // protocol error; retrying cannot help
		}
	}
	c.fail(lastErr)
}

// get fetches JSON into out, retrying transient failures.
func (c *Client) get(path string, query url.Values, out any) {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		resp, err := c.httpc().Get(u)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("GET %s: %s: %s", path, resp.Status, msg)
			if code/100 == 4 {
				break
			}
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("GET %s: decode: %v", path, err)
			continue
		}
		return
	}
	c.fail(lastErr)
}

// PostProbe implements billboard.Interface.
func (c *Client) PostProbe(p, o int, val byte) {
	c.post(PathProbe, probePost{Player: p, Object: o, Value: val})
}

// LookupProbe implements billboard.Interface.
func (c *Client) LookupProbe(p, o int) (byte, bool) {
	var reply probeReply
	c.get(PathProbe, url.Values{
		"player": {strconv.Itoa(p)},
		"object": {strconv.Itoa(o)},
	}, &reply)
	return reply.Value, reply.OK
}

// ProbedObjects implements billboard.Interface.
func (c *Client) ProbedObjects(p int) map[int]byte {
	var reply probedObjectsReply
	c.get(PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	out := make(map[int]byte, len(reply.Objects))
	for _, og := range reply.Objects {
		out[og.Object] = og.Grade
	}
	return out
}

// ForEachProbe implements billboard.Interface. It fetches the player's
// probe results once and iterates them in the server's order (ascending
// object order for a billboard.Board-backed server).
func (c *Client) ForEachProbe(p int, fn func(o int, grade byte)) {
	var reply probedObjectsReply
	c.get(PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	for _, og := range reply.Objects {
		fn(og.Object, og.Grade)
	}
}

// ProbeCount implements billboard.Interface.
func (c *Client) ProbeCount() int64 { return c.stats().ProbeCount }

// Post implements billboard.Interface.
func (c *Client) Post(name string, player int, v bitvec.Partial) {
	c.post(PathVector, vectorPost{Topic: name, Player: player, Bits: v.String()})
}

// PostVector implements billboard.Interface.
func (c *Client) PostVector(name string, player int, v bitvec.Vector) {
	c.Post(name, player, bitvec.PartialOf(v))
}

// Postings implements billboard.Interface.
func (c *Client) Postings(name string) []billboard.Posting {
	var reply []postingJSON
	c.get(PathPostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.Posting, len(reply))
	for i, p := range reply {
		vec, err := parsePartial(p.Bits)
		if err != nil {
			c.fail(err)
			return nil
		}
		out[i] = billboard.Posting{Player: p.Player, Vec: vec}
	}
	return out
}

// Votes implements billboard.Interface.
func (c *Client) Votes(name string) []billboard.Vote {
	var reply []voteJSON
	c.get(PathVotes, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.Vote, len(reply))
	for i, v := range reply {
		vec, err := parsePartial(v.Bits)
		if err != nil {
			c.fail(err)
			return nil
		}
		out[i] = billboard.Vote{Vec: vec, Count: v.Count, Voters: v.Voters}
	}
	return out
}

// PopularVectors implements billboard.Interface.
func (c *Client) PopularVectors(name string, minVotes int) []bitvec.Partial {
	var out []bitvec.Partial
	for _, v := range c.Votes(name) {
		if v.Count >= minVotes {
			out = append(out, v.Vec)
		}
	}
	return out
}

// PostValues implements billboard.Interface.
func (c *Client) PostValues(name string, player int, vals []uint32) {
	c.post(PathValues, valuesPost{Topic: name, Player: player, Vals: vals})
}

// ValuePostings implements billboard.Interface.
func (c *Client) ValuePostings(name string) []billboard.ValuePosting {
	var reply []valuePostingJSON
	c.get(PathValuePostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.ValuePosting, len(reply))
	for i, p := range reply {
		out[i] = billboard.ValuePosting{Player: p.Player, Vals: p.Vals}
	}
	return out
}

// ValueVotes implements billboard.Interface.
func (c *Client) ValueVotes(name string) []billboard.ValueVote {
	var reply []valueVoteJSON
	c.get(PathValueVotes, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.ValueVote, len(reply))
	for i, v := range reply {
		out[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	return out
}

// DropTopic implements billboard.Interface.
func (c *Client) DropTopic(name string) {
	c.post(PathDropTopic, dropPost{Topic: name})
}

// TopicCount implements billboard.Interface.
func (c *Client) TopicCount() int { return c.stats().TopicCount }

// VectorPostCount implements billboard.Interface.
func (c *Client) VectorPostCount() int64 { return c.stats().VectorPostCount }

func (c *Client) stats() statsReply {
	var reply statsReply
	c.get(PathStats, nil, &reply)
	return reply
}

// parsePartial decodes the wire form of a partial vector.
func parsePartial(bits string) (bitvec.Partial, error) {
	v, err := bitvec.PartialFromString(bits)
	if err != nil {
		return bitvec.Partial{}, fmt.Errorf("netboard: bad vector %q: %v", truncate(bits, 32), err)
	}
	return v, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
