package netboard

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
	"tellme/internal/telemetry"
	"tellme/internal/wire"
)

// Client implements boardclient.Interface against a remote Server.
//
// billboard.Interface is error-free (the model treats the billboard as
// reliable shared memory), so transport failures are routed to OnError,
// which defaults to panicking with a *TransportError.
//
// Every mutating request carries a client-generated idempotency key
// (HeaderRequestID) that is reused verbatim across retries, so a retry
// of a request the server already applied — but whose response was lost
// — is deduplicated server-side instead of double-applied.
//
// Batch operations (PostProbes, LookupProbes) and the vote reads
// (Votes, ValueVotes, PopularVectors) use the batched wire protocol:
// one request per batch, and an epoch-tagged per-topic snapshot cache
// that re-downloads a tally only when the topic actually changed.
// DisableBatch restores the one-request-per-operation legacy protocol
// (useful to measure what batching buys; see cmd/benchdiff's netboard
// suite).
//
// The plain Interface methods run uncancellable (context.Background
// semantics). BindContext returns a view of the client whose every
// request — including retry backoff sleeps — aborts when the bound
// context is cancelled; the probe engine binds the run context this
// way, so a deadline cuts through in-flight HTTP calls instead of
// waiting out the full retry schedule.
type Client struct {
	// BaseURL is the server's root, e.g. "http://localhost:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// OnError handles transport/protocol failures after retries are
	// exhausted; the default panics. If OnError returns instead of
	// panicking, the client enters degraded mode: the failed call
	// returns the zero value of its type (LookupProbe → (0,false),
	// Postings → nil, ProbeCount → 0, ...), the error is recorded, and
	// Err/Failures report it. Degraded zero values are indistinguishable
	// from an empty board at the call site, so any caller installing a
	// non-panicking OnError MUST check Err before trusting results — a
	// dead transport must not masquerade as an empty billboard.
	OnError func(error)
	// Retries is the number of times a failed request is retried with
	// jittered linear backoff before OnError fires (0 = no retries).
	// 4xx responses are not retried — they are protocol errors, not
	// transient failures.
	Retries int
	// RetryBackoff is the per-attempt backoff unit (default 50ms);
	// attempt i waits i·RetryBackoff scaled by a uniform ±50% jitter,
	// so a fleet of clients that failed together does not retry in
	// lockstep and re-stampede a recovering server.
	RetryBackoff time.Duration
	// JitterSeed seeds the backoff jitter stream (0 = a random seed).
	// Distinct clients should use distinct seeds (the default); a fixed
	// seed makes a single client's backoff sequence reproducible.
	JitterSeed uint64
	// DisableBatch switches off request batching and the topic
	// snapshot cache, issuing one legacy request per board operation.
	DisableBatch bool
	// Telemetry, when non-nil, records per-endpoint request counts
	// ("<prefix>.requests.<path>", one per HTTP attempt), request
	// latency histograms ("<prefix>.latency_ns.<path>") and the
	// "<prefix>.retries" counter, where <prefix> is TelemetryPrefix.
	// Nil costs nothing.
	Telemetry *telemetry.Registry
	// TelemetryPrefix keys the telemetry instruments (empty =
	// DefaultTelemetryPrefix). A Cluster sets a per-shard prefix so
	// every instrument comes out keyed by shard.
	TelemetryPrefix string
	// Codec names the request/reply encoding: "json" (also the empty
	// string, the default) or "binary" (internal/wire's length-prefixed
	// packed codec). Binary is advisory, not mandatory: when a server
	// rejects a binary body with a 4xx the request is re-sent as JSON
	// under the same idempotency key, and a successful fallback pins
	// the client to JSON from then on (binaryOff) — so a
	// binary-configured client interoperates with JSON-pinned or
	// pre-codec servers, it is just slower against them.
	Codec string

	// sleep stubs the backoff wait for tests. The stub is only invoked
	// with a live context; a cancelled context skips the wait entirely,
	// which is what the cancellation tests assert.
	sleep func(time.Duration)

	// jitter is the lazily seeded backoff jitter stream (see
	// JitterSeed), guarded by jitterMu: one client may retry from many
	// player goroutines at once.
	jitterMu sync.Mutex
	jitter   *mrand.Rand

	// Request-id state: a random per-client prefix plus a sequence
	// number, unique across processes sharing one server.
	idOnce   sync.Once
	idPrefix string
	idSeq    atomic.Uint64

	// Degraded-mode record: first transport error and failure count.
	errMu    sync.Mutex
	firstErr error
	failures atomic.Int64

	// binaryOff latches when a binary body was rejected with a 4xx and
	// its JSON resend succeeded: the server does not speak our binary
	// codec, so stop offering it (see Codec).
	binaryOff atomic.Bool

	// Connection-accounting instruments (lazily resolved once; nil when
	// telemetry is off). See traceContext.
	connOnce                            sync.Once
	connDialed, connReused, connStalled *telemetry.Counter

	// Per-topic snapshot cache keyed by the server's (gen, epoch) stamp.
	cacheMu sync.Mutex
	cache   map[string]*topicCacheEntry
}

// topicCacheEntry is one topic's decoded tallies at a (gen, epoch) stamp.
type topicCacheEntry struct {
	gen, epoch uint64
	votes      []billboard.Vote
	valVotes   []billboard.ValueVote
}

var _ boardclient.Interface = (*Client)(nil)
var _ boardclient.ContextBinder = (*Client)(nil)

// TransportError is a terminal transport/protocol failure: retries were
// exhausted (or cut short by cancellation) for one logical request. It
// is the value fail panics with when no OnError is installed, and the
// value recorded by Err, so callers can errors.As for it — and
// errors.Is through it to the underlying cause (e.g.
// context.DeadlineExceeded when a deadline cut the retry loop short).
type TransportError struct {
	// Err is the last attempt's failure.
	Err error
}

// Error implements error, keeping the historical "netboard: " prefix.
func (e *TransportError) Error() string { return fmt.Sprintf("netboard: %v", e.Err) }

// Unwrap exposes the underlying failure.
func (e *TransportError) Unwrap() error { return e.Err }

// ProtoError reports a wire-protocol version mismatch: a 2xx response
// arrived without the expected "Tellme-Proto: 1" stamp, meaning the
// peer is not a tellme billboard of this protocol generation (an older
// server, or something else entirely). It is terminal — retries cannot
// change what the peer speaks — and reaches the caller wrapped in the
// *TransportError that fail records/panics with, so
// errors.As(err, &pe) with a *ProtoError target matches.
type ProtoError struct {
	// Path is the endpoint whose response lacked the stamp.
	Path string
	// Got is the Tellme-Proto value received ("" when absent).
	Got string
}

// Error implements error.
func (e *ProtoError) Error() string {
	if e.Got == "" {
		return fmt.Sprintf("netboard: %s: server did not identify protocol %s (missing %s header; not a tellme billboard?)", e.Path, ProtoVersion, HeaderProto)
	}
	return fmt.Sprintf("netboard: %s: protocol version mismatch: server speaks %s=%s, client speaks %s", e.Path, HeaderProto, e.Got, ProtoVersion)
}

// NewClient returns a Client for the server at baseURL with the
// zero-value Config; use NewClientWithConfig to tune retries, failure
// handling, batching and telemetry in one place.
func NewClient(baseURL string) *Client {
	return NewClientWithConfig(baseURL, Config{})
}

// BindContext implements boardclient.ContextBinder: the returned view
// shares all state with c (request ids, snapshot cache, degraded-mode
// record) but runs every request under ctx — in-flight HTTP calls are
// aborted and backoff sleeps return early when ctx is cancelled.
func (c *Client) BindContext(ctx context.Context) boardclient.Interface {
	if ctx == nil || ctx.Done() == nil {
		return c
	}
	return &boundClient{c: c, ctx: ctx}
}

// Err returns the first transport/protocol error the client swallowed
// via a non-panicking OnError (nil if none). Once Err is non-nil the
// client has returned at least one degraded zero value; results
// obtained since then must not be interpreted as board state.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// Failures returns how many calls failed terminally (each one invoked
// OnError and returned a degraded zero value).
func (c *Client) Failures() int64 { return c.failures.Load() }

func (c *Client) fail(err error) {
	terr := &TransportError{Err: err}
	c.failures.Add(1)
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = terr
	}
	c.errMu.Unlock()
	if c.OnError != nil {
		c.OnError(terr)
		return
	}
	panic(terr)
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoff waits before retry attempt i (1-based): i·RetryBackoff scaled
// by a uniform factor in [0.5, 1.5). Deterministic linear backoff
// synchronizes retry stampedes — every client that failed on the same
// server blip would sleep the same schedule and re-arrive together; the
// seeded jitter desynchronizes the herd while keeping the linear growth
// (and the i·RetryBackoff mean) intact. The wait selects on ctx: a
// cancellation cuts it short, and backoff returns the cancellation
// cause so the retry loop stops instead of issuing doomed attempts.
func (c *Client) backoff(ctx context.Context, i int) error {
	unit := c.RetryBackoff
	if unit <= 0 {
		unit = 50 * time.Millisecond
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		seed := c.JitterSeed
		for seed == 0 {
			seed = mrand.Uint64()
		}
		c.jitter = mrand.New(mrand.NewPCG(seed, 0x74656c6c6d65)) // "tellme"
	}
	f := 0.5 + c.jitter.Float64()
	c.jitterMu.Unlock()
	d := time.Duration(float64(i) * float64(unit) * f)
	c.Telemetry.Counter(c.telemetryPrefix() + ".retries").Inc()
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return context.Cause(ctx)
		default:
		}
	}
	if c.sleep != nil {
		c.sleep(d)
		return nil
	}
	if done == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return context.Cause(ctx)
	}
}

// requestID mints a fresh idempotency key: random client prefix plus a
// sequence number. One id is generated per logical mutation and reused
// across its retries.
func (c *Client) requestID() string {
	c.idOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.idPrefix = hex.EncodeToString(b[:])
		} else {
			c.idPrefix = fmt.Sprintf("t%d", time.Now().UnixNano())
		}
	})
	return c.idPrefix + "-" + strconv.FormatUint(c.idSeq.Add(1), 10)
}

// telemetryPrefix resolves the instrument key prefix.
func (c *Client) telemetryPrefix() string {
	if c.TelemetryPrefix != "" {
		return c.TelemetryPrefix
	}
	return DefaultTelemetryPrefix
}

// instruments resolves the per-endpoint request counter and latency
// histogram for one logical call (nil instruments when telemetry is
// off). The registry lookup happens once per call, not per attempt.
func (c *Client) instruments(path string) (reqs *telemetry.Counter, lat *telemetry.Histogram) {
	if c.Telemetry == nil {
		return nil, nil
	}
	prefix := c.telemetryPrefix()
	return c.Telemetry.Counter(prefix + ".requests." + path),
		c.Telemetry.Histogram(prefix+".latency_ns."+path, telemetry.LatencyBuckets())
}

// connStallThreshold separates "the pool handed over a connection" from
// "the request waited for one": a GetConn→GotConn gap above it counts as
// a stall — the pool was saturated (MaxConnsPerHost reached, or every
// idle connection taken) and the request queued or dialed.
const connStallThreshold = time.Millisecond

// traceContext attaches connection accounting to a request context:
// "<prefix>.conns.dialed" counts fresh dials (pool misses),
// "<prefix>.conns.reused" counts pooled handoffs, and
// "<prefix>.conns.stalled" counts requests that waited longer than
// connStallThreshold for a connection — the pool-saturation signal a
// load run watches to size MaxIdleConnsPerHost. No telemetry, no trace.
func (c *Client) traceContext(ctx context.Context) context.Context {
	if c.Telemetry == nil {
		return ctx
	}
	c.connOnce.Do(func() {
		prefix := c.telemetryPrefix()
		c.connDialed = c.Telemetry.Counter(prefix + ".conns.dialed")
		c.connReused = c.Telemetry.Counter(prefix + ".conns.reused")
		c.connStalled = c.Telemetry.Counter(prefix + ".conns.stalled")
	})
	var wait time.Time
	return httptrace.WithClientTrace(ctx, &httptrace.ClientTrace{
		GetConn: func(string) { wait = time.Now() },
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.connReused.Inc()
			} else {
				c.connDialed.Inc()
			}
			if !wait.IsZero() && time.Since(wait) > connStallThreshold {
				c.connStalled.Inc()
			}
		},
	})
}

// bodyCodec resolves the codec for the next request: the configured
// one, unless a failed binary attempt has already pinned the client
// back to JSON (see Codec).
func (c *Client) bodyCodec() wire.Codec {
	if c.Codec == wire.Binary.Name() && !c.binaryOff.Load() {
		return wire.Binary
	}
	return wire.JSON
}

// wireInstruments resolves the per-endpoint wire telemetry — body bytes
// in/out and encode/decode latency (the zero no-op value when telemetry
// is off).
func (c *Client) wireInstruments(path string) wire.Instruments {
	return wire.NewInstruments(c.Telemetry, c.telemetryPrefix(), path)
}

// post sends a POST and expects 2xx, retrying transient failures. The
// body is encoded with the client's codec into a pooled buffer. When a
// server answers a binary body with a 4xx, the same logical request is
// re-encoded as JSON and resent once without consuming a retry — the
// fail-safe that keeps a binary-configured client working against a
// JSON-pinned or pre-codec server (a genuine validation error just
// fails again one request later, harmlessly: same idempotency key).
// A successful fallback pins the client to JSON for good.
//
// All attempts carry the same request id, so a retry of a post the
// server already applied is acknowledged, not re-applied. Cancelling
// ctx aborts the in-flight request and the backoff wait.
func (c *Client) post(ctx context.Context, path string, body wire.Message) {
	codec := c.bodyCodec()
	ins := c.wireInstruments(path)
	bufp := wire.GetBuffer()
	defer wire.PutBuffer(bufp)
	encode := func() ([]byte, error) {
		start := time.Now()
		data, err := codec.Append((*bufp)[:0], body)
		ins.EncodeNs.ObserveSince(start)
		if err == nil {
			*bufp = data[:0] // keep the grown capacity for reuse/return
		}
		return data, err
	}
	buf, err := encode()
	if err != nil {
		c.fail(err)
		return
	}
	id := c.requestID()
	reqs, lat := c.instruments(path)
	fellBack := false
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			if cerr := c.backoff(ctx, attempt); cerr != nil {
				lastErr = fmt.Errorf("POST %s: canceled during retry backoff: %w (last attempt: %v)", path, cerr, lastErr)
				break
			}
		}
		req, err := http.NewRequestWithContext(c.traceContext(ctx), http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
		if err != nil {
			c.fail(err)
			return
		}
		req.Header.Set("Content-Type", codec.ContentType())
		req.Header.Set(HeaderRequestID, id)
		req.Header.Set(HeaderProto, ProtoVersion)
		reqs.Inc()
		ins.BytesOut.Add(int64(len(buf)))
		start := time.Now()
		resp, err := c.httpc().Do(req)
		lat.ObserveSince(start)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 == 2 {
			got := resp.Header.Get(HeaderProto)
			resp.Body.Close()
			if got != ProtoVersion {
				// Wrong or missing protocol stamp: this is not a tellme
				// billboard speaking our protocol version. Terminal — a
				// retry cannot change what the peer speaks.
				lastErr = &ProtoError{Path: path, Got: got}
				break
			}
			if fellBack {
				// The JSON resend of a rejected binary body succeeded:
				// the server does not speak binary, stop offering it.
				c.binaryOff.Store(true)
			}
			return
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		lastErr = fmt.Errorf("POST %s: %s: %s", path, resp.Status, msg)
		if code/100 == 4 {
			if codec == wire.Binary && !fellBack {
				// The server rejected the binary body (415 from a
				// JSON-pinned server, 400 from a pre-codec one): resend
				// as JSON under the same request id, on the house.
				fellBack = true
				codec = wire.JSON
				if buf, err = encode(); err != nil {
					c.fail(err)
					return
				}
				attempt--
				continue
			}
			break // protocol error; retrying cannot help
		}
	}
	c.fail(lastErr)
}

// get fetches a reply into out, retrying transient failures. A
// binary-configured client advertises the binary codec via Accept and
// decodes the reply by its Content-Type; servers that ignore Accept
// (pre-codec) or refuse binary (JSON-pinned) simply answer JSON, which
// always decodes — GETs need no fallback dance. It reports whether it
// succeeded; on false the client has already failed (and, in degraded
// mode, out is untouched). Cancelling ctx aborts the in-flight request
// and the backoff wait.
func (c *Client) get(ctx context.Context, path string, query url.Values, out wire.Message) bool {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	ins := c.wireInstruments(path)
	reqs, lat := c.instruments(path)
	bufp := wire.GetBuffer()
	defer wire.PutBuffer(bufp)
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			if cerr := c.backoff(ctx, attempt); cerr != nil {
				lastErr = fmt.Errorf("GET %s: canceled during retry backoff: %w (last attempt: %v)", path, cerr, lastErr)
				break
			}
		}
		req, err := http.NewRequestWithContext(c.traceContext(ctx), http.MethodGet, u, nil)
		if err != nil {
			c.fail(err)
			return false
		}
		req.Header.Set(HeaderProto, ProtoVersion)
		if c.bodyCodec() == wire.Binary {
			req.Header.Set("Accept", wire.ContentTypeBinary)
		}
		reqs.Inc()
		start := time.Now()
		resp, err := c.httpc().Do(req)
		lat.ObserveSince(start)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("GET %s: %s: %s", path, resp.Status, msg)
			if code/100 == 4 {
				break
			}
			continue
		}
		if got := resp.Header.Get(HeaderProto); got != ProtoVersion {
			// Refuse to decode a response from a peer that does not
			// stamp our protocol version — see ProtoError.
			resp.Body.Close()
			lastErr = &ProtoError{Path: path, Got: got}
			break
		}
		data, err := wire.ReadAll(*bufp, resp.Body)
		resp.Body.Close()
		*bufp = data[:0] // keep the grown capacity for reuse/return
		if err != nil {
			lastErr = fmt.Errorf("GET %s: read: %v", path, err)
			continue
		}
		ins.BytesIn.Add(int64(len(data)))
		codec := wire.JSON
		if wire.ClassifyContentType(resp.Header.Get("Content-Type")) != wire.KindJSON {
			// Any binary-family media type decodes with the binary
			// codec, which itself rejects frame versions it does not
			// speak — a future v2 reply fails loudly, not quietly.
			codec = wire.Binary
		}
		start = time.Now()
		err = codec.Decode(data, out)
		ins.DecodeNs.ObserveSince(start)
		if err != nil {
			lastErr = fmt.Errorf("GET %s: decode: %v", path, err)
			continue
		}
		return true
	}
	c.fail(lastErr)
	return false
}

// bg is the context of the plain Interface methods: uncancellable, the
// pre-context behavior.
var bg = context.Background()

// PostProbe implements billboard.Interface.
func (c *Client) PostProbe(p, o int, val byte) { c.postProbe(bg, p, o, val) }

func (c *Client) postProbe(ctx context.Context, p, o int, val byte) {
	c.post(ctx, PathProbe, &probePost{Player: p, Object: o, Value: val})
}

// PostProbes implements billboard.Interface: the whole batch travels as
// one idempotent request (one per-probe request when DisableBatch).
func (c *Client) PostProbes(p int, objs []int, grades []byte) { c.postProbes(bg, p, objs, grades) }

func (c *Client) postProbes(ctx context.Context, p int, objs []int, grades []byte) {
	if len(objs) == 0 {
		return
	}
	if c.DisableBatch {
		for k, o := range objs {
			c.postProbe(ctx, p, o, grades[k])
		}
		return
	}
	gw := make([]byte, len(objs))
	for k, g := range grades {
		if g != 0 {
			gw[k] = '1'
		} else {
			gw[k] = '0'
		}
	}
	c.post(ctx, PathBatchProbes, &batchProbesPost{Player: p, Objects: objs, Grades: string(gw)})
}

// LookupProbe implements billboard.Interface.
func (c *Client) LookupProbe(p, o int) (byte, bool) { return c.lookupProbe(bg, p, o) }

func (c *Client) lookupProbe(ctx context.Context, p, o int) (byte, bool) {
	var reply probeReply
	c.get(ctx, PathProbe, url.Values{
		"player": {strconv.Itoa(p)},
		"object": {strconv.Itoa(o)},
	}, &reply)
	return reply.Value, reply.OK
}

// LookupProbes implements billboard.Interface: one request for the
// whole batch (one per object when DisableBatch).
func (c *Client) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	c.lookupProbes(bg, p, objs, grades, known)
}

func (c *Client) lookupProbes(ctx context.Context, p int, objs []int, grades []byte, known []bool) {
	if len(objs) == 0 {
		return
	}
	if c.DisableBatch {
		for k, o := range objs {
			grades[k], known[k] = c.lookupProbe(ctx, p, o)
		}
		return
	}
	var sb strings.Builder
	for k, o := range objs {
		if k > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(o))
	}
	var reply batchLookupsReply
	if !c.get(ctx, PathBatchLookups, url.Values{
		"player":  {strconv.Itoa(p)},
		"objects": {sb.String()},
	}, &reply) {
		for k := range objs {
			grades[k], known[k] = 0, false // degraded: nothing known
		}
		return
	}
	if len(reply.Grades) != len(objs) {
		c.fail(fmt.Errorf("batch lookup: %d grades for %d objects", len(reply.Grades), len(objs)))
		return
	}
	for k := range objs {
		switch reply.Grades[k] {
		case '1':
			grades[k], known[k] = 1, true
		case '0':
			grades[k], known[k] = 0, true
		default:
			grades[k], known[k] = 0, false
		}
	}
}

// ProbedObjects implements billboard.Interface.
func (c *Client) ProbedObjects(p int) map[int]byte { return c.probedObjects(bg, p) }

func (c *Client) probedObjects(ctx context.Context, p int) map[int]byte {
	pairs := c.probedPairs(ctx, p)
	out := make(map[int]byte, len(pairs))
	for _, og := range pairs {
		out[og.Object] = og.Grade
	}
	return out
}

// probedPairs fetches p's probe results as ordered (object, grade)
// pairs — the server's order, ascending by object for a Board-backed
// server. The Cluster merges these per-shard lists.
func (c *Client) probedPairs(ctx context.Context, p int) []objGrade {
	var reply probedObjectsReply
	c.get(ctx, PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	return reply.Objects
}

// ForEachProbe implements billboard.Interface. It fetches the player's
// probe results once and iterates them in the server's order (ascending
// object order for a billboard.Board-backed server).
func (c *Client) ForEachProbe(p int, fn func(o int, grade byte)) { c.forEachProbe(bg, p, fn) }

func (c *Client) forEachProbe(ctx context.Context, p int, fn func(o int, grade byte)) {
	var reply probedObjectsReply
	c.get(ctx, PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	for _, og := range reply.Objects {
		fn(og.Object, og.Grade)
	}
}

// ProbeCount implements billboard.Interface.
func (c *Client) ProbeCount() int64 { return c.stats(bg).ProbeCount }

// Post implements billboard.Interface.
func (c *Client) Post(name string, player int, v bitvec.Partial) { c.postTopic(bg, name, player, v) }

func (c *Client) postTopic(ctx context.Context, name string, player int, v bitvec.Partial) {
	c.post(ctx, PathVector, &vectorPost{Topic: name, Player: player, Bits: wire.Bits{P: v}})
}

// PostVector implements billboard.Interface.
func (c *Client) PostVector(name string, player int, v bitvec.Vector) {
	c.postTopic(bg, name, player, bitvec.PartialOf(v))
}

// Postings implements billboard.Interface.
func (c *Client) Postings(name string) []billboard.Posting { return c.postings(bg, name) }

func (c *Client) postings(ctx context.Context, name string) []billboard.Posting {
	var reply postingList
	c.get(ctx, PathPostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.Posting, len(reply))
	for i, p := range reply {
		out[i] = billboard.Posting{Player: p.Player, Vec: p.Bits.P}
	}
	return out
}

// snapshot returns the topic's tallies through the epoch-tagged
// snapshot cache: one GET when the cached (gen, epoch) stamp is stale,
// zero decode work when the server answers "unchanged". The returned
// entry is shared and immutable, matching the billboard.Interface
// contract for Votes/ValueVotes. Returns nil in degraded mode.
func (c *Client) snapshot(ctx context.Context, name string) *topicCacheEntry {
	c.cacheMu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]*topicCacheEntry)
	}
	cached := c.cache[name]
	c.cacheMu.Unlock()

	q := url.Values{"topic": {name}}
	if cached != nil {
		q.Set("gen", strconv.FormatUint(cached.gen, 10))
		q.Set("epoch", strconv.FormatUint(cached.epoch, 10))
	}
	var reply topicSnapshotReply
	if !c.get(ctx, PathTopicSnapshot, q, &reply) {
		return nil // degraded; c.fail already fired
	}
	if reply.Unchanged && cached != nil {
		return cached
	}
	entry := &topicCacheEntry{gen: reply.Gen, epoch: reply.Epoch}
	entry.votes = make([]billboard.Vote, len(reply.Votes))
	for i, v := range reply.Votes {
		entry.votes[i] = billboard.Vote{Vec: v.Bits.P, Count: v.Count, Voters: v.Voters}
	}
	entry.valVotes = make([]billboard.ValueVote, len(reply.ValueVotes))
	for i, v := range reply.ValueVotes {
		entry.valVotes[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	c.cacheMu.Lock()
	// Last writer wins; concurrent fetchers decoded the same stamp or a
	// newer one, and a stale overwrite only costs one extra refetch.
	c.cache[name] = entry
	c.cacheMu.Unlock()
	return entry
}

// Votes implements billboard.Interface. The result is the shared,
// immutable snapshot-cache entry (same contract as the in-memory
// board's epoch-cached tallies).
func (c *Client) Votes(name string) []billboard.Vote { return c.votes(bg, name) }

func (c *Client) votes(ctx context.Context, name string) []billboard.Vote {
	if c.DisableBatch {
		var reply voteList
		c.get(ctx, PathVotes, url.Values{"topic": {name}}, &reply)
		out := make([]billboard.Vote, len(reply))
		for i, v := range reply {
			out[i] = billboard.Vote{Vec: v.Bits.P, Count: v.Count, Voters: v.Voters}
		}
		return out
	}
	entry := c.snapshot(ctx, name)
	if entry == nil {
		return nil
	}
	return entry.votes
}

// PopularVectors implements billboard.Interface.
func (c *Client) PopularVectors(name string, minVotes int) []bitvec.Partial {
	return c.popularVectors(bg, name, minVotes)
}

func (c *Client) popularVectors(ctx context.Context, name string, minVotes int) []bitvec.Partial {
	var out []bitvec.Partial
	for _, v := range c.votes(ctx, name) {
		if v.Count >= minVotes {
			out = append(out, v.Vec)
		}
	}
	return out
}

// PostValues implements billboard.Interface.
func (c *Client) PostValues(name string, player int, vals []uint32) {
	c.postValues(bg, name, player, vals)
}

func (c *Client) postValues(ctx context.Context, name string, player int, vals []uint32) {
	c.post(ctx, PathValues, &valuesPost{Topic: name, Player: player, Vals: vals})
}

// ValuePostings implements billboard.Interface.
func (c *Client) ValuePostings(name string) []billboard.ValuePosting {
	return c.valuePostings(bg, name)
}

func (c *Client) valuePostings(ctx context.Context, name string) []billboard.ValuePosting {
	var reply valuePostingList
	c.get(ctx, PathValuePostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.ValuePosting, len(reply))
	for i, p := range reply {
		out[i] = billboard.ValuePosting{Player: p.Player, Vals: p.Vals}
	}
	return out
}

// ValueVotes implements billboard.Interface. Like Votes, the result is
// the shared immutable snapshot-cache entry.
func (c *Client) ValueVotes(name string) []billboard.ValueVote { return c.valueVotes(bg, name) }

func (c *Client) valueVotes(ctx context.Context, name string) []billboard.ValueVote {
	if c.DisableBatch {
		var reply valueVoteList
		c.get(ctx, PathValueVotes, url.Values{"topic": {name}}, &reply)
		out := make([]billboard.ValueVote, len(reply))
		for i, v := range reply {
			out[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
		}
		return out
	}
	entry := c.snapshot(ctx, name)
	if entry == nil {
		return nil
	}
	return entry.valVotes
}

// DropTopic implements billboard.Interface.
func (c *Client) DropTopic(name string) { c.dropTopic(bg, name) }

func (c *Client) dropTopic(ctx context.Context, name string) {
	c.post(ctx, PathDropTopic, &dropPost{Topic: name})
	c.cacheMu.Lock()
	delete(c.cache, name)
	c.cacheMu.Unlock()
}

// TopicCount implements billboard.Interface.
func (c *Client) TopicCount() int { return c.stats(bg).TopicCount }

// VectorPostCount implements billboard.Interface.
func (c *Client) VectorPostCount() int64 { return c.stats(bg).VectorPostCount }

func (c *Client) stats(ctx context.Context) statsReply {
	var reply statsReply
	c.get(ctx, PathStats, nil, &reply)
	return reply
}

// TopicSnapshot implements boardclient.Interface: the raw epoch-tagged
// tally read behind the batched protocol, bypassing the client's own
// snapshot cache (the caller manages its stamps — this is what a
// Cluster drain replays from, and what a caller layering its own cache
// uses). Votes/ValueVotes go through the cache instead.
func (c *Client) TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	return c.topicSnapshot(bg, name, sinceGen, sinceEpoch)
}

func (c *Client) topicSnapshot(ctx context.Context, name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	q := url.Values{
		"topic": {name},
		"gen":   {strconv.FormatUint(sinceGen, 10)},
		"epoch": {strconv.FormatUint(sinceEpoch, 10)},
	}
	var reply topicSnapshotReply
	if !c.get(ctx, PathTopicSnapshot, q, &reply) {
		return 0, 0, false, nil, nil // degraded; c.fail already fired
	}
	if reply.Unchanged {
		return reply.Gen, reply.Epoch, true, nil, nil
	}
	votes = make([]billboard.Vote, len(reply.Votes))
	for i, v := range reply.Votes {
		votes[i] = billboard.Vote{Vec: v.Bits.P, Count: v.Count, Voters: v.Voters}
	}
	valVotes = make([]billboard.ValueVote, len(reply.ValueVotes))
	for i, v := range reply.ValueVotes {
		valVotes[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	return reply.Gen, reply.Epoch, false, votes, valVotes
}

// Topics returns the names of all live topics on the server, sorted.
// It is the drain-path enumeration (mirrors billboard.Board.Topics) and
// is not part of boardclient.Interface.
func (c *Client) Topics() []string { return c.topics(bg) }

func (c *Client) topics(ctx context.Context) []string {
	var reply topicsReply
	c.get(ctx, PathTopics, nil, &reply)
	return reply.Topics
}

// ClearProbes removes player p's probe results for objs on the server
// (mirrors billboard.Board.ClearProbes; see there for the quiescence
// requirement). It is the second half of the cluster probe-migration
// step and is not part of boardclient.Interface.
func (c *Client) ClearProbes(p int, objs []int) { c.clearProbes(bg, p, objs) }

func (c *Client) clearProbes(ctx context.Context, p int, objs []int) {
	if len(objs) == 0 {
		return
	}
	c.post(ctx, PathClearProbes, &clearProbesPost{Player: p, Objects: objs})
}

// Quiesce blocks until every mutation the server has started applying
// has finished — the drain-path barrier before snapshotting a donor.
// Not part of boardclient.Interface.
func (c *Client) Quiesce() { c.quiesce(bg) }

func (c *Client) quiesce(ctx context.Context) {
	var reply quiesceReply
	c.get(ctx, PathQuiesce, nil, &reply)
}

// dropTopicIf asks the server to drop the topic only if its posting
// counts still match (nVec vector postings, nVal value postings). The
// outcome is not reported — a deduplicated retry could not reproduce it
// — so callers verify by re-reading the topic.
func (c *Client) dropTopicIf(ctx context.Context, name string, nVec, nVal int) {
	c.post(ctx, PathDropTopicIf, &dropIfPost{Topic: name, Vectors: nVec, Values: nVal})
	c.cacheMu.Lock()
	delete(c.cache, name)
	c.cacheMu.Unlock()
}

// boundClient is the context-bound view of a Client: every operation
// forwards to the shared client with the bound context. It cannot embed
// *Client — the embedded methods would run with the background context —
// so it forwards all 18 Interface methods explicitly.
type boundClient struct {
	c   *Client
	ctx context.Context
}

var _ boardclient.Interface = (*boundClient)(nil)
var _ boardclient.ContextBinder = (*boundClient)(nil)

// BindContext rebinds to a different context, still sharing the client.
func (b *boundClient) BindContext(ctx context.Context) boardclient.Interface {
	return b.c.BindContext(ctx)
}

func (b *boundClient) PostProbe(p, o int, val byte) { b.c.postProbe(b.ctx, p, o, val) }
func (b *boundClient) PostProbes(p int, objs []int, grades []byte) {
	b.c.postProbes(b.ctx, p, objs, grades)
}
func (b *boundClient) LookupProbe(p, o int) (byte, bool) { return b.c.lookupProbe(b.ctx, p, o) }
func (b *boundClient) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	b.c.lookupProbes(b.ctx, p, objs, grades, known)
}
func (b *boundClient) ProbedObjects(p int) map[int]byte { return b.c.probedObjects(b.ctx, p) }
func (b *boundClient) ForEachProbe(p int, fn func(o int, grade byte)) {
	b.c.forEachProbe(b.ctx, p, fn)
}
func (b *boundClient) ProbeCount() int64 { return b.c.stats(b.ctx).ProbeCount }
func (b *boundClient) Post(name string, player int, v bitvec.Partial) {
	b.c.postTopic(b.ctx, name, player, v)
}
func (b *boundClient) PostVector(name string, player int, v bitvec.Vector) {
	b.c.postTopic(b.ctx, name, player, bitvec.PartialOf(v))
}
func (b *boundClient) Postings(name string) []billboard.Posting { return b.c.postings(b.ctx, name) }
func (b *boundClient) Votes(name string) []billboard.Vote       { return b.c.votes(b.ctx, name) }
func (b *boundClient) PopularVectors(name string, minVotes int) []bitvec.Partial {
	return b.c.popularVectors(b.ctx, name, minVotes)
}
func (b *boundClient) PostValues(name string, player int, vals []uint32) {
	b.c.postValues(b.ctx, name, player, vals)
}
func (b *boundClient) ValuePostings(name string) []billboard.ValuePosting {
	return b.c.valuePostings(b.ctx, name)
}
func (b *boundClient) ValueVotes(name string) []billboard.ValueVote {
	return b.c.valueVotes(b.ctx, name)
}
func (b *boundClient) DropTopic(name string) { b.c.dropTopic(b.ctx, name) }
func (b *boundClient) TopicCount() int       { return b.c.stats(b.ctx).TopicCount }
func (b *boundClient) VectorPostCount() int64 {
	return b.c.stats(b.ctx).VectorPostCount
}
func (b *boundClient) TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []billboard.Vote, valVotes []billboard.ValueVote) {
	return b.c.topicSnapshot(b.ctx, name, sinceGen, sinceEpoch)
}
func (b *boundClient) Err() error      { return b.c.Err() }
func (b *boundClient) Failures() int64 { return b.c.Failures() }
