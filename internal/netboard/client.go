package netboard

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/telemetry"
)

// Client implements billboard.Interface against a remote Server.
//
// billboard.Interface is error-free (the model treats the billboard as
// reliable shared memory), so transport failures are routed to OnError,
// which defaults to panicking with a descriptive message.
//
// Every mutating request carries a client-generated idempotency key
// (HeaderRequestID) that is reused verbatim across retries, so a retry
// of a request the server already applied — but whose response was lost
// — is deduplicated server-side instead of double-applied.
//
// Batch operations (PostProbes, LookupProbes) and the vote reads
// (Votes, ValueVotes, PopularVectors) use the batched wire protocol:
// one request per batch, and an epoch-tagged per-topic snapshot cache
// that re-downloads a tally only when the topic actually changed.
// DisableBatch restores the one-request-per-operation legacy protocol
// (useful to measure what batching buys; see cmd/benchdiff's netboard
// suite).
type Client struct {
	// BaseURL is the server's root, e.g. "http://localhost:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// OnError handles transport/protocol failures after retries are
	// exhausted; the default panics. If OnError returns instead of
	// panicking, the client enters degraded mode: the failed call
	// returns the zero value of its type (LookupProbe → (0,false),
	// Postings → nil, ProbeCount → 0, ...), the error is recorded, and
	// Err/Failures report it. Degraded zero values are indistinguishable
	// from an empty board at the call site, so any caller installing a
	// non-panicking OnError MUST check Err before trusting results — a
	// dead transport must not masquerade as an empty billboard.
	OnError func(error)
	// Retries is the number of times a failed request is retried with
	// jittered linear backoff before OnError fires (0 = no retries).
	// 4xx responses are not retried — they are protocol errors, not
	// transient failures.
	Retries int
	// RetryBackoff is the per-attempt backoff unit (default 50ms);
	// attempt i waits i·RetryBackoff scaled by a uniform ±50% jitter,
	// so a fleet of clients that failed together does not retry in
	// lockstep and re-stampede a recovering server.
	RetryBackoff time.Duration
	// JitterSeed seeds the backoff jitter stream (0 = a random seed).
	// Distinct clients should use distinct seeds (the default); a fixed
	// seed makes a single client's backoff sequence reproducible.
	JitterSeed uint64
	// DisableBatch switches off request batching and the topic
	// snapshot cache, issuing one legacy request per board operation.
	DisableBatch bool
	// Telemetry, when non-nil, records per-endpoint request counts
	// ("netboard.client.requests.<path>", one per HTTP attempt),
	// request latency histograms ("netboard.client.latency_ns.<path>")
	// and the "netboard.client.retries" counter. Nil costs nothing.
	Telemetry *telemetry.Registry

	// sleep stubs time.Sleep in backoff for tests.
	sleep func(time.Duration)

	// jitter is the lazily seeded backoff jitter stream (see
	// JitterSeed), guarded by jitterMu: one client may retry from many
	// player goroutines at once.
	jitterMu sync.Mutex
	jitter   *mrand.Rand

	// Request-id state: a random per-client prefix plus a sequence
	// number, unique across processes sharing one server.
	idOnce   sync.Once
	idPrefix string
	idSeq    atomic.Uint64

	// Degraded-mode record: first transport error and failure count.
	errMu    sync.Mutex
	firstErr error
	failures atomic.Int64

	// Per-topic snapshot cache keyed by the server's (gen, epoch) stamp.
	cacheMu sync.Mutex
	cache   map[string]*topicCacheEntry
}

// topicCacheEntry is one topic's decoded tallies at a (gen, epoch) stamp.
type topicCacheEntry struct {
	gen, epoch uint64
	votes      []billboard.Vote
	valVotes   []billboard.ValueVote
}

var _ billboard.Interface = (*Client)(nil)

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// Err returns the first transport/protocol error the client swallowed
// via a non-panicking OnError (nil if none). Once Err is non-nil the
// client has returned at least one degraded zero value; results
// obtained since then must not be interpreted as board state.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// Failures returns how many calls failed terminally (each one invoked
// OnError and returned a degraded zero value).
func (c *Client) Failures() int64 { return c.failures.Load() }

func (c *Client) fail(err error) {
	c.failures.Add(1)
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
	if c.OnError != nil {
		c.OnError(err)
		return
	}
	panic(fmt.Sprintf("netboard: %v", err))
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// backoff sleeps before retry attempt i (1-based): i·RetryBackoff
// scaled by a uniform factor in [0.5, 1.5). Deterministic linear
// backoff synchronizes retry stampedes — every client that failed on
// the same server blip would sleep the same schedule and re-arrive
// together; the seeded jitter desynchronizes the herd while keeping
// the linear growth (and the i·RetryBackoff mean) intact.
func (c *Client) backoff(i int) {
	unit := c.RetryBackoff
	if unit <= 0 {
		unit = 50 * time.Millisecond
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		seed := c.JitterSeed
		for seed == 0 {
			seed = mrand.Uint64()
		}
		c.jitter = mrand.New(mrand.NewPCG(seed, 0x74656c6c6d65)) // "tellme"
	}
	f := 0.5 + c.jitter.Float64()
	c.jitterMu.Unlock()
	d := time.Duration(float64(i) * float64(unit) * f)
	c.Telemetry.Counter("netboard.client.retries").Inc()
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	time.Sleep(d)
}

// requestID mints a fresh idempotency key: random client prefix plus a
// sequence number. One id is generated per logical mutation and reused
// across its retries.
func (c *Client) requestID() string {
	c.idOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.idPrefix = hex.EncodeToString(b[:])
		} else {
			c.idPrefix = fmt.Sprintf("t%d", time.Now().UnixNano())
		}
	})
	return c.idPrefix + "-" + strconv.FormatUint(c.idSeq.Add(1), 10)
}

// instruments resolves the per-endpoint request counter and latency
// histogram for one logical call (nil instruments when telemetry is
// off). The registry lookup happens once per call, not per attempt.
func (c *Client) instruments(path string) (reqs *telemetry.Counter, lat *telemetry.Histogram) {
	if c.Telemetry == nil {
		return nil, nil
	}
	return c.Telemetry.Counter("netboard.client.requests." + path),
		c.Telemetry.Histogram("netboard.client.latency_ns."+path, telemetry.LatencyBuckets())
}

// post sends a JSON POST and expects 2xx, retrying transient failures.
// All attempts carry the same request id, so a retry of a post the
// server already applied is acknowledged, not re-applied.
func (c *Client) post(path string, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		c.fail(err)
		return
	}
	id := c.requestID()
	reqs, lat := c.instruments(path)
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
		if err != nil {
			c.fail(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderRequestID, id)
		reqs.Inc()
		start := time.Now()
		resp, err := c.httpc().Do(req)
		lat.ObserveSince(start)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 == 2 {
			resp.Body.Close()
			return
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		lastErr = fmt.Errorf("POST %s: %s: %s", path, resp.Status, msg)
		if code/100 == 4 {
			break // protocol error; retrying cannot help
		}
	}
	c.fail(lastErr)
}

// get fetches JSON into out, retrying transient failures. It reports
// whether it succeeded; on false the client has already failed (and, in
// degraded mode, out is untouched).
func (c *Client) get(path string, query url.Values, out any) bool {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	reqs, lat := c.instruments(path)
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.backoff(attempt)
		}
		reqs.Inc()
		start := time.Now()
		resp, err := c.httpc().Get(u)
		lat.ObserveSince(start)
		if err != nil {
			lastErr = err
			continue
		}
		code := resp.StatusCode
		if code/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("GET %s: %s: %s", path, resp.Status, msg)
			if code/100 == 4 {
				break
			}
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("GET %s: decode: %v", path, err)
			continue
		}
		return true
	}
	c.fail(lastErr)
	return false
}

// PostProbe implements billboard.Interface.
func (c *Client) PostProbe(p, o int, val byte) {
	c.post(PathProbe, probePost{Player: p, Object: o, Value: val})
}

// PostProbes implements billboard.Interface: the whole batch travels as
// one idempotent request (one per-probe request when DisableBatch).
func (c *Client) PostProbes(p int, objs []int, grades []byte) {
	if len(objs) == 0 {
		return
	}
	if c.DisableBatch {
		for k, o := range objs {
			c.PostProbe(p, o, grades[k])
		}
		return
	}
	wire := make([]byte, len(objs))
	for k, g := range grades {
		if g != 0 {
			wire[k] = '1'
		} else {
			wire[k] = '0'
		}
	}
	c.post(PathBatchProbes, batchProbesPost{Player: p, Objects: objs, Grades: string(wire)})
}

// LookupProbe implements billboard.Interface.
func (c *Client) LookupProbe(p, o int) (byte, bool) {
	var reply probeReply
	c.get(PathProbe, url.Values{
		"player": {strconv.Itoa(p)},
		"object": {strconv.Itoa(o)},
	}, &reply)
	return reply.Value, reply.OK
}

// LookupProbes implements billboard.Interface: one request for the
// whole batch (one per object when DisableBatch).
func (c *Client) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	if len(objs) == 0 {
		return
	}
	if c.DisableBatch {
		for k, o := range objs {
			grades[k], known[k] = c.LookupProbe(p, o)
		}
		return
	}
	var sb strings.Builder
	for k, o := range objs {
		if k > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(o))
	}
	var reply batchLookupsReply
	if !c.get(PathBatchLookups, url.Values{
		"player":  {strconv.Itoa(p)},
		"objects": {sb.String()},
	}, &reply) {
		for k := range objs {
			grades[k], known[k] = 0, false // degraded: nothing known
		}
		return
	}
	if len(reply.Grades) != len(objs) {
		c.fail(fmt.Errorf("batch lookup: %d grades for %d objects", len(reply.Grades), len(objs)))
		return
	}
	for k := range objs {
		switch reply.Grades[k] {
		case '1':
			grades[k], known[k] = 1, true
		case '0':
			grades[k], known[k] = 0, true
		default:
			grades[k], known[k] = 0, false
		}
	}
}

// ProbedObjects implements billboard.Interface.
func (c *Client) ProbedObjects(p int) map[int]byte {
	var reply probedObjectsReply
	c.get(PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	out := make(map[int]byte, len(reply.Objects))
	for _, og := range reply.Objects {
		out[og.Object] = og.Grade
	}
	return out
}

// ForEachProbe implements billboard.Interface. It fetches the player's
// probe results once and iterates them in the server's order (ascending
// object order for a billboard.Board-backed server).
func (c *Client) ForEachProbe(p int, fn func(o int, grade byte)) {
	var reply probedObjectsReply
	c.get(PathProbedObjects, url.Values{"player": {strconv.Itoa(p)}}, &reply)
	for _, og := range reply.Objects {
		fn(og.Object, og.Grade)
	}
}

// ProbeCount implements billboard.Interface.
func (c *Client) ProbeCount() int64 { return c.stats().ProbeCount }

// Post implements billboard.Interface.
func (c *Client) Post(name string, player int, v bitvec.Partial) {
	c.post(PathVector, vectorPost{Topic: name, Player: player, Bits: v.String()})
}

// PostVector implements billboard.Interface.
func (c *Client) PostVector(name string, player int, v bitvec.Vector) {
	c.Post(name, player, bitvec.PartialOf(v))
}

// Postings implements billboard.Interface.
func (c *Client) Postings(name string) []billboard.Posting {
	var reply []postingJSON
	c.get(PathPostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.Posting, len(reply))
	for i, p := range reply {
		vec, err := parsePartial(p.Bits)
		if err != nil {
			c.fail(err)
			return nil
		}
		out[i] = billboard.Posting{Player: p.Player, Vec: vec}
	}
	return out
}

// snapshot returns the topic's tallies through the epoch-tagged
// snapshot cache: one GET when the cached (gen, epoch) stamp is stale,
// zero decode work when the server answers "unchanged". The returned
// entry is shared and immutable, matching the billboard.Interface
// contract for Votes/ValueVotes. Returns nil in degraded mode.
func (c *Client) snapshot(name string) *topicCacheEntry {
	c.cacheMu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]*topicCacheEntry)
	}
	cached := c.cache[name]
	c.cacheMu.Unlock()

	q := url.Values{"topic": {name}}
	if cached != nil {
		q.Set("gen", strconv.FormatUint(cached.gen, 10))
		q.Set("epoch", strconv.FormatUint(cached.epoch, 10))
	}
	var reply topicSnapshotReply
	if !c.get(PathTopicSnapshot, q, &reply) {
		return nil // degraded; c.fail already fired
	}
	if reply.Unchanged && cached != nil {
		return cached
	}
	entry := &topicCacheEntry{gen: reply.Gen, epoch: reply.Epoch}
	entry.votes = make([]billboard.Vote, len(reply.Votes))
	for i, v := range reply.Votes {
		vec, err := parsePartial(v.Bits)
		if err != nil {
			c.fail(err)
			return nil
		}
		entry.votes[i] = billboard.Vote{Vec: vec, Count: v.Count, Voters: v.Voters}
	}
	entry.valVotes = make([]billboard.ValueVote, len(reply.ValueVotes))
	for i, v := range reply.ValueVotes {
		entry.valVotes[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	c.cacheMu.Lock()
	// Last writer wins; concurrent fetchers decoded the same stamp or a
	// newer one, and a stale overwrite only costs one extra refetch.
	c.cache[name] = entry
	c.cacheMu.Unlock()
	return entry
}

// Votes implements billboard.Interface. The result is the shared,
// immutable snapshot-cache entry (same contract as the in-memory
// board's epoch-cached tallies).
func (c *Client) Votes(name string) []billboard.Vote {
	if c.DisableBatch {
		var reply []voteJSON
		c.get(PathVotes, url.Values{"topic": {name}}, &reply)
		out := make([]billboard.Vote, len(reply))
		for i, v := range reply {
			vec, err := parsePartial(v.Bits)
			if err != nil {
				c.fail(err)
				return nil
			}
			out[i] = billboard.Vote{Vec: vec, Count: v.Count, Voters: v.Voters}
		}
		return out
	}
	entry := c.snapshot(name)
	if entry == nil {
		return nil
	}
	return entry.votes
}

// PopularVectors implements billboard.Interface.
func (c *Client) PopularVectors(name string, minVotes int) []bitvec.Partial {
	var out []bitvec.Partial
	for _, v := range c.Votes(name) {
		if v.Count >= minVotes {
			out = append(out, v.Vec)
		}
	}
	return out
}

// PostValues implements billboard.Interface.
func (c *Client) PostValues(name string, player int, vals []uint32) {
	c.post(PathValues, valuesPost{Topic: name, Player: player, Vals: vals})
}

// ValuePostings implements billboard.Interface.
func (c *Client) ValuePostings(name string) []billboard.ValuePosting {
	var reply []valuePostingJSON
	c.get(PathValuePostings, url.Values{"topic": {name}}, &reply)
	out := make([]billboard.ValuePosting, len(reply))
	for i, p := range reply {
		out[i] = billboard.ValuePosting{Player: p.Player, Vals: p.Vals}
	}
	return out
}

// ValueVotes implements billboard.Interface. Like Votes, the result is
// the shared immutable snapshot-cache entry.
func (c *Client) ValueVotes(name string) []billboard.ValueVote {
	if c.DisableBatch {
		var reply []valueVoteJSON
		c.get(PathValueVotes, url.Values{"topic": {name}}, &reply)
		out := make([]billboard.ValueVote, len(reply))
		for i, v := range reply {
			out[i] = billboard.ValueVote{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
		}
		return out
	}
	entry := c.snapshot(name)
	if entry == nil {
		return nil
	}
	return entry.valVotes
}

// DropTopic implements billboard.Interface.
func (c *Client) DropTopic(name string) {
	c.post(PathDropTopic, dropPost{Topic: name})
	c.cacheMu.Lock()
	delete(c.cache, name)
	c.cacheMu.Unlock()
}

// TopicCount implements billboard.Interface.
func (c *Client) TopicCount() int { return c.stats().TopicCount }

// VectorPostCount implements billboard.Interface.
func (c *Client) VectorPostCount() int64 { return c.stats().VectorPostCount }

func (c *Client) stats() statsReply {
	var reply statsReply
	c.get(PathStats, nil, &reply)
	return reply
}

// parsePartial decodes the wire form of a partial vector.
func parsePartial(bits string) (bitvec.Partial, error) {
	v, err := bitvec.PartialFromString(bits)
	if err != nil {
		return bitvec.Partial{}, fmt.Errorf("netboard: bad vector %q: %v", truncate(bits, 32), err)
	}
	return v, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
