package netboard

import (
	"context"
	"testing"
	"time"
)

// TestDecorrelateDistinct checks the per-shard seed derivation
// directly: for a spread of base seeds, every shard's derived seed is
// nonzero, differs from the base seed (the standalone client's stream),
// and differs from every other shard's.
func TestDecorrelateDistinct(t *testing.T) {
	seeds := []uint64{1, 2, 3, 99, 0x9e3779b97f4a7c15, ^uint64(0), 1 << 63}
	// Adjacent seeds too: the affine scheme this replaced kept nearby
	// seeds' shard fleets in lockstep.
	for s := uint64(1000); s < 1016; s++ {
		seeds = append(seeds, s)
	}
	const shards = 16
	for _, seed := range seeds {
		derived := map[uint64]uint64{seed: ^uint64(0)} // base seed is taken
		for i := uint64(0); i < shards; i++ {
			d := decorrelate(seed, i)
			if d == 0 {
				t.Fatalf("decorrelate(%#x, %d) = 0", seed, i)
			}
			if d == seed {
				t.Fatalf("decorrelate(%#x, %d) returned the base seed", seed, i)
			}
			if prev, dup := derived[d]; dup {
				t.Fatalf("decorrelate(%#x): shards %d and %d share seed %#x", seed, prev, i, d)
			}
			derived[d] = i
		}
	}
}

// jitterFactors drives a client's backoff i=1 waits through the sleep
// stub and returns the first k jittered durations — a fingerprint of
// the client's jitter stream.
func jitterFactors(c *Client, k int) []time.Duration {
	var out []time.Duration
	c.RetryBackoff = time.Second
	c.sleep = func(d time.Duration) { out = append(out, d) }
	for i := 0; i < k; i++ {
		if err := c.backoff(context.Background(), 1); err != nil {
			panic(err)
		}
	}
	return out
}

// TestClusterShardJitterDiverges asserts the observable property the
// derivation exists for: with one configured JitterSeed, every shard
// client's backoff schedule diverges from every other shard's AND from
// a standalone client configured with the same seed. Identical
// schedules re-synchronize the retry stampede the jitter breaks up.
func TestClusterShardJitterDiverges(t *testing.T) {
	const seed = 42
	cl, err := NewCluster(ClusterConfig{
		// NewCluster never contacts the shards; fake URLs are fine.
		Shards: []string{"http://s0", "http://s1", "http://s2", "http://s3"},
		Client: Config{JitterSeed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	standalone := NewClientWithConfig("http://solo", Config{JitterSeed: seed})
	streams := map[string][]time.Duration{"standalone": jitterFactors(standalone, k)}
	_, clients := cl.topo()
	for i, c := range clients {
		streams["shard"+string(rune('0'+i))] = jitterFactors(c, k)
	}
	for a, sa := range streams {
		for b, sb := range streams {
			if a >= b {
				continue
			}
			same := true
			for i := range sa {
				if sa[i] != sb[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s and %s run identical backoff schedules %v", a, b, sa)
			}
		}
	}
}
