package netboard

import (
	"net/http"
	"time"

	"tellme/internal/telemetry"
)

// Default client tuning; see Config.
const (
	// DefaultRetryBackoff is the per-attempt backoff unit when
	// Config.RetryBackoff is unset.
	DefaultRetryBackoff = 50 * time.Millisecond
	// DefaultTelemetryPrefix keys the client's request/latency/retry
	// instruments when Config.TelemetryPrefix is unset. A Cluster
	// overrides it per shard ("netboard.cluster.shard<i>") so the same
	// instruments come out keyed by shard.
	DefaultTelemetryPrefix = "netboard.client"
	// DefaultMaxIdleConnsPerHost sizes the per-host idle connection pool
	// when Config.MaxIdleConnsPerHost is unset. http.DefaultTransport
	// keeps only 2 — under fleet-scale fan-in every burst past 2
	// in-flight requests dials (and then discards) fresh connections,
	// churning through ephemeral ports. 64 holds a realistic worker
	// pool's connections open between rounds.
	DefaultMaxIdleConnsPerHost = 64
	// DefaultIdleConnTimeout is how long a pooled idle connection is
	// kept before being closed when Config.IdleConnTimeout is unset.
	DefaultIdleConnTimeout = 90 * time.Second
)

// Config consolidates every Client knob — transport, failure handling,
// retry schedule, batching, telemetry — in one validated struct,
// replacing the historical pattern of constructing a bare Client and
// poking exported fields. The zero value is a working configuration
// (no retries, default transport, batched protocol, panic on terminal
// failure), matching what NewClient has always produced.
type Config struct {
	// HTTPClient performs the requests; nil builds a pooled client from
	// the three pool knobs below (PooledHTTPClient). Setting HTTPClient
	// explicitly bypasses the knobs entirely — the caller owns the
	// transport.
	HTTPClient *http.Client
	// MaxIdleConnsPerHost caps the idle connections kept per server.
	// Zero or negative means DefaultMaxIdleConnsPerHost. (The Go
	// default of 2 collapses under fleet fan-in: every burst re-dials.)
	MaxIdleConnsPerHost int
	// MaxConnsPerHost caps total connections (idle + in-flight + dialing)
	// per server; requests beyond the cap block waiting for a free
	// connection — visible as "<prefix>.conns.stalled" telemetry. Zero
	// or negative means unlimited.
	MaxConnsPerHost int
	// IdleConnTimeout closes pooled connections idle this long. Zero or
	// negative means DefaultIdleConnTimeout.
	IdleConnTimeout time.Duration
	// OnError handles terminal transport/protocol failures; nil means
	// panic with the *TransportError (see Client.OnError for the
	// degraded-mode contract a non-panicking handler opts into).
	OnError func(error)
	// Retries is how many times a failed request is retried with
	// jittered linear backoff (negative values are clamped to 0).
	Retries int
	// RetryBackoff is the per-attempt backoff unit; zero or negative
	// means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// JitterSeed seeds the backoff jitter stream (0 = a random seed).
	JitterSeed uint64
	// DisableBatch switches off request batching and the topic
	// snapshot cache (the legacy one-request-per-operation protocol).
	DisableBatch bool
	// Telemetry, when non-nil, receives per-endpoint request counts,
	// latency histograms and the retry counter, keyed under
	// TelemetryPrefix.
	Telemetry *telemetry.Registry
	// TelemetryPrefix keys the client's instruments; empty means
	// DefaultTelemetryPrefix.
	TelemetryPrefix string
	// Codec selects the request/reply encoding: "json" (the default,
	// also the empty string) or "binary" (the length-prefixed packed
	// codec; see internal/wire). The choice is fail-safe: a server that
	// rejects binary bodies with 415 flips the client back to JSON for
	// good, so a binary-configured client keeps working against a
	// JSON-pinned or older server (see Client.Codec).
	Codec string
}

// normalized returns cfg with invalid values clamped to the documented
// defaults. Defaults that the Client already resolves lazily (nil
// HTTPClient, zero JitterSeed, empty TelemetryPrefix) are left as-is.
func (cfg Config) normalized() Config {
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.MaxIdleConnsPerHost <= 0 {
		cfg.MaxIdleConnsPerHost = DefaultMaxIdleConnsPerHost
	}
	if cfg.MaxConnsPerHost < 0 {
		cfg.MaxConnsPerHost = 0 // unlimited
	}
	if cfg.IdleConnTimeout <= 0 {
		cfg.IdleConnTimeout = DefaultIdleConnTimeout
	}
	return cfg
}

// PooledHTTPClient builds the http.Client a nil Config.HTTPClient
// resolves to: http.DefaultTransport's dialer and timeouts with the
// connection pool opened up per cfg's (normalized) knobs. Exposed so a
// Cluster can build ONE pooled client and share it across its shard
// clients — per-host limits then apply per shard server, and the
// process keeps a single coherent pool instead of one per shard.
func (cfg Config) PooledHTTPClient() *http.Client {
	cfg = cfg.normalized()
	tr := http.DefaultTransport.(*http.Transport).Clone()
	// MaxIdleConns is a global cap across hosts; zero it so the per-host
	// knob is the only limit (a 16-shard cluster at 64 idle conns each
	// would otherwise thrash against the global default of 100).
	tr.MaxIdleConns = 0
	tr.MaxIdleConnsPerHost = cfg.MaxIdleConnsPerHost
	tr.MaxConnsPerHost = cfg.MaxConnsPerHost
	tr.IdleConnTimeout = cfg.IdleConnTimeout
	return &http.Client{Transport: tr}
}

// NewClientWithConfig returns a Client for the server at baseURL,
// configured from cfg (validated defaults applied). This is the
// primary constructor; NewClient is the zero-config shorthand.
func NewClientWithConfig(baseURL string, cfg Config) *Client {
	cfg = cfg.normalized()
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = cfg.PooledHTTPClient()
	}
	return &Client{
		BaseURL:         baseURL,
		HTTPClient:      httpc,
		OnError:         cfg.OnError,
		Retries:         cfg.Retries,
		RetryBackoff:    cfg.RetryBackoff,
		JitterSeed:      cfg.JitterSeed,
		DisableBatch:    cfg.DisableBatch,
		Telemetry:       cfg.Telemetry,
		TelemetryPrefix: cfg.TelemetryPrefix,
		Codec:           cfg.Codec,
	}
}
