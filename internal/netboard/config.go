package netboard

import (
	"net/http"
	"time"

	"tellme/internal/telemetry"
)

// Default client tuning; see Config.
const (
	// DefaultRetryBackoff is the per-attempt backoff unit when
	// Config.RetryBackoff is unset.
	DefaultRetryBackoff = 50 * time.Millisecond
	// DefaultTelemetryPrefix keys the client's request/latency/retry
	// instruments when Config.TelemetryPrefix is unset. A Cluster
	// overrides it per shard ("netboard.cluster.shard<i>") so the same
	// instruments come out keyed by shard.
	DefaultTelemetryPrefix = "netboard.client"
)

// Config consolidates every Client knob — transport, failure handling,
// retry schedule, batching, telemetry — in one validated struct,
// replacing the historical pattern of constructing a bare Client and
// poking exported fields. The zero value is a working configuration
// (no retries, default transport, batched protocol, panic on terminal
// failure), matching what NewClient has always produced.
type Config struct {
	// HTTPClient performs the requests; nil means http.DefaultClient.
	HTTPClient *http.Client
	// OnError handles terminal transport/protocol failures; nil means
	// panic with the *TransportError (see Client.OnError for the
	// degraded-mode contract a non-panicking handler opts into).
	OnError func(error)
	// Retries is how many times a failed request is retried with
	// jittered linear backoff (negative values are clamped to 0).
	Retries int
	// RetryBackoff is the per-attempt backoff unit; zero or negative
	// means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// JitterSeed seeds the backoff jitter stream (0 = a random seed).
	JitterSeed uint64
	// DisableBatch switches off request batching and the topic
	// snapshot cache (the legacy one-request-per-operation protocol).
	DisableBatch bool
	// Telemetry, when non-nil, receives per-endpoint request counts,
	// latency histograms and the retry counter, keyed under
	// TelemetryPrefix.
	Telemetry *telemetry.Registry
	// TelemetryPrefix keys the client's instruments; empty means
	// DefaultTelemetryPrefix.
	TelemetryPrefix string
}

// normalized returns cfg with invalid values clamped to the documented
// defaults. Defaults that the Client already resolves lazily (nil
// HTTPClient, zero JitterSeed, empty TelemetryPrefix) are left as-is.
func (cfg Config) normalized() Config {
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	return cfg
}

// NewClientWithConfig returns a Client for the server at baseURL,
// configured from cfg (validated defaults applied). This is the
// primary constructor; NewClient is the zero-config shorthand.
func NewClientWithConfig(baseURL string, cfg Config) *Client {
	cfg = cfg.normalized()
	return &Client{
		BaseURL:         baseURL,
		HTTPClient:      cfg.HTTPClient,
		OnError:         cfg.OnError,
		Retries:         cfg.Retries,
		RetryBackoff:    cfg.RetryBackoff,
		JitterSeed:      cfg.JitterSeed,
		DisableBatch:    cfg.DisableBatch,
		Telemetry:       cfg.Telemetry,
		TelemetryPrefix: cfg.TelemetryPrefix,
	}
}
