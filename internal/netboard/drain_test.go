package netboard

// Regression tests for the reshard drain's copy-then-drop window: a
// mutation that commits on the donor *after* the drain snapshotted it
// (a retry whose original response was lost, or a network duplicate)
// must survive the drain — the conditional drop refuses to erase it and
// the converge loop replays it — never be silently lost with the
// departing shard.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/netboard/faultnet"
)

// TestDedupeQuiesceWaitsForInflight: Quiesce must not return while an
// application is still executing, and must return once it finishes.
func TestDedupeQuiesceWaitsForInflight(t *testing.T) {
	d := newDedupe(8)
	started := make(chan struct{})
	release := make(chan struct{})
	go d.Do("id-1", func() {
		close(started)
		<-release
	})
	<-started
	quiesced := make(chan struct{})
	go func() {
		d.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while an application was executing")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce did not return after the application finished")
	}
	// Idle dedupe: Quiesce returns immediately.
	d.Quiesce()
}

// TestRemoveShardLateCommitSurvivesDrain pins the exact interleaving of
// the bug: a posting and a probe result commit on the donor *after* the
// drain snapshotted their keys but before (or after) it issued the
// drop/clear. The donor server's handler injects the late commits at
// the precise seams — a vector posting when the first conditional drop
// arrives (between snapshot and drop), a probe result for an
// already-drained player when the first clear arrives (only a second
// converge pass can see it). With the old unconditional copy-then-drop
// both commits vanished; now both must be on the surviving shard.
func TestRemoveShardLateCommitSurvivesDrain(t *testing.T) {
	const n, m = 8, 64
	b0 := billboard.New(n, m)
	b1 := billboard.New(n, m)
	srv0 := httptest.NewServer(NewServer(b0))
	t.Cleanup(srv0.Close)

	var lateTopic string
	var lateObj int
	lateVec := bitvec.New(8)
	lateVec.Set(3, 1)
	inner := NewServer(b1)
	var topicGate, probeGate sync.Once
	srv1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathDropTopicIf:
			// The drain has replayed its snapshot of the topic and is
			// asking to drop it: commit one more posting first.
			topicGate.Do(func() { b1.Post(lateTopic, 7, bitvec.PartialOf(lateVec)) })
		case PathClearProbes:
			// The drain is clearing player 2's moved probes: commit a
			// probe for player 0, whom this pass already visited.
			probeGate.Do(func() { b1.PostProbe(0, lateObj, 1) })
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv1.Close)

	cluster, err := NewCluster(ClusterConfig{Shards: []string{srv0.URL, srv1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := cluster.topo()
	for i := 0; ; i++ {
		if name := fmt.Sprintf("drain/t%d", i); ring.Owner(name) == 1 {
			lateTopic = name
			break
		}
	}
	for o := 0; ; o++ {
		if ring.Owner(objKey(o)) == 1 {
			lateObj = o
			break
		}
	}

	// Seed the donor: four postings under its topic, one probe result
	// (player 2) so the drain issues a clear.
	for p := 0; p < 4; p++ {
		v := bitvec.New(8)
		v.Set(p%8, 1)
		cluster.PostVector(lateTopic, p, v)
		cluster.PostValues(lateTopic, p, []uint32{uint32(p)})
	}
	cluster.PostProbe(2, lateObj, 1)

	if err := cluster.RemoveShard(context.Background(), srv1.URL); err != nil {
		t.Fatal(err)
	}

	if pc, tc := b1.ProbeCount(), b1.TopicCount(); pc != 0 || tc != 0 {
		t.Fatalf("removed shard still holds %d probes, %d topics", pc, tc)
	}
	postings := cluster.Postings(lateTopic)
	if len(postings) != 5 {
		t.Fatalf("topic has %d postings after drain, want 5 (4 seeded + 1 late)", len(postings))
	}
	found := false
	for _, p := range postings {
		if p.Player == 7 && p.Vec.String() == bitvec.PartialOf(lateVec).String() {
			found = true
		}
	}
	if !found {
		t.Fatal("late vector posting was lost by the drain")
	}
	if vals := cluster.ValuePostings(lateTopic); len(vals) != 4 {
		t.Fatalf("topic has %d value postings after drain, want 4", len(vals))
	}
	if v, ok := cluster.LookupProbe(2, lateObj); !ok || v != 1 {
		t.Fatalf("seeded probe after drain: (%d, %v), want (1, true)", v, ok)
	}
	if v, ok := cluster.LookupProbe(0, lateObj); !ok || v != 1 {
		t.Fatalf("late probe after drain: (%d, %v), want (1, true) — lost in the clear window", v, ok)
	}
}

// TestRemoveShardFaultnetMidDrain kills connections mid-drain: every
// request to the departing shard — the drain's own snapshot, drop, and
// clear traffic included — can lose its request or its response or be
// delivered twice. Retried drops are deduplicated, re-appearing
// duplicates commit late, and the drain must still converge to an exact
// final state: everything the donor held present on the survivor
// exactly once.
func TestRemoveShardFaultnetMidDrain(t *testing.T) {
	const n, m = 8, 96
	boards := make([]*billboard.Board, 2)
	urls := make([]string, 2)
	for i := range boards {
		boards[i] = billboard.New(n, m)
		srv := httptest.NewServer(NewServer(boards[i]))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ft := faultnet.New(nil, 20260808)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.15, 0.15, 0.3
	ft.MaxDelay = 200 * time.Microsecond
	u, err := url.Parse(urls[1])
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Shards: urls,
		Client: Config{
			HTTPClient:   &http.Client{Transport: &hostFaultRouter{degradedHost: u.Host, degraded: ft, clean: http.DefaultTransport}},
			Retries:      40,
			RetryBackoff: 100 * time.Microsecond,
			JitterSeed:   7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	topics := []string{"mid/a", "mid/b", "mid/c", "mid/d"}
	for ti, name := range topics {
		for p := 0; p < n; p++ {
			v := bitvec.New(8)
			if (p+ti)%2 == 0 {
				v.Set(ti%8, 1)
			}
			cluster.PostVector(name, p, v)
			cluster.PostValues(name, p, []uint32{uint32(p), uint32(ti)})
		}
	}
	for p := 0; p < n; p++ {
		var objs []int
		var grades []byte
		for o := p; o < m; o += n {
			objs = append(objs, o)
			grades = append(grades, byte((p+o)%2))
		}
		cluster.PostProbes(p, objs, grades)
	}

	wantProbes := cluster.ProbeCount()
	wantVotes := make(map[string]string)
	for _, name := range topics {
		s := ""
		for _, v := range cluster.Votes(name) {
			s += v.Vec.String() + "|"
			for _, p := range v.Voters {
				s += string(rune('a' + p))
			}
			s += ";"
		}
		wantVotes[name] = s
	}

	if err := cluster.RemoveShard(context.Background(), urls[1]); err != nil {
		t.Fatal(err)
	}

	if got := len(cluster.Shards()); got != 1 {
		t.Fatalf("cluster has %d shards after RemoveShard, want 1", got)
	}
	if pc, tc := boards[1].ProbeCount(), boards[1].TopicCount(); pc != 0 || tc != 0 {
		t.Fatalf("removed shard still holds %d probes, %d topics", pc, tc)
	}
	if got := boards[0].ProbeCount(); got != wantProbes {
		t.Fatalf("survivor holds %d probe results, want %d (lost or duplicated mid-drain)", got, wantProbes)
	}
	for p := 0; p < n; p++ {
		for o := p; o < m; o += n {
			v, ok := boards[0].LookupProbe(p, o)
			if !ok || v != byte((p+o)%2) {
				t.Fatalf("probe (%d,%d) after drain: (%d, %v), want (%d, true)", p, o, v, ok, (p+o)%2)
			}
		}
	}
	for _, name := range topics {
		s := ""
		for _, v := range boards[0].Votes(name) {
			s += v.Vec.String() + "|"
			for _, p := range v.Voters {
				s += string(rune('a' + p))
			}
			s += ";"
		}
		if s != wantVotes[name] {
			t.Fatalf("topic %q after drain:\n got %q\nwant %q", name, s, wantVotes[name])
		}
	}
	if ft.LostResponses() == 0 && ft.DroppedRequests() == 0 {
		t.Fatal("fault injection never fired; the test exercised nothing")
	}
}
