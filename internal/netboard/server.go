package netboard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"tellme/internal/billboard"
)

// Server serves a billboard.Board over HTTP.
type Server struct {
	board *billboard.Board
	mux   *http.ServeMux
}

// NewServer wraps board in an HTTP handler.
func NewServer(board *billboard.Board) *Server {
	s := &Server{board: board, mux: http.NewServeMux()}
	s.mux.HandleFunc(PathProbe, s.handleProbe)
	s.mux.HandleFunc(PathProbedObjects, s.handleProbedObjects)
	s.mux.HandleFunc(PathVector, s.handleVector)
	s.mux.HandleFunc(PathPostings, s.handlePostings)
	s.mux.HandleFunc(PathVotes, s.handleVotes)
	s.mux.HandleFunc(PathValues, s.handleValues)
	s.mux.HandleFunc(PathValuePostings, s.handleValuePostings)
	s.mux.HandleFunc(PathValueVotes, s.handleValueVotes)
	s.mux.HandleFunc(PathDropTopic, s.handleDropTopic)
	s.mux.HandleFunc(PathStats, s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; nothing further to do.
		return
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// playerParam parses the player query parameter and validates range.
func (s *Server) playerParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	p, err := strconv.Atoi(r.URL.Query().Get("player"))
	if err != nil || p < 0 || p >= s.board.N() {
		http.Error(w, "invalid player", http.StatusBadRequest)
		return 0, false
	}
	return p, true
}

func (s *Server) validPlayerObject(w http.ResponseWriter, player, object int) bool {
	if player < 0 || player >= s.board.N() {
		http.Error(w, "invalid player", http.StatusBadRequest)
		return false
	}
	if object < 0 || object >= s.board.M() {
		http.Error(w, "invalid object", http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req probePost
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !s.validPlayerObject(w, req.Player, req.Object) {
			return
		}
		if req.Value > 1 {
			http.Error(w, "grade must be 0 or 1", http.StatusBadRequest)
			return
		}
		s.board.PostProbe(req.Player, req.Object, req.Value)
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		p, ok := s.playerParam(w, r)
		if !ok {
			return
		}
		o, err := strconv.Atoi(r.URL.Query().Get("object"))
		if err != nil || o < 0 || o >= s.board.M() {
			http.Error(w, "invalid object", http.StatusBadRequest)
			return
		}
		v, found := s.board.LookupProbe(p, o)
		writeJSON(w, probeReply{Value: v, OK: found})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleProbedObjects(w http.ResponseWriter, r *http.Request) {
	p, ok := s.playerParam(w, r)
	if !ok {
		return
	}
	reply := probedObjectsReply{Objects: []objGrade{}}
	s.board.ForEachProbe(p, func(o int, g byte) {
		reply.Objects = append(reply.Objects, objGrade{Object: o, Grade: g})
	})
	writeJSON(w, reply)
}

func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	var req vectorPost
	if !readJSON(w, r, &req) {
		return
	}
	vec, err := parsePartial(req.Bits)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.board.Post(req.Topic, req.Player, vec)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePostings(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	postings := s.board.Postings(topic)
	out := make([]postingJSON, len(postings))
	for i, p := range postings {
		out[i] = postingJSON{Player: p.Player, Bits: p.Vec.String()}
	}
	writeJSON(w, out)
}

func (s *Server) handleVotes(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	votes := s.board.Votes(topic)
	out := make([]voteJSON, len(votes))
	for i, v := range votes {
		out[i] = voteJSON{Bits: v.Vec.String(), Count: v.Count, Voters: v.Voters}
	}
	writeJSON(w, out)
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	var req valuesPost
	if !readJSON(w, r, &req) {
		return
	}
	s.board.PostValues(req.Topic, req.Player, req.Vals)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleValuePostings(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	postings := s.board.ValuePostings(topic)
	out := make([]valuePostingJSON, len(postings))
	for i, p := range postings {
		out[i] = valuePostingJSON{Player: p.Player, Vals: p.Vals}
	}
	writeJSON(w, out)
}

func (s *Server) handleValueVotes(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	votes := s.board.ValueVotes(topic)
	out := make([]valueVoteJSON, len(votes))
	for i, v := range votes {
		out[i] = valueVoteJSON{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	writeJSON(w, out)
}

func (s *Server) handleDropTopic(w http.ResponseWriter, r *http.Request) {
	var req dropPost
	if !readJSON(w, r, &req) {
		return
	}
	s.board.DropTopic(req.Topic)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, statsReply{
		ProbeCount:      s.board.ProbeCount(),
		VectorPostCount: s.board.VectorPostCount(),
		TopicCount:      s.board.TopicCount(),
		N:               s.board.N(),
		M:               s.board.M(),
	})
}
