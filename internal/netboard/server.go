package netboard

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/telemetry"
	"tellme/internal/wire"
)

// DefaultDedupeWindow is the number of recently applied request ids the
// server remembers for idempotent retries (see HeaderRequestID).
const DefaultDedupeWindow = 4096

// DefaultDedupeMaxAge is how long an applied request id stays in the
// idempotency window when the count cap alone would retain it longer.
// Client retries arrive within seconds (the jittered linear backoff
// schedule), so minutes of retention is generous — and it means a
// server that saw one traffic burst does not pin the burst's ids in
// memory for the rest of its life.
const DefaultDedupeMaxAge = 5 * time.Minute

// Server serves a billboard.Board over HTTP.
type Server struct {
	board  *billboard.Board
	mux    *http.ServeMux
	dedupe *dedupe

	// jsonOnly pins the server to the JSON codec: binary request bodies
	// are answered 415 and replies are JSON regardless of Accept. See
	// WithJSONOnly.
	jsonOnly bool
	// wireIns holds the per-endpoint wire instruments (bytes in/out,
	// encode/decode latency), resolved once at registration; entries are
	// the zero no-op Instruments when telemetry is off.
	wireIns map[string]wire.Instruments

	tel          *telemetry.Registry
	dedupeHits   *telemetry.Counter
	dedupeApply  *telemetry.Counter
	noIDRequests *telemetry.Counter
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithDedupeWindow sets how many request ids the idempotency window
// retains (default DefaultDedupeWindow). Zero disables deduplication;
// size the window to cover at least the mutations in flight during one
// client retry storm, or a very delayed retry could be re-applied.
func WithDedupeWindow(n int) ServerOption {
	return func(s *Server) {
		maxAge := s.dedupe.maxAge
		s.dedupe = newDedupe(n)
		s.dedupe.maxAge = maxAge // order-independent with WithDedupeMaxAge
	}
}

// WithDedupeMaxAge sets how long an applied request id is retained for
// deduplication (default DefaultDedupeMaxAge). Zero or negative
// disables age eviction, leaving only the count cap. Size it to cover
// the slowest retry the client schedule can produce; an id evicted by
// age re-applies on a later retry.
func WithDedupeMaxAge(age time.Duration) ServerOption {
	return func(s *Server) { s.dedupe.maxAge = age }
}

// WithJSONOnly pins the server to the JSON codec: binary request
// bodies are rejected with 415 (which binary-configured clients treat
// as "fall back to JSON"), and every reply is JSON regardless of the
// Accept header. This is the operator escape hatch for a mixed-codec
// fleet — a shard can be pinned while the rest speak binary, and
// clients keep working against both (see DESIGN.md §15).
func WithJSONOnly() ServerOption {
	return func(s *Server) { s.jsonOnly = true }
}

// WithTelemetry attaches a telemetry registry: per-endpoint request
// counters ("netboard.server.requests.<path>") and latency histograms
// ("netboard.server.latency_ns.<path>"), dedupe hit/apply counters,
// and the /debug/telemetry endpoints (JSON, plus Prometheus text at
// /debug/telemetry/prometheus). The registry is shared — attach the
// same one to the board via Board.SetTelemetry to serve its counters
// from the same endpoint.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.tel = reg }
}

// NewServer wraps board in an HTTP handler.
func NewServer(board *billboard.Board, opts ...ServerOption) *Server {
	s := &Server{
		board:   board,
		mux:     http.NewServeMux(),
		dedupe:  newDedupe(DefaultDedupeWindow),
		wireIns: make(map[string]wire.Instruments),
	}
	for _, o := range opts {
		o(s)
	}
	if s.tel != nil {
		s.dedupeHits = s.tel.Counter("netboard.server.dedupe.hits")
		s.dedupeApply = s.tel.Counter("netboard.server.dedupe.applied")
		s.noIDRequests = s.tel.Counter("netboard.server.dedupe.no_id")
		s.mux.HandleFunc(PathTelemetry, s.readOnly(s.handleTelemetry))
		s.mux.HandleFunc(PathTelemetryProm, s.readOnly(s.handleTelemetryProm))
	}
	s.handle(PathProbe, s.handleProbe)
	s.handle(PathProbedObjects, s.readOnly(s.handleProbedObjects))
	s.handle(PathVector, s.handleVector)
	s.handle(PathPostings, s.readOnly(s.handlePostings))
	s.handle(PathVotes, s.readOnly(s.handleVotes))
	s.handle(PathValues, s.handleValues)
	s.handle(PathValuePostings, s.readOnly(s.handleValuePostings))
	s.handle(PathValueVotes, s.readOnly(s.handleValueVotes))
	s.handle(PathDropTopic, s.handleDropTopic)
	s.handle(PathStats, s.readOnly(s.handleStats))
	s.handle(PathBatchProbes, s.handleBatchProbes)
	s.handle(PathBatchLookups, s.readOnly(s.handleBatchLookups))
	s.handle(PathTopicSnapshot, s.readOnly(s.handleTopicSnapshot))
	s.handle(PathTopics, s.readOnly(s.handleTopics))
	s.handle(PathClearProbes, s.handleClearProbes)
	s.handle(PathQuiesce, s.readOnly(s.handleQuiesce))
	s.handle(PathDropTopicIf, s.handleDropTopicIf)
	return s
}

// handle registers h, wrapped with the per-endpoint request counter and
// latency histogram when telemetry is attached. Instruments are
// resolved once at registration; the per-request cost is two atomic
// updates.
func (s *Server) handle(path string, h http.HandlerFunc) {
	s.wireIns[path] = wire.NewInstruments(s.tel, "netboard.server", path)
	if s.tel != nil {
		reqs := s.tel.Counter("netboard.server.requests." + path)
		lat := s.tel.Histogram("netboard.server.latency_ns."+path, telemetry.LatencyBuckets())
		inner := h
		h = func(w http.ResponseWriter, r *http.Request) {
			reqs.Inc()
			start := time.Now()
			inner(w, r)
			lat.ObserveSince(start)
		}
	}
	s.mux.HandleFunc(path, h)
}

// handleTelemetry serves the registry snapshot as JSON.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tel.WriteJSON(w)
}

// handleTelemetryProm serves the registry snapshot in the Prometheus
// text exposition format.
func (s *Server) handleTelemetryProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.WritePrometheus(w)
}

// ServeHTTP implements http.Handler. It is the protocol-version seam:
// every response is stamped with "Tellme-Proto: 1" (the client refuses
// to decode 2xx responses without it), and a request carrying a
// *different* version is rejected with 400 before any handler runs. A
// request without the header is served — curl and older clients keep
// working; only an explicit mismatch is an error.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(HeaderProto, ProtoVersion)
	if got := r.Header.Get(HeaderProto); got != "" && got != ProtoVersion {
		http.Error(w, fmt.Sprintf("protocol version mismatch: client speaks %s=%s, server speaks %s", HeaderProto, got, ProtoVersion), http.StatusBadRequest)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// readOnly enforces GET on read handlers, mirroring readJSON's POST
// check on the mutating ones.
func (s *Server) readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// apply runs a validated mutation through the idempotency window and
// acknowledges it. A replayed request id is acknowledged identically
// without re-applying.
func (s *Server) apply(w http.ResponseWriter, r *http.Request, mutate func()) {
	id := r.Header.Get(HeaderRequestID)
	if id == "" {
		s.noIDRequests.Inc()
	}
	if s.dedupe.Do(id, mutate) {
		s.dedupeApply.Inc()
	} else {
		s.dedupeHits.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeReply encodes v per the request's Accept header (JSON unless the
// client asked for binary and the server is not jsonOnly) and writes it
// with the matching Content-Type. JSON replies are byte-identical to
// the pre-codec json.Encoder output.
func (s *Server) writeReply(w http.ResponseWriter, r *http.Request, path string, v wire.Message) {
	wire.WriteReply(w, r, v, s.jsonOnly, s.wireIns[path])
}

// decodeBody decodes a request body per its Content-Type — binary
// bodies through the binary codec (415 when jsonOnly), everything else
// as JSON — answering 415/400 itself on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, path string, v wire.Message) bool {
	if status, err := wire.DecodeRequest(r, v, s.jsonOnly, s.wireIns[path]); status != 0 {
		http.Error(w, err.Error(), status)
		return false
	}
	return true
}

// readBody is decodeBody plus the POST method check every mutating
// endpoint shares (the codec-aware successor of the old readJSON).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, path string, v wire.Message) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	return s.decodeBody(w, r, path, v)
}

// playerParam parses the player query parameter and validates range.
func (s *Server) playerParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	p, err := strconv.Atoi(r.URL.Query().Get("player"))
	if err != nil || p < 0 || p >= s.board.N() {
		http.Error(w, "invalid player", http.StatusBadRequest)
		return 0, false
	}
	return p, true
}

// topicParam rejects the empty topic name: every topic endpoint would
// otherwise silently operate on the "" topic, which no algorithm uses —
// an empty name is always a malformed client.
func topicParam(w http.ResponseWriter, topic string) bool {
	if topic == "" {
		http.Error(w, "empty topic", http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) validPlayer(w http.ResponseWriter, player int) bool {
	if player < 0 || player >= s.board.N() {
		http.Error(w, "invalid player", http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) validPlayerObject(w http.ResponseWriter, player, object int) bool {
	if !s.validPlayer(w, player) {
		return false
	}
	if object < 0 || object >= s.board.M() {
		http.Error(w, "invalid object", http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req probePost
		if !s.decodeBody(w, r, PathProbe, &req) {
			return
		}
		if !s.validPlayerObject(w, req.Player, req.Object) {
			return
		}
		if req.Value > 1 {
			http.Error(w, "grade must be 0 or 1", http.StatusBadRequest)
			return
		}
		s.apply(w, r, func() { s.board.PostProbe(req.Player, req.Object, req.Value) })
	case http.MethodGet:
		p, ok := s.playerParam(w, r)
		if !ok {
			return
		}
		o, err := strconv.Atoi(r.URL.Query().Get("object"))
		if err != nil || o < 0 || o >= s.board.M() {
			http.Error(w, "invalid object", http.StatusBadRequest)
			return
		}
		v, found := s.board.LookupProbe(p, o)
		s.writeReply(w, r, PathProbe, &probeReply{Value: v, OK: found})
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleBatchProbes(w http.ResponseWriter, r *http.Request) {
	var req batchProbesPost
	if !s.readBody(w, r, PathBatchProbes, &req) {
		return
	}
	if !s.validPlayer(w, req.Player) {
		return
	}
	if len(req.Grades) != len(req.Objects) {
		http.Error(w, fmt.Sprintf("%d grades for %d objects", len(req.Grades), len(req.Objects)), http.StatusBadRequest)
		return
	}
	grades := make([]byte, len(req.Objects))
	for k, o := range req.Objects {
		if o < 0 || o >= s.board.M() {
			http.Error(w, "invalid object", http.StatusBadRequest)
			return
		}
		switch req.Grades[k] {
		case '0':
			grades[k] = 0
		case '1':
			grades[k] = 1
		default:
			http.Error(w, "grade must be 0 or 1", http.StatusBadRequest)
			return
		}
	}
	s.apply(w, r, func() { s.board.PostProbes(req.Player, req.Objects, grades) })
}

func (s *Server) handleBatchLookups(w http.ResponseWriter, r *http.Request) {
	p, ok := s.playerParam(w, r)
	if !ok {
		return
	}
	raw := r.URL.Query().Get("objects")
	if raw == "" {
		http.Error(w, "missing objects", http.StatusBadRequest)
		return
	}
	parts := strings.Split(raw, ",")
	objs := make([]int, len(parts))
	for k, part := range parts {
		o, err := strconv.Atoi(part)
		if err != nil || o < 0 || o >= s.board.M() {
			http.Error(w, "invalid object", http.StatusBadRequest)
			return
		}
		objs[k] = o
	}
	grades := make([]byte, len(objs))
	known := make([]bool, len(objs))
	s.board.LookupProbes(p, objs, grades, known)
	gw := make([]byte, len(objs))
	for k := range objs {
		switch {
		case !known[k]:
			gw[k] = '?'
		case grades[k] != 0:
			gw[k] = '1'
		default:
			gw[k] = '0'
		}
	}
	s.writeReply(w, r, PathBatchLookups, &batchLookupsReply{Grades: string(gw)})
}

func (s *Server) handleProbedObjects(w http.ResponseWriter, r *http.Request) {
	p, ok := s.playerParam(w, r)
	if !ok {
		return
	}
	reply := probedObjectsReply{Objects: []objGrade{}}
	s.board.ForEachProbe(p, func(o int, g byte) {
		reply.Objects = append(reply.Objects, objGrade{Object: o, Grade: g})
	})
	s.writeReply(w, r, PathProbedObjects, &reply)
}

func (s *Server) handleVector(w http.ResponseWriter, r *http.Request) {
	var req vectorPost
	if !s.readBody(w, r, PathVector, &req) {
		return
	}
	if !topicParam(w, req.Topic) || !s.validPlayer(w, req.Player) {
		return
	}
	// Vector validation happened at decode time: the JSON form rejects
	// malformed '0'/'1'/'?' strings in Bits.UnmarshalJSON, the binary
	// form clamps planes to the invariant in PartialFromPlanes.
	s.apply(w, r, func() { s.board.Post(req.Topic, req.Player, req.Bits.P) })
}

func (s *Server) handlePostings(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	postings := s.board.Postings(topic)
	out := make(postingList, len(postings))
	for i, p := range postings {
		out[i] = postingJSON{Player: p.Player, Bits: wire.Bits{P: p.Vec}}
	}
	s.writeReply(w, r, PathPostings, &out)
}

func (s *Server) handleVotes(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	out := votesToWire(s.board.Votes(topic))
	s.writeReply(w, r, PathVotes, &out)
}

func votesToWire(votes []billboard.Vote) voteList {
	out := make(voteList, len(votes))
	for i, v := range votes {
		out[i] = voteJSON{Bits: wire.Bits{P: v.Vec}, Count: v.Count, Voters: v.Voters}
	}
	return out
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	var req valuesPost
	if !s.readBody(w, r, PathValues, &req) {
		return
	}
	if !topicParam(w, req.Topic) || !s.validPlayer(w, req.Player) {
		return
	}
	s.apply(w, r, func() { s.board.PostValues(req.Topic, req.Player, req.Vals) })
}

func (s *Server) handleValuePostings(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	postings := s.board.ValuePostings(topic)
	out := make(valuePostingList, len(postings))
	for i, p := range postings {
		out[i] = valuePostingJSON{Player: p.Player, Vals: p.Vals}
	}
	s.writeReply(w, r, PathValuePostings, &out)
}

func (s *Server) handleValueVotes(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	out := valueVotesToWire(s.board.ValueVotes(topic))
	s.writeReply(w, r, PathValueVotes, &out)
}

func valueVotesToWire(votes []billboard.ValueVote) valueVoteList {
	out := make(valueVoteList, len(votes))
	for i, v := range votes {
		out[i] = valueVoteJSON{Vals: v.Vals, Count: v.Count, Voters: v.Voters}
	}
	return out
}

func (s *Server) handleTopicSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	topic := q.Get("topic")
	if !topicParam(w, topic) {
		return
	}
	// Absent/garbled stamps parse as 0; no topic generation is ever 0,
	// so that always misses and returns the full snapshot.
	sinceGen, _ := strconv.ParseUint(q.Get("gen"), 10, 64)
	sinceEpoch, _ := strconv.ParseUint(q.Get("epoch"), 10, 64)
	gen, epoch, unchanged, votes, valVotes := s.board.TopicSnapshot(topic, sinceGen, sinceEpoch)
	reply := topicSnapshotReply{Gen: gen, Epoch: epoch, Unchanged: unchanged}
	if !unchanged {
		reply.Votes = votesToWire(votes)
		reply.ValueVotes = valueVotesToWire(valVotes)
	}
	s.writeReply(w, r, PathTopicSnapshot, &reply)
}

func (s *Server) handleDropTopic(w http.ResponseWriter, r *http.Request) {
	var req dropPost
	if !s.readBody(w, r, PathDropTopic, &req) {
		return
	}
	if !topicParam(w, req.Topic) {
		return
	}
	s.apply(w, r, func() { s.board.DropTopic(req.Topic) })
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	s.writeReply(w, r, PathTopics, &topicsReply{Topics: s.board.Topics()})
}

// handleClearProbes is the reshard/drain admin mutation: it clears the
// given probe results after they were replayed onto their new owner
// shard. Idempotent like every mutation (a retry with the same request
// id is acknowledged without re-applying), and clearing an object the
// player never probed is a no-op, so a retried clear that partially
// applied converges.
func (s *Server) handleClearProbes(w http.ResponseWriter, r *http.Request) {
	var req clearProbesPost
	if !s.readBody(w, r, PathClearProbes, &req) {
		return
	}
	if !s.validPlayer(w, req.Player) {
		return
	}
	for _, o := range req.Objects {
		if o < 0 || o >= s.board.M() {
			http.Error(w, "invalid object", http.StatusBadRequest)
			return
		}
	}
	s.apply(w, r, func() { s.board.ClearProbes(req.Player, req.Objects) })
}

// handleQuiesce blocks until every mutation the server has started
// applying has finished, then acknowledges. A drain calls this before
// snapshotting the donor so a post whose response was lost in the
// network — applied here, client still retrying — is visible to the
// snapshot instead of committing into the copy-then-drop gap.
func (s *Server) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	s.dedupe.Quiesce()
	s.writeReply(w, r, PathQuiesce, &quiesceReply{Idle: true})
}

// handleDropTopicIf is the drain's conditional drop: remove the topic
// only if its posting counts still match what the caller replayed. The
// outcome is not reported (see dropIfPost); callers re-read the topic.
func (s *Server) handleDropTopicIf(w http.ResponseWriter, r *http.Request) {
	var req dropIfPost
	if !s.readBody(w, r, PathDropTopicIf, &req) {
		return
	}
	if !topicParam(w, req.Topic) {
		return
	}
	if req.Vectors < 0 || req.Values < 0 {
		http.Error(w, "negative posting count", http.StatusBadRequest)
		return
	}
	s.apply(w, r, func() { s.board.DropTopicIf(req.Topic, req.Vectors, req.Values) })
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeReply(w, r, PathStats, &statsReply{
		ProbeCount:      s.board.ProbeCount(),
		VectorPostCount: s.board.VectorPostCount(),
		TopicCount:      s.board.TopicCount(),
		N:               s.board.N(),
		M:               s.board.M(),
	})
}
