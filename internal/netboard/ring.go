package netboard

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// shard. 128 points per shard keeps the worst-case load skew across
// 1–16 shards within a few percent of uniform for topic-name-sized key
// populations (see ring_test.go's skew bound) while the whole ring
// stays small enough that rebuilding it on a topology change is
// trivially cheap.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring mapping string keys (topic names,
// probe-object keys) to shard indices. Each shard owns VirtualNodes
// points on a 64-bit hash circle; a key belongs to the shard owning
// the first point at or clockwise of the key's hash. The map is a pure
// function of (shard names, vnode count): two processes that build the
// ring from the same cluster spec route every key identically, which
// is what lets independent clients — and a reshard comparing an old
// and a new ring — agree on ownership without coordination.
//
// The zero value is unusable; build rings with newRing. Rings are
// immutable after construction and safe for concurrent readers.
type Ring struct {
	vnodes int
	names  []string // shard names in insertion order; index = shard index
	points []ringPoint
}

// ringPoint is one virtual node: a position on the hash circle and the
// index of the shard owning it.
type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds a ring over the named shards (typically base URLs)
// with the given virtual-node count (<=0 means DefaultVirtualNodes).
// Shard order defines shard indices; names must be distinct.
func newRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		vnodes: vnodes,
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			// Vnode key: "<name>#<v>". Hashing the name+ordinal (rather
			// than rehashing the previous point) keeps every vnode's
			// position independent of the other shards, which is what
			// makes movement on add/remove minimal.
			h := fnv.New64a()
			h.Write([]byte(name))
			h.Write([]byte{'#'})
			h.Write(strconv.AppendInt(nil, int64(v), 10))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by shard index so the
		// ring order is still a pure function of the spec.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// Owner returns the index of the shard owning key.
func (r *Ring) Owner(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return r.ownerOfHash(mix64(h.Sum64()))
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a is too linear for ring
// positions: keys differing only in a trailing ordinal hash to values
// whose differences are small multiples of the FNV prime, so one
// shard's virtual nodes land in near-arithmetic progressions and the
// load skew blows up. The finalizer's shift-xor-multiply cascade
// destroys that structure while staying a pure function of the key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *Ring) ownerOfHash(hash uint64) int {
	i := sort.Search(len(r.points), func(k int) bool { return r.points[k].hash >= hash })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the first
	}
	return r.points[i].shard
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return len(r.names) }

// Name returns the name (base URL) of shard i.
func (r *Ring) Name(i int) string { return r.names[i] }
