// Package netboard exposes a billboard over HTTP, turning the paper's
// shared billboard into an actual service: a Server wraps an in-memory
// billboard.Board, and a Client implements billboard.Interface against
// it, so the unchanged algorithm code runs with players and board in
// different processes.
//
// The wire format is JSON. Vectors travel as their '0'/'1'/'?' string
// form (debuggable with curl); value vectors as plain arrays. The
// protocol is a research transport, not a hardened API: there is no
// authentication, and the Client converts transport errors into panics
// (configurable via OnError) because billboard.Interface is error-free
// by design — the in-memory board cannot fail, and the algorithms treat
// the billboard as reliable shared memory exactly as the model does.
package netboard

// Paths of the HTTP endpoints.
const (
	PathProbe         = "/v1/probe"          // POST: post a probe result; GET: look one up
	PathProbedObjects = "/v1/probed-objects" // GET: all of one player's probe results
	PathVector        = "/v1/vector"         // POST: post a partial vector
	PathPostings      = "/v1/postings"       // GET: vector postings of a topic
	PathVotes         = "/v1/votes"          // GET: tallied vector votes of a topic
	PathValues        = "/v1/values"         // POST: post a value vector
	PathValuePostings = "/v1/value-postings" // GET: value postings of a topic
	PathValueVotes    = "/v1/value-votes"    // GET: tallied value votes of a topic
	PathDropTopic     = "/v1/drop-topic"     // POST: delete a topic
	PathStats         = "/v1/stats"          // GET: counters
)

// probePost is the POST body for PathProbe.
type probePost struct {
	Player int  `json:"player"`
	Object int  `json:"object"`
	Value  byte `json:"value"`
}

// probeReply answers a PathProbe GET.
type probeReply struct {
	Value byte `json:"value"`
	OK    bool `json:"ok"`
}

// probedObjectsReply answers PathProbedObjects; pairs of (object, grade).
type probedObjectsReply struct {
	Objects []objGrade `json:"objects"`
}

type objGrade struct {
	Object int  `json:"object"`
	Grade  byte `json:"grade"`
}

// vectorPost is the POST body for PathVector.
type vectorPost struct {
	Topic  string `json:"topic"`
	Player int    `json:"player"`
	Bits   string `json:"bits"` // '0'/'1'/'?' string form of the Partial
}

// postingJSON is one vector posting in replies.
type postingJSON struct {
	Player int    `json:"player"`
	Bits   string `json:"bits"`
}

// voteJSON is one tallied vector vote in replies.
type voteJSON struct {
	Bits   string `json:"bits"`
	Count  int    `json:"count"`
	Voters []int  `json:"voters"`
}

// valuesPost is the POST body for PathValues.
type valuesPost struct {
	Topic  string   `json:"topic"`
	Player int      `json:"player"`
	Vals   []uint32 `json:"vals"`
}

// valuePostingJSON is one value posting in replies.
type valuePostingJSON struct {
	Player int      `json:"player"`
	Vals   []uint32 `json:"vals"`
}

// valueVoteJSON is one tallied value vote in replies.
type valueVoteJSON struct {
	Vals   []uint32 `json:"vals"`
	Count  int      `json:"count"`
	Voters []int    `json:"voters"`
}

// dropPost is the POST body for PathDropTopic.
type dropPost struct {
	Topic string `json:"topic"`
}

// statsReply answers PathStats.
type statsReply struct {
	ProbeCount      int64 `json:"probeCount"`
	VectorPostCount int64 `json:"vectorPostCount"`
	TopicCount      int   `json:"topicCount"`
	N               int   `json:"n"`
	M               int   `json:"m"`
}
