// Package netboard exposes a billboard over HTTP, turning the paper's
// shared billboard into an actual service: a Server wraps an in-memory
// billboard.Board, and a Client implements billboard.Interface against
// it, so the unchanged algorithm code runs with players and board in
// different processes.
//
// The wire format is JSON. Vectors travel as their '0'/'1'/'?' string
// form (debuggable with curl); value vectors as plain arrays. There is
// no authentication, but the transport is built to survive a faulty
// network (see DESIGN.md §8 for the full wire contract):
//
//   - Batching: /v1/batch/probes posts a whole set of probe results in
//     one request, /v1/batch/lookups reads one, and /v1/topic-snapshot
//     returns a topic's vote tallies stamped with the board's
//     (generation, epoch) pair so clients re-download tallies only when
//     the topic actually changed.
//   - Idempotency: every mutating request carries a client-generated
//     request id (HeaderRequestID); the server deduplicates ids inside a
//     sliding window, so a retry of a request whose response was lost is
//     applied exactly once.
//   - Failure handling: the Client retries transient failures with
//     linear backoff and routes terminal errors to OnError, which
//     defaults to panicking because billboard.Interface is error-free by
//     design; a non-panicking OnError puts the client in degraded mode
//     (see Client.Err).
package netboard

import "tellme/internal/wire"

// Paths of the HTTP endpoints.
const (
	PathProbe         = "/v1/probe"          // POST: post a probe result; GET: look one up
	PathProbedObjects = "/v1/probed-objects" // GET: all of one player's probe results
	PathVector        = "/v1/vector"         // POST: post a partial vector
	PathPostings      = "/v1/postings"       // GET: vector postings of a topic
	PathVotes         = "/v1/votes"          // GET: tallied vector votes of a topic
	PathValues        = "/v1/values"         // POST: post a value vector
	PathValuePostings = "/v1/value-postings" // GET: value postings of a topic
	PathValueVotes    = "/v1/value-votes"    // GET: tallied value votes of a topic
	PathDropTopic     = "/v1/drop-topic"     // POST: delete a topic
	PathStats         = "/v1/stats"          // GET: counters
	PathBatchProbes   = "/v1/batch/probes"   // POST: post many probe results at once
	PathBatchLookups  = "/v1/batch/lookups"  // GET: look up many probe results at once
	PathTopicSnapshot = "/v1/topic-snapshot" // GET: epoch-tagged vote tallies of a topic
	PathTopics        = "/v1/topics"         // GET: names of all live topics (drain enumeration)

	// Admin endpoints used by the cluster reshard/drain path.
	// clear-probes removes a player's probe results for a set of objects
	// after they have been replayed onto the objects' new owner shard.
	// quiesce blocks until every mutation the server has started
	// applying is finished (so a subsequent read sees it). drop-topic-if
	// drops a topic only if its posting counts still match what the
	// drain replayed — the conditional that keeps a straggler's late
	// commit from vanishing with the drop.
	PathClearProbes = "/v1/admin/clear-probes"  // POST: clear probe results
	PathQuiesce     = "/v1/admin/quiesce"       // GET: wait out in-flight mutations
	PathDropTopicIf = "/v1/admin/drop-topic-if" // POST: conditional topic drop

	// Telemetry endpoints, registered only when the server was built
	// with WithTelemetry.
	PathTelemetry     = "/debug/telemetry"            // GET: registry snapshot as JSON
	PathTelemetryProm = "/debug/telemetry/prometheus" // GET: Prometheus text format
)

// HeaderRequestID carries the client-generated idempotency key of a
// mutating request. The server applies each id at most once within its
// dedupe window; a retried request with the same id is acknowledged
// without being re-applied. Requests without the header are applied
// unconditionally (curl-friendly, at the caller's own retry risk).
const HeaderRequestID = "Tellme-Request-Id"

// HeaderProto makes the wire protocol version explicit. The client
// stamps every request with it and the server rejects a mismatched
// version with 400 before touching any handler; the server stamps every
// response and the client refuses to decode a 2xx response without the
// right stamp (a typed *ProtoError instead of garbage), so a Cluster
// pointed at something that is not a tellme billboard of this protocol
// generation fails fast and loud.
const (
	HeaderProto  = "Tellme-Proto"
	ProtoVersion = "1"
)

// probePost is the POST body for PathProbe.
type probePost struct {
	Player int  `json:"player"`
	Object int  `json:"object"`
	Value  byte `json:"value"`
}

// probeReply answers a PathProbe GET.
type probeReply struct {
	Value byte `json:"value"`
	OK    bool `json:"ok"`
}

// probedObjectsReply answers PathProbedObjects; pairs of (object, grade).
type probedObjectsReply struct {
	Objects []objGrade `json:"objects"`
}

type objGrade struct {
	Object int  `json:"object"`
	Grade  byte `json:"grade"`
}

// vectorPost is the POST body for PathVector.
type vectorPost struct {
	Topic  string    `json:"topic"`
	Player int       `json:"player"`
	Bits   wire.Bits `json:"bits"` // '0'/'1'/'?' string in JSON, packed planes in binary
}

// postingJSON is one vector posting in replies.
type postingJSON struct {
	Player int       `json:"player"`
	Bits   wire.Bits `json:"bits"`
}

// postingList is the PathPostings reply body.
type postingList []postingJSON

// voteJSON is one tallied vector vote in replies.
type voteJSON struct {
	Bits   wire.Bits `json:"bits"`
	Count  int       `json:"count"`
	Voters []int     `json:"voters"`
}

// voteList is the PathVotes reply body (and the Votes field of a topic
// snapshot).
type voteList []voteJSON

// valuesPost is the POST body for PathValues.
type valuesPost struct {
	Topic  string   `json:"topic"`
	Player int      `json:"player"`
	Vals   []uint32 `json:"vals"`
}

// valuePostingJSON is one value posting in replies.
type valuePostingJSON struct {
	Player int      `json:"player"`
	Vals   []uint32 `json:"vals"`
}

// valuePostingList is the PathValuePostings reply body.
type valuePostingList []valuePostingJSON

// valueVoteJSON is one tallied value vote in replies.
type valueVoteJSON struct {
	Vals   []uint32 `json:"vals"`
	Count  int      `json:"count"`
	Voters []int    `json:"voters"`
}

// valueVoteList is the PathValueVotes reply body (and the ValueVotes
// field of a topic snapshot).
type valueVoteList []valueVoteJSON

// dropPost is the POST body for PathDropTopic.
type dropPost struct {
	Topic string `json:"topic"`
}

// batchProbesPost is the POST body for PathBatchProbes: grades[k] (a
// '0'/'1' character, same alphabet as the vector wire form) is the
// player's grade for objects[k]. Objects must be distinct and in range.
type batchProbesPost struct {
	Player  int    `json:"player"`
	Objects []int  `json:"objects"`
	Grades  string `json:"grades"`
}

// batchLookupsReply answers PathBatchLookups
// (GET ?player=P&objects=o1,o2,...): one '0'/'1'/'?' character per
// requested object, '?' meaning "not posted".
type batchLookupsReply struct {
	Grades string `json:"grades"`
}

// topicSnapshotReply answers PathTopicSnapshot
// (GET ?topic=T[&gen=G&epoch=E]). Gen/Epoch stamp the topic's current
// content. When the caller's gen/epoch query already matches, Unchanged
// is true and the tallies are omitted — the caller keeps what it
// fetched at that stamp; otherwise both tallies are included.
type topicSnapshotReply struct {
	Gen        uint64        `json:"gen"`
	Epoch      uint64        `json:"epoch"`
	Unchanged  bool          `json:"unchanged,omitempty"`
	Votes      voteList      `json:"votes,omitempty"`
	ValueVotes valueVoteList `json:"valueVotes,omitempty"`
}

// topicsReply answers PathTopics: all live topic names, sorted.
type topicsReply struct {
	Topics []string `json:"topics"`
}

// clearProbesPost is the POST body for PathClearProbes.
type clearProbesPost struct {
	Player  int   `json:"player"`
	Objects []int `json:"objects"`
}

// quiesceReply answers PathQuiesce once the server is idle.
type quiesceReply struct {
	Idle bool `json:"idle"`
}

// dropIfPost is the POST body for PathDropTopicIf: drop Topic only if
// it holds exactly Vectors vector postings and Values value postings.
// The caller verifies the outcome by re-reading the topic (the 204
// acknowledgement deliberately carries no result: a deduplicated retry
// could not reproduce it).
type dropIfPost struct {
	Topic   string `json:"topic"`
	Vectors int    `json:"vectors"`
	Values  int    `json:"values"`
}

// statsReply answers PathStats.
type statsReply struct {
	ProbeCount      int64 `json:"probeCount"`
	VectorPostCount int64 `json:"vectorPostCount"`
	TopicCount      int   `json:"topicCount"`
	N               int   `json:"n"`
	M               int   `json:"m"`
}
