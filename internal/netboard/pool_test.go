package netboard

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/telemetry"
)

func TestConfigPoolKnobDefaults(t *testing.T) {
	n := Config{}.normalized()
	if n.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d, want %d", n.MaxIdleConnsPerHost, DefaultMaxIdleConnsPerHost)
	}
	if n.MaxConnsPerHost != 0 {
		t.Fatalf("MaxConnsPerHost = %d, want 0 (unlimited)", n.MaxConnsPerHost)
	}
	if n.IdleConnTimeout != DefaultIdleConnTimeout {
		t.Fatalf("IdleConnTimeout = %v, want %v", n.IdleConnTimeout, DefaultIdleConnTimeout)
	}
	n = Config{MaxIdleConnsPerHost: -3, MaxConnsPerHost: -1, IdleConnTimeout: -time.Second}.normalized()
	if n.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost || n.MaxConnsPerHost != 0 || n.IdleConnTimeout != DefaultIdleConnTimeout {
		t.Fatalf("negative knobs not clamped: %+v", n)
	}
	n = Config{MaxIdleConnsPerHost: 7, MaxConnsPerHost: 9, IdleConnTimeout: time.Minute}.normalized()
	if n.MaxIdleConnsPerHost != 7 || n.MaxConnsPerHost != 9 || n.IdleConnTimeout != time.Minute {
		t.Fatalf("explicit knobs overridden: %+v", n)
	}
}

// TestClientUsesPooledTransport is the regression test for the
// MaxIdleConnsPerHost=2 bug: NewClient must resolve a transport with
// the load-safe pool defaults, not http.DefaultClient (whose per-host
// idle pool of 2 churns connections under fleet fan-in).
func TestClientUsesPooledTransport(t *testing.T) {
	c := NewClient("http://example.invalid")
	if c.HTTPClient == nil || c.HTTPClient == http.DefaultClient {
		t.Fatal("NewClient left the default http client in place")
	}
	tr, ok := c.HTTPClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("transport is %T, want *http.Transport", c.HTTPClient.Transport)
	}
	if tr.MaxIdleConnsPerHost != DefaultMaxIdleConnsPerHost {
		t.Fatalf("MaxIdleConnsPerHost = %d, want %d", tr.MaxIdleConnsPerHost, DefaultMaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns != 0 {
		t.Fatalf("MaxIdleConns = %d, want 0 (per-host knob is the only limit)", tr.MaxIdleConns)
	}

	// An explicit HTTPClient is the caller's to own — no override.
	own := &http.Client{}
	c = NewClientWithConfig("http://example.invalid", Config{HTTPClient: own})
	if c.HTTPClient != own {
		t.Fatal("explicit HTTPClient replaced by the pooled builder")
	}
}

func TestClusterShardsShareOneTransport(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{Shards: []string{"http://a.invalid", "http://b.invalid", "http://c.invalid"}})
	if err != nil {
		t.Fatal(err)
	}
	first := cl.clients[0].HTTPClient
	if first == nil || first == http.DefaultClient {
		t.Fatal("shard 0 has no pooled client")
	}
	for i, c := range cl.clients {
		if c.HTTPClient != first {
			t.Fatalf("shard %d has its own http client; cluster must share one pool", i)
		}
	}
}

func TestConnAccountingCounters(t *testing.T) {
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	reg := telemetry.New()
	c := NewClientWithConfig(srv.URL, Config{Telemetry: reg})
	for i := 0; i < 5; i++ {
		c.PostProbe(0, i%8, 1)
	}
	s := reg.Snapshot()
	dialed := s.Counters[DefaultTelemetryPrefix+".conns.dialed"]
	reused := s.Counters[DefaultTelemetryPrefix+".conns.reused"]
	if dialed+reused != 5 {
		t.Fatalf("dialed %d + reused %d = %d, want 5 (one per request)", dialed, reused, dialed+reused)
	}
	if dialed < 1 {
		t.Fatalf("dialed = %d, want >= 1 (first request must dial)", dialed)
	}
	if reused < 1 {
		t.Fatalf("reused = %d, want >= 1 (sequential requests must reuse the pooled conn)", reused)
	}
}
