// Package faultnet wraps an http.RoundTripper with seeded fault
// injection — dropped requests, lost responses, duplicated deliveries,
// and added latency — so the netboard client's retry, backoff, and
// idempotency machinery can be proven correct under hostile networks
// (zero lost posts, zero double-applied posts) instead of assumed.
//
// The three fault classes map to the real failure modes of an HTTP
// transport:
//
//   - DropRequest: the request never reaches the server (connection
//     refused, SYN lost). Safe to retry blindly.
//   - DropResponse: the server processed the request but the response
//     was lost (connection reset after commit). Retrying re-delivers a
//     mutation the server already applied — the case that demands
//     request-id deduplication.
//   - Duplicate: the request is delivered twice, the second delivery
//     racing the first from another goroutine — the case that demands
//     the server's in-flight duplicate wait, not just a seen-set.
//
// All randomness comes from one seeded source behind a mutex, so a
// given seed yields a reproducible fault mix (per-request outcomes
// still interleave with goroutine scheduling). Counters report how
// many faults actually fired, letting stress tests assert they
// exercised what they claim to.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is a fault-injecting http.RoundTripper. The zero fault
// configuration forwards everything unchanged (and still counts
// requests, which makes Transport double as a request meter).
type Transport struct {
	// Inner performs real deliveries; nil means http.DefaultTransport.
	Inner http.RoundTripper

	// DropRequest is the probability a request is dropped before
	// reaching the server.
	DropRequest float64
	// DropResponse is the probability the response is lost after the
	// server fully processed the request.
	DropResponse float64
	// Duplicate is the probability a request is delivered twice; the
	// extra delivery runs concurrently and its response is discarded.
	Duplicate float64
	// MaxDelay, when positive, delays each delivery by a uniform
	// duration in [0, MaxDelay).
	MaxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	delivered  atomic.Int64
	droppedReq atomic.Int64
	lostResp   atomic.Int64
	duplicated atomic.Int64
}

// New returns a Transport over inner with the given fault seed and no
// faults enabled; set the fault fields before use.
func New(inner http.RoundTripper, seed int64) *Transport {
	return &Transport{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Delivered returns how many requests were actually handed to the
// inner transport (duplicates included, dropped requests excluded).
// With no faults configured this is exactly the number of HTTP
// requests issued through the transport.
func (t *Transport) Delivered() int64 { return t.delivered.Load() }

// DroppedRequests returns how many requests were dropped undelivered.
func (t *Transport) DroppedRequests() int64 { return t.droppedReq.Load() }

// LostResponses returns how many responses were discarded after the
// server processed the request.
func (t *Transport) LostResponses() int64 { return t.lostResp.Load() }

// Duplicated returns how many extra deliveries were injected.
func (t *Transport) Duplicated() int64 { return t.duplicated.Load() }

// roll draws the per-request fault outcomes under the lock.
func (t *Transport) roll() (dropReq, dropResp, dup bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	dropReq = t.DropRequest > 0 && t.rng.Float64() < t.DropRequest
	dropResp = t.DropResponse > 0 && t.rng.Float64() < t.DropResponse
	dup = t.Duplicate > 0 && t.rng.Float64() < t.Duplicate
	if t.MaxDelay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.MaxDelay)))
	}
	return
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	dropReq, dropResp, dup, delay := t.roll()
	if delay > 0 {
		time.Sleep(delay)
	}
	if dropReq {
		t.droppedReq.Add(1)
		return nil, fmt.Errorf("faultnet: request dropped (%s %s)", req.Method, req.URL.Path)
	}
	if dup {
		if extra := cloneRequest(req); extra != nil {
			t.duplicated.Add(1)
			go func() {
				t.delivered.Add(1)
				resp, err := t.inner().RoundTrip(extra)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
	}
	t.delivered.Add(1)
	resp, err := t.inner().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.lostResp.Add(1)
		return nil, fmt.Errorf("faultnet: response lost (%s %s)", req.Method, req.URL.Path)
	}
	return resp, nil
}

func (t *Transport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// cloneRequest deep-copies a request for an extra delivery, or returns
// nil when the body cannot be replayed (no GetBody).
func cloneRequest(req *http.Request) *http.Request {
	extra := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return extra
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	extra.Body = body
	return extra
}
