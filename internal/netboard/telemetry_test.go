package netboard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/telemetry"
)

// collectBackoffs drives nRetries failed attempts of one logical call
// through a client configured with the given jitter seed and returns the
// sleep durations the backoff requested, without actually sleeping.
func collectBackoffs(t *testing.T, seed uint64, retries int, unit time.Duration) []time.Duration {
	t.Helper()
	srv := httptest.NewServer(statusHandler{code: http.StatusInternalServerError})
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = retries
	c.RetryBackoff = unit
	c.JitterSeed = seed
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.OnError = func(error) {}
	c.PostProbe(0, 0, 1)
	return slept
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	const unit = 10 * time.Millisecond
	a := collectBackoffs(t, 7, 8, unit)
	b := collectBackoffs(t, 7, 8, unit)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("slept %d/%d times, want 8 each", len(a), len(b))
	}
	// Same seed, same sequence: the jitter is reproducible, so a failing
	// retry schedule can be replayed exactly.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	// Every wait stays inside [0.5, 1.5)·i·unit.
	distinct := map[float64]bool{}
	for i, d := range a {
		base := time.Duration(i+1) * unit
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("attempt %d slept %v, outside [%v, %v)", i+1, d, base/2, base+base/2)
		}
		distinct[float64(d)/float64(base)] = true
	}
	// The factor must actually vary — a constant multiplier would mean
	// the jitter is dead and synchronized retry storms come back.
	if len(distinct) < 2 {
		t.Fatalf("jitter factors %v never varied across 8 attempts", distinct)
	}
	// A different seed yields a different schedule (8 independent draws
	// colliding exactly is astronomically unlikely).
	c := collectBackoffs(t, 8, 8, unit)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter sequences")
	}
}

func TestBackoffZeroSeedStillJitters(t *testing.T) {
	slept := collectBackoffs(t, 0, 4, 10*time.Millisecond)
	if len(slept) != 4 {
		t.Fatalf("slept %d times, want 4", len(slept))
	}
	for i, d := range slept {
		base := time.Duration(i+1) * 10 * time.Millisecond
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("attempt %d slept %v, outside jitter bounds around %v", i+1, d, base)
		}
	}
}

// TestDebugTelemetryEndpoints serves a board with a shared registry and
// cross-checks the JSON and Prometheus exports against the board's own
// post/probe counts.
func TestDebugTelemetryEndpoints(t *testing.T) {
	reg := telemetry.New()
	board := billboard.New(4, 16)
	board.SetTelemetry(reg)
	srv := httptest.NewServer(NewServer(board, WithTelemetry(reg)))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Telemetry = reg

	c.PostProbe(0, 3, 1)
	c.PostProbe(1, 5, 0)
	c.PostProbe(2, 7, 1)
	p, _ := bitvec.PartialFromString("01?1" + strings.Repeat("?", 12))
	c.Post("zr#1", 0, p)
	c.Post("zr#1", 1, p)
	if _, ok := c.LookupProbe(0, 3); !ok {
		t.Fatal("lookup failed")
	}

	resp, err := http.Get(srv.URL + PathTelemetry)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding %s: %v", PathTelemetry, err)
	}

	// The board-side counters must agree with the board's own counts.
	if got, want := snap.Counters["billboard.probe.posts"], board.ProbeCount(); got != want {
		t.Fatalf("billboard.probe.posts = %d, board.ProbeCount() = %d", got, want)
	}
	if got, want := snap.Counters["billboard.vector.posts"], board.VectorPostCount(); got != want {
		t.Fatalf("billboard.vector.posts = %d, board.VectorPostCount() = %d", got, want)
	}
	if got := snap.Counters["billboard.posts.zr"]; got != 2 {
		t.Fatalf("billboard.posts.zr = %d, want 2", got)
	}
	// Server-side: three probe posts went through PathProbe, and the two
	// vector posts through PathVector; the lookup hits PathProbe too.
	if got := snap.Counters["netboard.server.requests."+PathProbe]; got != 4 {
		t.Fatalf("server %s requests = %d, want 4 (3 posts + 1 lookup)", PathProbe, got)
	}
	if got := snap.Counters["netboard.server.requests."+PathVector]; got != 2 {
		t.Fatalf("server %s requests = %d, want 2", PathVector, got)
	}
	// Client-side mirrors: same logical calls, counted per path.
	if got := snap.Counters["netboard.client.requests."+PathProbe]; got != 4 {
		t.Fatalf("client %s requests = %d, want 4", PathProbe, got)
	}
	// Every applied mutation passed the dedupe window exactly once, with
	// an id, and none were replays.
	if got := snap.Counters["netboard.server.dedupe.applied"]; got != 5 {
		t.Fatalf("dedupe.applied = %d, want 5 (3 probes + 2 vector posts)", got)
	}
	if got := snap.Counters["netboard.server.dedupe.hits"]; got != 0 {
		t.Fatalf("dedupe.hits = %d, want 0", got)
	}
	if got := snap.Counters["netboard.server.dedupe.no_id"]; got != 0 {
		t.Fatalf("dedupe.no_id = %d, want 0", got)
	}
	// Latency histograms observed one sample per request.
	h, ok := snap.Histograms["netboard.server.latency_ns."+PathProbe]
	if !ok || h.Count != 4 {
		t.Fatalf("server latency histogram for %s: ok=%v count=%d, want 4", PathProbe, ok, h.Count)
	}

	// Prometheus text form of the same registry.
	resp2, err := http.Get(srv.URL + PathTelemetryProm)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasPrefix(resp2.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("prometheus Content-Type = %q", resp2.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"tellme_billboard_probe_posts 3",
		"tellme_billboard_vector_posts 2",
		"# TYPE tellme_netboard_server_latency_ns__v1_probe histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

// TestDedupeHitCounter replays one request id and expects exactly one
// dedupe hit on the server counter.
func TestDedupeHitCounter(t *testing.T) {
	reg := telemetry.New()
	board := billboard.New(2, 8)
	srv := httptest.NewServer(NewServer(board, WithTelemetry(reg)))
	defer srv.Close()

	post := func(id string) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+PathProbe, strings.NewReader(`{"player":0,"object":1,"value":1}`))
		req.Header.Set("Content-Type", "application/json")
		if id != "" {
			req.Header.Set(HeaderRequestID, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post("dup-1")
	post("dup-1") // replay
	post("")      // no id: applied unconditionally

	snap := reg.Snapshot()
	if got := snap.Counters["netboard.server.dedupe.hits"]; got != 1 {
		t.Fatalf("dedupe.hits = %d, want 1", got)
	}
	if got := snap.Counters["netboard.server.dedupe.applied"]; got != 2 {
		t.Fatalf("dedupe.applied = %d, want 2", got)
	}
	if got := snap.Counters["netboard.server.dedupe.no_id"]; got != 1 {
		t.Fatalf("dedupe.no_id = %d, want 1", got)
	}
	if got := snap.Counters["netboard.server.requests."+PathProbe]; got != 3 {
		t.Fatalf("server %s requests = %d, want 3", PathProbe, got)
	}
}

// TestClientRetryCounter checks that each backoff wait bumps the
// client-side retry counter.
func TestClientRetryCounter(t *testing.T) {
	srv := httptest.NewServer(statusHandler{code: http.StatusInternalServerError})
	defer srv.Close()
	reg := telemetry.New()
	c := NewClient(srv.URL)
	c.Telemetry = reg
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	c.sleep = func(time.Duration) {}
	c.OnError = func(error) {}
	c.PostProbe(0, 0, 1)
	if got := reg.Snapshot().Counters["netboard.client.retries"]; got != 3 {
		t.Fatalf("netboard.client.retries = %d, want 3", got)
	}
}
