package netboard

import (
	"sync"
	"time"
)

// dedupe is the server-side idempotency window: a set of recently seen
// request ids with FIFO count eviction plus age eviction. Do applies a
// mutation at most once per id; a concurrent duplicate (a
// network-duplicated request racing its original) waits for the first
// application to finish instead of re-applying, so "applied exactly
// once, acknowledged many times" holds even under duplication faults.
//
// The window is bounded two ways: at most cap completed ids are
// retained (FIFO), and a completed id older than maxAge is evicted even
// when the window is not full — a server that saw one traffic burst
// does not hold the burst's ids for the rest of its life, and an id can
// never be deduplicated against an arbitrarily ancient application.
// In-flight ids are never evicted: a duplicate waiting on its original
// always finds it.
type dedupe struct {
	mu   sync.Mutex
	seen map[string]*dedupeEntry
	// order holds completed ids in completion order; only completed
	// entries are evicted, so an in-flight id can never be forgotten
	// while its duplicate is waiting on it. head indexes the oldest
	// live entry; the slice is compacted when the dead prefix exceeds
	// the window, keeping memory bounded.
	order  []string
	head   int
	cap    int
	maxAge time.Duration // 0 = count eviction only

	// now stubs the clock for age-eviction tests.
	now func() time.Time

	// inflight counts applications currently executing (with or without
	// an id); idle is closed when inflight returns to zero, waking
	// Quiesce waiters. Registration happens in the same critical section
	// that claims the id, so a mutation is either not yet acknowledged
	// to its client or visible to Quiesce — never in between.
	inflight int
	idle     chan struct{}
}

type dedupeEntry struct {
	done chan struct{}
	// failed is set (before done is closed) when the application
	// panicked: the mutation did NOT apply, so a parked duplicate must
	// claim the id and apply it itself rather than acknowledge a
	// mutation that never happened.
	failed bool
	// completedAt stamps a successful application for age eviction.
	completedAt time.Time
}

func newDedupe(capacity int) *dedupe {
	return &dedupe{
		seen:   make(map[string]*dedupeEntry),
		cap:    capacity,
		maxAge: DefaultDedupeMaxAge,
	}
}

func (d *dedupe) clock() time.Time {
	if d.now != nil {
		return d.now()
	}
	return time.Now()
}

// Do runs apply exactly once per id within the window. An empty id is
// applied unconditionally. The return value reports whether this call
// performed the application (false = deduplicated). A panic out of
// apply propagates, but first the id is released (the mutation did not
// happen — a retry must be able to re-apply it) and any parked
// duplicates are woken to claim it.
func (d *dedupe) Do(id string, apply func()) bool {
	if id == "" || d.cap <= 0 {
		d.mu.Lock()
		d.inflight++
		d.mu.Unlock()
		defer d.done() // panic-safe: a crashed apply must not wedge Quiesce
		apply()
		return true
	}
	for {
		d.mu.Lock()
		d.evictExpiredLocked()
		if e, ok := d.seen[id]; ok {
			d.mu.Unlock()
			<-e.done // duplicate of an in-flight request: wait, don't re-apply
			if !e.failed {
				return false
			}
			// The original panicked without applying; race the other
			// parked duplicates to claim the id and apply it ourselves.
			continue
		}
		e := &dedupeEntry{done: make(chan struct{})}
		d.seen[id] = e
		d.inflight++
		d.mu.Unlock()
		d.runClaimed(id, e, apply)
		return true
	}
}

// runClaimed executes apply for the id claimed by entry e, completing
// the entry on success and releasing the id on panic — in both cases
// retiring the in-flight registration and waking waiters, so neither
// parked duplicates nor Quiesce can hang on a crashed application.
func (d *dedupe) runClaimed(id string, e *dedupeEntry, apply func()) {
	applied := false
	defer func() {
		d.mu.Lock()
		if applied {
			e.completedAt = d.clock()
			d.order = append(d.order, id)
			for len(d.order)-d.head > d.cap {
				delete(d.seen, d.order[d.head])
				d.order[d.head] = ""
				d.head++
			}
			d.compactLocked()
		} else {
			e.failed = true
			delete(d.seen, id)
		}
		d.finishLocked()
		d.mu.Unlock()
		close(e.done)
	}()
	apply()
	applied = true
}

// evictExpiredLocked drops completed ids older than maxAge. order is in
// completion order, so expired entries form a prefix.
func (d *dedupe) evictExpiredLocked() {
	if d.maxAge <= 0 || d.head >= len(d.order) {
		return
	}
	cutoff := d.clock().Add(-d.maxAge)
	for d.head < len(d.order) {
		e := d.seen[d.order[d.head]]
		if e != nil && !e.completedAt.Before(cutoff) {
			break
		}
		delete(d.seen, d.order[d.head])
		d.order[d.head] = ""
		d.head++
	}
	d.compactLocked()
}

// compactLocked trims the dead prefix once it outgrows the window.
func (d *dedupe) compactLocked() {
	if d.head > d.cap {
		d.order = append(d.order[:0], d.order[d.head:]...)
		d.head = 0
	}
}

// done retires one in-flight application.
func (d *dedupe) done() {
	d.mu.Lock()
	d.finishLocked()
	d.mu.Unlock()
}

func (d *dedupe) finishLocked() {
	d.inflight--
	if d.inflight == 0 && d.idle != nil {
		close(d.idle)
		d.idle = nil
	}
}

// Quiesce blocks until no application is executing: every mutation the
// server has started applying — including a retry's original whose
// response was lost — has finished and is visible to subsequent reads.
// It does not wait for duplicates parked on an in-flight entry (they
// never re-apply) and cannot see a request the HTTP layer has accepted
// but whose handler has not reached Do yet; the drain's converge loop
// covers that residue.
func (d *dedupe) Quiesce() {
	for {
		d.mu.Lock()
		if d.inflight == 0 {
			d.mu.Unlock()
			return
		}
		if d.idle == nil {
			d.idle = make(chan struct{})
		}
		ch := d.idle
		d.mu.Unlock()
		<-ch
	}
}
