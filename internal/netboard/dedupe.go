package netboard

import "sync"

// dedupe is the server-side idempotency window: a set of recently seen
// request ids with FIFO eviction. Do applies a mutation at most once
// per id; a concurrent duplicate (a network-duplicated request racing
// its original) waits for the first application to finish instead of
// re-applying, so "applied exactly once, acknowledged many times" holds
// even under duplication faults.
type dedupe struct {
	mu   sync.Mutex
	seen map[string]*dedupeEntry
	// order holds completed ids in completion order; only completed
	// entries are evicted, so an in-flight id can never be forgotten
	// while its duplicate is waiting on it. head indexes the oldest
	// live entry; the slice is compacted when the dead prefix exceeds
	// the window, keeping memory bounded.
	order []string
	head  int
	cap   int

	// inflight counts applications currently executing (with or without
	// an id); idle is closed when inflight returns to zero, waking
	// Quiesce waiters. Registration happens in the same critical section
	// that claims the id, so a mutation is either not yet acknowledged
	// to its client or visible to Quiesce — never in between.
	inflight int
	idle     chan struct{}
}

type dedupeEntry struct {
	done chan struct{}
}

func newDedupe(capacity int) *dedupe {
	return &dedupe{seen: make(map[string]*dedupeEntry), cap: capacity}
}

// Do runs apply exactly once per id within the window. An empty id is
// applied unconditionally. The return value reports whether this call
// performed the application (false = deduplicated).
func (d *dedupe) Do(id string, apply func()) bool {
	if id == "" || d.cap <= 0 {
		d.mu.Lock()
		d.inflight++
		d.mu.Unlock()
		apply()
		d.done()
		return true
	}
	d.mu.Lock()
	if e, ok := d.seen[id]; ok {
		d.mu.Unlock()
		<-e.done // duplicate of an in-flight request: wait, don't re-apply
		return false
	}
	e := &dedupeEntry{done: make(chan struct{})}
	d.seen[id] = e
	d.inflight++
	d.mu.Unlock()

	apply()
	close(e.done)

	d.mu.Lock()
	d.order = append(d.order, id)
	for len(d.order)-d.head > d.cap {
		delete(d.seen, d.order[d.head])
		d.order[d.head] = ""
		d.head++
	}
	if d.head > d.cap {
		d.order = append(d.order[:0], d.order[d.head:]...)
		d.head = 0
	}
	d.finishLocked()
	d.mu.Unlock()
	return true
}

// done retires one in-flight application.
func (d *dedupe) done() {
	d.mu.Lock()
	d.finishLocked()
	d.mu.Unlock()
}

func (d *dedupe) finishLocked() {
	d.inflight--
	if d.inflight == 0 && d.idle != nil {
		close(d.idle)
		d.idle = nil
	}
}

// Quiesce blocks until no application is executing: every mutation the
// server has started applying — including a retry's original whose
// response was lost — has finished and is visible to subsequent reads.
// It does not wait for duplicates parked on an in-flight entry (they
// never re-apply) and cannot see a request the HTTP layer has accepted
// but whose handler has not reached Do yet; the drain's converge loop
// covers that residue.
func (d *dedupe) Quiesce() {
	for {
		d.mu.Lock()
		if d.inflight == 0 {
			d.mu.Unlock()
			return
		}
		if d.idle == nil {
			d.idle = make(chan struct{})
		}
		ch := d.idle
		d.mu.Unlock()
		<-ch
	}
}
