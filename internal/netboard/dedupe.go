package netboard

import "sync"

// dedupe is the server-side idempotency window: a set of recently seen
// request ids with FIFO eviction. Do applies a mutation at most once
// per id; a concurrent duplicate (a network-duplicated request racing
// its original) waits for the first application to finish instead of
// re-applying, so "applied exactly once, acknowledged many times" holds
// even under duplication faults.
type dedupe struct {
	mu   sync.Mutex
	seen map[string]*dedupeEntry
	// order holds completed ids in completion order; only completed
	// entries are evicted, so an in-flight id can never be forgotten
	// while its duplicate is waiting on it. head indexes the oldest
	// live entry; the slice is compacted when the dead prefix exceeds
	// the window, keeping memory bounded.
	order []string
	head  int
	cap   int
}

type dedupeEntry struct {
	done chan struct{}
}

func newDedupe(capacity int) *dedupe {
	return &dedupe{seen: make(map[string]*dedupeEntry), cap: capacity}
}

// Do runs apply exactly once per id within the window. An empty id is
// applied unconditionally. The return value reports whether this call
// performed the application (false = deduplicated).
func (d *dedupe) Do(id string, apply func()) bool {
	if id == "" || d.cap <= 0 {
		apply()
		return true
	}
	d.mu.Lock()
	if e, ok := d.seen[id]; ok {
		d.mu.Unlock()
		<-e.done // duplicate of an in-flight request: wait, don't re-apply
		return false
	}
	e := &dedupeEntry{done: make(chan struct{})}
	d.seen[id] = e
	d.mu.Unlock()

	apply()
	close(e.done)

	d.mu.Lock()
	d.order = append(d.order, id)
	for len(d.order)-d.head > d.cap {
		delete(d.seen, d.order[d.head])
		d.order[d.head] = ""
		d.head++
	}
	if d.head > d.cap {
		d.order = append(d.order[:0], d.order[d.head:]...)
		d.head = 0
	}
	d.mu.Unlock()
	return true
}
