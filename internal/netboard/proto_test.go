package netboard

// Wire-protocol version negotiation: every server response is stamped
// with Tellme-Proto, requests that announce a different version are
// rejected with 400, and a client talking to a server that does not
// speak the protocol fails fast with a typed *ProtoError instead of
// burning its retry budget on doomed attempts.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tellme/internal/billboard"
)

// TestServerStampsProtoHeader: every response — reads, writes, and
// error responses alike — carries the protocol version header, so
// clients can verify what they are talking to on any endpoint.
func TestServerStampsProtoHeader(t *testing.T) {
	srv := httptest.NewServer(NewServer(billboard.New(4, 4)))
	defer srv.Close()

	get, err := http.Get(srv.URL + PathStats)
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if got := get.Header.Get(HeaderProto); got != ProtoVersion {
		t.Fatalf("GET %s: %s = %q, want %q", PathStats, HeaderProto, got, ProtoVersion)
	}

	post, err := http.Post(srv.URL+PathProbe, "application/json", strings.NewReader(`{"player":0,"object":0,"value":1}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if got := post.Header.Get(HeaderProto); got != ProtoVersion {
		t.Fatalf("POST %s: %s = %q, want %q", PathProbe, HeaderProto, got, ProtoVersion)
	}

	// Even a rejected request gets the stamp: the 400 below is the
	// mismatch rejection itself.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+PathStats, nil)
	req.Header.Set(HeaderProto, "999")
	bad, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if got := bad.Header.Get(HeaderProto); got != ProtoVersion {
		t.Fatalf("rejected request: %s = %q, want %q", HeaderProto, got, ProtoVersion)
	}
}

// TestServerRejectsProtoMismatch: a request announcing a different
// protocol version is refused with 400 before reaching any handler.
// Requests with no header at all (curl, probes) still work.
func TestServerRejectsProtoMismatch(t *testing.T) {
	board := billboard.New(4, 4)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodPost, srv.URL+PathProbe, strings.NewReader(`{"player":0,"object":0,"value":1}`))
	req.Header.Set(HeaderProto, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched %s: status %d, want 400", HeaderProto, resp.StatusCode)
	}
	if board.ProbeCount() != 0 {
		t.Fatal("rejected request reached the board")
	}

	// Headerless requests are fine: the check only bites on an explicit
	// wrong announcement.
	bare, err := http.Post(srv.URL+PathProbe, "application/json", strings.NewReader(`{"player":0,"object":0,"value":1}`))
	if err != nil {
		t.Fatal(err)
	}
	bare.Body.Close()
	if bare.StatusCode != http.StatusNoContent {
		t.Fatalf("headerless request: status %d, want 204", bare.StatusCode)
	}
	if board.ProbeCount() != 1 {
		t.Fatalf("headerless probe not applied: count %d", board.ProbeCount())
	}
}

// TestClientProtoMismatchTypedError: against a server that answers 2xx
// without (or with the wrong) protocol stamp, the client fails with a
// *ProtoError reachable through errors.As — and gives up after one
// attempt on both the POST and GET paths, since no number of retries
// can fix a version mismatch.
func TestClientProtoMismatchTypedError(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stamp string // value for HeaderProto; "" = no header at all
	}{
		{"missing header", ""},
		{"wrong version", "0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				if tc.stamp != "" {
					w.Header().Set(HeaderProto, tc.stamp)
				}
				w.Write([]byte(`{}`))
			}))
			defer srv.Close()

			var got error
			c := NewClientWithConfig(srv.URL, Config{
				Retries:      5,
				RetryBackoff: time.Microsecond,
				OnError:      func(err error) { got = err },
			})

			hits.Store(0)
			c.PostProbe(0, 0, 1) // POST path
			var pe *ProtoError
			if !errors.As(got, &pe) {
				t.Fatalf("POST: error %v (%T), want a *ProtoError", got, got)
			}
			if pe.Got != tc.stamp {
				t.Fatalf("POST: ProtoError.Got = %q, want %q", pe.Got, tc.stamp)
			}
			if n := hits.Load(); n != 1 {
				t.Fatalf("POST: %d attempts, want 1 (mismatch must not be retried)", n)
			}

			got, pe = nil, nil
			hits.Store(0)
			c.Votes("topic") // GET path
			if !errors.As(got, &pe) {
				t.Fatalf("GET: error %v (%T), want a *ProtoError", got, got)
			}
			if n := hits.Load(); n != 1 {
				t.Fatalf("GET: %d attempts, want 1 (mismatch must not be retried)", n)
			}

			// The typed error is wrapped in the usual terminal failure, so
			// generic transport handling still matches too.
			var te *TransportError
			if !errors.As(got, &te) {
				t.Fatalf("error %v not wrapped in *TransportError", got)
			}
		})
	}
}

// TestConfigNormalizedDefaults: the Config constructor clamps invalid
// values to the documented defaults, and the zero Config reproduces
// NewClient exactly.
func TestConfigNormalizedDefaults(t *testing.T) {
	c := NewClientWithConfig("http://x", Config{Retries: -3, RetryBackoff: -time.Second})
	if c.Retries != 0 {
		t.Fatalf("negative Retries clamped to %d, want 0", c.Retries)
	}
	if c.RetryBackoff != DefaultRetryBackoff {
		t.Fatalf("non-positive RetryBackoff normalized to %v, want %v", c.RetryBackoff, DefaultRetryBackoff)
	}

	a, b := NewClient("http://x"), NewClientWithConfig("http://x", Config{})
	if a.BaseURL != b.BaseURL || a.Retries != b.Retries || a.RetryBackoff != b.RetryBackoff ||
		a.DisableBatch != b.DisableBatch || a.TelemetryPrefix != b.TelemetryPrefix {
		t.Fatalf("NewClient %+v differs from zero-Config constructor %+v", a, b)
	}
}
