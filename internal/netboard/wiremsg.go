package netboard

import "tellme/internal/wire"

// Binary wire-tag space of the netboard protocol (0x01–0x1f; the serve
// front uses 0x20+). A tag identifies the message type inside a binary
// frame so a decoder pointed at the wrong struct fails loudly instead
// of misparsing; tags are wire contract — never renumber, only append.
const (
	tagProbePost byte = 0x01 + iota
	tagProbeReply
	tagProbedObjectsReply
	tagVectorPost
	tagPostingList
	tagVoteList
	tagValuesPost
	tagValuePostingList
	tagValueVoteList
	tagDropPost
	tagBatchProbesPost
	tagBatchLookupsReply
	tagTopicSnapshotReply
	tagTopicsReply
	tagClearProbesPost
	tagQuiesceReply
	tagDropIfPost
	tagStatsReply
)

// Every message reads its fields back in AppendBinary order; the
// Reader's sticky error plus the codec's Close check make the decoders
// straight-line. Slices follow the wire package's nil-preserving
// count+1 convention so a binary round trip is as faithful as the JSON
// one (the differential fuzz oracle depends on it).

func (*probePost) WireTag() byte { return tagProbePost }

func (p *probePost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, uint64(p.Player))
	dst = wire.AppendUint(dst, uint64(p.Object))
	return append(dst, p.Value)
}

func (p *probePost) DecodeBinary(r *wire.Reader) {
	p.Player = r.Int()
	p.Object = r.Int()
	p.Value = r.Byte()
}

func (*probeReply) WireTag() byte { return tagProbeReply }

func (p *probeReply) AppendBinary(dst []byte) []byte {
	dst = append(dst, p.Value)
	return wire.AppendBool(dst, p.OK)
}

func (p *probeReply) DecodeBinary(r *wire.Reader) {
	p.Value = r.Byte()
	p.OK = r.Bool()
}

func (*probedObjectsReply) WireTag() byte { return tagProbedObjectsReply }

func (p *probedObjectsReply) AppendBinary(dst []byte) []byte {
	if p.Objects == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(p.Objects))+1)
	for _, og := range p.Objects {
		dst = wire.AppendUint(dst, uint64(og.Object))
		dst = append(dst, og.Grade)
	}
	return dst
}

func (p *probedObjectsReply) DecodeBinary(r *wire.Reader) {
	p.Objects = nil
	n := r.Uint()
	if n == 0 {
		return
	}
	p.Objects = make([]objGrade, 0, sliceCap(n-1, 2))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		p.Objects = append(p.Objects, objGrade{Object: r.Int(), Grade: r.Byte()})
	}
}

func (*vectorPost) WireTag() byte { return tagVectorPost }

func (v *vectorPost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, v.Topic)
	dst = wire.AppendUint(dst, uint64(v.Player))
	return wire.AppendPartial(dst, v.Bits.P)
}

func (v *vectorPost) DecodeBinary(r *wire.Reader) {
	v.Topic = r.String()
	v.Player = r.Int()
	v.Bits.P = r.Partial()
}

func (*postingList) WireTag() byte { return tagPostingList }

func (l *postingList) AppendBinary(dst []byte) []byte {
	if *l == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(*l))+1)
	for _, p := range *l {
		dst = wire.AppendUint(dst, uint64(p.Player))
		dst = wire.AppendPartial(dst, p.Bits.P)
	}
	return dst
}

func (l *postingList) DecodeBinary(r *wire.Reader) {
	*l = nil
	n := r.Uint()
	if n == 0 {
		return
	}
	*l = make(postingList, 0, sliceCap(n-1, 3))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		*l = append(*l, postingJSON{Player: r.Int(), Bits: wire.Bits{P: r.Partial()}})
	}
}

// appendVoteList / decodeVoteList are shared between the standalone
// voteList reply and the Votes field of a topic snapshot.
func appendVoteList(dst []byte, l voteList) []byte {
	if l == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(l))+1)
	for _, v := range l {
		dst = wire.AppendPartial(dst, v.Bits.P)
		dst = wire.AppendUint(dst, uint64(v.Count))
		dst = wire.AppendInts(dst, v.Voters)
	}
	return dst
}

func decodeVoteList(r *wire.Reader) voteList {
	n := r.Uint()
	if n == 0 {
		return nil
	}
	l := make(voteList, 0, sliceCap(n-1, 4))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		l = append(l, voteJSON{
			Bits:   wire.Bits{P: r.Partial()},
			Count:  r.Int(),
			Voters: r.Ints(),
		})
	}
	return l
}

func (*voteList) WireTag() byte { return tagVoteList }

func (l *voteList) AppendBinary(dst []byte) []byte { return appendVoteList(dst, *l) }

func (l *voteList) DecodeBinary(r *wire.Reader) { *l = decodeVoteList(r) }

func (*valuesPost) WireTag() byte { return tagValuesPost }

func (v *valuesPost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, v.Topic)
	dst = wire.AppendUint(dst, uint64(v.Player))
	return wire.AppendUint32s(dst, v.Vals)
}

func (v *valuesPost) DecodeBinary(r *wire.Reader) {
	v.Topic = r.String()
	v.Player = r.Int()
	v.Vals = r.Uint32s()
}

func (*valuePostingList) WireTag() byte { return tagValuePostingList }

func (l *valuePostingList) AppendBinary(dst []byte) []byte {
	if *l == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(*l))+1)
	for _, p := range *l {
		dst = wire.AppendUint(dst, uint64(p.Player))
		dst = wire.AppendUint32s(dst, p.Vals)
	}
	return dst
}

func (l *valuePostingList) DecodeBinary(r *wire.Reader) {
	*l = nil
	n := r.Uint()
	if n == 0 {
		return
	}
	*l = make(valuePostingList, 0, sliceCap(n-1, 2))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		*l = append(*l, valuePostingJSON{Player: r.Int(), Vals: r.Uint32s()})
	}
}

// appendValueVoteList / decodeValueVoteList mirror the vote-list pair.
func appendValueVoteList(dst []byte, l valueVoteList) []byte {
	if l == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(l))+1)
	for _, v := range l {
		dst = wire.AppendUint32s(dst, v.Vals)
		dst = wire.AppendUint(dst, uint64(v.Count))
		dst = wire.AppendInts(dst, v.Voters)
	}
	return dst
}

func decodeValueVoteList(r *wire.Reader) valueVoteList {
	n := r.Uint()
	if n == 0 {
		return nil
	}
	l := make(valueVoteList, 0, sliceCap(n-1, 3))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		l = append(l, valueVoteJSON{
			Vals:   r.Uint32s(),
			Count:  r.Int(),
			Voters: r.Ints(),
		})
	}
	return l
}

func (*valueVoteList) WireTag() byte { return tagValueVoteList }

func (l *valueVoteList) AppendBinary(dst []byte) []byte { return appendValueVoteList(dst, *l) }

func (l *valueVoteList) DecodeBinary(r *wire.Reader) { *l = decodeValueVoteList(r) }

func (*dropPost) WireTag() byte { return tagDropPost }

func (d *dropPost) AppendBinary(dst []byte) []byte { return wire.AppendString(dst, d.Topic) }

func (d *dropPost) DecodeBinary(r *wire.Reader) { d.Topic = r.String() }

func (*batchProbesPost) WireTag() byte { return tagBatchProbesPost }

func (b *batchProbesPost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, uint64(b.Player))
	dst = wire.AppendInts(dst, b.Objects)
	return wire.AppendString(dst, b.Grades)
}

func (b *batchProbesPost) DecodeBinary(r *wire.Reader) {
	b.Player = r.Int()
	b.Objects = r.Ints()
	b.Grades = r.String()
}

func (*batchLookupsReply) WireTag() byte { return tagBatchLookupsReply }

func (b *batchLookupsReply) AppendBinary(dst []byte) []byte {
	return wire.AppendString(dst, b.Grades)
}

func (b *batchLookupsReply) DecodeBinary(r *wire.Reader) { b.Grades = r.String() }

func (*topicSnapshotReply) WireTag() byte { return tagTopicSnapshotReply }

func (t *topicSnapshotReply) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, t.Gen)
	dst = wire.AppendUint(dst, t.Epoch)
	dst = wire.AppendBool(dst, t.Unchanged)
	dst = appendVoteList(dst, t.Votes)
	return appendValueVoteList(dst, t.ValueVotes)
}

func (t *topicSnapshotReply) DecodeBinary(r *wire.Reader) {
	t.Gen = r.Uint()
	t.Epoch = r.Uint()
	t.Unchanged = r.Bool()
	t.Votes = decodeVoteList(r)
	t.ValueVotes = decodeValueVoteList(r)
}

func (*topicsReply) WireTag() byte { return tagTopicsReply }

func (t *topicsReply) AppendBinary(dst []byte) []byte {
	if t.Topics == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(t.Topics))+1)
	for _, name := range t.Topics {
		dst = wire.AppendString(dst, name)
	}
	return dst
}

func (t *topicsReply) DecodeBinary(r *wire.Reader) {
	t.Topics = nil
	n := r.Uint()
	if n == 0 {
		return
	}
	t.Topics = make([]string, 0, sliceCap(n-1, 1))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		t.Topics = append(t.Topics, r.String())
	}
}

func (*clearProbesPost) WireTag() byte { return tagClearProbesPost }

func (c *clearProbesPost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, uint64(c.Player))
	return wire.AppendInts(dst, c.Objects)
}

func (c *clearProbesPost) DecodeBinary(r *wire.Reader) {
	c.Player = r.Int()
	c.Objects = r.Ints()
}

func (*quiesceReply) WireTag() byte { return tagQuiesceReply }

func (q *quiesceReply) AppendBinary(dst []byte) []byte { return wire.AppendBool(dst, q.Idle) }

func (q *quiesceReply) DecodeBinary(r *wire.Reader) { q.Idle = r.Bool() }

func (*dropIfPost) WireTag() byte { return tagDropIfPost }

func (d *dropIfPost) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, d.Topic)
	dst = wire.AppendUint(dst, uint64(d.Vectors))
	return wire.AppendUint(dst, uint64(d.Values))
}

func (d *dropIfPost) DecodeBinary(r *wire.Reader) {
	d.Topic = r.String()
	d.Vectors = r.Int()
	d.Values = r.Int()
}

func (*statsReply) WireTag() byte { return tagStatsReply }

func (s *statsReply) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, uint64(s.ProbeCount))
	dst = wire.AppendUint(dst, uint64(s.VectorPostCount))
	dst = wire.AppendUint(dst, uint64(s.TopicCount))
	dst = wire.AppendUint(dst, uint64(s.N))
	return wire.AppendUint(dst, uint64(s.M))
}

func (s *statsReply) DecodeBinary(r *wire.Reader) {
	s.ProbeCount = int64(r.Uint())
	s.VectorPostCount = int64(r.Uint())
	s.TopicCount = r.Int()
	s.N = r.Int()
	s.M = r.Int()
}

// sliceCap bounds a pre-allocation by what the payload could possibly
// hold (count elements of at least minBytes each): a hostile count in a
// short frame reserves nothing it cannot back with real bytes — the
// loop then fails on the first truncated element.
func sliceCap(count uint64, minBytes int) int {
	const preallocLimit = 1 << 16
	if count > preallocLimit/uint64(minBytes) {
		return preallocLimit / minBytes
	}
	return int(count)
}
