package netboard

// Fault-injection stress: the batched, idempotent transport must keep
// the billboard exact — zero lost posts, zero double-applied posts —
// while the network drops requests, loses responses after the server
// committed, duplicates deliveries concurrently, and adds latency.
// Run under -race (make verify does).

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/netboard/faultnet"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// faultClient returns a retrying client whose transport injects the
// given fault schedule.
func faultClient(url string, ft *faultnet.Transport) *Client {
	c := NewClient(url)
	c.HTTPClient = &http.Client{Transport: ft}
	c.Retries = 40
	c.RetryBackoff = 100 * time.Microsecond
	return c
}

func TestFaultScheduleExactlyOnce(t *testing.T) {
	// Concurrent players hammer every mutating endpoint through a
	// hostile transport; afterwards the board must hold exactly the
	// posts issued — nothing lost (retries recovered every drop) and
	// nothing duplicated (request-id dedupe absorbed every re-delivery).
	schedules := []struct {
		name                   string
		dropReq, dropResp, dup float64
	}{
		{"drops", 0.15, 0, 0},
		{"lost-responses", 0, 0.15, 0},
		{"duplicates", 0, 0, 0.3},
		{"everything", 0.1, 0.1, 0.2},
	}
	for si, sc := range schedules {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			const players, vecPosts, probesPer = 12, 6, 8
			board := billboard.New(players, 64)
			srv := httptest.NewServer(NewServer(board))
			defer srv.Close()

			ft := faultnet.New(nil, int64(1000+si))
			ft.DropRequest = sc.dropReq
			ft.DropResponse = sc.dropResp
			ft.Duplicate = sc.dup
			ft.MaxDelay = 200 * time.Microsecond
			c := faultClient(srv.URL, ft)

			var wg sync.WaitGroup
			for p := 0; p < players; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					part, _ := bitvec.PartialFromString("01?1")
					for i := 0; i < vecPosts; i++ {
						c.Post(fmt.Sprintf("t%d", i%3), p, part)
					}
					objs := make([]int, probesPer)
					grades := make([]byte, probesPer)
					for k := range objs {
						objs[k] = (p*probesPer + k) % 64
						grades[k] = byte(k & 1)
					}
					c.PostProbes(p, objs, grades)
					c.PostValues("vals", p, []uint32{uint32(p)})
				}(p)
			}
			wg.Wait()

			// Zero lost, zero duplicated: the counters are exact.
			if got, want := board.VectorPostCount(), int64(players*(vecPosts+1)); got != want {
				t.Errorf("VectorPostCount = %d, want %d", got, want)
			}
			if got, want := board.ProbeCount(), int64(players*probesPer); got != want {
				t.Errorf("ProbeCount = %d, want %d", got, want)
			}
			for i := 0; i < 3; i++ {
				topic := fmt.Sprintf("t%d", i)
				if got := board.Postings(topic); len(got) != players*vecPosts/3 {
					t.Errorf("topic %s: %d postings, want %d", topic, len(got), players*vecPosts/3)
				}
			}
			if got := board.ValuePostings("vals"); len(got) != players {
				t.Errorf("%d value postings, want %d", len(got), players)
			}
			// The schedule actually fired the faults it claims to cover.
			if sc.dropReq > 0 && ft.DroppedRequests() == 0 {
				t.Error("schedule dropped no requests")
			}
			if sc.dropResp > 0 && ft.LostResponses() == 0 {
				t.Error("schedule lost no responses")
			}
			if sc.dup > 0 && ft.Duplicated() == 0 {
				t.Error("schedule duplicated nothing")
			}
		})
	}
}

func TestZeroRadiusOverFaultyHTTP(t *testing.T) {
	// End to end: the full algorithm over a flaky transport produces the
	// exact same output as the in-memory run. Faults change timing, not
	// results.
	in := prefs.Identical(32, 64, 0.5, 5)
	run := func(b boardclient.Interface) [][]uint32 {
		e := probe.NewEngine(in, b, rng.NewSource(8))
		env := core.NewEnv(e, sim.NewRunner(4), rng.NewSource(9), core.DefaultConfig())
		return core.ZeroRadiusBits(env, ints.Iota(in.N), ints.Iota(in.M), 0.5)
	}
	local := run(billboard.New(in.N, in.M))

	board := billboard.New(in.N, in.M)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	ft := faultnet.New(nil, 77)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.08, 0.08, 0.15
	remote := run(faultClient(srv.URL, ft))

	for p := 0; p < in.N; p++ {
		for j := 0; j < in.M; j++ {
			if local[p][j] != remote[p][j] {
				t.Fatalf("faulty-transport run diverged at player %d object %d", p, j)
			}
		}
	}
	if ft.DroppedRequests()+ft.LostResponses()+ft.Duplicated() == 0 {
		t.Fatal("fault schedule never fired; test proves nothing")
	}
}

func TestFaultnetCounters(t *testing.T) {
	// Unit check of the injector itself against a live server.
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	// No faults: pure request meter.
	meter := faultnet.New(nil, 1)
	c := NewClient(srv.URL)
	c.HTTPClient = &http.Client{Transport: meter}
	c.PostProbe(0, 0, 1)
	c.LookupProbe(0, 0)
	if meter.Delivered() != 2 || meter.DroppedRequests() != 0 || meter.LostResponses() != 0 || meter.Duplicated() != 0 {
		t.Fatalf("meter counters: %d %d %d %d", meter.Delivered(), meter.DroppedRequests(), meter.LostResponses(), meter.Duplicated())
	}

	// DropRequest=1: nothing is ever delivered.
	drop := faultnet.New(nil, 2)
	drop.DropRequest = 1
	c2 := NewClient(srv.URL)
	c2.HTTPClient = &http.Client{Transport: drop}
	c2.Retries = 2
	c2.RetryBackoff = time.Microsecond
	var errs int
	c2.OnError = func(error) { errs++ }
	c2.PostProbe(0, 1, 1)
	if drop.Delivered() != 0 || drop.DroppedRequests() != 3 || errs != 1 {
		t.Fatalf("drop-all: delivered=%d dropped=%d errs=%d", drop.Delivered(), drop.DroppedRequests(), errs)
	}
	if _, ok := board.LookupProbe(0, 1); ok {
		t.Fatal("dropped request reached the board")
	}

	// DropResponse=1: the server commits, the client never hears back.
	lost := faultnet.New(nil, 3)
	lost.DropResponse = 1
	c3 := NewClient(srv.URL)
	c3.HTTPClient = &http.Client{Transport: lost}
	c3.OnError = func(error) {}
	c3.PostProbe(0, 2, 1)
	if lost.LostResponses() != 1 {
		t.Fatalf("LostResponses = %d", lost.LostResponses())
	}
	if _, ok := board.LookupProbe(0, 2); !ok {
		t.Fatal("lost-response request should still have committed")
	}
}

// benchmarkNetboardRun measures one full ZeroRadius simulation against
// an HTTP billboard and reports the number of HTTP requests it took.
// The batched/legacy pair quantifies the request reduction from the
// batch endpoints and the snapshot cache (ISSUE 3 acceptance: ≥10×).
func benchmarkNetboardRun(b *testing.B, legacy bool) {
	in := prefs.Identical(48, 256, 0.6, 3)
	var requests int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		board := billboard.New(in.N, in.M)
		srv := httptest.NewServer(NewServer(board))
		meter := faultnet.New(nil, 1)
		c := NewClient(srv.URL)
		c.HTTPClient = &http.Client{Transport: meter}
		c.DisableBatch = legacy
		e := probe.NewEngine(in, c, rng.NewSource(8))
		env := core.NewEnv(e, sim.NewRunner(4), rng.NewSource(9), core.DefaultConfig())
		b.StartTimer()
		core.ZeroRadiusBits(env, ints.Iota(in.N), ints.Iota(in.M), 0.5)
		b.StopTimer()
		requests += meter.Delivered()
		srv.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(requests)/float64(b.N), "requests/op")
}

func BenchmarkNetboardRunBatched(b *testing.B) { benchmarkNetboardRun(b, false) }
func BenchmarkNetboardRunLegacy(b *testing.B)  { benchmarkNetboardRun(b, true) }
