package netboard

import (
	"fmt"
	"strconv"
	"testing"
)

// ringKeys is a deterministic key population shaped like real traffic:
// topic names and probe-object keys.
func ringKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, "zr/phase"+strconv.Itoa(i%7)+"/t"+strconv.Itoa(i))
		if len(keys) < n {
			keys = append(keys, objKey(i))
		}
	}
	return keys
}

func ringShards(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard%d.example:7070", i)
	}
	return out
}

// TestRingDistributionSkew bounds the load skew of the default ring
// across every cluster size the issue targets (1–16 shards): with
// DefaultVirtualNodes points per shard, no shard owns more than 1.5×
// or less than 0.5× its fair share of a 20k-key population.
func TestRingDistributionSkew(t *testing.T) {
	keys := ringKeys(20000)
	for shards := 1; shards <= 16; shards++ {
		r := newRing(ringShards(shards), 0)
		counts := make([]int, shards)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(shards)
		for s, c := range counts {
			ratio := float64(c) / fair
			if ratio > 1.5 || ratio < 0.5 {
				t.Errorf("%d shards: shard %d owns %d keys (%.2fx fair share %v)", shards, s, c, ratio, fair)
			}
		}
	}
}

// TestRingOwnerDeterministic: the ring is a pure function of the spec —
// two independently built rings route every key identically.
func TestRingOwnerDeterministic(t *testing.T) {
	a := newRing(ringShards(5), 64)
	b := newRing(ringShards(5), 64)
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalMovementOnRemove is the consistent-hashing removal
// invariant, exactly: deleting one shard's points moves only the keys
// that shard owned — every other key keeps its owner.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	names := ringShards(5)
	const removed = 2
	before := newRing(names, 0)
	var kept []string
	for i, n := range names {
		if i != removed {
			kept = append(kept, n)
		}
	}
	after := newRing(kept, 0)
	moved := 0
	for _, k := range ringKeys(20000) {
		ob := before.Owner(k)
		oa := after.Owner(k)
		if ob == removed {
			moved++
			continue
		}
		if before.Name(ob) != after.Name(oa) {
			t.Fatalf("key %q moved from surviving shard %s to %s", k, before.Name(ob), after.Name(oa))
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no keys")
	}
}

// TestRingMinimalMovementOnAdd is the addition invariant: appending a
// shard moves keys only onto the new shard (never between old shards),
// and the moved fraction is within 2x of the fair 1/(k+1).
func TestRingMinimalMovementOnAdd(t *testing.T) {
	names := ringShards(4)
	before := newRing(names, 0)
	grown := append(append([]string(nil), names...), "http://shard-new.example:7070")
	after := newRing(grown, 0)
	newIdx := len(grown) - 1
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		if oa != newIdx {
			t.Fatalf("key %q moved between old shards: %d -> %d", k, ob, oa)
		}
		moved++
	}
	fair := float64(len(keys)) / float64(len(grown))
	if f := float64(moved); f > 2*fair || f < fair/2 {
		t.Fatalf("added shard took %d keys, want within 2x of fair share %.0f", moved, fair)
	}
}
