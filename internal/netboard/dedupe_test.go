package netboard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
)

// TestDedupeBoundedUnderDistinctIDStream replays a long stream of
// distinct request ids — the loadgen steady state — and asserts the
// window's memory stays bounded by the count cap while the dedupe
// semantics are unchanged: a recent id deduplicates, an evicted one
// re-applies.
func TestDedupeBoundedUnderDistinctIDStream(t *testing.T) {
	const window = 64
	d := newDedupe(window)
	applied := 0
	for i := 0; i < 50*window; i++ {
		if !d.Do(fmt.Sprintf("id-%d", i), func() { applied++ }) {
			t.Fatalf("fresh id %d was deduplicated", i)
		}
	}
	if applied != 50*window {
		t.Fatalf("applied %d of %d distinct ids", applied, 50*window)
	}
	d.mu.Lock()
	seen, orderLive, orderCap := len(d.seen), len(d.order)-d.head, len(d.order)
	d.mu.Unlock()
	if seen > window {
		t.Fatalf("seen holds %d ids, want <= %d", seen, window)
	}
	if orderLive > window || orderCap > 2*window+1 {
		t.Fatalf("order holds %d live / %d total, want <= %d / <= %d", orderLive, orderCap, window, 2*window+1)
	}
	// A recent id still deduplicates; the long-evicted first id re-applies.
	if d.Do(fmt.Sprintf("id-%d", 50*window-1), func() { applied++ }) {
		t.Fatal("recent id was re-applied")
	}
	if !d.Do("id-0", func() { applied++ }) {
		t.Fatal("evicted id was still deduplicated")
	}
	if applied != 50*window+1 {
		t.Fatalf("applied = %d, want %d", applied, 50*window+1)
	}
}

// TestDedupeAgeEviction pins the age bound: an id older than maxAge is
// forgotten even though the count window never filled. Pre-fix the
// window had no age eviction — a quiet server held every id forever and
// kept deduplicating against arbitrarily ancient applications.
func TestDedupeAgeEviction(t *testing.T) {
	d := newDedupe(1024)
	d.maxAge = time.Minute
	clock := time.Unix(1000, 0)
	d.now = func() time.Time { return clock }

	applied := 0
	d.Do("old", func() { applied++ })
	clock = clock.Add(30 * time.Second)
	d.Do("young", func() { applied++ })

	// At +30s both are within age; duplicates dedupe.
	if d.Do("old", func() { applied++ }) || d.Do("young", func() { applied++ }) {
		t.Fatal("in-window duplicate re-applied")
	}

	// At +61s from "old" (but +31s from "young") only "old" expires.
	clock = clock.Add(31 * time.Second)
	if !d.Do("old", func() { applied++ }) {
		t.Fatal("expired id still deduplicated")
	}
	if d.Do("young", func() { applied++ }) {
		t.Fatal("unexpired id re-applied")
	}
	if applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	d.mu.Lock()
	seen := len(d.seen)
	d.mu.Unlock()
	if seen != 2 { // "young" and the re-applied "old"
		t.Fatalf("seen holds %d ids, want 2", seen)
	}

	// Pure idle aging: everything expires, the window drains to empty.
	clock = clock.Add(time.Hour)
	d.Do("", func() {}) // any traffic triggers eviction... but empty id skips the window
	d.Do("fresh", func() {})
	d.mu.Lock()
	seen = len(d.seen)
	d.mu.Unlock()
	if seen != 1 {
		t.Fatalf("after idle hour, seen holds %d ids, want 1 (just the fresh one)", seen)
	}
}

// TestDedupePanicReleasesIDAndWaiters is the crash-safety regression:
// pre-fix, a panic out of apply() left the entry in the map with its
// done channel never closed — every duplicate of that id blocked
// forever, and the in-flight count never dropped, deadlocking Quiesce.
// Post-fix the id is released (the mutation did not happen), parked
// duplicates wake and one of them re-applies, and Quiesce returns.
func TestDedupePanicReleasesIDAndWaiters(t *testing.T) {
	d := newDedupe(16)

	release := make(chan struct{})
	originalEntered := make(chan struct{})
	go func() {
		defer func() { recover() }() // the panic propagates to the caller; swallow it here
		d.Do("crash", func() {
			close(originalEntered)
			<-release
			panic("apply crashed")
		})
	}()
	<-originalEntered

	// Park a duplicate on the in-flight entry, then crash the original.
	dupApplied := make(chan bool, 1)
	go func() {
		applied := false
		d.Do("crash", func() { applied = true })
		dupApplied <- applied
	}()
	time.Sleep(10 * time.Millisecond) // let the duplicate park
	close(release)

	select {
	case applied := <-dupApplied:
		if !applied {
			t.Fatal("duplicate acknowledged a mutation that never applied")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate still parked after the original panicked")
	}

	quiesced := make(chan struct{})
	go func() { d.Quiesce(); close(quiesced) }()
	select {
	case <-quiesced:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce deadlocked: the crashed application leaked its in-flight registration")
	}

	// The empty-id fast path must be panic-safe too.
	func() {
		defer func() { recover() }()
		d.Do("", func() { panic("boom") })
	}()
	quiesced2 := make(chan struct{})
	go func() { d.Quiesce(); close(quiesced2) }()
	select {
	case <-quiesced2:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce deadlocked after empty-id panic")
	}
}

// TestDedupeConcurrentDuplicatesApplyOnce is the original contract
// under the new implementation: N racing duplicates of one id apply
// exactly once, everyone acknowledges.
func TestDedupeConcurrentDuplicatesApplyOnce(t *testing.T) {
	d := newDedupe(16)
	var mu sync.Mutex
	applied := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Do("same", func() {
				mu.Lock()
				applied++
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if applied != 1 {
		t.Fatalf("applied = %d, want exactly 1", applied)
	}
	d.Quiesce()
}

func TestWithDedupeOptionOrderIndependence(t *testing.T) {
	b := billboard.New(2, 4)
	s1 := NewServer(b, WithDedupeMaxAge(time.Second), WithDedupeWindow(7))
	s2 := NewServer(b, WithDedupeWindow(7), WithDedupeMaxAge(time.Second))
	for i, s := range []*Server{s1, s2} {
		if s.dedupe.cap != 7 || s.dedupe.maxAge != time.Second {
			t.Fatalf("server %d: cap=%d maxAge=%v, want 7/1s", i, s.dedupe.cap, s.dedupe.maxAge)
		}
	}
	if s := NewServer(b); s.dedupe.maxAge != DefaultDedupeMaxAge || s.dedupe.cap != DefaultDedupeWindow {
		t.Fatalf("defaults: cap=%d maxAge=%v", s.dedupe.cap, s.dedupe.maxAge)
	}
}
