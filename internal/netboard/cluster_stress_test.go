package netboard

// Multi-shard fault-injection stress: a Cluster over several shard
// servers, with one shard's network heavily degraded, must keep the
// sharded billboard exact — zero lost posts, zero double-applied posts
// — exactly like the single-server suite in stress_test.go. Run under
// -race (make stress-cluster and make verify do).

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/netboard/faultnet"
	"tellme/internal/prefs"
)

// hostFaultRouter injects a per-shard fault schedule: requests to the
// degraded host go through its hostile faultnet transport, everything
// else through the clean one. This is how one Cluster http.Client
// degrades exactly one shard.
type hostFaultRouter struct {
	degradedHost string
	degraded     http.RoundTripper
	clean        http.RoundTripper
}

func (h *hostFaultRouter) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.URL.Host == h.degradedHost {
		return h.degraded.RoundTrip(r)
	}
	return h.clean.RoundTrip(r)
}

// degradedFleet builds a 3-shard cluster whose shard 1 suffers the
// given fault schedule while the other shards' network stays clean.
func degradedFleet(t *testing.T, n, m int, dropReq, dropResp, dup float64) ([]*billboard.Board, *Cluster, *faultnet.Transport) {
	t.Helper()
	boards := make([]*billboard.Board, 3)
	urls := make([]string, 3)
	for i := range boards {
		boards[i] = billboard.New(n, m)
		srv := httptest.NewServer(NewServer(boards[i]))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ft := faultnet.New(nil, 1234)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = dropReq, dropResp, dup
	ft.MaxDelay = 200 * time.Microsecond
	u, err := url.Parse(urls[1])
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Shards: urls,
		Client: Config{
			HTTPClient:   &http.Client{Transport: &hostFaultRouter{degradedHost: u.Host, degraded: ft, clean: http.DefaultTransport}},
			Retries:      40,
			RetryBackoff: 100 * time.Microsecond,
			JitterSeed:   99,
			// The stress gates run over the binary codec: dropped and
			// duplicated binary frames must stay exactly-once just like
			// JSON ones (the dedupe window is codec-agnostic).
			Codec: "binary",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return boards, cluster, ft
}

// TestClusterFaultnetExactlyOnce hammers a degraded cluster with
// concurrent probe batches and topic posts, then requires the sharded
// board to hold exactly what was issued: every probe readable with its
// grade, shard probe counts summing to the issued total, and every
// topic's vote tally carrying each player exactly once.
func TestClusterFaultnetExactlyOnce(t *testing.T) {
	const players, m, vecPosts = 12, 96, 4
	boards, cluster, ft := degradedFleet(t, players, m, 0.15, 0.15, 0.3)

	var wg sync.WaitGroup
	for p := 0; p < players; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Interleave batched probe posts with topic traffic, all
			// through the shared cluster.
			var objs []int
			var grades []byte
			for o := p; o < m; o += players {
				objs = append(objs, o)
				grades = append(grades, byte((p+o)%2))
			}
			cluster.PostProbes(p, objs, grades)
			for k := 0; k < vecPosts; k++ {
				v := bitvec.New(8)
				if (p+k)%2 == 0 {
					v.Set(k%8, 1)
				}
				cluster.PostVector("stress/t"+string(rune('0'+k)), p, v)
				cluster.PostValues("stress/v"+string(rune('0'+k)), p, []uint32{uint32(p)})
			}
		}(p)
	}
	wg.Wait()

	if ft.DroppedRequests() == 0 || ft.LostResponses() == 0 || ft.Duplicated() == 0 {
		t.Fatalf("fault schedule injected nothing: %d dropped, %d lost, %d duplicated",
			ft.DroppedRequests(), ft.LostResponses(), ft.Duplicated())
	}

	// Zero lost: every issued probe is readable with its grade.
	for p := 0; p < players; p++ {
		var objs []int
		var want []byte
		for o := p; o < m; o += players {
			objs = append(objs, o)
			want = append(want, byte((p+o)%2))
		}
		got := make([]byte, len(objs))
		known := make([]bool, len(objs))
		cluster.LookupProbes(p, objs, got, known)
		for k, o := range objs {
			if !known[k] || got[k] != want[k] {
				t.Fatalf("player %d object %d: got (%d,%v), want (%d,true)", p, o, got[k], known[k], want[k])
			}
		}
	}

	// Zero duplicated: shard probe counts sum to exactly the issued
	// total (a double-applied post would inflate it), and every topic
	// tally carries each player exactly once.
	var sum int64
	for _, b := range boards {
		sum += b.ProbeCount()
	}
	if want := int64(players * (m / players)); sum != want {
		t.Fatalf("probe results across shards sum to %d, want %d", sum, want)
	}
	for k := 0; k < vecPosts; k++ {
		for _, name := range []string{"stress/t" + string(rune('0'+k)), "stress/v" + string(rune('0'+k))} {
			seen := make(map[int]int)
			if name[7] == 't' {
				for _, v := range cluster.Votes(name) {
					for _, p := range v.Voters {
						seen[p]++
					}
				}
			} else {
				for _, v := range cluster.ValueVotes(name) {
					for _, p := range v.Voters {
						seen[p]++
					}
				}
			}
			if len(seen) != players {
				t.Fatalf("topic %s: %d players voted, want %d", name, len(seen), players)
			}
			for p, c := range seen {
				if c != 1 {
					t.Fatalf("topic %s: player %d appears %d times", name, p, c)
				}
			}
		}
	}
	if err := cluster.Err(); err != nil {
		t.Fatalf("cluster went degraded under a recoverable fault schedule: %v", err)
	}
}

// TestClusterFaultnetZeroRadius is the end-to-end acceptance check: a
// full Zero Radius run over a cluster with one heavily degraded shard
// produces byte-identical outputs to the in-memory run — faults change
// timing, never results.
func TestClusterFaultnetZeroRadius(t *testing.T) {
	in := prefs.Identical(32, 64, 0.5, 5)
	local := runZeroRadius(in, billboard.New(in.N, in.M))

	boards, cluster, ft := degradedFleet(t, in.N, in.M, 0.2, 0.15, 0.25)
	remote := runZeroRadius(in, cluster)

	for p := range local {
		for j := range local[p] {
			if local[p][j] != remote[p][j] {
				t.Fatalf("player %d bit %d differs under shard faults", p, j)
			}
		}
	}
	if ft.DroppedRequests() == 0 && ft.LostResponses() == 0 && ft.Duplicated() == 0 {
		t.Fatal("degraded shard saw no faults; schedule too weak to prove anything")
	}
	ref := billboard.New(in.N, in.M)
	runZeroRadius(in, ref)
	var probes int64
	for _, b := range boards {
		probes += b.ProbeCount()
	}
	if probes != ref.ProbeCount() {
		t.Fatalf("cluster probe results %d, in-memory run %d: posts lost or duplicated", probes, ref.ProbeCount())
	}
}
