package netboard

import (
	"context"
	"net/http/httptest"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
)

// newShardFleet starts k independent billboard servers and returns
// their boards, a Cluster over them, and a shutdown func.
func newShardFleet(t *testing.T, k, n, m int, cfg Config) ([]*billboard.Board, *Cluster) {
	t.Helper()
	boards := make([]*billboard.Board, k)
	urls := make([]string, k)
	for i := range boards {
		boards[i] = billboard.New(n, m)
		srv := httptest.NewServer(NewServer(boards[i]))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cluster, err := NewCluster(ClusterConfig{Shards: urls, Client: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return boards, cluster
}

func runZeroRadius(in *prefs.Instance, b boardclient.Interface) [][]uint32 {
	e := probe.NewEngine(in, b, rng.NewSource(8))
	env := core.NewEnv(e, sim.NewRunner(4), rng.NewSource(9), core.DefaultConfig())
	return core.ZeroRadiusBits(env, ints.Iota(in.N), ints.Iota(in.M), 0.5)
}

func runUnknownD(in *prefs.Instance, b boardclient.Interface) []bitvec.Partial {
	e := probe.NewEngine(in, b, rng.NewSource(8))
	env := core.NewEnv(e, sim.NewRunner(4), rng.NewSource(9), core.DefaultConfig())
	return core.UnknownD(env, 0.5)
}

// TestClusterZeroRadiusOracle is the E1-style byte-identity oracle: a
// full Zero Radius run over a 3-shard cluster must produce exactly the
// outputs of the same seeded run on one in-memory board, and the
// shards' counters must sum to the single board's. Both wire codecs
// must pass the identical oracle — the encoding layer may never change
// results.
func TestClusterZeroRadiusOracle(t *testing.T) {
	in := prefs.Identical(64, 64, 0.5, 7)
	ref := billboard.New(in.N, in.M)
	want := runZeroRadius(in, ref)

	for _, codec := range []string{"json", "binary"} {
		t.Run(codec, func(t *testing.T) {
			boards, cluster := newShardFleet(t, 3, in.N, in.M, Config{Codec: codec})
			got := runZeroRadius(in, cluster)
			for p := range want {
				for j := range want[p] {
					if want[p][j] != got[p][j] {
						t.Fatalf("player %d bit %d: cluster %d, single board %d", p, j, got[p][j], want[p][j])
					}
				}
			}
			var probes, vectors int64
			topics := 0
			nonEmpty := 0
			for _, b := range boards {
				probes += b.ProbeCount()
				vectors += b.VectorPostCount()
				topics += b.TopicCount()
				if b.ProbeCount() > 0 || b.VectorPostCount() > 0 {
					nonEmpty++
				}
			}
			if probes != ref.ProbeCount() || vectors != ref.VectorPostCount() || topics != ref.TopicCount() {
				t.Fatalf("shard totals %d/%d/%d, single board %d/%d/%d",
					probes, vectors, topics, ref.ProbeCount(), ref.VectorPostCount(), ref.TopicCount())
			}
			if cluster.ProbeCount() != probes || cluster.VectorPostCount() != vectors || cluster.TopicCount() != topics {
				t.Fatalf("cluster stats (%d,%d,%d) disagree with shard sums (%d,%d,%d)",
					cluster.ProbeCount(), cluster.VectorPostCount(), cluster.TopicCount(), probes, vectors, topics)
			}
			if nonEmpty < 2 {
				t.Fatalf("only %d shards hold data; the ring routed everything to one shard", nonEmpty)
			}
			if err := cluster.Err(); err != nil {
				t.Fatalf("cluster degraded: %v", err)
			}
		})
	}
}

// TestClusterUnknownDOracle is the E8-style oracle: the full unknown-D
// wrapper (the Fig. 1 dispatcher under the Section 6 doubling loop) on
// a planted instance, cluster vs in-memory, byte-identical.
func TestClusterUnknownDOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full UnknownD run over HTTP")
	}
	in := prefs.Planted(48, 48, 0.5, 4, 21)
	want := runUnknownD(in, billboard.New(in.N, in.M))
	for _, codec := range []string{"json", "binary"} {
		t.Run(codec, func(t *testing.T) {
			_, cluster := newShardFleet(t, 3, in.N, in.M, Config{Codec: codec})
			got := runUnknownD(in, cluster)
			if len(want) != len(got) {
				t.Fatalf("%d outputs vs %d", len(got), len(want))
			}
			for p := range want {
				if !want[p].Equal(got[p]) {
					t.Fatalf("player %d output differs between cluster and single board", p)
				}
			}
		})
	}
}

// TestClusterBatchMergeOrder checks the deterministic merge contracts
// directly: LookupProbes answers land at their original indices and
// ForEachProbe iterates ascending across shards.
func TestClusterBatchMergeOrder(t *testing.T) {
	const n, m = 4, 64
	_, cluster := newShardFleet(t, 3, n, m, Config{})
	objs := make([]int, m)
	grades := make([]byte, m)
	for o := 0; o < m; o++ {
		objs[o] = o
		grades[o] = byte(o % 2)
	}
	cluster.PostProbes(1, objs, grades)

	gotGrades := make([]byte, m)
	known := make([]bool, m)
	cluster.LookupProbes(1, objs, gotGrades, known)
	for o := 0; o < m; o++ {
		if !known[o] || gotGrades[o] != grades[o] {
			t.Fatalf("object %d: got (%d,%v), want (%d,true)", o, gotGrades[o], known[o], grades[o])
		}
	}

	last := -1
	seen := 0
	cluster.ForEachProbe(1, func(o int, g byte) {
		if o <= last {
			t.Fatalf("ForEachProbe out of order: %d after %d", o, last)
		}
		if g != grades[o] {
			t.Fatalf("object %d grade %d, want %d", o, g, grades[o])
		}
		last = o
		seen++
	})
	if seen != m {
		t.Fatalf("ForEachProbe visited %d objects, want %d", seen, m)
	}
	if got := cluster.ProbedObjects(1); len(got) != m {
		t.Fatalf("ProbedObjects returned %d entries, want %d", len(got), m)
	}
}

// TestClusterReshard drives the static-topology drain both ways: grow
// a loaded 3-shard cluster to 4, shrink it back to 3, and require the
// cluster view (topic tallies, probe lookups, totals) to be identical
// before and after each move — zero lost, zero duplicated.
func TestClusterReshard(t *testing.T) {
	const n, m = 8, 96
	boards, cluster := newShardFleet(t, 3, n, m, Config{})

	// Load: every player probes a stripe of objects; several topics get
	// vector and value postings.
	for p := 0; p < n; p++ {
		var objs []int
		var grades []byte
		for o := p; o < m; o += n {
			objs = append(objs, o)
			grades = append(grades, byte((p+o)%2))
		}
		cluster.PostProbes(p, objs, grades)
	}
	topics := []string{"zr/a", "zr/b", "sr/c", "sr/d", "lr/e"}
	for ti, name := range topics {
		for p := 0; p < n; p++ {
			v := bitvec.New(8)
			if (p+ti)%2 == 0 {
				v.Set(ti%8, 1)
			}
			cluster.PostVector(name, p, v)
			cluster.PostValues(name, p, []uint32{uint32(p), uint32(ti)})
		}
	}

	snapshot := func() (probes int64, view map[string]string) {
		view = make(map[string]string)
		for _, name := range topics {
			s := ""
			for _, v := range cluster.Votes(name) {
				s += v.Vec.String() + "|"
				for _, p := range v.Voters {
					s += string(rune('a' + p))
				}
				s += ";"
			}
			for _, v := range cluster.ValueVotes(name) {
				for _, x := range v.Vals {
					s += string(rune('0' + x%10))
				}
				s += ";"
			}
			view[name] = s
		}
		return cluster.ProbeCount(), view
	}
	wantProbes, wantView := snapshot()

	// Grow: add a fourth shard and drain moved keys onto it.
	extra := billboard.New(n, m)
	srv := httptest.NewServer(NewServer(extra))
	t.Cleanup(srv.Close)
	if err := cluster.AddShard(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := len(cluster.Shards()); got != 4 {
		t.Fatalf("cluster has %d shards after AddShard, want 4", got)
	}
	if extra.ProbeCount() == 0 && extra.VectorPostCount() == 0 {
		t.Fatal("added shard received nothing from the drain")
	}
	gotProbes, gotView := snapshot()
	if gotProbes != wantProbes {
		t.Fatalf("probe count after AddShard: %d, want %d", gotProbes, wantProbes)
	}
	for name, want := range wantView {
		if gotView[name] != want {
			t.Fatalf("topic %q changed across AddShard:\n got %q\nwant %q", name, gotView[name], want)
		}
	}
	// The donors cleared what moved: totals across all four boards
	// still sum to the originals (nothing duplicated).
	var sum int64
	for _, b := range append(append([]*billboard.Board(nil), boards...), extra) {
		sum += b.ProbeCount()
	}
	if sum != wantProbes {
		t.Fatalf("probe results across boards sum to %d after AddShard, want %d", sum, wantProbes)
	}

	// Shrink: remove the shard we just added; everything drains back.
	if err := cluster.RemoveShard(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := len(cluster.Shards()); got != 3 {
		t.Fatalf("cluster has %d shards after RemoveShard, want 3", got)
	}
	// The removed shard holds no live state. (VectorPostCount is
	// cumulative by design — dropped topics fold into it — so it is not
	// expected to return to zero.)
	if pc, tc := extra.ProbeCount(), extra.TopicCount(); pc != 0 || tc != 0 {
		t.Fatalf("removed shard still holds %d probes, %d topics", pc, tc)
	}
	gotProbes, gotView = snapshot()
	if gotProbes != wantProbes {
		t.Fatalf("probe count after RemoveShard: %d, want %d", gotProbes, wantProbes)
	}
	for name, want := range wantView {
		if gotView[name] != want {
			t.Fatalf("topic %q changed across RemoveShard:\n got %q\nwant %q", name, gotView[name], want)
		}
	}
}

// TestClusterConfigValidation covers NewCluster's input checks and
// RemoveShard's guardrails.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewCluster(ClusterConfig{Shards: []string{"http://a", ""}}); err == nil {
		t.Fatal("empty shard URL accepted")
	}
	if _, err := NewCluster(ClusterConfig{Shards: []string{"http://a", "http://a"}}); err == nil {
		t.Fatal("duplicate shard URL accepted")
	}
	cl, err := NewCluster(ClusterConfig{Shards: []string{"http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveShard(context.Background(), "http://b"); err == nil {
		t.Fatal("removing an unknown shard succeeded")
	}
	if err := cl.RemoveShard(context.Background(), "http://a"); err == nil {
		t.Fatal("removing the last shard succeeded")
	}
	if err := cl.AddShard(context.Background(), "http://a"); err == nil {
		t.Fatal("adding a duplicate shard succeeded")
	}
}

// TestClusterPerShardTelemetry: every shard's requests come out under
// its own instrument prefix.
func TestClusterPerShardTelemetry(t *testing.T) {
	// Telemetry shared across the per-shard clients via the config.
	reg := telemetry.New()
	const n, m = 4, 64
	_, cluster := newShardFleet(t, 3, n, m, Config{Telemetry: reg})
	objs := make([]int, m)
	grades := make([]byte, m)
	for o := range objs {
		objs[o] = o
	}
	cluster.PostProbes(0, objs, grades)
	snap := reg.Snapshot()
	perShard := 0
	for i := 0; i < 3; i++ {
		key := "netboard.cluster.shard" + string(rune('0'+i)) + ".requests." + PathBatchProbes
		if c, ok := snap.Counters[key]; ok && c > 0 {
			perShard++
		}
	}
	if perShard < 2 {
		t.Fatalf("per-shard request counters present for %d shards, want >=2 (snapshot: %v)", perShard, snap.Counters)
	}
}
