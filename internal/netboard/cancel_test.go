package netboard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/boardclient"
)

// TestBackoffSkippedWhenContextCancelled is the regression test for the
// unconditional backoff sleep: once the context is cancelled, the retry
// loop must stop before the next wait, observed through the sleep stub
// (zero stub calls after cancellation) rather than wall-clock timing.
func TestBackoffSkippedWhenContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cancel() // the first (and only) attempt kills the run
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retries = 5
	c.RetryBackoff = time.Hour // a single un-cut wait would hang the test
	var slept int
	c.sleep = func(time.Duration) { slept++ }
	var got error
	c.OnError = func(err error) { got = err }

	b := c.BindContext(ctx)
	b.PostProbe(0, 0, 1)

	if slept != 0 {
		t.Fatalf("backoff slept %d times after cancellation, want 0", slept)
	}
	if got == nil || !errors.Is(got, context.Canceled) {
		t.Fatalf("error = %v, want one wrapping context.Canceled", got)
	}
	var terr *TransportError
	if !errors.As(got, &terr) {
		t.Fatalf("error %v is not a *TransportError", got)
	}
}

// TestBackoffRealTimerCutShort covers the non-stubbed path: a cancelled
// context interrupts an in-progress timer wait, so a client configured
// with a long backoff against a dead server returns promptly.
func TestBackoffRealTimerCutShort(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listening
	c.Retries = 3
	c.RetryBackoff = 5 * time.Second
	var got error
	c.OnError = func(err error) { got = err }

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	b := c.BindContext(ctx)
	start := time.Now()
	b.PostProbe(0, 0, 1)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled retry loop took %v, want well under the 5s backoff unit", elapsed)
	}
	if got == nil || !errors.Is(got, context.Canceled) {
		t.Fatalf("error = %v, want one wrapping context.Canceled", got)
	}
}

// TestBindContextSharesState checks the bound view is the same logical
// client: posts through the bound view are visible through the plain
// one, and a nil-Done context binds to the client itself.
func TestBindContextSharesState(t *testing.T) {
	board := billboard.New(4, 8)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	c := NewClient(srv.URL)

	if got := c.BindContext(context.Background()); got != boardclient.Interface(c) {
		t.Fatal("Background context should bind to the client itself")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := c.BindContext(ctx)
	b.PostProbe(1, 2, 1)
	if v, ok := c.LookupProbe(1, 2); !ok || v != 1 {
		t.Fatalf("post through bound view not visible: (%d,%v)", v, ok)
	}
	if got := boardclient.BindContext(ctx, c); got == boardclient.Interface(c) {
		t.Fatal("BindContext helper did not bind a cancellable context")
	}
}
