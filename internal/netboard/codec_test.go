package netboard

// Codec seam tests: the mixed-codec cluster gate (one shard pinned to
// JSON mid-fleet, under network faults) and the differential fuzz that
// holds the binary codec to the JSON codec's round-trip semantics.

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/netboard/faultnet"
	"tellme/internal/prefs"
	"tellme/internal/wire"
)

// TestClusterMixedCodecFaultnetFallback is the mid-drain reality check:
// a binary-pinned client fleet against a cluster where one shard is
// still JSON-only (a not-yet-upgraded server), with that shard's
// network degraded on top. The run must produce byte-identical results,
// the JSON-only shard's client must trip its sticky fallback, and the
// binary-capable shards must keep speaking binary.
func TestClusterMixedCodecFaultnetFallback(t *testing.T) {
	in := prefs.Identical(32, 64, 0.5, 5)
	local := runZeroRadius(in, billboard.New(in.N, in.M))

	boards := make([]*billboard.Board, 3)
	urls := make([]string, 3)
	for i := range boards {
		boards[i] = billboard.New(in.N, in.M)
		opts := []ServerOption{}
		if i == 1 {
			opts = append(opts, WithJSONOnly())
		}
		srv := httptest.NewServer(NewServer(boards[i], opts...))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ft := faultnet.New(nil, 4242)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.15, 0.1, 0.2
	ft.MaxDelay = 200 * time.Microsecond
	u, err := url.Parse(urls[1])
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(ClusterConfig{
		Shards: urls,
		Client: Config{
			Codec:        "binary",
			HTTPClient:   &http.Client{Transport: &hostFaultRouter{degradedHost: u.Host, degraded: ft, clean: http.DefaultTransport}},
			Retries:      40,
			RetryBackoff: 100 * time.Microsecond,
			JitterSeed:   17,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	remote := runZeroRadius(in, cluster)
	for p := range local {
		for j := range local[p] {
			if local[p][j] != remote[p][j] {
				t.Fatalf("player %d bit %d differs in the mixed-codec cluster", p, j)
			}
		}
	}

	_, clients := cluster.topo()
	if !clients[1].binaryOff.Load() {
		t.Fatal("JSON-only shard never tripped the client's sticky JSON fallback")
	}
	if clients[0].binaryOff.Load() || clients[2].binaryOff.Load() {
		t.Fatal("a binary-capable shard lost its binary codec")
	}
	if boards[1].ProbeCount() == 0 && boards[1].VectorPostCount() == 0 {
		t.Fatal("JSON-only shard holds no data; the fallback was never exercised")
	}
	ref := billboard.New(in.N, in.M)
	runZeroRadius(in, ref)
	var probes int64
	for _, b := range boards {
		probes += b.ProbeCount()
	}
	if probes != ref.ProbeCount() {
		t.Fatalf("mixed cluster holds %d probes, in-memory run %d: lost or duplicated", probes, ref.ProbeCount())
	}
	if ft.DroppedRequests() == 0 && ft.LostResponses() == 0 && ft.Duplicated() == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	if err := cluster.Err(); err != nil {
		t.Fatalf("cluster degraded: %v", err)
	}
}

// byteGen derives message contents deterministically from fuzz input.
type byteGen struct {
	data []byte
	i    int
}

func (g *byteGen) byte() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

func (g *byteGen) intn(n int) int { return int(g.byte()) % n }

// text returns a valid-UTF-8 string: json.Marshal rewrites invalid
// UTF-8 to U+FFFD, which would make the two round trips differ for
// reasons that have nothing to do with the codecs.
func (g *byteGen) text(maxLen int) string {
	n := g.intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = ' ' + g.byte()%95 // printable ASCII
	}
	return string(b)
}

// bits returns a '0'/'1'/'?' string of the given width.
func (g *byteGen) bits(width int) string {
	b := make([]byte, width)
	for i := range b {
		b[i] = "01?"[g.intn(3)]
	}
	return string(b)
}

func (g *byteGen) partial(width int) bitvec.Partial {
	p, err := bitvec.PartialFromString(g.bits(width))
	if err != nil {
		panic(err)
	}
	return p
}

// width picks a plane width, biased toward the boundary cases the
// packed layout must get right: empty, single-word, word-aligned, and
// one-past-aligned.
func (g *byteGen) width() int {
	return []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 300}[g.intn(10)]
}

// voters returns a voter list, rotating through nil / empty / short.
func (g *byteGen) voters() []int {
	switch g.intn(3) {
	case 0:
		return nil
	case 1:
		return []int{}
	default:
		out := make([]int, g.intn(4)+1)
		for i := range out {
			out[i] = g.intn(1 << 16)
		}
		return out
	}
}

func (g *byteGen) vals() []uint32 {
	switch g.intn(3) {
	case 0:
		return nil
	case 1:
		return []uint32{}
	default:
		out := make([]uint32, g.intn(4)+1)
		for i := range out {
			out[i] = uint32(g.byte()) << uint32(g.intn(24))
		}
		return out
	}
}

func (g *byteGen) votes(n int) voteList {
	if n == 0 {
		return nil
	}
	l := make(voteList, n)
	for i := range l {
		l[i] = voteJSON{Bits: wire.Bits{P: g.partial(g.width())}, Count: g.intn(1 << 10), Voters: g.voters()}
	}
	return l
}

func (g *byteGen) valueVotes(n int) valueVoteList {
	if n == 0 {
		return nil
	}
	l := make(valueVoteList, n)
	for i := range l {
		l[i] = valueVoteJSON{Vals: g.vals(), Count: g.intn(1 << 10), Voters: g.voters()}
	}
	return l
}

// roundTrip encodes msg with the codec and decodes it into fresh.
func roundTrip(t *testing.T, c wire.Codec, msg, fresh wire.Message) wire.Message {
	t.Helper()
	data, err := c.Append(nil, msg)
	if err != nil {
		t.Fatalf("%s encode %T: %v", c.Name(), msg, err)
	}
	if err := c.Decode(data, fresh); err != nil {
		t.Fatalf("%s decode %T: %v (frame % x)", c.Name(), msg, err, data)
	}
	return fresh
}

// FuzzCodecRoundTrip is the differential oracle: for generated messages
// of every protocol type, the binary round trip must produce exactly
// what the JSON round trip produces — same values, same nil-vs-empty
// slices. Omitempty fields (topic snapshot tallies) are generated
// nil-or-populated, never empty-non-nil, because JSON cannot represent
// that distinction; everywhere else empties are fair game.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})                                // all-zero generator: empty batches, zero widths
	f.Add([]byte{3, 64, 1, 2, 3, 4, 5})            // word-aligned planes
	f.Add([]byte{9, 65, 0, 255, 128, 64, 32, 7})   // one past aligned
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}) // max-D-ish: everything known
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &byteGen{data: data}
		msgs := []struct {
			msg   wire.Message
			fresh func() wire.Message
		}{
			{&probePost{Player: g.intn(1 << 12), Object: g.intn(1 << 12), Value: g.byte() % 2},
				func() wire.Message { return &probePost{} }},
			{&probeReply{Value: g.byte() % 2, OK: g.intn(2) == 1},
				func() wire.Message { return &probeReply{} }},
			{&vectorPost{Topic: g.text(12), Player: g.intn(1 << 12), Bits: wire.Bits{P: g.partial(g.width())}},
				func() wire.Message { return &vectorPost{} }},
			{&valuesPost{Topic: g.text(12), Player: g.intn(1 << 12), Vals: g.vals()},
				func() wire.Message { return &valuesPost{} }},
			{&batchProbesPost{Player: g.intn(1 << 12), Objects: g.voters(), Grades: g.bits(g.intn(8))},
				func() wire.Message { return &batchProbesPost{} }},
			{&batchLookupsReply{Grades: g.bits(g.intn(8))},
				func() wire.Message { return &batchLookupsReply{} }},
			{&postingList{{Player: g.intn(100), Bits: wire.Bits{P: g.partial(g.width())}}},
				func() wire.Message { return &postingList{} }},
			{&voteList{}, func() wire.Message { return &voteList{} }},
			{ptr(g.votes(g.intn(4))), func() wire.Message { return &voteList{} }},
			{ptr(g.valueVotes(g.intn(4))), func() wire.Message { return &valueVoteList{} }},
			{&topicSnapshotReply{Gen: uint64(g.byte()), Epoch: uint64(g.byte()), Unchanged: g.intn(2) == 1,
				Votes: g.votes(g.intn(3)), ValueVotes: g.valueVotes(g.intn(3))},
				func() wire.Message { return &topicSnapshotReply{} }},
			{&topicsReply{Topics: []string{g.text(6), g.text(6)}},
				func() wire.Message { return &topicsReply{} }},
			{&clearProbesPost{Player: g.intn(1 << 12), Objects: g.voters()},
				func() wire.Message { return &clearProbesPost{} }},
			{&dropIfPost{Topic: g.text(12), Vectors: g.intn(100), Values: g.intn(100)},
				func() wire.Message { return &dropIfPost{} }},
			{&statsReply{ProbeCount: int64(g.byte()), VectorPostCount: int64(g.byte()), TopicCount: g.intn(100), N: g.intn(1 << 12), M: g.intn(1 << 12)},
				func() wire.Message { return &statsReply{} }},
		}
		for _, m := range msgs {
			viaJSON := roundTrip(t, wire.JSON, m.msg, m.fresh())
			viaBinary := roundTrip(t, wire.Binary, m.msg, m.fresh())
			if !reflect.DeepEqual(viaJSON, viaBinary) {
				t.Fatalf("%T diverges:\n json   round trip: %#v\n binary round trip: %#v", m.msg, viaJSON, viaBinary)
			}
		}
	})
}

func ptr[T any](v T) *T { return &v }

// FuzzBinaryDecode throws arbitrary bytes at the binary decoder of
// every message type: it may reject, it must never panic or hang, and
// anything it accepts must normalize in one step — re-encoding the
// decoded message and decoding that again must reach a fixed point
// (the decoder tolerates non-minimal uvarints, nonzero bools and dirty
// plane tails, but what it produces from them must be canonical).
func FuzzBinaryDecode(f *testing.F) {
	seed, _ := wire.Binary.Append(nil, &topicSnapshotReply{Votes: voteList{{Count: 1}}})
	f.Add(seed)
	f.Add([]byte{'T', 'B', 1, 0x01})
	f.Add([]byte{'T', 'B', 1, 0x0d, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fresh := range []func() wire.Message{
			func() wire.Message { return &probePost{} },
			func() wire.Message { return &probedObjectsReply{} },
			func() wire.Message { return &vectorPost{} },
			func() wire.Message { return &postingList{} },
			func() wire.Message { return &voteList{} },
			func() wire.Message { return &valuePostingList{} },
			func() wire.Message { return &valueVoteList{} },
			func() wire.Message { return &batchProbesPost{} },
			func() wire.Message { return &topicSnapshotReply{} },
			func() wire.Message { return &topicsReply{} },
			func() wire.Message { return &statsReply{} },
		} {
			v := fresh()
			if err := wire.Binary.Decode(data, v); err != nil {
				continue
			}
			re1, err := wire.Binary.Append(nil, v)
			if err != nil {
				t.Fatalf("re-encode of accepted %T failed: %v", v, err)
			}
			w := fresh()
			if err := wire.Binary.Decode(re1, w); err != nil {
				t.Fatalf("%T rejected its own re-encoding: %v\n in:  % x\n out: % x", v, err, data, re1)
			}
			re2, err := wire.Binary.Append(nil, w)
			if err != nil {
				t.Fatalf("second re-encode of %T failed: %v", v, err)
			}
			if !wire.Equal(re1, re2) {
				t.Fatalf("%T does not normalize:\n in:   % x\n enc1: % x\n enc2: % x", v, data, re1, re2)
			}
		}
	})
}
