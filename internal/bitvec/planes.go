package bitvec

import "math/bits"

// This file holds the columnar (bit-plane) representation used by the
// tally engines. A PlaneSet stores N added rows (players' vectors) as
// D coordinate planes of ⌈N/64⌉ words each: bit k of coordinate j's
// plane word b is row (64b+k)'s value at coordinate j. Per-coordinate
// tallies then become one popcount per plane word instead of N
// per-coordinate bit reads.
//
// Equivalence contract (DESIGN.md §11): for every kernel there is a
// naive row-major loop over Get(i) that defines its meaning, and the
// plane kernels must agree with it exactly — FuzzPlaneTally enforces
// this differentially, including '?' masks and non-word-aligned D.

// WordsFor returns the number of 64-bit words that back an n-coordinate
// vector — the length Wrap and WrapPartial require of their word slices.
func WordsFor(n int) int { return words(n) }

// Words exposes v's backing words (coordinate i is bit i&63 of word
// i>>6). The slice is shared, not copied: writes through it mutate v.
func (v Vector) Words() []uint64 { return v.w }

// Wrap builds a Vector over an existing word slice without copying.
// len(w) must be WordsFor(n) and bits at positions ≥ n must be clear;
// the caller keeps ownership of the backing array (e.g. an arena).
func Wrap(n int, w []uint64) Vector {
	if len(w) != words(n) {
		panic("bitvec: Wrap word count mismatch")
	}
	return Vector{n: n, w: w}
}

// Planes exposes p's value and known planes (shared, not copied). The
// representation invariant val ⊆ known holds: a val bit is set only
// where the known bit is set.
func (p Partial) Planes() (val, known []uint64) { return p.val, p.known }

// FillOnes sets bits 0..n-1 of w and clears any bits ≥ n; len(w) must
// be WordsFor(n). It prepares e.g. the shared known plane of
// fully-determined WrapPartial views.
func FillOnes(n int, w []uint64) {
	if len(w) != words(n) {
		panic("bitvec: FillOnes word count mismatch")
	}
	for i := range w {
		w[i] = ^uint64(0)
	}
	if len(w) > 0 {
		w[len(w)-1] = lastMask(n)
	}
}

// WrapPartial builds a Partial over existing value/known word slices
// without copying. Both must have WordsFor(n) words, bits ≥ n clear,
// and satisfy val ⊆ known.
func WrapPartial(n int, val, known []uint64) Partial {
	if len(val) != words(n) || len(known) != words(n) {
		panic("bitvec: WrapPartial word count mismatch")
	}
	return Partial{n: n, val: val, known: known}
}

// transpose64 transposes a in place as a 64×64 bit matrix under the
// package's LSB-first convention: element (r, c) is bit c of a[r].
// (This is the Hacker's Delight recursive block transpose mirrored for
// LSB-first columns.)
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j, m = j>>1, m^(m<<(j>>1)) {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k]>>j ^ a[k+int(j)]) & m
			a[k+int(j)] ^= t
			a[k] ^= t << j
		}
	}
}

// PlaneSet accumulates rows — total Vectors or Partials of one common
// dimension d — and serves word-parallel per-coordinate tallies over
// them. Rows are staged 64 at a time and block-transposed into planes,
// so both insertion and tallying run word-parallel.
//
// The zero value is unusable; construct with NewPlaneSet and recycle
// with Reset. A PlaneSet is single-goroutine, like the arenas.
type PlaneSet struct {
	d  int // coordinates per row
	wd int // words per row, words(d)
	n  int // rows added

	// Flushed blocks, block-major: coordinate j of block b lives at
	// index b*d+j; bit k is row 64b+k. val bits are set only where the
	// matching known bit is (rows are Partials under val ⊆ known; total
	// vectors get a fully-set known row).
	val   []uint64
	known []uint64

	// Staging for the next (partial) block: row k's words at
	// [k*wd, (k+1)*wd). Rows ≥ nbuf are kept zero so the tail transpose
	// can run over all 64 without masking.
	bufVal []uint64
	bufKn  []uint64
	nbuf   int
}

// NewPlaneSet returns an empty PlaneSet for d-coordinate rows.
func NewPlaneSet(d int) *PlaneSet {
	s := &PlaneSet{}
	s.Reset(d)
	return s
}

// Reset empties the set and re-dimensions it for d-coordinate rows,
// keeping allocated storage for reuse.
func (s *PlaneSet) Reset(d int) {
	if d < 0 {
		panic("bitvec: negative dimension")
	}
	wd := words(d)
	if cap(s.bufVal) < 64*wd {
		s.bufVal = make([]uint64, 64*wd)
		s.bufKn = make([]uint64, 64*wd)
	} else {
		s.bufVal = s.bufVal[:64*wd]
		s.bufKn = s.bufKn[:64*wd]
		clear(s.bufVal)
		clear(s.bufKn)
	}
	s.d, s.wd, s.n, s.nbuf = d, wd, 0, 0
	s.val = s.val[:0]
	s.known = s.known[:0]
}

// Len returns the number of rows added.
func (s *PlaneSet) Len() int { return s.n }

// Dim returns the per-row coordinate count.
func (s *PlaneSet) Dim() int { return s.d }

// AddVector adds a total vector as a fully-known row.
func (s *PlaneSet) AddVector(v Vector) {
	if v.n != s.d {
		panic("bitvec: AddVector dimension mismatch")
	}
	s.AddBits(v.w, nil)
}

// AddPartial adds a partial vector row; its '?' coordinates are
// excluded from known tallies.
func (s *PlaneSet) AddPartial(p Partial) {
	if p.n != s.d {
		panic("bitvec: AddPartial dimension mismatch")
	}
	s.AddBits(p.val, p.known)
}

// AddBits adds a row from raw planes: val holds the value bits and
// known the determined-coordinate mask (nil meaning fully known). Both
// must have WordsFor(Dim()) words with bits ≥ Dim() clear and
// val ⊆ known.
func (s *PlaneSet) AddBits(val, known []uint64) {
	if len(val) != s.wd || (known != nil && len(known) != s.wd) {
		panic("bitvec: AddBits word count mismatch")
	}
	row := s.bufVal[s.nbuf*s.wd:][:s.wd]
	copy(row, val)
	krow := s.bufKn[s.nbuf*s.wd:][:s.wd]
	if known != nil {
		copy(krow, known)
	} else if s.wd > 0 {
		for i := range krow {
			krow[i] = ^uint64(0)
		}
		krow[s.wd-1] = lastMask(s.d)
	}
	s.nbuf++
	s.n++
	if s.nbuf == 64 {
		s.flush()
	}
}

// flush transposes the 64 staged rows into one flushed block and clears
// the staging area (tail transposes rely on unused staged rows being
// zero).
func (s *PlaneSet) flush() {
	base := len(s.val)
	s.val = extendZero(s.val, s.d)
	s.known = extendZero(s.known, s.d)
	var in [64]uint64
	for wi := 0; wi < s.wd; wi++ {
		lo := wi * 64
		hi := s.d - lo
		if hi > 64 {
			hi = 64
		}
		for k := 0; k < 64; k++ {
			in[k] = s.bufVal[k*s.wd+wi]
		}
		transpose64(&in)
		copy(s.val[base+lo:base+lo+hi], in[:hi])
		for k := 0; k < 64; k++ {
			in[k] = s.bufKn[k*s.wd+wi]
		}
		transpose64(&in)
		copy(s.known[base+lo:base+lo+hi], in[:hi])
	}
	clear(s.bufVal)
	clear(s.bufKn)
	s.nbuf = 0
}

// extendZero grows b by n zeroed elements, doubling capacity.
func extendZero(b []uint64, n int) []uint64 {
	l := len(b)
	if cap(b) < l+n {
		c := 2 * cap(b)
		if c < l+n {
			c = l + n
		}
		nb := make([]uint64, l, c)
		copy(nb, b)
		b = nb
	}
	b = b[:l+n]
	clear(b[l:])
	return b
}

// tailPlane transposes word chunk wi of the staged rows from buf and
// returns the coordinate words for that chunk in out.
func tailPlane(buf []uint64, wd, wi int, out *[64]uint64) {
	for k := 0; k < 64; k++ {
		out[k] = buf[k*wd+wi]
	}
	transpose64(out)
}

// TallyColumns fills ones[j] with the number of rows whose coordinate j
// is a known 1, for every j < Dim(), reusing ones when it has capacity.
// Equivalent to counting Get(j) == 1 over all added rows.
func (s *PlaneSet) TallyColumns(ones []int) []int {
	ones = intsFor(ones, s.d)
	if s.d == 0 {
		return ones
	}
	for b := 0; b < len(s.val)/s.d; b++ {
		row := s.val[b*s.d : (b+1)*s.d]
		for j, w := range row {
			ones[j] += bits.OnesCount64(w)
		}
	}
	if s.nbuf > 0 {
		var t [64]uint64
		for wi := 0; wi < s.wd; wi++ {
			tailPlane(s.bufVal, s.wd, wi, &t)
			lo := wi * 64
			hi := s.d - lo
			if hi > 64 {
				hi = 64
			}
			for j := 0; j < hi; j++ {
				ones[lo+j] += bits.OnesCount64(t[j])
			}
		}
	}
	return ones
}

// TallyKnown fills known[j] with the number of rows whose coordinate j
// is determined (non-'?'), reusing known when it has capacity. Rows
// added as total vectors count at every coordinate.
func (s *PlaneSet) TallyKnown(known []int) []int {
	known = intsFor(known, s.d)
	if s.d == 0 {
		return known
	}
	for b := 0; b < len(s.known)/s.d; b++ {
		row := s.known[b*s.d : (b+1)*s.d]
		for j, w := range row {
			known[j] += bits.OnesCount64(w)
		}
	}
	if s.nbuf > 0 {
		var t [64]uint64
		for wi := 0; wi < s.wd; wi++ {
			tailPlane(s.bufKn, s.wd, wi, &t)
			lo := wi * 64
			hi := s.d - lo
			if hi > 64 {
				hi = 64
			}
			for j := 0; j < hi; j++ {
				known[lo+j] += bits.OnesCount64(t[j])
			}
		}
	}
	return known
}

// MajorityVector writes the known-majority row into v: coordinate j
// becomes 1 iff strictly more than half of the rows with j determined
// hold a 1 there (ties and all-'?' coordinates become 0). ones and
// known are optional tally scratch (nil allocates); when provided they
// are overwritten.
func (s *PlaneSet) MajorityVector(v Vector, ones, known []int) {
	if v.n != s.d {
		panic("bitvec: MajorityVector dimension mismatch")
	}
	ones = s.TallyColumns(ones)
	known = s.TallyKnown(known)
	clear(v.w)
	for j, o := range ones {
		if 2*o > known[j] {
			v.w[j>>6] |= uint64(1) << (uint(j) & 63)
		}
	}
}

// intsFor returns buf resliced and zeroed to length n, allocating only
// when buf's capacity is insufficient.
func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
