package bitvec

import "testing"

// FuzzPartialFromString checks the ternary-vector parser on arbitrary
// strings: never crash, accept exactly {0,1,?}* and round-trip.
func FuzzPartialFromString(f *testing.F) {
	f.Add("01?10")
	f.Add("")
	f.Add("2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := PartialFromString(s)
		valid := true
		for i := 0; i < len(s); i++ {
			if c := s[i]; c != '0' && c != '1' && c != '?' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("validity mismatch for %q: err=%v", s, err)
		}
		if err == nil && p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	})
}

// FuzzFromString does the same for binary vectors.
func FuzzFromString(f *testing.F) {
	f.Add("0101")
	f.Add("?")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := FromString(s)
		valid := true
		for i := 0; i < len(s); i++ {
			if c := s[i]; c != '0' && c != '1' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("validity mismatch for %q", s)
		}
		if err == nil && v.String() != s {
			t.Fatalf("round trip %q -> %q", s, v.String())
		}
	})
}
