package bitvec

import (
	"math/rand"
	"testing"
)

// FuzzPartialFromString checks the ternary-vector parser on arbitrary
// strings: never crash, accept exactly {0,1,?}* and round-trip.
func FuzzPartialFromString(f *testing.F) {
	f.Add("01?10")
	f.Add("")
	f.Add("2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := PartialFromString(s)
		valid := true
		for i := 0; i < len(s); i++ {
			if c := s[i]; c != '0' && c != '1' && c != '?' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("validity mismatch for %q: err=%v", s, err)
		}
		if err == nil && p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	})
}

// FuzzPlaneTally differentially checks the bit-plane tally kernels
// against the naive row-major definition: for an arbitrary (seed, d, n)
// a mix of total, partial and raw-plane rows is added to a PlaneSet and
// TallyColumns / TallyKnown / MajorityVector must agree bit-for-bit
// with per-row Get loops — including '?' masks, non-word-aligned
// dimensions and row counts straddling the 64-row staging block.
func FuzzPlaneTally(f *testing.F) {
	f.Add(uint64(1), 5, 3)
	f.Add(uint64(2), 64, 64)
	f.Add(uint64(3), 65, 129)
	f.Add(uint64(4), 130, 200)
	f.Add(uint64(5), 0, 10)
	f.Add(uint64(6), 63, 0)
	f.Fuzz(func(t *testing.T, seed uint64, d, n int) {
		if d < 0 || d > 300 || n < 0 || n > 500 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(int64(seed)))
		s := NewPlaneSet(d)
		rows := make([]Partial, 0, n)
		for i := 0; i < n; i++ {
			p := NewPartial(d)
			for j := 0; j < d; j++ {
				switch r.Intn(3) {
				case 0:
					p.SetBit(j, 0)
				case 1:
					p.SetBit(j, 1)
				}
			}
			switch r.Intn(3) {
			case 0: // total vector row: force every coordinate known
				v := New(d)
				for j := 0; j < d; j++ {
					if p.Get(j) == 1 {
						v.Set(j, 1)
					}
				}
				p = PartialOf(v)
				s.AddVector(v)
			case 1:
				s.AddPartial(p)
			default: // raw planes, nil known = fully known
				v := New(d)
				for j := 0; j < d; j++ {
					if p.Get(j) == 1 {
						v.Set(j, 1)
					}
				}
				p = PartialOf(v)
				s.AddBits(v.Words(), nil)
			}
			rows = append(rows, p)
		}
		if s.Len() != n {
			t.Fatalf("Len = %d, want %d", s.Len(), n)
		}
		wantOnes := make([]int, d)
		wantKnown := make([]int, d)
		for _, p := range rows {
			for j := 0; j < d; j++ {
				switch p.Get(j) {
				case 1:
					wantOnes[j]++
					wantKnown[j]++
				case 0:
					wantKnown[j]++
				}
			}
		}
		ones := s.TallyColumns(nil)
		known := s.TallyKnown(nil)
		for j := 0; j < d; j++ {
			if ones[j] != wantOnes[j] || known[j] != wantKnown[j] {
				t.Fatalf("coordinate %d: got (%d,%d), want (%d,%d)",
					j, ones[j], known[j], wantOnes[j], wantKnown[j])
			}
		}
		maj := New(d)
		s.MajorityVector(maj, ones, known)
		for j := 0; j < d; j++ {
			want := byte(0)
			if 2*wantOnes[j] > wantKnown[j] {
				want = 1
			}
			if maj.Get(j) != want {
				t.Fatalf("majority bit %d: got %d, want %d", j, maj.Get(j), want)
			}
		}
	})
}

// FuzzLessEquivalence checks the word-parallel Vector.Less and
// Partial.Less against per-coordinate reference comparisons.
func FuzzLessEquivalence(f *testing.F) {
	f.Add(uint64(1), 70)
	f.Add(uint64(2), 64)
	f.Add(uint64(3), 1)
	f.Fuzz(func(t *testing.T, seed uint64, d int) {
		if d < 0 || d > 300 {
			t.Skip()
		}
		r := rand.New(rand.NewSource(int64(seed)))
		mkPartial := func() Partial {
			p := NewPartial(d)
			for j := 0; j < d; j++ {
				switch r.Intn(3) {
				case 0:
					p.SetBit(j, 0)
				case 1:
					p.SetBit(j, 1)
				}
			}
			return p
		}
		p, q := mkPartial(), mkPartial()
		if r.Intn(2) == 0 {
			q = p // equal case
		}
		refLess := func(a, b Partial) bool {
			for j := 0; j < d; j++ {
				x, y := a.Get(j), b.Get(j)
				if x == y {
					continue
				}
				// Order: 0 < 1 < '?' (Unknown sorts last).
				if x == Unknown {
					return false
				}
				if y == Unknown {
					return true
				}
				return x < y
			}
			return false
		}
		if got, want := p.Less(q), refLess(p, q); got != want {
			t.Fatalf("Partial.Less(%s, %s) = %v, want %v", p, q, got, want)
		}
		v, u := New(d), New(d)
		for j := 0; j < d; j++ {
			v.Set(j, byte(r.Intn(2)))
			u.Set(j, byte(r.Intn(2)))
		}
		refVLess := func(a, b Vector) bool {
			for j := 0; j < d; j++ {
				if a.Get(j) != b.Get(j) {
					return a.Get(j) < b.Get(j)
				}
			}
			return false
		}
		if got, want := v.Less(u), refVLess(v, u); got != want {
			t.Fatalf("Vector.Less(%s, %s) = %v, want %v", v, u, got, want)
		}
	})
}

// FuzzFromString does the same for binary vectors.
func FuzzFromString(f *testing.F) {
	f.Add("0101")
	f.Add("?")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := FromString(s)
		valid := true
		for i := 0; i < len(s); i++ {
			if c := s[i]; c != '0' && c != '1' {
				valid = false
				break
			}
		}
		if valid != (err == nil) {
			t.Fatalf("validity mismatch for %q", s)
		}
		if err == nil && v.String() != s {
			t.Fatalf("round trip %q -> %q", s, v.String())
		}
	})
}
