package bitvec

import (
	"testing"

	"tellme/internal/rng"
)

// TestTranspose64Orientation pins the LSB-first convention: element
// (r, c) = bit c of a[r], and transpose moves (r, c) to (c, r).
func TestTranspose64Orientation(t *testing.T) {
	cases := []struct{ r, c int }{{0, 0}, {0, 63}, {63, 0}, {5, 17}, {62, 1}, {31, 32}}
	for _, tc := range cases {
		var a [64]uint64
		a[tc.r] = 1 << uint(tc.c)
		transpose64(&a)
		for r := 0; r < 64; r++ {
			want := uint64(0)
			if r == tc.c {
				want = 1 << uint(tc.r)
			}
			if a[r] != want {
				t.Fatalf("bit (%d,%d): row %d = %#x, want %#x", tc.r, tc.c, r, a[r], want)
			}
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	r := rng.New(11)
	var a, orig [64]uint64
	for i := range a {
		a[i] = r.Uint64()
	}
	orig = a
	transpose64(&a)
	transpose64(&a)
	if a != orig {
		t.Fatal("transpose64 is not an involution")
	}
}

// naiveTallies computes the per-coordinate tallies the plane kernels
// must reproduce, straight from the row-major definition.
func naiveTallies(d int, rows []Partial) (ones, known []int) {
	ones = make([]int, d)
	known = make([]int, d)
	for _, p := range rows {
		for j := 0; j < d; j++ {
			switch p.Get(j) {
			case 1:
				ones[j]++
				known[j]++
			case 0:
				known[j]++
			}
		}
	}
	return ones, known
}

func randPartial(r *rng.Rand, d int, unknownP float64) Partial {
	p := NewPartial(d)
	for j := 0; j < d; j++ {
		if r.Float64() < unknownP {
			continue
		}
		p.SetBit(j, byte(r.Intn(2)))
	}
	return p
}

func TestPlaneSetMatchesNaive(t *testing.T) {
	r := rng.New(42)
	// Dimensions straddle word boundaries; row counts straddle block
	// boundaries (tails, exactly full blocks, multiple blocks).
	for _, d := range []int{1, 3, 63, 64, 65, 130} {
		for _, n := range []int{0, 1, 63, 64, 65, 200} {
			s := NewPlaneSet(d)
			rows := make([]Partial, 0, n)
			for i := 0; i < n; i++ {
				switch i % 3 {
				case 0:
					v := Random(r, d)
					s.AddVector(v)
					rows = append(rows, PartialOf(v))
				case 1:
					p := randPartial(r, d, 0.4)
					s.AddPartial(p)
					rows = append(rows, p)
				default:
					p := randPartial(r, d, 0.1)
					val, known := p.Planes()
					s.AddBits(val, known)
					rows = append(rows, p)
				}
			}
			if s.Len() != n || s.Dim() != d {
				t.Fatalf("d=%d n=%d: Len/Dim = %d/%d", d, n, s.Len(), s.Dim())
			}
			wantOnes, wantKnown := naiveTallies(d, rows)
			gotOnes := s.TallyColumns(nil)
			gotKnown := s.TallyKnown(nil)
			for j := 0; j < d; j++ {
				if gotOnes[j] != wantOnes[j] || gotKnown[j] != wantKnown[j] {
					t.Fatalf("d=%d n=%d coord %d: ones %d/%d known %d/%d",
						d, n, j, gotOnes[j], wantOnes[j], gotKnown[j], wantKnown[j])
				}
			}
			maj := New(d)
			s.MajorityVector(maj, nil, nil)
			for j := 0; j < d; j++ {
				want := byte(0)
				if 2*wantOnes[j] > wantKnown[j] {
					want = 1
				}
				if maj.Get(j) != want {
					t.Fatalf("d=%d n=%d coord %d: majority %d, want %d", d, n, j, maj.Get(j), want)
				}
			}
		}
	}
}

// TestPlaneSetTallyAfterPartialTail interleaves tallies with adds, so
// the staged-tail path is exercised with live data before and after a
// flush.
func TestPlaneSetTallyAfterPartialTail(t *testing.T) {
	r := rng.New(7)
	const d = 70
	s := NewPlaneSet(d)
	var rows []Partial
	for i := 0; i < 150; i++ {
		p := randPartial(r, d, 0.3)
		s.AddPartial(p)
		rows = append(rows, p)
		if i%37 == 0 {
			wantOnes, wantKnown := naiveTallies(d, rows)
			gotOnes := s.TallyColumns(nil)
			gotKnown := s.TallyKnown(nil)
			for j := 0; j < d; j++ {
				if gotOnes[j] != wantOnes[j] || gotKnown[j] != wantKnown[j] {
					t.Fatalf("after %d rows, coord %d: ones %d/%d known %d/%d",
						i+1, j, gotOnes[j], wantOnes[j], gotKnown[j], wantKnown[j])
				}
			}
		}
	}
}

func TestPlaneSetReset(t *testing.T) {
	r := rng.New(9)
	s := NewPlaneSet(100)
	for i := 0; i < 100; i++ {
		s.AddVector(Random(r, 100))
	}
	s.Reset(33)
	if s.Len() != 0 || s.Dim() != 33 {
		t.Fatalf("after Reset: Len=%d Dim=%d", s.Len(), s.Dim())
	}
	v := New(33)
	v.Set(5, 1)
	s.AddVector(v)
	ones := s.TallyColumns(nil)
	for j := 0; j < 33; j++ {
		want := 0
		if j == 5 {
			want = 1
		}
		if ones[j] != want {
			t.Fatalf("stale data after Reset at coord %d: %d", j, ones[j])
		}
	}
}

// TestPlaneSetScratchReuse verifies tallies reuse caller buffers with
// spare capacity and zero them first.
func TestPlaneSetScratchReuse(t *testing.T) {
	s := NewPlaneSet(10)
	v := New(10)
	v.Set(3, 1)
	s.AddVector(v)
	buf := make([]int, 16)
	for i := range buf {
		buf[i] = 99
	}
	got := s.TallyColumns(buf)
	if &got[0] != &buf[0] {
		t.Fatal("TallyColumns did not reuse caller buffer")
	}
	if len(got) != 10 || got[3] != 1 || got[0] != 0 {
		t.Fatalf("TallyColumns reuse = %v", got)
	}
}

func TestWrapAndWords(t *testing.T) {
	w := make([]uint64, WordsFor(70))
	v := Wrap(70, w)
	v.Set(69, 1)
	if w[1] != 1<<5 {
		t.Fatalf("Wrap not aliased: w[1] = %#x", w[1])
	}
	if &v.Words()[0] != &w[0] {
		t.Fatal("Words did not expose backing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with wrong word count did not panic")
		}
	}()
	Wrap(70, make([]uint64, 1))
}

func TestWrapPartialRoundTrip(t *testing.T) {
	p, err := PartialFromString("01?1?")
	if err != nil {
		t.Fatal(err)
	}
	val, known := p.Planes()
	q := WrapPartial(5, val, known)
	if !p.Equal(q) {
		t.Fatalf("WrapPartial(Planes()) = %v, want %v", q, p)
	}
}

// lessNaive is the pre-word-parallel definition of Partial.Less.
func lessNaive(p, q Partial) bool {
	rank := func(b byte) int {
		switch b {
		case 0:
			return 0
		case 1:
			return 1
		default:
			return 2
		}
	}
	for i := 0; i < p.Len(); i++ {
		a, b := rank(p.Get(i)), rank(q.Get(i))
		if a != b {
			return a < b
		}
	}
	return false
}

func TestPartialLessMatchesNaive(t *testing.T) {
	r := rng.New(31)
	for _, d := range []int{1, 64, 65, 130} {
		for trial := 0; trial < 200; trial++ {
			p := randPartial(r, d, 0.3)
			q := randPartial(r, d, 0.3)
			if trial%5 == 0 {
				q = p.Clone() // exercise the all-equal path
			}
			if got, want := p.Less(q), lessNaive(p, q); got != want {
				t.Fatalf("d=%d: Less(%v, %v) = %v, want %v", d, p, q, got, want)
			}
			if p.Less(q) && q.Less(p) {
				t.Fatal("Less not antisymmetric")
			}
		}
	}
}

func TestVectorLessMatchesNaive(t *testing.T) {
	r := rng.New(32)
	naive := func(v, u Vector) bool {
		for i := 0; i < v.Len(); i++ {
			a, b := v.Get(i), u.Get(i)
			if a != b {
				return a < b
			}
		}
		return false
	}
	for _, d := range []int{1, 64, 65, 130} {
		for trial := 0; trial < 200; trial++ {
			v := Random(r, d)
			u := Random(r, d)
			if trial%7 == 0 {
				u = v.Clone()
			}
			// Bias toward near-equal vectors so late words decide.
			if trial%2 == 0 {
				u = v.Clone()
				u.Flip(r.Intn(d))
			}
			if got, want := v.Less(u), naive(v, u); got != want {
				t.Fatalf("d=%d: Less(%v, %v) = %v, want %v", d, v, u, got, want)
			}
		}
	}
}
