// Package bitvec implements the packed binary and ternary vectors that
// represent preference vectors in the recommendation system.
//
// A Vector is an element of {0,1}^n, stored 64 coordinates per word. A
// Partial is an element of {0,1,?}^n (the paper's vectors with "don't
// care" entries, produced by Coalesce and by partially-informed players):
// it carries a value plane and a "known" mask plane.
//
// Distances follow the paper's notation: Dist is the Hamming distance
// dist(x,y); DistKnown is d~(u,v), the number of differing coordinates
// where both vectors have non-? entries (Notation 3.2).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"

	"tellme/internal/rng"
)

// Vector is a fixed-length vector over {0,1}. The zero value is an empty
// vector; construct with New or the From* helpers.
type Vector struct {
	n int
	w []uint64
}

func words(n int) int { return (n + 63) / 64 }

// lastMask returns the valid-bit mask for the final word of an n-bit vector.
func lastMask(n int) uint64 {
	if r := n % 64; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// New returns an all-zero vector of length n.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vector{n: n, w: make([]uint64, words(n))}
}

// FromBools builds a vector from a bool slice.
func FromBools(b []bool) Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i, 1)
		}
	}
	return v
}

// FromString parses a string of '0' and '1' runes into a Vector.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			v.Set(i, 1)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", s[i], i)
		}
	}
	return v, nil
}

// Random returns a uniformly random vector of length n.
func Random(r *rng.Rand, n int) Vector {
	v := New(n)
	for i := range v.w {
		v.w[i] = r.Uint64()
	}
	v.clampLast()
	return v
}

// RandomDensity returns a random vector whose coordinates are 1
// independently with probability p.
func RandomDensity(r *rng.Rand, n int, p float64) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			v.Set(i, 1)
		}
	}
	return v
}

func (v *Vector) clampLast() {
	if len(v.w) > 0 {
		v.w[len(v.w)-1] &= lastMask(v.n)
	}
}

// Len returns the number of coordinates.
func (v Vector) Len() int { return v.n }

// VectorFromWords builds a Vector of length n adopting w as its packed
// words (no copy). len(w) must be WordsFor(n); bits beyond n in the
// last word are cleared, so a decoded wire payload cannot smuggle tail
// bits into Equal/Key comparisons.
func VectorFromWords(n int, w []uint64) Vector {
	if n < 0 || len(w) != words(n) {
		panic("bitvec: VectorFromWords word count mismatch")
	}
	v := Vector{n: n, w: w}
	v.clampLast()
	return v
}

// Get returns coordinate i as 0 or 1.
func (v Vector) Get(i int) byte {
	return byte(v.w[i>>6] >> (uint(i) & 63) & 1)
}

// Set assigns coordinate i to bit (0 or 1).
func (v Vector) Set(i int, bit byte) {
	mask := uint64(1) << (uint(i) & 63)
	if bit != 0 {
		v.w[i>>6] |= mask
	} else {
		v.w[i>>6] &^= mask
	}
}

// Flip toggles coordinate i.
func (v Vector) Flip(i int) {
	v.w[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := Vector{n: v.n, w: make([]uint64, len(v.w))}
	copy(c.w, v.w)
	return c
}

// CopyFrom overwrites v with src. Lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if v.n != src.n {
		panic("bitvec: CopyFrom length mismatch")
	}
	copy(v.w, src.w)
}

// Equal reports whether v and u are identical vectors.
func (v Vector) Equal(u Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.w {
		if w != u.w[i] {
			return false
		}
	}
	return true
}

// Dist returns the Hamming distance between v and u.
func (v Vector) Dist(u Vector) int {
	if v.n != u.n {
		panic("bitvec: Dist length mismatch")
	}
	d := 0
	for i, w := range v.w {
		d += bits.OnesCount64(w ^ u.w[i])
	}
	return d
}

// OnesCount returns the number of 1 coordinates.
func (v Vector) OnesCount() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// DistOn returns the Hamming distance between v and u restricted to the
// coordinate set idx (the paper's dist|S).
func (v Vector) DistOn(u Vector, idx []int) int {
	d := 0
	for _, i := range idx {
		if v.Get(i) != u.Get(i) {
			d++
		}
	}
	return d
}

// EqualOn reports whether v and u agree on every coordinate in idx.
func (v Vector) EqualOn(u Vector, idx []int) bool {
	for _, i := range idx {
		if v.Get(i) != u.Get(i) {
			return false
		}
	}
	return true
}

// Project returns the |idx|-length vector (v[idx[0]], v[idx[1]], ...),
// the paper's projection v|S.
func (v Vector) Project(idx []int) Vector {
	p := New(len(idx))
	for j, i := range idx {
		if v.Get(i) == 1 {
			p.Set(j, 1)
		}
	}
	return p
}

// FlipRandom flips k distinct uniformly random coordinates of v in place.
// It panics if k > Len().
func (v Vector) FlipRandom(r *rng.Rand, k int) {
	if k > v.n {
		panic("bitvec: FlipRandom k exceeds length")
	}
	// Floyd's algorithm for a uniform k-subset of [0, n).
	chosen := make(map[int]struct{}, k)
	for j := v.n - k; j < v.n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		v.Flip(t)
	}
}

// String renders the vector as a string of '0' and '1' runes.
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		b.WriteByte('0' + v.Get(i))
	}
	return b.String()
}

// Key returns a compact string usable as a map key for exact-vote
// counting. Two vectors have equal keys iff they are equal.
func (v Vector) Key() string {
	buf := make([]byte, 0, len(v.w)*8+2)
	buf = append(buf, byte(v.n), byte(v.n>>8))
	for _, w := range v.w {
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(buf)
}

// Less imposes the paper's lexicographic order on equal-length vectors
// (coordinate 0 is the most significant position). The first differing
// coordinate is the lowest set bit of the first nonzero xor word —
// coordinates are stored LSB-first — so the scan is word-parallel.
func (v Vector) Less(u Vector) bool {
	if v.n != u.n {
		panic("bitvec: Less length mismatch")
	}
	for i, w := range v.w {
		if x := w ^ u.w[i]; x != 0 {
			return w&(x&-x) == 0
		}
	}
	return false
}
