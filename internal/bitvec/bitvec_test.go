package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tellme/internal/rng"
)

func TestNewIsZero(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Get(i) != 0 {
			t.Fatalf("coordinate %d not zero", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d", v.OnesCount())
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(200)
	v.Set(0, 1)
	v.Set(63, 1)
	v.Set(64, 1)
	v.Set(199, 1)
	for _, i := range []int{0, 63, 64, 199} {
		if v.Get(i) != 1 {
			t.Fatalf("coordinate %d not set", i)
		}
	}
	if v.OnesCount() != 4 {
		t.Fatalf("OnesCount = %d, want 4", v.OnesCount())
	}
	v.Flip(63)
	if v.Get(63) != 0 {
		t.Fatal("Flip did not clear bit 63")
	}
	v.Set(0, 0)
	if v.Get(0) != 0 {
		t.Fatal("Set(0,0) did not clear")
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	s := "0110100111010001"
	v, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != s {
		t.Fatalf("round trip: %q != %q", v.String(), s)
	}
	if _, err := FromString("01x"); err == nil {
		t.Fatal("expected error on invalid character")
	}
}

func TestFromBools(t *testing.T) {
	v := FromBools([]bool{true, false, true})
	if v.String() != "101" {
		t.Fatalf("got %q", v.String())
	}
}

func TestDistBasic(t *testing.T) {
	a, _ := FromString("0000")
	b, _ := FromString("0110")
	if d := a.Dist(b); d != 2 {
		t.Fatalf("Dist = %d, want 2", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestDistLargeCrossWord(t *testing.T) {
	r := rng.New(1)
	a := Random(r, 1000)
	b := a.Clone()
	flips := []int{0, 63, 64, 127, 128, 500, 999}
	for _, i := range flips {
		b.Flip(i)
	}
	if d := a.Dist(b); d != len(flips) {
		t.Fatalf("Dist = %d, want %d", d, len(flips))
	}
}

func TestEqualAndClone(t *testing.T) {
	r := rng.New(2)
	a := Random(r, 321)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Flip(320)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(100)) {
		t.Fatal("different lengths compare equal")
	}
}

func TestCopyFrom(t *testing.T) {
	r := rng.New(3)
	a := Random(r, 100)
	b := New(100)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestProjectAndDistOn(t *testing.T) {
	a, _ := FromString("010101")
	b, _ := FromString("011001")
	idx := []int{1, 2, 3}
	pa := a.Project(idx) // 101
	pb := b.Project(idx) // 110
	if pa.String() != "101" || pb.String() != "110" {
		t.Fatalf("projections %q %q", pa, pb)
	}
	if d := a.DistOn(b, idx); d != pa.Dist(pb) {
		t.Fatalf("DistOn = %d, projected = %d", d, pa.Dist(pb))
	}
	if !a.EqualOn(b, []int{0, 1, 4, 5}) {
		t.Fatal("EqualOn false on agreeing coordinates")
	}
	if a.EqualOn(b, idx) {
		t.Fatal("EqualOn true on disagreeing coordinates")
	}
}

func TestFlipRandomExactCount(t *testing.T) {
	r := rng.New(4)
	for _, k := range []int{0, 1, 7, 64, 100} {
		a := Random(r, 100)
		b := a.Clone()
		b.FlipRandom(r, k)
		if d := a.Dist(b); d != k {
			t.Fatalf("FlipRandom(%d) changed %d coordinates", k, d)
		}
	}
}

func TestRandomDensity(t *testing.T) {
	r := rng.New(5)
	v := RandomDensity(r, 10000, 0.1)
	c := v.OnesCount()
	if c < 700 || c > 1300 {
		t.Fatalf("density 0.1 produced %d/10000 ones", c)
	}
}

func TestKeyUniqueness(t *testing.T) {
	r := rng.New(6)
	seen := map[string]Vector{}
	for i := 0; i < 500; i++ {
		v := Random(r, 128)
		if prev, ok := seen[v.Key()]; ok && !prev.Equal(v) {
			t.Fatal("key collision between distinct vectors")
		}
		seen[v.Key()] = v
	}
	a, _ := FromString("01")
	b, _ := FromString("010")
	if a.Key() == b.Key() {
		t.Fatal("different lengths share a key")
	}
}

func TestLessLexicographic(t *testing.T) {
	a, _ := FromString("010")
	b, _ := FromString("011")
	c, _ := FromString("100")
	if !a.Less(b) || !a.Less(c) || !b.Less(c) {
		t.Fatal("lexicographic order wrong")
	}
	if b.Less(a) || a.Less(a) {
		t.Fatal("Less not a strict order")
	}
}

// --- property-based tests ---

// qvec adapts Vector for testing/quick generation.
type qvec struct{ V Vector }

func (qvec) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(300) + 1
	g := rng.New(r.Uint64())
	return reflect.ValueOf(qvec{V: Random(g, n)})
}

// sameLen coerces u to the length of v by regeneration, for pairwise laws.
func regen(r *rand.Rand, n int) Vector {
	g := rng.New(r.Uint64())
	return Random(g, n)
}

func TestQuickDistanceMetricLaws(t *testing.T) {
	f := func(a qvec, seed1, seed2 int64) bool {
		n := a.V.Len()
		b := regen(rand.New(rand.NewSource(seed1)), n)
		c := regen(rand.New(rand.NewSource(seed2)), n)
		dab, dba := a.V.Dist(b), b.Dist(a.V)
		if dab != dba {
			return false // symmetry
		}
		if a.V.Dist(a.V) != 0 {
			return false // identity
		}
		if dab == 0 && !a.V.Equal(b) {
			return false // identity of indiscernibles
		}
		// triangle inequality
		return a.V.Dist(c) <= dab+b.Dist(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistEqualsNaive(t *testing.T) {
	f := func(a qvec, seed int64) bool {
		b := regen(rand.New(rand.NewSource(seed)), a.V.Len())
		naive := 0
		for i := 0; i < a.V.Len(); i++ {
			if a.V.Get(i) != b.Get(i) {
				naive++
			}
		}
		return a.V.Dist(b) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a qvec) bool {
		v, err := FromString(a.V.String())
		return err == nil && v.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProjectPreservesDist(t *testing.T) {
	f := func(a qvec, seed int64) bool {
		n := a.V.Len()
		r := rand.New(rand.NewSource(seed))
		b := regen(r, n)
		// random index subset
		var idx []int
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		return a.V.Project(idx).Dist(b.Project(idx)) == a.V.DistOn(b, idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyEquality(t *testing.T) {
	f := func(a qvec, seed int64) bool {
		b := regen(rand.New(rand.NewSource(seed)), a.V.Len())
		return (a.V.Key() == b.Key()) == a.V.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDist1024(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 1024)
	y := Random(r, 1024)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Dist(y)
	}
	_ = sink
}

func BenchmarkProject(b *testing.B) {
	r := rng.New(1)
	x := Random(r, 4096)
	idx := make([]int, 512)
	for i := range idx {
		idx[i] = r.Intn(4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Project(idx)
	}
}
