package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Partial is a fixed-length vector over {0,1,?}. Coordinate i holds '?'
// when the known mask bit is clear; otherwise it holds the value bit.
// Partials arise as Coalesce outputs (merged candidates with wildcards)
// and as player outputs before every coordinate is determined.
type Partial struct {
	n     int
	val   []uint64
	known []uint64
}

// Unknown is the byte Partial.Get returns for a '?' coordinate.
const Unknown byte = '?'

// NewPartial returns an all-? partial vector of length n.
func NewPartial(n int) Partial {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Partial{n: n, val: make([]uint64, words(n)), known: make([]uint64, words(n))}
}

// PartialOf lifts a total vector into a fully-known Partial.
func PartialOf(v Vector) Partial {
	p := NewPartial(v.n)
	copy(p.val, v.w)
	for i := range p.known {
		p.known[i] = ^uint64(0)
	}
	if len(p.known) > 0 {
		p.known[len(p.known)-1] = lastMask(p.n)
	}
	return p
}

// PartialFromString parses '0', '1' and '?' runes.
func PartialFromString(s string) (Partial, error) {
	p := NewPartial(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			p.SetBit(i, 0)
		case '1':
			p.SetBit(i, 1)
		case '?':
		default:
			return Partial{}, fmt.Errorf("bitvec: invalid character %q at %d", s[i], i)
		}
	}
	return p, nil
}

// Len returns the number of coordinates.
func (p Partial) Len() int { return p.n }

// PartialFromPlanes builds a Partial of length n adopting val and known
// as its planes (no copy). Both must have WordsFor(n) words. The planes
// are clamped to the invariants every constructor maintains — tail bits
// beyond n cleared, val ⊆ known — so a decoded wire payload cannot
// produce a Partial that Equal/Less/Merge would misorder.
func PartialFromPlanes(n int, val, known []uint64) Partial {
	if n < 0 || len(val) != words(n) || len(known) != words(n) {
		panic("bitvec: PartialFromPlanes word count mismatch")
	}
	p := Partial{n: n, val: val, known: known}
	if w := len(known); w > 0 {
		known[w-1] &= lastMask(n)
	}
	for i := range val {
		val[i] &= known[i]
	}
	return p
}

// Get returns 0, 1 or Unknown for coordinate i.
func (p Partial) Get(i int) byte {
	mask := uint64(1) << (uint(i) & 63)
	if p.known[i>>6]&mask == 0 {
		return Unknown
	}
	if p.val[i>>6]&mask != 0 {
		return 1
	}
	return 0
}

// Known reports whether coordinate i is determined.
func (p Partial) Known(i int) bool {
	return p.known[i>>6]>>(uint(i)&63)&1 == 1
}

// SetBit assigns a known value to coordinate i.
func (p Partial) SetBit(i int, bit byte) {
	mask := uint64(1) << (uint(i) & 63)
	p.known[i>>6] |= mask
	if bit != 0 {
		p.val[i>>6] |= mask
	} else {
		p.val[i>>6] &^= mask
	}
}

// SetUnknown marks coordinate i as '?'.
func (p Partial) SetUnknown(i int) {
	mask := uint64(1) << (uint(i) & 63)
	p.known[i>>6] &^= mask
	p.val[i>>6] &^= mask
}

// Clone returns a deep copy.
func (p Partial) Clone() Partial {
	c := Partial{n: p.n, val: make([]uint64, len(p.val)), known: make([]uint64, len(p.known))}
	copy(c.val, p.val)
	copy(c.known, p.known)
	return c
}

// KnownCount returns the number of non-? coordinates.
func (p Partial) KnownCount() int {
	c := 0
	for _, w := range p.known {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnknownCount returns the number of ? coordinates.
func (p Partial) UnknownCount() int { return p.n - p.KnownCount() }

// Equal reports exact equality (same values and same ? positions).
func (p Partial) Equal(q Partial) bool {
	if p.n != q.n {
		return false
	}
	for i := range p.val {
		if p.val[i] != q.val[i] || p.known[i] != q.known[i] {
			return false
		}
	}
	return true
}

// DistKnown returns d~(p, q): the number of coordinates where both p and
// q are known and their values differ (paper Notation 3.2).
func (p Partial) DistKnown(q Partial) int {
	if p.n != q.n {
		panic("bitvec: DistKnown length mismatch")
	}
	d := 0
	for i := range p.val {
		both := p.known[i] & q.known[i]
		d += bits.OnesCount64((p.val[i] ^ q.val[i]) & both)
	}
	return d
}

// DistKnownVec returns d~(p, v) against a total vector v: differing
// coordinates among those known in p.
func (p Partial) DistKnownVec(v Vector) int {
	if p.n != v.n {
		panic("bitvec: DistKnownVec length mismatch")
	}
	d := 0
	for i := range p.val {
		d += bits.OnesCount64((p.val[i] ^ v.w[i]) & p.known[i])
	}
	return d
}

// DistKnownOn restricts DistKnown to the coordinate set idx.
func (p Partial) DistKnownOn(q Partial, idx []int) int {
	d := 0
	for _, i := range idx {
		a, b := p.Get(i), q.Get(i)
		if a != Unknown && b != Unknown && a != b {
			d++
		}
	}
	return d
}

// Merge implements Step 4a of Coalesce: where p and q agree the common
// value is kept; where they disagree, or either is ?, the result is ?.
func (p Partial) Merge(q Partial) Partial {
	if p.n != q.n {
		panic("bitvec: Merge length mismatch")
	}
	m := NewPartial(p.n)
	for i := range p.val {
		agree := ^(p.val[i] ^ q.val[i])
		m.known[i] = p.known[i] & q.known[i] & agree
		m.val[i] = p.val[i] & m.known[i]
	}
	return m
}

// Fill returns a total vector with every ? coordinate replaced by bit.
func (p Partial) Fill(bit byte) Vector {
	v := Vector{n: p.n, w: make([]uint64, len(p.val))}
	copy(v.w, p.val)
	if bit != 0 {
		for i := range v.w {
			v.w[i] |= ^p.known[i]
		}
		v.clampLast()
	}
	return v
}

// Overlay returns a copy of p whose ? coordinates are taken from src.
func (p Partial) Overlay(src Vector) Vector {
	if p.n != src.n {
		panic("bitvec: Overlay length mismatch")
	}
	v := Vector{n: p.n, w: make([]uint64, len(p.val))}
	for i := range v.w {
		v.w[i] = p.val[i]&p.known[i] | src.w[i]&^p.known[i]
	}
	v.clampLast()
	return v
}

// Project returns the restriction of p to the coordinate set idx.
func (p Partial) Project(idx []int) Partial {
	q := NewPartial(len(idx))
	for j, i := range idx {
		if b := p.Get(i); b != Unknown {
			q.SetBit(j, b)
		}
	}
	return q
}

// Key returns a map key; equal keys iff Equal.
func (p Partial) Key() string {
	return string(p.AppendKey(make([]byte, 0, len(p.val)*16+2)))
}

// AppendKey appends the Key bytes to buf and returns it, letting tally
// loops reuse one buffer instead of allocating a string per vector.
func (p Partial) AppendKey(buf []byte) []byte {
	buf = append(buf, byte(p.n), byte(p.n>>8))
	for i := range p.val {
		w, k := p.val[i], p.known[i]
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56),
			byte(k), byte(k>>8), byte(k>>16), byte(k>>24),
			byte(k>>32), byte(k>>40), byte(k>>48), byte(k>>56))
	}
	return buf
}

// Less imposes a total lexicographic order with 0 < 1 < ?, giving the
// deterministic tie-breaking Coalesce and Select need.
//
// Word-parallel: under the val ⊆ known invariant two coordinates rank
// equal iff their val bits and known bits both agree, so the first
// rank difference is the lowest set bit of (valᵖ⊕valᵠ)|(knownᵖ⊕knownᵠ)
// in the first word where that is nonzero.
func (p Partial) Less(q Partial) bool {
	if p.n != q.n {
		panic("bitvec: Less length mismatch")
	}
	for i := range p.val {
		x := (p.val[i] ^ q.val[i]) | (p.known[i] ^ q.known[i])
		if x == 0 {
			continue
		}
		bit := x & -x
		if p.known[i]&bit == 0 {
			return false // p is '?' (rank 2), the highest rank
		}
		if q.known[i]&bit == 0 {
			return true // p known, q is '?'
		}
		return p.val[i]&bit == 0 // both known: 0 < 1
	}
	return false
}

// String renders the partial vector with '0', '1' and '?' runes.
func (p Partial) String() string {
	var b strings.Builder
	b.Grow(p.n)
	for i := 0; i < p.n; i++ {
		switch p.Get(i) {
		case Unknown:
			b.WriteByte('?')
		case 1:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}
