package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tellme/internal/rng"
)

func TestPartialNewAllUnknown(t *testing.T) {
	p := NewPartial(70)
	for i := 0; i < 70; i++ {
		if p.Get(i) != Unknown || p.Known(i) {
			t.Fatalf("coordinate %d not ?", i)
		}
	}
	if p.UnknownCount() != 70 || p.KnownCount() != 0 {
		t.Fatalf("counts: known=%d unknown=%d", p.KnownCount(), p.UnknownCount())
	}
}

func TestPartialSetGet(t *testing.T) {
	p := NewPartial(130)
	p.SetBit(0, 1)
	p.SetBit(64, 0)
	p.SetBit(129, 1)
	if p.Get(0) != 1 || p.Get(64) != 0 || p.Get(129) != 1 {
		t.Fatal("SetBit/Get mismatch")
	}
	if p.Get(1) != Unknown {
		t.Fatal("unset coordinate should be ?")
	}
	p.SetUnknown(0)
	if p.Get(0) != Unknown {
		t.Fatal("SetUnknown failed")
	}
	if p.KnownCount() != 2 {
		t.Fatalf("KnownCount = %d, want 2", p.KnownCount())
	}
}

func TestPartialOf(t *testing.T) {
	v, _ := FromString("0110")
	p := PartialOf(v)
	if p.UnknownCount() != 0 {
		t.Fatalf("PartialOf has %d unknowns", p.UnknownCount())
	}
	if p.String() != "0110" {
		t.Fatalf("got %q", p.String())
	}
}

func TestPartialFromStringRoundTrip(t *testing.T) {
	s := "01?10??1"
	p, err := PartialFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != s {
		t.Fatalf("round trip %q != %q", p.String(), s)
	}
	if _, err := PartialFromString("012"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDistKnown(t *testing.T) {
	a, _ := PartialFromString("01?1")
	b, _ := PartialFromString("11?0")
	// positions: 0 differs, 1 agrees, 2 both ?, 3 differs → d~ = 2
	if d := a.DistKnown(b); d != 2 {
		t.Fatalf("DistKnown = %d, want 2", d)
	}
	c, _ := PartialFromString("1???")
	// only position 0 both-known, differs
	if d := a.DistKnown(c); d != 1 {
		t.Fatalf("DistKnown = %d, want 1", d)
	}
}

func TestDistKnownVec(t *testing.T) {
	p, _ := PartialFromString("01?1")
	v, _ := FromString("1111")
	// known coords 0,1,3: values 0,1,1 vs 1,1,1 → 1 difference
	if d := p.DistKnownVec(v); d != 1 {
		t.Fatalf("DistKnownVec = %d, want 1", d)
	}
}

func TestDistKnownOn(t *testing.T) {
	a, _ := PartialFromString("01?1")
	b, _ := PartialFromString("11?0")
	if d := a.DistKnownOn(b, []int{1, 2, 3}); d != 1 {
		t.Fatalf("DistKnownOn = %d, want 1", d)
	}
}

func TestMergeSemantics(t *testing.T) {
	a, _ := PartialFromString("0011??")
	b, _ := PartialFromString("0110?1")
	m := a.Merge(b)
	// pos0 agree 0; pos1 disagree → ?; pos2 agree 1; pos3 disagree → ?;
	// pos4 both ? → ?; pos5 a=? → ?
	if m.String() != "0?1???" {
		t.Fatalf("Merge = %q", m.String())
	}
}

func TestFillAndOverlay(t *testing.T) {
	p, _ := PartialFromString("1?0?")
	if p.Fill(0).String() != "1000" {
		t.Fatalf("Fill(0) = %q", p.Fill(0).String())
	}
	if p.Fill(1).String() != "1101" {
		t.Fatalf("Fill(1) = %q", p.Fill(1).String())
	}
	src, _ := FromString("0110")
	if p.Overlay(src).String() != "1100" {
		t.Fatalf("Overlay = %q", p.Overlay(src).String())
	}
}

func TestPartialProject(t *testing.T) {
	p, _ := PartialFromString("1?0?1")
	q := p.Project([]int{1, 2, 4})
	if q.String() != "?01" {
		t.Fatalf("Project = %q", q.String())
	}
}

func TestPartialKeyAndEqual(t *testing.T) {
	a, _ := PartialFromString("01?")
	b, _ := PartialFromString("01?")
	c, _ := PartialFromString("010")
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("equal partials have different keys")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("? and 0 conflated")
	}
}

func TestPartialLessOrder(t *testing.T) {
	z, _ := PartialFromString("0")
	o, _ := PartialFromString("1")
	u, _ := PartialFromString("?")
	if !z.Less(o) || !o.Less(u) || !z.Less(u) {
		t.Fatal("order 0 < 1 < ? violated")
	}
	if u.Less(u) {
		t.Fatal("Less not strict")
	}
}

// qpart adapts Partial for testing/quick.
type qpart struct{ P Partial }

func (qpart) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(200) + 1
	g := rng.New(r.Uint64())
	p := NewPartial(n)
	for i := 0; i < n; i++ {
		switch g.Intn(3) {
		case 0:
			p.SetBit(i, 0)
		case 1:
			p.SetBit(i, 1)
		}
	}
	return reflect.ValueOf(qpart{P: p})
}

func regenPartial(r *rand.Rand, n int) Partial {
	g := rng.New(r.Uint64())
	p := NewPartial(n)
	for i := 0; i < n; i++ {
		switch g.Intn(3) {
		case 0:
			p.SetBit(i, 0)
		case 1:
			p.SetBit(i, 1)
		}
	}
	return p
}

func TestQuickMergeLaws(t *testing.T) {
	f := func(a qpart, seed int64) bool {
		b := regenPartial(rand.New(rand.NewSource(seed)), a.P.Len())
		m := a.P.Merge(b)
		mb := b.Merge(a.P)
		if !m.Equal(mb) {
			return false // commutativity
		}
		if !a.P.Merge(a.P).Equal(a.P) {
			return false // idempotence
		}
		// merged vector never disagrees with either parent on known coords
		return m.DistKnown(a.P) == 0 && m.DistKnown(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistKnownSymmetryAndBound(t *testing.T) {
	f := func(a qpart, seed int64) bool {
		b := regenPartial(rand.New(rand.NewSource(seed)), a.P.Len())
		d := a.P.DistKnown(b)
		if d != b.DistKnown(a.P) {
			return false
		}
		return d <= a.P.Len() && a.P.DistKnown(a.P) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFillConsistentWithKnown(t *testing.T) {
	f := func(a qpart) bool {
		v0, v1 := a.P.Fill(0), a.P.Fill(1)
		// fills agree with p on known coords, so d~ must be 0
		if a.P.DistKnownVec(v0) != 0 || a.P.DistKnownVec(v1) != 0 {
			return false
		}
		return v0.Dist(v1) == a.P.UnknownCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartialStringRoundTrip(t *testing.T) {
	f := func(a qpart) bool {
		p, err := PartialFromString(a.P.String())
		return err == nil && p.Equal(a.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDistKnown1024(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := regenPartial(r, 1024)
	y := regenPartial(r, 1024)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.DistKnown(y)
	}
	_ = sink
}
