package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple text/CSV experiment table: one per reproduced claim.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly (3 significant decimals, trimmed).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			escaped[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(escaped, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n\n", t.Note); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
