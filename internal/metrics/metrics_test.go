package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

func perfectOutputs(in *prefs.Instance) []bitvec.Partial {
	out := make([]bitvec.Partial, in.N)
	for p := 0; p < in.N; p++ {
		out[p] = bitvec.PartialOf(in.Truth[p])
	}
	return out
}

func TestDiscrepancyPerfect(t *testing.T) {
	in := prefs.Planted(20, 40, 0.5, 4, 1)
	out := perfectOutputs(in)
	if d := Discrepancy(in, in.Communities[0].Members, out); d != 0 {
		t.Fatalf("Discrepancy = %d", d)
	}
	if e := MeanErr(in, in.Communities[0].Members, out); e != 0 {
		t.Fatalf("MeanErr = %v", e)
	}
}

func TestDiscrepancyCountsWorst(t *testing.T) {
	in := prefs.Identical(5, 32, 1.0, 2)
	out := perfectOutputs(in)
	// corrupt player 3 with 7 flips
	v := in.Truth[3].Clone()
	v.FlipRandom(rng.New(9), 7)
	out[3] = bitvec.PartialOf(v)
	if d := Discrepancy(in, []int{0, 1, 2, 3, 4}, out); d != 7 {
		t.Fatalf("Discrepancy = %d, want 7", d)
	}
	want := 7.0 / 5.0
	if e := MeanErr(in, []int{0, 1, 2, 3, 4}, out); math.Abs(e-want) > 1e-9 {
		t.Fatalf("MeanErr = %v, want %v", e, want)
	}
}

func TestStretch(t *testing.T) {
	in := prefs.Planted(40, 128, 0.5, 8, 3)
	c := in.Communities[0]
	out := perfectOutputs(in)
	if s := Stretch(in, c.Members, out); s != 0 {
		t.Fatalf("perfect stretch = %v", s)
	}
	// corrupt one member by 2× diameter
	diam := in.Diameter(c.Members)
	if diam == 0 {
		t.Skip("degenerate diameter")
	}
	v := in.Truth[c.Members[0]].Clone()
	v.FlipRandom(rng.New(4), 2*diam)
	out[c.Members[0]] = bitvec.PartialOf(v)
	s := Stretch(in, c.Members, out)
	if s < 1.9 || s > 2.1 {
		t.Fatalf("stretch = %v, want ≈2", s)
	}
}

func TestFracWithin(t *testing.T) {
	in := prefs.Identical(4, 16, 1.0, 5)
	out := perfectOutputs(in)
	v := in.Truth[0].Clone()
	v.FlipRandom(rng.New(5), 5)
	out[0] = bitvec.PartialOf(v)
	if f := FracWithin(in, []int{0, 1, 2, 3}, out, 4); f != 0.75 {
		t.Fatalf("FracWithin = %v", f)
	}
	if f := FracWithin(in, []int{0, 1, 2, 3}, out, 5); f != 1 {
		t.Fatalf("FracWithin = %v", f)
	}
	if f := FracWithin(in, nil, out, 0); f != 1 {
		t.Fatal("empty set should be 1")
	}
}

func TestProbesStats(t *testing.T) {
	in := prefs.Planted(4, 32, 0.5, 2, 6)
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(7))
	for i := 0; i < 5; i++ {
		e.Player(0).Probe(i)
	}
	e.Player(2).Probe(0)
	st := Probes(e, in.N, nil)
	if st.Max != 5 || st.Total != 6 || math.Abs(st.Mean-1.5) > 1e-9 {
		t.Fatalf("stats = %+v", st)
	}
	snap := e.Snapshot(nil)
	e.Player(1).Probe(3)
	st = Probes(e, in.N, snap)
	if st.Max != 1 || st.Total != 1 {
		t.Fatalf("delta stats = %+v", st)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.29099) > 1e-4 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"n", "value"},
	}
	tab.AddRow(128, 3.14159)
	tab.AddRow("big", "x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "n    value", "128  3.142", "big  x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow(`say "hi"`, "x,y")
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a"}}
	tab.AddRow(1)
	var buf bytes.Buffer
	if err := tab.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### T") || !strings.Contains(out, "| a |") || !strings.Contains(out, "| 1 |") {
		t.Fatalf("markdown:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3.14159: "3.142",
		2:       "2",
		0:       "0",
		-1.5:    "-1.5",
		0.1:     "0.1",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func BenchmarkTableRender(b *testing.B) {
	tab := Table{Title: "bench", Header: []string{"a", "b", "c"}}
	for i := 0; i < 200; i++ {
		tab.AddRow(i, float64(i)*1.5, "xyz")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = tab.Render(&buf)
	}
}

func BenchmarkDiscrepancy(b *testing.B) {
	in := prefs.Planted(512, 512, 0.5, 8, 1)
	out := perfectOutputs(in)
	comm := in.Communities[0].Members
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Discrepancy(in, comm, out)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 4 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0.5); p != 2.5 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty = %v", p)
	}
	// input must not be mutated
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
}
