// Package metrics computes the paper's evaluation quantities —
// discrepancy Δ, diameter D, stretch ρ, probe-cost statistics — and
// renders experiment tables.
package metrics

import (
	"math"
	"sort"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
	"tellme/internal/probe"
)

// Discrepancy is the paper's Δ(P*): the maximum output error over the
// player set. '?' output entries are charged under the Fill(0)
// convention (the paper's "? may be set to 0").
func Discrepancy(in *prefs.Instance, players []int, out []bitvec.Partial) int {
	worst := 0
	for _, p := range players {
		if e := in.Err(p, out[p]); e > worst {
			worst = e
		}
	}
	return worst
}

// MeanErr is the average output error over the player set.
func MeanErr(in *prefs.Instance, players []int, out []bitvec.Partial) float64 {
	if len(players) == 0 {
		return 0
	}
	total := 0
	for _, p := range players {
		total += in.Err(p, out[p])
	}
	return float64(total) / float64(len(players))
}

// Stretch is the paper's ρ(P*) = Δ(P*)/D(P*). A zero-diameter set uses
// D = 1 so exact recovery reports stretch equal to the discrepancy
// (stretch 0 means perfect output).
func Stretch(in *prefs.Instance, players []int, out []bitvec.Partial) float64 {
	d := in.Diameter(players)
	if d == 0 {
		d = 1
	}
	return float64(Discrepancy(in, players, out)) / float64(d)
}

// FracWithin returns the fraction of the player set whose output error
// is at most bound.
func FracWithin(in *prefs.Instance, players []int, out []bitvec.Partial, bound int) float64 {
	if len(players) == 0 {
		return 1
	}
	ok := 0
	for _, p := range players {
		if in.Err(p, out[p]) <= bound {
			ok++
		}
	}
	return float64(ok) / float64(len(players))
}

// ProbeStats summarizes per-player probe charges for a run.
type ProbeStats struct {
	// Max is the paper's round count: max probes by a single player.
	Max int64
	// Total is the sum over all players.
	Total int64
	// Mean is Total / population.
	Mean float64
}

// Probes computes ProbeStats from an engine, optionally against a prior
// snapshot (nil means since engine creation).
func Probes(e *probe.Engine, n int, prev []int64) ProbeStats {
	var st ProbeStats
	for p := 0; p < n; p++ {
		c := e.Charged(p)
		if prev != nil {
			c -= prev[p]
		}
		st.Total += c
		if c > st.Max {
			st.Max = c
		}
	}
	if n > 0 {
		st.Mean = float64(st.Total) / float64(n)
	}
	return st
}

// Summary aggregates repeated scalar measurements.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes mean, sample standard deviation and range.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the q-th percentile (0 ≤ q ≤ 1) of xs by linear
// interpolation between order statistics; 0 for empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
