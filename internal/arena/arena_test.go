package arena

import (
	"testing"
)

func TestMakeZeroedAndDisjoint(t *testing.T) {
	var s Slab[int]
	a := s.Make(10)
	b := s.Make(10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths = %d, %d, want 10, 10", len(a), len(b))
	}
	for i := range a {
		a[i] = i + 1
	}
	for _, v := range b {
		if v != 0 {
			t.Fatalf("b not zeroed: %v", b)
		}
	}
	for i, v := range a {
		if v != i+1 {
			t.Fatalf("a clobbered by b's Make: %v", a)
		}
	}
	if cap(a) != len(a) {
		t.Fatalf("cap(a) = %d, want %d (full slice expression)", cap(a), len(a))
	}
}

func TestMakeZeroesRecycledMemory(t *testing.T) {
	var s Slab[int]
	m := s.Mark()
	a := s.Make(8)
	for i := range a {
		a[i] = 99
	}
	s.Release(m)
	b := s.Make(8)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("recycled memory not zeroed: %v", b)
		}
	}
}

// TestMakeZeroesAcrossWatermark exercises a Make that straddles the
// dirty watermark: its prefix is recycled (must be cleared) while its
// suffix is pristine block memory (skipped by the clear). Both halves
// must read as zero.
func TestMakeZeroesAcrossWatermark(t *testing.T) {
	var s Slab[int]
	m := s.Mark()
	a := s.Make(8)
	for i := range a {
		a[i] = 99
	}
	s.Release(m)
	b := s.Make(16) // [0,8) recycled, [8,16) pristine
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d, want 0 (watermark clear missed)", i, v)
		}
	}
}

// TestRawSkipsClearing verifies Raw hands back recycled contents as-is
// (that is the point) and that a later Make over the same region still
// zeroes it: Raw must advance the dirty watermark.
func TestRawSkipsClearing(t *testing.T) {
	var s Slab[int]
	m := s.Mark()
	a := s.Make(8)
	for i := range a {
		a[i] = 7
	}
	s.Release(m)
	raw := s.Raw(8)
	if raw[0] != 7 {
		t.Fatalf("Raw cleared recycled memory: %v", raw)
	}
	s.Release(m)
	// Grow past the old footprint: if Raw failed to raise the
	// watermark, the dirtied suffix would leak through this Make.
	b := s.Make(8)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("b[%d] = %d, want 0 (Raw did not advance watermark)", i, v)
		}
	}
}

// TestCopyOverRecycledMemory checks Copy's no-clear fast path against a
// recycled, dirtied region.
func TestCopyOverRecycledMemory(t *testing.T) {
	var s Slab[uint32]
	m := s.Mark()
	a := s.Make(4)
	for i := range a {
		a[i] = 0xdead
	}
	s.Release(m)
	got := s.Copy([]uint32{1, 2, 3, 4})
	for i, want := range []uint32{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("Copy over recycled memory = %v", got)
		}
	}
}

func TestMarkReleaseLIFO(t *testing.T) {
	var s Slab[byte]
	outer := s.Mark()
	x := s.Make(100)
	inner := s.Mark()
	s.Make(minBlock * 3) // force extra blocks
	s.Release(inner)
	y := s.Make(50)
	// x and y must not overlap: y comes after inner's mark.
	x[99] = 7
	y[0] = 9
	if x[99] != 7 {
		t.Fatal("inner region overlapped outer allocation")
	}
	s.Release(outer)
	if got := s.Mark(); got != outer {
		t.Fatalf("Release did not restore position: %v != %v", got, outer)
	}
}

func TestLargeAllocationGetsOwnBlock(t *testing.T) {
	var s Slab[uint64]
	big := s.Make(minBlock * 10)
	if len(big) != minBlock*10 {
		t.Fatalf("len = %d", len(big))
	}
	// Allocations continue to work afterwards.
	small := s.Make(3)
	small[0] = 1
	if big[0] != 0 {
		t.Fatal("big clobbered")
	}
}

func TestBlocksRetainedAcrossReset(t *testing.T) {
	var s Slab[int]
	s.Make(minBlock * 4)
	nblocks := len(s.blocks)
	s.Reset()
	s.Make(minBlock * 4)
	if len(s.blocks) != nblocks {
		t.Fatalf("Reset dropped blocks: %d != %d", len(s.blocks), nblocks)
	}
}

func TestCopy(t *testing.T) {
	var s Slab[uint32]
	src := []uint32{1, 2, 3}
	got := s.Copy(src)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Copy = %v", got)
	}
	got[0] = 9
	if src[0] != 1 {
		t.Fatal("Copy aliased src")
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Make(-1) did not panic")
		}
	}()
	var s Slab[int]
	s.Make(-1)
}

func TestArenaMarkRelease(t *testing.T) {
	var a Arena
	m := a.Mark()
	ints := a.Ints(5)
	words := a.Words(5)
	u32s := a.U32s(5)
	bools := a.Bools(5)
	ints[0], words[0], u32s[0], bools[0] = 1, 1, 1, true
	a.Release(m)
	if got := a.Mark(); got != m {
		t.Fatalf("Release did not restore arena: %+v != %+v", got, m)
	}
	// Fresh allocations after release are zeroed.
	if v := a.Ints(5); v[0] != 0 {
		t.Fatal("ints not zeroed after release")
	}
	if v := a.Bools(5); v[0] {
		t.Fatal("bools not zeroed after release")
	}
	if v := a.CopyInts([]int{4, 5}); v[0] != 4 || v[1] != 5 {
		t.Fatalf("CopyInts = %v", v)
	}
}

// TestWarmSlabDoesNotAllocate verifies the central property: after one
// Mark/Release cycle at a given footprint, subsequent cycles perform no
// heap allocation.
func TestWarmSlabDoesNotAllocate(t *testing.T) {
	var a Arena
	cycle := func() {
		m := a.Mark()
		for i := 0; i < 16; i++ {
			_ = a.Ints(100)
			_ = a.Words(64)
			_ = a.U32s(128)
			_ = a.Bools(32)
		}
		a.Release(m)
	}
	cycle() // warm
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("warm cycle allocates %v times per run, want 0", n)
	}
}
