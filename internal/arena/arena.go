// Package arena implements region-style slab allocation for the
// per-round scratch buffers of the simulator's hot paths.
//
// A Slab hands out slices carved from large blocks and never frees
// individual allocations; instead a caller takes a Mark before a region
// of work and Releases back to it afterwards, recycling every slice
// allocated in between. Blocks are retained across Release, so a warm
// slab stops allocating entirely: after the first epoch every Make is a
// bounds check, an offset bump and a clear of just the recycled prefix
// (each block tracks a dirty watermark, so memory still pristine from
// the block's make is never re-cleared).
//
// # Ownership rules (DESIGN.md §11)
//
// A Slab/Arena is single-goroutine: each probe.Player owns one (player
// phase bodies run on one goroutine per player), and core.Env owns one
// for the coordinator loops that run between phases. Handing an
// arena-backed slice to another goroutine is safe only within the
// phase-barrier discipline the simulator already enforces (the
// coordinator allocates before the phase, workers write disjoint rows,
// the barrier publishes the writes back).
//
// Escapes are forbidden: a slice obtained after a Mark must not be
// reachable after the matching Release — the memory is recycled and
// re-cleared by later Makes. Values that outlive the region (algorithm
// outputs) must be heap-allocated or cloned out before Release.
package arena

// Slab is a growable region allocator for values of type T. The zero
// value is ready to use.
type Slab[T any] struct {
	blocks   [][]T
	dirty    []int // per-block high-water mark of elements ever handed out
	block    int   // index of the block currently allocated from
	off      int   // used prefix of blocks[block]
	maxBlock int   // doubling cap in elements; 0 = unlimited
	src      BlockSource[T]
}

// BlockSource supplies recycled backing blocks to a Slab (see
// SetSource). NextBlock either returns a block of at least min elements
// — stale contents are fine, the slab treats the whole block as dirty —
// or nil to let the slab allocate fresh.
type BlockSource[T any] interface {
	NextBlock(min int) []T
}

// SetSource installs src as the slab's preferred block supplier: when a
// carve needs a new block, src is consulted before allocating. Pair
// with TakeBlocks on retiring slabs to recycle block memory across
// short-lived slabs of similar footprint.
func (s *Slab[T]) SetSource(src BlockSource[T]) { s.src = src }

// TakeBlocks detaches and returns the slab's backing blocks, resetting
// the slab to empty (its source and caps are kept). Every slice ever
// carved from the slab aliases the returned blocks, so the caller must
// guarantee no such slice is still read before handing the blocks to a
// new owner.
func (s *Slab[T]) TakeBlocks() [][]T {
	b := s.blocks
	s.blocks = nil
	s.dirty = s.dirty[:0]
	s.block, s.off = 0, 0
	return b
}

// minBlock is the element count of the first block (later blocks double).
const minBlock = 256

// SetMaxBlock caps the doubling growth of new blocks at n elements; a
// single Make/Copy larger than the cap still gets an exact-fit block.
// Zero (the default) doubles without bound. Write-once slabs of
// unpredictable final size want a cap: doubling overshoots the real
// footprint by up to 2×, and blocks past the runtime's 32 KiB
// small-object threshold are eagerly zeroed at allocation.
func (s *Slab[T]) SetMaxBlock(n int) { s.maxBlock = n }

// carve finds space for n values and returns the region without
// touching its contents. Memory above a block's dirty watermark is
// still zero from the block's make and is never re-cleared; Make clears
// only the recycled prefix below it.
func (s *Slab[T]) carve(n int) []T {
	if n < 0 {
		panic("arena: negative length")
	}
	for {
		if s.block < len(s.blocks) {
			b := s.blocks[s.block]
			if len(b)-s.off >= n {
				out := b[s.off : s.off+n : s.off+n]
				s.off += n
				return out
			}
			s.block++
			s.off = 0
			continue
		}
		if s.src != nil {
			if blk := s.src.NextBlock(n); blk != nil {
				// Recycled block: contents are stale, so the whole block
				// sits below the dirty watermark and Make re-clears what
				// it carves.
				s.blocks = append(s.blocks, blk)
				s.dirty = append(s.dirty, len(blk))
				continue
			}
		}
		size := minBlock
		if last := len(s.blocks); last > 0 {
			size = 2 * len(s.blocks[last-1])
		}
		if s.maxBlock > 0 && size > s.maxBlock {
			size = s.maxBlock
		}
		if size < n {
			size = n
		}
		s.blocks = append(s.blocks, make([]T, size))
		s.dirty = append(s.dirty, 0)
	}
}

// Make returns a zeroed slice of n values carved from the slab. The
// slice has capacity exactly n, so appends beyond it reallocate on the
// heap instead of silently overlapping later Makes.
func (s *Slab[T]) Make(n int) []T {
	out := s.carve(n)
	end := s.off
	if d := s.dirty[s.block]; d > end-n {
		// The region overlaps previously recycled memory; clear that
		// prefix. Anything past the watermark is pristine zero.
		used := d - (end - n)
		if used > n {
			used = n
		}
		clear(out[:used])
	}
	if end > s.dirty[s.block] {
		s.dirty[s.block] = end
	}
	return out
}

// Copy returns a slab-allocated copy of src. The region is fully
// overwritten by the copy, so it skips Make's clearing entirely.
func (s *Slab[T]) Copy(src []T) []T {
	out := s.Raw(len(src))
	copy(out, src)
	return out
}

// Raw returns an uninitialized slice of n values carved from the slab.
// Recycled regions hold arbitrary stale contents: Raw is only for
// callers that fully overwrite the slice before any read.
func (s *Slab[T]) Raw(n int) []T {
	out := s.carve(n)
	if end := s.off; end > s.dirty[s.block] {
		s.dirty[s.block] = end
	}
	return out
}

// Pos is a Slab position, taken with Mark and restored with Release.
type Pos struct{ block, off int }

// Mark records the slab's current position.
func (s *Slab[T]) Mark() Pos { return Pos{s.block, s.off} }

// Release rewinds the slab to a previously taken Mark, recycling every
// allocation made since. Marks must be released in LIFO order; slices
// allocated after the mark become invalid (their memory is cleared and
// reused by later Makes).
func (s *Slab[T]) Release(m Pos) { s.block, s.off = m.block, m.off }

// Reset rewinds the slab to empty, keeping its blocks for reuse.
func (s *Slab[T]) Reset() { s.block, s.off = 0, 0 }

// Arena bundles the scalar slabs the hot paths need, so one Mark
// covers scratch of every element type used inside a region.
type Arena struct {
	ints  Slab[int]
	words Slab[uint64]
	u32s  Slab[uint32]
	bools Slab[bool]
}

// Mark records the position of every slab.
type Mark struct{ ints, words, u32s, bools Pos }

// Mark records the arena's current position across all slabs.
func (a *Arena) Mark() Mark {
	return Mark{a.ints.Mark(), a.words.Mark(), a.u32s.Mark(), a.bools.Mark()}
}

// Release rewinds all slabs to m (LIFO discipline, as with Slab).
func (a *Arena) Release(m Mark) {
	a.ints.Release(m.ints)
	a.words.Release(m.words)
	a.u32s.Release(m.u32s)
	a.bools.Release(m.bools)
}

// Ints returns a zeroed []int of length n from the arena.
func (a *Arena) Ints(n int) []int { return a.ints.Make(n) }

// Words returns a zeroed []uint64 of length n from the arena.
func (a *Arena) Words(n int) []uint64 { return a.words.Make(n) }

// U32s returns a zeroed []uint32 of length n from the arena.
func (a *Arena) U32s(n int) []uint32 { return a.u32s.Make(n) }

// RawU32s returns an uninitialized []uint32 of length n from the arena
// (see Slab.Raw: only for regions fully overwritten before any read).
func (a *Arena) RawU32s(n int) []uint32 { return a.u32s.Raw(n) }

// Bools returns a zeroed []bool of length n from the arena.
func (a *Arena) Bools(n int) []bool { return a.bools.Make(n) }

// CopyInts returns an arena-allocated copy of src.
func (a *Arena) CopyInts(src []int) []int { return a.ints.Copy(src) }
