package exp

import (
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "LargeRadius constants: group count, λ margin, Coalesce radius",
		Claim: "design choices behind Theorem 5.4's O(·) knobs",
		Run:   runE18,
	})
}

// runE18 ablates the three Large Radius constants that the paper leaves
// as O(·) choices and that materially change behavior at simulator
// scale:
//
//   - GroupC (groups = GroupC·D/log n): more groups mean smaller
//     per-group diameter λ but smaller groups for Coalesce to vote over;
//   - LambdaC (λ = LambdaC·D/groups + 4): the concentration margin over
//     the expected per-group distance — too small starves SmallRadius's
//     distance bound, too large inflates every downstream radius;
//   - CoalDC (coalD = CoalDC·λ, capped at ⅓ of the group size): the
//     clustering radius — too small breaks the community's ball quorum,
//     too large merges the community with colluders or degenerates to
//     first-poster-wins (the failure the cap guards against).
func runE18(o Options) []*metrics.Table {
	o = o.withDefaults()
	n := 512 * o.Scale
	alpha := 0.5
	d := 48

	run := func(cfg core.Config) (maxErr, probes float64) {
		var errs, costs []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(700 + s)
			in := prefs.Planted(n, n, alpha, d, seed)
			ses := o.newSession(in, seed+1, cfg)
			out := core.LargeRadius(ses.env, allPlayers(n), seqObjs(n), alpha, d)
			errs = append(errs, float64(metrics.Discrepancy(in, ses.community(), out)))
			costs = append(costs, float64(ses.probeStats().Max))
		}
		return metrics.Summarize(errs).Max, metrics.Summarize(costs).Mean
	}

	tG := &metrics.Table{
		Title:  "E18a — GroupC (number of object groups)",
		Header: []string{"GroupC", "maxErr", "err/(D/α)", "probes(max)"},
	}
	for _, gc := range []float64{0.5, 1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.GroupC = gc
		e, p := run(cfg)
		tG.AddRow(gc, e, e/(float64(d)/alpha), p)
		o.logf("E18a GroupC=%v done", gc)
	}

	tL := &metrics.Table{
		Title:  "E18b — LambdaC (per-group distance margin)",
		Header: []string{"LambdaC", "maxErr", "err/(D/α)", "probes(max)"},
	}
	for _, lc := range []float64{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.LambdaC = lc
		e, p := run(cfg)
		tL.AddRow(lc, e, e/(float64(d)/alpha), p)
		o.logf("E18b LambdaC=%v done", lc)
	}

	tC := &metrics.Table{
		Title:  "E18c — CoalDC (Coalesce clustering radius)",
		Header: []string{"CoalDC", "maxErr", "err/(D/α)", "probes(max)"},
	}
	for _, cc := range []float64{1, 2, 3, 6, 11} {
		cfg := core.DefaultConfig()
		cfg.CoalDC = cc
		e, p := run(cfg)
		tC.AddRow(cc, e, e/(float64(d)/alpha), p)
		o.logf("E18c CoalDC=%v done", cc)
	}
	return []*metrics.Table{tG, tL, tC}
}
