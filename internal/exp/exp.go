// Package exp defines the reproduction experiments E1–E20.
//
// The paper is a theory extended abstract: its figures are pseudocode
// and it has no measurement tables. Each experiment here regenerates one
// of the paper's quantitative claims (a probe-complexity bound, an error
// bound, or a success probability) as a table of claimed-vs-measured
// values. DESIGN.md carries the full index; EXPERIMENTS.md records the
// outputs of a reference run.
package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	"tellme/internal/billboard"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
)

// Options control experiment size and repetition.
type Options struct {
	// Seeds is the number of independent repetitions per configuration
	// (≥ 1). Tables report means over seeds.
	Seeds int
	// Scale multiplies instance sizes: 1 is the quick configuration used
	// in tests; 2–4 are the reference configurations in EXPERIMENTS.md.
	Scale int
	// Progress, when non-nil, receives one line per configuration.
	Progress io.Writer
	// Telemetry, when non-nil, instruments every session the experiment
	// creates (board posts, probe charges, per-sub-algorithm cost
	// spans). One registry accumulates across all of an experiment's
	// configurations and seeds — the source of the -telemetry cost
	// breakdown in cmd/experiments.
	Telemetry *telemetry.Registry
	// Context, when non-nil and cancellable, governs every session the
	// experiment creates: player code observes cancellation between
	// probes, and the abort surfaces as a *core.Abort / *probe.Canceled
	// panic out of Run (recovered by cmd/experiments). A nil or
	// background context keeps every hot path on the nil-check fast
	// path.
	Context context.Context
}

// Defaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Experiment is one reproducible claim.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E4".
	ID string
	// Title is a short description.
	Title string
	// Claim cites the theorem or lemma being reproduced.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(o Options) []*metrics.Table
}

// registry holds all experiments, populated by init() in the e_*.go
// files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 (numeric-aware)
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// session bundles a ready-to-run environment over a fresh instance.
type session struct {
	in     *prefs.Instance
	engine *probe.Engine
	env    *core.Env
	runner *sim.Runner
}

// newSession wires a deterministic environment for one run,
// instrumented with o.Telemetry when set.
func (o Options) newSession(in *prefs.Instance, seed uint64, cfg core.Config) *session {
	b := billboard.New(in.N, in.M)
	b.SetTelemetry(o.Telemetry)
	src := rng.NewSource(seed)
	var popts []probe.Option
	if o.Telemetry != nil {
		popts = append(popts, probe.WithTelemetry(o.Telemetry))
	}
	if o.Context != nil && o.Context.Done() != nil {
		popts = append(popts, probe.WithContext(o.Context))
	}
	e := probe.NewEngine(in, b, src.Child("engine", 0), popts...)
	runner := sim.NewRunner(0)
	env := core.NewEnv(e, runner, src.Child("public", 0), cfg)
	env.Telemetry = o.Telemetry
	return &session{in: in, engine: e, env: env, runner: runner}
}

// probeStats reads the session's cost counters.
func (s *session) probeStats() metrics.ProbeStats {
	return metrics.Probes(s.engine, s.in.N, nil)
}

// community returns the first planted community's member list.
func (s *session) community() []int { return s.in.Communities[0].Members }

func allPlayers(n int) []int { return ints.Iota(n) }

func seqObjs(m int) []int { return ints.Iota(m) }
