package exp

import (
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Incremental repair (Refresh) vs fresh re-run after drift",
		Claim: "extension: repair cost redundancy·m/(αn) + k vs a fresh polylog run",
		Run:   runE20,
	})
}

// runE20 quantifies the Refresh extension: a community converges, the
// world drifts in k coordinates, and we compare repairing the stale
// consensus (Refresh) against re-running ZeroRadius from scratch. Both
// end exact; the probe columns show the repair discount, which is
// largest for small drift and shrinks as k approaches the fresh-run
// cost.
func runE20(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E20 — Refresh vs fresh re-run (extension)",
		Note:   "identical community, coherent drift of k coordinates; probes = max/player",
		Header: []string{"n=m", "drift k", "refresh probes", "refresh err", "rerun probes", "rerun err"},
	}
	n := 256 * o.Scale
	alpha := 0.5
	for _, k := range []int{1, 4, 16, 64} {
		var rfP, rfE, rrP, rrE []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(900 + k*10 + s)
			in := prefs.Identical(n, n, alpha, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			zr := core.ZeroRadiusBits(ses.env, allPlayers(n), seqObjs(n), alpha)
			stale := make([]bitvec.Partial, n)
			for p := 0; p < n; p++ {
				stale[p] = bitvec.PartialOf(valsVec(zr[p], n))
			}
			in2 := prefs.Drift(in, k, 0, seed+2)
			comm := in2.Communities[0].Members

			ses2 := o.newSession(in2, seed+3, core.DefaultConfig())
			red, maxP := core.RefreshBudget(k)
			out := core.Refresh(ses2.env, allPlayers(n), seqObjs(n), stale, alpha, red, maxP)
			rfP = append(rfP, float64(ses2.probeStats().Max))
			rfE = append(rfE, float64(metrics.Discrepancy(in2, comm, out)))

			ses3 := o.newSession(in2, seed+4, core.DefaultConfig())
			zr2 := core.ZeroRadiusBits(ses3.env, allPlayers(n), seqObjs(n), alpha)
			out2 := make([]bitvec.Partial, n)
			for p := 0; p < n; p++ {
				out2[p] = bitvec.PartialOf(valsVec(zr2[p], n))
			}
			rrP = append(rrP, float64(ses3.probeStats().Max))
			rrE = append(rrE, float64(metrics.Discrepancy(in2, comm, out2)))
		}
		t.AddRow(n, k,
			metrics.Summarize(rfP).Mean, metrics.Summarize(rfE).Max,
			metrics.Summarize(rrP).Mean, metrics.Summarize(rrE).Max)
		o.logf("E20 k=%d done", k)
	}
	return []*metrics.Table{t}
}
