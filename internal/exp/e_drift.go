package exp

import (
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Dynamic preferences: re-convergence after drift (extension)",
		Claim: "extension of the paper's dynamic-environment motivation (§1)",
		Run:   runE17,
	})
}

// runE17 extends the static model toward the paper's motivating
// dynamic-sensor scenario: after a community recovers its vector, the
// world drifts — k coordinates of the community taste flip coherently —
// and the players re-run the algorithm. The claim under test: the
// re-convergence cost equals a fresh run (the algorithm is stateless:
// polylog per epoch), and quality is unaffected by history. A smarter
// incremental variant could exploit the previous output as a Select
// candidate; the last column measures that headroom — the true distance
// from the stale output to the new world, which is exactly k and thus
// recoverable with O(k) verification probes by Select with bound k.
func runE17(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E17 — drift and re-convergence (extension)",
		Note:   "ZeroRadius re-run after coherent community drift of k coordinates",
		Header: []string{"n=m", "drift k", "epoch1 err", "epoch2 err", "epoch probes(max)", "stale output gap"},
	}
	n := 256 * o.Scale
	alpha := 0.5
	for _, k := range []int{1, 8, 64} {
		var e1, e2, probes, gap []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(600 + k*10 + s)
			in := prefs.Identical(n, n, alpha, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			zr := core.ZeroRadiusBits(ses.env, allPlayers(n), seqObjs(n), alpha)
			comm := in.Communities[0].Members
			out1 := make([]bitvec.Partial, n)
			for p := 0; p < n; p++ {
				out1[p] = bitvec.PartialOf(valsVec(zr[p], n))
			}
			e1 = append(e1, float64(metrics.Discrepancy(in, comm, out1)))

			// the world drifts coherently by k coordinates
			in2 := prefs.Drift(in, k, 0, seed+2)
			ses2 := o.newSession(in2, seed+3, core.DefaultConfig())
			zr2 := core.ZeroRadiusBits(ses2.env, allPlayers(n), seqObjs(n), alpha)
			out2 := make([]bitvec.Partial, n)
			for p := 0; p < n; p++ {
				out2[p] = bitvec.PartialOf(valsVec(zr2[p], n))
			}
			comm2 := in2.Communities[0].Members
			e2 = append(e2, float64(metrics.Discrepancy(in2, comm2, out2)))
			probes = append(probes, float64(ses2.probeStats().Max))

			// headroom for an incremental variant: the stale epoch-1
			// output is exactly k away from the drifted truth
			worstGap := 0
			for _, p := range comm2 {
				if g := in2.Err(p, out1[p]); g > worstGap {
					worstGap = g
				}
			}
			gap = append(gap, float64(worstGap))
		}
		t.AddRow(n, k,
			metrics.Summarize(e1).Max,
			metrics.Summarize(e2).Max,
			metrics.Summarize(probes).Mean,
			metrics.Summarize(gap).Max)
		o.logf("E17 k=%d done", k)
	}
	return []*metrics.Table{t}
}
