package exp

import (
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Coalesce: ≤1/α candidates, unique 2D-close representative, ≤5D/α wildcards",
		Claim: "Theorem 5.3",
		Run:   runE5,
	})
}

// runE5 feeds Coalesce vector multisets containing one planted diameter-D
// cluster of frequency α plus noise, and measures all three guarantees
// of Theorem 5.3 over many trials.
func runE5(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E5 — Coalesce (Theorem 5.3)",
		Note:  "unique = exactly one output within 2D of all planted vectors",
		Header: []string{
			"alpha", "D", "|B|(max)", "cap 1/α", "unique frac", "?s(max)", "cap 5D/α",
		},
	}
	m := 400 * o.Scale
	const nVecs = 80
	trials := 10 * o.Seeds
	for _, alpha := range []float64{0.5, 0.25, 0.2} {
		for _, d := range []int{2, 6, 12} {
			maxB, maxQ := 0, 0
			unique := 0
			r := rng.New(uint64(d)*31 + uint64(alpha*1000))
			for trial := 0; trial < trials; trial++ {
				nT := int(math.Ceil(alpha * nVecs))
				center := bitvec.Random(r, m)
				vecs := make([]bitvec.Partial, 0, nVecs)
				for i := 0; i < nT; i++ {
					v := center.Clone()
					v.FlipRandom(r, r.Intn(d/2+1))
					vecs = append(vecs, bitvec.PartialOf(v))
				}
				for len(vecs) < nVecs {
					vecs = append(vecs, bitvec.PartialOf(bitvec.Random(r, m)))
				}
				out := core.Coalesce(vecs, d, alpha)
				if len(out) > maxB {
					maxB = len(out)
				}
				cnt := 0
				var rep bitvec.Partial
				for _, b := range out {
					ok := true
					for i := 0; i < nT; i++ {
						if b.DistKnown(vecs[i]) > 2*d {
							ok = false
							break
						}
					}
					if ok {
						cnt++
						rep = b
					}
				}
				if cnt == 1 {
					unique++
					if q := rep.UnknownCount(); q > maxQ {
						maxQ = q
					}
				}
			}
			t.AddRow(alpha, d, maxB, metrics.FormatFloat(1/alpha), float64(unique)/float64(trials),
				maxQ, metrics.FormatFloat(5*float64(d)/alpha))
		}
		o.logf("E5 alpha=%v done", alpha)
	}
	return []*metrics.Table{t}
}
