package exp

import (
	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Probe-noise robustness (beyond the paper's model)",
		Claim: "extension: graceful degradation under faulty probes",
		Run:   runE13,
	})
}

// runE13 injects probe faults the paper's noise-free model excludes:
// each probe result flips independently with probability p. The w.h.p.
// exactness guarantee of Theorem 3.1 no longer applies; this experiment
// charts how the vote-based recovery degrades. The expected shape:
// errors grow smoothly with the flip rate (no cliff), because corrupted
// leaf posts lose the vote against the healthy majority, and only
// coordinates probed exclusively through corrupted paths go wrong.
func runE13(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E13 — ZeroRadius under probe faults (extension)",
		Note:   "flip = per-probe corruption probability; errors out of m",
		Header: []string{"n=m", "flip", "maxErr", "meanErr", "exact frac"},
	}
	n := 256 * o.Scale
	for _, flip := range []float64{0, 0.01, 0.05, 0.1, 0.2} {
		var maxErrs, meanErrs, exact []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(flip*1000) + uint64(s)
			in := prefs.Identical(n, n, 0.5, seed)
			src := rng.NewSource(seed + 1)
			board := billboard.New(in.N, in.M)
			var popts []probe.Option
			if flip > 0 {
				popts = append(popts, probe.WithNoise(probe.FlipNoise(flip)))
			}
			e := probe.NewEngine(in, board, src.Child("engine", 0), popts...)
			env := core.NewEnv(e, sim.NewRunner(0), src.Child("public", 0), core.DefaultConfig())
			zr := core.ZeroRadiusBits(env, allPlayers(n), seqObjs(n), 0.5)
			c := in.Communities[0]
			out := make([]bitvec.Partial, in.N)
			for p := 0; p < in.N; p++ {
				out[p] = bitvec.PartialOf(valsVec(zr[p], in.M))
			}
			maxErrs = append(maxErrs, float64(metrics.Discrepancy(in, c.Members, out)))
			meanErrs = append(meanErrs, metrics.MeanErr(in, c.Members, out))
			ex := 0
			for _, p := range c.Members {
				if in.Err(p, out[p]) == 0 {
					ex++
				}
			}
			exact = append(exact, float64(ex)/float64(len(c.Members)))
		}
		t.AddRow(n, flip,
			metrics.Summarize(maxErrs).Max,
			metrics.Summarize(meanErrs).Mean,
			metrics.Summarize(exact).Mean)
		o.logf("E13 flip=%v done", flip)
	}
	return []*metrics.Table{t}
}
