package exp

import (
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Select: probe budget k(D+1) and exact closest output",
		Claim: "Theorem 3.2",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E7",
		Title: "RSelect: O(k² log n) probes, O(D) error without a bound",
		Claim: "Theorem 6.1",
		Run:   runE7,
	})
}

// selectTrial builds a candidate set with one vector planted within d of
// a random truth vector and k-1 decoys at the given distance, returning
// (probes, pickedDistance, bestDistance).
func selectTrial(o Options, seed uint64, m, k, d, decoyDist int, useRSelect bool, cLogN int) (int64, int, int) {
	r := rng.New(seed)
	truth := bitvec.Random(r, m)
	cands := make([]bitvec.Partial, k)
	planted := truth.Clone()
	if d > 0 {
		planted.FlipRandom(r, r.Intn(d+1))
	}
	cands[0] = bitvec.PartialOf(planted)
	for i := 1; i < k; i++ {
		v := truth.Clone()
		v.FlipRandom(r, decoyDist)
		cands[i] = bitvec.PartialOf(v)
	}
	// deterministic shuffle so the planted vector isn't always first
	r.Shuffle(k, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	in := prefs.FromVectors([]bitvec.Vector{truth})
	ses := o.newSession(in, seed+99, core.DefaultConfig())
	pl := ses.engine.Player(0)
	objs := seqObjs(m)
	var got int
	if useRSelect {
		got = core.RSelect(pl, rng.New(seed+7), objs, cands, cLogN)
	} else {
		got = core.SelectPartial(pl, objs, cands, d)
	}
	best := m + 1
	for _, c := range cands {
		if dd := c.DistKnownVec(truth); dd < best {
			best = dd
		}
	}
	return ses.engine.Charged(0), cands[got].DistKnownVec(truth), best
}

func runE2(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E2 — Select (Theorem 3.2)",
		Note:   "probes must never exceed k(D+1); picked must equal best",
		Header: []string{"k", "D", "probes(mean)", "probes(max)", "bound k(D+1)", "optimal"},
	}
	m := 256 * o.Scale
	for _, k := range []int{2, 4, 8, 16} {
		for _, d := range []int{0, 2, 8, 24} {
			var probes []float64
			maxP := int64(0)
			optimal := true
			for s := 0; s < o.Seeds*10; s++ {
				p, picked, best := selectTrial(o, uint64(k*1000+d*10+s), m, k, d, m/3+d+1, false, 0)
				probes = append(probes, float64(p))
				if p > maxP {
					maxP = p
				}
				if picked != best {
					optimal = false
				}
			}
			t.AddRow(k, d, metrics.Summarize(probes).Mean, maxP, k*(d+1), optimal)
		}
		o.logf("E2 k=%d done", k)
	}
	return []*metrics.Table{t}
}

func runE7(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E7 — RSelect (Theorem 6.1)",
		Note:   "no distance bound given; error within a constant factor of optimal",
		Header: []string{"k", "D", "probes(mean)", "budget k²·c·log n", "err/optimal ≤ 4 frac"},
	}
	m := 512 * o.Scale
	cLogN := 30
	for _, k := range []int{2, 4, 8} {
		for _, d := range []int{2, 8, 24} {
			var probes []float64
			within := 0
			trials := o.Seeds * 10
			for s := 0; s < trials; s++ {
				p, picked, best := selectTrial(o, uint64(k*7777+d*13+s), m, k, d, 8*d+40, true, cLogN)
				probes = append(probes, float64(p))
				if best == 0 {
					best = 1
				}
				if picked <= 4*best {
					within++
				}
			}
			budget := k * (k - 1) / 2 * cLogN
			t.AddRow(k, d, metrics.Summarize(probes).Mean, budget, float64(within)/float64(trials))
		}
		o.logf("E7 k=%d done", k)
	}
	return []*metrics.Table{t}
}
