package exp

import (
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Random partition success probability (Lemma 4.1)",
		Claim: "Lemma 4.1",
		Run:   runE3,
	})
}

// runE3 draws vector families of diameter ≤ d and random partitions into
// s parts, and measures the empirical failure rate of the success
// predicate against the lemma's bound 10³·5⁵·d³/(6!·s²).
//
// Two families:
//
//   - ball: vectors are a random center with ≤ d/2 flips spread over all
//     m coordinates — the generative shape the algorithms face. Spread
//     disagreements make almost every partition successful, far inside
//     the lemma's bound.
//   - window: all flips concentrate in a window of 2d coordinates, the
//     hard case — a part that receives too many window coordinates has
//     no 1/5-quorum. Failures appear when s is small and vanish as s
//     grows, exposing the knee the lemma's 1/s² decay predicts.
func runE3(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E3 — partition success (Lemma 4.1)",
		Note:   "fail(empirical) vs the lemma's bound; s* = 100·d^{3/2} is the paper's setting",
		Header: []string{"family", "d", "s", "s/d^1.5", "fail(empirical)", "fail(bound)", "paper s*"},
	}
	m := 1500 * o.Scale
	const M = 25 // vectors per family
	trials := 40 * o.Seeds
	for _, family := range []string{"ball", "window"} {
		for _, d := range []int{2, 4, 8} {
			sStar := int(100 * math.Pow(float64(d), 1.5))
			for _, mult := range []float64{0.25, 0.5, 1, 2, 8, 100} {
				s := int(mult * math.Pow(float64(d), 1.5))
				if s < 1 {
					s = 1
				}
				fails := 0
				r := rng.New(uint64(d*1000+s) + uint64(len(family)))
				for trial := 0; trial < trials; trial++ {
					vecs := e3Family(r, family, m, d, M)
					if !core.RandomPartitionTrial(r, vecs, m, s) {
						fails++
					}
				}
				bound := core.PartitionFailureBound(d, s)
				if bound > 1 {
					bound = 1
				}
				t.AddRow(family, d, s, mult, float64(fails)/float64(trials), bound, sStar)
			}
			o.logf("E3 %s d=%d done", family, d)
		}
	}
	return []*metrics.Table{t}
}

// e3Family draws M vectors of pairwise distance ≤ d.
func e3Family(r *rng.Rand, family string, m, d, count int) []bitvec.Vector {
	center := bitvec.Random(r, m)
	vecs := make([]bitvec.Vector, count)
	switch family {
	case "ball":
		for i := range vecs {
			v := center.Clone()
			v.FlipRandom(r, r.Intn(d/2+1))
			vecs[i] = v
		}
	case "window":
		// all flips inside a window of 2d coordinates (window at a random
		// offset so partitions can't be lucky by position)
		w := 2 * d
		if w > m {
			w = m
		}
		off := r.Intn(m - w + 1)
		for i := range vecs {
			v := center.Clone()
			flips := d / 2
			if flips < 1 {
				flips = 1
			}
			perm := r.Perm(w)
			for _, j := range perm[:flips] {
				v.Flip(off + j)
			}
			vecs[i] = v
		}
	default:
		panic("unknown family " + family)
	}
	return vecs
}
