package exp

import (
	"tellme/internal/baseline"
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Head-to-head: paper's algorithm vs solo/majority/kNN/spectral",
		Claim: "Sections 1–2 (polylog vs polynomial overhead; no matrix assumptions)",
		Run:   runE9,
	})
}

// runE9 compares algorithms at matched per-player probe budgets on two
// families:
//
//   - adversarial (D = 0 community among colluding outsider blocks):
//     ZeroRadius recovers the community exactly with polylog probes;
//     every baseline granted the same budget fails badly, and the
//     spectral method fails even with a generous budget because the
//     matrix is full-rank by construction;
//   - low-rank mixture: the spectral method's favorable model, where it
//     is competitive — the paper's point is not that SVD never works,
//     but that it needs assumptions the interactive algorithms don't.
//
// Budgets: the paper's algorithm runs first; its measured max
// probes-per-player is handed to every baseline as its sampling budget.
func runE9(o Options) []*metrics.Table {
	o = o.withDefaults()
	n := 256 * o.Scale

	adv := &metrics.Table{
		Title:  "E9a — adversarial (α=0.3, D=0), budget-matched",
		Note:   "community meanErr/maxErr; random guessing errs ≈ m/2 per vector",
		Header: []string{"algorithm", "budget/player", "probes(max)", "meanErr", "maxErr"},
	}
	runFamily(o, adv, func(seed uint64) *prefs.Instance {
		return prefs.AdversarialVoteSplit(n, n, 0.3, 0, seed)
	}, 0.3, true)

	mix := &metrics.Table{
		Title:  "E9b — low-rank mixture (4 types, 2% noise), budget-matched",
		Note:   "spectral's favorable model; community = players of type 0",
		Header: []string{"algorithm", "budget/player", "probes(max)", "meanErr", "maxErr"},
	}
	runFamily(o, mix, func(seed uint64) *prefs.Instance {
		return prefs.TypesMixture(n, n, 4, 0.02, seed)
	}, 0.20, false)

	return []*metrics.Table{adv, mix}
}

// runFamily fills one comparison table. When zeroRadius is true the
// paper's side runs Algorithm Zero Radius (the D=0 regime); otherwise it
// runs the unknown-D wrapper on a diameter estimated from the planted
// community.
func runFamily(o Options, t *metrics.Table, mk func(seed uint64) *prefs.Instance, alpha float64, zeroRadius bool) {
	type agg struct {
		budget, probes int64
		meanE, maxE    []float64
	}
	rows := map[string]*agg{}
	order := []string{"tellme", "solo(full)", "majority", "kNN", "spectral"}
	add := func(nm string, budget, probes int64, me, xe float64) {
		a, ok := rows[nm]
		if !ok {
			a = &agg{}
			rows[nm] = a
		}
		if budget > a.budget {
			a.budget = budget
		}
		if probes > a.probes {
			a.probes = probes
		}
		a.meanE = append(a.meanE, me)
		a.maxE = append(a.maxE, xe)
	}

	for s := 0; s < o.Seeds; s++ {
		seed := uint64(9000 + s)
		in := mk(seed)
		comm := in.Communities[0].Members

		ses := o.newSession(in, seed+1, core.DefaultConfig())
		var out []bitvec.Partial
		if zeroRadius {
			zr := core.ZeroRadiusBits(ses.env, allPlayers(in.N), seqObjs(in.M), alpha)
			out = make([]bitvec.Partial, in.N)
			for p := range out {
				out[p] = bitvec.PartialOf(valsVec(zr[p], in.M))
			}
		} else {
			// Known-D main algorithm on the realized community diameter.
			d := in.Diameter(comm)
			out = core.Main(ses.env, alpha, d)
		}
		st := ses.probeStats()
		add("tellme", st.Max, st.Max, metrics.MeanErr(in, comm, out), float64(metrics.Discrepancy(in, comm, out)))

		budget := int(st.Max)
		if budget >= in.M {
			budget = in.M / 2 // keep baselines honest: below solo cost
		}
		if budget < 4 {
			budget = 4
		}

		ses2 := o.newSession(in, seed+2, core.DefaultConfig())
		outSolo := baseline.Solo(ses2.engine, ses2.runner)
		add("solo(full)", int64(in.M), metrics.Probes(ses2.engine, in.N, nil).Max,
			metrics.MeanErr(in, comm, outSolo), float64(metrics.Discrepancy(in, comm, outSolo)))

		type bl struct {
			name string
			run  func(s3 *session) []bitvec.Partial
		}
		for _, b := range []bl{
			{"majority", func(s3 *session) []bitvec.Partial {
				return baseline.SampleMajority(s3.engine, s3.runner, budget, rng.NewSource(seed+4))
			}},
			{"kNN", func(s3 *session) []bitvec.Partial {
				return baseline.KNN(s3.engine, s3.runner, budget, 8, rng.NewSource(seed+5))
			}},
			{"spectral", func(s3 *session) []bitvec.Partial {
				rank := len(in.Communities)
				if rank < 2 {
					rank = 2
				}
				return baseline.Spectral(s3.engine, s3.runner, budget, rank, 10, rng.NewSource(seed+6))
			}},
		} {
			ses3 := o.newSession(in, seed+3, core.DefaultConfig())
			outB := b.run(ses3)
			add(b.name, int64(budget), metrics.Probes(ses3.engine, in.N, nil).Max,
				metrics.MeanErr(in, comm, outB), float64(metrics.Discrepancy(in, comm, outB)))
		}
		o.logf("E9 %s seed %d done", t.Title, s)
	}
	for _, nm := range order {
		a := rows[nm]
		t.AddRow(nm, a.budget, a.probes,
			metrics.Summarize(a.meanE).Mean,
			metrics.Summarize(a.maxE).Max)
	}
}

// valsVec converts a ZeroRadius 0/1 value vector into a Vector of
// length m (nil input yields zeros).
func valsVec(vals []uint32, m int) bitvec.Vector {
	v := bitvec.New(m)
	for j, x := range vals {
		if x != 0 {
			v.Set(j, 1)
		}
	}
	return v
}
