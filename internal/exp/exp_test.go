package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("position %d: %s, want %s (sorted?)", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s incomplete: %+v", e.ID, e)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Fatal("E4 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seeds < 1 || o.Scale < 1 {
		t.Fatalf("defaults: %+v", o)
	}
}

// runQuick executes an experiment at the smallest scale and sanity-checks
// its tables.
func runQuick(t *testing.T, id string) []*parsedTable {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	tables := e.Run(Options{Seeds: 1, Scale: 1})
	if len(tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	var out []*parsedTable
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced an empty table %q", id, tab.Title)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if !strings.Contains(buf.String(), tab.Header[0]) {
			t.Fatalf("%s render missing header", id)
		}
		pt := &parsedTable{header: tab.Header}
		for _, r := range tab.Rows {
			pt.rows = append(pt.rows, r)
		}
		out = append(out, pt)
	}
	return out
}

type parsedTable struct {
	header []string
	rows   [][]string
}

func (p *parsedTable) col(name string) int {
	for i, h := range p.header {
		if h == name {
			return i
		}
	}
	return -1
}

func (p *parsedTable) floatAt(row int, name string) float64 {
	c := p.col(name)
	v, err := strconv.ParseFloat(p.rows[row][c], 64)
	if err != nil {
		panic(err)
	}
	return v
}

func TestE1QuickSuccess(t *testing.T) {
	tabs := runQuick(t, "E1")
	pt := tabs[0]
	for r := range pt.rows {
		if s := pt.floatAt(r, "success"); s < 0.99 {
			t.Fatalf("E1 row %d success %v", r, s)
		}
		solo := pt.floatAt(r, "solo(m)")
		if probes := pt.floatAt(r, "probes/player(max)"); probes >= solo {
			t.Fatalf("E1 row %d: probes %v ≥ solo %v", r, probes, solo)
		}
	}
}

func TestE2QuickBudget(t *testing.T) {
	pt := runQuick(t, "E2")[0]
	for r := range pt.rows {
		if pt.floatAt(r, "probes(max)") > pt.floatAt(r, "bound k(D+1)") {
			t.Fatalf("E2 row %d exceeds Theorem 3.2 budget", r)
		}
		if pt.rows[r][pt.col("optimal")] != "true" {
			t.Fatalf("E2 row %d not optimal", r)
		}
	}
}

func TestE3QuickBound(t *testing.T) {
	pt := runQuick(t, "E3")[0]
	for r := range pt.rows {
		emp := pt.floatAt(r, "fail(empirical)")
		// at the paper's multiplier (s/d^1.5 = 100) failure must be < 1/2
		if pt.floatAt(r, "s/d^1.5") >= 100 && emp >= 0.5 {
			t.Fatalf("E3 row %d: empirical failure %v ≥ 1/2 at paper's s", r, emp)
		}
	}
}

func TestE4QuickErrorBound(t *testing.T) {
	pt := runQuick(t, "E4")[0]
	for r := range pt.rows {
		if pt.floatAt(r, "maxErr") > pt.floatAt(r, "5D") {
			t.Fatalf("E4 row %d violates 5D bound", r)
		}
	}
}

func TestE5QuickCaps(t *testing.T) {
	pt := runQuick(t, "E5")[0]
	for r := range pt.rows {
		if pt.floatAt(r, "|B|(max)") > pt.floatAt(r, "cap 1/α")+1e-9 {
			t.Fatalf("E5 row %d exceeds 1/α cap", r)
		}
		if u := pt.floatAt(r, "unique frac"); u < 0.9 {
			t.Fatalf("E5 row %d uniqueness %v", r, u)
		}
		if pt.floatAt(r, "?s(max)") > pt.floatAt(r, "cap 5D/α")+1e-9 {
			t.Fatalf("E5 row %d exceeds ? cap", r)
		}
	}
}

func TestE7QuickQuality(t *testing.T) {
	pt := runQuick(t, "E7")[0]
	for r := range pt.rows {
		if f := pt.floatAt(r, "err/optimal ≤ 4 frac"); f < 0.85 {
			t.Fatalf("E7 row %d quality %v", r, f)
		}
	}
}

func TestE11QuickTables(t *testing.T) {
	tabs := runQuick(t, "E11")
	if len(tabs) != 3 {
		t.Fatalf("E11 returned %d tables", len(tabs))
	}
}

func TestE12QuickAdversarial(t *testing.T) {
	pt := runQuick(t, "E12")[0]
	for r := range pt.rows {
		if s := pt.floatAt(r, "success"); s < 0.99 {
			t.Fatalf("E12 row %d success %v under adversarial split", r, s)
		}
	}
}

func TestE13QuickNoiseShape(t *testing.T) {
	pt := runQuick(t, "E13")[0]
	// noise-free row must be exact
	if f := pt.floatAt(0, "exact frac"); f < 0.99 {
		t.Fatalf("E13 noise-free exactness %v", f)
	}
	// degradation should be graceful: mean error at 5%% noise well below
	// random guessing (m/2)
	for r := range pt.rows {
		if pt.rows[r][pt.col("flip")] == "0.05" {
			m := pt.floatAt(r, "n=m")
			if me := pt.floatAt(r, "meanErr"); me > m/4 {
				t.Fatalf("E13 at 5%% noise meanErr %v not graceful", me)
			}
		}
	}
}

func TestE15QuickPropagation(t *testing.T) {
	pt := runQuick(t, "E15")[0]
	for r := range pt.rows {
		rec := pt.floatAt(r, "rec probes/member")
		rnd := pt.floatAt(r, "random probes/member")
		if rec*2 > rnd {
			t.Fatalf("E15 row %d: rec %v not well below random %v", r, rec, rnd)
		}
	}
	// random cost grows ~linearly in m; rec cost must grow much slower
	first, last := 0, len(pt.rows)-1
	mGrowth := pt.floatAt(last, "m") / pt.floatAt(first, "m")
	recGrowth := pt.floatAt(last, "rec probes/member") / pt.floatAt(first, "rec probes/member")
	if recGrowth > mGrowth/2 {
		t.Fatalf("E15: rec cost grew %vx while m grew %vx", recGrowth, mGrowth)
	}
}

func TestE16QuickPolicy(t *testing.T) {
	pt := runQuick(t, "E16")[0]
	// cache-aware charging never exceeds paper charging, invocations
	// identical per algorithm, and errors unaffected.
	byAlgo := map[string][]int{}
	for r := range pt.rows {
		byAlgo[pt.rows[r][0]] = append(byAlgo[pt.rows[r][0]], r)
	}
	for algo, rows := range byAlgo {
		if len(rows) != 2 {
			t.Fatalf("%s has %d rows", algo, len(rows))
		}
		paper, cached := rows[0], rows[1]
		if pt.floatAt(cached, "charged(max)") > pt.floatAt(paper, "charged(max)") {
			t.Fatalf("%s: cache-aware charged more", algo)
		}
		if pt.floatAt(cached, "invoked(max)") != pt.floatAt(paper, "invoked(max)") {
			t.Fatalf("%s: invocation counts differ across policies", algo)
		}
		if pt.floatAt(cached, "maxErr") != pt.floatAt(paper, "maxErr") {
			t.Fatalf("%s: outputs differ across policies", algo)
		}
	}
}

func TestE17QuickDrift(t *testing.T) {
	pt := runQuick(t, "E17")[0]
	for r := range pt.rows {
		if e := pt.floatAt(r, "epoch2 err"); e != 0 {
			t.Fatalf("E17 row %d: re-convergence failed (err %v)", r, e)
		}
		if g, k := pt.floatAt(r, "stale output gap"), pt.floatAt(r, "drift k"); g != k {
			t.Fatalf("E17 row %d: stale gap %v != drift %v", r, g, k)
		}
	}
}

func TestE20QuickRefresh(t *testing.T) {
	pt := runQuick(t, "E20")[0]
	for r := range pt.rows {
		if e := pt.floatAt(r, "refresh err"); e != 0 {
			t.Fatalf("E20 row %d refresh err %v", r, e)
		}
		k := pt.floatAt(r, "drift k")
		if k <= 4 {
			if pt.floatAt(r, "refresh probes") >= pt.floatAt(r, "rerun probes") {
				t.Fatalf("E20 row %d: no repair discount at k=%v", r, k)
			}
		}
	}
}

func TestOptionsProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Seeds: 1, Scale: 1, Progress: &buf}.withDefaults()
	o.logf("hello %d", 7)
	if got := buf.String(); got != "hello 7\n" {
		t.Fatalf("progress log = %q", got)
	}
	// nil Progress must not panic
	Options{}.withDefaults().logf("ignored")
}
