package exp

import (
	"testing"
)

// The heavyweight experiments run full algorithm stacks; they are
// exercised at minimum scale and skipped with -short.

func TestE6QuickErrorShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	pt := runQuick(t, "E6")[0]
	for r := range pt.rows {
		if ratio := pt.floatAt(r, "err/(D/α)"); ratio > 10 {
			t.Fatalf("E6 row %d error ratio %v not O(D/α)-shaped", r, ratio)
		}
		// The polylog bound's constants exceed m at this n (honestly
		// reported in EXPERIMENTS.md); sanity-check the envelope and
		// that cost does not grow with D (more diameter = fewer, larger
		// groups = cheaper virtual stage).
		if pt.floatAt(r, "probes(max)") > 20*pt.floatAt(r, "solo(m)") {
			t.Fatalf("E6 row %d cost out of envelope", r)
		}
		if r > 0 && pt.floatAt(r, "probes(max)") > 1.5*pt.floatAt(r-1, "probes(max)") {
			t.Fatalf("E6 row %d cost grew with D", r)
		}
	}
}

func TestE8QuickStretch(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	pt := runQuick(t, "E8")[0]
	for r := range pt.rows {
		if s := pt.floatAt(r, "stretch"); s > 12 {
			t.Fatalf("E8 row %d stretch %v not constant-shaped", r, s)
		}
	}
}

func TestE9QuickComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tabs := runQuick(t, "E9")
	if len(tabs) != 2 {
		t.Fatalf("E9 returned %d tables", len(tabs))
	}
	adv := tabs[0]
	find := func(pt *parsedTable, name string) int {
		for r, row := range pt.rows {
			if row[0] == name {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return -1
	}
	// On the adversarial D=0 family, ZeroRadius must recover the
	// community exactly at a fraction of solo cost, while every
	// budget-matched baseline errs substantially.
	tm := find(adv, "tellme")
	if e := adv.floatAt(tm, "maxErr"); e != 0 {
		t.Fatalf("tellme maxErr %v on adversarial D=0", e)
	}
	soloCost := adv.floatAt(find(adv, "solo(full)"), "budget/player")
	if c := adv.floatAt(tm, "probes(max)"); c >= soloCost/2 {
		t.Fatalf("tellme probes %v not well below solo %v", c, soloCost)
	}
	for _, b := range []string{"majority", "kNN", "spectral"} {
		if bm := adv.floatAt(find(adv, b), "maxErr"); bm < 5 {
			t.Fatalf("baseline %s maxErr %v suspiciously low at matched budget", b, bm)
		}
	}
}

func TestE10QuickAnytime(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	pt := runQuick(t, "E10")[0]
	if len(pt.rows) < 2 {
		t.Fatalf("E10 has %d phases", len(pt.rows))
	}
	first := pt.floatAt(0, "discrepancy")
	last := pt.floatAt(len(pt.rows)-1, "discrepancy")
	if last > first {
		t.Fatalf("anytime quality degraded: %v → %v", first, last)
	}
}

func TestE14QuickCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	pt := runQuick(t, "E14")[0]
	// ZeroRadius must beat solo on every row, by a growing factor.
	prev := 1.0
	for r := range pt.rows {
		ratio := pt.floatAt(r, "ZR/solo")
		if ratio >= 1 {
			t.Fatalf("E14 row %d: ZeroRadius not below solo (%v)", r, ratio)
		}
		if ratio > prev {
			t.Fatalf("E14 row %d: ZR/solo ratio not shrinking (%v after %v)", r, ratio, prev)
		}
		prev = ratio
	}
	// SmallRadius must cross below solo by the largest n.
	last := len(pt.rows) - 1
	if sr := pt.floatAt(last, "SR/solo"); sr >= 1 {
		t.Fatalf("E14: SmallRadius never crossed solo (final ratio %v)", sr)
	}
	// and stay within its error bound
	for r := range pt.rows {
		if e := pt.floatAt(r, "SR maxErr"); e > 10 {
			t.Fatalf("E14 row %d: SmallRadius error %v > 5D", r, e)
		}
	}
}

func TestE18QuickAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tabs := runQuick(t, "E18")
	if len(tabs) != 3 {
		t.Fatalf("E18 returned %d tables", len(tabs))
	}
	// defaults (GroupC=1, LambdaC=2, CoalDC=3) must be on each table's
	// efficient frontier: error ratio within 2× of that table's best.
	defaults := map[int]string{0: "1", 1: "2", 2: "3"}
	for ti, pt := range tabs {
		best := -1.0
		defRatio := -1.0
		for r := range pt.rows {
			ratio := pt.floatAt(r, "err/(D/α)")
			if best < 0 || ratio < best {
				best = ratio
			}
			if pt.rows[r][0] == defaults[ti] {
				defRatio = ratio
			}
		}
		if defRatio < 0 {
			t.Fatalf("table %d missing default row", ti)
		}
		if defRatio > 2*best+1 {
			t.Fatalf("table %d: default ratio %v far off frontier best %v", ti, defRatio, best)
		}
	}
}

func TestE19QuickOracleRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	pt := runQuick(t, "E19")[0]
	if r := pt.floatAt(0, "ratio(p95)"); r > 10 {
		t.Fatalf("E19 p95 oracle ratio %v not constant-shaped", r)
	}
}
