package exp

import (
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Cost crossover: collaborative vs solo probing as n grows",
		Claim: "Theorems 3.1/4.4 asymptotics — where polylog beats linear",
		Run:   runE14,
	})
}

// runE14 fixes the community parameters and sweeps n = m, recording the
// max probes per player for ZeroRadius (D = 0) and SmallRadius (D = 2,
// K = 4) against the solo cost m. The paper's bounds are polylog(n), so
// the probe columns must flatten while solo grows linearly:
// ZeroRadius crosses below solo almost immediately; SmallRadius's
// larger constants (the α/5 inner threshold) push its crossover to
// n in the low thousands. This is the honest scaling picture behind
// the "polylogarithmic cost" headline.
func runE14(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E14 — cost crossover (probes/player vs solo)",
		Note:  "alpha=0.5; ZeroRadius on D=0, SmallRadius on D=2 (K=4)",
		Header: []string{
			"n=m", "solo(m)", "ZeroRadius probes", "ZR/solo", "SmallRadius probes", "SR/solo", "SR maxErr",
		},
	}
	ns := []int{512, 1024, 2048, 4096}
	if o.Scale >= 2 {
		ns = append(ns, 8192)
	}
	cfg := core.DefaultConfig()
	cfg.K = 4
	for _, n := range ns {
		var zrP, srP, srE []float64
		seeds := o.Seeds
		if n >= 4096 && seeds > 1 {
			seeds = 1 // large instances: one seed keeps the sweep tractable
		}
		for s := 0; s < seeds; s++ {
			seed := uint64(n + s)
			inZ := prefs.Identical(n, n, 0.5, seed)
			sesZ := o.newSession(inZ, seed+1, cfg)
			_ = core.ZeroRadiusBits(sesZ.env, allPlayers(n), seqObjs(n), 0.5)
			zrP = append(zrP, float64(sesZ.probeStats().Max))

			inS := prefs.Planted(n, n, 0.5, 2, seed)
			sesS := o.newSession(inS, seed+2, cfg)
			sr := core.SmallRadius(sesS.env, allPlayers(n), seqObjs(n), 0.5, 2, 4)
			srP = append(srP, float64(sesS.probeStats().Max))
			worst := 0
			for _, p := range inS.Communities[0].Members {
				if e := sr[p].Dist(inS.Truth[p]); e > worst {
					worst = e
				}
			}
			srE = append(srE, float64(worst))
		}
		zr := metrics.Summarize(zrP).Mean
		sr := metrics.Summarize(srP).Mean
		t.AddRow(n, n, zr, zr/float64(n), sr, sr/float64(n), metrics.Summarize(srE).Max)
		o.logf("E14 n=%d done", n)
	}
	return []*metrics.Table{t}
}
