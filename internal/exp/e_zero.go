package exp

import (
	"fmt"
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "ZeroRadius: exact recovery at O(log n/α) probes",
		Claim: "Theorem 3.1",
		Run:   runE1,
	})
}

// runE1 sweeps n and α on identical-preference communities and measures
// the probe cost and correctness of ZeroRadius. The claim has two parts:
// (1) every community member outputs the exact shared vector w.h.p.;
// (2) the max per-player probe count grows like log(n)/α, i.e. the
// normalized column probes/(ln n/α) is roughly flat while solo cost (m)
// grows linearly.
func runE1(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E1 — ZeroRadius (Theorem 3.1)",
		Note:  "identical community; success = fraction of members with exact output",
		Header: []string{
			"n=m", "alpha", "success", "probes/player(max)", "probes/(ln n/α)", "solo(m)",
		},
	}
	base := 256 * o.Scale
	for _, n := range []int{base, base * 2, base * 4} {
		for _, alpha := range []float64{1, 0.5, 0.25} {
			var succ, maxProbes []float64
			for s := 0; s < o.Seeds; s++ {
				seed := uint64(n)*1000 + uint64(alpha*64) + uint64(s)
				in := prefs.Identical(n, n, alpha, seed)
				ses := o.newSession(in, seed+1, core.DefaultConfig())
				out := core.ZeroRadiusBits(ses.env, allPlayers(n), seqObjs(n), alpha)
				c := in.Communities[0]
				exact := 0
				for _, p := range c.Members {
					v := bitvec.New(n)
					for j, x := range out[p] {
						if x != 0 {
							v.Set(j, 1)
						}
					}
					if v.Equal(c.Center) {
						exact++
					}
				}
				succ = append(succ, float64(exact)/float64(len(c.Members)))
				maxProbes = append(maxProbes, float64(ses.probeStats().Max))
			}
			mp := metrics.Summarize(maxProbes).Mean
			norm := mp / (math.Log(float64(n)) / alpha)
			t.AddRow(n, alpha, metrics.Summarize(succ).Mean, mp, norm, n)
			o.logf("E1 n=%d alpha=%v done", n, alpha)
		}
	}
	return []*metrics.Table{t}
}

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "ZeroRadius under adversarial colluding outsiders",
		Claim: "Theorem 3.1 (adversarial preferences)",
		Run:   runE12,
	})
}

// runE12 is the adversarial companion to E1: outsider blocks collude on
// shared vectors to attack the vote-counting step. The theorem holds for
// arbitrary preferences, so success must stay at 1.
func runE12(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E12 — ZeroRadius vs colluding outsiders (Theorem 3.1, adversarial)",
		Header: []string{"n=m", "alpha", "success", "probes/player(max)"},
	}
	n := 256 * o.Scale
	for _, alpha := range []float64{0.5, 0.3} {
		var succ, maxProbes []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(777) + uint64(alpha*64) + uint64(s)
			in := prefs.AdversarialVoteSplit(n, n, alpha, 0, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			out := core.ZeroRadiusBits(ses.env, allPlayers(n), seqObjs(n), alpha)
			c := in.Communities[0]
			exact := 0
			for _, p := range c.Members {
				ok := true
				for j := 0; j < n; j++ {
					if byte(out[p][j]) != c.Center.Get(j) {
						ok = false
						break
					}
				}
				if ok {
					exact++
				}
			}
			succ = append(succ, float64(exact)/float64(len(c.Members)))
			maxProbes = append(maxProbes, float64(ses.probeStats().Max))
		}
		t.AddRow(fmt.Sprint(n), alpha, metrics.Summarize(succ).Mean, metrics.Summarize(maxProbes).Mean)
		o.logf("E12 alpha=%v done", alpha)
	}
	return []*metrics.Table{t}
}
