package exp

import (
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Per-player oracle benchmark: error vs D_p(α)",
		Claim: "abstract / §1.1: output close to the best possible approximation",
		Run:   runE19,
	})
}

// runE19 instantiates the paper's headline yardstick directly: for each
// player p and fraction α, the oracle-optimal community radius is
// D_p(α) — the smallest D such that an α fraction of players lies
// within D of p (Section 6). The abstract promises every player "a
// vector close to the best possible approximation", i.e. error within a
// constant factor of D_p(α). We run the unknown-D wrapper on a
// multi-community instance (so different players have very different
// D_p) and report the distribution of err(p)/max(D_p(α),1) over all
// community members — the per-player stretch against the oracle, which
// must be bounded by a constant.
func runE19(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E19 — error vs per-player oracle D_p(α)",
		Note:   "ratio = err(p)/max(D_p(α),1) over members of all planted communities",
		Header: []string{"n=m", "alpha", "ratio(mean)", "ratio(p95)", "ratio(max)", "players"},
	}
	n := 128 * o.Scale
	alpha := 0.2
	for seedBase := 0; seedBase < 1; seedBase++ { // one config, multi-seed
		var ratios []float64
		players := 0
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(800 + s)
			in := prefs.MultiCommunity(n, n, []prefs.CommunitySpec{
				{Alpha: 0.35, D: 0},
				{Alpha: 0.25, D: 8},
				{Alpha: 0.20, D: 24},
			}, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			out := core.UnknownD(ses.env, alpha)
			for _, c := range in.Communities {
				for _, p := range c.Members {
					dp := in.BestD(p, alpha)
					if dp < 1 {
						dp = 1
					}
					ratios = append(ratios, float64(in.Err(p, out[p]))/float64(dp))
					players++
				}
			}
			o.logf("E19 seed %d done", s)
		}
		sum := metrics.Summarize(ratios)
		t.AddRow(n, alpha, sum.Mean, metrics.Percentile(ratios, 0.95), sum.Max, players)
	}
	return []*metrics.Table{t}
}
