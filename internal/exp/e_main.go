package exp

import (
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Main result: constant stretch with unknown D in polylog rounds",
		Claim: "Theorem 1.1",
		Run:   runE8,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Anytime algorithm: quality vs probing budget with unknown α",
		Claim: "Section 6",
		Run:   runE10,
	})
}

// runE8 is the headline reproduction: unknown D (the Section 6 wrapper
// over Fig. 1), planted communities across diameters and sizes. The
// stretch ρ = Δ/D must be bounded by a constant, and the rounds (max
// probes per player) must grow polylogarithmically — compare the probe
// column across the n rows against the linear solo column.
func runE8(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E8 — main result (Theorem 1.1), unknown D",
		Note:  "stretch = discrepancy/diameter over the planted community",
		Header: []string{
			"n=m", "alpha", "D(planted)", "D(realized)", "discrepancy", "stretch", "probes(max)", "solo(m)",
		},
	}
	base := 128 * o.Scale
	alpha := 0.5
	for _, n := range []int{base, base * 2} {
		for _, d := range []int{0, 4, 16, 64} {
			var stretches, discs, probes []float64
			realized := 0
			for s := 0; s < o.Seeds; s++ {
				seed := uint64(n*10+d) + uint64(s)
				in := prefs.Planted(n, n, alpha, d, seed)
				ses := o.newSession(in, seed+1, core.DefaultConfig())
				out := core.UnknownD(ses.env, alpha)
				c := ses.community()
				realized = in.Diameter(c)
				discs = append(discs, float64(metrics.Discrepancy(in, c, out)))
				stretches = append(stretches, metrics.Stretch(in, c, out))
				probes = append(probes, float64(ses.probeStats().Max))
			}
			t.AddRow(n, alpha, d, realized,
				metrics.Summarize(discs).Max,
				metrics.Summarize(stretches).Max,
				metrics.Summarize(probes).Mean, n)
			o.logf("E8 n=%d D=%d done", n, d)
		}
	}
	return []*metrics.Table{t}
}

// runE10 traces the anytime algorithm: after each α-doubling phase it
// records the budget spent and the community discrepancy, showing
// quality improving as the budget grows (Section 6's anytime property).
func runE10(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E10 — anytime algorithm (Section 6)",
		Note:   "one row per phase; quality at each budget close to best possible",
		Header: []string{"phase", "alpha tried", "probes(max)", "discrepancy", "stretch"},
	}
	n := 128 * o.Scale
	in := prefs.Planted(n, n, 0.25, 8, 4242)
	ses := o.newSession(in, 4243, core.DefaultConfig())
	c := ses.community()
	core.Anytime(ses.env, 0, func(ph core.AnytimePhase) bool {
		disc := metrics.Discrepancy(in, c, ph.Outputs)
		t.AddRow(ph.Phase, ph.Alpha, ph.MaxProbes, disc, metrics.Stretch(in, c, ph.Outputs))
		o.logf("E10 phase=%d done", ph.Phase)
		return ph.Phase < 4
	})
	return []*metrics.Table{t}
}
