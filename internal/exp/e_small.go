package exp

import (
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "SmallRadius: 5D error bound, D^{3/2}-scaled probe cost",
		Claim: "Theorem 4.4",
		Run:   runE4,
	})
}

// runE4 sweeps the community diameter D on planted instances and checks
// Theorem 4.4's two claims: every typical player ends within 5D of its
// true vector, and the probe cost scales polynomially in D but stays
// sublinear in m once n is large enough relative to log n/α.
func runE4(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E4 — SmallRadius (Theorem 4.4)",
		Note:  "maxErr must stay ≤ 5D; probes/player vs solo cost m",
		Header: []string{
			"n=m", "alpha", "D", "maxErr", "5D", "meanErr", "probes(max)", "solo(m)",
		},
	}
	n := 512 * o.Scale
	alpha := 0.5
	for _, d := range []int{1, 2, 4, 8} {
		var maxErrs, meanErrs, probes []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(d*100 + s)
			in := prefs.Planted(n, n, alpha, d, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			sr := core.SmallRadius(ses.env, allPlayers(n), seqObjs(n), alpha, d, 0)
			out := make([]bitvec.Partial, n)
			for p := 0; p < n; p++ {
				out[p] = bitvec.PartialOf(sr[p])
			}
			c := ses.community()
			maxErrs = append(maxErrs, float64(metrics.Discrepancy(in, c, out)))
			meanErrs = append(meanErrs, metrics.MeanErr(in, c, out))
			probes = append(probes, float64(ses.probeStats().Max))
		}
		t.AddRow(n, alpha, d,
			metrics.Summarize(maxErrs).Max, 5*d,
			metrics.Summarize(meanErrs).Mean,
			metrics.Summarize(probes).Mean, n)
		o.logf("E4 D=%d done", d)
	}
	return []*metrics.Table{t}
}
