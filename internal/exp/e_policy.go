package exp

import (
	"tellme/internal/billboard"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Charging policy: paper's charge-every-probe vs cache-aware",
		Claim: "probe model remark (§1, Select remark): bounds hold under both",
		Run:   runE16,
	})
}

// runE16 runs the same algorithms under the two charging policies the
// probe engine supports. The paper charges every Probe invocation (its
// Select explicitly re-probes); a real system would answer repeats from
// the player's own billboard postings for free. The outputs are
// identical (noise-free probes are deterministic); the table shows how
// much of the paper-model cost is re-probing — i.e. how much a
// cache-aware implementation saves without touching the algorithms.
func runE16(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title:  "E16 — charging policy (paper vs cache-aware)",
		Note:   "same seeds; outputs identical; charged = cost under the policy",
		Header: []string{"algorithm", "policy", "charged(max)", "invoked(max)", "maxErr"},
	}
	n := 256 * o.Scale

	type cfg struct {
		name   string
		policy probe.Policy
	}
	policies := []cfg{
		{"charge-all (paper)", probe.ChargeAll},
		{"charge-distinct", probe.ChargeDistinct},
	}

	runZR := func(pc cfg) (int64, int64, int) {
		var worstC, worstI int64
		worstE := 0
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(100 + s)
			in := prefs.Identical(n, n, 0.5, seed)
			e := probe.NewEngine(in, billboard.New(n, n), rng.NewSource(seed+1), probe.WithPolicy(pc.policy))
			env := core.NewEnv(e, sim.NewRunner(0), rng.NewSource(seed+2), core.DefaultConfig())
			out := core.ZeroRadiusBits(env, allPlayers(n), seqObjs(n), 0.5)
			for _, p := range in.Communities[0].Members {
				errs := 0
				for j := 0; j < n; j++ {
					if byte(out[p][j]) != in.Communities[0].Center.Get(j) {
						errs++
					}
				}
				if errs > worstE {
					worstE = errs
				}
			}
			for p := 0; p < n; p++ {
				if c := e.Charged(p); c > worstC {
					worstC = c
				}
				if i := e.Invoked(p); i > worstI {
					worstI = i
				}
			}
		}
		return worstC, worstI, worstE
	}
	runSR := func(pc cfg) (int64, int64, int) {
		var worstC, worstI int64
		worstE := 0
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(200 + s)
			in := prefs.Planted(n, n, 0.5, 4, seed)
			e := probe.NewEngine(in, billboard.New(n, n), rng.NewSource(seed+1), probe.WithPolicy(pc.policy))
			env := core.NewEnv(e, sim.NewRunner(0), rng.NewSource(seed+2), core.DefaultConfig())
			sr := core.SmallRadius(env, allPlayers(n), seqObjs(n), 0.5, 4, 4)
			for _, p := range in.Communities[0].Members {
				if errs := sr[p].Dist(in.Truth[p]); errs > worstE {
					worstE = errs
				}
			}
			for p := 0; p < n; p++ {
				if c := e.Charged(p); c > worstC {
					worstC = c
				}
				if i := e.Invoked(p); i > worstI {
					worstI = i
				}
			}
		}
		return worstC, worstI, worstE
	}

	for _, pc := range policies {
		c, i, e := runZR(pc)
		t.AddRow("ZeroRadius", pc.name, c, i, e)
		o.logf("E16 ZR %s done", pc.name)
	}
	for _, pc := range policies {
		c, i, e := runSR(pc)
		t.AddRow("SmallRadius", pc.name, c, i, e)
		o.logf("E16 SR %s done", pc.name)
	}
	return []*metrics.Table{t}
}
