package exp

import (
	"tellme/internal/billboard"
	"tellme/internal/metrics"
	"tellme/internal/onegood"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "One good object via recommendation propagation (reference [4])",
		Claim: "Awerbuch–Patt-Shamir–Peleg–Tuttle, SODA'05: O(m + |P|·log|P|) total community probes",
		Run:   runE15,
	})
}

// runE15 reproduces the qualitative claim of the paper's reference [4]
// on shared-liked-set instances: with L liked objects among m, pure
// random probing costs each community member ~m/L probes (Θ(n·m/L)
// total), while the recommendation algorithm needs one member to get
// lucky and then propagates the discovery in O(log |P|) rounds. The
// rounds and per-member probe columns should be near-flat in m for the
// recommendation algorithm and grow linearly for random probing.
func runE15(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E15 — one good object (reference [4])",
		Note:  "community of αn players sharing L liked objects; rounds = last member's finish",
		Header: []string{
			"n", "m", "L", "rec rounds", "rec probes/member", "random rounds", "random probes/member",
		},
	}
	n := 256 * o.Scale
	alpha := 0.5
	const liked = 4
	for _, m := range []int{n, 2 * n, 4 * n, 8 * n} {
		var recRounds, recProbes, rndRounds, rndProbes []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(m*10 + s)
			in := prefs.SharedLikes(n, m, alpha, liked, liked, seed)
			comm := in.Communities[0].Members

			e1 := probe.NewEngine(in, billboard.New(n, m), rng.NewSource(seed+1))
			rec := onegood.Run(e1, sim.NewRunner(0), rng.NewSource(seed+2), 0)
			recRounds = append(recRounds, float64(rec.RoundsToCover(comm)))
			recProbes = append(recProbes, meanFoundAt(rec, comm))

			e2 := probe.NewEngine(in, billboard.New(n, m), rng.NewSource(seed+3))
			rnd := onegood.RandomOnly(e2, sim.NewRunner(0), rng.NewSource(seed+4), 0)
			rndRounds = append(rndRounds, float64(rnd.RoundsToCover(comm)))
			rndProbes = append(rndProbes, meanFoundAt(rnd, comm))
		}
		t.AddRow(n, m, liked,
			metrics.Summarize(recRounds).Mean,
			metrics.Summarize(recProbes).Mean,
			metrics.Summarize(rndRounds).Mean,
			metrics.Summarize(rndProbes).Mean)
		o.logf("E15 m=%d done", m)
	}
	return []*metrics.Table{t}
}

// meanFoundAt averages the finish round (= probes spent) over players.
func meanFoundAt(r onegood.Result, players []int) float64 {
	s := 0
	for _, p := range players {
		s += r.FoundAt[p]
	}
	return float64(s) / float64(len(players))
}
