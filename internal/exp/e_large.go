package exp

import (
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "LargeRadius: O(D/α) error at polylog probe cost",
		Claim: "Theorem 5.4",
		Run:   runE6,
	})
}

// runE6 sweeps large community diameters and checks Theorem 5.4's error
// claim: the discrepancy grows linearly in D with an O(1/α) constant.
// The probe column is reported for the honest scaling story — the
// polylog bound's constants exceed m at simulator n (E14 locates the
// crossovers); within the sweep, cost must not grow with D.
func runE6(o Options) []*metrics.Table {
	o = o.withDefaults()
	t := &metrics.Table{
		Title: "E6 — LargeRadius (Theorem 5.4)",
		Note:  "err/(D/α) should be a small constant; the polylog probe bound's constants exceed m at this n (see E14 for where crossovers fall)",
		Header: []string{
			"n=m", "alpha", "D", "maxErr", "err/(D/α)", "?s(max)", "probes(max)", "solo(m)",
		},
	}
	n := 512 * o.Scale
	alpha := 0.5
	for _, d := range []int{16, 32, 64, 128} {
		var maxErrs, probes, unknowns []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(d*10 + s)
			in := prefs.Planted(n, n, alpha, d, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			out := core.LargeRadius(ses.env, allPlayers(n), seqObjs(n), alpha, d)
			c := ses.community()
			maxErrs = append(maxErrs, float64(metrics.Discrepancy(in, c, out)))
			worstQ := 0
			for _, p := range c {
				if q := out[p].UnknownCount(); q > worstQ {
					worstQ = q
				}
			}
			unknowns = append(unknowns, float64(worstQ))
			probes = append(probes, float64(ses.probeStats().Max))
		}
		me := metrics.Summarize(maxErrs).Max
		t.AddRow(n, alpha, d, me, me/(float64(d)/alpha),
			metrics.Summarize(unknowns).Max,
			metrics.Summarize(probes).Mean, n)
		o.logf("E6 D=%d done", d)
	}
	return []*metrics.Table{t}
}
