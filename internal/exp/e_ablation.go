package exp

import (
	"tellme/internal/bitvec"
	"tellme/internal/core"
	"tellme/internal/metrics"
	"tellme/internal/prefs"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Ablations: confidence K, partition constant, vote threshold",
		Claim: "design choices behind Theorems 3.1 and 4.4",
		Run:   runE11,
	})
}

// runE11 sweeps the three constants DESIGN.md calls out:
//
//   - K (SmallRadius iterations): failure should decay like 2^{-Ω(K)};
//   - PartC (s = PartC·D^{3/2}): Lemma 4.1's knee — too few parts break
//     the within-part agreement property;
//   - VoteFrac (ZeroRadius vote threshold): too high a threshold starves
//     the candidate set under adversarial vote splits.
func runE11(o Options) []*metrics.Table {
	o = o.withDefaults()
	n := 256 * o.Scale
	alpha := 0.5
	d := 4

	// --- K sweep ---
	tK := &metrics.Table{
		Title:  "E11a — SmallRadius confidence parameter K",
		Note:   "fail = fraction of community members with error > 5D",
		Header: []string{"K", "fail frac", "maxErr", "probes(max)"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		var fails, maxErrs, probes []float64
		for s := 0; s < o.Seeds; s++ {
			seed := uint64(k*100 + s)
			in := prefs.Planted(n, n, alpha, d, seed)
			ses := o.newSession(in, seed+1, core.DefaultConfig())
			sr := core.SmallRadius(ses.env, allPlayers(n), seqObjs(n), alpha, d, k)
			c := ses.community()
			bad, worst := 0, 0
			for _, p := range c {
				e := sr[p].Dist(in.Truth[p])
				if e > 5*d {
					bad++
				}
				if e > worst {
					worst = e
				}
			}
			fails = append(fails, float64(bad)/float64(len(c)))
			maxErrs = append(maxErrs, float64(worst))
			probes = append(probes, float64(ses.probeStats().Max))
		}
		tK.AddRow(k, metrics.Summarize(fails).Mean, metrics.Summarize(maxErrs).Max,
			metrics.Summarize(probes).Mean)
		o.logf("E11a K=%d done", k)
	}

	// --- PartC sweep ---
	tS := &metrics.Table{
		Title:  "E11b — SmallRadius partition constant (s = PartC·D^{3/2})",
		Header: []string{"PartC", "s", "maxErr", "5D", "probes(max)"},
	}
	for _, pc := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.PartC = pc
		var maxErrs, probes []float64
		s := 0
		for seedI := 0; seedI < o.Seeds; seedI++ {
			seed := uint64(seedI) + uint64(pc*1000)
			in := prefs.Planted(n, n, alpha, d, seed)
			ses := o.newSession(in, seed+1, cfg)
			sr := core.SmallRadius(ses.env, allPlayers(n), seqObjs(n), alpha, d, 0)
			c := ses.community()
			worst := 0
			for _, p := range c {
				if e := sr[p].Dist(in.Truth[p]); e > worst {
					worst = e
				}
			}
			maxErrs = append(maxErrs, float64(worst))
			probes = append(probes, float64(ses.probeStats().Max))
		}
		_ = s
		tS.AddRow(pc, sOf(cfg, d, n), metrics.Summarize(maxErrs).Max, 5*d,
			metrics.Summarize(probes).Mean)
		o.logf("E11b PartC=%v done", pc)
	}

	// --- VoteFrac sweep ---
	tV := &metrics.Table{
		Title:  "E11c — ZeroRadius vote threshold under adversarial splits",
		Note:   "success = exact recovery fraction in the identical community",
		Header: []string{"VoteFrac", "success", "probes(max)"},
	}
	for _, vf := range []float64{0.25, 0.5, 0.75, 1.0} {
		cfg := core.DefaultConfig()
		cfg.VoteFrac = vf
		var succ, probes []float64
		for seedI := 0; seedI < o.Seeds; seedI++ {
			seed := uint64(seedI) + uint64(vf*100)
			in := prefs.AdversarialVoteSplit(n, n, 0.3, 0, seed)
			ses := o.newSession(in, seed+1, cfg)
			out := core.ZeroRadiusBits(ses.env, allPlayers(n), seqObjs(n), 0.3)
			c := ses.community()
			exact := 0
			for _, p := range c {
				v := bitvec.New(n)
				for j, x := range out[p] {
					if x != 0 {
						v.Set(j, 1)
					}
				}
				if v.Equal(in.Communities[0].Center) {
					exact++
				}
			}
			succ = append(succ, float64(exact)/float64(len(c)))
			probes = append(probes, float64(ses.probeStats().Max))
		}
		tV.AddRow(vf, metrics.Summarize(succ).Mean, metrics.Summarize(probes).Mean)
		o.logf("E11c VoteFrac=%v done", vf)
	}
	return []*metrics.Table{tK, tS, tV}
}

// sOf exposes the partition count the config yields (for the table).
func sOf(cfg core.Config, d, m int) int {
	return core.SmallRadiusPartitions(cfg, d, m)
}
