package probe

import (
	"sync"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/prefs"
	"tellme/internal/rng"
)

func newEngine(t *testing.T, opts ...Option) (*Engine, *prefs.Instance) {
	t.Helper()
	in := prefs.Planted(16, 64, 0.5, 4, 7)
	b := billboard.New(in.N, in.M)
	return NewEngine(in, b, rng.NewSource(1), opts...), in
}

func TestProbeReturnsTruth(t *testing.T) {
	e, in := newEngine(t)
	for p := 0; p < in.N; p++ {
		pl := e.Player(p)
		for o := 0; o < in.M; o += 7 {
			if got := pl.Probe(o); got != in.Grade(p, o) {
				t.Fatalf("Probe(%d,%d) = %d, truth %d", p, o, got, in.Grade(p, o))
			}
		}
	}
}

func TestProbePostsToBillboard(t *testing.T) {
	e, in := newEngine(t)
	e.Player(3).Probe(11)
	v, ok := e.Board().LookupProbe(3, 11)
	if !ok || v != in.Grade(3, 11) {
		t.Fatalf("billboard: %v %v", v, ok)
	}
}

func TestChargeAllCountsDuplicates(t *testing.T) {
	e, _ := newEngine(t) // default ChargeAll
	pl := e.Player(0)
	pl.Probe(5)
	pl.Probe(5)
	pl.Probe(5)
	if got := e.Charged(0); got != 3 {
		t.Fatalf("ChargeAll charged %d, want 3", got)
	}
	if got := e.Invoked(0); got != 3 {
		t.Fatalf("Invoked = %d", got)
	}
}

func TestChargeDistinctCachesDuplicates(t *testing.T) {
	e, _ := newEngine(t, WithPolicy(ChargeDistinct))
	pl := e.Player(0)
	a := pl.Probe(5)
	b := pl.Probe(5)
	pl.Probe(6)
	if a != b {
		t.Fatal("cached probe returned different value")
	}
	if got := e.Charged(0); got != 2 {
		t.Fatalf("ChargeDistinct charged %d, want 2", got)
	}
	if got := e.Invoked(0); got != 3 {
		t.Fatalf("Invoked = %d, want 3", got)
	}
}

func TestChargesIsolatedPerPlayer(t *testing.T) {
	e, _ := newEngine(t)
	e.Player(0).Probe(1)
	e.Player(1).Probe(1)
	e.Player(1).Probe(2)
	if e.Charged(0) != 1 || e.Charged(1) != 2 {
		t.Fatalf("charges: %d, %d", e.Charged(0), e.Charged(1))
	}
	if e.TotalCharged() != 3 {
		t.Fatalf("TotalCharged = %d", e.TotalCharged())
	}
}

func TestSnapshotAndMaxDelta(t *testing.T) {
	e, _ := newEngine(t)
	snap := e.Snapshot(nil)
	e.Player(0).Probe(1)
	e.Player(0).Probe(2)
	e.Player(1).Probe(1)
	if d := e.MaxDelta(snap); d != 2 {
		t.Fatalf("MaxDelta = %d, want 2", d)
	}
	snap = e.Snapshot(snap)
	if d := e.MaxDelta(snap); d != 0 {
		t.Fatalf("MaxDelta after snapshot = %d", d)
	}
}

func TestFlipNoiseAlways(t *testing.T) {
	e, in := newEngine(t, WithNoise(FlipNoise(1.0)))
	pl := e.Player(2)
	for o := 0; o < 20; o++ {
		if pl.Probe(o) != 1-in.Grade(2, o) {
			t.Fatal("FlipNoise(1.0) did not flip")
		}
	}
}

func TestFlipNoiseRate(t *testing.T) {
	e, in := newEngine(t, WithNoise(FlipNoise(0.25)))
	pl := e.Player(0)
	flips := 0
	for o := 0; o < 64; o++ {
		if pl.Probe(o) != in.Grade(0, o) {
			flips++
		}
	}
	if flips == 0 || flips == 64 {
		t.Fatalf("FlipNoise(0.25) flipped %d/64", flips)
	}
}

func TestStuckNoise(t *testing.T) {
	e, in := newEngine(t, WithNoise(StuckNoise(func(p int) bool { return p == 4 }, 1)))
	for o := 0; o < 10; o++ {
		if e.Player(4).Probe(o) != 1 {
			t.Fatal("stuck player not stuck at 1")
		}
	}
	ok := false
	for o := 0; o < 64; o++ {
		if e.Player(5).Probe(o) == in.Grade(5, o) {
			ok = true
		}
	}
	if !ok {
		t.Fatal("healthy player corrupted")
	}
}

func TestNoiseDeterministicAcrossRuns(t *testing.T) {
	mk := func() []byte {
		in := prefs.Planted(4, 32, 0.5, 2, 7)
		b := billboard.New(in.N, in.M)
		e := NewEngine(in, b, rng.NewSource(9), WithNoise(FlipNoise(0.5)))
		var out []byte
		for o := 0; o < 32; o++ {
			out = append(out, e.Player(1).Probe(o))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise not reproducible at %d", i)
		}
	}
}

func TestConcurrentProbing(t *testing.T) {
	in := prefs.Planted(32, 128, 0.5, 4, 3)
	b := billboard.New(in.N, in.M)
	e := NewEngine(in, b, rng.NewSource(2))
	var wg sync.WaitGroup
	for p := 0; p < in.N; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pl := e.Player(p)
			for o := 0; o < in.M; o++ {
				if pl.Probe(o) != in.Grade(p, o) {
					t.Errorf("wrong grade for %d,%d", p, o)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if e.TotalCharged() != int64(in.N*in.M) {
		t.Fatalf("TotalCharged = %d", e.TotalCharged())
	}
	if b.ProbeCount() != int64(in.N*in.M) {
		t.Fatalf("board ProbeCount = %d", b.ProbeCount())
	}
}

func BenchmarkProbe(b *testing.B) {
	in := prefs.Planted(4, 1<<16, 0.5, 4, 3)
	board := billboard.New(in.N, in.M)
	e := NewEngine(in, board, rng.NewSource(2))
	pl := e.Player(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pl.Probe(i & (1<<16 - 1))
	}
}
