// Package probe implements the probe engine: the only way a player can
// learn one of its own hidden grades, at unit cost per probe.
//
// Every probe result is automatically posted to the shared billboard, as
// the model requires. The engine keeps per-player cost counters so the
// simulator can convert "max probes per player in a phase" into the
// paper's parallel round count.
//
// Charging policy: the paper charges one unit per Probe invocation, and
// its Select remark explicitly forbids reusing earlier probes, so the
// default policy ChargeAll counts every invocation. ChargeDistinct is the
// systems-flavored alternative (re-reading your own posted result is
// free); experiments use it to show the bounds are insensitive to the
// choice.
//
// The engine also supports fault injection (a NoiseFunc that corrupts
// returned grades) for robustness experiments beyond the paper's
// noise-free model.
package probe

import (
	"context"
	"fmt"
	"sync/atomic"

	"tellme/internal/arena"
	"tellme/internal/boardclient"
	"tellme/internal/prefs"
	"tellme/internal/rng"
	"tellme/internal/telemetry"
)

// Canceled is panicked by Player.Probe/ProbeMany when the engine's
// context is cancelled mid-phase: a player deep inside a recursive
// algorithm has no error return path, so cancellation unwinds its phase
// body the same way any player panic would, and the simulator
// (sim.Runner) recognizes the type and reports Cause as the phase error
// instead of a panic.
type Canceled struct {
	// Cause is the context's cancellation cause (context.Canceled,
	// context.DeadlineExceeded, or the cause passed to the cancel func).
	Cause error
}

// Error implements error.
func (c *Canceled) Error() string { return fmt.Sprintf("probe: run canceled: %v", c.Cause) }

// Unwrap exposes the cancellation cause to errors.Is/As.
func (c *Canceled) Unwrap() error { return c.Cause }

// Policy selects how repeated probes of the same (player, object) pair
// are charged.
type Policy int

const (
	// ChargeAll charges every Probe invocation (paper-faithful).
	ChargeAll Policy = iota
	// ChargeDistinct charges only the first probe of each object;
	// re-probes are answered from the player's own billboard postings.
	ChargeDistinct
)

// String names the policy (used as a telemetry label).
func (p Policy) String() string {
	switch p {
	case ChargeAll:
		return "charge_all"
	case ChargeDistinct:
		return "charge_distinct"
	default:
		return "unknown"
	}
}

// NoiseFunc optionally corrupts a probe result. It receives the player,
// object, true grade, and a per-player random stream, and returns the
// observed grade. A nil NoiseFunc means noise-free probes.
type NoiseFunc func(player, object int, truth byte, r *rng.Rand) byte

// Engine mediates all probes against one instance.
type Engine struct {
	inst   *prefs.Instance
	board  boardclient.Interface
	policy Policy
	noise  NoiseFunc
	hook   func(player int)

	charged []atomic.Int64 // per-player charged probes
	invoked []atomic.Int64 // per-player Probe invocations

	// telemetry, when set by WithTelemetry, samples the per-player
	// counters into "probe.charged.<policy>" / "probe.invoked.<policy>"
	// at snapshot time (CounterFunc) — the hot path never touches a
	// shared telemetry atomic.
	telemetry *telemetry.Registry

	// ctx/done, when set by WithContext, make probing cancellable: the
	// board is bound to ctx (a networked board aborts in-flight
	// requests) and Probe panics *Canceled on a periodic done check.
	// done is nil for an uncancellable engine — the zero-cost fast path.
	ctx  context.Context
	done <-chan struct{}

	players []Player
}

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy sets the charging policy (default ChargeAll).
func WithPolicy(p Policy) Option { return func(e *Engine) { e.policy = p } }

// WithNoise installs a fault-injection function.
func WithNoise(f NoiseFunc) Option { return func(e *Engine) { e.noise = f } }

// WithProbeHook installs a function invoked before every charged probe,
// e.g. a sim.Gate tick for strict round-lockstep execution.
func WithProbeHook(h func(player int)) Option { return func(e *Engine) { e.hook = h } }

// WithContext makes the engine's probes observe ctx: the billboard is
// bound to it via boardclient.BindContext (a networked board's requests
// and retry sleeps then abort on cancellation), and Probe itself checks
// ctx every 64th invocation per player, panicking *Canceled so an
// in-memory run also stops promptly instead of only at the next phase
// boundary. A nil or never-cancellable ctx leaves the engine on the
// uncancellable fast path.
func WithContext(ctx context.Context) Option {
	return func(e *Engine) {
		if ctx == nil || ctx.Done() == nil {
			return
		}
		e.ctx = ctx
		e.done = ctx.Done()
	}
}

// WithTelemetry exposes the engine's charged/invoked totals in reg
// under "probe.charged.<policy>" / "probe.invoked.<policy>". The
// totals are sampled from the per-player counters when the registry is
// snapshotted, so enabling telemetry adds nothing to the per-probe
// cost (the per-player counters exist regardless).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(e *Engine) { e.telemetry = reg }
}

// NewEngine builds a probe engine over inst that posts results to board.
func NewEngine(inst *prefs.Instance, board boardclient.Interface, src rng.Source, opts ...Option) *Engine {
	e := &Engine{
		inst:    inst,
		board:   board,
		charged: make([]atomic.Int64, inst.N),
		invoked: make([]atomic.Int64, inst.N),
	}
	for _, o := range opts {
		o(e)
	}
	if e.ctx != nil {
		e.board = boardclient.BindContext(e.ctx, e.board)
	}
	if e.telemetry != nil {
		// Registered after all options so the policy label is final.
		e.telemetry.CounterFunc("probe.charged."+e.policy.String(), e.TotalCharged)
		e.telemetry.CounterFunc("probe.invoked."+e.policy.String(), e.TotalInvoked)
	}
	e.players = make([]Player, inst.N)
	for p := 0; p < inst.N; p++ {
		e.players[p] = Player{engine: e, id: p}
	}
	if e.noise != nil {
		// Noise streams are only materialized when a NoiseFunc is
		// installed; noise-free engines skip n stream allocations.
		for p := 0; p < inst.N; p++ {
			e.players[p].noiseRand = src.Stream("probe-noise", p)
		}
	}
	return e
}

// Player returns the probe handle for player p. The handle must be used
// only from p's goroutine (its noise stream is not synchronized); the
// shared engine state it touches is synchronized.
func (e *Engine) Player(p int) *Player { return &e.players[p] }

// Charged returns the number of probes charged to player p so far.
func (e *Engine) Charged(p int) int64 { return e.charged[p].Load() }

// Invoked returns the number of Probe invocations by player p so far.
func (e *Engine) Invoked(p int) int64 { return e.invoked[p].Load() }

// TotalCharged sums charged probes over all players.
func (e *Engine) TotalCharged() int64 {
	var t int64
	for i := range e.charged {
		t += e.charged[i].Load()
	}
	return t
}

// ChargedSum sums charged probes over the given players.
func (e *Engine) ChargedSum(players []int) int64 {
	var t int64
	for _, p := range players {
		t += e.charged[p].Load()
	}
	return t
}

// TotalInvoked sums Probe invocations over all players.
func (e *Engine) TotalInvoked() int64 {
	var t int64
	for i := range e.invoked {
		t += e.invoked[i].Load()
	}
	return t
}

// Snapshot copies the per-player charged counters into dst (allocating
// if dst is short). The simulator diffs snapshots to compute the round
// count of a phase.
func (e *Engine) Snapshot(dst []int64) []int64 {
	if cap(dst) < len(e.charged) {
		dst = make([]int64, len(e.charged))
	}
	dst = dst[:len(e.charged)]
	for i := range e.charged {
		dst[i] = e.charged[i].Load()
	}
	return dst
}

// MaxDelta returns the maximum per-player difference between the current
// counters and the snapshot prev: the parallel round count of the phase
// that ran since prev was taken.
func (e *Engine) MaxDelta(prev []int64) int64 {
	var worst int64
	for i := range e.charged {
		if d := e.charged[i].Load() - prev[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// Board returns the billboard the engine posts to. When the engine was
// built with WithContext this is the context-bound view.
func (e *Engine) Board() boardclient.Interface { return e.board }

// Context returns the context the engine was built with, or nil for an
// uncancellable engine. core.NewEnv reads it so the coordinator loops
// observe the same cancellation the players do.
func (e *Engine) Context() context.Context { return e.ctx }

// checkCanceled panics *Canceled if the engine's context is done. Only
// called on the sampled slow path (done != nil and the invocation
// counter hit the sampling mask).
func (e *Engine) checkCanceled() {
	select {
	case <-e.done:
		panic(&Canceled{Cause: context.Cause(e.ctx)})
	default:
	}
}

// Instance returns the instance being probed (for metrics; algorithms
// must not touch ground truth).
func (e *Engine) Instance() *prefs.Instance { return e.inst }

// Player is a single player's probing capability.
type Player struct {
	engine    *Engine
	id        int
	noiseRand *rng.Rand

	// Reusable batch scratch, safe because a Player handle is owned by
	// one goroutine (see Engine.Player).
	objScratch []int
	postObjs   []int
	postGrades []byte
	lookGrades []byte
	lookKnown  []bool

	// arena is the player's region allocator for per-call scratch inside
	// phase bodies (Select working sets and the like), lazily created by
	// Arena. Owned by this player's goroutine like the scratch above.
	arena *arena.Arena
}

// Arena returns the player's scratch arena, creating it on first use.
// Callers must follow arena discipline: take a Mark, allocate, and
// Release before returning — nested Mark/Release pairs (a Select inside
// a Select) must unwind LIFO. Like the Player itself, the arena must
// only be used from the player's goroutine.
func (pl *Player) Arena() *arena.Arena {
	if pl.arena == nil {
		pl.arena = new(arena.Arena)
	}
	return pl.arena
}

// ID returns the player index.
func (pl *Player) ID() int { return pl.id }

// Probe reveals the player's grade for object o, charges the configured
// cost, and posts the result to the billboard.
func (pl *Player) Probe(o int) byte {
	e := pl.engine
	// The invocation counter doubles as the cancellation sampler: every
	// 64th probe by a player checks the engine's done channel, so an
	// in-memory run observes cancellation within a bounded number of
	// probes without a per-probe select on the fast path.
	if k := e.invoked[pl.id].Add(1); e.done != nil && k&63 == 0 {
		e.checkCanceled()
	}
	if e.policy == ChargeDistinct {
		if v, ok := e.board.LookupProbe(pl.id, o); ok {
			return v
		}
	}
	if e.hook != nil {
		e.hook(pl.id)
	}
	v := e.inst.Grade(pl.id, o)
	if e.noise != nil {
		v = e.noise(pl.id, o, v, pl.noiseRand)
	}
	e.charged[pl.id].Add(1)
	e.board.PostProbe(pl.id, o, v)
	return v
}

// ObjScratch returns a reusable length-n object-id buffer owned by this
// player's goroutine. Batched object spaces (core.BatchObjectSpace) use
// it to build the real-object list for ProbeMany without allocating in
// phase bodies. The buffer is invalidated by the next ObjScratch call;
// ProbeMany does not touch it.
func (pl *Player) ObjScratch(n int) []int {
	if cap(pl.objScratch) < n {
		pl.objScratch = make([]int, n)
	}
	return pl.objScratch[:n]
}

// ProbeMany probes every object in objs and writes the observed grades
// into dst (dst[k] for objs[k]). It is observably equivalent to calling
// Probe per object in order — same charging, same hook ticks, same
// noise-stream consumption — except that the results reach the
// billboard as one batched post (and, under ChargeDistinct, the cache
// check is one batched lookup), which a networked billboard ships as a
// single round trip instead of len(objs). Objects within one call must
// be distinct; under ChargeDistinct a duplicate would be recharged
// because the batch is posted only at the end.
func (pl *Player) ProbeMany(objs []int, dst []uint32) {
	n := len(objs)
	if n == 0 {
		return
	}
	e := pl.engine
	e.invoked[pl.id].Add(int64(n))
	if e.done != nil {
		// One check per batch: a batch is one round trip, so per-object
		// sampling buys nothing here.
		e.checkCanceled()
	}
	var known []bool
	if e.policy == ChargeDistinct {
		if cap(pl.lookGrades) < n {
			pl.lookGrades = make([]byte, n)
			pl.lookKnown = make([]bool, n)
		}
		grades := pl.lookGrades[:n]
		known = pl.lookKnown[:n]
		e.board.LookupProbes(pl.id, objs, grades, known)
		for k := range known {
			if known[k] {
				dst[k] = uint32(grades[k])
			}
		}
	}
	if cap(pl.postObjs) < n {
		pl.postObjs = make([]int, 0, n)
		pl.postGrades = make([]byte, 0, n)
	}
	postObjs, postGrades := pl.postObjs[:0], pl.postGrades[:0]
	for k, o := range objs {
		if known != nil && known[k] {
			continue
		}
		if e.hook != nil {
			e.hook(pl.id)
		}
		v := e.inst.Grade(pl.id, o)
		if e.noise != nil {
			v = e.noise(pl.id, o, v, pl.noiseRand)
		}
		dst[k] = uint32(v)
		postObjs = append(postObjs, o)
		postGrades = append(postGrades, v)
	}
	if len(postObjs) > 0 {
		// One charge update for the batch: totals match the per-object
		// path exactly, and charges are only read between phases.
		e.charged[pl.id].Add(int64(len(postObjs)))
		e.board.PostProbes(pl.id, postObjs, postGrades)
	}
}

// Charged returns the probes charged to this player so far.
func (pl *Player) Charged() int64 { return pl.engine.Charged(pl.id) }

// FlipNoise returns a NoiseFunc that flips each probe result
// independently with probability p.
func FlipNoise(p float64) NoiseFunc {
	return func(_, _ int, truth byte, r *rng.Rand) byte {
		if r.Float64() < p {
			return 1 - truth
		}
		return truth
	}
}

// StuckNoise returns a NoiseFunc where each afflicted player (chosen by
// the predicate) always observes the constant grade v — modelling a
// broken sensor from the paper's motivation.
func StuckNoise(afflicted func(player int) bool, v byte) NoiseFunc {
	return func(player, _ int, truth byte, _ *rng.Rand) byte {
		if afflicted(player) {
			return v
		}
		return truth
	}
}
