// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The simulator needs two properties the standard library does not give
// us directly:
//
//  1. Splittability: every player, every algorithm phase, and the shared
//     "public coin" each need an independent stream, and the streams must
//     not depend on scheduling order, so that concurrent runs are
//     reproducible bit-for-bit from a single seed.
//  2. Cheap construction: simulations create tens of thousands of streams.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014): a 64-bit LCG state
// with a permuted 32-bit output. Streams are separated by the standard
// PCG stream-increment mechanism, with stream identifiers derived by
// hashing a label path (SplitMix64 finalizer), so Split("player", 17)
// is independent of Split("partition", 3) regardless of call order.
package rng

import "math/bits"

const (
	pcgMult = 6364136223846793005
	// splitMix64 constants (Steele et al.).
	smGamma = 0x9e3779b97f4a7c15
	smMixA  = 0xbf58476d1ce4e5b9
	smMixB  = 0x94d049bb133111eb
)

// mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * smMixA
	z = (z ^ (z >> 27)) * smMixB
	return z ^ (z >> 31)
}

// Rand is a PCG-XSH-RR 64/32 generator. The zero value is NOT valid;
// construct with New or Split.
type Rand struct {
	state uint64
	inc   uint64 // stream increment; must be odd
}

// New returns a generator seeded from seed on the default stream.
func New(seed uint64) *Rand {
	return newStream(seed, smGamma)
}

// newStream builds a generator from a seed and a stream identifier.
func newStream(seed, stream uint64) *Rand {
	r := &Rand{inc: stream<<1 | 1}
	r.state = r.inc + mix64(seed+smGamma)
	r.Uint32()
	return r
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded generation.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint32(n)
	if int(bound) != n {
		// n does not fit in 32 bits; fall back to 64-bit rejection.
		mask := ^uint64(0) >> bits.LeadingZeros64(uint64(n-1)|1)
		for {
			v := r.Uint64() & mask
			if v < uint64(n) {
				return int(v)
			}
		}
	}
	m := uint64(r.Uint32()) * uint64(bound)
	low := uint32(m)
	if low < bound {
		threshold := -bound % bound
		for low < threshold {
			m = uint64(r.Uint32()) * uint64(bound)
			low = uint32(m)
		}
	}
	return int(m >> 32)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random bit.
func (r *Rand) Bool() bool {
	return r.Uint32()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Source is a seed from which independent child streams are derived by
// labeled splitting. It is immutable and safe for concurrent use.
type Source struct {
	key uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) Source {
	return Source{key: mix64(seed ^ smGamma)}
}

// hashLabel folds a string label into a 64-bit key.
func hashLabel(key uint64, label string) uint64 {
	h := key
	for i := 0; i < len(label); i++ {
		h = mix64(h ^ uint64(label[i])*smGamma)
	}
	return h
}

// Child derives an independent sub-source for the given label and index.
// Child is deterministic: the same (label, idx) path always yields the
// same stream, independent of any other derivation.
func (s Source) Child(label string, idx int) Source {
	return Source{key: mix64(hashLabel(s.key, label) + smGamma*uint64(idx+1))}
}

// Rand materializes a generator for this source.
func (s Source) Rand() *Rand {
	return newStream(s.key, mix64(s.key+1))
}

// Stream is shorthand for s.Child(label, idx).Rand().
func (s Source) Stream(label string, idx int) *Rand {
	return s.Child(label, idx).Rand()
}
