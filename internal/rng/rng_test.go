package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnLarge(t *testing.T) {
	r := New(9)
	n := int(1) << 40
	for i := 0; i < 100; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(2^40) = %d out of range", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square over 8 buckets; generous threshold so the test is
	// robust while still catching broken generators.
	r := New(1234)
	const buckets, samples = 8, 80000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[r.Intn(buckets)]++
	}
	expect := float64(samples) / buckets
	var chi2 float64
	for _, c := range count {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 7 degrees of freedom; p=0.001 critical value is ~24.3.
	if chi2 > 24.3 {
		t.Fatalf("chi2 = %v too large: %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	const nSamp = 10000
	for i := 0; i < nSamp; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / nSamp; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(11)
	n := 50
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
	seen := make([]bool, n)
	for _, v := range a {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestSourceChildIndependence(t *testing.T) {
	s := NewSource(99)
	a := s.Stream("player", 0)
	b := s.Stream("player", 1)
	c := s.Stream("partition", 0)
	va, vb, vc := a.Uint64(), b.Uint64(), c.Uint64()
	if va == vb || va == vc || vb == vc {
		t.Fatalf("child streams collide: %x %x %x", va, vb, vc)
	}
}

func TestSourceChildDeterministic(t *testing.T) {
	s := NewSource(99)
	// Derivation must not depend on order of other derivations.
	_ = s.Stream("noise", 5)
	a := s.Stream("player", 7).Uint64()
	b := NewSource(99).Stream("player", 7).Uint64()
	if a != b {
		t.Fatalf("labeled derivation is order-dependent: %x vs %x", a, b)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(21)
	trues := 0
	const nSamp = 20000
	for i := 0; i < nSamp; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < nSamp*45/100 || trues > nSamp*55/100 {
		t.Fatalf("Bool heavily biased: %d/%d", trues, nSamp)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
