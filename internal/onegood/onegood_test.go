package onegood

import (
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

func setup(t testing.TB, in *prefs.Instance, seed uint64) (*probe.Engine, *sim.Runner, rng.Source) {
	t.Helper()
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(seed))
	return e, sim.NewRunner(0), rng.NewSource(seed + 1)
}

func TestRunFindsLikedObjects(t *testing.T) {
	in := prefs.SharedLikes(128, 1024, 0.5, 4, 4, 1)
	e, runner, src := setup(t, in, 2)
	res := Run(e, runner, src, 0)
	comm := in.Communities[0].Members
	if !res.AllFound(comm) {
		t.Fatalf("%d community members unsatisfied", res.Unsatisfied)
	}
	// every reported find must actually be liked
	for p := 0; p < in.N; p++ {
		if res.Liked[p] >= 0 && in.Grade(p, res.Liked[p]) != 1 {
			t.Fatalf("player %d 'found' a disliked object %d", p, res.Liked[p])
		}
		if (res.FoundAt[p] == 0) != (res.Liked[p] < 0) {
			t.Fatalf("player %d inconsistent found state", p)
		}
	}
}

func TestRunPropagationBeatsRandom(t *testing.T) {
	// With a tiny liked set (4 of 2048 objects), random probing needs
	// ~m/L = 512 probes per member; recommendation propagation should
	// satisfy the whole community in far fewer rounds.
	in := prefs.SharedLikes(256, 2048, 0.5, 4, 4, 3)
	comm := in.Communities[0].Members

	e1, r1, s1 := setup(t, in, 4)
	rec := Run(e1, r1, s1, 0)
	if !rec.AllFound(comm) {
		t.Fatal("recommendation algorithm left members unsatisfied")
	}
	e2, r2, s2 := setup(t, in, 5)
	rnd := RandomOnly(e2, r2, s2, 0)
	if !rnd.AllFound(comm) {
		t.Fatal("random-only left members unsatisfied (should finish within m)")
	}
	recRounds := rec.RoundsToCover(comm)
	rndRounds := rnd.RoundsToCover(comm)
	if recRounds*4 > rndRounds {
		t.Fatalf("propagation not clearly faster: %d vs %d rounds", recRounds, rndRounds)
	}
	// [4]'s guarantee covers the players sharing a liked object; each
	// member's probe count equals its finish round. Outsiders chasing
	// others' recommendations gain nothing (and are charged for it), so
	// they are excluded — that asymmetry is the theorem's content.
	sum := func(r Result) int {
		s := 0
		for _, p := range comm {
			s += r.FoundAt[p]
		}
		return s
	}
	if 4*sum(rec) > sum(rnd) {
		t.Fatalf("community probes %d not well below random %d", sum(rec), sum(rnd))
	}
}

func TestRunAllZeroPlayerNeverSatisfied(t *testing.T) {
	// Outsiders with zero liked objects can never succeed; the run must
	// terminate anyway.
	in := prefs.SharedLikes(32, 256, 0.5, 2, 0, 6)
	e, runner, src := setup(t, in, 7)
	res := Run(e, runner, src, 300)
	if res.Unsatisfied != 16 {
		t.Fatalf("unsatisfied = %d, want the 16 all-zero outsiders", res.Unsatisfied)
	}
	if !res.AllFound(in.Communities[0].Members) {
		t.Fatal("community members should all succeed")
	}
}

func TestRunMaxRoundsRespected(t *testing.T) {
	in := prefs.SharedLikes(16, 4096, 0.5, 1, 0, 8)
	e, runner, src := setup(t, in, 9)
	res := Run(e, runner, src, 3)
	if res.Rounds > 3 {
		t.Fatalf("ran %d rounds with cap 3", res.Rounds)
	}
}

func TestRunDeterministic(t *testing.T) {
	in := prefs.SharedLikes(64, 512, 0.5, 3, 3, 10)
	run := func() Result {
		e, runner, src := setup(t, in, 11)
		return Run(e, runner, src, 0)
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.TotalProbes != b.TotalProbes {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Rounds, b.Rounds)
	}
	for p := range a.FoundAt {
		if a.FoundAt[p] != b.FoundAt[p] {
			t.Fatalf("player %d found at %d vs %d", p, a.FoundAt[p], b.FoundAt[p])
		}
	}
}

func TestRandomOnlyFindsEverything(t *testing.T) {
	in := prefs.SharedLikes(32, 512, 0.5, 8, 8, 12)
	e, runner, src := setup(t, in, 13)
	res := RandomOnly(e, runner, src, 0)
	if res.Unsatisfied != 0 {
		t.Fatalf("%d unsatisfied with full budget", res.Unsatisfied)
	}
	for p := 0; p < in.N; p++ {
		if in.Grade(p, res.Liked[p]) != 1 {
			t.Fatalf("player %d found disliked object", p)
		}
	}
}

func TestSharedLikesInstanceShape(t *testing.T) {
	in := prefs.SharedLikes(50, 200, 0.4, 5, 3, 14)
	c := in.Communities[0]
	if len(c.Members) != 20 {
		t.Fatalf("community size %d", len(c.Members))
	}
	for _, p := range c.Members {
		if in.Truth[p].OnesCount() != 5 {
			t.Fatalf("member %d likes %d objects, want 5", p, in.Truth[p].OnesCount())
		}
		if !in.Truth[p].Equal(c.Center) {
			t.Fatal("member vector differs from center")
		}
	}
	inComm := map[int]bool{}
	for _, p := range c.Members {
		inComm[p] = true
	}
	for p := 0; p < in.N; p++ {
		if !inComm[p] && in.Truth[p].OnesCount() != 3 {
			t.Fatalf("outsider %d likes %d objects, want 3", p, in.Truth[p].OnesCount())
		}
	}
}

func BenchmarkE15OneGood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.SharedLikes(256, 2048, 0.5, 4, 4, uint64(i))
		board := billboard.New(in.N, in.M)
		e := probe.NewEngine(in, board, rng.NewSource(uint64(i)+1))
		_ = Run(e, sim.NewRunner(0), rng.NewSource(uint64(i)+2), 0)
	}
}
