// Package onegood implements the one-good-object algorithm of the
// paper's reference [4] (B. Awerbuch, B. Patt-Shamir, D. Peleg,
// M. Tuttle, "Improved recommendation systems", SODA 2005).
//
// The objective is weaker than the main paper's: each player only needs
// to find ONE object it likes (grade 1), not its whole preference
// vector. [4] shows a very simple combinatorial algorithm achieves this
// with O(m + n·log|P|) total probes for any player set P sharing a
// commonly-liked object, with no assumptions on the preference matrix —
// the qualitative precursor of the main paper's result.
//
// The algorithm alternates two kinds of probes per round, chosen by a
// fair coin per player:
//
//   - explore: probe a uniformly random not-yet-probed object;
//   - exploit: pick a random recommendation from the billboard (an
//     object some player announced liking) and probe it.
//
// A player that finds a liked object posts it as a recommendation and
// stops probing. Within a community sharing liked objects, a single
// discovery propagates in O(log |P|) rounds (each satisfied member's
// recommendation converts others), while explore probes cover the
// object space at rate n per round — giving the O(m/n + log n) rounds
// ≈ O(m + n log n) total probes of [4].
package onegood

import (
	"tellme/internal/ints"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// recTopic is the billboard topic recommendations are posted under.
const recTopic = "onegood/recs"

// Result reports one run.
type Result struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// FoundAt[p] is the round (1-based) at which player p found a liked
	// object, or 0 if it never did.
	FoundAt []int
	// Liked[p] is the liked object player p found (-1 if none).
	Liked []int
	// TotalProbes sums probes over all players.
	TotalProbes int64
	// Unsatisfied is the number of players that never found a liked
	// object (players whose vector is all zeros can never succeed).
	Unsatisfied int
}

// AllFound reports whether every player in the given set succeeded.
func (r Result) AllFound(players []int) bool {
	for _, p := range players {
		if r.FoundAt[p] == 0 {
			return false
		}
	}
	return true
}

// RoundsToCover returns the first round by which every player in the
// set had succeeded, or 0 if some never did.
func (r Result) RoundsToCover(players []int) int {
	worst := 0
	for _, p := range players {
		if r.FoundAt[p] == 0 {
			return 0
		}
		if r.FoundAt[p] > worst {
			worst = r.FoundAt[p]
		}
	}
	return worst
}

// Run executes the randomized recommendation algorithm for at most
// maxRounds synchronous rounds (0 means 4·m, enough for any satisfiable
// player to finish w.h.p.).
func Run(e *probe.Engine, runner *sim.Runner, src rng.Source, maxRounds int) Result {
	in := e.Instance()
	n, m := in.N, in.M
	if maxRounds <= 0 {
		maxRounds = 4 * m
	}
	res := Result{
		FoundAt: make([]int, n),
		Liked:   make([]int, n),
	}
	for p := range res.Liked {
		res.Liked[p] = -1
	}

	rands := make([]*rng.Rand, n)
	probed := make([]map[int]bool, n)
	for p := 0; p < n; p++ {
		rands[p] = src.Stream("onegood", p)
		probed[p] = make(map[int]bool, 16)
	}

	var active []int
	for p := 0; p < n; p++ {
		active = append(active, p)
	}

	for round := 1; round <= maxRounds && len(active) > 0; round++ {
		// Snapshot current recommendations once per round (a billboard
		// read is free and identical for all players).
		recPostings := e.Board().ValuePostings(recTopic)
		recs := make([]int, len(recPostings))
		for i, rp := range recPostings {
			recs[i] = int(rp.Vals[0])
		}

		found := make([]int, len(active)) // -1 or found object
		sim.MustPhase(runner, seq(len(active)), func(i int) {
			p := active[i]
			r := rands[p]
			pl := e.Player(p)
			found[i] = -1

			var obj int
			if len(recs) > 0 && r.Bool() {
				obj = recs[r.Intn(len(recs))] // exploit a recommendation
			} else {
				obj = r.Intn(m) // explore
			}
			if probed[p][obj] {
				// Re-probing wastes the round (as in [4]'s analysis, a
				// constant-factor loss); pick a fresh random object.
				obj = r.Intn(m)
			}
			probed[p][obj] = true
			if pl.Probe(obj) == 1 {
				found[i] = obj
			}
		})

		// Post discoveries and retire satisfied players.
		next := active[:0]
		for i, p := range active {
			if found[i] >= 0 {
				res.FoundAt[p] = round
				res.Liked[p] = found[i]
				e.Board().PostValues(recTopic, p, []uint32{uint32(found[i])})
			} else {
				next = append(next, p)
			}
		}
		active = next
		res.Rounds = round
	}
	res.Unsatisfied = len(active)
	for p := 0; p < n; p++ {
		res.TotalProbes += e.Charged(p)
	}
	e.Board().DropTopic(recTopic)
	return res
}

// RandomOnly is the strawman comparator: pure random probing with no
// recommendation sharing. Expected probes per player are m/L for L
// liked objects, i.e. Θ(n·m/L) total — the polynomial overhead [4]
// eliminates.
func RandomOnly(e *probe.Engine, runner *sim.Runner, src rng.Source, maxRounds int) Result {
	in := e.Instance()
	n, m := in.N, in.M
	if maxRounds <= 0 {
		maxRounds = 4 * m
	}
	res := Result{
		FoundAt: make([]int, n),
		Liked:   make([]int, n),
	}
	for p := range res.Liked {
		res.Liked[p] = -1
	}
	sim.MustPhaseAll(runner, n, func(p int) {
		r := src.Stream("rand-only", p)
		pl := e.Player(p)
		perm := r.Perm(m)
		for round := 1; round <= maxRounds && round <= m; round++ {
			if pl.Probe(perm[round-1]) == 1 {
				res.FoundAt[p] = round
				res.Liked[p] = perm[round-1]
				return
			}
		}
	})
	for p := 0; p < n; p++ {
		if res.FoundAt[p] > res.Rounds {
			res.Rounds = res.FoundAt[p]
		}
		if res.FoundAt[p] == 0 {
			res.Unsatisfied++
		}
		res.TotalProbes += e.Charged(p)
	}
	return res
}

func seq(n int) []int {
	return ints.Iota(n)
}
