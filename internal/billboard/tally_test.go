package billboard

import (
	"reflect"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// The parallel rebuild path must be invisible: for any posting set, the
// chunked tally must equal the serial tally exactly (same groups, same
// counts, same sorted voters, same order).

func randomPostings(t *testing.T, n, width, distinct int) []Posting {
	t.Helper()
	r := rng.New(7)
	base := make([]bitvec.Partial, distinct)
	for i := range base {
		v := bitvec.New(width)
		for j := 0; j < width; j++ {
			v.Set(j, byte(r.Intn(2)))
		}
		p := bitvec.PartialOf(v)
		if i%3 == 1 && width > 0 {
			p.SetUnknown(r.Intn(width))
		}
		base[i] = p
	}
	out := make([]Posting, n)
	for i := range out {
		out[i] = Posting{Player: i, Vec: base[r.Intn(distinct)]}
	}
	return out
}

func withTallyWorkers(t *testing.T, w int) {
	t.Helper()
	old := tallyWorkersOverride
	tallyWorkersOverride = w
	t.Cleanup(func() { tallyWorkersOverride = old })
}

func TestParallelTallyVotesMatchesSerial(t *testing.T) {
	for _, n := range []int{tallyParallelThreshold, 3*tallyParallelThreshold + 17} {
		postings := randomPostings(t, n, 50, 9)
		withTallyWorkers(t, 1)
		want := tallyVotes(postings)
		for _, w := range []int{2, 3, 8} {
			withTallyWorkers(t, w)
			got := tallyVotes(postings)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d workers=%d: parallel tally differs from serial", n, w)
			}
		}
	}
}

func TestParallelTallyValueVotesMatchesSerial(t *testing.T) {
	r := rng.New(11)
	n := 2*tallyParallelThreshold + 5
	values := make([]ValuePosting, n)
	for i := range values {
		vals := make([]uint32, 12)
		for j := range vals {
			vals[j] = uint32(r.Intn(3))
		}
		values[i] = ValuePosting{Player: i, Vals: vals}
	}
	withTallyWorkers(t, 1)
	want := tallyValueVotes(values)
	for _, w := range []int{2, 5} {
		withTallyWorkers(t, w)
		got := tallyValueVotes(values)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel value tally differs from serial", w)
		}
	}
}

// The board-level oracle from cache_test.go, re-run with the parallel
// path forced on: cached Votes must still equal a fresh tally.
func TestVotesCacheOracleParallelPath(t *testing.T) {
	withTallyWorkers(t, 4)
	b := New(2*tallyParallelThreshold, 40)
	postings := randomPostings(t, tallyParallelThreshold+100, 40, 6)
	for _, p := range postings {
		b.Post("t", p.Player, p.Vec)
	}
	got := b.Votes("t")
	want := tallyVotes(b.Postings("t"))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached votes differ from fresh tally on parallel path")
	}
	again := b.Votes("t")
	if &got[0] != &again[0] {
		t.Fatal("second Votes at same epoch recomputed the tally")
	}
}

// ProbeTally must agree with the ForEachProbe walk it replaces.
func TestProbeTallyMatchesForEachProbe(t *testing.T) {
	const n, m = 37, 130
	b := New(n, m)
	r := rng.New(3)
	for p := 0; p < n; p++ {
		for _, o := range r.Perm(m)[:r.Intn(m)] {
			b.PostProbe(p, o, byte(r.Intn(2)))
		}
	}
	wantOnes := make([]int, m)
	wantTotal := make([]int, m)
	for p := 0; p < n; p++ {
		b.ForEachProbe(p, func(o int, v byte) {
			wantTotal[o]++
			if v == 1 {
				wantOnes[o]++
			}
		})
	}
	ones, total := b.ProbeTally(nil, nil)
	if !reflect.DeepEqual(ones, wantOnes) || !reflect.DeepEqual(total, wantTotal) {
		t.Fatal("ProbeTally differs from ForEachProbe tally")
	}
	// Buffer-reuse contract: capacious buffers are reused in place.
	o2, t2 := b.ProbeTally(ones, total)
	if &o2[0] != &ones[0] || &t2[0] != &total[0] {
		t.Fatal("ProbeTally reallocated despite sufficient capacity")
	}
}
