package billboard

import (
	"bytes"
	"strings"
	"testing"

	"tellme/internal/bitvec"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	b := New(4, 16)
	b.PostProbe(0, 3, 1)
	b.PostProbe(0, 7, 0)
	b.PostProbe(2, 3, 1)
	p, _ := bitvec.PartialFromString("01?1")
	b.Post("vecs", 1, p)
	b.PostVector("vecs", 2, mustParse(t, "0101"))
	b.PostValues("vals", 3, []uint32{7, 8, 9})

	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 4 || got.M() != 16 {
		t.Fatalf("dims %dx%d", got.N(), got.M())
	}
	if v, ok := got.LookupProbe(0, 3); !ok || v != 1 {
		t.Fatal("probe (0,3) lost")
	}
	if v, ok := got.LookupProbe(0, 7); !ok || v != 0 {
		t.Fatal("probe (0,7) lost")
	}
	if got.ProbeCount() != 3 {
		t.Fatalf("ProbeCount %d", got.ProbeCount())
	}
	vecs := got.Postings("vecs")
	if len(vecs) != 2 {
		t.Fatalf("%d vector postings", len(vecs))
	}
	foundPartial := false
	for _, po := range vecs {
		if po.Player == 1 && po.Vec.Equal(p) {
			foundPartial = true
		}
	}
	if !foundPartial {
		t.Fatal("partial posting lost")
	}
	vals := got.ValuePostings("vals")
	if len(vals) != 1 || vals[0].Vals[2] != 9 {
		t.Fatalf("value postings: %+v", vals)
	}
}

func TestRestoreRejectsInvalid(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"n":0,"m":4}`,
		`{"n":2,"m":4,"probes":[[{"o":9,"g":1}]]}`,
		`{"n":2,"m":4,"probes":[[{"o":0,"g":5}]]}`,
		`{"n":1,"m":4,"probes":[[],[]]}`,
		`{"n":1,"m":2,"topics":{"t":{"vectors":[{"player":0,"bits":"0x"}]}}}`,
	}
	for i, c := range cases {
		if _, err := Restore(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestSnapshotEmptyBoard(t *testing.T) {
	b := New(2, 2)
	var buf bytes.Buffer
	if err := b.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProbeCount() != 0 || got.TopicCount() != 0 {
		t.Fatal("empty board restored non-empty")
	}
}

func mustParse(t *testing.T, s string) bitvec.Vector {
	t.Helper()
	v, err := bitvec.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
