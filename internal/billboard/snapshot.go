package billboard

// Board state snapshot/restore, so a long-running billboard service
// (cmd/billboard) can survive restarts without losing posted probes and
// vectors. JSON format: greppable and versioned by shape.

import (
	"encoding/json"
	"fmt"
	"io"

	"tellme/internal/bitvec"
)

type snapshotJSON struct {
	N      int                 `json:"n"`
	M      int                 `json:"m"`
	Probes [][]snapObjGrade    `json:"probes"` // indexed by player
	Topics map[string]snapshot `json:"topics"`
}

type snapObjGrade struct {
	O int  `json:"o"`
	G byte `json:"g"`
}

type snapshot struct {
	Vectors []snapVec `json:"vectors,omitempty"`
	Values  []snapVal `json:"values,omitempty"`
}

type snapVec struct {
	Player int    `json:"player"`
	Bits   string `json:"bits"`
}

type snapVal struct {
	Player int      `json:"player"`
	Vals   []uint32 `json:"vals"`
}

// Snapshot serializes the board's full state (probe postings and topic
// postings) as JSON. Concurrent posting during a snapshot yields some
// consistent-prefix state; quiesce the board for an exact image.
func (b *Board) Snapshot(w io.Writer) error {
	doc := snapshotJSON{N: b.n, M: b.m, Topics: map[string]snapshot{}}
	doc.Probes = make([][]snapObjGrade, b.n)
	for p := 0; p < b.n; p++ {
		// ForEachProbe iterates in ascending object order, so snapshots
		// of the same state are byte-identical.
		b.ForEachProbe(p, func(o int, g byte) {
			doc.Probes[p] = append(doc.Probes[p], snapObjGrade{O: o, G: g})
		})
	}
	b.mu.RLock()
	names := make([]string, 0, len(b.topics))
	for name := range b.topics {
		names = append(names, name)
	}
	b.mu.RUnlock()
	for _, name := range names {
		var t snapshot
		for _, po := range b.Postings(name) {
			t.Vectors = append(t.Vectors, snapVec{Player: po.Player, Bits: po.Vec.String()})
		}
		for _, po := range b.ValuePostings(name) {
			t.Values = append(t.Values, snapVal{Player: po.Player, Vals: po.Vals})
		}
		doc.Topics[name] = t
	}
	return json.NewEncoder(w).Encode(doc)
}

// Restore builds a Board from a Snapshot.
func Restore(r io.Reader) (*Board, error) {
	var doc snapshotJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("billboard: snapshot: %w", err)
	}
	if doc.N <= 0 || doc.M <= 0 {
		return nil, fmt.Errorf("billboard: snapshot has invalid dims %dx%d", doc.N, doc.M)
	}
	if len(doc.Probes) > doc.N {
		return nil, fmt.Errorf("billboard: snapshot has %d probe rows for %d players", len(doc.Probes), doc.N)
	}
	b := New(doc.N, doc.M)
	for p, row := range doc.Probes {
		for _, og := range row {
			if og.O < 0 || og.O >= doc.M || og.G > 1 {
				return nil, fmt.Errorf("billboard: snapshot probe (%d,%d,%d) invalid", p, og.O, og.G)
			}
			b.PostProbe(p, og.O, og.G)
		}
	}
	for name, t := range doc.Topics {
		for _, v := range t.Vectors {
			vec, err := bitvec.PartialFromString(v.Bits)
			if err != nil {
				return nil, fmt.Errorf("billboard: snapshot topic %q: %w", name, err)
			}
			b.Post(name, v.Player, vec)
		}
		for _, v := range t.Values {
			b.PostValues(name, v.Player, v.Vals)
		}
	}
	return b, nil
}
