package billboard

import (
	"sync"
	"testing"

	"tellme/internal/bitvec"
)

// Stress tests for the lock-free probe shards and the epoch-cached
// tallies. They assert invariants under real interleavings and are
// primarily aimed at `go test -race` (the Makefile's verify target).

// TestStressPostVotesDropTopic interleaves posters, tally readers, and
// topic droppers. Readers only check internal consistency (a tally is
// some consistent snapshot); the final tally must reflect every post
// that happened after the last drop.
func TestStressPostVotesDropTopic(t *testing.T) {
	b := New(64, 8)
	vecs := make([]bitvec.Partial, 4)
	for i := range vecs {
		v := bitvec.New(8)
		for o := 0; o < 8; o++ {
			v.Set(o, byte((i>>uint(o%2))&1))
		}
		vecs[i] = bitvec.PartialOf(v)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: every observed tally must be internally consistent.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				total := 0
				for _, v := range b.Votes("hot") {
					if v.Count != len(v.Voters) {
						t.Errorf("vote count %d != %d voters", v.Count, len(v.Voters))
						return
					}
					total += v.Count
				}
				_ = total
				b.PopularVectors("hot", 2)
			}
		}()
	}
	// A dropper churns an unrelated topic while "hot" stays live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			b.Post("churn", i%64, vecs[i%len(vecs)])
			b.DropTopic("churn")
		}
	}()
	// Posters.
	const posters, perPoster = 8, 50
	var post sync.WaitGroup
	for g := 0; g < posters; g++ {
		post.Add(1)
		go func(g int) {
			defer post.Done()
			for i := 0; i < perPoster; i++ {
				b.Post("hot", (g*perPoster+i)%64, vecs[(g+i)%len(vecs)])
			}
		}(g)
	}
	post.Wait()
	close(stop)
	wg.Wait()

	got := 0
	for _, v := range b.Votes("hot") {
		got += v.Count
	}
	if got != posters*perPoster {
		t.Fatalf("final tally covers %d posts, want %d", got, posters*perPoster)
	}
	if b.VectorPostCount() != posters*perPoster+200 {
		t.Fatalf("VectorPostCount = %d", b.VectorPostCount())
	}
}

// TestStressProbeShardSingleWriter runs the supported concurrency shape
// for one shard: exactly one writer posting probes for player p, with
// concurrent LookupProbe and ForEachProbe readers. Readers must only
// ever observe published (object, grade) pairs, and the final iteration
// must yield every post in ascending object order.
func TestStressProbeShardSingleWriter(t *testing.T) {
	const m = 1 << 12
	b := New(2, m)
	grade := func(o int) byte { return byte(o>>3) & 1 }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r%2 == 0 {
					last := -1
					b.ForEachProbe(0, func(o int, g byte) {
						if o <= last {
							t.Errorf("objects out of order: %d after %d", o, last)
						}
						last = o
						if g != grade(o) {
							t.Errorf("object %d: grade %d, want %d", o, g, grade(o))
						}
					})
				} else {
					o := r * 97 % m
					if g, ok := b.LookupProbe(0, o); ok && g != grade(o) {
						t.Errorf("lookup %d: grade %d, want %d", o, g, grade(o))
					}
				}
			}
		}(r)
	}
	// The single writer for shard 0, posting odd objects then some
	// duplicates (which must stay no-ops).
	for o := 1; o < m; o += 2 {
		b.PostProbe(0, o, grade(o))
	}
	for o := 1; o < m; o += 64 {
		b.PostProbe(0, o, 1-grade(o)) // duplicate: first post must win
	}
	close(stop)
	wg.Wait()

	want := m / 2
	if got := b.ProbeCount(); got != int64(want) {
		t.Fatalf("ProbeCount = %d, want %d", got, want)
	}
	n := 0
	b.ForEachProbe(0, func(o int, g byte) {
		if o%2 != 1 {
			t.Fatalf("unexpected object %d", o)
		}
		if g != grade(o) {
			t.Fatalf("object %d: grade %d, want %d (duplicate overwrote)", o, g, grade(o))
		}
		n++
	})
	if n != want {
		t.Fatalf("ForEachProbe yielded %d objects, want %d", n, want)
	}
}

// TestStressProbeShardsParallelWriters exercises the full supported
// shape: every player writes its own shard concurrently (the phase
// runner's layout), with a reader sweeping all shards.
func TestStressProbeShardsParallelWriters(t *testing.T) {
	const n, m = 16, 512
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := p % 7; o < m; o += 3 {
				b.PostProbe(p, o, byte((p+o)&1))
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			for p := 0; p < n; p++ {
				b.ForEachProbe(p, func(o int, g byte) {
					if g != byte((p+o)&1) {
						t.Errorf("shard %d object %d: grade %d", p, o, g)
					}
				})
			}
		}
	}()
	wg.Wait()
	close(done)
	var total int64
	for p := 0; p < n; p++ {
		total += int64(len(b.ProbedObjects(p)))
	}
	if b.ProbeCount() != total {
		t.Fatalf("ProbeCount %d != summed shards %d", b.ProbeCount(), total)
	}
}
