// Package billboard implements the shared public billboard of the model:
// the only communication medium between players.
//
// The paper's model lets every player post the result of each probe and
// read everything others posted, for free. Algorithms additionally post
// intermediate output vectors (e.g. the recursive outputs of ZeroRadius)
// under named topics, and count votes over them.
//
// The board is safe for concurrent use: n player goroutines post and
// read simultaneously during each simulated phase. Probe results are
// sharded per player (a player's probe results are written only by that
// player's goroutine); topic postings use a two-level lock (board map,
// then per-topic).
package billboard

import (
	"sort"
	"sync"
	"sync/atomic"

	"tellme/internal/bitvec"
)

// Interface is the billboard surface the algorithms depend on. *Board
// is the in-memory implementation; netboard.Client speaks the same
// interface against a remote billboard server, so the same algorithm
// code runs in-process or distributed.
type Interface interface {
	// PostProbe records that player p's probe of object o revealed val.
	PostProbe(p, o int, val byte)
	// LookupProbe returns p's posted grade for o, if posted.
	LookupProbe(p, o int) (byte, bool)
	// ProbedObjects returns a copy of the object→grade map posted by p.
	ProbedObjects(p int) map[int]byte
	// ProbeCount returns the number of distinct probe results posted.
	ProbeCount() int64

	// Post publishes a partial vector by player under the named topic.
	Post(name string, player int, v bitvec.Partial)
	// PostVector publishes a total vector under the named topic.
	PostVector(name string, player int, v bitvec.Vector)
	// Postings returns a snapshot of the topic's vector postings.
	Postings(name string) []Posting
	// Votes tallies the topic's vector postings deterministically.
	Votes(name string) []Vote
	// PopularVectors returns vectors with at least minVotes supporters.
	PopularVectors(name string, minVotes int) []bitvec.Partial

	// PostValues publishes a generic value vector under the topic.
	PostValues(name string, player int, vals []uint32)
	// ValuePostings returns a snapshot of the topic's value postings.
	ValuePostings(name string) []ValuePosting
	// ValueVotes tallies the topic's value postings deterministically.
	ValueVotes(name string) []ValueVote

	// DropTopic removes a topic and its postings.
	DropTopic(name string)
	// TopicCount returns the number of live topics.
	TopicCount() int
	// VectorPostCount returns the total number of topic postings.
	VectorPostCount() int64
}

// Board is a shared billboard for n players and m objects.
type Board struct {
	n, m int

	probeShards []probeShard

	mu     sync.RWMutex
	topics map[string]*topic

	probePosts  atomic.Int64
	vectorPosts atomic.Int64
}

type probeShard struct {
	mu   sync.RWMutex
	vals map[int]byte // object -> grade
}

type topic struct {
	mu       sync.Mutex
	postings []Posting
	values   []ValuePosting
}

// Posting is one vector posted by one player under a topic.
type Posting struct {
	Player int
	Vec    bitvec.Partial
}

// Vote aggregates identical postings under a topic.
type Vote struct {
	Vec    bitvec.Partial
	Count  int
	Voters []int
}

// New returns an empty board for n players and m objects.
func New(n, m int) *Board {
	b := &Board{
		n: n, m: m,
		probeShards: make([]probeShard, n),
		topics:      make(map[string]*topic),
	}
	for i := range b.probeShards {
		b.probeShards[i].vals = make(map[int]byte)
	}
	return b
}

// N returns the number of players the board was created for.
func (b *Board) N() int { return b.n }

// M returns the number of objects the board was created for.
func (b *Board) M() int { return b.m }

// PostProbe records that player p's probe of object o revealed val.
func (b *Board) PostProbe(p, o int, val byte) {
	s := &b.probeShards[p]
	s.mu.Lock()
	if _, dup := s.vals[o]; !dup {
		s.vals[o] = val
		b.probePosts.Add(1)
	}
	s.mu.Unlock()
}

// LookupProbe returns player p's posted grade for object o, if posted.
func (b *Board) LookupProbe(p, o int) (byte, bool) {
	s := &b.probeShards[p]
	s.mu.RLock()
	v, ok := s.vals[o]
	s.mu.RUnlock()
	return v, ok
}

// ProbedObjects returns a copy of the object→grade map posted by p.
func (b *Board) ProbedObjects(p int) map[int]byte {
	s := &b.probeShards[p]
	s.mu.RLock()
	out := make(map[int]byte, len(s.vals))
	for o, v := range s.vals {
		out[o] = v
	}
	s.mu.RUnlock()
	return out
}

// ProbeCount returns the total number of distinct probe results posted.
func (b *Board) ProbeCount() int64 { return b.probePosts.Load() }

// VectorPostCount returns the total number of topic postings.
func (b *Board) VectorPostCount() int64 { return b.vectorPosts.Load() }

func (b *Board) topicFor(name string) *topic {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if ok {
		return t
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok = b.topics[name]; ok {
		return t
	}
	t = &topic{}
	b.topics[name] = t
	return t
}

// Post publishes a partial vector by player under the named topic.
func (b *Board) Post(name string, player int, v bitvec.Partial) {
	t := b.topicFor(name)
	t.mu.Lock()
	t.postings = append(t.postings, Posting{Player: player, Vec: v})
	t.mu.Unlock()
	b.vectorPosts.Add(1)
}

// PostVector publishes a total vector (lifted to a fully-known Partial).
func (b *Board) PostVector(name string, player int, v bitvec.Vector) {
	b.Post(name, player, bitvec.PartialOf(v))
}

// Postings returns a snapshot of everything posted under the topic, in
// posting order. The result is a copy; callers may not mutate vectors.
func (b *Board) Postings(name string) []Posting {
	t := b.topicFor(name)
	t.mu.Lock()
	out := append([]Posting(nil), t.postings...)
	t.mu.Unlock()
	return out
}

// Votes tallies the postings under a topic, grouping identical vectors.
// The result is sorted by descending count, ties broken by the vectors'
// lexicographic order, so it is deterministic regardless of posting
// order — every player computing Votes sees the same list, which the
// paper's vote-threshold steps require.
func (b *Board) Votes(name string) []Vote {
	postings := b.Postings(name)
	byKey := make(map[string]*Vote)
	for _, p := range postings {
		k := p.Vec.Key()
		v, ok := byKey[k]
		if !ok {
			v = &Vote{Vec: p.Vec}
			byKey[k] = v
		}
		v.Count++
		v.Voters = append(v.Voters, p.Player)
	}
	out := make([]Vote, 0, len(byKey))
	for _, v := range byKey {
		sort.Ints(v.Voters)
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Vec.Less(out[j].Vec)
	})
	return out
}

// PopularVectors returns the distinct vectors posted under the topic by
// at least minVotes players, in the deterministic order of Votes.
func (b *Board) PopularVectors(name string, minVotes int) []bitvec.Partial {
	var out []bitvec.Partial
	for _, v := range b.Votes(name) {
		if v.Count >= minVotes {
			out = append(out, v.Vec)
		}
	}
	return out
}

// DropTopic removes a topic and its postings, releasing memory for
// phases that are complete. Dropping an absent topic is a no-op.
func (b *Board) DropTopic(name string) {
	b.mu.Lock()
	delete(b.topics, name)
	b.mu.Unlock()
}

// TopicCount returns the number of live topics (for tests and stats).
func (b *Board) TopicCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.topics)
}

// ValuePosting is one generic value vector posted by one player. Value
// vectors arise when ZeroRadius runs over virtual objects whose "grades"
// are candidate indices rather than bits (Large Radius, Step 4).
type ValuePosting struct {
	Player int
	Vals   []uint32
}

// ValueVote aggregates identical value vectors under a topic.
type ValueVote struct {
	Vals   []uint32
	Count  int
	Voters []int
}

// PostValues publishes a generic value vector under the named topic.
// The slice is copied; callers may reuse it.
func (b *Board) PostValues(name string, player int, vals []uint32) {
	t := b.topicFor(name)
	cp := append([]uint32(nil), vals...)
	t.mu.Lock()
	t.values = append(t.values, ValuePosting{Player: player, Vals: cp})
	t.mu.Unlock()
	b.vectorPosts.Add(1)
}

// ValuePostings returns a snapshot of the value vectors posted under the
// topic, in posting order.
func (b *Board) ValuePostings(name string) []ValuePosting {
	t := b.topicFor(name)
	t.mu.Lock()
	out := append([]ValuePosting(nil), t.values...)
	t.mu.Unlock()
	return out
}

// ValueVotes tallies value-vector postings, sorted by descending count
// with ties broken by the vectors' lexicographic order (deterministic
// for every reader, like Votes).
func (b *Board) ValueVotes(name string) []ValueVote {
	postings := b.ValuePostings(name)
	byKey := make(map[string]*ValueVote)
	for _, p := range postings {
		k := valsKey(p.Vals)
		v, ok := byKey[k]
		if !ok {
			v = &ValueVote{Vals: p.Vals}
			byKey[k] = v
		}
		v.Count++
		v.Voters = append(v.Voters, p.Player)
	}
	out := make([]ValueVote, 0, len(byKey))
	for _, v := range byKey {
		sort.Ints(v.Voters)
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessVals(out[i].Vals, out[j].Vals)
	})
	return out
}

func valsKey(vals []uint32) string {
	buf := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

func lessVals(a, b []uint32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

var _ Interface = (*Board)(nil)
