// Package billboard implements the shared public billboard of the model:
// the only communication medium between players.
//
// The paper's model lets every player post the result of each probe and
// read everything others posted, for free. Algorithms additionally post
// intermediate output vectors (e.g. the recursive outputs of ZeroRadius)
// under named topics, and count votes over them.
//
// # Concurrency model
//
// The board is safe for concurrent use: n player goroutines post and
// read simultaneously during each simulated phase.
//
// Probe results live in dense per-player shards: a packed value plane
// and a packed known plane of m bits each (the model's grades are
// binary; non-zero grades are stored as 1). A post sets the value bit
// before publishing the known bit, and both planes are accessed with
// atomic word operations, so shards need no lock at all: the atomic
// publish of the known bit is the happens-before edge a concurrent
// reader needs, and the model guarantees a player's probe results are
// written only by that player's goroutine. First post wins; duplicate
// posts of the same (player, object) pair are no-ops. The cost is Θ(m)
// bits per player up front instead of a sparse map that grows with the
// number of probes — see DESIGN.md for the trade-off threshold.
//
// Topic postings use a two-level lock (board map, then per-topic). Each
// topic carries an epoch counter, bumped under the topic lock on every
// post, and lazily caches its vote tally at a given epoch: Votes,
// ValueVotes and PopularVectors return the cached tally while the epoch
// is unchanged, so the n identical per-phase tallies of ZeroRadius and
// SmallRadius cost one tally instead of n. Cached tallies are immutable;
// callers must not modify the returned slices or the vectors inside.
package billboard

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/arena"
	"tellme/internal/bitvec"
	"tellme/internal/telemetry"
)

// Interface is the billboard surface the algorithms depend on. *Board
// is the in-memory implementation; netboard.Client speaks the same
// interface against a remote billboard server, so the same algorithm
// code runs in-process or distributed.
type Interface interface {
	// PostProbe records that player p's probe of object o revealed val.
	PostProbe(p, o int, val byte)
	// LookupProbe returns p's posted grade for o, if posted.
	LookupProbe(p, o int) (byte, bool)
	// ProbedObjects returns a copy of the object→grade map posted by p.
	ProbedObjects(p int) map[int]byte
	// ForEachProbe calls fn for every (object, grade) posted by p, in
	// ascending object order, without allocating.
	ForEachProbe(p int, fn func(o int, grade byte))
	// PostProbes records a batch of probe results for player p:
	// grades[k] is p's grade for objs[k]. Objects within one call must
	// be distinct. Equivalent to calling PostProbe per pair, but a
	// remote implementation ships the whole batch in one round trip.
	PostProbes(p int, objs []int, grades []byte)
	// LookupProbes looks up p's posted grades for objs, filling
	// grades[k] and known[k] per object (grades[k] is meaningful only
	// when known[k] is true). Equivalent to calling LookupProbe per
	// object, but batchable over a network transport.
	LookupProbes(p int, objs []int, grades []byte, known []bool)
	// ProbeCount returns the number of distinct probe results posted.
	ProbeCount() int64

	// Post publishes a partial vector by player under the named topic.
	Post(name string, player int, v bitvec.Partial)
	// PostVector publishes a total vector under the named topic.
	PostVector(name string, player int, v bitvec.Vector)
	// Postings returns a snapshot of the topic's vector postings.
	Postings(name string) []Posting
	// Votes tallies the topic's vector postings deterministically. The
	// result is shared and immutable; callers must not modify it.
	Votes(name string) []Vote
	// PopularVectors returns vectors with at least minVotes supporters.
	PopularVectors(name string, minVotes int) []bitvec.Partial

	// PostValues publishes a generic value vector under the topic.
	PostValues(name string, player int, vals []uint32)
	// ValuePostings returns a snapshot of the topic's value postings.
	ValuePostings(name string) []ValuePosting
	// ValueVotes tallies the topic's value postings deterministically.
	// The result is shared and immutable; callers must not modify it.
	ValueVotes(name string) []ValueVote

	// DropTopic removes a topic and its postings.
	DropTopic(name string)
	// TopicCount returns the number of live topics.
	TopicCount() int
	// VectorPostCount returns the total number of topic postings.
	VectorPostCount() int64
}

// Board is a shared billboard for n players and m objects.
type Board struct {
	n, m int

	probeShards []probeShard

	mu     sync.RWMutex
	topics map[string]*topic
	// Folded stats of dropped topics, guarded by mu; see topicStats.
	dropped      topicStats
	droppedPosts map[string]int64 // by topic kind
	// kindSeen tracks topic kinds already registered with the current
	// registry (guarded by mu), so topicFor touches the registry only
	// on the first topic of each kind, not on every creation.
	kindSeen map[string]bool

	probePosts  atomic.Int64
	vectorPosts atomic.Int64
	topicGen    atomic.Uint64

	// valPool recycles value-posting storage across dropped topics; its
	// own leaf lock keeps it acquirable from under mu and topic locks.
	valPool valPool

	tel boardTelemetry
}

// valPool recycles the storage behind a dropped topic's value postings —
// the valSlab backing blocks and the []ValuePosting array — into the
// next topics created on the board. The recursive algorithms churn
// through thousands of short-lived topics per run with one posting
// burst each; without recycling, that storage is the board's dominant
// allocation and GC-pressure source.
//
// Only the value side is recycled. Vector postings (and their Votes
// tallies) may legitimately be retained by callers across a DropTopic —
// Refresh tallies a topic and drops it before consuming the votes — so
// their storage is left to the garbage collector. Value-side snapshots
// (ValuePostings, ValueVotes) must not be read after their topic is
// dropped: the memory is reused, in keeping with DropTopic's "phases
// that are complete" contract.
//
// The pool is bounded (element counts below); beyond the caps, retiring
// storage falls through to the GC as before.
// Both sides are bucketed by floor-log2 size class: bucket c holds
// entries of size [2^c, 2^(c+1)), so a request of min elements is
// satisfied by any entry in bucket ceil-log2(min) or above, found in
// O(#buckets). Plain LIFO with a shallow scan was tried first and
// missed ~2/3 of requests once big and tiny blocks interleaved.
type valPool struct {
	mu      sync.Mutex
	blocks  [32][][]uint32 // retired valSlab blocks, LIFO per class
	blockEl int            // total elements across blocks
	arrays  [32][][]ValuePosting
	arrayEl int // total capacity across arrays
}

const (
	valPoolMaxBlockEl = 1 << 21 // 8 MiB of uint32 block storage
	valPoolMaxArrayEl = 1 << 17 // ~4 MiB of ValuePosting array storage
)

// sizeClass returns the bucket whose every entry has size ≥ n (for
// taking); put uses bits.Len(n)-1 so entries land where that holds.
func valPoolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// NextBlock implements arena.BlockSource for the topics' value slabs:
// it returns a retired block of at least min elements, or nil to let
// the slab allocate fresh.
func (p *valPool) NextBlock(min int) []uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := valPoolClass(min); c < len(p.blocks); c++ {
		if bucket := p.blocks[c]; len(bucket) > 0 {
			blk := bucket[len(bucket)-1]
			p.blocks[c] = bucket[:len(bucket)-1]
			p.blockEl -= len(blk)
			return blk
		}
	}
	return nil
}

// takeArray returns a retired posting array with capacity ≥ min
// (length reset to 0), or nil.
func (p *valPool) takeArray(min int) []ValuePosting {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := valPoolClass(min); c < len(p.arrays); c++ {
		if bucket := p.arrays[c]; len(bucket) > 0 {
			arr := bucket[len(bucket)-1]
			p.arrays[c] = bucket[:len(bucket)-1]
			p.arrayEl -= cap(arr)
			return arr[:0]
		}
	}
	return nil
}

// put retires a topic's value storage into the pool, dropping whatever
// exceeds the caps.
func (p *valPool) put(blocks [][]uint32, arr []ValuePosting) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, blk := range blocks {
		if len(blk) == 0 || p.blockEl+len(blk) > valPoolMaxBlockEl {
			continue
		}
		c := bits.Len(uint(len(blk))) - 1
		p.blocks[c] = append(p.blocks[c], blk)
		p.blockEl += len(blk)
	}
	if cap(arr) > 0 && p.arrayEl+cap(arr) <= valPoolMaxArrayEl {
		// Entries keep stale Vals pointers into the pooled blocks; both
		// sides are reused together, so nothing leaks past the caps.
		c := bits.Len(uint(cap(arr))) - 1
		p.arrays[c] = append(p.arrays[c], arr[:0])
		p.arrayEl += cap(arr)
	}
}

// boardTelemetry holds the board's resolved instruments. All fields are
// nil when telemetry is disabled; every instrument method is
// nil-receiver-safe, so the hot paths call them unconditionally.
type boardTelemetry struct {
	reg    *telemetry.Registry
	topics *telemetry.Gauge // live topic count
}

// SetTelemetry attaches a telemetry registry to the board (nil
// detaches; a previously attached registry keeps sampling the board).
// Every counter on the posting and tally paths is sampled at snapshot
// time from state the board already maintains — its own atomic post
// totals and the per-topic stats guarded by each topic lock — so the
// hot paths never touch a shared telemetry cache line. Call before the
// board is shared between goroutines.
func (b *Board) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		b.tel = boardTelemetry{}
		b.mu.Lock()
		b.kindSeen = nil
		b.mu.Unlock()
		return
	}
	b.tel = boardTelemetry{
		reg:    reg,
		topics: reg.Gauge("billboard.topics"),
	}
	reg.CounterFunc("billboard.probe.posts", b.ProbeCount)
	reg.CounterFunc("billboard.vector.posts", b.VectorPostCount)
	reg.CounterFunc("billboard.tally.cache_hits", func() int64 { return b.topicStatTotals().tallyHits })
	reg.CounterFunc("billboard.tally.rebuilds", func() int64 { return b.topicStatTotals().rebuilds })
	reg.CounterFunc("billboard.tally.rebuild_ns", func() int64 { return b.topicStatTotals().rebuildNs })
	reg.CounterFunc("billboard.tally.par_rebuilds", func() int64 { return b.topicStatTotals().parRebuilds })
	reg.CounterFunc("billboard.snapshot.unchanged", func() int64 { return b.topicStatTotals().snapUnch })
	b.tel.topics.Set(int64(b.TopicCount()))
	// Per-kind post counters for kinds already seen (live topics or
	// dropped-but-counted ones); later kinds register as their first
	// topic is created.
	kinds := make(map[string]bool)
	b.mu.Lock()
	for name := range b.topics {
		kinds[topicKind(name)] = true
	}
	for kind := range b.droppedPosts {
		kinds[kind] = true
	}
	b.kindSeen = kinds
	b.mu.Unlock()
	for kind := range kinds {
		b.registerKindFunc(reg, kind)
	}
}

// topicKind maps a topic name to its bounded-cardinality telemetry
// label: the prefix before the '#' sequence number of Env.freshTag
// ("zr#17" → "zr"), or the whole name when untagged.
func topicKind(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

// registerKindFunc exposes "billboard.posts.<kind>" as a sampled
// counter: the sum of postings over the kind's live topics plus the
// folded totals of dropped ones. Idempotent (re-registering installs an
// equivalent closure). Must be called without b.mu held — the closure
// read-locks it at snapshot time, and the registry lock is held around
// sampling, so taking them in the opposite order would deadlock.
func (b *Board) registerKindFunc(reg *telemetry.Registry, kind string) {
	reg.CounterFunc("billboard.posts."+kind, func() int64 {
		b.mu.RLock()
		defer b.mu.RUnlock()
		n := b.droppedPosts[kind]
		for name, t := range b.topics {
			if topicKind(name) != kind {
				continue
			}
			t.mu.Lock()
			n += t.stats.posts
			t.mu.Unlock()
		}
		return n
	})
}

// topicStatTotals sums the per-topic stats over live topics plus the
// folded totals of dropped ones.
func (b *Board) topicStatTotals() topicStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	tot := b.dropped
	for _, t := range b.topics {
		t.mu.Lock()
		tot.fold(t.stats)
		t.mu.Unlock()
	}
	return tot
}

// probeShard is one player's probe results as two packed bit planes.
// known[o] publishes that object o was probed; val[o] holds the grade.
// The value bit is set before the known bit, so any reader that
// observes known also observes the grade (atomic operations order the
// two stores).
type probeShard struct {
	val   []atomic.Uint64
	known []atomic.Uint64
}

// topic holds one topic's postings plus its lazily cached vote tallies.
// epoch counts mutations; votesAt/valVotesAt record the epoch at which
// the corresponding cached tally was computed (^0 = never). gen is a
// board-unique creation stamp, so a (gen, epoch) pair identifies topic
// content even across DropTopic + re-create (a recreated topic restarts
// at epoch 0 but gets a fresh gen, which keeps remote snapshot caches
// from mistaking it for the dropped one).
type topic struct {
	mu       sync.Mutex
	gen      uint64
	postings []Posting
	values   []ValuePosting
	// valSlab backs the copies PostValues makes: per-topic slab blocks
	// instead of one heap allocation per posting. Guarded by mu (a slab
	// is not concurrency-safe on its own); the memory is released
	// wholesale when the topic is dropped and its last reader lets go.
	valSlab arena.Slab[uint32]
	stats   topicStats // guarded by mu

	// retired marks a handle whose topic was dropped from the registry.
	// Name-based posting re-resolves when it finds the flag set, so a
	// post that lost the race with DropTopic/DropTopicIf lands in the
	// live registry instead of orphaned storage — the visibility
	// guarantee shard drains rely on. TopicRef-based posting ignores the
	// flag (refs must not outlive their phase; see TopicRef).
	retired bool

	epoch      uint64
	votesAt    uint64
	votes      []Vote
	valVotesAt uint64
	valVotes   []ValueVote
}

// rebuildVotes recomputes the vector-vote cache at the current epoch,
// charging stats. Caller holds t.mu.
func (t *topic) rebuildVotes() {
	start := time.Now()
	t.votes = tallyVotes(t.postings)
	t.votesAt = t.epoch
	t.stats.rebuilds++
	t.stats.rebuildNs += time.Since(start).Nanoseconds()
	if len(t.postings) >= tallyParallelThreshold && tallyWorkers() > 1 {
		t.stats.parRebuilds++
	}
}

// rebuildValVotes is rebuildVotes for value postings. Caller holds t.mu.
func (t *topic) rebuildValVotes() {
	start := time.Now()
	t.valVotes = tallyValueVotes(t.values)
	t.valVotesAt = t.epoch
	t.stats.rebuilds++
	t.stats.rebuildNs += time.Since(start).Nanoseconds()
	if len(t.values) >= tallyParallelThreshold && tallyWorkers() > 1 {
		t.stats.parRebuilds++
	}
}

// topicStats are the per-topic bookkeeping counts behind the board's
// sampled telemetry counters. Plain ints on purpose: the hot paths
// update them while already holding the topic lock exclusively, so
// counting adds no shared cache-line traffic; board-wide totals are
// summed only at telemetry snapshot time (and folded into
// Board.dropped when a topic is dropped, keeping the sampled counters
// monotone).
type topicStats struct {
	posts       int64 // vector + value postings
	tallyHits   int64 // Votes/ValueVotes served from the epoch cache
	rebuilds    int64 // tally rebuilds (cache invalidated by a post)
	rebuildNs   int64 // wall time spent in tally rebuilds
	parRebuilds int64 // rebuilds that took the parallel grouping path
	snapUnch    int64 // TopicSnapshot "unchanged" answers
}

func (s *topicStats) fold(o topicStats) {
	s.posts += o.posts
	s.tallyHits += o.tallyHits
	s.rebuilds += o.rebuilds
	s.rebuildNs += o.rebuildNs
	s.parRebuilds += o.parRebuilds
	s.snapUnch += o.snapUnch
}

const neverTallied = ^uint64(0)

// Posting is one vector posted by one player under a topic.
type Posting struct {
	Player int
	Vec    bitvec.Partial
}

// Vote aggregates identical postings under a topic.
type Vote struct {
	Vec    bitvec.Partial
	Count  int
	Voters []int
}

// New returns an empty board for n players and m objects.
func New(n, m int) *Board {
	words := (m + 63) / 64
	planes := make([]atomic.Uint64, 2*n*words)
	b := &Board{
		n: n, m: m,
		probeShards: make([]probeShard, n),
		topics:      make(map[string]*topic),
	}
	for i := range b.probeShards {
		b.probeShards[i].val = planes[2*i*words : (2*i+1)*words]
		b.probeShards[i].known = planes[(2*i+1)*words : (2*i+2)*words]
	}
	return b
}

// N returns the number of players the board was created for.
func (b *Board) N() int { return b.n }

// M returns the number of objects the board was created for.
func (b *Board) M() int { return b.m }

// PostProbe records that player p's probe of object o revealed val.
// Grades are binary; a non-zero val is stored as 1. The first post for
// a (player, object) pair wins; duplicates are no-ops.
func (b *Board) PostProbe(p, o int, val byte) {
	s := &b.probeShards[p]
	mask := uint64(1) << (uint(o) & 63)
	w := o >> 6
	if s.known[w].Load()&mask != 0 {
		return // duplicate
	}
	if val != 0 {
		s.val[w].Or(mask)
	}
	// The duplicate check above is authoritative: probe results for p are
	// posted only from p's goroutine (single-writer contract), so no other
	// writer can set the known bit between the Load and the Or. The Or's
	// return value is deliberately unused — consuming it makes the
	// compiler emit a CMPXCHG loop instead of a plain LOCK OR.
	s.known[w].Or(mask)
	b.probePosts.Add(1)
}

// LookupProbe returns player p's posted grade for object o, if posted.
func (b *Board) LookupProbe(p, o int) (byte, bool) {
	s := &b.probeShards[p]
	mask := uint64(1) << (uint(o) & 63)
	w := o >> 6
	if s.known[w].Load()&mask == 0 {
		return 0, false
	}
	if s.val[w].Load()&mask != 0 {
		return 1, true
	}
	return 0, true
}

// ForEachProbe calls fn for every (object, grade) posted by p, in
// ascending object order. It performs no allocation; fn must not post
// probes for p reentrantly.
func (b *Board) ForEachProbe(p int, fn func(o int, grade byte)) {
	s := &b.probeShards[p]
	for w := range s.known {
		k := s.known[w].Load()
		if k == 0 {
			continue
		}
		v := s.val[w].Load()
		base := w << 6
		for k != 0 {
			tz := bits.TrailingZeros64(k)
			o := base + tz
			g := byte(v >> uint(tz) & 1)
			fn(o, g)
			k &= k - 1
		}
	}
}

// ProbeTally tallies the probe planes column-wise: ones[o] counts the
// players whose posted grade for object o is 1 and total[o] the players
// with any posted grade for o, for every o < M(). ones and total are
// reused when they have capacity (pass nil to allocate). The shards are
// fed straight into a bit-plane set, so the tally runs word-parallel
// instead of bit-by-bit per player; the value plane is masked with the
// known plane so a concurrent half-published post (value bit stored,
// known bit not yet) never counts.
func (b *Board) ProbeTally(ones, total []int) ([]int, []int) {
	ps := bitvec.NewPlaneSet(b.m)
	w := bitvec.WordsFor(b.m)
	row := make([]uint64, 2*w)
	vr, kr := row[:w], row[w:]
	for p := range b.probeShards {
		s := &b.probeShards[p]
		for i := range kr {
			k := s.known[i].Load()
			kr[i] = k
			vr[i] = s.val[i].Load() & k
		}
		ps.AddBits(vr, kr)
	}
	return ps.TallyColumns(ones), ps.TallyKnown(total)
}

// ProbedObjects returns a copy of the object→grade map posted by p.
// Prefer ForEachProbe on hot paths; this allocates the map.
func (b *Board) ProbedObjects(p int) map[int]byte {
	out := make(map[int]byte)
	b.ForEachProbe(p, func(o int, g byte) { out[o] = g })
	return out
}

// PostProbes records a batch of probe results for player p; see
// Interface. On the in-memory board a batch is just a loop — the point
// of the batch entry is that netboard ships it as one request.
func (b *Board) PostProbes(p int, objs []int, grades []byte) {
	for k, o := range objs {
		b.PostProbe(p, o, grades[k])
	}
}

// LookupProbes fills grades/known with p's posted results for objs;
// see Interface.
func (b *Board) LookupProbes(p int, objs []int, grades []byte, known []bool) {
	for k, o := range objs {
		grades[k], known[k] = b.LookupProbe(p, o)
	}
}

// ProbeCount returns the total number of distinct probe results posted.
func (b *Board) ProbeCount() int64 { return b.probePosts.Load() }

// VectorPostCount returns the total number of topic postings.
func (b *Board) VectorPostCount() int64 { return b.vectorPosts.Load() }

func (b *Board) topicFor(name string) *topic {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	if ok {
		return t
	}
	b.mu.Lock()
	if t, ok = b.topics[name]; ok {
		b.mu.Unlock()
		return t
	}
	t = &topic{
		gen:        b.topicGen.Add(1),
		votesAt:    neverTallied,
		valVotesAt: neverTallied,
	}
	// The value slab is write-once per topic (released wholesale on
	// drop), so unbounded doubling would overshoot a busy topic's
	// footprint by up to 2× in eagerly-zeroed large blocks; 8192
	// uint32s keeps every block within the runtime's 32 KiB
	// small-object classes.
	t.valSlab.SetMaxBlock(8192)
	t.valSlab.SetSource(&b.valPool)
	b.topics[name] = t
	reg := b.tel.reg
	newKind := false
	var kind string
	if reg != nil {
		if kind = topicKind(name); !b.kindSeen[kind] {
			if b.kindSeen == nil {
				b.kindSeen = make(map[string]bool)
			}
			b.kindSeen[kind] = true
			newKind = true
		}
	}
	b.mu.Unlock()
	b.tel.topics.Add(1)
	if newKind {
		// Outside b.mu — see registerKindFunc.
		b.registerKindFunc(reg, kind)
	}
	return t
}

// growPostings quadruples a posting slice's capacity (minimum 16).
// Topics routinely take dozens to hundreds of posts between drops, and
// append's power-of-two doubling from capacity 1 made posting the
// board's hottest allocation site under the recursive algorithms.
func growPostings[T any](s []T) []T {
	c := 4 * cap(s)
	if c < 16 {
		c = 16
	}
	ns := make([]T, len(s), c)
	copy(ns, s)
	return ns
}

// HintPosts presizes the named topic's posting storage for `vectors`
// upcoming Post calls and `values` upcoming PostValues calls, so a
// known burst of posts (one per player of a ZeroRadius node, say) costs
// one exact-fit allocation instead of a growth sequence. Purely a
// capacity hint: it never shrinks, and posting beyond the hint just
// grows as usual.
func (b *Board) HintPosts(name string, vectors, values int) {
	t := b.topicFor(name)
	t.mu.Lock()
	if need := len(t.postings) + vectors; need > cap(t.postings) {
		np := make([]Posting, len(t.postings), need)
		copy(np, t.postings)
		t.postings = np
	}
	if need := len(t.values) + values; need > cap(t.values) {
		nv := make([]ValuePosting, len(t.values), need)
		copy(nv, t.values)
		t.values = nv
	}
	t.mu.Unlock()
}

// Post publishes a partial vector by player under the named topic.
func (b *Board) Post(name string, player int, v bitvec.Partial) {
	for {
		t := b.topicFor(name)
		t.mu.Lock()
		if t.retired {
			// The handle resolved before a concurrent drop committed;
			// re-resolve so the post is visible to later readers.
			t.mu.Unlock()
			continue
		}
		if len(t.postings) == cap(t.postings) {
			t.postings = growPostings(t.postings)
		}
		t.postings = append(t.postings, Posting{Player: player, Vec: v})
		t.epoch++
		t.stats.posts++
		// Under the topic lock so VectorPostCount never under-reports a
		// posting already visible via Postings.
		b.vectorPosts.Add(1)
		t.mu.Unlock()
		return
	}
}

// PostVector publishes a total vector (lifted to a fully-known Partial).
func (b *Board) PostVector(name string, player int, v bitvec.Vector) {
	b.Post(name, player, bitvec.PartialOf(v))
}

// peekTopic looks a topic up without creating it: the read-only
// counterpart of topicFor. Reads of a topic nobody ever posted to (or
// that was dropped) must not resurrect an empty shell — the cluster
// drain verifies a conditional drop by re-reading the topic, and a read
// that recreated it would leave a phantom topic on the donor forever.
func (b *Board) peekTopic(name string) (*topic, bool) {
	b.mu.RLock()
	t, ok := b.topics[name]
	b.mu.RUnlock()
	return t, ok
}

// Postings returns a snapshot of everything posted under the topic, in
// posting order. The result is a copy; callers may not mutate vectors.
func (b *Board) Postings(name string) []Posting {
	t, ok := b.peekTopic(name)
	if !ok {
		return nil
	}
	t.mu.Lock()
	out := append([]Posting(nil), t.postings...)
	t.mu.Unlock()
	return out
}

// Votes tallies the postings under a topic, grouping identical vectors.
// The result is sorted by descending count, ties broken by the vectors'
// lexicographic order, so it is deterministic regardless of posting
// order — every player computing Votes sees the same list, which the
// paper's vote-threshold steps require.
//
// The tally is cached per topic epoch: while no new posting arrives,
// every call returns the same immutable slice, computed once. Callers
// must not modify it.
func (b *Board) Votes(name string) []Vote {
	t, ok := b.peekTopic(name)
	if !ok {
		return []Vote{} // non-nil, like a created-but-unposted topic
	}
	t.mu.Lock()
	if t.votesAt != t.epoch {
		t.rebuildVotes()
	} else {
		t.stats.tallyHits++
	}
	out := t.votes
	t.mu.Unlock()
	return out
}

// PopularVectors returns the distinct vectors posted under the topic by
// at least minVotes players, in the deterministic order of Votes.
func (b *Board) PopularVectors(name string, minVotes int) []bitvec.Partial {
	var out []bitvec.Partial
	for _, v := range b.Votes(name) {
		if v.Count >= minVotes {
			out = append(out, v.Vec)
		}
	}
	return out
}

// DropTopic removes a topic and its postings, releasing memory for
// phases that are complete. Dropping an absent topic is a no-op.
func (b *Board) DropTopic(name string) {
	b.mu.Lock()
	t, existed := b.topics[name]
	if existed {
		t.mu.Lock()
		b.dropTopicLocked(name, t)
	}
	b.mu.Unlock()
	if existed {
		b.tel.topics.Add(-1)
	}
}

// DropTopicIf drops the topic only if it currently holds exactly nVec
// vector postings and nVal value postings, reporting whether it did.
// The check and the drop are atomic under the topic lock, so a posting
// that commits concurrently either makes the drop fail (it arrived
// before the check) or recreates the topic afterwards (visible to the
// next enumeration) — never vanishes with the drop. This is the
// primitive a shard drain needs: "drop what I replayed, and only if
// nothing arrived since I read it". Dropping an absent topic succeeds
// iff both expected counts are zero.
func (b *Board) DropTopicIf(name string, nVec, nVal int) bool {
	b.mu.Lock()
	t, existed := b.topics[name]
	if !existed {
		b.mu.Unlock()
		return nVec == 0 && nVal == 0
	}
	t.mu.Lock()
	if len(t.postings) != nVec || len(t.values) != nVal {
		t.mu.Unlock()
		b.mu.Unlock()
		return false
	}
	b.dropTopicLocked(name, t)
	b.mu.Unlock()
	b.tel.topics.Add(-1)
	return true
}

// dropTopicLocked completes a drop with b.mu and t.mu held; it releases
// t.mu. Folds the topic's stats into the board totals so the sampled
// telemetry counters stay monotone across drops, then retires the
// topic's value storage into the pool. Value-side snapshots must not be
// read after the drop (see valPool); the vector side is deliberately
// left alone.
func (b *Board) dropTopicLocked(name string, t *topic) {
	b.dropped.fold(t.stats)
	if t.stats.posts > 0 {
		if b.droppedPosts == nil {
			b.droppedPosts = make(map[string]int64)
		}
		b.droppedPosts[topicKind(name)] += t.stats.posts
	}
	blocks := t.valSlab.TakeBlocks()
	arr := t.values
	t.values, t.valVotes, t.valVotesAt = nil, nil, neverTallied
	t.retired = true
	t.mu.Unlock()
	b.valPool.put(blocks, arr)
	delete(b.topics, name)
}

// TopicCount returns the number of live topics (for tests and stats).
func (b *Board) TopicCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.topics)
}

// Topics returns the names of all live topics in sorted order — the
// enumeration a shard drain needs to move every topic it owns. The
// result is a fresh slice.
func (b *Board) Topics() []string {
	b.mu.RLock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ClearProbes removes player p's posted probe results for objs,
// decrementing ProbeCount for each result actually cleared. This is an
// administrative operation for resharding (probe results migrating to
// another shard are cleared from the donor after replay); it must not
// race with p posting probes — the reshard path runs on a quiescent
// cluster, which guarantees that. The known bit is cleared before the
// value bit, so a concurrent reader never observes a half-cleared
// grade as posted.
func (b *Board) ClearProbes(p int, objs []int) {
	s := &b.probeShards[p]
	var cleared int64
	for _, o := range objs {
		mask := uint64(1) << (uint(o) & 63)
		w := o >> 6
		if old := s.known[w].And(^mask); old&mask != 0 {
			cleared++
		}
		s.val[w].And(^mask)
	}
	if cleared > 0 {
		b.probePosts.Add(-cleared)
	}
}

// Err implements the degraded-mode half of the unified board-client
// contract (see internal/boardclient): the in-memory board has no
// transport and can never fail, so Err is always nil.
func (b *Board) Err() error { return nil }

// Failures implements the degraded-mode contract; always 0 for the
// in-memory board.
func (b *Board) Failures() int64 { return 0 }

// ValuePosting is one generic value vector posted by one player. Value
// vectors arise when ZeroRadius runs over virtual objects whose "grades"
// are candidate indices rather than bits (Large Radius, Step 4).
type ValuePosting struct {
	Player int
	Vals   []uint32
}

// ValueVote aggregates identical value vectors under a topic.
type ValueVote struct {
	Vals   []uint32
	Count  int
	Voters []int
}

// PostValues publishes a generic value vector under the named topic.
// The slice is copied (into the topic's slab; one heap allocation per
// slab block, not per posting); callers may reuse it.
func (b *Board) PostValues(name string, player int, vals []uint32) {
	for !b.postValuesTo(b.topicFor(name), player, vals) {
		// Re-resolve: the handle lost a race with a drop (see Post).
	}
}

// TopicRef is a resolved handle to a live topic, letting a phase that
// posts once per player skip the registry lookup PostValues does on
// every call. A ref is only meaningful while its topic is live:
// posting through it after DropTopic lands in the dropped topic's
// orphaned storage, invisible to readers — refs must not outlive the
// phase they were resolved for.
type TopicRef struct{ t *topic }

// TopicRef resolves (creating if needed) the named topic to a handle.
func (b *Board) TopicRef(name string) TopicRef {
	return TopicRef{t: b.topicFor(name)}
}

// PostValuesRef is PostValues through a resolved handle.
func (b *Board) PostValuesRef(r TopicRef, player int, vals []uint32) {
	b.postValuesTo(r.t, player, vals)
}

// PostValuesBatchRef publishes one value vector per player — rows[i]
// by players[i] — under the topic, equivalent to calling PostValuesRef
// for each pair in order but with a single lock acquisition and one
// slab carve covering every copy. Nothing may read the topic between
// the individual posts being batched (the phase-barrier discipline
// already guarantees that for per-phase posting bursts), so readers
// cannot distinguish the batch from the per-post sequence.
func (b *Board) PostValuesBatchRef(r TopicRef, players []int, rows [][]uint32) {
	n := len(players)
	if n == 0 {
		return
	}
	t := r.t
	t.mu.Lock()
	if need := len(t.values) + n; need > cap(t.values) {
		nv := b.valPool.takeArray(need)
		if nv == nil {
			nv = make([]ValuePosting, 0, need)
		}
		nv = nv[:len(t.values)]
		copy(nv, t.values)
		t.values = nv
	}
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	buf := t.valSlab.Raw(total) // fully overwritten below
	off := 0
	for i, p := range players {
		dst := buf[off : off+len(rows[i]) : off+len(rows[i])]
		copy(dst, rows[i])
		off += len(rows[i])
		t.values = append(t.values, ValuePosting{Player: p, Vals: dst})
	}
	t.epoch += uint64(n)
	t.stats.posts += int64(n)
	b.vectorPosts.Add(int64(n)) // under the lock; see Post
	t.mu.Unlock()
}

// postValuesTo appends one value posting under t. It reports false
// without posting when t is a retired handle: the name-based caller
// re-resolves, while ref-based callers treat the post as expired with
// the ref (it would have been invisible to readers either way).
func (b *Board) postValuesTo(t *topic, player int, vals []uint32) bool {
	t.mu.Lock()
	if t.retired {
		t.mu.Unlock()
		return false
	}
	if len(t.values) == cap(t.values) {
		t.values = growPostings(t.values)
	}
	t.values = append(t.values, ValuePosting{Player: player, Vals: t.valSlab.Copy(vals)})
	t.epoch++
	t.stats.posts++
	b.vectorPosts.Add(1) // under the lock; see Post
	t.mu.Unlock()
	return true
}

// ValuePostings returns a snapshot of the value vectors posted under the
// topic, in posting order.
func (b *Board) ValuePostings(name string) []ValuePosting {
	t, ok := b.peekTopic(name)
	if !ok {
		return nil
	}
	t.mu.Lock()
	out := append([]ValuePosting(nil), t.values...)
	t.mu.Unlock()
	return out
}

// ValueVotes tallies value-vector postings, sorted by descending count
// with ties broken by the vectors' lexicographic order (deterministic
// for every reader, like Votes). Cached per topic epoch like Votes; the
// result is immutable and must not be modified.
func (b *Board) ValueVotes(name string) []ValueVote {
	t, ok := b.peekTopic(name)
	if !ok {
		return []ValueVote{} // non-nil, like a created-but-unposted topic
	}
	t.mu.Lock()
	if t.valVotesAt != t.epoch {
		t.rebuildValVotes()
	} else {
		t.stats.tallyHits++
	}
	out := t.valVotes
	t.mu.Unlock()
	return out
}

// TopicSnapshot returns the topic's identity stamp (gen, epoch) and,
// unless the caller's (sinceGen, sinceEpoch) already matches it, the
// cached vote tallies of both posting kinds. unchanged reports a match,
// in which case the returned tallies are nil and the caller should keep
// whatever it fetched at that stamp. The stamp is comparable across
// DropTopic: a recreated topic has a fresh gen, so a stale cache keyed
// by the old stamp can never be mistaken for current content. This is
// the server half of netboard's epoch-tagged snapshot endpoint; the
// returned tallies are the shared immutable epoch caches of Votes and
// ValueVotes.
func (b *Board) TopicSnapshot(name string, sinceGen, sinceEpoch uint64) (gen, epoch uint64, unchanged bool, votes []Vote, valVotes []ValueVote) {
	t, ok := b.peekTopic(name)
	if !ok {
		// An absent topic reads as the zero stamp; real topics always
		// carry gen >= 1, so a caller holding the zero stamp sees it
		// unchanged and anything else refetches (empty) content.
		return 0, 0, sinceGen == 0 && sinceEpoch == 0, nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	gen, epoch = t.gen, t.epoch
	if gen == sinceGen && epoch == sinceEpoch {
		t.stats.snapUnch++
		return gen, epoch, true, nil, nil
	}
	if t.votesAt != t.epoch {
		t.rebuildVotes()
	} else {
		t.stats.tallyHits++
	}
	if t.valVotesAt != t.epoch {
		t.rebuildValVotes()
	} else {
		t.stats.tallyHits++
	}
	return gen, epoch, false, t.votes, t.valVotes
}

func appendValsKey(buf []byte, vals []uint32) []byte {
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

func lessVals(a, b []uint32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

var _ Interface = (*Board)(nil)
