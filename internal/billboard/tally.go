package billboard

import (
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Tally rebuilds for large topics fan out across CPUs: the postings are
// split into fixed chunks, each worker groups its chunks with a local
// map, and the locals are merged in chunk order. The result is
// byte-identical to the serial tally — voter lists are sorted after the
// merge, counts are sums, representatives of one key are content-equal,
// and the final (count desc, lexicographic) order is a strict total
// order over distinct vectors, so neither chunking nor goroutine
// scheduling can show through.

// tallyParallelThreshold is the posting count at which a rebuild takes
// the parallel path; below it the serial tally is both faster and
// allocation-lighter.
const tallyParallelThreshold = 4096

// tallyWorkersOverride pins the tally worker count for tests (0 means
// use GOMAXPROCS). Set it before the board is shared between
// goroutines.
var tallyWorkersOverride int

func tallyWorkers() int {
	if tallyWorkersOverride > 0 {
		return tallyWorkersOverride
	}
	return runtime.GOMAXPROCS(0)
}

// tallyChunks runs collect(ci, lo, hi) over [0, n) split into nChunks
// fixed chunks, dispatched to workers goroutines via an atomic cursor
// (the same chunked-dispatch shape as sim.Runner). collect is called at
// most once per chunk, concurrently across chunks.
func tallyChunks(n, workers int, collect func(ci, lo, hi int)) {
	chunk := n / (workers * 4)
	if chunk < 256 {
		chunk = 256
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				hi := (ci + 1) * chunk
				if hi > n {
					hi = n
				}
				collect(ci, ci*chunk, hi)
			}
		}()
	}
	wg.Wait()
}

// tallyChunkCount mirrors tallyChunks' chunking (for sizing the
// per-chunk result slice).
func tallyChunkCount(n, workers int) int {
	chunk := n / (workers * 4)
	if chunk < 256 {
		chunk = 256
	}
	return (n + chunk - 1) / chunk
}

// keyedVote is one vector-vote group with its grouping key retained for
// the cross-chunk merge.
type keyedVote struct {
	key string
	Vote
}

// keyedValueVote is keyedVote for value postings.
type keyedValueVote struct {
	key string
	ValueVote
}

// voteGroups groups postings by vector in first-occurrence order,
// keeping keys for merging.
func voteGroups(postings []Posting) []keyedVote {
	byKey := make(map[string]int, len(postings))
	out := make([]keyedVote, 0, 8)
	var kb []byte
	for _, p := range postings {
		kb = p.Vec.AppendKey(kb[:0])
		i, ok := byKey[string(kb)]
		if !ok {
			k := string(kb)
			i = len(out)
			out = append(out, keyedVote{key: k, Vote: Vote{Vec: p.Vec}})
			byKey[k] = i
		}
		out[i].Count++
		out[i].Voters = append(out[i].Voters, p.Player)
	}
	return out
}

// valueVoteGroups is voteGroups for value postings.
func valueVoteGroups(values []ValuePosting) []keyedValueVote {
	byKey := make(map[string]int, len(values))
	out := make([]keyedValueVote, 0, 8)
	var kb []byte
	for _, p := range values {
		kb = appendValsKey(kb[:0], p.Vals)
		i, ok := byKey[string(kb)]
		if !ok {
			k := string(kb)
			i = len(out)
			out = append(out, keyedValueVote{key: k, ValueVote: ValueVote{Vals: p.Vals}})
			byKey[k] = i
		}
		out[i].Count++
		out[i].Voters = append(out[i].Voters, p.Player)
	}
	return out
}

// tallyVotes groups identical vectors; see Votes for the order contract.
func tallyVotes(postings []Posting) []Vote {
	w := tallyWorkers()
	if len(postings) < tallyParallelThreshold || w <= 1 {
		return finishVotes(voteGroups(postings))
	}
	parts := make([][]keyedVote, tallyChunkCount(len(postings), w))
	tallyChunks(len(postings), w, func(ci, lo, hi int) {
		parts[ci] = voteGroups(postings[lo:hi])
	})
	byKey := make(map[string]int)
	var merged []keyedVote
	for _, part := range parts {
		for _, g := range part {
			i, ok := byKey[g.key]
			if !ok {
				i = len(merged)
				merged = append(merged, keyedVote{Vote: Vote{Vec: g.Vec}})
				byKey[g.key] = i
			}
			merged[i].Count += g.Count
			merged[i].Voters = append(merged[i].Voters, g.Voters...)
		}
	}
	return finishVotes(merged)
}

// finishVotes applies the deterministic-order contract: voters
// ascending, groups by count desc then lexicographic vector order.
func finishVotes(groups []keyedVote) []Vote {
	out := make([]Vote, len(groups))
	for i, g := range groups {
		sort.Ints(g.Voters)
		out[i] = g.Vote
	}
	// slices.SortFunc over sort.Slice: no reflection-based swaps on a
	// path rebuilt once per topic epoch. The comparator is a strict
	// total order over distinct groups, so the (unstable) algorithm
	// cannot show through.
	slices.SortFunc(out, func(a, b Vote) int {
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		if a.Vec.Less(b.Vec) {
			return -1
		}
		return 1
	})
	return out
}

// tallyValueVotes groups identical value vectors; see ValueVotes.
func tallyValueVotes(values []ValuePosting) []ValueVote {
	w := tallyWorkers()
	if len(values) < tallyParallelThreshold || w <= 1 {
		return finishValueVotes(valueVoteGroups(values))
	}
	parts := make([][]keyedValueVote, tallyChunkCount(len(values), w))
	tallyChunks(len(values), w, func(ci, lo, hi int) {
		parts[ci] = valueVoteGroups(values[lo:hi])
	})
	byKey := make(map[string]int)
	var merged []keyedValueVote
	for _, part := range parts {
		for _, g := range part {
			i, ok := byKey[g.key]
			if !ok {
				i = len(merged)
				merged = append(merged, keyedValueVote{ValueVote: ValueVote{Vals: g.Vals}})
				byKey[g.key] = i
			}
			merged[i].Count += g.Count
			merged[i].Voters = append(merged[i].Voters, g.Voters...)
		}
	}
	return finishValueVotes(merged)
}

// finishValueVotes is finishVotes for value groups.
func finishValueVotes(groups []keyedValueVote) []ValueVote {
	out := make([]ValueVote, len(groups))
	for i, g := range groups {
		sort.Ints(g.Voters)
		out[i] = g.ValueVote
	}
	slices.SortFunc(out, func(a, b ValueVote) int { // see finishVotes
		if a.Count != b.Count {
			return b.Count - a.Count
		}
		if lessVals(a.Vals, b.Vals) {
			return -1
		}
		return 1
	})
	return out
}
