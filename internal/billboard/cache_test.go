package billboard

import (
	"fmt"
	"reflect"
	"testing"

	"tellme/internal/bitvec"
)

// The epoch cache must be invisible to callers: Votes and ValueVotes
// must return exactly what a fresh tally over the current postings
// would, at every point in an arbitrary post/read interleaving.

func TestVotesMatchFreshTally(t *testing.T) {
	b := New(8, 6)
	vecs := []string{"0101?1", "0101?1", "111???", "000000", "0101?1", "111???"}
	for i, s := range vecs {
		v, err := bitvec.PartialFromString(s)
		if err != nil {
			t.Fatal(err)
		}
		b.Post("t", i, v)

		got := b.Votes("t")
		want := tallyVotes(b.Postings("t"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after post %d: cached votes %+v != fresh tally %+v", i, got, want)
		}
		// A second read at the same epoch must hit the cache: the exact
		// same backing slice, not an equal copy.
		again := b.Votes("t")
		if len(got) > 0 && &got[0] != &again[0] {
			t.Fatal("second Votes at same epoch recomputed the tally")
		}
	}
}

func TestValueVotesMatchFreshTally(t *testing.T) {
	b := New(8, 4)
	posts := [][]uint32{{1, 2, 3}, {1, 2, 3}, {9, 9, 9}, {1, 2, 3}, {0, 0, 0}}
	for i, vals := range posts {
		b.PostValues("t", i, vals)

		got := b.ValueVotes("t")
		want := tallyValueVotes(b.ValuePostings("t"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after post %d: cached %+v != fresh %+v", i, got, want)
		}
		again := b.ValueVotes("t")
		if len(got) > 0 && &got[0] != &again[0] {
			t.Fatal("second ValueVotes at same epoch recomputed the tally")
		}
	}
}

func TestVotesCacheInvalidatedByPost(t *testing.T) {
	b := New(4, 4)
	v, _ := bitvec.PartialFromString("0101")
	b.Post("t", 0, v)
	if got := b.Votes("t"); len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("votes = %+v", got)
	}
	b.Post("t", 1, v)
	if got := b.Votes("t"); len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("votes after second post = %+v", got)
	}
	w, _ := bitvec.PartialFromString("1111")
	b.Post("t", 2, w)
	if got := b.Votes("t"); len(got) != 2 || got[0].Count != 2 {
		t.Fatalf("votes after third post = %+v", got)
	}
}

func TestVotesEmptyTopicNonNil(t *testing.T) {
	// The seed implementation returned a non-nil empty slice for a topic
	// with no postings; the cache must preserve that.
	b := New(2, 2)
	if got := b.Votes("empty"); got == nil || len(got) != 0 {
		t.Fatalf("Votes(empty) = %#v", got)
	}
	if got := b.ValueVotes("empty"); got == nil || len(got) != 0 {
		t.Fatalf("ValueVotes(empty) = %#v", got)
	}
}

// TestVotesDeterministicAcrossPostingOrder re-checks the paper's
// requirement (every reader sees the same list) against the cached
// implementation: permuting posting order must not change the tally.
func TestVotesDeterministicAcrossPostingOrder(t *testing.T) {
	vecs := []string{"0101", "1111", "0101", "0000", "1111", "0101"}
	mk := func(perm []int) []Vote {
		b := New(8, 4)
		for _, i := range perm {
			v, _ := bitvec.PartialFromString(vecs[i])
			b.Post("t", i, v)
		}
		return b.Votes("t")
	}
	ref := mk([]int{0, 1, 2, 3, 4, 5})
	for _, perm := range [][]int{{5, 4, 3, 2, 1, 0}, {2, 0, 4, 1, 5, 3}} {
		got := mk(perm)
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
			t.Fatalf("order %v: %+v != %+v", perm, got, ref)
		}
	}
}
