package billboard

import "context"

// ContextBinder is the optional context-aware entry point of a board
// implementation. A board whose operations can block — netboard.Client,
// whose every method is an HTTP request with retries — implements it by
// returning a view of itself whose operations are governed by ctx:
// in-flight requests and backoff sleeps abort when ctx is cancelled.
// The in-memory Board does not implement it; its operations never block
// on anything but short-lived locks, so there is nothing to interrupt.
type ContextBinder interface {
	// BindContext returns a view of the board whose operations observe
	// ctx. The view shares all state with the receiver (posting through
	// either is visible through both).
	BindContext(ctx context.Context) Interface
}

// BindContext binds ctx to b when b supports it and ctx is cancellable;
// otherwise it returns b unchanged. This is the single seam through
// which the probe engine (and any other board client) becomes
// cancellation-aware without the 18-method Interface growing a ctx
// parameter on every call.
func BindContext(ctx context.Context, b Interface) Interface {
	if ctx == nil || ctx.Done() == nil {
		return b
	}
	if cb, ok := b.(ContextBinder); ok {
		return cb.BindContext(ctx)
	}
	return b
}
