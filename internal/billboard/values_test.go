package billboard

import (
	"sync"
	"testing"
)

func TestPostValuesAndPostings(t *testing.T) {
	b := New(4, 8)
	b.PostValues("v", 2, []uint32{1, 2, 3})
	got := b.ValuePostings("v")
	if len(got) != 1 || got[0].Player != 2 {
		t.Fatalf("postings: %+v", got)
	}
	if len(got[0].Vals) != 3 || got[0].Vals[1] != 2 {
		t.Fatalf("vals: %v", got[0].Vals)
	}
}

func TestPostValuesCopiesInput(t *testing.T) {
	b := New(2, 4)
	vals := []uint32{7, 8}
	b.PostValues("v", 0, vals)
	vals[0] = 99 // caller reuse must not corrupt the board
	if got := b.ValuePostings("v")[0].Vals[0]; got != 7 {
		t.Fatalf("board saw caller mutation: %d", got)
	}
}

func TestValueVotesGroupingAndOrder(t *testing.T) {
	b := New(6, 4)
	a := []uint32{1, 1}
	c := []uint32{2, 2}
	d := []uint32{0, 9}
	b.PostValues("t", 3, c)
	b.PostValues("t", 0, a)
	b.PostValues("t", 5, d)
	b.PostValues("t", 2, a)
	b.PostValues("t", 4, c)
	b.PostValues("t", 1, a)
	votes := b.ValueVotes("t")
	if len(votes) != 3 {
		t.Fatalf("%d groups", len(votes))
	}
	if votes[0].Count != 3 || votes[0].Vals[0] != 1 {
		t.Fatalf("top group: %+v", votes[0])
	}
	if votes[1].Count != 2 || votes[2].Count != 1 {
		t.Fatal("counts not sorted")
	}
	want := []int{0, 1, 2}
	for i, p := range votes[0].Voters {
		if p != want[i] {
			t.Fatalf("voters: %v", votes[0].Voters)
		}
	}
}

func TestValueVotesTieLexicographic(t *testing.T) {
	b := New(4, 2)
	lo := []uint32{0, 5}
	hi := []uint32{3, 0}
	b.PostValues("t", 0, hi)
	b.PostValues("t", 1, lo)
	b.PostValues("t", 2, hi)
	b.PostValues("t", 3, lo)
	votes := b.ValueVotes("t")
	if votes[0].Vals[0] != 0 {
		t.Fatalf("tie broken wrong: %+v", votes[0])
	}
}

func TestValueAndVectorPostingsCoexist(t *testing.T) {
	b := New(2, 4)
	b.PostValues("x", 0, []uint32{1})
	if n := len(b.Postings("x")); n != 0 {
		t.Fatalf("value posting leaked into vector postings: %d", n)
	}
	if n := len(b.ValuePostings("x")); n != 1 {
		t.Fatalf("value postings: %d", n)
	}
	if b.VectorPostCount() != 1 {
		t.Fatalf("post count %d", b.VectorPostCount())
	}
}

func TestValueVotesDifferentLengthsDistinct(t *testing.T) {
	b := New(2, 4)
	b.PostValues("t", 0, []uint32{1})
	b.PostValues("t", 1, []uint32{1, 0})
	if len(b.ValueVotes("t")) != 2 {
		t.Fatal("different-length value vectors merged")
	}
}

func TestLessVals(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want bool
	}{
		{[]uint32{1, 2}, []uint32{1, 3}, true},
		{[]uint32{1, 3}, []uint32{1, 2}, false},
		{[]uint32{1}, []uint32{1, 0}, true},
		{[]uint32{1, 0}, []uint32{1}, false},
		{[]uint32{1, 2}, []uint32{1, 2}, false},
	}
	for _, c := range cases {
		if got := lessVals(c.a, c.b); got != c.want {
			t.Fatalf("lessVals(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestConcurrentValuePosting(t *testing.T) {
	const n = 32
	b := New(n, 8)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			b.PostValues("c", p, []uint32{uint32(p % 4)})
			_ = b.ValueVotes("c")
		}(p)
	}
	wg.Wait()
	votes := b.ValueVotes("c")
	total := 0
	for _, v := range votes {
		total += v.Count
	}
	if total != n || len(votes) != 4 {
		t.Fatalf("groups=%d total=%d", len(votes), total)
	}
}
