package billboard

import (
	"fmt"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// Tally-engine microbenchmarks: rebuild cost as a function of topic
// size, across the serial and parallel grouping paths. These feed the
// `core` benchdiff suite (make bench-core).

func benchPostings(n int) []Posting {
	r := rng.New(42)
	const width, distinct = 64, 8
	base := make([]bitvec.Partial, distinct)
	for i := range base {
		v := bitvec.New(width)
		for j := 0; j < width; j++ {
			v.Set(j, byte(r.Intn(2)))
		}
		base[i] = bitvec.PartialOf(v)
	}
	out := make([]Posting, n)
	for i := range out {
		out[i] = Posting{Player: i, Vec: base[r.Intn(distinct)]}
	}
	return out
}

func BenchmarkVotesLargeTopic(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		postings := benchPostings(n)
		for _, workers := range []int{1, 4} {
			if workers > 1 && n < tallyParallelThreshold {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				old := tallyWorkersOverride
				tallyWorkersOverride = workers
				defer func() { tallyWorkersOverride = old }()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if v := tallyVotes(postings); len(v) == 0 {
						b.Fatal("empty tally")
					}
				}
			})
		}
	}
}

// BenchmarkPopularVectors measures the board-level read path end to
// end: every iteration invalidates the epoch cache, so the cost is one
// full rebuild plus the popularity filter, as a reader after a posting
// burst would pay.
func BenchmarkPopularVectors(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16} {
		bd := New(n, 64)
		for _, p := range benchPostings(n) {
			bd.Post("t", p.Player, p.Vec)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tp := bd.topicFor("t")
				tp.mu.Lock()
				tp.votesAt = neverTallied
				tp.mu.Unlock()
				if v := bd.PopularVectors("t", 2); len(v) == 0 {
					b.Fatal("no popular vectors")
				}
			}
		})
	}
}

// BenchmarkPostValues measures the slab-backed value-posting path (the
// dominant allocation site of E8 before the slab).
func BenchmarkPostValues(b *testing.B) {
	bd := New(1, 64)
	vals := make([]uint32, 48)
	for i := range vals {
		vals[i] = uint32(i % 3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd.PostValues("t", 0, vals)
		if i%(1<<16) == 0 {
			bd.DropTopic("t") // keep the topic from growing unboundedly
		}
	}
}
