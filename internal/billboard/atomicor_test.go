package billboard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sync"
	"testing"
)

// TestAtomicOrResultStaysUnused guards the PostProbe workaround for a
// go1.24.0 code generation bug: atomic Or-with-result is miscompiled on
// amd64, so billboard.go must only ever use .Or(...) as a bare
// statement (plain LOCK OR), never consume its return value. This test
// parses the source so a refactor that starts reading the result —
// e.g. `if old := s.known[w].Or(mask); old&mask != 0` — fails loudly
// instead of reintroducing the miscompile.
func TestAtomicOrResultStaysUnused(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "billboard.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing billboard.go: %v", err)
	}
	// Collect every .Or(...) call, and separately those appearing as a
	// bare expression statement. Any call outside that set has its
	// result consumed.
	orCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Or" {
				orCalls[call] = false
			}
		}
		return true
	})
	if len(orCalls) == 0 {
		t.Fatal("no .Or( calls found in billboard.go; if the probe store no longer uses atomic Or, delete this guard")
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if stmt, ok := n.(*ast.ExprStmt); ok {
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if _, tracked := orCalls[call]; tracked {
					orCalls[call] = true
				}
			}
		}
		return true
	})
	for call, bare := range orCalls {
		if !bare {
			pos := fset.Position(call.Pos())
			t.Errorf("%s: .Or(...) result is consumed; keep it a bare statement (go1.24.0 miscompiles Or-with-result on amd64, see PostProbe)", pos)
		}
	}
}

// TestPostProbeFirstPostWinsPerWriter exercises the single-writer
// contract the bare-Or pattern relies on: for each player all posts
// come from one goroutine, duplicates are dropped on the known-bit
// load, and the first posted grade sticks.
func TestPostProbeFirstPostWinsPerWriter(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.PostProbe(p, o, byte((p+o)%2))
				b.PostProbe(p, o, byte((p+o+1)%2)) // duplicate: must not flip
			}
		}(p)
	}
	wg.Wait()
	if got, want := b.ProbeCount(), int64(n*m); got != want {
		t.Fatalf("ProbeCount = %d, want %d (duplicates must not be charged)", got, want)
	}
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			v, ok := b.LookupProbe(p, o)
			if !ok || v != byte((p+o)%2) {
				t.Fatalf("LookupProbe(%d,%d) = %d,%v; first post must win", p, o, v, ok)
			}
		}
	}
}
