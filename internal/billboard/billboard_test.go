package billboard

import (
	"fmt"
	"sync"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

func mustVec(t *testing.T, s string) bitvec.Vector {
	t.Helper()
	v, err := bitvec.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestProbePostLookup(t *testing.T) {
	b := New(3, 10)
	if _, ok := b.LookupProbe(0, 5); ok {
		t.Fatal("lookup on empty board succeeded")
	}
	b.PostProbe(0, 5, 1)
	v, ok := b.LookupProbe(0, 5)
	if !ok || v != 1 {
		t.Fatalf("lookup = %v,%v", v, ok)
	}
	if _, ok := b.LookupProbe(1, 5); ok {
		t.Fatal("probe leaked across players")
	}
	if b.ProbeCount() != 1 {
		t.Fatalf("ProbeCount = %d", b.ProbeCount())
	}
	// duplicate post should not double-count
	b.PostProbe(0, 5, 1)
	if b.ProbeCount() != 1 {
		t.Fatalf("duplicate probe counted: %d", b.ProbeCount())
	}
}

func TestProbedObjectsCopy(t *testing.T) {
	b := New(2, 10)
	b.PostProbe(1, 3, 0)
	b.PostProbe(1, 7, 1)
	m := b.ProbedObjects(1)
	if len(m) != 2 || m[3] != 0 || m[7] != 1 {
		t.Fatalf("ProbedObjects = %v", m)
	}
	m[9] = 1 // mutating the copy must not affect the board
	if _, ok := b.LookupProbe(1, 9); ok {
		t.Fatal("copy mutation leaked into board")
	}
}

func TestVotesDeterministicAndSorted(t *testing.T) {
	b := New(6, 4)
	a := mustVec(t, "0101")
	c := mustVec(t, "1100")
	d := mustVec(t, "0011")
	// 3 votes for a, 2 for c, 1 for d, posted in scrambled order
	b.PostVector("x", 3, c)
	b.PostVector("x", 0, a)
	b.PostVector("x", 5, d)
	b.PostVector("x", 2, a)
	b.PostVector("x", 4, c)
	b.PostVector("x", 1, a)
	votes := b.Votes("x")
	if len(votes) != 3 {
		t.Fatalf("%d vote groups", len(votes))
	}
	if votes[0].Count != 3 || !votes[0].Vec.Equal(bitvec.PartialOf(a)) {
		t.Fatalf("top vote wrong: %+v", votes[0])
	}
	if votes[1].Count != 2 || votes[2].Count != 1 {
		t.Fatal("counts not sorted")
	}
	wantVoters := []int{0, 1, 2}
	for i, p := range votes[0].Voters {
		if p != wantVoters[i] {
			t.Fatalf("voters %v", votes[0].Voters)
		}
	}
}

func TestVotesTieBrokenLexicographically(t *testing.T) {
	b := New(4, 3)
	lo := mustVec(t, "001")
	hi := mustVec(t, "100")
	b.PostVector("t", 0, hi)
	b.PostVector("t", 1, lo)
	b.PostVector("t", 2, hi)
	b.PostVector("t", 3, lo)
	votes := b.Votes("t")
	if !votes[0].Vec.Equal(bitvec.PartialOf(lo)) {
		t.Fatal("tie not broken lexicographically")
	}
}

func TestPopularVectorsThreshold(t *testing.T) {
	b := New(5, 2)
	a := mustVec(t, "01")
	c := mustVec(t, "10")
	for p := 0; p < 3; p++ {
		b.PostVector("z", p, a)
	}
	b.PostVector("z", 3, c)
	pop := b.PopularVectors("z", 2)
	if len(pop) != 1 || !pop[0].Equal(bitvec.PartialOf(a)) {
		t.Fatalf("PopularVectors = %v", pop)
	}
	if got := b.PopularVectors("z", 5); got != nil {
		t.Fatalf("threshold 5 returned %v", got)
	}
}

func TestTopicsIsolated(t *testing.T) {
	b := New(2, 2)
	b.PostVector("a", 0, mustVec(t, "01"))
	b.PostVector("b", 1, mustVec(t, "10"))
	if len(b.Postings("a")) != 1 || len(b.Postings("b")) != 1 {
		t.Fatal("topics mixed")
	}
	if b.TopicCount() != 2 {
		t.Fatalf("TopicCount = %d", b.TopicCount())
	}
	b.DropTopic("a")
	if b.TopicCount() != 1 {
		t.Fatal("DropTopic failed")
	}
	if len(b.Postings("a")) != 0 {
		t.Fatal("dropped topic still has postings")
	}
}

func TestPartialPostings(t *testing.T) {
	b := New(2, 4)
	p, err := bitvec.PartialFromString("01?1")
	if err != nil {
		t.Fatal(err)
	}
	b.Post("p", 0, p)
	got := b.Postings("p")
	if len(got) != 1 || !got[0].Vec.Equal(p) {
		t.Fatalf("Postings = %v", got)
	}
	// ? and 0 must form different vote groups
	q, _ := bitvec.PartialFromString("0101")
	b.Post("p", 1, q)
	if len(b.Votes("p")) != 2 {
		t.Fatal("? and 0 postings merged in votes")
	}
}

func TestConcurrentPosting(t *testing.T) {
	const n = 64
	b := New(n, 128)
	r := rng.New(5)
	vecs := make([]bitvec.Vector, 4)
	for i := range vecs {
		vecs[i] = bitvec.Random(r, 128)
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < 128; o++ {
				b.PostProbe(p, o, byte(o&1))
			}
			b.PostVector("concurrent", p, vecs[p%len(vecs)])
			// interleave reads
			_ = b.Votes("concurrent")
			_, _ = b.LookupProbe((p+1)%n, 5)
		}(p)
	}
	wg.Wait()
	if b.ProbeCount() != n*128 {
		t.Fatalf("ProbeCount = %d, want %d", b.ProbeCount(), n*128)
	}
	votes := b.Votes("concurrent")
	total := 0
	for _, v := range votes {
		total += v.Count
	}
	if total != n || len(votes) != len(vecs) {
		t.Fatalf("votes total=%d groups=%d", total, len(votes))
	}
	if b.VectorPostCount() != n {
		t.Fatalf("VectorPostCount = %d", b.VectorPostCount())
	}
}

func TestConcurrentTopicCreation(t *testing.T) {
	b := New(8, 4)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.PostVector(fmt.Sprintf("topic-%d", i%10), p, bitvec.New(4))
			}
		}(p)
	}
	wg.Wait()
	if b.TopicCount() != 10 {
		t.Fatalf("TopicCount = %d, want 10", b.TopicCount())
	}
	for i := 0; i < 10; i++ {
		if got := len(b.Postings(fmt.Sprintf("topic-%d", i))); got != 40 {
			t.Fatalf("topic-%d has %d postings, want 40", i, got)
		}
	}
}

func BenchmarkPostProbe(b *testing.B) {
	board := New(1, 1<<20)
	for i := 0; i < b.N; i++ {
		board.PostProbe(0, i&(1<<20-1), 1)
	}
}

func BenchmarkVotes64(b *testing.B) {
	board := New(64, 256)
	r := rng.New(1)
	for p := 0; p < 64; p++ {
		board.PostVector("t", p, bitvec.Random(r, 256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = board.Votes("t")
	}
}
