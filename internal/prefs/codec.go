package prefs

// Instance serialization: a compact, versioned binary format plus JSON,
// so experiment inputs can be archived and replayed exactly. The binary
// format packs the preference matrix at one bit per entry; JSON trades
// size for greppability.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"tellme/internal/bitvec"
)

// binMagic identifies the binary format; the trailing byte is a
// format version.
var binMagic = [8]byte{'T', 'M', 'W', 'I', 'A', 'v', '0', '1'}

// WriteBinary serializes the instance to w in the packed binary format.
func (in *Instance) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	writeInts := func(xs []int) error {
		if err := writeU64(uint64(len(xs))); err != nil {
			return err
		}
		for _, x := range xs {
			if err := writeU64(uint64(x)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeU64(uint64(in.N)); err != nil {
		return err
	}
	if err := writeU64(uint64(in.M)); err != nil {
		return err
	}
	if err := writeU64(in.Seed); err != nil {
		return err
	}
	name := []byte(in.Name)
	if err := writeU64(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	// matrix rows, packed
	rowBytes := (in.M + 7) / 8
	row := make([]byte, rowBytes)
	for p := 0; p < in.N; p++ {
		for i := range row {
			row[i] = 0
		}
		for o := 0; o < in.M; o++ {
			if in.Truth[p].Get(o) == 1 {
				row[o/8] |= 1 << (o % 8)
			}
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	// communities
	if err := writeU64(uint64(len(in.Communities))); err != nil {
		return err
	}
	for _, c := range in.Communities {
		if err := writeInts(c.Members); err != nil {
			return err
		}
		if err := writeU64(uint64(c.D)); err != nil {
			return err
		}
		for i := range row {
			row[i] = 0
		}
		for o := 0; o < in.M; o++ {
			if c.Center.Get(o) == 1 {
				row[o/8] |= 1 << (o % 8)
			}
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes an instance written by WriteBinary.
func ReadBinary(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("prefs: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("prefs: bad magic %q", magic[:])
	}
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	const maxDim = 1 << 24 // sanity cap against corrupted headers
	readDim := func(what string) (int, error) {
		v, err := readU64()
		if err != nil {
			return 0, err
		}
		if v > maxDim {
			return 0, fmt.Errorf("prefs: %s %d exceeds sanity cap", what, v)
		}
		return int(v), nil
	}
	n, err := readDim("n")
	if err != nil {
		return nil, err
	}
	m, err := readDim("m")
	if err != nil {
		return nil, err
	}
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("prefs: empty instance %dx%d", n, m)
	}
	seed, err := readU64()
	if err != nil {
		return nil, err
	}
	nameLen, err := readDim("name length")
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	in := &Instance{Name: string(name), N: n, M: m, Seed: seed, Truth: make([]bitvec.Vector, n)}
	rowBytes := (m + 7) / 8
	row := make([]byte, rowBytes)
	readVec := func() (bitvec.Vector, error) {
		if _, err := io.ReadFull(br, row); err != nil {
			return bitvec.Vector{}, err
		}
		v := bitvec.New(m)
		for o := 0; o < m; o++ {
			if row[o/8]>>(o%8)&1 == 1 {
				v.Set(o, 1)
			}
		}
		return v, nil
	}
	for p := 0; p < n; p++ {
		if in.Truth[p], err = readVec(); err != nil {
			return nil, fmt.Errorf("prefs: row %d: %w", p, err)
		}
	}
	nComm, err := readDim("community count")
	if err != nil {
		return nil, err
	}
	for ci := 0; ci < nComm; ci++ {
		var c Community
		sz, err := readDim("community size")
		if err != nil {
			return nil, err
		}
		c.Members = make([]int, sz)
		for i := range c.Members {
			v, err := readDim("member")
			if err != nil {
				return nil, err
			}
			if v >= n {
				return nil, fmt.Errorf("prefs: member %d out of range", v)
			}
			c.Members[i] = v
		}
		if c.D, err = readDim("community D"); err != nil {
			return nil, err
		}
		if c.Center, err = readVec(); err != nil {
			return nil, fmt.Errorf("prefs: community %d center: %w", ci, err)
		}
		in.Communities = append(in.Communities, c)
	}
	return in, nil
}

// instanceJSON is the JSON shape (vectors as '0'/'1' strings).
type instanceJSON struct {
	Name        string          `json:"name"`
	N           int             `json:"n"`
	M           int             `json:"m"`
	Seed        uint64          `json:"seed"`
	Rows        []string        `json:"rows"`
	Communities []communityJSON `json:"communities,omitempty"`
}

type communityJSON struct {
	Members []int  `json:"members"`
	D       int    `json:"d"`
	Center  string `json:"center"`
}

// WriteJSON serializes the instance as JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	doc := instanceJSON{Name: in.Name, N: in.N, M: in.M, Seed: in.Seed}
	doc.Rows = make([]string, in.N)
	for p := 0; p < in.N; p++ {
		doc.Rows[p] = in.Truth[p].String()
	}
	for _, c := range in.Communities {
		doc.Communities = append(doc.Communities, communityJSON{
			Members: c.Members, D: c.D, Center: c.Center.String(),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON deserializes an instance written by WriteJSON.
func ReadJSON(r io.Reader) (*Instance, error) {
	var doc instanceJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("prefs: %w", err)
	}
	if doc.N != len(doc.Rows) {
		return nil, fmt.Errorf("prefs: n=%d but %d rows", doc.N, len(doc.Rows))
	}
	if doc.N == 0 || doc.M == 0 {
		return nil, fmt.Errorf("prefs: empty instance")
	}
	in := &Instance{Name: doc.Name, N: doc.N, M: doc.M, Seed: doc.Seed, Truth: make([]bitvec.Vector, doc.N)}
	for p, s := range doc.Rows {
		if len(s) != doc.M {
			return nil, fmt.Errorf("prefs: row %d has %d objects, want %d", p, len(s), doc.M)
		}
		v, err := bitvec.FromString(s)
		if err != nil {
			return nil, fmt.Errorf("prefs: row %d: %w", p, err)
		}
		in.Truth[p] = v
	}
	for ci, c := range doc.Communities {
		center, err := bitvec.FromString(c.Center)
		if err != nil || center.Len() != doc.M {
			return nil, fmt.Errorf("prefs: community %d center invalid", ci)
		}
		for _, p := range c.Members {
			if p < 0 || p >= doc.N {
				return nil, fmt.Errorf("prefs: community %d member %d out of range", ci, p)
			}
		}
		in.Communities = append(in.Communities, Community{
			Members: append([]int(nil), c.Members...), D: c.D, Center: center,
		})
	}
	return in, nil
}
