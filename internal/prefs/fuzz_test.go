package prefs

import (
	"bytes"
	"testing"
)

// FuzzReadBinary checks that arbitrary bytes never crash the binary
// decoder, and that anything it accepts round-trips.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := Planted(8, 16, 0.5, 2, 1).WriteBinary(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TMWIAv01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := in.WriteBinary(&out); err != nil {
			t.Fatalf("accepted instance fails to re-encode: %v", err)
		}
		in2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded instance fails to decode: %v", err)
		}
		if in2.N != in.N || in2.M != in.M {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzReadJSON checks the JSON decoder against arbitrary input.
func FuzzReadJSON(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := Identical(4, 8, 0.5, 2).WriteJSON(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"n":1,"m":2,"rows":["01"]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if in.N <= 0 || in.M <= 0 || len(in.Truth) != in.N {
			t.Fatalf("accepted malformed instance: n=%d m=%d rows=%d", in.N, in.M, len(in.Truth))
		}
		for p := 0; p < in.N; p++ {
			if in.Truth[p].Len() != in.M {
				t.Fatal("accepted row with wrong length")
			}
		}
	})
}
