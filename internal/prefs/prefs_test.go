package prefs

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tellme/internal/bitvec"
)

func TestIdenticalCommunity(t *testing.T) {
	in := Identical(100, 200, 0.3, 7)
	if in.N != 100 || in.M != 200 {
		t.Fatalf("dims %dx%d", in.N, in.M)
	}
	c := in.Communities[0]
	if len(c.Members) != 30 {
		t.Fatalf("community size %d, want 30", len(c.Members))
	}
	for _, p := range c.Members {
		if !in.Truth[p].Equal(c.Center) {
			t.Fatalf("member %d differs from center", p)
		}
	}
	if d := in.Diameter(c.Members); d != 0 {
		t.Fatalf("identical community diameter %d", d)
	}
}

func TestIdenticalDeterministic(t *testing.T) {
	a := Identical(50, 60, 0.5, 42)
	b := Identical(50, 60, 0.5, 42)
	for p := 0; p < 50; p++ {
		if !a.Truth[p].Equal(b.Truth[p]) {
			t.Fatalf("seed 42 not reproducible at player %d", p)
		}
	}
	c := Identical(50, 60, 0.5, 43)
	same := 0
	for p := 0; p < 50; p++ {
		if a.Truth[p].Equal(c.Truth[p]) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical instance")
	}
}

func TestPlantedDiameterBound(t *testing.T) {
	for _, d := range []int{0, 1, 4, 10, 40} {
		in := Planted(80, 300, 0.25, d, 11)
		c := in.Communities[0]
		if got := in.Diameter(c.Members); got > d {
			t.Fatalf("D=%d: realized diameter %d exceeds bound", d, got)
		}
		// every member within D/2 of center
		for _, p := range c.Members {
			if dd := in.Truth[p].Dist(c.Center); dd > d/2 {
				t.Fatalf("member at distance %d > D/2=%d from center", dd, d/2)
			}
		}
	}
}

func TestPlantedPanicsOnBadD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on D > m")
		}
	}()
	Planted(10, 20, 0.5, 21, 1)
}

func TestGradeMatchesTruth(t *testing.T) {
	in := Planted(20, 50, 0.5, 6, 3)
	for p := 0; p < in.N; p++ {
		for o := 0; o < in.M; o++ {
			if in.Grade(p, o) != in.Truth[p].Get(o) {
				t.Fatalf("Grade(%d,%d) mismatch", p, o)
			}
		}
	}
}

func TestMultiCommunityDisjoint(t *testing.T) {
	in := MultiCommunity(120, 400, []CommunitySpec{
		{Alpha: 0.4, D: 10},
		{Alpha: 0.3, D: 0},
		{Alpha: 0.1, D: 4},
	}, 5)
	if len(in.Communities) != 3 {
		t.Fatalf("%d communities", len(in.Communities))
	}
	seen := map[int]bool{}
	for ci, c := range in.Communities {
		if got := in.Diameter(c.Members); got > c.D {
			t.Fatalf("community %d diameter %d > %d", ci, got, c.D)
		}
		for _, p := range c.Members {
			if seen[p] {
				t.Fatalf("player %d in two communities", p)
			}
			seen[p] = true
		}
	}
}

func TestMultiCommunityRejectsOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when fractions exceed 1")
		}
	}()
	MultiCommunity(10, 10, []CommunitySpec{{Alpha: 0.7, D: 0}, {Alpha: 0.7, D: 0}}, 1)
}

func TestAdversarialVoteSplitStructure(t *testing.T) {
	in := AdversarialVoteSplit(100, 500, 0.2, 8, 9)
	c := in.Communities[0]
	if got := in.Diameter(c.Members); got > 8 {
		t.Fatalf("community diameter %d > 8", got)
	}
	// outsiders should sit at distance > D from the center and collude
	inComm := map[int]bool{}
	for _, p := range c.Members {
		inComm[p] = true
	}
	blockKeys := map[string]int{}
	for p := 0; p < in.N; p++ {
		if inComm[p] {
			continue
		}
		if d := in.Truth[p].Dist(c.Center); d <= 8 {
			t.Fatalf("outsider %d at distance %d ≤ D from center", p, d)
		}
		blockKeys[in.Truth[p].Key()]++
	}
	// colluding blocks: at least one block of size ≥ 2
	max := 0
	for _, v := range blockKeys {
		if v > max {
			max = v
		}
	}
	if max < 2 {
		t.Fatal("no colluding outsider block formed")
	}
}

func TestTypesMixtureCoversPlayers(t *testing.T) {
	in := TypesMixture(90, 120, 4, 0.05, 13)
	covered := 0
	for _, c := range in.Communities {
		covered += len(c.Members)
	}
	if covered != 90 {
		t.Fatalf("mixture covered %d/90 players", covered)
	}
	// realized diameter should be recorded and roughly 2*noise*m scale
	for _, c := range in.Communities {
		if len(c.Members) >= 2 && c.D == 0 {
			t.Fatal("suspicious zero diameter with noise > 0 (possible, but with 120 coords improbable)")
		}
	}
}

func TestUniformRandomNoCommunities(t *testing.T) {
	in := UniformRandom(30, 40, 17)
	if len(in.Communities) != 0 {
		t.Fatal("uniform instance has communities")
	}
	// vectors should mostly differ
	if in.Truth[0].Equal(in.Truth[1]) && in.Truth[1].Equal(in.Truth[2]) {
		t.Fatal("uniform vectors equal")
	}
}

func TestMaxErrAndErr(t *testing.T) {
	in := Identical(10, 16, 1.0, 3)
	c := in.Communities[0]
	outs := make([]bitvec.Partial, in.N)
	for p := 0; p < in.N; p++ {
		outs[p] = bitvec.PartialOf(in.Truth[p])
	}
	if e := in.MaxErr(c.Members, outs); e != 0 {
		t.Fatalf("perfect outputs have MaxErr %d", e)
	}
	// Corrupt player 0: flip one known coordinate, and ?-out one
	// coordinate whose true value is 1 (charged as an error under the
	// Fill(0) convention).
	w := outs[0]
	w.SetBit(0, 1-in.Truth[0].Get(0))
	hid := -1
	for o := 1; o < in.M; o++ {
		if in.Truth[0].Get(o) == 1 {
			hid = o
			break
		}
	}
	if hid < 0 {
		t.Skip("degenerate all-zero truth vector")
	}
	w.SetUnknown(hid)
	if e := in.Err(0, w); e != 2 {
		t.Fatalf("Err = %d, want 2", e)
	}
	if e := in.MaxErr(c.Members, outs); e != 2 {
		t.Fatalf("MaxErr = %d, want 2", e)
	}
}

type qparams struct {
	N, M  int
	Alpha float64
	D     int
	Seed  uint64
}

func (qparams) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(60) + 4
	m := r.Intn(120) + 8
	return reflect.ValueOf(qparams{
		N:     n,
		M:     m,
		Alpha: 0.1 + 0.9*r.Float64(),
		D:     r.Intn(m/2 + 1),
		Seed:  r.Uint64(),
	})
}

func TestQuickPlantedInvariants(t *testing.T) {
	f := func(q qparams) bool {
		in := Planted(q.N, q.M, q.Alpha, q.D, q.Seed)
		c := in.Communities[0]
		if len(c.Members) < 1 || len(c.Members) > q.N {
			return false
		}
		want := int(q.Alpha*float64(q.N) + 0.5)
		if want < 1 {
			want = 1
		}
		if len(c.Members) != want {
			return false
		}
		return in.Diameter(c.Members) <= q.D
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInstanceReproducible(t *testing.T) {
	f := func(q qparams) bool {
		a := Planted(q.N, q.M, q.Alpha, q.D, q.Seed)
		b := Planted(q.N, q.M, q.Alpha, q.D, q.Seed)
		for p := 0; p < q.N; p++ {
			if !a.Truth[p].Equal(b.Truth[p]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlanted4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Planted(4096, 4096, 0.25, 32, uint64(i))
	}
}
