// Package prefs generates preference-matrix instances for the
// recommendation-system simulator.
//
// The paper is a worst-case theory result with no datasets, so instances
// are synthetic by construction. The generators below produce exactly the
// structures the paper's theorems quantify over:
//
//   - Identical: an (α,0)-typical set — players with identical vectors
//     (Theorem 3.1's precondition).
//   - Planted: an (α,D)-typical set — a random center with each member at
//     Hamming distance ≤ D/2 from it, hence pairwise diameter ≤ D
//     (Theorems 4.4 and 5.4).
//   - AdversarialVoteSplit: a planted community plus colluding outsider
//     blocks that agree with each other but not with the community, so
//     vote-counting steps face competing popular vectors.
//   - TypesMixture: the low-entropy generative model of the
//     non-interactive literature (players draw a "type" vector and add
//     independent flip noise), used for baseline comparisons.
//   - UniformRandom: no structure at all (sanity floor).
package prefs

import (
	"fmt"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// Community records a planted (α,D)-typical set inside an Instance.
type Community struct {
	// Members lists the player indices of the community.
	Members []int
	// Center is the vector the members were perturbed from.
	Center bitvec.Vector
	// D is the diameter bound the generator guaranteed (pairwise
	// Hamming distance of members is ≤ D). The exact realized diameter
	// may be smaller; see Instance.Diameter.
	D int
}

// Alpha returns the community's player fraction |members|/n.
func (c Community) Alpha(n int) float64 {
	return float64(len(c.Members)) / float64(n)
}

// Instance is a complete ground-truth preference matrix together with
// the planted structure that generated it.
type Instance struct {
	// Name identifies the generator and parameters (for reports).
	Name string
	// N is the number of players, M the number of objects.
	N, M int
	// Truth holds each player's hidden preference vector.
	Truth []bitvec.Vector
	// Communities lists planted typical sets, largest first.
	Communities []Community
	// Seed reproduces the instance.
	Seed uint64
}

// Grade returns player p's true grade for object o — the value a probe
// reveals.
func (in *Instance) Grade(p, o int) byte { return in.Truth[p].Get(o) }

// Vector returns player p's full hidden preference vector.
func (in *Instance) Vector(p int) bitvec.Vector { return in.Truth[p] }

// Diameter computes the exact pairwise Hamming diameter of the given
// player set. It is quadratic in len(players); use on communities, not
// on the full instance, for large n.
func (in *Instance) Diameter(players []int) int {
	d := 0
	for i := 0; i < len(players); i++ {
		for j := i + 1; j < len(players); j++ {
			if dd := in.Truth[players[i]].Dist(in.Truth[players[j]]); dd > d {
				d = dd
			}
		}
	}
	return d
}

// MaxErr returns max_p dist(out[p], truth[p]) over the given player set —
// the paper's discrepancy Δ. Outputs may contain '?', which counts as an
// error when it hides a coordinate (we charge Fill(0) semantics: an
// unknown coordinate that should be 1 is an error, matching the paper's
// remark that ? entries "may be set to 0").
func (in *Instance) MaxErr(players []int, out []bitvec.Partial) int {
	worst := 0
	for _, p := range players {
		if e := in.Err(p, out[p]); e > worst {
			worst = e
		}
	}
	return worst
}

// Err returns dist(w, v(p)) for player p's output w, with ? filled by 0.
func (in *Instance) Err(p int, w bitvec.Partial) int {
	return w.Fill(0).Dist(in.Truth[p])
}

func check(n, m int, alpha float64) {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("prefs: invalid dimensions n=%d m=%d", n, m))
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("prefs: alpha %v out of (0,1]", alpha))
	}
}

// pickMembers chooses round(alpha*n) distinct players. The member set is
// a random subset so community membership is uncorrelated with player id.
func pickMembers(r *rng.Rand, n int, alpha float64) []int {
	k := int(alpha*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	members := append([]int(nil), perm[:k]...)
	return members
}

// Identical builds an instance whose planted community of ≥ αn players
// all share one uniformly random preference vector; every other player
// is uniformly random.
func Identical(n, m int, alpha float64, seed uint64) *Instance {
	check(n, m, alpha)
	src := rng.NewSource(seed)
	r := src.Stream("identical", 0)
	center := bitvec.Random(r, m)
	in := &Instance{
		Name: fmt.Sprintf("identical(n=%d,m=%d,a=%.3g)", n, m, alpha),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	members := pickMembers(r, n, alpha)
	inComm := make([]bool, n)
	for _, p := range members {
		inComm[p] = true
	}
	for p := 0; p < n; p++ {
		if inComm[p] {
			in.Truth[p] = center
		} else {
			in.Truth[p] = bitvec.Random(r, m)
		}
	}
	in.Communities = []Community{{Members: members, Center: center, D: 0}}
	return in
}

// Planted builds an instance with one (α,D)-typical set: members are the
// center with at most D/2 random coordinate flips each, so the pairwise
// diameter is at most D. Outsiders are uniformly random.
func Planted(n, m int, alpha float64, d int, seed uint64) *Instance {
	check(n, m, alpha)
	if d < 0 || d > m {
		panic(fmt.Sprintf("prefs: D=%d out of [0,%d]", d, m))
	}
	src := rng.NewSource(seed)
	r := src.Stream("planted", 0)
	center := bitvec.Random(r, m)
	in := &Instance{
		Name: fmt.Sprintf("planted(n=%d,m=%d,a=%.3g,D=%d)", n, m, alpha, d),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	members := pickMembers(r, n, alpha)
	inComm := make([]bool, n)
	for _, p := range members {
		inComm[p] = true
	}
	radius := d / 2
	for p := 0; p < n; p++ {
		if inComm[p] {
			v := center.Clone()
			if radius > 0 {
				v.FlipRandom(r, r.Intn(radius+1))
			}
			in.Truth[p] = v
		} else {
			in.Truth[p] = bitvec.Random(r, m)
		}
	}
	in.Communities = []Community{{Members: members, Center: center, D: d}}
	return in
}

// CommunitySpec describes one planted community for MultiCommunity.
type CommunitySpec struct {
	Alpha float64 // player fraction
	D     int     // diameter bound
}

// MultiCommunity builds an instance with several disjoint planted
// communities (centers independently random, so distinct communities are
// far apart w.h.p.). Fractions must sum to at most 1; leftover players
// are uniformly random.
func MultiCommunity(n, m int, specs []CommunitySpec, seed uint64) *Instance {
	if n <= 0 || m <= 0 {
		panic("prefs: invalid dimensions")
	}
	var total float64
	for _, s := range specs {
		if s.Alpha <= 0 || s.D < 0 || s.D > m {
			panic("prefs: invalid community spec")
		}
		total += s.Alpha
	}
	if total > 1+1e-9 {
		panic("prefs: community fractions exceed 1")
	}
	src := rng.NewSource(seed)
	r := src.Stream("multi", 0)
	in := &Instance{
		Name: fmt.Sprintf("multi(n=%d,m=%d,k=%d)", n, m, len(specs)),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	perm := r.Perm(n)
	next := 0
	for _, s := range specs {
		k := int(s.Alpha*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if next+k > n {
			k = n - next
		}
		members := append([]int(nil), perm[next:next+k]...)
		next += k
		center := bitvec.Random(r, m)
		radius := s.D / 2
		for _, p := range members {
			v := center.Clone()
			if radius > 0 {
				v.FlipRandom(r, r.Intn(radius+1))
			}
			in.Truth[p] = v
		}
		in.Communities = append(in.Communities, Community{Members: members, Center: center, D: s.D})
	}
	for ; next < n; next++ {
		in.Truth[perm[next]] = bitvec.Random(r, m)
	}
	return in
}

// AdversarialVoteSplit plants an (α,D)-typical community and fills the
// remaining players with colluding blocks: each block shares a single
// far vector (at distance ≥ max(2D+2, m/2) from the community center).
// Block size is 60% of the community — large enough to pass the α/2
// vote thresholds inside ZeroRadius (stressing Select-based vote
// disambiguation and Coalesce uniqueness), and enough blocks that on a
// constant fraction of coordinates the blocks' combined mass out-votes
// the community, defeating global-majority prediction.
func AdversarialVoteSplit(n, m int, alpha float64, d int, seed uint64) *Instance {
	check(n, m, alpha)
	src := rng.NewSource(seed)
	r := src.Stream("advsplit", 0)
	center := bitvec.Random(r, m)
	in := &Instance{
		Name: fmt.Sprintf("advsplit(n=%d,m=%d,a=%.3g,D=%d)", n, m, alpha, d),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	members := pickMembers(r, n, alpha)
	inComm := make([]bool, n)
	for _, p := range members {
		inComm[p] = true
	}
	radius := d / 2
	for _, p := range members {
		v := center.Clone()
		if radius > 0 {
			v.FlipRandom(r, r.Intn(radius+1))
		}
		in.Truth[p] = v
	}
	// Colluding outsider blocks: far from the center, sized so that a
	// few aligned blocks out-vote the community on a coordinate.
	blockSize := (len(members)*3 + 4) / 5
	if blockSize < 1 {
		blockSize = 1
	}
	sep := 2*d + 2
	if sep < m/2 {
		sep = m / 2
	}
	if sep > m {
		sep = m
	}
	var block bitvec.Vector
	filled := 0
	for p := 0; p < n; p++ {
		if inComm[p] {
			continue
		}
		if filled%blockSize == 0 {
			block = center.Clone()
			block.FlipRandom(r, sep)
		}
		in.Truth[p] = block
		filled++
	}
	in.Communities = []Community{{Members: members, Center: center, D: d}}
	return in
}

// TypesMixture is the generative model of the non-interactive literature:
// k canonical type vectors; each player copies a uniform type and flips
// every coordinate independently with probability noise.
// No community metadata is planted (the realized diameter of a type's
// players concentrates around 2·noise·m).
func TypesMixture(n, m, k int, noise float64, seed uint64) *Instance {
	if k <= 0 || noise < 0 || noise > 0.5 {
		panic("prefs: invalid mixture parameters")
	}
	src := rng.NewSource(seed)
	r := src.Stream("mixture", 0)
	types := make([]bitvec.Vector, k)
	for i := range types {
		types[i] = bitvec.Random(r, m)
	}
	in := &Instance{
		Name: fmt.Sprintf("mixture(n=%d,m=%d,k=%d,p=%.3g)", n, m, k, noise),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	memberOf := make([][]int, k)
	for p := 0; p < n; p++ {
		t := r.Intn(k)
		memberOf[t] = append(memberOf[t], p)
		v := types[t].Clone()
		for o := 0; o < m; o++ {
			if r.Float64() < noise {
				v.Flip(o)
			}
		}
		in.Truth[p] = v
	}
	for t := 0; t < k; t++ {
		if len(memberOf[t]) == 0 {
			continue
		}
		in.Communities = append(in.Communities, Community{
			Members: memberOf[t],
			Center:  types[t],
			D:       in.Diameter(memberOf[t]),
		})
	}
	return in
}

// FromVectors wraps explicit preference vectors into an Instance (used
// by tests and by callers embedding their own data). All vectors must
// share one length. No community metadata is attached.
func FromVectors(vs []bitvec.Vector) *Instance {
	if len(vs) == 0 {
		panic("prefs: FromVectors with no players")
	}
	m := vs[0].Len()
	for i, v := range vs {
		if v.Len() != m {
			panic(fmt.Sprintf("prefs: vector %d has length %d, want %d", i, v.Len(), m))
		}
	}
	return &Instance{
		Name: fmt.Sprintf("explicit(n=%d,m=%d)", len(vs), m),
		N:    len(vs), M: m,
		Truth: vs,
	}
}

// UniformRandom builds an instance with every preference vector uniform
// and independent — the unstructured floor where no collaboration helps.
func UniformRandom(n, m int, seed uint64) *Instance {
	if n <= 0 || m <= 0 {
		panic("prefs: invalid dimensions")
	}
	r := rng.NewSource(seed).Stream("uniform", 0)
	in := &Instance{
		Name: fmt.Sprintf("uniform(n=%d,m=%d)", n, m),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	for p := 0; p < n; p++ {
		in.Truth[p] = bitvec.Random(r, m)
	}
	return in
}

// SharedLikes builds the one-good-object instance of the paper's
// reference [4]: a community of ≥ alpha·n players who like exactly the
// same small set of `liked` objects (their vectors are 1 on that set, 0
// elsewhere), while every outsider likes `outsiderLikes` random objects
// of its own. With liked ≪ m, random probing needs Θ(m/liked) probes per
// player, while recommendation sharing needs O(m/n + log n) rounds.
func SharedLikes(n, m int, alpha float64, liked, outsiderLikes int, seed uint64) *Instance {
	check(n, m, alpha)
	if liked < 1 || liked > m || outsiderLikes < 0 || outsiderLikes > m {
		panic(fmt.Sprintf("prefs: invalid liked counts %d/%d", liked, outsiderLikes))
	}
	src := rng.NewSource(seed)
	r := src.Stream("sharedlikes", 0)
	in := &Instance{
		Name: fmt.Sprintf("sharedlikes(n=%d,m=%d,a=%.3g,L=%d)", n, m, alpha, liked),
		N:    n, M: m,
		Truth: make([]bitvec.Vector, n),
		Seed:  seed,
	}
	center := bitvec.New(m)
	perm := r.Perm(m)
	for _, o := range perm[:liked] {
		center.Set(o, 1)
	}
	members := pickMembers(r, n, alpha)
	inComm := make([]bool, n)
	for _, p := range members {
		inComm[p] = true
	}
	for p := 0; p < n; p++ {
		if inComm[p] {
			in.Truth[p] = center
			continue
		}
		v := bitvec.New(m)
		op := r.Perm(m)
		for _, o := range op[:outsiderLikes] {
			v.Set(o, 1)
		}
		in.Truth[p] = v
	}
	in.Communities = []Community{{Members: members, Center: center, D: 0}}
	return in
}
