package prefs

import "testing"

func TestBestDIdenticalCommunity(t *testing.T) {
	in := Identical(100, 200, 0.4, 21)
	c := in.Communities[0]
	p := c.Members[0]
	// 40 players share p's vector: for α ≤ 0.4, D_p(α) = 0.
	if d := in.BestD(p, 0.4); d != 0 {
		t.Fatalf("BestD(0.4) = %d, want 0", d)
	}
	if d := in.BestD(p, 0.3); d != 0 {
		t.Fatalf("BestD(0.3) = %d, want 0", d)
	}
	// asking for more than the community forces distant players in
	if d := in.BestD(p, 0.9); d <= 0 {
		t.Fatalf("BestD(0.9) = %d, want > 0", d)
	}
}

func TestBestDMonotoneInAlpha(t *testing.T) {
	in := Planted(80, 120, 0.5, 10, 22)
	p := in.Communities[0].Members[0]
	prev := -1
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		d := in.BestD(p, a)
		if d < prev {
			t.Fatalf("BestD not monotone: alpha=%v d=%d prev=%d", a, d, prev)
		}
		prev = d
	}
}

func TestBestDSelfOnly(t *testing.T) {
	in := UniformRandom(10, 50, 23)
	// tiny alpha → community of 1 → distance 0 (yourself)
	if d := in.BestD(3, 0.05); d != 0 {
		t.Fatalf("BestD tiny alpha = %d", d)
	}
}

func TestBestCommunityContainsSelfAndBounds(t *testing.T) {
	in := Planted(60, 100, 0.5, 8, 24)
	p := in.Communities[0].Members[0]
	members := in.BestCommunity(p, 8)
	foundSelf := false
	for _, q := range members {
		if q == p {
			foundSelf = true
		}
		if in.Truth[p].Dist(in.Truth[q]) > 8 {
			t.Fatalf("member %d outside radius", q)
		}
	}
	if !foundSelf {
		t.Fatal("BestCommunity excludes self")
	}
	// radius 0 community of a planted member includes at least itself
	if len(in.BestCommunity(p, 0)) < 1 {
		t.Fatal("empty radius-0 community")
	}
	// consistency with BestD: community at BestD(α) has ≥ αn members
	alpha := 0.5
	d := in.BestD(p, alpha)
	if got := len(in.BestCommunity(p, d)); got < int(alpha*60) {
		t.Fatalf("community at BestD has %d members", got)
	}
}

func TestCommunityOf(t *testing.T) {
	in := MultiCommunity(60, 80, []CommunitySpec{{Alpha: 0.3, D: 0}, {Alpha: 0.3, D: 4}}, 25)
	for ci, c := range in.Communities {
		for _, p := range c.Members {
			if got := in.CommunityOf(p); got != ci {
				t.Fatalf("CommunityOf(%d) = %d, want %d", p, got, ci)
			}
		}
	}
	// a player outside all communities
	inAny := map[int]bool{}
	for _, c := range in.Communities {
		for _, p := range c.Members {
			inAny[p] = true
		}
	}
	for p := 0; p < in.N; p++ {
		if !inAny[p] {
			if in.CommunityOf(p) != -1 {
				t.Fatalf("outsider %d assigned to a community", p)
			}
			break
		}
	}
}
