package prefs

import (
	"bytes"
	"strings"
	"testing"
)

func sameInstance(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.N != b.N || a.M != b.M || a.Seed != b.Seed || a.Name != b.Name {
		t.Fatalf("headers differ: %v/%v", a.Name, b.Name)
	}
	for p := 0; p < a.N; p++ {
		if !a.Truth[p].Equal(b.Truth[p]) {
			t.Fatalf("row %d differs", p)
		}
	}
	if len(a.Communities) != len(b.Communities) {
		t.Fatalf("community counts %d vs %d", len(a.Communities), len(b.Communities))
	}
	for i := range a.Communities {
		ca, cb := a.Communities[i], b.Communities[i]
		if ca.D != cb.D || !ca.Center.Equal(cb.Center) || len(ca.Members) != len(cb.Members) {
			t.Fatalf("community %d differs", i)
		}
		for j := range ca.Members {
			if ca.Members[j] != cb.Members[j] {
				t.Fatalf("community %d member %d differs", i, j)
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := Planted(60, 130, 0.4, 8, 42)
	var buf bytes.Buffer
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, in, got)
}

func TestBinaryRoundTripMultiCommunity(t *testing.T) {
	in := MultiCommunity(50, 64, []CommunitySpec{{Alpha: 0.3, D: 4}, {Alpha: 0.2, D: 0}}, 7)
	var buf bytes.Buffer
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, in, got)
}

func TestBinaryCompact(t *testing.T) {
	in := UniformRandom(256, 256, 9)
	var buf bytes.Buffer
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	// ~n·m/8 bytes plus small header
	if buf.Len() > 256*256/8+256 {
		t.Fatalf("binary form is %d bytes, not compact", buf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not an instance file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	in := Planted(20, 40, 0.5, 4, 1)
	var buf bytes.Buffer
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{9, 20, buf.Len() / 2, buf.Len() - 3} {
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsHugeDims(t *testing.T) {
	// craft a header with an absurd n
	var buf bytes.Buffer
	in := Planted(4, 8, 0.5, 2, 1)
	if err := in.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for i := 8; i < 16; i++ {
		b[i] = 0xff // n = 2^64-1
	}
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("absurd dimension accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := AdversarialVoteSplit(30, 48, 0.3, 4, 11)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameInstance(t, in, got)
}

func TestJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"n":2,"m":3,"rows":["010"]}`, // row count mismatch
		`{"n":1,"m":3,"rows":["01"]}`,  // row length mismatch
		`{"n":1,"m":2,"rows":["0x"]}`,  // bad character
		`{"n":0,"m":0,"rows":[]}`,      // empty
		`{"n":1,"m":2,"rows":["01"],"communities":[{"members":[5],"d":0,"center":"01"}]}`, // member range
		`{"n":1,"m":2,"rows":["01"],"communities":[{"members":[0],"d":0,"center":"0"}]}`,  // center length
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted: %s", i, c)
		}
	}
}

func TestJSONIsGreppable(t *testing.T) {
	in := Identical(3, 4, 1.0, 5)
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"rows"`, `"communities"`, in.Truth[0].String()} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkBinaryWrite1024(b *testing.B) {
	in := Planted(1024, 1024, 0.5, 8, 1)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = in.WriteBinary(&buf)
	}
}

func BenchmarkBinaryRead1024(b *testing.B) {
	in := Planted(1024, 1024, 0.5, 8, 1)
	var buf bytes.Buffer
	_ = in.WriteBinary(&buf)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ReadBinary(bytes.NewReader(data))
	}
}
