package prefs

import "testing"

func TestDriftCommunityCoherent(t *testing.T) {
	in := Identical(60, 200, 0.5, 50)
	out := Drift(in, 10, 0, 51)
	c := in.Communities[0]
	oc := out.Communities[0]
	// members still identical to the NEW center
	for _, p := range oc.Members {
		if !out.Truth[p].Equal(oc.Center) {
			t.Fatalf("member %d diverged from drifted center", p)
		}
	}
	// the center moved by exactly 10
	if d := c.Center.Dist(oc.Center); d != 10 {
		t.Fatalf("center moved %d, want 10", d)
	}
	// diameter still 0 (no player flips)
	if d := out.Diameter(oc.Members); d != 0 {
		t.Fatalf("diameter %d after coherent drift", d)
	}
	// original instance untouched
	for _, p := range c.Members {
		if !in.Truth[p].Equal(c.Center) {
			t.Fatal("Drift mutated the source instance")
		}
	}
}

func TestDriftPlayerFlipsBoundDiameter(t *testing.T) {
	in := Planted(80, 200, 0.5, 6, 52)
	out := Drift(in, 4, 3, 53)
	oc := out.Communities[0]
	if oc.D != 6+2*3 {
		t.Fatalf("declared D = %d", oc.D)
	}
	if got := out.Diameter(oc.Members); got > oc.D {
		t.Fatalf("realized diameter %d > declared %d", got, oc.D)
	}
}

func TestDriftOutsidersAlsoDrift(t *testing.T) {
	in := Identical(40, 300, 0.5, 54)
	out := Drift(in, 0, 5, 55)
	moved := 0
	for p := 0; p < in.N; p++ {
		if !in.Truth[p].Equal(out.Truth[p]) {
			moved++
		}
	}
	if moved < in.N/2 {
		t.Fatalf("only %d/%d players drifted", moved, in.N)
	}
}

func TestDriftZeroIsCopy(t *testing.T) {
	in := Planted(20, 50, 0.5, 4, 56)
	out := Drift(in, 0, 0, 57)
	for p := 0; p < in.N; p++ {
		if !in.Truth[p].Equal(out.Truth[p]) {
			t.Fatal("zero drift changed vectors")
		}
	}
	// but it is a deep copy
	out.Truth[0].Flip(0)
	if in.Truth[0].Get(0) == out.Truth[0].Get(0) {
		t.Fatal("not a deep copy")
	}
}

func TestDriftValidation(t *testing.T) {
	in := Planted(8, 16, 0.5, 2, 58)
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {17, 0}, {0, 17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("drift %v accepted", bad)
				}
			}()
			Drift(in, bad[0], bad[1], 1)
		}()
	}
}
