package prefs

import (
	"fmt"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// Drift models the paper's motivating "time-variable factors (noise,
// weather, mood)": it returns a copy of the instance in which the world
// has moved. For each community, `communityFlips` shared coordinates
// flip in the center and in every member's vector (the community's
// taste shifts coherently); additionally every player — member or
// outsider — suffers up to `playerFlips` idiosyncratic flips of its
// own. Community diameter bounds grow by at most 2·playerFlips.
//
// Algorithms re-run on the drifted instance to measure re-convergence
// cost (experiment E17).
func Drift(in *Instance, communityFlips, playerFlips int, seed uint64) *Instance {
	if communityFlips < 0 || playerFlips < 0 {
		panic("prefs: negative drift")
	}
	if communityFlips > in.M || playerFlips > in.M {
		panic(fmt.Sprintf("prefs: drift exceeds m=%d", in.M))
	}
	r := rng.NewSource(seed).Stream("drift", 0)
	out := &Instance{
		Name: in.Name + fmt.Sprintf("+drift(%d,%d)", communityFlips, playerFlips),
		N:    in.N, M: in.M,
		Seed:  seed,
		Truth: make([]bitvec.Vector, in.N),
	}
	for p := 0; p < in.N; p++ {
		out.Truth[p] = in.Truth[p].Clone()
	}
	for _, c := range in.Communities {
		// shared coherent shift
		shift := make([]int, 0, communityFlips)
		perm := r.Perm(in.M)
		shift = append(shift, perm[:communityFlips]...)
		center := c.Center.Clone()
		for _, o := range shift {
			center.Flip(o)
		}
		for _, p := range c.Members {
			for _, o := range shift {
				out.Truth[p].Flip(o)
			}
		}
		out.Communities = append(out.Communities, Community{
			Members: append([]int(nil), c.Members...),
			Center:  center,
			D:       c.D + 2*playerFlips,
		})
	}
	if playerFlips > 0 {
		for p := 0; p < in.N; p++ {
			out.Truth[p].FlipRandom(r, r.Intn(playerFlips+1))
		}
	}
	return out
}
