package prefs

import "sort"

// BestD returns D_p(α) from Section 6: the minimal D such that at least
// an α fraction of all players lie within Hamming distance D of player
// p. This is ground-truth analysis (it reads the hidden matrix), used to
// evaluate how close an algorithm's output quality comes to the best
// community available to each player.
func (in *Instance) BestD(p int, alpha float64) int {
	k := int(alpha * float64(in.N))
	if k < 1 {
		k = 1
	}
	if k > in.N {
		k = in.N
	}
	dists := make([]int, in.N)
	for q := 0; q < in.N; q++ {
		dists[q] = in.Truth[p].Dist(in.Truth[q])
	}
	sort.Ints(dists)
	return dists[k-1] // p itself contributes distance 0
}

// BestCommunity returns the players within distance d of player p —
// the tightest available collaborators at radius d.
func (in *Instance) BestCommunity(p, d int) []int {
	var members []int
	for q := 0; q < in.N; q++ {
		if in.Truth[p].Dist(in.Truth[q]) <= d {
			members = append(members, q)
		}
	}
	return members
}

// CommunityOf returns the index of the planted community containing
// player p, or -1.
func (in *Instance) CommunityOf(p int) int {
	for ci, c := range in.Communities {
		for _, q := range c.Members {
			if q == p {
				return ci
			}
		}
	}
	return -1
}
