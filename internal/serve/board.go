package serve

import (
	"sort"
	"sync"

	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
)

// probeClearer is the admin surface for releasing a player's probe
// storage, implemented by billboard.Board, netboard.Client and
// netboard.Cluster (it is deliberately not part of the algorithm-facing
// boardclient.Interface).
type probeClearer interface {
	ClearProbes(p int, objs []int)
}

// trackingBoard wraps the serving board for the duration of one epoch
// and records every topic name the algorithms post under, so cleanup
// can drop the epoch's scratch topics afterwards — on success (where
// the algorithms already dropped their own; re-dropping is a no-op) and
// on abort (where a leaked topic would otherwise collide with a later
// epoch reusing the same deterministic tag).
//
// It intentionally does not forward the in-memory board's optional
// fast-path interfaces (TopicRef posting, HintPosts): the algorithms
// fall back to name-based posting, which is the path every remote
// transport uses anyway.
type trackingBoard struct {
	boardclient.Interface

	mu    sync.Mutex
	names map[string]struct{}
}

func (t *trackingBoard) record(name string) {
	t.mu.Lock()
	if t.names == nil {
		t.names = make(map[string]struct{})
	}
	t.names[name] = struct{}{}
	t.mu.Unlock()
}

// Post records the topic before delegating.
func (t *trackingBoard) Post(name string, player int, v bitvec.Partial) {
	t.record(name)
	t.Interface.Post(name, player, v)
}

// PostVector records the topic before delegating.
func (t *trackingBoard) PostVector(name string, player int, v bitvec.Vector) {
	t.record(name)
	t.Interface.PostVector(name, player, v)
}

// PostValues records the topic before delegating.
func (t *trackingBoard) PostValues(name string, player int, vals []uint32) {
	t.record(name)
	t.Interface.PostValues(name, player, vals)
}

// cleanup drops every recorded topic on base — the unbound board, so
// cleanup still runs after the epoch's context died. Failures are
// swallowed: on the abort path the transport may be the very thing that
// failed, and a cleanup panic must not mask the epoch's real error.
func (t *trackingBoard) cleanup(base boardclient.Interface) {
	t.mu.Lock()
	names := make([]string, 0, len(t.names))
	for name := range t.names {
		names = append(names, name)
	}
	t.names = nil
	t.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		dropQuietly(base, name)
	}
}

func dropQuietly(b boardclient.Interface, name string) {
	defer func() { _ = recover() }()
	b.DropTopic(name)
}
