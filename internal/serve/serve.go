// Package serve is the online serving layer of the recommendation
// system: a long-lived Engine over one shared billboard where players
// join and leave dynamically and recommendations are answered from the
// latest completed epoch.
//
// The paper's algorithms are batch procedures over a fixed player set.
// The Engine lifts them to a service with three pieces:
//
//   - A sim.EpochScheduler holds the churn contract: Join and Leave only
//     enqueue; membership changes apply at epoch boundaries, so an epoch
//     always computes over a fixed member set (DESIGN.md §13).
//   - Each epoch runs one reconstruction over the current members — a
//     full unknown-D run, or the incremental Refresh repair seeded with
//     the previous epoch's outputs (joiners marked with zero-length
//     partials adopt a consensus group's repaired vector).
//   - Completed epochs publish an immutable Snapshot behind an atomic
//     pointer. The recommendation read path is one atomic load — no
//     RWMutex — and requests for players not yet covered wait on a
//     broadcast channel until the next epoch publishes, bounded by the
//     caller's context deadline.
//
// The Engine talks to its billboard only through boardclient.Interface,
// so the same serving loop runs against the in-process board, a single
// netboard server, or a sharded netboard.Cluster.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/boardclient"
	"tellme/internal/core"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
	"tellme/internal/telemetry"
)

// Typed failures of the serving API.
var (
	// ErrFull means Join was refused: every slot is reserved.
	ErrFull = errors.New("serve: at capacity")
	// ErrUnknownPlayer means the player id is not (or no longer) registered.
	ErrUnknownPlayer = errors.New("serve: unknown player")
	// ErrNotReady means no completed epoch covers the player yet and the
	// request's deadline expired before one did.
	ErrNotReady = errors.New("serve: no completed epoch for player")
)

// Config configures an Engine.
type Config struct {
	// M is the object universe size.
	M int
	// Capacity is the maximum number of concurrently registered players
	// (the board's player dimension).
	Capacity int
	// Alpha is the assumed community fraction handed to the algorithms.
	Alpha float64
	// Board is the billboard the epochs run against; nil builds a fresh
	// in-process board sized Capacity × M.
	Board boardclient.Interface
	// Seed makes the serving runs reproducible: two engines fed the same
	// churn/probe schedule compute identical epochs.
	Seed uint64
	// Parallelism bounds the phase worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Core overrides algorithm constants; nil means defaults.
	Core *core.Config
	// EpochTimeout bounds one epoch's wall-clock time; an epoch that
	// exceeds it aborts (the previous snapshot keeps serving). 0 = no
	// bound.
	EpochTimeout time.Duration
	// ExpectedDrift sizes Refresh's patch-verification budget.
	ExpectedDrift int
	// Telemetry, if non-nil, receives serving counters under "serve.*"
	// plus the usual core/probe instruments.
	Telemetry *telemetry.Registry
	// Logf, if non-nil, receives one line per aborted epoch.
	Logf func(format string, args ...any)
}

// Snapshot is one completed epoch's published state: the outputs of
// every member, keyed by external player id, plus quality stats graded
// against the members' registered preference vectors. Snapshots are
// immutable; the read path shares them freely.
type Snapshot struct {
	// Epoch is the completed epoch's 1-based number.
	Epoch int64
	// Refresh reports whether the epoch ran the incremental repair
	// instead of a full reconstruction.
	Refresh bool
	// Duration is the epoch's wall-clock compute time.
	Duration time.Duration
	// Outputs maps external player id → reconstructed w(p).
	Outputs map[uint64]bitvec.Partial
	// Stats grades Outputs against the registered preference vectors.
	Stats Stats
}

// Stats summarizes one epoch's reconstruction quality.
type Stats struct {
	// Members is the epoch's member count.
	Members int
	// MaxErr is the worst member's Hamming error (outputs filled with 0,
	// the paper's output convention).
	MaxErr int
	// MeanErr is the average member error.
	MeanErr float64
}

// slot is one reserved player slot: the registered ground-truth
// preferences and the external identity occupying it.
type slot struct {
	id      uint64
	truth   bitvec.Vector
	leaving bool
}

// Engine is the serving daemon's core: a player registry, the epoch
// loop, and the snapshot read path. All methods are safe for concurrent
// use; RunEpoch/Run must be called from exactly one goroutine (the
// epoch coordinator).
type Engine struct {
	cfg     Config
	coreCfg core.Config
	board   boardclient.Interface
	sched   *sim.EpochScheduler
	runner  *sim.Runner
	src     rng.Source
	objs    []int
	zero    bitvec.Vector

	mu    sync.Mutex
	slots map[int]*slot
	byID  map[uint64]int
	free  []int // ascending; lowest slot is reserved first (determinism)
	next  uint64
	last  []bitvec.Partial // slot-indexed outputs of the last completed epoch
	watch chan struct{}    // closed and replaced on every publish

	snap  atomic.Pointer[Snapshot]
	churn chan struct{} // size-1 wake signal for the Run loop

	tel struct {
		joins, leaves, epochs, aborts, recommends, waited *telemetry.Counter
		epoch, members                                    *telemetry.Gauge
		epochNs, recommendNs                              *telemetry.Histogram
	}
}

// New builds an Engine. The board (Config.Board or the in-process
// default) must be dimensioned for at least Capacity players and M
// objects.
func New(cfg Config) (*Engine, error) {
	if cfg.M <= 0 || cfg.Capacity <= 0 {
		return nil, fmt.Errorf("serve: invalid dimensions capacity=%d m=%d", cfg.Capacity, cfg.M)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("serve: alpha %v out of (0,1]", cfg.Alpha)
	}
	board := cfg.Board
	if board == nil {
		mem := billboard.New(cfg.Capacity, cfg.M)
		mem.SetTelemetry(cfg.Telemetry)
		board = mem
	}
	coreCfg := core.DefaultConfig()
	if cfg.Core != nil {
		coreCfg = *cfg.Core
	}
	e := &Engine{
		cfg:     cfg,
		coreCfg: coreCfg,
		board:   board,
		sched:   sim.NewEpochScheduler(),
		runner:  sim.NewRunner(cfg.Parallelism),
		src:     rng.NewSource(cfg.Seed),
		objs:    ints.Iota(cfg.M),
		zero:    bitvec.New(cfg.M),
		slots:   make(map[int]*slot),
		byID:    make(map[uint64]int),
		free:    ints.Iota(cfg.Capacity),
		watch:   make(chan struct{}),
		churn:   make(chan struct{}, 1),
	}
	if reg := cfg.Telemetry; reg != nil {
		e.tel.joins = reg.Counter("serve.joins")
		e.tel.leaves = reg.Counter("serve.leaves")
		e.tel.epochs = reg.Counter("serve.epochs.completed")
		e.tel.aborts = reg.Counter("serve.epochs.aborted")
		e.tel.recommends = reg.Counter("serve.recommend.served")
		e.tel.waited = reg.Counter("serve.recommend.waited")
		e.tel.epoch = reg.Gauge("serve.epoch")
		e.tel.members = reg.Gauge("serve.members")
		e.tel.epochNs = reg.Histogram("serve.epoch.ns", telemetry.LatencyBuckets())
		e.tel.recommendNs = reg.Histogram("serve.recommend.ns", telemetry.LatencyBucketsFine())
	}
	return e, nil
}

// Board returns the billboard the engine serves from.
func (e *Engine) Board() boardclient.Interface { return e.board }

// Join registers a player by its preference vector and returns the
// external id recommendations are requested under. The player
// participates from the next epoch boundary on; Recommend blocks (up to
// its deadline) until an epoch covering the player completes.
func (e *Engine) Join(truth bitvec.Vector) (uint64, error) {
	if truth.Len() != e.cfg.M {
		return 0, fmt.Errorf("serve: preference vector length %d, want %d", truth.Len(), e.cfg.M)
	}
	e.mu.Lock()
	if len(e.free) == 0 {
		e.mu.Unlock()
		return 0, ErrFull
	}
	s, id := e.reserveLocked(truth)
	e.mu.Unlock()
	e.sched.Join(s)
	e.tel.joins.Inc()
	e.wake()
	return id, nil
}

// reserveLocked takes the lowest free slot for truth and registers a
// fresh external id. Caller holds e.mu and has checked len(e.free) > 0.
func (e *Engine) reserveLocked(truth bitvec.Vector) (s int, id uint64) {
	s = e.free[0]
	e.free = e.free[1:]
	e.next++
	id = e.next
	e.slots[s] = &slot{id: id, truth: truth}
	e.byID[id] = s
	return s, id
}

// JoinBatch registers many players in one registry pass: one lock
// acquisition, one scheduler append, one coordinator wake — the bulk
// admission path a fleet driver needs so n joins don't cost n lock and
// churn-queue round trips. The batch is all-or-nothing: if any vector
// has the wrong length or fewer than len(truths) slots are free, no
// player is admitted and the error reports why. Ids are assigned in
// input order. All players in the batch participate from the next epoch
// boundary on, exactly as if Join had been called for each.
func (e *Engine) JoinBatch(truths []bitvec.Vector) ([]uint64, error) {
	for i, v := range truths {
		if v.Len() != e.cfg.M {
			return nil, fmt.Errorf("serve: preference vector %d length %d, want %d", i, v.Len(), e.cfg.M)
		}
	}
	if len(truths) == 0 {
		return nil, nil
	}
	ids := make([]uint64, len(truths))
	slots := make([]int, len(truths))
	e.mu.Lock()
	if len(e.free) < len(truths) {
		free := len(e.free)
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: batch of %d, %d slots free", ErrFull, len(truths), free)
	}
	for i, v := range truths {
		slots[i], ids[i] = e.reserveLocked(v)
	}
	e.mu.Unlock()
	e.sched.JoinAll(slots)
	e.tel.joins.Add(int64(len(truths)))
	e.wake()
	return ids, nil
}

// Leave retires the player at the next epoch boundary. An epoch already
// in flight still computes its output; the id stops resolving once the
// boundary applies. Leave is idempotent until then.
func (e *Engine) Leave(id uint64) error {
	e.mu.Lock()
	s, ok := e.byID[id]
	if !ok {
		e.mu.Unlock()
		return ErrUnknownPlayer
	}
	sl := e.slots[s]
	if sl.leaving {
		e.mu.Unlock()
		return nil
	}
	sl.leaving = true
	e.mu.Unlock()
	e.sched.Leave(s)
	e.tel.leaves.Inc()
	e.wake()
	return nil
}

// Players returns the number of registered players (including ones
// whose join or leave has not reached a boundary yet).
func (e *Engine) Players() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.slots)
}

// CompletedEpochs returns the number of completed epochs.
func (e *Engine) CompletedEpochs() int64 { return e.sched.CompletedEpochs() }

// Snapshot returns the latest completed epoch's published state (nil
// before the first epoch completes). This is the serving fast path: one
// atomic load, no locks.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// wake nudges the Run loop to schedule the next epoch early (pending
// churn should not wait out a full interval).
func (e *Engine) wake() {
	select {
	case e.churn <- struct{}{}:
	default:
	}
}

// watchCh returns the channel closed at the next publish. Grab it
// BEFORE loading the snapshot: publish stores first and closes second,
// so a waiter that saw the old snapshot after grabbing the channel is
// guaranteed a wakeup.
func (e *Engine) watchCh() <-chan struct{} {
	e.mu.Lock()
	ch := e.watch
	e.mu.Unlock()
	return ch
}

// Recommend returns the player's reconstructed preference vector from
// the latest completed epoch, along with the epoch number it came from.
// If no completed epoch covers the player yet (the player joined after
// the last boundary, or no epoch has completed at all), Recommend waits
// for the next publish, bounded by ctx's deadline — the per-request
// deadline contract of the serving daemon.
func (e *Engine) Recommend(ctx context.Context, id uint64) (bitvec.Partial, int64, error) {
	start := time.Now()
	waited := false
	for {
		ch := e.watchCh()
		e.mu.Lock()
		_, known := e.byID[id]
		e.mu.Unlock()
		if !known {
			return bitvec.Partial{}, 0, ErrUnknownPlayer
		}
		if s := e.snap.Load(); s != nil {
			if w, ok := s.Outputs[id]; ok {
				e.tel.recommends.Inc()
				if waited {
					e.tel.waited.Inc()
				}
				e.tel.recommendNs.ObserveSince(start)
				return w, s.Epoch, nil
			}
		}
		waited = true
		select {
		case <-ctx.Done():
			return bitvec.Partial{}, 0, fmt.Errorf("%w: %w", ErrNotReady, context.Cause(ctx))
		case <-ch:
		}
	}
}

// RunEpoch runs one epoch: applies pending churn at the boundary, frees
// retired slots (clearing their probe storage so a future occupant
// starts clean), computes the member outputs, and publishes the
// snapshot. An error (cancellation, transport failure, player panic)
// aborts the epoch — membership changes stand, no snapshot is
// published, and the previous snapshot keeps serving.
func (e *Engine) RunEpoch(ctx context.Context) (sim.EpochPlan, error) {
	plan, err := e.sched.Epoch(ctx, func(plan sim.EpochPlan) error {
		inst := e.applyBoundary(plan)
		start := time.Now()
		outs, refreshed, err := e.compute(ctx, inst, plan)
		if err != nil {
			e.tel.aborts.Inc()
			return err
		}
		took := time.Since(start)

		stats := Stats{Members: len(plan.Members)}
		outMap := make(map[uint64]bitvec.Partial, len(plan.Members))
		e.mu.Lock()
		e.last = outs
		for _, s := range plan.Members {
			sl := e.slots[s]
			if sl == nil {
				continue
			}
			outMap[sl.id] = outs[s]
			if outs[s].Len() == e.cfg.M {
				errP := inst.Err(s, outs[s])
				if errP > stats.MaxErr {
					stats.MaxErr = errP
				}
				stats.MeanErr += float64(errP)
			}
		}
		e.mu.Unlock()
		if stats.Members > 0 {
			stats.MeanErr /= float64(stats.Members)
		}
		e.publish(&Snapshot{
			Epoch:    plan.Epoch,
			Refresh:  refreshed,
			Duration: took,
			Outputs:  outMap,
			Stats:    stats,
		})
		e.tel.epochs.Inc()
		e.tel.epochNs.Observe(took.Nanoseconds())
		return nil
	})
	e.tel.epoch.Set(e.sched.CompletedEpochs())
	e.tel.members.Set(int64(len(plan.Members)))
	return plan, err
}

// applyBoundary finalizes the churn the scheduler applied at
// BeginEpoch: slots whose leave took effect (marked leaving and absent
// from the plan's member set) are released — identity unregistered,
// probe storage cleared, slot returned to the free list — and the
// epoch's ground-truth instance is built from the remaining
// registrations.
func (e *Engine) applyBoundary(plan sim.EpochPlan) *prefs.Instance {
	member := make(map[int]bool, len(plan.Members))
	for _, s := range plan.Members {
		member[s] = true
	}
	var freed []int
	vs := make([]bitvec.Vector, e.cfg.Capacity)
	for i := range vs {
		vs[i] = e.zero
	}
	e.mu.Lock()
	for s, sl := range e.slots {
		if sl.leaving && !member[s] {
			delete(e.slots, s)
			delete(e.byID, sl.id)
			freed = append(freed, s)
			if e.last != nil {
				e.last[s] = bitvec.Partial{}
			}
			continue
		}
		vs[s] = sl.truth
	}
	sort.Ints(freed)
	for _, s := range freed {
		i := sort.SearchInts(e.free, s)
		e.free = append(e.free, 0)
		copy(e.free[i+1:], e.free[i:])
		e.free[i] = s
	}
	e.mu.Unlock()
	// A released slot's probe results describe its former occupant's
	// preferences; clear them so the board never answers a future
	// occupant's probe from a stranger's grades. Every board transport
	// (in-process, single server, cluster) implements the admin op.
	if pc, ok := e.board.(probeClearer); ok {
		for _, s := range freed {
			pc.ClearProbes(s, e.objs)
		}
	}
	return prefs.FromVectors(vs)
}

// compute runs one epoch's reconstruction: a full unknown-D run when no
// usable previous outputs exist (first epoch, or more joiners than
// incumbents), the incremental Refresh repair otherwise (joiners carry
// the zero-length marker and adopt from the repaired consensus groups).
// Panics from the algorithm stack — cancellation, transport failure,
// player code — unwind to an error here, mirroring the batch facade.
func (e *Engine) compute(ctx context.Context, inst *prefs.Instance, plan sim.EpochPlan) (outs []bitvec.Partial, refreshed bool, err error) {
	epCtx := ctx
	if e.cfg.EpochTimeout > 0 {
		var cancel context.CancelFunc
		epCtx, cancel = context.WithTimeout(ctx, e.cfg.EpochTimeout)
		defer cancel()
	}
	// Track every topic the epoch posts so its scratch can be dropped
	// afterwards — success or abort — keeping the long-lived board from
	// accumulating phase topics (and keeping later epochs, whose
	// deterministic topic tags restart from #1, from colliding with a
	// leaked one).
	tb := &trackingBoard{Interface: boardclient.BindContext(epCtx, e.board)}
	defer tb.cleanup(e.board)

	defer func() {
		if rec := recover(); rec != nil {
			outs, refreshed = nil, false
			err = recoveredErr(rec)
		}
	}()

	epoch := int(plan.Epoch)
	var popts []probe.Option
	if epCtx.Done() != nil {
		popts = append(popts, probe.WithContext(epCtx))
	}
	engine := probe.NewEngine(inst, tb, e.src.Child("engine", epoch), popts...)
	env := core.NewEnv(engine, e.runner, e.src.Child("public", epoch), e.coreCfg)
	env.Telemetry = e.cfg.Telemetry

	if len(plan.Members) == 0 {
		return make([]bitvec.Partial, e.cfg.Capacity), false, nil
	}
	if stale := e.staleFor(plan.Members); stale != nil {
		red, maxP := core.RefreshBudget(e.cfg.ExpectedDrift)
		return core.Refresh(env, plan.Members, e.objs, stale, e.cfg.Alpha, red, maxP), true, nil
	}
	return core.UnknownDFor(env, e.cfg.Alpha, plan.Members, e.objs), false, nil
}

// staleFor builds Refresh's stale-output slice for the member set, or
// returns nil when a full run is warranted: no previous epoch, or
// joiners (members without a previous full-length output) outnumbering
// incumbents — too little consensus mass to repair from.
func (e *Engine) staleFor(members []int) []bitvec.Partial {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last == nil {
		return nil
	}
	stale := make([]bitvec.Partial, e.cfg.Capacity)
	joiners := 0
	for _, s := range members {
		if e.last[s].Len() != e.cfg.M {
			joiners++ // keeps the zero-length joiner marker
			continue
		}
		stale[s] = e.last[s]
	}
	if joiners*2 > len(members) {
		return nil
	}
	return stale
}

// publish installs the snapshot and wakes every waiting Recommend.
// Store-then-close pairs with watchCh's grab-then-load.
func (e *Engine) publish(s *Snapshot) {
	e.snap.Store(s)
	e.mu.Lock()
	close(e.watch)
	e.watch = make(chan struct{})
	e.mu.Unlock()
}

// Run is the epoch coordinator loop: one epoch per interval, scheduled
// early when churn is pending. Aborted epochs are logged and the loop
// continues — the previous snapshot keeps serving. Run returns when ctx
// is cancelled.
func (e *Engine) Run(ctx context.Context, every time.Duration) error {
	if every <= 0 {
		every = time.Second
	}
	for {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		if _, err := e.RunEpoch(ctx); err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			e.logf("serve: epoch aborted: %v", err)
		}
		timer := time.NewTimer(every)
		select {
		case <-ctx.Done():
			timer.Stop()
			return context.Cause(ctx)
		case <-timer.C:
		case <-e.churn:
			timer.Stop()
		}
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// recoveredErr maps a recovered algorithm panic to an error, mirroring
// the batch facade's asRunError.
func recoveredErr(rec any) error {
	switch v := rec.(type) {
	case *core.Abort:
		return v.Err
	case *probe.Canceled:
		return v.Cause
	case error:
		return v
	default:
		return &sim.PanicError{Value: rec}
	}
}
