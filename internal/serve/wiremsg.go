package serve

import "tellme/internal/wire"

// Binary wire-tag space of the serving front (0x20+; netboard owns
// 0x01–0x1f). Tags are wire contract — never renumber, only append.
//
// The serve structs keep their vector fields as plain strings (the
// curl-facing shape); in binary they travel through the dual-mode
// AppendBitsString encoding — packed planes when the string is a valid
// vector, raw otherwise — so handler-side validation semantics are
// identical across codecs. errorReply stays JSON under every codec:
// errors are rare, and a curl user mid-experiment always gets readable
// output.
const (
	tagJoinRequest byte = 0x20 + iota
	tagBatchJoinRequest
	tagJoinReply
	tagBatchJoinReply
	tagRecommendReply
	tagStatusReply
)

func (*joinRequest) WireTag() byte { return tagJoinRequest }

func (j *joinRequest) AppendBinary(dst []byte) []byte {
	return wire.AppendBitsString(dst, j.Bits)
}

func (j *joinRequest) DecodeBinary(r *wire.Reader) { j.Bits = r.BitsString() }

func (*batchJoinRequest) WireTag() byte { return tagBatchJoinRequest }

func (b *batchJoinRequest) AppendBinary(dst []byte) []byte {
	if b.Players == nil {
		return wire.AppendUint(dst, 0)
	}
	dst = wire.AppendUint(dst, uint64(len(b.Players))+1)
	for _, p := range b.Players {
		dst = wire.AppendBitsString(dst, p.Bits)
	}
	return dst
}

func (b *batchJoinRequest) DecodeBinary(r *wire.Reader) {
	b.Players = nil
	n := r.Uint()
	if n == 0 {
		return
	}
	b.Players = make([]joinRequest, 0, sliceCap(n-1, 2))
	for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
		b.Players = append(b.Players, joinRequest{Bits: r.BitsString()})
	}
}

func (*joinReply) WireTag() byte { return tagJoinReply }

func (j *joinReply) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, j.ID)
	return wire.AppendUint(dst, uint64(j.Epoch))
}

func (j *joinReply) DecodeBinary(r *wire.Reader) {
	j.ID = r.Uint()
	j.Epoch = int64(r.Uint())
}

func (*batchJoinReply) WireTag() byte { return tagBatchJoinReply }

func (b *batchJoinReply) AppendBinary(dst []byte) []byte {
	if b.IDs == nil {
		dst = wire.AppendUint(dst, 0)
	} else {
		dst = wire.AppendUint(dst, uint64(len(b.IDs))+1)
		for _, id := range b.IDs {
			dst = wire.AppendUint(dst, id)
		}
	}
	return wire.AppendUint(dst, uint64(b.Epoch))
}

func (b *batchJoinReply) DecodeBinary(r *wire.Reader) {
	b.IDs = nil
	if n := r.Uint(); n != 0 {
		b.IDs = make([]uint64, 0, sliceCap(n-1, 1))
		for i := uint64(0); i < n-1 && r.Err() == nil; i++ {
			b.IDs = append(b.IDs, r.Uint())
		}
	}
	b.Epoch = int64(r.Uint())
}

func (*recommendReply) WireTag() byte { return tagRecommendReply }

func (rr *recommendReply) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, rr.ID)
	dst = wire.AppendUint(dst, uint64(rr.Epoch))
	return wire.AppendBitsString(dst, rr.Bits)
}

func (rr *recommendReply) DecodeBinary(r *wire.Reader) {
	rr.ID = r.Uint()
	rr.Epoch = int64(r.Uint())
	rr.Bits = r.BitsString()
}

func (*statusReply) WireTag() byte { return tagStatusReply }

func (s *statusReply) AppendBinary(dst []byte) []byte {
	dst = wire.AppendUint(dst, uint64(s.Epoch))
	dst = wire.AppendUint(dst, uint64(s.Players))
	dst = wire.AppendUint(dst, uint64(s.Members))
	dst = wire.AppendUint(dst, uint64(s.Capacity))
	dst = wire.AppendUint(dst, uint64(s.M))
	dst = wire.AppendUint(dst, uint64(s.Pending))
	dst = wire.AppendBool(dst, s.Refresh)
	dst = wire.AppendUint(dst, uint64(s.MaxErr))
	dst = wire.AppendFloat(dst, s.MeanErr)
	return wire.AppendUint(dst, uint64(s.EpochMillis))
}

func (s *statusReply) DecodeBinary(r *wire.Reader) {
	s.Epoch = int64(r.Uint())
	s.Players = r.Int()
	s.Members = r.Int()
	s.Capacity = r.Int()
	s.M = r.Int()
	s.Pending = r.Int()
	s.Refresh = r.Bool()
	s.MaxErr = r.Int()
	s.MeanErr = r.Float()
	s.EpochMillis = int64(r.Uint())
}

// sliceCap bounds a decode pre-allocation by what the payload could
// possibly back (count elements of at least minBytes each), so a
// hostile count in a short frame cannot reserve memory it cannot fill.
func sliceCap(count uint64, minBytes int) int {
	const preallocLimit = 1 << 16
	if count > preallocLimit/uint64(minBytes) {
		return preallocLimit / minBytes
	}
	return int(count)
}
