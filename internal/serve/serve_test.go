package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
)

// vec parses a '0'/'1' string into a Vector.
func vec(t *testing.T, bits string) bitvec.Vector {
	t.Helper()
	v, err := vectorFromBits(bits, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// twoCommunities returns 2k preference vectors: k copies of a, k of b.
func twoCommunities(t *testing.T, k, m int) []bitvec.Vector {
	t.Helper()
	a := strings.Repeat("10", m/2)
	b := strings.Repeat("01", m/2)
	out := make([]bitvec.Vector, 0, 2*k)
	for i := 0; i < k; i++ {
		out = append(out, vec(t, a), vec(t, b))
	}
	return out
}

func newEngine(t *testing.T, capacity, m int) *Engine {
	t.Helper()
	e, err := New(Config{M: m, Capacity: capacity, Alpha: 0.4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEpochLifecycleAndRecommend(t *testing.T) {
	e := newEngine(t, 8, 32)
	vs := twoCommunities(t, 3, 32)
	ids := make([]uint64, len(vs))
	for i, v := range vs {
		id, err := e.Join(v)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap == nil || snap.Epoch != 1 {
		t.Fatalf("snapshot after first epoch: %+v", snap)
	}
	if snap.Refresh {
		t.Fatal("first epoch must be a full run, not a refresh")
	}
	if snap.Stats.Members != len(vs) {
		t.Fatalf("members = %d, want %d", snap.Stats.Members, len(vs))
	}
	// Identical-community instance: everyone reconstructs exactly.
	if snap.Stats.MaxErr != 0 {
		t.Fatalf("max err = %d over identical communities, want 0", snap.Stats.MaxErr)
	}
	for i, id := range ids {
		out, epoch, err := e.Recommend(context.Background(), id)
		if err != nil {
			t.Fatalf("recommend %d: %v", id, err)
		}
		if epoch != 1 {
			t.Fatalf("recommend epoch = %d, want 1", epoch)
		}
		if out.String() != bitvec.PartialOf(vs[i]).String() {
			t.Fatalf("player %d got %s, want %s", id, out.String(), vs[i].String())
		}
	}
}

func TestSecondEpochRefreshesAndMatches(t *testing.T) {
	e := newEngine(t, 8, 32)
	for _, v := range twoCommunities(t, 3, 32) {
		if _, err := e.Join(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := e.Snapshot()
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := e.Snapshot()
	if second.Epoch != 2 || !second.Refresh {
		t.Fatalf("second epoch = %d refresh = %v, want 2/true", second.Epoch, second.Refresh)
	}
	for id, w := range first.Outputs {
		if second.Outputs[id].String() != w.String() {
			t.Fatalf("player %d drifted across a churn-free refresh: %s → %s",
				id, w.String(), second.Outputs[id].String())
		}
	}
}

func TestChurnBoundarySemantics(t *testing.T) {
	e := newEngine(t, 8, 32)
	vs := twoCommunities(t, 2, 32)
	ids := make([]uint64, len(vs))
	for i, v := range vs {
		id, err := e.Join(v)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Retire one player, admit a new one: both take effect at epoch 2.
	if err := e.Leave(ids[0]); err != nil {
		t.Fatal(err)
	}
	newID, err := e.Join(vec(t, strings.Repeat("10", 16)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Recommend(context.Background(), ids[0]); err != nil {
		t.Fatalf("leaving player must be served until the boundary: %v", err)
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Recommend(context.Background(), ids[0]); !errors.Is(err, ErrUnknownPlayer) {
		t.Fatalf("departed player: err = %v, want ErrUnknownPlayer", err)
	}
	out, epoch, err := e.Recommend(context.Background(), newID)
	if err != nil || epoch != 2 {
		t.Fatalf("joiner: epoch %d err %v, want 2/nil", epoch, err)
	}
	if out.Len() != 32 {
		t.Fatalf("joiner output length %d, want 32", out.Len())
	}
	// Leave of an unknown id is a typed error; double leave is idempotent.
	if err := e.Leave(9999); !errors.Is(err, ErrUnknownPlayer) {
		t.Fatalf("leave unknown: %v", err)
	}
	if err := e.Leave(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(ids[1]); err != nil {
		t.Fatalf("second leave before boundary: %v", err)
	}
}

func TestRecommendWaitsForCoveringEpoch(t *testing.T) {
	e := newEngine(t, 4, 16)
	id, err := e.Join(vec(t, strings.Repeat("1", 16)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := e.Recommend(ctx, id); !errors.Is(err, ErrNotReady) {
		t.Fatalf("recommend before any epoch: %v, want ErrNotReady", err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, epoch, err := e.Recommend(ctx, id)
		if err == nil && epoch != 1 {
			err = errors.New("woke on wrong epoch")
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the watch channel
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiting recommend: %v", err)
	}
}

func TestCapacityAndSlotReuse(t *testing.T) {
	e := newEngine(t, 2, 16)
	a, err := e.Join(vec(t, strings.Repeat("1", 16)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join(vec(t, strings.Repeat("0", 16))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join(vec(t, strings.Repeat("1", 16))); !errors.Is(err, ErrFull) {
		t.Fatalf("join at capacity: %v, want ErrFull", err)
	}
	if err := e.Leave(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join(vec(t, strings.Repeat("1", 16))); err != nil {
		t.Fatalf("join after a slot freed: %v", err)
	}
	if got := e.Players(); got != 2 {
		t.Fatalf("players = %d, want 2", got)
	}
}

// TestBoardStaysClean pins the long-lived-board contract: epochs leave
// no topics behind (scratch dropped even though the board outlives
// every run), and a retired slot's probe storage is released.
func TestBoardStaysClean(t *testing.T) {
	board := billboard.New(8, 32)
	e, err := New(Config{M: 32, Capacity: 8, Alpha: 0.4, Seed: 1, Board: board})
	if err != nil {
		t.Fatal(err)
	}
	vs := twoCommunities(t, 3, 32)
	ids := make([]uint64, len(vs))
	for i, v := range vs {
		ids[i], err = e.Join(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := e.RunEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		if tc := board.TopicCount(); tc != 0 {
			t.Fatalf("after epoch %d: %d topics left on the board", i+1, tc)
		}
	}
	if board.ProbeCount() == 0 {
		t.Fatal("expected probe results on the board")
	}
	for _, id := range ids {
		if err := e.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if pc := board.ProbeCount(); pc != 0 {
		t.Fatalf("%d probe results left after every player retired", pc)
	}
}

// TestDeterministicAcrossEngines: two engines with equal seeds fed the
// same churn schedule publish identical snapshots — the property the
// churn stress gate uses to compare board backends.
func TestDeterministicAcrossEngines(t *testing.T) {
	run := func() []*Snapshot {
		e, err := New(Config{M: 32, Capacity: 8, Alpha: 0.4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var snaps []*Snapshot
		vs := twoCommunities(t, 3, 32)
		var ids []uint64
		for _, v := range vs[:4] {
			id, err := e.Join(v)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if _, err := e.RunEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, e.Snapshot())
		e.Leave(ids[1])
		for _, v := range vs[4:] {
			if _, err := e.Join(v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.RunEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, e.Snapshot())
		return snaps
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Epoch != b[i].Epoch || len(a[i].Outputs) != len(b[i].Outputs) {
			t.Fatalf("snapshot %d shape differs: %+v vs %+v", i, a[i], b[i])
		}
		for id, w := range a[i].Outputs {
			if b[i].Outputs[id].String() != w.String() {
				t.Fatalf("snapshot %d player %d: %s vs %s", i, id, w.String(), b[i].Outputs[id].String())
			}
		}
	}
}
