package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tellme/internal/billboard"
	"tellme/internal/netboard"
	"tellme/internal/netboard/faultnet"
)

// TestStressChurnClusterMatchesInProcess is the churn stress gate
// (`make stress-churn`): two serving engines with the same seed — one
// on the in-process board, one on a 4-shard cluster whose every request
// crosses a fault-injecting transport (drops, lost responses,
// duplicated deliveries) — are fed the same join/leave-every-epoch
// schedule. Every epoch the published snapshots must be byte-identical,
// and every recommendation must carry the epoch it claims. Afterwards
// the shard boards must hold exactly the reference board's probe state:
// nothing lost to a dropped request, nothing double-applied by a
// duplicated one, no scratch topics leaked over the wire.
func TestStressChurnClusterMatchesInProcess(t *testing.T) {
	const (
		m        = 32
		capacity = 8
		shards   = 4
		epochs   = 6
		seed     = 42
	)
	boards := make([]*billboard.Board, shards)
	urls := make([]string, shards)
	for i := range boards {
		boards[i] = billboard.New(capacity, m)
		srv := httptest.NewServer(netboard.NewServer(boards[i]))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ft := faultnet.New(nil, 20260809)
	ft.DropRequest, ft.DropResponse, ft.Duplicate = 0.1, 0.1, 0.25
	ft.MaxDelay = 200 * time.Microsecond
	cluster, err := netboard.NewCluster(netboard.ClusterConfig{
		Shards: urls,
		Client: netboard.Config{
			HTTPClient:   &http.Client{Transport: ft},
			Retries:      60,
			RetryBackoff: 100 * time.Microsecond,
			JitterSeed:   7,
			// The churn gate runs its faulty wire over the binary codec;
			// exactness must not depend on the encoding.
			Codec: "binary",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{M: m, Capacity: capacity, Alpha: 0.4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Config{M: m, Capacity: capacity, Alpha: 0.4, Seed: seed, Board: cluster})
	if err != nil {
		t.Fatal(err)
	}
	engines := []*Engine{ref, net}

	// The churn schedule: two balanced communities, and from epoch 2 on
	// the oldest member retires each epoch while a same-community
	// replacement joins — churn at every single boundary.
	type member struct {
		id   uint64
		bits string
	}
	a, b := strings.Repeat("10", m/2), strings.Repeat("01", m/2)
	join := func(bits string) uint64 {
		t.Helper()
		var id uint64
		for i, e := range engines {
			got, err := e.Join(vec(t, bits))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				id = got
			} else if got != id {
				t.Fatalf("engines disagree on join id: %d vs %d", id, got)
			}
		}
		return id
	}
	leave := func(id uint64) {
		t.Helper()
		for _, e := range engines {
			if err := e.Leave(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	var alive []member
	for i := 0; i < 3; i++ {
		alive = append(alive, member{join(a), a}, member{join(b), b})
	}

	for epoch := 1; epoch <= epochs; epoch++ {
		if epoch > 1 {
			old := alive[0]
			alive = alive[1:]
			leave(old.id)
			alive = append(alive, member{join(old.bits), old.bits})
		}
		snaps := make([]*Snapshot, len(engines))
		for i, e := range engines {
			if _, err := e.RunEpoch(context.Background()); err != nil {
				t.Fatalf("epoch %d engine %d: %v", epoch, i, err)
			}
			snaps[i] = e.Snapshot()
			if snaps[i] == nil || snaps[i].Epoch != int64(epoch) {
				t.Fatalf("epoch %d engine %d published %+v", epoch, i, snaps[i])
			}
		}
		if len(snaps[0].Outputs) != len(snaps[1].Outputs) {
			t.Fatalf("epoch %d: %d vs %d outputs", epoch, len(snaps[0].Outputs), len(snaps[1].Outputs))
		}
		for id, w := range snaps[0].Outputs {
			if snaps[1].Outputs[id].String() != w.String() {
				t.Fatalf("epoch %d player %d: in-process %s, cluster %s",
					epoch, id, w.String(), snaps[1].Outputs[id].String())
			}
		}
		// Every recommendation answers from the epoch it claims, with
		// that epoch's bytes.
		for i, e := range engines {
			for id, want := range snaps[i].Outputs {
				out, got, err := e.Recommend(context.Background(), id)
				if err != nil {
					t.Fatalf("epoch %d engine %d recommend %d: %v", epoch, i, id, err)
				}
				if got != snaps[i].Epoch || out.String() != want.String() {
					t.Fatalf("epoch %d engine %d player %d: claimed epoch %d bits %s, snapshot has %s",
						epoch, i, id, got, out.String(), want.String())
				}
			}
		}
	}

	// Exactly-once across the faulty wire: the shard boards together
	// hold precisely the reference board's probe state, and no epoch
	// leaked scratch topics onto any shard.
	for i, b := range boards {
		if tc := b.TopicCount(); tc != 0 {
			t.Fatalf("shard %d holds %d leaked topics", i, tc)
		}
	}
	wantProbes := ref.Board().(*billboard.Board).ProbeCount()
	if got := cluster.ProbeCount(); got != wantProbes {
		t.Fatalf("cluster probe count %d, in-process reference %d (lost or duplicated posts)", got, wantProbes)
	}
	var shardProbes int64
	for _, b := range boards {
		shardProbes += b.ProbeCount()
	}
	if shardProbes != wantProbes {
		t.Fatalf("shard boards hold %d probe results, want %d", shardProbes, wantProbes)
	}
	if ft.DroppedRequests() == 0 && ft.LostResponses() == 0 {
		t.Fatal("fault injection never fired; the stress proved nothing")
	}
}
