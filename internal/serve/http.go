package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tellme/internal/bitvec"
	"tellme/internal/telemetry"
	"tellme/internal/wire"
)

// HandlerConfig configures the HTTP front of an Engine.
type HandlerConfig struct {
	// RecommendDeadline is the default per-request deadline of
	// GET /v1/recommend/{id} (how long a request may wait for the next
	// epoch to cover its player). 0 means DefaultRecommendDeadline. A
	// request may shorten it with ?wait=<duration> but never exceed it.
	RecommendDeadline time.Duration
	// Telemetry, if non-nil, is exposed at GET /debug/telemetry.
	Telemetry *telemetry.Registry
}

// DefaultRecommendDeadline bounds recommendation requests that must
// wait for an epoch when the handler config does not say otherwise.
const DefaultRecommendDeadline = 10 * time.Second

// Handler exposes the engine's serving API over HTTP:
//
//	POST   /v1/players          {"bits":"0101..."} → {"id":N}
//	POST   /v1/players/batch    {"players":[{"bits":...},...]} → {"ids":[...]}
//	DELETE /v1/players/{id}     retire at the next epoch boundary
//	GET    /v1/recommend/{id}   → {"id":N,"epoch":E,"bits":"01?..."}
//	GET    /v1/status           → {"epoch":E,"members":K,...}
//	GET    /debug/telemetry     registry snapshot as JSON
//
// Recommendations are answered from the latest completed epoch; a
// request whose player is not covered yet waits up to the per-request
// deadline (504 on expiry).
//
// Bodies default to JSON and negotiate the binary wire codec per
// request: a binary Content-Type selects the binary decoder, a binary
// Accept selects the binary encoder (see internal/wire and DESIGN.md
// §15). Error replies are always JSON — they are rare and meant for
// humans.
func Handler(e *Engine, hc HandlerConfig) http.Handler {
	if hc.RecommendDeadline <= 0 {
		hc.RecommendDeadline = DefaultRecommendDeadline
	}
	ins := func(path string) wire.Instruments {
		return wire.NewInstruments(hc.Telemetry, "serve.http", path)
	}
	joinIns := ins("/v1/players")
	batchIns := ins("/v1/players/batch")
	recIns := ins("/v1/recommend")
	statusIns := ins("/v1/status")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/players", func(w http.ResponseWriter, r *http.Request) {
		var req joinRequest
		if status, err := wire.DecodeRequest(r, &req, false, joinIns); status != 0 {
			httpError(w, status, fmt.Errorf("bad join body: %w", err))
			return
		}
		truth, err := vectorFromBits(req.Bits, e.cfg.M)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := e.Join(truth)
		if errors.Is(err, ErrFull) {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		wire.WriteReplyStatus(w, r, http.StatusCreated,
			&joinReply{ID: id, Epoch: e.CompletedEpochs()}, false, joinIns)
	})
	mux.HandleFunc("POST /v1/players/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchJoinRequest
		if status, err := wire.DecodeRequest(r, &req, false, batchIns); status != 0 {
			httpError(w, status, fmt.Errorf("bad batch join body: %w", err))
			return
		}
		truths := make([]bitvec.Vector, len(req.Players))
		for i, p := range req.Players {
			v, err := vectorFromBits(p.Bits, e.cfg.M)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("player %d: %w", i, err))
				return
			}
			truths[i] = v
		}
		ids, err := e.JoinBatch(truths)
		if errors.Is(err, ErrFull) {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		wire.WriteReplyStatus(w, r, http.StatusCreated,
			&batchJoinReply{IDs: ids, Epoch: e.CompletedEpochs()}, false, batchIns)
	})
	mux.HandleFunc("DELETE /v1/players/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad player id: %w", err))
			return
		}
		if err := e.Leave(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/recommend/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad player id: %w", err))
			return
		}
		deadline := hc.RecommendDeadline
		if s := r.URL.Query().Get("wait"); s != "" {
			// Non-positive waits are rejected, not honored: wait=0 would
			// install an already-expired timeout and turn every request
			// into an instant 504 instead of the 400 the caller needs to
			// see to fix its query string.
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q (want a positive duration)", s))
				return
			}
			if d < deadline {
				deadline = d
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()
		out, epoch, err := e.Recommend(ctx, id)
		switch {
		case errors.Is(err, ErrUnknownPlayer):
			httpError(w, http.StatusNotFound, err)
			return
		case errors.Is(err, ErrNotReady):
			httpError(w, http.StatusGatewayTimeout, err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		wire.WriteReply(w, r, &recommendReply{ID: id, Epoch: epoch, Bits: out.String()}, false, recIns)
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		st := statusReply{
			Epoch:    e.CompletedEpochs(),
			Players:  e.Players(),
			Capacity: e.cfg.Capacity,
			M:        e.cfg.M,
			Pending:  e.sched.Pending(),
		}
		if s := e.Snapshot(); s != nil {
			st.Members = s.Stats.Members
			st.MaxErr = s.Stats.MaxErr
			st.MeanErr = s.Stats.MeanErr
			st.Refresh = s.Refresh
			st.EpochMillis = s.Duration.Milliseconds()
		}
		wire.WriteReply(w, r, &st, false, statusIns)
	})
	if hc.Telemetry != nil {
		mux.HandleFunc("GET /debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			hc.Telemetry.WriteJSON(w)
		})
		mux.HandleFunc("GET /debug/telemetry/prometheus", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			hc.Telemetry.WritePrometheus(w)
		})
	}
	return mux
}

type joinRequest struct {
	// Bits is the player's preference vector as a '0'/'1' string of
	// length M — the ground truth its probes answer from.
	Bits string `json:"bits"`
}

// batchJoinRequest admits a whole fleet in one request — the bulk path
// of Engine.JoinBatch: all-or-nothing, ids in input order.
type batchJoinRequest struct {
	Players []joinRequest `json:"players"`
}

type batchJoinReply struct {
	IDs []uint64 `json:"ids"`
	// Epoch is the number of epochs completed at join time.
	Epoch int64 `json:"epoch"`
}

type joinReply struct {
	ID uint64 `json:"id"`
	// Epoch is the number of epochs completed at join time; the player
	// is covered from some later epoch on.
	Epoch int64 `json:"epoch"`
}

type recommendReply struct {
	ID uint64 `json:"id"`
	// Epoch is the completed epoch the recommendation was computed in.
	Epoch int64 `json:"epoch"`
	// Bits is the reconstructed preference vector over '0'/'1'/'?'.
	Bits string `json:"bits"`
}

type statusReply struct {
	Epoch       int64   `json:"epoch"`
	Players     int     `json:"players"`
	Members     int     `json:"members"`
	Capacity    int     `json:"capacity"`
	M           int     `json:"m"`
	Pending     int     `json:"pendingChurn"`
	Refresh     bool    `json:"refresh"`
	MaxErr      int     `json:"maxErr"`
	MeanErr     float64 `json:"meanErr"`
	EpochMillis int64   `json:"epochMillis"`
}

type errorReply struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorReply{Error: err.Error()})
}

// vectorFromBits parses a '0'/'1' string of length m into a Vector.
func vectorFromBits(bits string, m int) (bitvec.Vector, error) {
	if len(bits) != m {
		return bitvec.Vector{}, fmt.Errorf("serve: preference bits length %d, want %d", len(bits), m)
	}
	v := bitvec.New(m)
	for i := 0; i < m; i++ {
		switch bits[i] {
		case '0':
		case '1':
			v.Set(i, 1)
		default:
			return bitvec.Vector{}, fmt.Errorf("serve: preference bits must be '0'/'1', got %q at %d", bits[i], i)
		}
	}
	return v, nil
}
