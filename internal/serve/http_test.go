package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tellme/internal/telemetry"
)

// daemon spins up an Engine with its HTTP front and a background epoch
// loop, the way cmd/tellmed wires them.
func daemon(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	reg := telemetry.New()
	e, err := New(Config{M: 32, Capacity: 8, Alpha: 0.4, Seed: 42, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(e, HandlerConfig{RecommendDeadline: 5 * time.Second, Telemetry: reg}))
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run(ctx, 50*time.Millisecond)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return srv, e
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPJoinRecommendLeave(t *testing.T) {
	srv, _ := daemon(t)
	bits := strings.Repeat("10", 16)
	var joined joinReply
	// Join two players with identical tastes so the community is large
	// enough for alpha = 0.4.
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: bits}, &joined); code != http.StatusCreated {
		t.Fatalf("join status %d", code)
	}
	var other joinReply
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: bits}, &other); code != http.StatusCreated {
		t.Fatalf("join status %d", code)
	}
	var rec recommendReply
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/recommend/%d", srv.URL, joined.ID), nil, &rec); code != http.StatusOK {
		t.Fatalf("recommend status %d", code)
	}
	if rec.Epoch < 1 || rec.Bits != bits {
		t.Fatalf("recommend = %+v, want epoch >= 1 and bits %q", rec, bits)
	}
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/players/%d", srv.URL, joined.ID), nil, nil); code != http.StatusNoContent {
		t.Fatalf("leave status %d", code)
	}
	// After a boundary passes, the id stops resolving.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := doJSON(t, "GET", fmt.Sprintf("%s/v1/recommend/%d?wait=10ms", srv.URL, joined.ID), nil, nil)
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("departed player still resolving (last status %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHTTPValidationAndDeadline(t *testing.T) {
	srv, _ := daemon(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: "101"}, nil); code != http.StatusBadRequest {
		t.Fatalf("short bits: status %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: strings.Repeat("2", 32)}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad alphabet: status %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/recommend/notanumber", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/recommend/424242", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", code)
	}
	// A joined player with ?wait too short to reach the next epoch gets
	// 504 — the per-request deadline contract.
	var joined joinReply
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: strings.Repeat("1", 32)}, &joined); code != http.StatusCreated {
		t.Fatalf("join status %d", code)
	}
	code := doJSON(t, "GET", fmt.Sprintf("%s/v1/recommend/%d?wait=1ns", srv.URL, joined.ID), nil, nil)
	if code != http.StatusGatewayTimeout && code != http.StatusOK {
		t.Fatalf("deadline status %d, want 504 (or 200 if an epoch already covered the player)", code)
	}
}

func TestHTTPStatusAndTelemetry(t *testing.T) {
	srv, e := daemon(t)
	bits := strings.Repeat("01", 16)
	for i := 0; i < 2; i++ {
		if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: bits}, nil); code != http.StatusCreated {
			t.Fatalf("join status %d", code)
		}
	}
	// Wait for a covering epoch so status reports members.
	deadline := time.Now().Add(5 * time.Second)
	for e.CompletedEpochs() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no epochs completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var st statusReply
	if code := doJSON(t, "GET", srv.URL+"/v1/status", nil, &st); code != http.StatusOK {
		t.Fatalf("status status %d", code)
	}
	if st.Epoch < 2 || st.Capacity != 8 || st.M != 32 || st.Players != 2 {
		t.Fatalf("status = %+v", st)
	}
	resp, err := http.Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("telemetry not JSON: %v", err)
	}
}

// TestHTTPWaitValidation pins the wait= parsing table. The regression
// case is wait=0: ParseDuration accepts it, and before the d <= 0 guard
// the handler installed an already-expired timeout — every request
// instantly 504ed instead of 400ing on the malformed query.
func TestHTTPWaitValidation(t *testing.T) {
	srv, _ := daemon(t)
	var joined joinReply
	if code := doJSON(t, "POST", srv.URL+"/v1/players", joinRequest{Bits: strings.Repeat("1", 32)}, &joined); code != http.StatusCreated {
		t.Fatalf("join status %d", code)
	}
	cases := []struct {
		wait string
		want []int
	}{
		{"0", []int{http.StatusBadRequest}},
		{"0s", []int{http.StatusBadRequest}},
		{"-5ms", []int{http.StatusBadRequest}},
		{"bogus", []int{http.StatusBadRequest}},
		{"12", []int{http.StatusBadRequest}}, // ParseDuration wants a unit
		{"1ns", []int{http.StatusGatewayTimeout, http.StatusOK}},
		{"2s", []int{http.StatusOK}},
	}
	for _, tc := range cases {
		code := doJSON(t, "GET", fmt.Sprintf("%s/v1/recommend/%d?wait=%s", srv.URL, joined.ID, tc.wait), nil, nil)
		ok := false
		for _, w := range tc.want {
			ok = ok || code == w
		}
		if !ok {
			t.Fatalf("wait=%q: status %d, want one of %v", tc.wait, code, tc.want)
		}
	}
}

func TestHTTPBatchJoin(t *testing.T) {
	srv, e := daemon(t)
	bits := strings.Repeat("10", 16)
	req := batchJoinRequest{Players: []joinRequest{{Bits: bits}, {Bits: bits}, {Bits: bits}}}
	var rep batchJoinReply
	if code := doJSON(t, "POST", srv.URL+"/v1/players/batch", req, &rep); code != http.StatusCreated {
		t.Fatalf("batch join status %d", code)
	}
	if len(rep.IDs) != 3 {
		t.Fatalf("batch ids = %v, want 3", rep.IDs)
	}
	for i := 1; i < len(rep.IDs); i++ {
		if rep.IDs[i] <= rep.IDs[i-1] {
			t.Fatalf("batch ids not ascending: %v", rep.IDs)
		}
	}
	if e.Players() != 3 {
		t.Fatalf("players = %d, want 3", e.Players())
	}
	// Every admitted player is eventually served.
	var rec recommendReply
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/recommend/%d?wait=5s", srv.URL, rep.IDs[2]), nil, &rec); code != http.StatusOK {
		t.Fatalf("recommend status %d", code)
	}
	if rec.Bits != bits {
		t.Fatalf("recommend bits = %q, want %q", rec.Bits, bits)
	}

	// One bad vector rejects the whole batch: all-or-nothing.
	bad := batchJoinRequest{Players: []joinRequest{{Bits: bits}, {Bits: "101"}}}
	if code := doJSON(t, "POST", srv.URL+"/v1/players/batch", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("bad batch status %d", code)
	}
	if e.Players() != 3 {
		t.Fatalf("players after rejected batch = %d, want 3", e.Players())
	}

	// A batch larger than the free capacity is refused whole (503), and
	// admits nobody.
	over := batchJoinRequest{Players: make([]joinRequest, 6)} // 5 slots free of 8
	for i := range over.Players {
		over.Players[i] = joinRequest{Bits: bits}
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/players/batch", over, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("overfull batch status %d", code)
	}
	if e.Players() != 3 {
		t.Fatalf("players after overfull batch = %d, want 3", e.Players())
	}
}
