package core

import (
	"math"
	"math/bits"

	"tellme/internal/bitvec"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

// RSelect implements Algorithm RSelect (Fig. 7): the randomized Choose
// Closest that needs no distance bound.
//
// For every pair of distinct candidates it samples up to c·log n of the
// coordinates on which their non-? values differ, probes them, and
// declares a loser when at least 2/3 of the probed coordinates favor the
// other vector. It returns the index of a candidate with zero losses
// (Theorem 6.1: w.h.p. such a vector exists and is within O(D) of the
// true closest). If bad luck leaves no undefeated candidate, the one
// with fewest losses (ties broken lexicographically) is returned, which
// preserves the probe bound while remaining deterministic given the
// random stream.
//
// The probe budget is O(|V|²·log n): cLogN probes per pair.
//
// cands are over the coordinate set objs, as in SelectPartial; r is the
// player's private random stream.
func RSelect(pl *probe.Player, r *rng.Rand, objs []int, cands []bitvec.Partial, cLogN int) int {
	k := len(cands)
	if k == 0 {
		panic("core: RSelect with no candidates")
	}
	if k == 1 {
		return 0
	}
	if cLogN < 1 {
		cLogN = 1
	}
	a := pl.Arena()
	defer a.Release(a.Mark())
	losses := a.Ints(k)
	diff := a.Ints(len(objs))[:0]

	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			// X: coordinates with differing non-? values, collected
			// word-parallel (ascending, same order as a per-coordinate
			// scan, so the shuffle below consumes coins identically).
			diff = diff[:0]
			vi, ki := cands[i].Planes()
			vj, kj := cands[j].Planes()
			for w := range vi {
				for x := (vi[w] ^ vj[w]) & ki[w] & kj[w]; x != 0; x &= x - 1 {
					diff = append(diff, w<<6|bits.TrailingZeros64(x))
				}
			}
			if len(diff) == 0 {
				continue // identical on known coordinates; no verdict
			}
			sample := diff
			if len(diff) > cLogN {
				// uniform sample of cLogN coordinates without replacement
				r.Shuffle(len(diff), func(x, y int) { diff[x], diff[y] = diff[y], diff[x] })
				sample = diff[:cLogN]
			}
			agreeI := 0
			for _, t := range sample {
				if pl.Probe(objs[t]) == cands[i].Get(t) {
					agreeI++
				}
			}
			// 2/3 majority verdicts (both can lose on a ~50/50 split of a
			// short sample: then neither is declared loser).
			if 3*agreeI >= 2*len(sample) {
				losses[j]++
			}
			if 3*(len(sample)-agreeI) >= 2*len(sample) {
				losses[i]++
			}
		}
	}

	// Final choice among minimal-loss candidates. The ?-ignoring metric
	// d~ cannot see that a wildcard coordinate is a guaranteed coin-flip
	// under the output's Fill(0) semantics, so ties prefer the candidate
	// with fewer '?' entries before the lexicographic rule — otherwise a
	// mostly-undetermined vector that matches everywhere it is defined
	// could displace a fully-specified good answer.
	best := 0
	for i := 1; i < k; i++ {
		li, lb := losses[i], losses[best]
		switch {
		case li < lb:
			best = i
		case li == lb:
			ui, ub := cands[i].UnknownCount(), cands[best].UnknownCount()
			if ui < ub || (ui == ub && cands[i].Less(cands[best])) {
				best = i
			}
		}
	}
	return best
}

// RSelSamples converts the config constant into the per-pair sample
// count c·log n for an n-player instance.
func RSelSamples(cfg Config, n int) int {
	s := int(math.Ceil(cfg.RSelC * math.Log(float64(n)+1)))
	if s < 1 {
		s = 1
	}
	return s
}
