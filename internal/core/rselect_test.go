package core

import (
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

func TestRSelectFindsExactAmongFar(t *testing.T) {
	r := rng.New(1)
	m := 256
	truth := bitvec.Random(r, m)
	cands := []bitvec.Partial{
		bitvec.PartialOf(bitvec.Random(r, m)),
		bitvec.PartialOf(truth.Clone()),
		bitvec.PartialOf(bitvec.Random(r, m)),
		bitvec.PartialOf(bitvec.Random(r, m)),
	}
	in := prefs.FromVectors([]bitvec.Vector{truth})
	e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(2))
	got := RSelect(e.Player(0), rng.New(3), seqObjs(m), cands, 20)
	if got != 1 {
		t.Fatalf("RSelect = %d, want 1", got)
	}
}

func TestRSelectErrorWithinConstantFactor(t *testing.T) {
	// Theorem 6.1: output within O(D) of the true minimum distance.
	r := rng.New(4)
	const m = 512
	fails := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		truth := bitvec.Random(r, m)
		d := 1 + r.Intn(8)
		k := 3 + r.Intn(4)
		cands := make([]bitvec.Partial, k)
		best := truth.Clone()
		best.FlipRandom(r, d)
		cands[0] = bitvec.PartialOf(best)
		for i := 1; i < k; i++ {
			v := truth.Clone()
			v.FlipRandom(r, d*8+20+r.Intn(50))
			cands[i] = bitvec.PartialOf(v)
		}
		in := prefs.FromVectors([]bitvec.Vector{truth})
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(uint64(trial)))
		got := RSelect(e.Player(0), rng.New(uint64(trial)*7+1), seqObjs(m), cands, 30)
		if gd := cands[got].DistKnownVec(truth); gd > 6*d {
			fails++
		}
	}
	if fails > trials/10 {
		t.Fatalf("RSelect exceeded 6·D in %d/%d trials", fails, trials)
	}
}

func TestRSelectProbeBudget(t *testing.T) {
	// probes ≤ cLogN per pair → ≤ C(k,2)·cLogN overall.
	r := rng.New(9)
	m := 1024
	truth := bitvec.Random(r, m)
	k := 6
	cands := make([]bitvec.Partial, k)
	for i := range cands {
		cands[i] = bitvec.PartialOf(bitvec.Random(r, m))
	}
	in := prefs.FromVectors([]bitvec.Vector{truth})
	e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(5))
	cLogN := 25
	RSelect(e.Player(0), rng.New(6), seqObjs(m), cands, cLogN)
	budget := int64(k * (k - 1) / 2 * cLogN)
	if got := e.Charged(0); got > budget {
		t.Fatalf("probes %d > budget %d", got, budget)
	}
}

func TestRSelectIdenticalCandidates(t *testing.T) {
	pl, e := singlePlayer(t, "0101", 11)
	cands := []bitvec.Partial{part(t, "1111"), part(t, "1111")}
	got := RSelect(pl, rng.New(1), seqObjs(4), cands, 10)
	if got != 0 && got != 1 {
		t.Fatalf("got %d", got)
	}
	if e.Charged(0) != 0 {
		t.Fatalf("identical candidates probed %d times", e.Charged(0))
	}
}

func TestRSelectSingleCandidate(t *testing.T) {
	pl, e := singlePlayer(t, "0101", 12)
	if got := RSelect(pl, rng.New(1), seqObjs(4), []bitvec.Partial{part(t, "0000")}, 10); got != 0 {
		t.Fatal("single candidate not returned")
	}
	if e.Charged(0) != 0 {
		t.Fatal("single candidate probed")
	}
}

func TestRSelectUnknownsShrinkDifferenceSet(t *testing.T) {
	// The pair's difference set X only contains coordinates where BOTH
	// candidates are known, so an all-? candidate is indistinguishable
	// (zero probes, no verdict) and either output is conformant.
	pl, e := singlePlayer(t, "00000000", 13)
	cands := []bitvec.Partial{
		part(t, "????0000"),
		part(t, "11110000"),
	}
	got := RSelect(pl, rng.New(2), seqObjs(8), cands, 10)
	if got != 0 && got != 1 {
		t.Fatalf("got %d", got)
	}
	if e.Charged(0) != 0 {
		t.Fatalf("empty X still probed %d times", e.Charged(0))
	}
}

func TestRSelectPartialVerdictOnKnownCoords(t *testing.T) {
	// When the ? candidate still differs on known coordinates, RSelect
	// must rank by those: cand0 has d~=0, cand1 d~=4 on shared coords.
	pl, _ := singlePlayer(t, "00000000", 13)
	cands := []bitvec.Partial{
		part(t, "0000??00"),
		part(t, "1111??00"),
	}
	got := RSelect(pl, rng.New(2), seqObjs(8), cands, 10)
	if got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestRSelectSmallDifferenceSetProbesAll(t *testing.T) {
	// |X| < cLogN → probe all of X, fully reliable verdict.
	pl, e := singlePlayer(t, "000000", 14)
	cands := []bitvec.Partial{
		part(t, "000001"), // distance 1
		part(t, "000010"), // distance 1
	}
	got := RSelect(pl, rng.New(3), seqObjs(6), cands, 100)
	// X = {4, 5}, both probed; split 1-1, neither reaches 2/3 → both 0
	// losses → lexicographic first of equals
	if got != 0 {
		t.Fatalf("got %d", got)
	}
	if e.Charged(0) != 2 {
		t.Fatalf("probed %d, want 2", e.Charged(0))
	}
}

func TestRSelectDeterministicGivenStream(t *testing.T) {
	run := func() int {
		r := rng.New(55)
		m := 128
		truth := bitvec.Random(r, m)
		cands := []bitvec.Partial{
			bitvec.PartialOf(bitvec.Random(r, m)),
			bitvec.PartialOf(bitvec.Random(r, m)),
			bitvec.PartialOf(bitvec.Random(r, m)),
		}
		in := prefs.FromVectors([]bitvec.Vector{truth})
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(8))
		return RSelect(e.Player(0), rng.New(77), seqObjs(m), cands, 15)
	}
	if run() != run() {
		t.Fatal("RSelect not deterministic given identical streams")
	}
}

func TestRSelSamples(t *testing.T) {
	cfg := DefaultConfig()
	small := RSelSamples(cfg, 2)
	big := RSelSamples(cfg, 1<<20)
	if small < 1 || big <= small {
		t.Fatalf("RSelSamples: small=%d big=%d", small, big)
	}
}
