package core

import (
	"tellme/internal/bitvec"
	"tellme/internal/ints"
	"tellme/internal/rng"
)

// PartitionSuccessful evaluates Lemma 4.1's success predicate: for every
// part there must be a sub-multiset of at least ⌈|V|/5⌉ vectors that
// agree on every coordinate of the part.
//
// parts holds coordinate indices; vecs are the M vectors of the lemma.
func PartitionSuccessful(vecs []bitvec.Vector, parts [][]int) bool {
	if len(vecs) == 0 {
		return true
	}
	need := (len(vecs) + 4) / 5
	for _, part := range parts {
		if len(part) == 0 {
			continue // an empty part is trivially agreed on
		}
		counts := make(map[string]int, len(vecs))
		best := 0
		for _, v := range vecs {
			k := v.Project(part).Key()
			counts[k]++
			if counts[k] > best {
				best = counts[k]
			}
		}
		if best < need {
			return false
		}
	}
	return true
}

// RandomPartitionTrial draws one random partition of m coordinates into
// s parts (each coordinate assigned independently and uniformly, as in
// Lemma 4.1) and reports whether it is successful for vecs.
func RandomPartitionTrial(r *rng.Rand, vecs []bitvec.Vector, m, s int) bool {
	parts := assignParts(r, ints.Iota(m), s)
	return PartitionSuccessful(vecs, parts)
}

// PartitionFailureBound is Lemma 4.1's explicit upper bound on the
// failure probability: 10³·5⁵·d³ / (6!·s²).
func PartitionFailureBound(d, s int) float64 {
	if s == 0 {
		return 1
	}
	dd := float64(d)
	ss := float64(s)
	return 1000 * 3125 * dd * dd * dd / (720 * ss * ss)
}
