package core

import (
	"math"

	"tellme/internal/bitvec"
	"tellme/internal/ints"
)

// Regime identifies which sub-algorithm the main dispatcher used.
type Regime int

// Dispatch regimes, in increasing diameter order (Fig. 1).
const (
	RegimeZero Regime = iota
	RegimeSmall
	RegimeLarge
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeZero:
		return "ZeroRadius"
	case RegimeSmall:
		return "SmallRadius"
	case RegimeLarge:
		return "LargeRadius"
	default:
		return "unknown"
	}
}

// smallRadiusCutoff is the D below which SmallRadius is used: the
// paper's "D = O(log n)" branch.
func smallRadiusCutoff(n int) int {
	return int(math.Ceil(math.Log(float64(n) + 1)))
}

// DispatchRegime returns the branch of Fig. 1 taken for diameter d.
func DispatchRegime(n, d int) Regime {
	switch {
	case d == 0:
		return RegimeZero
	case d <= smallRadiusCutoff(n):
		return RegimeSmall
	default:
		return RegimeLarge
	}
}

// Main implements the main algorithm for known α and D (Fig. 1): it
// dispatches on D to Zero, Small, or Large Radius and returns every
// player's output vector over all m objects.
//
// out[p] is nil only for n == 0 inputs; outputs may contain '?' entries
// in the Large Radius regime.
func Main(env *Env, alpha float64, d int) []bitvec.Partial {
	return MainFor(env, alpha, d, allPlayers(env.N), allObjects(env.M))
}

// MainFor is Main restricted to a player subset over an object subset —
// the epoch re-entry form the serving daemon uses when only the
// currently-admitted slots participate. alpha is interpreted relative
// to len(players), matching the sub-algorithms' conventions. The
// returned slice is indexed by player id (length env.N); entries for
// players outside the subset are zero-valued. Pass objs covering all of
// [0, m) for full-length output vectors (the Zero/Small regimes return
// vectors positional in objs).
func MainFor(env *Env, alpha float64, d int, players, objs []int) []bitvec.Partial {
	env.checkAborted()
	out := make([]bitvec.Partial, env.N)
	if len(players) == 0 || len(objs) == 0 {
		return out
	}
	switch DispatchRegime(env.N, d) {
	case RegimeZero:
		zr := zeroRadiusBitsFlat(env, players, objs, alpha)
		for i, p := range players {
			out[p] = bitvec.PartialOf(valsToVector(zr[i*len(objs) : (i+1)*len(objs)]))
		}
	case RegimeSmall:
		sr := smallRadiusPos(env, players, objs, alpha, d, 0)
		for i, p := range players {
			out[p] = bitvec.PartialOf(sr[i])
		}
	default:
		lr := LargeRadius(env, players, objs, alpha, d)
		for _, p := range players {
			out[p] = lr[p]
		}
	}
	return out
}

// allObjects returns [0, m).
func allObjects(m int) []int {
	return ints.Iota(m)
}
