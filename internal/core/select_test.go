package core

import (
	"math/rand"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
	"tellme/internal/rng"

	"tellme/internal/billboard"
	"tellme/internal/probe"
)

func TestSelectPicksExactMatch(t *testing.T) {
	pl, _ := singlePlayer(t, "01101", 1)
	cands := []bitvec.Partial{
		part(t, "11111"),
		part(t, "01101"), // exact
		part(t, "00000"),
	}
	if got := SelectPartial(pl, seqObjs(5), cands, 0); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestSelectRespectsDistanceBound(t *testing.T) {
	pl, _ := singlePlayer(t, "0000000000", 2)
	cands := []bitvec.Partial{
		part(t, "1111100000"), // distance 5
		part(t, "1100000000"), // distance 2 (within bound)
		part(t, "1111111111"), // distance 10
	}
	if got := SelectPartial(pl, seqObjs(10), cands, 2); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestSelectProbeBudgetTheorem32(t *testing.T) {
	// Theorem 3.2: probes ≤ k(D+1).
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		m := 64
		truth := bitvec.Random(r, m)
		d := r.Intn(6)
		k := 2 + r.Intn(6)
		cands := make([]bitvec.Partial, k)
		// plant one candidate within d
		planted := truth.Clone()
		if d > 0 {
			planted.FlipRandom(r, r.Intn(d+1))
		}
		cands[0] = bitvec.PartialOf(planted)
		for i := 1; i < k; i++ {
			cands[i] = bitvec.PartialOf(bitvec.Random(r, m))
		}
		in := prefs.FromVectors([]bitvec.Vector{truth})
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(uint64(trial)))
		pl := e.Player(0)
		got := SelectPartial(pl, seqObjs(m), cands, d)
		if spent := e.Charged(0); spent > int64(k*(d+1)) {
			t.Fatalf("trial %d: %d probes > k(D+1) = %d", trial, spent, k*(d+1))
		}
		// output must be a true closest vector
		bestDist := m + 1
		for _, c := range cands {
			if dd := c.DistKnownVec(truth); dd < bestDist {
				bestDist = dd
			}
		}
		if gd := cands[got].DistKnownVec(truth); gd != bestDist {
			t.Fatalf("trial %d: selected distance %d, best %d", trial, gd, bestDist)
		}
	}
}

func TestSelectLexicographicTieBreak(t *testing.T) {
	pl, _ := singlePlayer(t, "0000", 3)
	// two candidates both at distance 1
	cands := []bitvec.Partial{
		part(t, "0100"),
		part(t, "0010"),
	}
	got := SelectPartial(pl, seqObjs(4), cands, 1)
	// lexicographically first of the two closest is "0010"
	if got != 1 {
		t.Fatalf("tie break chose %d", got)
	}
}

func TestSelectSingleCandidateFree(t *testing.T) {
	pl, e := singlePlayer(t, "0101", 4)
	if got := SelectPartial(pl, seqObjs(4), []bitvec.Partial{part(t, "1111")}, 0); got != 0 {
		t.Fatal("single candidate not returned")
	}
	if e.Charged(0) != 0 {
		t.Fatalf("single candidate cost %d probes", e.Charged(0))
	}
}

func TestSelectIdenticalCandidatesFree(t *testing.T) {
	pl, e := singlePlayer(t, "0101", 5)
	cands := []bitvec.Partial{part(t, "1111"), part(t, "1111")}
	_ = SelectPartial(pl, seqObjs(4), cands, 0)
	if e.Charged(0) != 0 {
		t.Fatalf("identical candidates cost %d probes", e.Charged(0))
	}
}

func TestSelectIgnoresUnknowns(t *testing.T) {
	pl, e := singlePlayer(t, "0000", 6)
	// candidates differ only where one holds '?': X is empty, no probes.
	cands := []bitvec.Partial{part(t, "0?00"), part(t, "0100")}
	got := SelectPartial(pl, seqObjs(4), cands, 1)
	if e.Charged(0) != 0 {
		t.Fatalf("?-only differences triggered %d probes", e.Charged(0))
	}
	// tie on Y (both distance 0); "0100" < "0?00" lexicographically (1 < ?)
	if got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestSelectPartialWithUnknownCandidates(t *testing.T) {
	pl, _ := singlePlayer(t, "00110", 7)
	cands := []bitvec.Partial{
		part(t, "11??1"), // d~ to truth: coords 0,1,4 → 3 diffs
		part(t, "0011?"), // d~ 0
	}
	if got := SelectPartial(pl, seqObjs(5), cands, 2); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestSelectViolatedPromiseStillReturns(t *testing.T) {
	pl, _ := singlePlayer(t, "000000", 8)
	// no candidate within d=0; all get removed; fall back to closest-on-Y.
	cands := []bitvec.Partial{
		part(t, "111111"),
		part(t, "110000"),
	}
	got := SelectPartial(pl, seqObjs(6), cands, 0)
	if got != 1 {
		t.Fatalf("fallback chose %d (distance 6 vector over distance 2)", got)
	}
}

func TestSelectOffsetObjectSet(t *testing.T) {
	// candidates over a non-contiguous object subset
	pl, _ := singlePlayer(t, "0101010101", 9)
	objs := []int{1, 3, 5, 7, 9} // truth restricted: 11111
	cands := []bitvec.Partial{
		part(t, "00000"),
		part(t, "11111"),
	}
	if got := SelectPartial(pl, objs, cands, 0); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestSelectValuesBasic(t *testing.T) {
	truth := []uint32{3, 1, 4, 1, 5}
	probes := 0
	probeVal := func(t int) uint32 { probes++; return truth[t] }
	cands := [][]uint32{
		{3, 1, 4, 1, 5}, // exact
		{2, 7, 1, 8, 2},
		{3, 1, 4, 1, 6}, // distance 1
	}
	if got := SelectValues(probeVal, cands, 0); got != 0 {
		t.Fatalf("got %d", got)
	}
	if probes > len(cands)*1 {
		t.Fatalf("probes %d > k(D+1) = %d", probes, len(cands))
	}
}

func TestSelectValuesBudget(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		width := 40
		k := 2 + r.Intn(5)
		d := r.Intn(4)
		truth := make([]uint32, width)
		for i := range truth {
			truth[i] = uint32(r.Intn(3))
		}
		cands := make([][]uint32, k)
		planted := append([]uint32(nil), truth...)
		for x := 0; x < d; x++ {
			planted[r.Intn(width)] ^= 1
		}
		cands[0] = planted
		for i := 1; i < k; i++ {
			c := make([]uint32, width)
			for j := range c {
				c[j] = uint32(r.Intn(3))
			}
			cands[i] = c
		}
		probes := 0
		got := SelectValues(func(t int) uint32 { probes++; return truth[t] }, cands, d)
		if probes > k*(d+1) {
			t.Fatalf("probes %d > %d", probes, k*(d+1))
		}
		// verify optimality
		dist := func(c []uint32) int {
			n := 0
			for i := range c {
				if c[i] != truth[i] {
					n++
				}
			}
			return n
		}
		best := dist(cands[0])
		for _, c := range cands[1:] {
			if dd := dist(c); dd < best {
				best = dd
			}
		}
		if dist(cands[got]) != best {
			t.Fatalf("selected distance %d, best %d", dist(cands[got]), best)
		}
	}
}

func TestSelectValuesSingle(t *testing.T) {
	probes := 0
	got := SelectValues(func(int) uint32 { probes++; return 0 }, [][]uint32{{9, 9}}, 0)
	if got != 0 || probes != 0 {
		t.Fatalf("got %d with %d probes", got, probes)
	}
}

func TestSelectPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	pl, _ := singlePlayer(t, "0", 10)
	SelectPartial(pl, seqObjs(1), nil, 0)
}
