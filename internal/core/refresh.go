package core

import (
	"sort"
	"strconv"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// Refresh is the incremental-repair extension motivated by the paper's
// dynamic-environment scenario (quantified in experiments E17/E20):
// after communities have agreed on outputs and the world drifts in a
// bounded number of coordinates, a full re-run costs a fresh
// polylog(n)/α budget; Refresh instead repairs the stale outputs at
// ~redundancy·m/(αn) + drift probes per player.
//
// The paper's problem statement makes every output vector public ("w(p)
// is accessible to all players"), which Refresh exploits:
//
//  1. Players post their stale outputs; every vector held by at least
//     alpha·|players| posters identifies a consensus group (one per
//     community that previously converged).
//  2. Within each group, a public-coin assignment spreads the group's
//     coordinates over its holders with the given redundancy; each
//     holder re-probes its share and posts a patch where the world
//     disagrees with the group consensus. Holders' stale outputs equal
//     the consensus, so patches are exactly the drifted coordinates —
//     players outside the group never post into it, and coverage is
//     exact rather than probabilistic.
//  3. Every group member verifies each posted patch coordinate with one
//     probe of its own (ground truth for that player) and rewrites it.
//
// Players not in any consensus group keep their stale output unchanged
// (they went it alone before; they can re-probe alone too).
//
// Epoch re-entry (the serving daemon's churn path): a player whose
// stale entry is the zero-value Partial (Len() == 0 — distinct from
// NewPartial(m), the all-'?' vector of full length) is a *joiner*: it
// has no previous output to post, is excluded from the consensus
// threshold, and after the groups repair it adopts the repaired
// consensus vector that looks closest to its own taste via RSelect —
// the same Choose-Closest guarantee every returning member relies on.
// A joiner facing no consensus group keeps the zero-value output; the
// caller is expected to fall back to a full run for that epoch.
//
// maxPatches caps per-player verification in case the world drifted
// beyond expectation; patches past the cap (most-voted first) are
// dropped, leaving at most that many stale coordinates.
func Refresh(env *Env, players []int, objs []int, stale []bitvec.Partial, alpha float64, redundancy, maxPatches int) []bitvec.Partial {
	out := make([]bitvec.Partial, env.N)
	if len(players) == 0 || len(objs) == 0 {
		return out
	}
	if redundancy < 1 {
		redundancy = 1
	}
	if maxPatches < 1 {
		maxPatches = len(objs)
	}
	if !env.spanOff("refresh") {
		defer env.spanPlayers("refresh", players, "players", len(players), "objs", len(objs), "redundancy", redundancy)()
	}
	tag := env.freshTag("rf")
	coin := env.Public.Stream(tag, 0)

	// The stale inputs are the last completed epoch: checkpoint them so
	// an abort mid-repair reports them instead of a half-patched mix.
	env.saveCheckpoint(stale, 0)

	// Step 1: identify consensus groups from the (public) stale outputs.
	// Joiners have nothing to post and do not dilute the threshold.
	staleTopic := tag + "/stale"
	posters := 0
	for _, p := range players {
		out[p] = stale[p].Clone() // default: keep stale
		if stale[p].Len() == 0 {
			continue // joiner
		}
		posters++
		env.Board.Post(staleTopic, p, stale[p])
	}
	need := int(alpha * float64(posters))
	if need < 2 {
		need = 2
	}
	votes := env.Board.Votes(staleTopic)
	env.Board.DropTopic(staleTopic)

	// Abort-path cleanup: the stale topic and any in-flight patch topic
	// use deterministic tags; drop them quietly so an aborted repair does
	// not leak postings into the next run on a shared board.
	groupID := 0
	defer func() {
		if rec := recover(); rec != nil {
			env.dropQuietly(staleTopic)
			for g := 0; g <= groupID; g++ {
				env.dropQuietly(tag + "/patches/" + strconv.Itoa(g))
			}
			panic(rec)
		}
	}()
	var repaired []bitvec.Partial
	for _, v := range votes {
		if v.Count < need {
			continue
		}
		env.checkAborted()
		repaired = append(repaired, refreshGroup(env, coin, objs, v.Voters, v.Vec, out,
			redundancy, maxPatches, tag, groupID))
		groupID++
	}
	adoptJoiners(env, players, objs, stale, repaired, out, tag)
	return out
}

// adoptJoiners has every joiner (zero-length stale entry) RSelect among
// the repaired consensus vectors and adopt the closest-looking one,
// Fill(0)-normalized like every cross-candidate comparison (see
// pickBest). Joiners probe only here: len(repaired)·RSelC·log n probes
// each, the same budget a returning member spends picking between two
// anytime phases. With no repaired groups the joiners keep their
// zero-value outputs and the caller decides whether to run fully.
func adoptJoiners(env *Env, players, objs []int, stale, repaired, out []bitvec.Partial, tag string) {
	var joiners []int
	for _, p := range players {
		if stale[p].Len() == 0 {
			joiners = append(joiners, p)
		}
	}
	if len(joiners) == 0 || len(repaired) == 0 {
		return
	}
	cands := make([]bitvec.Partial, len(repaired))
	for i, r := range repaired {
		cands[i] = bitvec.PartialOf(r.Fill(0))
	}
	cLogN := RSelSamples(env.Cfg, env.N)
	env.phase(joiners, func(p int) {
		pl := env.Engine.Player(p)
		r := env.Public.Stream(tag+"/adopt", p)
		out[p] = cands[RSelect(pl, r, objs, cands, cLogN)]
	})
}

// refreshGroup repairs one consensus group's shared output and returns
// the repaired consensus vector: the old consensus with each selected
// patch coordinate rewritten to its majority-voted value. Individual
// members self-verify every patch with their own probes; the returned
// vector is the group-level view joiners adopt from.
func refreshGroup(env *Env, coin *rng.Rand, objs []int, holders []int,
	consensus bitvec.Partial, out []bitvec.Partial,
	redundancy, maxPatches int, tag string, groupID int) bitvec.Partial {

	topic := tag + "/patches/" + strconv.Itoa(groupID)

	// Public-coin assignment: each coordinate to `redundancy` holders.
	assigned := make(map[int][]int, len(holders)) // player -> local coords
	order := coin.Perm(len(objs))
	for rep := 0; rep < redundancy; rep++ {
		offset := coin.Intn(len(holders))
		for i, lc := range order {
			p := holders[(i+offset)%len(holders)]
			assigned[p] = append(assigned[p], lc)
		}
	}

	// Phase 1: holders re-probe their share against the group consensus.
	env.phase(holders, func(p int) {
		pl := env.Engine.Player(p)
		for _, lc := range assigned[p] {
			v := pl.Probe(objs[lc])
			if consensus.Get(lc) != v {
				env.Board.PostValues(topic, p, []uint32{uint32(lc), uint32(v)})
			}
		}
	})

	// Collect patch coordinates, most-voted first, capped. Votes are
	// tallied per (coordinate, value) so the repaired consensus can take
	// the majority value at each patched coordinate.
	byCoord := map[int][2]int{}
	for _, v := range env.Board.ValueVotes(topic) {
		if len(v.Vals) == 2 && v.Vals[1] <= 1 {
			t := byCoord[int(v.Vals[0])]
			t[v.Vals[1]] += v.Count
			byCoord[int(v.Vals[0])] = t
		}
	}
	type patch struct{ lc, count int }
	patches := make([]patch, 0, len(byCoord))
	for lc, t := range byCoord {
		patches = append(patches, patch{lc, t[0] + t[1]})
	}
	sort.Slice(patches, func(i, j int) bool {
		if patches[i].count != patches[j].count {
			return patches[i].count > patches[j].count
		}
		return patches[i].lc < patches[j].lc
	})
	if len(patches) > maxPatches {
		patches = patches[:maxPatches]
	}

	// Phase 2: every holder self-verifies each patch coordinate.
	env.phase(holders, func(p int) {
		pl := env.Engine.Player(p)
		for _, pa := range patches {
			out[p].SetBit(pa.lc, pl.Probe(objs[pa.lc]))
		}
	})
	env.Board.DropTopic(topic)

	repaired := consensus.Clone()
	for _, pa := range patches {
		t := byCoord[pa.lc]
		var v byte
		if t[1] >= t[0] {
			v = 1
		}
		repaired.SetBit(pa.lc, v)
	}
	return repaired
}

// RefreshBudget returns the default re-verification redundancy and
// patch cap: redundancy 2 and a patch budget of 4·expected-drift
// (minimum 8).
func RefreshBudget(expectedDrift int) (redundancy, maxPatches int) {
	redundancy = 2
	maxPatches = 4 * expectedDrift
	if maxPatches < 8 {
		maxPatches = 8
	}
	return redundancy, maxPatches
}
