package core

import (
	"sort"
	"strconv"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// Refresh is the incremental-repair extension motivated by the paper's
// dynamic-environment scenario (quantified in experiments E17/E20):
// after communities have agreed on outputs and the world drifts in a
// bounded number of coordinates, a full re-run costs a fresh
// polylog(n)/α budget; Refresh instead repairs the stale outputs at
// ~redundancy·m/(αn) + drift probes per player.
//
// The paper's problem statement makes every output vector public ("w(p)
// is accessible to all players"), which Refresh exploits:
//
//  1. Players post their stale outputs; every vector held by at least
//     alpha·|players| posters identifies a consensus group (one per
//     community that previously converged).
//  2. Within each group, a public-coin assignment spreads the group's
//     coordinates over its holders with the given redundancy; each
//     holder re-probes its share and posts a patch where the world
//     disagrees with the group consensus. Holders' stale outputs equal
//     the consensus, so patches are exactly the drifted coordinates —
//     players outside the group never post into it, and coverage is
//     exact rather than probabilistic.
//  3. Every group member verifies each posted patch coordinate with one
//     probe of its own (ground truth for that player) and rewrites it.
//
// Players not in any consensus group keep their stale output unchanged
// (they went it alone before; they can re-probe alone too).
//
// maxPatches caps per-player verification in case the world drifted
// beyond expectation; patches past the cap (most-voted first) are
// dropped, leaving at most that many stale coordinates.
func Refresh(env *Env, players []int, objs []int, stale []bitvec.Partial, alpha float64, redundancy, maxPatches int) []bitvec.Partial {
	out := make([]bitvec.Partial, env.N)
	if len(players) == 0 || len(objs) == 0 {
		return out
	}
	if redundancy < 1 {
		redundancy = 1
	}
	if maxPatches < 1 {
		maxPatches = len(objs)
	}
	if !env.spanOff("refresh") {
		defer env.spanPlayers("refresh", players, "players", len(players), "objs", len(objs), "redundancy", redundancy)()
	}
	tag := env.freshTag("rf")
	coin := env.Public.Stream(tag, 0)

	// Step 1: identify consensus groups from the (public) stale outputs.
	staleTopic := tag + "/stale"
	for _, p := range players {
		out[p] = stale[p].Clone() // default: keep stale
		env.Board.Post(staleTopic, p, stale[p])
	}
	need := int(alpha * float64(len(players)))
	if need < 2 {
		need = 2
	}
	votes := env.Board.Votes(staleTopic)
	env.Board.DropTopic(staleTopic)

	// Abort-path cleanup: the stale topic and any in-flight patch topic
	// use deterministic tags; drop them quietly so an aborted repair does
	// not leak postings into the next run on a shared board.
	groupID := 0
	defer func() {
		if rec := recover(); rec != nil {
			env.dropQuietly(staleTopic)
			for g := 0; g <= groupID; g++ {
				env.dropQuietly(tag + "/patches/" + strconv.Itoa(g))
			}
			panic(rec)
		}
	}()
	for _, v := range votes {
		if v.Count < need {
			continue
		}
		env.checkAborted()
		refreshGroup(env, coin, objs, v.Voters, v.Vec, out, redundancy, maxPatches,
			tag, groupID)
		groupID++
	}
	return out
}

// refreshGroup repairs one consensus group's shared output.
func refreshGroup(env *Env, coin *rng.Rand, objs []int, holders []int,
	consensus bitvec.Partial, out []bitvec.Partial,
	redundancy, maxPatches int, tag string, groupID int) {

	topic := tag + "/patches/" + strconv.Itoa(groupID)

	// Public-coin assignment: each coordinate to `redundancy` holders.
	assigned := make(map[int][]int, len(holders)) // player -> local coords
	order := coin.Perm(len(objs))
	for rep := 0; rep < redundancy; rep++ {
		offset := coin.Intn(len(holders))
		for i, lc := range order {
			p := holders[(i+offset)%len(holders)]
			assigned[p] = append(assigned[p], lc)
		}
	}

	// Phase 1: holders re-probe their share against the group consensus.
	env.phase(holders, func(p int) {
		pl := env.Engine.Player(p)
		for _, lc := range assigned[p] {
			v := pl.Probe(objs[lc])
			if consensus.Get(lc) != v {
				env.Board.PostValues(topic, p, []uint32{uint32(lc), uint32(v)})
			}
		}
	})

	// Collect patch coordinates, most-voted first, capped.
	byCoord := map[int]int{}
	for _, v := range env.Board.ValueVotes(topic) {
		if len(v.Vals) == 2 {
			byCoord[int(v.Vals[0])] += v.Count
		}
	}
	type patch struct{ lc, count int }
	patches := make([]patch, 0, len(byCoord))
	for lc, c := range byCoord {
		patches = append(patches, patch{lc, c})
	}
	sort.Slice(patches, func(i, j int) bool {
		if patches[i].count != patches[j].count {
			return patches[i].count > patches[j].count
		}
		return patches[i].lc < patches[j].lc
	})
	if len(patches) > maxPatches {
		patches = patches[:maxPatches]
	}

	// Phase 2: every holder self-verifies each patch coordinate.
	env.phase(holders, func(p int) {
		pl := env.Engine.Player(p)
		for _, pa := range patches {
			out[p].SetBit(pa.lc, pl.Probe(objs[pa.lc]))
		}
	})
	env.Board.DropTopic(topic)
}

// RefreshBudget returns the default re-verification redundancy and
// patch cap: redundancy 2 and a patch budget of 4·expected-drift
// (minimum 8).
func RefreshBudget(expectedDrift int) (redundancy, maxPatches int) {
	redundancy = 2
	maxPatches = 4 * expectedDrift
	if maxPatches < 8 {
		maxPatches = 8
	}
	return redundancy, maxPatches
}
