package core

import (
	"math"

	"tellme/internal/bitvec"
)

// CandidateDs returns the diameter guesses the unknown-D wrapper tries:
// 0 and the powers of two up to m (Section 6).
func CandidateDs(m int) []int {
	ds := []int{0}
	for d := 1; d < m; d *= 2 {
		ds = append(ds, d)
	}
	if len(ds) == 0 || ds[len(ds)-1] < m {
		ds = append(ds, m)
	}
	return ds
}

// UnknownD implements Section 6's wrapper for known α but unknown D: it
// runs the main algorithm once per candidate D ∈ {0, 1, 2, 4, ..., m}
// and every player picks the output that appears closest to its own
// vector using RSelect (no distance bound available).
//
// Cost is a log(m) factor over the known-D algorithm; quality is a
// constant factor worse (Theorem 1.1's statement absorbs both).
func UnknownD(env *Env, alpha float64) []bitvec.Partial {
	return UnknownDFor(env, alpha, allPlayers(env.N), allObjects(env.M))
}

// UnknownDFor is UnknownD restricted to a player subset over an object
// subset — the epoch re-entry form the serving daemon runs over the
// currently-admitted slots. The returned slice is indexed by player id
// (length env.N); entries outside the subset are zero-valued.
func UnknownDFor(env *Env, alpha float64, players, objs []int) []bitvec.Partial {
	if !env.spanOff("unknownd") {
		defer env.spanPlayers("unknownd", players, "alpha", alpha)()
	}
	ds := CandidateDs(len(objs))
	perD := make([][]bitvec.Partial, len(ds))
	for i, d := range ds {
		env.checkAborted()
		perD[i] = MainFor(env, alpha, d, players, objs)
	}
	return pickBest(env, perD, players, objs)
}

// pickBest has every player in the subset RSelect among the per-run
// output vectors assigned to it.
//
// Candidates are compared after applying the paper's output convention
// ("'?' entries may be set to 0"): comparing raw partial vectors with
// the ?-ignoring metric would let a mostly-undetermined vector beat a
// fully-specified one by being unfalsifiable on the few coordinates it
// commits to, even though its filled form is far from the truth.
func pickBest(env *Env, runs [][]bitvec.Partial, players, objs []int) []bitvec.Partial {
	out := make([]bitvec.Partial, env.N)
	cLogN := RSelSamples(env.Cfg, env.N)
	tag := env.freshTag("rsel")
	env.phase(players, func(p int) {
		cands := make([]bitvec.Partial, 0, len(runs))
		for _, r := range runs {
			if r[p].Len() > 0 {
				cands = append(cands, bitvec.PartialOf(r[p].Fill(0)))
			}
		}
		if len(cands) == 0 {
			out[p] = bitvec.NewPartial(env.M)
			return
		}
		pl := env.Engine.Player(p)
		r := env.Public.Stream(tag, p)
		out[p] = cands[RSelect(pl, r, objs, cands, cLogN)]
	})
	return out
}

// AnytimePhase reports the state after one phase of the anytime
// algorithm.
type AnytimePhase struct {
	// Phase is the 1-based phase index; phase j ran with α = 2^{-j}.
	Phase int
	// Alpha is the frequency parameter the phase assumed.
	Alpha float64
	// Outputs is each player's best output so far.
	Outputs []bitvec.Partial
	// MaxProbes is the maximum per-player probe count so far.
	MaxProbes int64
}

// Anytime implements Section 6's doubling scheme for unknown α (and
// unknown D): phase j runs the unknown-D algorithm with α = 2^{-j}, and
// players keep whichever output (across phases) looks closest via
// RSelect. It stops when the per-player probe budget is exhausted, when
// α drops below log n/n (below which going solo is better, per §3), or
// when observe returns false. observe may be nil.
//
// Returns the final best outputs. The quality after each phase is close
// to the best achievable with that phase's budget — the "anytime"
// property of Section 6.
func Anytime(env *Env, budget int64, observe func(AnytimePhase) bool) []bitvec.Partial {
	best := make([]bitvec.Partial, env.N)
	players := allPlayers(env.N)
	objs := allObjects(env.M)
	cLogN := RSelSamples(env.Cfg, env.N)
	minAlpha := math.Log(float64(env.N)+1) / float64(env.N)

	maxProbes := func() int64 {
		var worst int64
		for p := 0; p < env.N; p++ {
			if c := env.Engine.Charged(p); c > worst {
				worst = c
			}
		}
		return worst
	}

	for j := 1; ; j++ {
		env.checkAborted()
		alpha := math.Pow(2, -float64(j))
		if alpha < minAlpha {
			break
		}
		outs := UnknownD(env, alpha)
		env.phase(players, func(p int) {
			if best[p].Len() == 0 {
				best[p] = outs[p]
				return
			}
			// best and outs are already Fill(0)-normalized by pickBest.
			cands := []bitvec.Partial{best[p], outs[p]}
			pl := env.Engine.Player(p)
			r := env.Public.Stream("anytime-rsel", p*1024+j)
			best[p] = cands[RSelect(pl, r, objs, cands, cLogN)]
		})
		// Phase j is complete: its keep-best barrier has drained, so
		// best is a consistent output set. Checkpoint it — an abort in
		// phase j+1 then reports exactly phase j's outputs (entries are
		// only ever replaced, never mutated, so the copied slice stays
		// intact while the next phase reassigns best).
		env.saveCheckpoint(best, j)
		mp := maxProbes()
		if observe != nil && !observe(AnytimePhase{Phase: j, Alpha: alpha, Outputs: best, MaxProbes: mp}) {
			break
		}
		if budget > 0 && mp >= budget {
			break
		}
	}
	return best
}
