package core

import (
	"testing"

	"tellme/internal/prefs"
)

func TestSmallRadiusErrorBound(t *testing.T) {
	// Theorem 4.4: every typical player's output within 5D of its truth.
	for _, d := range []int{2, 4, 8} {
		in := prefs.Planted(256, 256, 0.5, d, uint64(d))
		env, _ := newTestEnv(t, in, uint64(d)+100)
		out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, d, 0)
		c := in.Communities[0]
		for _, p := range c.Members {
			if e := out[p].Dist(in.Truth[p]); e > 5*d {
				t.Fatalf("D=%d: member %d error %d > 5D=%d", d, p, e, 5*d)
			}
		}
	}
}

func TestSmallRadiusZeroDFallsBackToZeroRadius(t *testing.T) {
	in := prefs.Identical(128, 128, 0.5, 21)
	env, _ := newTestEnv(t, in, 22)
	out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 0, 0)
	c := in.Communities[0]
	for _, p := range c.Members {
		if !out[p].Equal(c.Center) {
			t.Fatalf("member %d wrong with D=0", p)
		}
	}
}

func TestSmallRadiusCheaperThanSolo(t *testing.T) {
	// The collaboration gain is asymptotic: the α/5 leaf threshold of the
	// inner ZeroRadius must be well below m/s, which needs n in the
	// thousands at these α and D (experiment E4 sweeps this). Below that
	// regime the algorithm degrades gracefully to per-part brute force.
	if testing.Short() {
		t.Skip("large instance")
	}
	in := prefs.Planted(4096, 4096, 0.5, 2, 23)
	env, _ := newTestEnv(t, in, 24)
	out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 2, 4)
	var maxProbes int64
	for p := 0; p < in.N; p++ {
		if c := env.Engine.Charged(p); c > maxProbes {
			maxProbes = c
		}
	}
	if maxProbes >= int64(in.M) {
		t.Fatalf("max per-player probes %d ≥ m=%d (no better than solo)", maxProbes, in.M)
	}
	c := in.Communities[0]
	bad := 0
	for _, p := range c.Members {
		if out[p].Dist(in.Truth[p]) > 5*2 {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d members exceeded 5D with K=4", bad)
	}
}

func TestSmallRadiusSubsetObjects(t *testing.T) {
	in := prefs.Planted(128, 256, 0.5, 4, 25)
	env, _ := newTestEnv(t, in, 26)
	objs := make([]int, 0, 128)
	for o := 0; o < 256; o += 2 {
		objs = append(objs, o)
	}
	out := SmallRadius(env, allPlayers(in.N), objs, 0.5, 4, 0)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := out[p].Dist(in.Truth[p].Project(objs)); e > 5*4 {
			t.Fatalf("member %d error %d on object subset", p, e)
		}
	}
}

func TestSmallRadiusSubsetPlayers(t *testing.T) {
	in := prefs.Planted(200, 128, 0.6, 4, 27)
	env, _ := newTestEnv(t, in, 28)
	players := allPlayers(100)
	inComm := map[int]bool{}
	for _, p := range in.Communities[0].Members {
		inComm[p] = true
	}
	commCount := 0
	for _, p := range players {
		if inComm[p] {
			commCount++
		}
	}
	alpha := float64(commCount) / float64(len(players))
	if alpha < 0.3 {
		t.Skip("unlucky overlap")
	}
	out := SmallRadius(env, players, seqObjs(in.M), alpha, 4, 0)
	for _, p := range players {
		if inComm[p] {
			if e := out[p].Dist(in.Truth[p]); e > 20 {
				t.Fatalf("member %d error %d", p, e)
			}
		}
	}
	if out[150].Len() != 0 {
		t.Fatal("non-participant has output")
	}
}

func TestSmallRadiusEmptyInputs(t *testing.T) {
	in := prefs.Planted(16, 16, 0.5, 2, 29)
	env, _ := newTestEnv(t, in, 30)
	out := SmallRadius(env, nil, seqObjs(16), 0.5, 2, 0)
	for _, v := range out {
		if v.Len() != 0 {
			t.Fatal("output for empty players")
		}
	}
	out = SmallRadius(env, allPlayers(16), nil, 0.5, 2, 0)
	for _, v := range out {
		if v.Len() != 0 {
			t.Fatal("output for empty objects")
		}
	}
}

func TestSmallRadiusDeterministic(t *testing.T) {
	in := prefs.Planted(64, 64, 0.5, 3, 31)
	run := func() []string {
		env, _ := newTestEnv(t, in, 32)
		out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 3, 4)
		ss := make([]string, in.N)
		for p := range ss {
			ss[p] = out[p].String()
		}
		return ss
	}
	a, b := run(), run()
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("nondeterministic at player %d", p)
		}
	}
}

func TestSmallRadiusKOne(t *testing.T) {
	// K=1 still produces valid (if less reliable) outputs; the error
	// bound is checked loosely since a single iteration may fail.
	in := prefs.Planted(256, 256, 0.5, 4, 33)
	env, _ := newTestEnv(t, in, 34)
	out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 4, 1)
	c := in.Communities[0]
	bad := 0
	for _, p := range c.Members {
		if out[p].Dist(in.Truth[p]) > 20 {
			bad++
		}
	}
	if bad > len(c.Members)/2 {
		t.Fatalf("K=1 failed for %d/%d members", bad, len(c.Members))
	}
}

func TestSmallRadiusSPartitionCount(t *testing.T) {
	cfg := DefaultConfig()
	if s := smallRadiusS(cfg, 4, 1000); s != 8 {
		t.Fatalf("s(4) = %d, want 8 (1·4^1.5)", s)
	}
	if s := smallRadiusS(cfg, 4, 5); s != 5 {
		t.Fatal("s not clamped to object count")
	}
	if s := smallRadiusS(cfg, 0, 10); s != 1 {
		t.Fatal("s(0) != 1")
	}
}

func BenchmarkSmallRadius512D4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Planted(512, 512, 0.5, 4, uint64(i))
		env, _ := newTestEnv(b, in, uint64(i)+1)
		_ = SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 4, 0)
	}
}
