package core

// Property-based tests (testing/quick) for the core algorithms'
// structural invariants over randomized inputs.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
)

// qmultiset is a random vector multiset with a planted cluster, for
// Coalesce properties.
type qmultiset struct {
	Vecs  []bitvec.Partial
	D     int
	Alpha float64
	NT    int // planted cluster size
	M     int
}

func (qmultiset) Generate(r *rand.Rand, size int) reflect.Value {
	g := rng.New(r.Uint64())
	m := 80 + g.Intn(200)
	d := 1 + g.Intn(8)
	n := 20 + g.Intn(40)
	alpha := 0.15 + 0.35*g.Float64()
	nT := int(math.Ceil(alpha * float64(n)))
	center := bitvec.Random(g, m)
	vecs := make([]bitvec.Partial, 0, n)
	for i := 0; i < nT; i++ {
		v := center.Clone()
		v.FlipRandom(g, g.Intn(d/2+1))
		vecs = append(vecs, bitvec.PartialOf(v))
	}
	for len(vecs) < n {
		vecs = append(vecs, bitvec.PartialOf(bitvec.Random(g, m)))
	}
	return reflect.ValueOf(qmultiset{Vecs: vecs, D: d, Alpha: alpha, NT: nT, M: m})
}

func TestQuickCoalesceCapAndSeparation(t *testing.T) {
	f := func(q qmultiset) bool {
		out := Coalesce(q.Vecs, q.D, q.Alpha)
		// |B| ≤ 1/α
		if float64(len(out)) > 1/q.Alpha+1e-9 {
			return false
		}
		// all output pairs separated by > 5D (the Step 4 stopping rule)
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if out[i].DistKnown(out[j]) <= 5*q.D {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoalesceClusterRepresented(t *testing.T) {
	f := func(q qmultiset) bool {
		out := Coalesce(q.Vecs, q.D, q.Alpha)
		// some output within 2D of every planted-cluster vector
		for _, o := range out {
			ok := true
			for i := 0; i < q.NT; i++ {
				if o.DistKnown(q.Vecs[i]) > 2*q.D {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoalesceOrderInvariance(t *testing.T) {
	f := func(q qmultiset, seed int64) bool {
		out1 := Coalesce(q.Vecs, q.D, q.Alpha)
		shuf := append([]bitvec.Partial(nil), q.Vecs...)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		out2 := Coalesce(shuf, q.D, q.Alpha)
		if len(out1) != len(out2) {
			return false
		}
		for i := range out1 {
			if !out1[i].Equal(out2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// qselect is a random Select problem with a planted in-bound candidate.
type qselect struct {
	Truth bitvec.Vector
	Cands []bitvec.Partial
	D     int
	Seed  uint64
}

func (qselect) Generate(r *rand.Rand, size int) reflect.Value {
	g := rng.New(r.Uint64())
	m := 30 + g.Intn(150)
	k := 2 + g.Intn(8)
	d := g.Intn(10)
	truth := bitvec.Random(g, m)
	cands := make([]bitvec.Partial, k)
	planted := truth.Clone()
	if d > 0 {
		planted.FlipRandom(g, g.Intn(d+1))
	}
	cands[0] = bitvec.PartialOf(planted)
	for i := 1; i < k; i++ {
		v := bitvec.Random(g, m)
		p := bitvec.PartialOf(v)
		// sprinkle some ?s
		for q := 0; q < m/10; q++ {
			p.SetUnknown(g.Intn(m))
		}
		cands[i] = p
	}
	g.Shuffle(k, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return reflect.ValueOf(qselect{Truth: truth, Cands: cands, D: d, Seed: r.Uint64()})
}

func TestQuickSelectBudgetAndOptimality(t *testing.T) {
	f := func(q qselect) bool {
		m := q.Truth.Len()
		in := prefs.FromVectors([]bitvec.Vector{q.Truth})
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(q.Seed))
		got := SelectPartial(e.Player(0), seqObjs(m), q.Cands, q.D)
		if e.Charged(0) > int64(len(q.Cands)*(q.D+1)) {
			return false // Theorem 3.2 budget
		}
		best := m + 1
		for _, c := range q.Cands {
			if dd := c.DistKnownVec(q.Truth); dd < best {
				best = dd
			}
		}
		return q.Cands[got].DistKnownVec(q.Truth) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRSelectBudget(t *testing.T) {
	f := func(q qselect) bool {
		m := q.Truth.Len()
		in := prefs.FromVectors([]bitvec.Vector{q.Truth})
		e := probe.NewEngine(in, billboard.New(1, m), rng.NewSource(q.Seed))
		cLogN := 12
		_ = RSelect(e.Player(0), rng.New(q.Seed+1), seqObjs(m), q.Cands, cLogN)
		k := len(q.Cands)
		return e.Charged(0) <= int64(k*(k-1)/2*cLogN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// qzr is a random identical-community ZeroRadius instance.
type qzr struct {
	N     int
	Alpha float64
	Seed  uint64
}

func (qzr) Generate(r *rand.Rand, size int) reflect.Value {
	ns := []int{64, 96, 128, 192}
	alphas := []float64{0.4, 0.5, 0.75, 1}
	return reflect.ValueOf(qzr{
		N:     ns[r.Intn(len(ns))],
		Alpha: alphas[r.Intn(len(alphas))],
		Seed:  r.Uint64(),
	})
}

func TestQuickZeroRadiusMembersAgree(t *testing.T) {
	// Invariant (weaker than exactness, holds even on unlucky seeds):
	// community members all output the SAME vector — ZeroRadius's
	// agreement property — and non-members still output total vectors.
	f := func(q qzr) bool {
		in := prefs.Identical(q.N, q.N, q.Alpha, q.Seed)
		b := billboard.New(in.N, in.M)
		e := probe.NewEngine(in, b, rng.NewSource(q.Seed+1))
		env := NewEnv(e, nil, rng.NewSource(q.Seed+2), DefaultConfig())
		out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), q.Alpha)
		c := in.Communities[0]
		first := out[c.Members[0]]
		for _, p := range c.Members {
			for j := range first {
				if out[p][j] != first[j] {
					return false
				}
			}
		}
		for p := 0; p < in.N; p++ {
			if len(out[p]) != in.M {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// qvals is a random SelectValues problem with a planted in-bound candidate.
type qvals struct {
	Truth []uint32
	Cands [][]uint32
	D     int
}

func (qvals) Generate(r *rand.Rand, size int) reflect.Value {
	g := rng.New(r.Uint64())
	width := 10 + g.Intn(60)
	k := 2 + g.Intn(6)
	d := g.Intn(6)
	truth := make([]uint32, width)
	for i := range truth {
		truth[i] = uint32(g.Intn(4))
	}
	cands := make([][]uint32, k)
	planted := append([]uint32(nil), truth...)
	for x := 0; x < d; x++ {
		planted[g.Intn(width)] = uint32(g.Intn(4))
	}
	cands[0] = planted
	for i := 1; i < k; i++ {
		c := make([]uint32, width)
		for j := range c {
			c[j] = uint32(g.Intn(4))
		}
		cands[i] = c
	}
	g.Shuffle(k, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return reflect.ValueOf(qvals{Truth: truth, Cands: cands, D: d})
}

func TestQuickSelectValuesBudgetAndOptimality(t *testing.T) {
	f := func(q qvals) bool {
		probes := 0
		got := SelectValues(func(t int) uint32 { probes++; return q.Truth[t] }, q.Cands, q.D)
		if probes > len(q.Cands)*(q.D+1) {
			return false
		}
		dist := func(c []uint32) int {
			n := 0
			for i := range c {
				if c[i] != q.Truth[i] {
					n++
				}
			}
			return n
		}
		best := dist(q.Cands[0])
		for _, c := range q.Cands[1:] {
			if dd := dist(c); dd < best {
				best = dd
			}
		}
		return dist(q.Cands[got]) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
