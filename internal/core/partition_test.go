package core

import (
	"math"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

func TestPartitionSuccessfulIdenticalVectors(t *testing.T) {
	r := rng.New(1)
	v := bitvec.Random(r, 64)
	vecs := []bitvec.Vector{v, v, v, v, v}
	parts := [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7, 8}}
	if !PartitionSuccessful(vecs, parts) {
		t.Fatal("identical vectors judged unsuccessful")
	}
}

func TestPartitionSuccessfulEmpty(t *testing.T) {
	if !PartitionSuccessful(nil, [][]int{{0, 1}}) {
		t.Fatal("empty vector set should be trivially successful")
	}
	r := rng.New(2)
	vecs := []bitvec.Vector{bitvec.Random(r, 8)}
	if !PartitionSuccessful(vecs, [][]int{{}}) {
		t.Fatal("empty part should be trivially agreed on")
	}
}

func TestPartitionUnsuccessfulSpreadDisagreements(t *testing.T) {
	// 5 vectors pairwise differing inside one part: no 1/5 quorum
	// (need ⌈5/5⌉=1... use 6 vectors, need 2, all distinct on the part).
	m := 8
	vecs := make([]bitvec.Vector, 6)
	for i := range vecs {
		v := bitvec.New(m)
		// encode i in the first 3 coordinates
		for b := 0; b < 3; b++ {
			if i>>b&1 == 1 {
				v.Set(b, 1)
			}
		}
		vecs[i] = v
	}
	parts := [][]int{{0, 1, 2}, {3, 4, 5, 6, 7}}
	if PartitionSuccessful(vecs, parts) {
		t.Fatal("all-distinct part judged successful")
	}
}

func TestLemma41EmpiricalRate(t *testing.T) {
	// For s ≥ 100·d^{3/2} the failure probability is < 1/2; empirically
	// it is far smaller. We verify the ≥ 1/2 success claim with margin.
	r := rng.New(3)
	m := 2000
	d := 4
	s := int(100 * math.Pow(float64(d), 1.5)) // 800
	center := bitvec.Random(r, m)
	const M = 30
	vecs := make([]bitvec.Vector, M)
	for i := range vecs {
		v := center.Clone()
		v.FlipRandom(r, r.Intn(d/2+1))
		vecs[i] = v
	}
	succ := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		if RandomPartitionTrial(r, vecs, m, s) {
			succ++
		}
	}
	if succ < trials/2 {
		t.Fatalf("success rate %d/%d below 1/2 at paper's s", succ, trials)
	}
}

func TestPartitionFailureBoundFormula(t *testing.T) {
	// at s = 100·d^{3/2}: bound = 10³·5⁵·d³/(6!·10⁴·d³) = 3125/7200 < 1/2
	for _, d := range []int{1, 4, 9, 25} {
		s := int(100 * math.Pow(float64(d), 1.5))
		b := PartitionFailureBound(d, s)
		if b >= 0.5 {
			t.Fatalf("d=%d s=%d: bound %v ≥ 1/2", d, s, b)
		}
	}
	if PartitionFailureBound(3, 0) != 1 {
		t.Fatal("s=0 should return 1")
	}
	// bound decreases in s
	if PartitionFailureBound(4, 100) <= PartitionFailureBound(4, 200) {
		t.Fatal("bound not decreasing in s")
	}
}
