package core

import (
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/bitvec"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// newTestEnv wires an Env over the instance with deterministic seeds.
func newTestEnv(t testing.TB, in *prefs.Instance, seed uint64) (*Env, *probe.Engine) {
	t.Helper()
	b := billboard.New(in.N, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(seed).Child("engine", 0))
	env := NewEnv(e, sim.NewRunner(0), rng.NewSource(seed).Child("public", 0), DefaultConfig())
	return env, e
}

func vec(t testing.TB, s string) bitvec.Vector {
	t.Helper()
	v, err := bitvec.FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func part(t testing.TB, s string) bitvec.Partial {
	t.Helper()
	p, err := bitvec.PartialFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// seqObjs returns [0, k).
func seqObjs(k int) []int { return ints.Iota(k) }

// singlePlayer builds a 1-player instance with the given truth string
// and returns its probe handle plus the engine.
func singlePlayer(t testing.TB, truth string, seed uint64) (*probe.Player, *probe.Engine) {
	t.Helper()
	in := prefs.FromVectors([]bitvec.Vector{vec(t, truth)})
	b := billboard.New(1, in.M)
	e := probe.NewEngine(in, b, rng.NewSource(seed))
	return e.Player(0), e
}
