package core

import (
	"slices"
	"testing"

	"tellme/internal/ints"
	"tellme/internal/rng"
)

// The arena-backed partition helpers must consume the public coin
// stream exactly like the heap originals and produce identical splits —
// anything else would silently shift every downstream probe sequence.

func TestSplitHalfArenaMatchesHeap(t *testing.T) {
	var sc coScratch
	for _, n := range []int{0, 1, 2, 7, 64, 101} {
		ids := ints.Iota(n)
		wantA, wantB := splitHalf(rng.New(99), ids)
		m := sc.mark()
		gotA, gotB := splitHalfArena(&sc, rng.New(99), ids)
		if !slices.Equal(gotA, wantA) || !slices.Equal(gotB, wantB) {
			t.Fatalf("n=%d: arena split (%v,%v) != heap split (%v,%v)", n, gotA, gotB, wantA, wantB)
		}
		// The halves must not alias the input (both are shuffles of a copy).
		if n > 0 && &ids[0] == &gotA[0] {
			t.Fatal("arena split aliases the input slice")
		}
		sc.release(m)
	}
}

func TestAssignPartsArenaMatchesHeap(t *testing.T) {
	var sc coScratch
	for _, tc := range []struct{ n, parts int }{{0, 1}, {5, 1}, {9, 3}, {100, 7}, {64, 64}} {
		ids := ints.Iota(tc.n)
		want := assignParts(rng.New(5), ids, tc.parts)
		m := sc.mark()
		got := assignPartsArena(&sc, rng.New(5), ids, tc.parts)
		if len(got) != len(want) {
			t.Fatalf("n=%d parts=%d: got %d parts, want %d", tc.n, tc.parts, len(got), len(want))
		}
		for a := range want {
			if !slices.Equal(got[a], want[a]) {
				t.Fatalf("n=%d parts=%d part %d: %v != %v", tc.n, tc.parts, a, got[a], want[a])
			}
		}
		sc.release(m)
	}
}

// Mark/release must recycle the scratch memory: a second identical call
// after release reuses the same backing arrays instead of growing.
func TestScratchRecycledAcrossCalls(t *testing.T) {
	var sc coScratch
	ids := ints.Iota(200)

	m := sc.mark()
	first := assignPartsArena(&sc, rng.New(1), ids, 5)
	p0 := &first[0]
	sc.release(m)

	m = sc.mark()
	second := assignPartsArena(&sc, rng.New(1), ids, 5)
	if p0 != &second[0] {
		t.Fatal("part headers not recycled after release")
	}
	sc.release(m)
}
