package core

import (
	"fmt"
	"math"
	"strconv"

	"tellme/internal/billboard"
	"tellme/internal/probe"
)

// ObjectSpace abstracts the objects ZeroRadius divides and probes.
//
// For the plain algorithm the abstract objects are real objects and a
// probe is one billboard probe (BinarySpace). For Large Radius, Step 4,
// each abstract object is a whole object group whose possible values are
// Coalesce candidates; probing it runs Select over the group
// (VirtualSpace in largeradius.go).
type ObjectSpace interface {
	// Len returns the number of abstract objects.
	Len() int
	// Probe reveals player pl's value for abstract object j, charging
	// pl for whatever real probing that takes.
	Probe(pl *probe.Player, j int) uint32
}

// BatchObjectSpace is implemented by object spaces whose probes have no
// sequential dependency, so a whole set of abstract objects can be
// probed in one batched call (one network round trip against a remote
// billboard). ZeroRadius leaves use it when available; spaces whose
// probes are adaptive (VirtualSpace runs Select per probe) simply don't
// implement it and keep the per-object path.
type BatchObjectSpace interface {
	ObjectSpace
	// ProbeMany probes abstract objects js, writing values into dst
	// (dst[k] for js[k]), equivalently to calling Probe per object.
	ProbeMany(pl *probe.Player, js []int, dst []uint32)
}

// BinarySpace is the identity ObjectSpace: abstract object j is the real
// object Objs[j] and its value is the player's 0/1 grade.
type BinarySpace struct {
	Objs []int
}

// Len implements ObjectSpace.
func (s BinarySpace) Len() int { return len(s.Objs) }

// Probe implements ObjectSpace.
func (s BinarySpace) Probe(pl *probe.Player, j int) uint32 {
	return uint32(pl.Probe(s.Objs[j]))
}

// ProbeMany implements BatchObjectSpace: one batched probe call for the
// mapped real objects.
func (s BinarySpace) ProbeMany(pl *probe.Player, js []int, dst []uint32) {
	objs := pl.ObjScratch(len(js))
	for k, j := range js {
		objs[k] = s.Objs[j]
	}
	pl.ProbeMany(objs, dst)
}

// zrNode is one node of the ZeroRadius recursion tree. The tree is built
// by the shared coin, so every player knows the full structure. The
// billboard topic is precomputed so the per-player phase bodies never
// format strings.
type zrNode struct {
	id          int
	depth       int
	topic       string
	ref         billboard.TopicRef // resolved for the node's posting level
	players     []int
	objs        []int // abstract object ids
	cands       [][]uint32
	left, right *zrNode
}

func (nd *zrNode) leaf() bool { return nd.left == nil }

// postHinter is optionally implemented by boards that can presize a
// topic's posting storage ahead of a known burst of posts (see
// billboard.Board.HintPosts). Purely a capacity hint — postings and
// tallies are unchanged — so remote or wrapped boards that don't
// implement it just grow on demand.
type postHinter interface {
	HintPosts(name string, vectors, values int)
}

// refPoster is optionally implemented by boards that can resolve a
// topic once and take posts through the handle, sparing the per-player
// phase bodies a registry lookup per post (billboard.Board.TopicRef).
type refPoster interface {
	TopicRef(name string) billboard.TopicRef
	PostValuesRef(r billboard.TopicRef, player int, vals []uint32)
}

// batchPoster is optionally implemented by boards that can take a whole
// node's posting burst in one call (billboard.Board.PostValuesBatchRef).
// ZeroRadius posts one value vector per player per node per level, and
// nothing reads a node's topic until the level's phase barrier has
// passed — so the coordinator can hold each phase's rows (they are
// pre-published scratch, written during the phase) and ship them per
// node afterwards, equivalently to the per-player posts but with one
// lock acquisition and one storage carve per node instead of per post.
type batchPoster interface {
	TopicRef(name string) billboard.TopicRef
	PostValuesBatchRef(r billboard.TopicRef, players []int, rows [][]uint32)
}

// ZeroRadius implements Algorithm Zero Radius (Fig. 2) for the players
// in `players` over the given object space, with frequency parameter
// alpha.
//
// Returns out[p] = player p's output value vector (length space.Len(),
// indexed by abstract object id); entries for non-participating players
// are nil. If at least alpha·len(players) participants share identical
// value vectors, Theorem 3.1 says w.h.p. they all output that shared
// vector, after O(log n/α) probes each (times the per-probe cost of the
// space).
func ZeroRadius(env *Env, players []int, space ObjectSpace, alpha float64) [][]uint32 {
	out := make([][]uint32, env.N)
	flat := zeroRadiusFlat(env, players, space, alpha)
	width := space.Len()
	for i, p := range players {
		out[p] = flat[i*width : (i+1)*width]
	}
	return out
}

// zeroRadiusFlat is ZeroRadius with positional, packed output: the
// returned slice holds players[i]'s value vector at
// [i*width, (i+1)*width), width = space.Len(). One heap allocation
// total, nothing sized by env.N — the recursive callers (SmallRadius
// runs one ZeroRadius per partition part per iteration, usually over a
// small player group) use it directly.
func zeroRadiusFlat(env *Env, players []int, space ObjectSpace, alpha float64) []uint32 {
	if len(players) == 0 {
		return nil
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: ZeroRadius alpha %v out of (0,1]", alpha))
	}
	env.count(CountZeroRadius)
	if !env.spanOff("zeroradius") {
		defer env.spanPlayers("zeroradius", players, "players", len(players), "objs", space.Len(), "alpha", alpha)()
	}
	tag := env.freshTag("zr")
	threshold := env.leafThreshold(alpha)

	// All per-call working memory — tree nodes, shuffled halves, posting
	// scratch — comes from the coordinator arena and is recycled on
	// return; only the returned out rows are heap-allocated. The release
	// defer is registered before the abort-cleanup defer below, so on an
	// abort the cleanup still reads live node topics first (LIFO).
	sc := &env.scratch
	defer sc.release(sc.mark())

	// Build the recursion tree with public coins.
	coin := env.Public.Stream(tag, 0)
	nextID := 0
	objs := sc.iota(space.Len())
	var build func(ps, os []int, depth int) *zrNode
	var byLevel [][]*zrNode
	build = func(ps, os []int, depth int) *zrNode {
		nd := &sc.nodes.Make(1)[0]
		nd.id = nextID
		nd.depth = depth
		var tb [32]byte
		tbuf := append(tb[:0], tag...)
		tbuf = append(tbuf, '/')
		nd.topic = string(strconv.AppendInt(tbuf, int64(nextID), 10))
		nd.players = ps
		nd.objs = os
		nextID++
		for len(byLevel) <= depth {
			byLevel = append(byLevel, nil)
		}
		byLevel[depth] = append(byLevel[depth], nd)
		if min(len(ps), len(os)) >= threshold {
			pa, pb := splitHalfArena(sc, coin, ps)
			oa, ob := splitHalfArena(sc, coin, os)
			nd.left = build(pa, oa, depth+1)
			nd.right = build(pb, ob, depth+1)
		}
		return nd
	}
	root := build(sc.a.CopyInts(players), objs, 0)

	// Abort-path cleanup: topic tags are deterministic (freshTag is a
	// plain sequence number — load-bearing for public-coin streams), so
	// a run aborted mid-level would leave partial postings that a later
	// run on the same shared board would read as its own. Drop every
	// node topic quietly before letting the abort continue; on the
	// normal path topics are dropped level-by-level below and re-drops
	// are no-ops.
	defer func() {
		if rec := recover(); rec != nil {
			for _, level := range byLevel {
				for _, nd := range level {
					env.dropQuietly(nd.topic)
				}
			}
			panic(rec)
		}
	}()

	// childAt[i] tracks the node players[i] most recently completed, so
	// an internal node knows which child the player came from; posOf
	// maps the player id back to i inside phase bodies. The returned
	// flat output is the sole heap allocation (it outlives the call, so
	// it must not be arena-backed); the per-player posting scratch rows
	// are arena-backed and handed out here, before any phase runs, so
	// phase bodies only ever write into pre-published rows.
	posOf := sc.fillPos(env.N, players)
	childAt := sc.nodePtrs.Make(len(players))
	nodeAt := sc.nodePtrs.Make(len(players))
	scratch := sc.u32Lists.Make(len(players))
	width := space.Len()
	flat := make([]uint32, len(players)*width)
	scratchBacking := sc.a.U32s(len(players) * width)
	for i := range players {
		scratch[i] = scratchBacking[i*width : (i+1)*width]
	}

	// Process levels bottom-up. At each level, leaves probe everything
	// they own and post; internal nodes adopt the sibling half's popular
	// vector via Select and post the combined vector.
	//
	// The vote tally over a sibling's postings is identical for every
	// reader (the billboard's deterministic, epoch-cached ValueVotes),
	// so it is computed once per node before the phase rather than once
	// per player — the distributed "scan the billboard" step costs no
	// probes, and recomputing it n times per level would dominate
	// simulation time.
	phasePlayers := sc.a.Ints(len(players))[:0]
	batchSpace, batched := space.(BatchObjectSpace)
	hinter, _ := env.Board.(postHinter)
	refBoard, _ := env.Board.(refPoster)
	batcher, _ := env.Board.(batchPoster)
	for level := len(byLevel) - 1; level >= 0; level-- {
		env.checkAborted()
		phasePlayers = phasePlayers[:0]
		for _, nd := range byLevel[level] {
			for _, p := range nd.players {
				nodeAt[posOf[p]] = nd
			}
			phasePlayers = append(phasePlayers, nd.players...)
			if hinter != nil && batcher == nil && len(nd.players) > 0 {
				// Every player of the node posts exactly one value
				// vector to its topic in the phase below. (The batched
				// path presizes exactly on its own.)
				hinter.HintPosts(nd.topic, 0, len(nd.players))
			}
			if refBoard != nil {
				nd.ref = refBoard.TopicRef(nd.topic)
			} else if batcher != nil {
				nd.ref = batcher.TopicRef(nd.topic)
			}
			if !nd.leaf() {
				for _, child := range [2]*zrNode{nd.left, nd.right} {
					child.cands = popularValueCands(env, child.topic, child, alpha)
				}
			}
		}
		env.phase(phasePlayers, func(p int) {
			i := posOf[p]
			nd := nodeAt[i]
			pl := env.Engine.Player(p)
			row := flat[i*width : (i+1)*width]
			if nd.leaf() {
				// Step 1: probe every object of the node. Leaf probes
				// have no sequential dependency, so a batch-capable
				// space ships them (and their billboard postings) in
				// one batched call.
				vals := scratch[i][:len(nd.objs)]
				if batched {
					batchSpace.ProbeMany(pl, nd.objs, vals)
				} else {
					for j, obj := range nd.objs {
						vals[j] = space.Probe(pl, obj)
					}
				}
				for j, obj := range nd.objs {
					row[obj] = vals[j]
				}
				if batcher == nil {
					if refBoard != nil {
						refBoard.PostValuesRef(nd.ref, p, vals)
					} else {
						env.Board.PostValues(nd.topic, p, vals)
					}
				}
				childAt[i] = nd
				return
			}
			// Step 4: adopt the sibling half's output for its objects.
			mine := childAt[i]
			sib := nd.left
			if sib == mine {
				sib = nd.right
			}
			adoptSibling(pl, space, row, sib, sib.cands)
			childAt[i] = nd
			// Post the combined vector for this node.
			vals := scratch[i][:len(nd.objs)]
			for j, obj := range nd.objs {
				vals[j] = row[obj]
			}
			if batcher == nil {
				if refBoard != nil {
					refBoard.PostValuesRef(nd.ref, p, vals)
				} else {
					env.Board.PostValues(nd.topic, p, vals)
				}
			}
		})
		if batcher != nil {
			// Ship every node's posting burst now that the phase barrier
			// has passed; per-topic posting order (nd.players order) is
			// exactly what the per-player path produced.
			for _, nd := range byLevel[level] {
				if len(nd.players) == 0 {
					continue
				}
				rows := sc.u32Lists.Make(len(nd.players))
				for j, p := range nd.players {
					rows[j] = scratch[posOf[p]][:len(nd.objs)]
				}
				batcher.PostValuesBatchRef(nd.ref, nd.players, rows)
			}
		}
		// Completed child topics are no longer read; free them.
		if level+1 < len(byLevel) {
			for _, nd := range byLevel[level+1] {
				env.Board.DropTopic(nd.topic)
			}
		}
	}
	env.Board.DropTopic(root.topic)
	return flat
}

// popularValueCands tallies a node's posted vectors and returns those
// with at least VoteFrac·alpha·|players| votes (Fig. 2, Step 4's set V),
// falling back to all posted vectors when none is popular enough (the
// premise-violated case Theorem 3.1 does not cover).
func popularValueCands(env *Env, topic string, nd *zrNode, alpha float64) [][]uint32 {
	votes := env.Board.ValueVotes(topic)
	need := int(math.Ceil(alpha * env.Cfg.VoteFrac * float64(len(nd.players))))
	if need < 1 {
		need = 1
	}
	var cands [][]uint32
	for _, v := range votes {
		if v.Count >= need {
			cands = append(cands, v.Vals)
		}
	}
	if len(cands) == 0 {
		for _, v := range votes {
			cands = append(cands, v.Vals)
		}
	}
	return cands
}

// adoptSibling performs Fig. 2's Step 4 for one player: run Select with
// distance bound 0 over the sibling's popular vectors and write the
// winner into dst at the sibling's object positions.
func adoptSibling(pl *probe.Player, space ObjectSpace, dst []uint32, sib *zrNode, cands [][]uint32) {
	if len(cands) == 0 {
		return // sibling posted nothing (empty node); leave zeros
	}
	probeVal := func(t int) uint32 { return space.Probe(pl, sib.objs[t]) }
	win := cands[selectValuesScratch(pl.Arena(), probeVal, cands, 0)]
	for j, obj := range sib.objs {
		dst[obj] = win[j]
	}
}

// ZeroRadiusBits runs ZeroRadius over real binary objects and returns
// each participating player's output as a bit slice aligned with objs.
func ZeroRadiusBits(env *Env, players []int, objs []int, alpha float64) [][]uint32 {
	return ZeroRadius(env, players, BinarySpace{Objs: objs}, alpha)
}

// zeroRadiusBitsFlat is ZeroRadiusBits with zeroRadiusFlat's packed
// positional output (players[i]'s bits at [i*len(objs), (i+1)*len(objs))).
func zeroRadiusBitsFlat(env *Env, players []int, objs []int, alpha float64) []uint32 {
	return zeroRadiusFlat(env, players, BinarySpace{Objs: objs}, alpha)
}
