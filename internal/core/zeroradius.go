package core

import (
	"fmt"
	"math"
	"strconv"

	"tellme/internal/ints"
	"tellme/internal/probe"
)

// ObjectSpace abstracts the objects ZeroRadius divides and probes.
//
// For the plain algorithm the abstract objects are real objects and a
// probe is one billboard probe (BinarySpace). For Large Radius, Step 4,
// each abstract object is a whole object group whose possible values are
// Coalesce candidates; probing it runs Select over the group
// (VirtualSpace in largeradius.go).
type ObjectSpace interface {
	// Len returns the number of abstract objects.
	Len() int
	// Probe reveals player pl's value for abstract object j, charging
	// pl for whatever real probing that takes.
	Probe(pl *probe.Player, j int) uint32
}

// BatchObjectSpace is implemented by object spaces whose probes have no
// sequential dependency, so a whole set of abstract objects can be
// probed in one batched call (one network round trip against a remote
// billboard). ZeroRadius leaves use it when available; spaces whose
// probes are adaptive (VirtualSpace runs Select per probe) simply don't
// implement it and keep the per-object path.
type BatchObjectSpace interface {
	ObjectSpace
	// ProbeMany probes abstract objects js, writing values into dst
	// (dst[k] for js[k]), equivalently to calling Probe per object.
	ProbeMany(pl *probe.Player, js []int, dst []uint32)
}

// BinarySpace is the identity ObjectSpace: abstract object j is the real
// object Objs[j] and its value is the player's 0/1 grade.
type BinarySpace struct {
	Objs []int
}

// Len implements ObjectSpace.
func (s BinarySpace) Len() int { return len(s.Objs) }

// Probe implements ObjectSpace.
func (s BinarySpace) Probe(pl *probe.Player, j int) uint32 {
	return uint32(pl.Probe(s.Objs[j]))
}

// ProbeMany implements BatchObjectSpace: one batched probe call for the
// mapped real objects.
func (s BinarySpace) ProbeMany(pl *probe.Player, js []int, dst []uint32) {
	objs := pl.ObjScratch(len(js))
	for k, j := range js {
		objs[k] = s.Objs[j]
	}
	pl.ProbeMany(objs, dst)
}

// zrNode is one node of the ZeroRadius recursion tree. The tree is built
// by the shared coin, so every player knows the full structure. The
// billboard topic is precomputed so the per-player phase bodies never
// format strings.
type zrNode struct {
	id          int
	depth       int
	topic       string
	players     []int
	objs        []int // abstract object ids
	cands       [][]uint32
	left, right *zrNode
}

func (nd *zrNode) leaf() bool { return nd.left == nil }

// ZeroRadius implements Algorithm Zero Radius (Fig. 2) for the players
// in `players` over the given object space, with frequency parameter
// alpha.
//
// Returns out[p] = player p's output value vector (length space.Len(),
// indexed by abstract object id); entries for non-participating players
// are nil. If at least alpha·len(players) participants share identical
// value vectors, Theorem 3.1 says w.h.p. they all output that shared
// vector, after O(log n/α) probes each (times the per-probe cost of the
// space).
func ZeroRadius(env *Env, players []int, space ObjectSpace, alpha float64) [][]uint32 {
	if len(players) == 0 {
		return make([][]uint32, env.N)
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: ZeroRadius alpha %v out of (0,1]", alpha))
	}
	env.count(CountZeroRadius)
	defer env.spanPlayers("zeroradius", players, "players", len(players), "objs", space.Len(), "alpha", alpha)()
	tag := env.freshTag("zr")
	threshold := env.leafThreshold(alpha)

	// Build the recursion tree with public coins.
	coin := env.Public.Stream(tag, 0)
	nextID := 0
	objs := ints.Iota(space.Len())
	var build func(ps, os []int, depth int) *zrNode
	var byLevel [][]*zrNode
	build = func(ps, os []int, depth int) *zrNode {
		nd := &zrNode{
			id:      nextID,
			depth:   depth,
			topic:   tag + "/" + strconv.Itoa(nextID),
			players: ps,
			objs:    os,
		}
		nextID++
		for len(byLevel) <= depth {
			byLevel = append(byLevel, nil)
		}
		byLevel[depth] = append(byLevel[depth], nd)
		if min(len(ps), len(os)) >= threshold {
			pa, pb := splitHalf(coin, ps)
			oa, ob := splitHalf(coin, os)
			nd.left = build(pa, oa, depth+1)
			nd.right = build(pb, ob, depth+1)
		}
		return nd
	}
	root := build(players, objs, 0)

	// Abort-path cleanup: topic tags are deterministic (freshTag is a
	// plain sequence number — load-bearing for public-coin streams), so
	// a run aborted mid-level would leave partial postings that a later
	// run on the same shared board would read as its own. Drop every
	// node topic quietly before letting the abort continue; on the
	// normal path topics are dropped level-by-level below and re-drops
	// are no-ops.
	defer func() {
		if rec := recover(); rec != nil {
			for _, level := range byLevel {
				for _, nd := range level {
					env.dropQuietly(nd.topic)
				}
			}
			panic(rec)
		}
	}()

	// childAt[p] tracks the node player p most recently completed, so an
	// internal node knows which child p came from. out rows and the
	// per-player posting scratch share one backing array each.
	childAt := make([]*zrNode, env.N)
	nodeAt := make([]*zrNode, env.N)
	out := make([][]uint32, env.N)
	scratch := make([][]uint32, env.N)
	width := space.Len()
	backing := make([]uint32, 2*len(players)*width)
	for i, p := range players {
		out[p] = backing[2*i*width : (2*i+1)*width]
		scratch[p] = backing[(2*i+1)*width : (2*i+2)*width]
	}

	// Process levels bottom-up. At each level, leaves probe everything
	// they own and post; internal nodes adopt the sibling half's popular
	// vector via Select and post the combined vector.
	//
	// The vote tally over a sibling's postings is identical for every
	// reader (the billboard's deterministic, epoch-cached ValueVotes),
	// so it is computed once per node before the phase rather than once
	// per player — the distributed "scan the billboard" step costs no
	// probes, and recomputing it n times per level would dominate
	// simulation time.
	phasePlayers := make([]int, 0, len(players))
	batchSpace, batched := space.(BatchObjectSpace)
	for level := len(byLevel) - 1; level >= 0; level-- {
		env.checkAborted()
		phasePlayers = phasePlayers[:0]
		for _, nd := range byLevel[level] {
			for _, p := range nd.players {
				nodeAt[p] = nd
			}
			phasePlayers = append(phasePlayers, nd.players...)
			if !nd.leaf() {
				for _, child := range [2]*zrNode{nd.left, nd.right} {
					child.cands = popularValueCands(env, child.topic, child, alpha)
				}
			}
		}
		env.phase(phasePlayers, func(p int) {
			nd := nodeAt[p]
			pl := env.Engine.Player(p)
			if nd.leaf() {
				// Step 1: probe every object of the node. Leaf probes
				// have no sequential dependency, so a batch-capable
				// space ships them (and their billboard postings) in
				// one batched call.
				vals := scratch[p][:len(nd.objs)]
				if batched {
					batchSpace.ProbeMany(pl, nd.objs, vals)
				} else {
					for j, obj := range nd.objs {
						vals[j] = space.Probe(pl, obj)
					}
				}
				for j, obj := range nd.objs {
					out[p][obj] = vals[j]
				}
				env.Board.PostValues(nd.topic, p, vals)
				childAt[p] = nd
				return
			}
			// Step 4: adopt the sibling half's output for its objects.
			mine := childAt[p]
			sib := nd.left
			if sib == mine {
				sib = nd.right
			}
			adoptSibling(pl, space, out[p], sib, sib.cands)
			childAt[p] = nd
			// Post the combined vector for this node.
			vals := scratch[p][:len(nd.objs)]
			for j, obj := range nd.objs {
				vals[j] = out[p][obj]
			}
			env.Board.PostValues(nd.topic, p, vals)
		})
		// Completed child topics are no longer read; free them.
		if level+1 < len(byLevel) {
			for _, nd := range byLevel[level+1] {
				env.Board.DropTopic(nd.topic)
			}
		}
	}
	env.Board.DropTopic(root.topic)
	return out
}

// popularValueCands tallies a node's posted vectors and returns those
// with at least VoteFrac·alpha·|players| votes (Fig. 2, Step 4's set V),
// falling back to all posted vectors when none is popular enough (the
// premise-violated case Theorem 3.1 does not cover).
func popularValueCands(env *Env, topic string, nd *zrNode, alpha float64) [][]uint32 {
	votes := env.Board.ValueVotes(topic)
	need := int(math.Ceil(alpha * env.Cfg.VoteFrac * float64(len(nd.players))))
	if need < 1 {
		need = 1
	}
	var cands [][]uint32
	for _, v := range votes {
		if v.Count >= need {
			cands = append(cands, v.Vals)
		}
	}
	if len(cands) == 0 {
		for _, v := range votes {
			cands = append(cands, v.Vals)
		}
	}
	return cands
}

// adoptSibling performs Fig. 2's Step 4 for one player: run Select with
// distance bound 0 over the sibling's popular vectors and write the
// winner into dst at the sibling's object positions.
func adoptSibling(pl *probe.Player, space ObjectSpace, dst []uint32, sib *zrNode, cands [][]uint32) {
	if len(cands) == 0 {
		return // sibling posted nothing (empty node); leave zeros
	}
	probeVal := func(t int) uint32 { return space.Probe(pl, sib.objs[t]) }
	win := cands[SelectValues(probeVal, cands, 0)]
	for j, obj := range sib.objs {
		dst[obj] = win[j]
	}
}

// ZeroRadiusBits runs ZeroRadius over real binary objects and returns
// each participating player's output as a bit slice aligned with objs.
func ZeroRadiusBits(env *Env, players []int, objs []int, alpha float64) [][]uint32 {
	return ZeroRadius(env, players, BinarySpace{Objs: objs}, alpha)
}
