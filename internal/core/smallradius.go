package core

import (
	"fmt"
	"math"
	"math/bits"

	"tellme/internal/bitvec"
)

// smallRadiusS computes the partition count s = ceil(PartC·D^{3/2}),
// clamped to [1, nObjs]. (Lemma 4.1 wants s ≥ 100·d^{3/2} for failure
// probability < 1/2 per iteration; the PartC knob trades constant factor
// for probe cost and is ablated in experiment E11.)
func smallRadiusS(cfg Config, d, nObjs int) int {
	s := int(math.Ceil(cfg.PartC * math.Pow(float64(d), 1.5)))
	if s < 1 {
		s = 1
	}
	if s > nObjs {
		s = nObjs
	}
	return s
}

// SmallRadiusPartitions reports the partition count SmallRadius will use
// for diameter d over nObjs objects under cfg (for reporting/ablation).
func SmallRadiusPartitions(cfg Config, d, nObjs int) int {
	return smallRadiusS(cfg, d, nObjs)
}

// SmallRadius implements Algorithm Small Radius (Fig. 4) for the given
// players over the object coordinate set objs, with frequency parameter
// alpha and distance parameter d. k is the confidence parameter K
// (k ≤ 0 uses the environment default of Θ(log n)).
//
// Returns out[p] = player p's output vector of length len(objs)
// (coordinate j is real object objs[j]); non-participants get the zero
// Vector. Theorem 4.4: if an (alpha,d)-typical subset of players exists,
// then w.h.p. every member's output is within 5d of its true vector on
// objs, at a cost of O(K·D^{3/2}·(D+log n)/α) probes per player.
func SmallRadius(env *Env, players []int, objs []int, alpha float64, d, k int) []bitvec.Vector {
	out := make([]bitvec.Vector, env.N)
	rows := smallRadiusPos(env, players, objs, alpha, d, k)
	if rows == nil { // empty players or objs: everyone keeps the zero Vector
		return out
	}
	for i, p := range players {
		out[p] = rows[i]
	}
	return out
}

// smallRadiusPos is SmallRadius with positional output: row i is the
// output of players[i], and nothing is sized by env.N. LargeRadius runs
// one SmallRadius per object group over that group's (usually small)
// player set, so the env.N-wide wrapper arrays would dominate its
// allocations.
func smallRadiusPos(env *Env, players []int, objs []int, alpha float64, d, k int) []bitvec.Vector {
	if len(players) == 0 || len(objs) == 0 {
		return nil
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: SmallRadius alpha %v out of (0,1]", alpha))
	}
	if d == 0 {
		// Degenerate case: Zero Radius already solves it exactly.
		zr := zeroRadiusBitsFlat(env, players, objs, alpha)
		rows := make([]bitvec.Vector, len(players))
		for i := range rows {
			rows[i] = valsToVector(zr[i*len(objs) : (i+1)*len(objs)])
		}
		return rows
	}
	env.count(CountSmallRadius)
	if !env.spanOff("smallradius") {
		defer env.spanPlayers("smallradius", players, "players", len(players), "objs", len(objs), "alpha", alpha, "d", d)()
	}
	if k <= 0 {
		k = env.confidenceK()
	}
	tag := env.freshTag("sr")
	coin := env.Public.Stream(tag, 0)
	s := smallRadiusS(env.Cfg, d, len(objs))
	// Threshold for U_i: vectors output by ≥ alpha·|players|/5 players.
	uThreshold := int(math.Ceil(alpha * float64(len(players)) / 5))
	if uThreshold < 1 {
		uThreshold = 1
	}

	sc := &env.scratch
	defer sc.release(sc.mark())
	posOf := sc.fillPos(env.N, players)
	local := sc.iota(len(objs)) // local coordinate ids 0..len-1

	// iterVecs[t][i] is u^t(players[i]), the stitched vector of
	// iteration t. All k iterations' rows are arena-allocated up front
	// so the per-iteration partition scratch below can be released LIFO
	// at the end of each iteration without tearing down vectors Step 2
	// still reads.
	wdO := bitvec.WordsFor(len(objs))
	iterVecs := make([][]bitvec.Vector, k)
	for t := range iterVecs {
		uT := sc.vecs.Make(len(players))
		backing := sc.a.Words(len(players) * wdO)
		for i := range players {
			uT[i] = bitvec.Wrap(len(objs), backing[i*wdO:(i+1)*wdO])
		}
		iterVecs[t] = uT
	}

	for t := 0; t < k; t++ {
		env.checkAborted()
		mt := sc.mark()
		// Step 1a: random partition of the (local) object coordinates.
		parts := assignPartsArena(sc, coin, local, s)
		uT := iterVecs[t]

		for _, partLocal := range parts {
			if len(partLocal) == 0 {
				continue
			}

			// Step 1b: Zero Radius on this part with parameter alpha/5.
			partObjs := sc.a.Ints(len(partLocal))
			for j, lc := range partLocal {
				partObjs[j] = objs[lc]
			}
			zr := zeroRadiusBitsFlat(env, players, partObjs, alpha/5)
			ui := popularOutputs(sc, zr, len(players), len(partObjs), uThreshold)
			if len(ui) == 0 {
				// Premise failed: no vector is popular enough. Use every
				// distinct output so players can still stitch something.
				ui = popularOutputs(sc, zr, len(players), len(partObjs), 1)
			}

			// Step 1c: every player adopts the closest popular vector,
			// scattering its set bits into the stitched row word-by-word.
			env.phase(players, func(p int) {
				pl := env.Engine.Player(p)
				win := ui[SelectPartial(pl, partObjs, ui, d)]
				uw := uT[posOf[p]].Words()
				wv, _ := win.Planes() // fully known: val bits are the vector
				for w, x := range wv {
					for ; x != 0; x &= x - 1 {
						lc := partLocal[w<<6|bits.TrailingZeros64(x)]
						uw[lc>>6] |= uint64(1) << (uint(lc) & 63)
					}
				}
			})
		}
		sc.release(mt)
	}

	// Step 2: each player selects among its k stitched vectors with
	// distance bound 5d. The candidates are zero-copy fully-known views
	// over the stitched rows (content-identical to PartialOf, so the
	// probe sequence is unchanged), built before the phase so its bodies
	// never touch the coordinator arena.
	knownAll := sc.a.Words(wdO)
	bitvec.FillOnes(len(objs), knownAll)
	candsAll := sc.partials.Make(len(players) * k)
	for i := range players {
		for t := 0; t < k; t++ {
			candsAll[i*k+t] = bitvec.WrapPartial(len(objs), iterVecs[t][i].Words(), knownAll)
		}
	}
	rows := make([]bitvec.Vector, len(players))
	env.phase(players, func(p int) {
		i := posOf[p]
		pl := env.Engine.Player(p)
		cands := candsAll[i*k:][:k]
		win := SelectPartial(pl, objs, cands, 5*d)
		rows[i] = iterVecs[win][i].Clone()
	})
	return rows
}

// popularOutputs tallies the n packed width-wide ZeroRadius output rows
// in zr (zeroRadiusFlat layout) and returns the distinct vectors with
// at least minVotes supporters as fully-known Partials, deterministically
// ordered (vote count desc, then lexicographic).
//
// Rows are compared in place, so only distinct vectors are
// materialized — and those live on the coordinator arena (one shared
// known-ones plane, one value plane per survivor), so the result must
// be consumed before the enclosing region is released. Callers treat
// them exactly like PartialOf-built candidates: the planes' contents,
// and hence every downstream probe decision, are identical.
func popularOutputs(sc *coScratch, zr []uint32, n, width, minVotes int) []bitvec.Partial {
	if n == 0 {
		return nil
	}
	// Rows are packed once into arena-backed bit planes and everything
	// below — the uniform fast path, grouping, ordering, and the value
	// planes of the returned Partials themselves — works on the packed
	// words. Packing normalizes values exactly like valsToVector
	// (nonzero → 1), so row equality and order match the old
	// per-element path bit for bit; but the compare and hash loops now
	// touch ⌈width/64⌉ words instead of width elements, and the FNV
	// multiply chain — one serially dependent multiply per *element*
	// before, the profile's hottest line here — runs once per word.
	wd := bitvec.WordsFor(width)
	packed := sc.a.Words(n * wd) // zeroed by Make
	for i := 0; i < n; i++ {
		row := zr[i*width : (i+1)*width]
		w := packed[i*wd : (i+1)*wd]
		for j, x := range row {
			if x != 0 {
				w[j>>6] |= uint64(1) << (uint(j) & 63)
			}
		}
	}

	// Fast path: every participant output the same vector — the dominant
	// case when the typicality premise holds. One scan, one group, no
	// map, no per-player keys.
	row0 := packed[0*wd : 1*wd : 1*wd]
	uniform := true
	for i := 1; i < n && uniform; i++ {
		ri := packed[i*wd : (i+1)*wd]
		for w := range row0 {
			if ri[w] != row0[w] {
				uniform = false
				break
			}
		}
	}
	if uniform {
		if n < minVotes {
			return nil
		}
		out := sc.partials.Make(1)
		known := sc.a.Words(wd)
		bitvec.FillOnes(width, known)
		out[0] = bitvec.WrapPartial(width, row0, known)
		return out
	}

	// Groups carry only a representative row index until the very end:
	// most groups fall below minVotes, and materializing a Partial per
	// distinct vector (instead of per survivor) used to dominate this
	// function's allocations. Rows are grouped by an FNV-style hash of
	// their packed words — no keys, no map, no allocation — with a full
	// comparison only on hash match, so both the few-group and the
	// many-group (noisy) case stay cheap.
	type group struct {
		hash  uint64
		rep   int
		count int
	}
	groups := make([]group, 0, 8)
	for i := 0; i < n; i++ {
		ri := packed[i*wd : (i+1)*wd]
		h := uint64(14695981039346656037)
		for _, w := range ri {
			h = (h ^ w) * 1099511628211
		}
		found := false
		for g := range groups {
			if groups[g].hash == h && wordsEqual(ri, packed[groups[g].rep*wd:(groups[g].rep+1)*wd]) {
				groups[g].count++
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{hash: h, rep: i, count: 1})
		}
	}
	keep := groups[:0]
	for _, g := range groups {
		if g.count >= minVotes {
			keep = append(keep, g)
		}
	}
	// Deterministic order: count desc, then bit order — a strict total
	// order over distinct vectors, so neither grouping strategy nor map
	// iteration order can show through.
	for i := 1; i < len(keep); i++ {
		for j := i; j > 0; j-- {
			a, b := keep[j], keep[j-1]
			if a.count > b.count || (a.count == b.count && wordsLess(packed[a.rep*wd:(a.rep+1)*wd], packed[b.rep*wd:(b.rep+1)*wd])) {
				keep[j], keep[j-1] = keep[j-1], keep[j]
			} else {
				break
			}
		}
	}
	out := sc.partials.Make(len(keep))
	known := sc.a.Words(wd)
	bitvec.FillOnes(width, known)
	for i, g := range keep {
		out[i] = bitvec.WrapPartial(width, packed[g.rep*wd:(g.rep+1)*wd:(g.rep+1)*wd], known)
	}
	return out
}

// wordsEqual reports whether two packed rows are identical.
func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// wordsLess orders packed rows by their first differing bit (0 before
// 1) — exactly bitvec.Partial.Less over the fully-known Partials
// valsToVector would build from the rows they were packed from.
func wordsLess(a, b []uint64) bool {
	for i := range a {
		if d := a[i] ^ b[i]; d != 0 {
			return b[i]&(d&-d) != 0
		}
	}
	return false
}

// valsToVector converts a 0/1 value vector to a packed Vector.
func valsToVector(vals []uint32) bitvec.Vector {
	v := bitvec.New(len(vals))
	for i, x := range vals {
		if x != 0 {
			v.Set(i, 1)
		}
	}
	return v
}

