package core

import (
	"fmt"
	"math"

	"tellme/internal/bitvec"
)

// smallRadiusS computes the partition count s = ceil(PartC·D^{3/2}),
// clamped to [1, nObjs]. (Lemma 4.1 wants s ≥ 100·d^{3/2} for failure
// probability < 1/2 per iteration; the PartC knob trades constant factor
// for probe cost and is ablated in experiment E11.)
func smallRadiusS(cfg Config, d, nObjs int) int {
	s := int(math.Ceil(cfg.PartC * math.Pow(float64(d), 1.5)))
	if s < 1 {
		s = 1
	}
	if s > nObjs {
		s = nObjs
	}
	return s
}

// SmallRadiusPartitions reports the partition count SmallRadius will use
// for diameter d over nObjs objects under cfg (for reporting/ablation).
func SmallRadiusPartitions(cfg Config, d, nObjs int) int {
	return smallRadiusS(cfg, d, nObjs)
}

// SmallRadius implements Algorithm Small Radius (Fig. 4) for the given
// players over the object coordinate set objs, with frequency parameter
// alpha and distance parameter d. k is the confidence parameter K
// (k ≤ 0 uses the environment default of Θ(log n)).
//
// Returns out[p] = player p's output vector of length len(objs)
// (coordinate j is real object objs[j]); non-participants get the zero
// Vector. Theorem 4.4: if an (alpha,d)-typical subset of players exists,
// then w.h.p. every member's output is within 5d of its true vector on
// objs, at a cost of O(K·D^{3/2}·(D+log n)/α) probes per player.
func SmallRadius(env *Env, players []int, objs []int, alpha float64, d, k int) []bitvec.Vector {
	out := make([]bitvec.Vector, env.N)
	if len(players) == 0 || len(objs) == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("core: SmallRadius alpha %v out of (0,1]", alpha))
	}
	if d == 0 {
		// Degenerate case: Zero Radius already solves it exactly.
		zr := ZeroRadiusBits(env, players, objs, alpha)
		for _, p := range players {
			out[p] = valsToVector(zr[p])
		}
		return out
	}
	env.count(CountSmallRadius)
	defer env.spanPlayers("smallradius", players, "players", len(players), "objs", len(objs), "alpha", alpha, "d", d)()
	if k <= 0 {
		k = env.confidenceK()
	}
	tag := env.freshTag("sr")
	coin := env.Public.Stream(tag, 0)
	s := smallRadiusS(env.Cfg, d, len(objs))
	// Threshold for U_i: vectors output by ≥ alpha·|players|/5 players.
	uThreshold := int(math.Ceil(alpha * float64(len(players)) / 5))
	if uThreshold < 1 {
		uThreshold = 1
	}

	local := make([]int, len(objs)) // local coordinate ids 0..len-1
	for i := range local {
		local[i] = i
	}

	// iterVecs[t][p] is u^t(p), the stitched vector of iteration t.
	iterVecs := make([][]bitvec.Vector, k)

	for t := 0; t < k; t++ {
		env.checkAborted()
		// Step 1a: random partition of the (local) object coordinates.
		parts := assignParts(coin, local, s)

		uT := make([]bitvec.Vector, env.N)
		for _, p := range players {
			uT[p] = bitvec.New(len(objs))
		}

		for _, partLocal := range parts {
			if len(partLocal) == 0 {
				continue
			}
			//

			// Step 1b: Zero Radius on this part with parameter alpha/5.
			partObjs := make([]int, len(partLocal))
			for j, lc := range partLocal {
				partObjs[j] = objs[lc]
			}
			zr := ZeroRadiusBits(env, players, partObjs, alpha/5)
			ui := popularOutputs(players, zr, uThreshold)
			if len(ui) == 0 {
				// Premise failed: no vector is popular enough. Use every
				// distinct output so players can still stitch something.
				ui = popularOutputs(players, zr, 1)
			}

			// Step 1c: every player adopts the closest popular vector.
			env.phase(players, func(p int) {
				pl := env.Engine.Player(p)
				win := ui[SelectPartial(pl, partObjs, ui, d)]
				for j, lc := range partLocal {
					if b := win.Get(j); b == 1 {
						uT[p].Set(lc, 1)
					}
				}
			})
		}
		iterVecs[t] = uT
	}

	// Step 2: each player selects among its k stitched vectors with
	// distance bound 5d.
	env.phase(players, func(p int) {
		pl := env.Engine.Player(p)
		cands := make([]bitvec.Partial, k)
		for t := 0; t < k; t++ {
			cands[t] = bitvec.PartialOf(iterVecs[t][p])
		}
		win := SelectPartial(pl, objs, cands, 5*d)
		out[p] = iterVecs[win][p]
	})
	return out
}

// popularOutputs tallies ZeroRadius outputs over the participants and
// returns the distinct vectors with at least minVotes supporters as
// fully-known Partials, deterministically ordered (vote count desc,
// then lexicographic).
//
// The grouping key is packed straight from the 0/1 value slices into a
// reused buffer, so only distinct vectors are materialized — tallying
// is allocation-free in the common all-agree case.
func popularOutputs(players []int, zr [][]uint32, minVotes int) []bitvec.Partial {
	type group struct {
		vec   bitvec.Partial
		count int
	}
	byKey := make(map[string]*group)
	var kb []byte
	for _, p := range players {
		if zr[p] == nil {
			continue
		}
		kb = appendBitsKey(kb[:0], zr[p])
		g, ok := byKey[string(kb)]
		if !ok {
			g = &group{vec: bitvec.PartialOf(valsToVector(zr[p]))}
			byKey[string(kb)] = g
		}
		g.count++
	}
	var groups []*group
	for _, g := range byKey {
		if g.count >= minVotes {
			groups = append(groups, g)
		}
	}
	// deterministic order
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0; j-- {
			a, b := groups[j], groups[j-1]
			if a.count > b.count || (a.count == b.count && a.vec.Less(b.vec)) {
				groups[j], groups[j-1] = groups[j-1], groups[j]
			} else {
				break
			}
		}
	}
	out := make([]bitvec.Partial, len(groups))
	for i, g := range groups {
		out[i] = g.vec
	}
	return out
}

// valsToVector converts a 0/1 value vector to a packed Vector.
func valsToVector(vals []uint32) bitvec.Vector {
	v := bitvec.New(len(vals))
	for i, x := range vals {
		if x != 0 {
			v.Set(i, 1)
		}
	}
	return v
}

// appendBitsKey packs a 0/1 value slice into buf, 8 values per byte —
// an injective key for vectors of one common length, matching the
// grouping Vector.Key would produce without building the Vector.
func appendBitsKey(buf []byte, vals []uint32) []byte {
	var acc byte
	for i, x := range vals {
		if x != 0 {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			buf = append(buf, acc)
			acc = 0
		}
	}
	if len(vals)&7 != 0 {
		buf = append(buf, acc)
	}
	return buf
}
