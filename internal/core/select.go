package core

import (
	"math/bits"
	"strconv"

	"tellme/internal/arena"
	"tellme/internal/bitvec"
	"tellme/internal/probe"
)

// SelectPartial implements Algorithm Select (Fig. 3): the deterministic
// Choose Closest with a distance bound.
//
// cands are candidate vectors defined over the object coordinate set
// objs — candidate coordinate t corresponds to real object objs[t] — and
// may contain '?' entries, which all distance computations ignore
// (Notation 3.2's d~). d is the promised bound: some candidate is within
// d of the player's true vector on objs.
//
// It returns the index of the chosen candidate: the lexicographically
// first among those closest to the player's vector on the probed set Y.
// If the promise holds, Theorem 3.2 guarantees the choice is a true
// closest vector and at most len(cands)·(d+1) probes are spent.
//
// Per the paper's remark, Select ignores probes done before its
// execution: it re-probes coordinates it needs (the engine's default
// ChargeAll policy also charges them, matching the paper's cost model).
//
// The working set lives on the player's arena and the disputed-
// coordinate scan runs word-parallel over the candidates' bit planes:
// a coordinate is disputed iff some active candidate has a known 1 and
// some active candidate has a known 0 there, i.e. iff the OR-unions of
// the val and known&^val planes over active candidates intersect. The
// probe order (always the lowest disputed unprobed coordinate) is
// identical to the per-bit formulation, so the probe sequence — and
// with it every downstream noise-stream and charging interaction — is
// byte-identical.
func SelectPartial(pl *probe.Player, objs []int, cands []bitvec.Partial, d int) int {
	k := len(cands)
	if k == 0 {
		panic("core: SelectPartial with no candidates")
	}
	if k == 1 {
		return 0
	}
	width := len(objs)
	for i, c := range cands {
		if c.Len() != width {
			panic("core: candidate length mismatch at " + strconv.Itoa(i))
		}
	}
	if k == 2 {
		return selectPartial2(pl, objs, cands, d)
	}

	a := pl.Arena()
	defer a.Release(a.Mark())

	wd := bitvec.WordsFor(width)
	active := a.Bools(k)
	for i := range active {
		active[i] = true
	}
	nActive := k
	disagree := a.Ints(k)
	// One carve for all four word planes: SelectPartial runs once per
	// player per candidate set, so its fixed setup cost is hot.
	wbuf := a.Words(4 * wd)
	probedMask := wbuf[0*wd : 1*wd : 1*wd] // coordinates probed so far
	probedVal := wbuf[1*wd : 2*wd : 2*wd]  // observed values on probedMask

	// ones/zeros are the active-candidate unions; they are recomputed
	// only when a candidate is dropped (at most k times), and dropping
	// only shrinks the disputed set, so the scan cursor below never
	// moves backwards.
	ones := wbuf[2*wd : 3*wd : 3*wd]
	zeros := wbuf[3*wd:]
	refresh := func() {
		clear(ones)
		clear(zeros)
		for i := range cands {
			if !active[i] {
				continue
			}
			val, known := cands[i].Planes()
			for w := range ones {
				ones[w] |= val[w] // val ⊆ known
				zeros[w] |= known[w] &^ val[w]
			}
		}
	}
	refresh()

	// Step 1: repeatedly probe the first unprobed coordinate on which two
	// active candidates have differing non-? values; drop candidates that
	// exceed d disagreements.
	cursor := 0
	for nActive > 1 {
		t := -1
		for w := cursor; w < wd; w++ {
			if x := ones[w] & zeros[w] &^ probedMask[w]; x != 0 {
				cursor = w
				t = w<<6 | bits.TrailingZeros64(x)
				break
			}
		}
		if t < 0 {
			break // X(V) fully probed or empty
		}
		val := pl.Probe(objs[t])
		mask := uint64(1) << (uint(t) & 63)
		probedMask[t>>6] |= mask
		if val != 0 {
			probedVal[t>>6] |= mask
		}
		dropped := false
		for i := range cands {
			if !active[i] {
				continue
			}
			cv, ck := cands[i].Planes()
			if ck[t>>6]&mask == 0 {
				continue // '?' at t
			}
			if byte(cv[t>>6]>>(uint(t)&63)&1) != val {
				disagree[i]++
				if disagree[i] > d {
					active[i] = false
					nActive--
					dropped = true
				}
			}
		}
		if dropped {
			refresh()
		}
	}

	// Step 2: among the surviving candidates (or all of them, if the
	// promise was violated and everything was removed), output the
	// lexicographically first vector closest to v(p) on the probed set Y.
	pool := active
	if nActive == 0 {
		pool = a.Bools(k)
		for i := range pool {
			pool[i] = true
		}
		// disagree counts stopped when candidates were deactivated;
		// recompute exactly over Y (word-parallel popcount).
		for i := range cands {
			cv, ck := cands[i].Planes()
			n := 0
			for w := 0; w < wd; w++ {
				n += bits.OnesCount64((cv[w] ^ probedVal[w]) & ck[w] & probedMask[w])
			}
			disagree[i] = n
		}
	}
	// Ties on the probed set prefer fewer '?' entries (a wildcard is a
	// guaranteed coin-flip under Fill(0) output semantics, invisible to
	// d~), then the paper's lexicographic rule.
	best := -1
	for i := range cands {
		if !pool[i] {
			continue
		}
		if best < 0 || disagree[i] < disagree[best] {
			best = i
			continue
		}
		if disagree[i] == disagree[best] {
			ui, ub := cands[i].UnknownCount(), cands[best].UnknownCount()
			if ui < ub || (ui == ub && cands[i].Less(cands[best])) {
				best = i
			}
		}
	}
	return best
}

// selectPartial2 is SelectPartial specialized for two candidates — the
// most frequent case by far (a popular vector plus one variant). It
// needs no scratch arrays at all: a coordinate is disputed iff both
// candidates know it and their values differ, each probe charges the
// disagreement to exactly one candidate, and only one candidate can
// ever exceed the bound (one increment per probe), at which point the
// other is the unique survivor. The probe sequence — lowest disputed
// coordinate first, stop at the first drop — is identical to the
// generic loop's, so noise streams and charging stay byte-identical.
func selectPartial2(pl *probe.Player, objs []int, cands []bitvec.Partial, d int) int {
	v0, k0 := cands[0].Planes()
	v1, k1 := cands[1].Planes()
	d0, d1 := 0, 0
	for w := range v0 {
		for x := (v0[w] ^ v1[w]) & k0[w] & k1[w]; x != 0; x &= x - 1 {
			t := w<<6 | bits.TrailingZeros64(x)
			val := pl.Probe(objs[t])
			if byte(v0[w]>>(uint(t)&63)&1) != val {
				d0++
				if d0 > d {
					return 1
				}
			} else {
				d1++
				if d1 > d {
					return 0
				}
			}
		}
	}
	// Both candidates within the bound: fewer disagreements on the
	// probed set wins, then fewer '?' entries, then the paper's
	// lexicographic rule — the same tie-break as the generic Step 2.
	if d0 != d1 {
		if d0 < d1 {
			return 0
		}
		return 1
	}
	u0, u1 := cands[0].UnknownCount(), cands[1].UnknownCount()
	if u1 < u0 || (u1 == u0 && cands[1].Less(cands[0])) {
		return 1
	}
	return 0
}

// SelectValues is Algorithm Select over generic value vectors: candidate
// i assigns value cands[i][t] to abstract object t, and probeVal(t)
// reveals the player's own value for t (each invocation is charged by
// whatever probing probeVal performs). Used by ZeroRadius when its
// "objects" are object groups whose "values" are Coalesce candidates
// (Large Radius, Step 4).
//
// Returns the index of the lexicographically first closest candidate,
// with the same k(d+1) probe bound as SelectPartial.
func SelectValues(probeVal func(t int) uint32, cands [][]uint32, d int) int {
	return selectValuesScratch(nil, probeVal, cands, d)
}

// selectValuesScratch is SelectValues with its working set taken from a
// (nil falls back to the heap). Safe to nest: probeVal may itself run a
// Select on the same arena — the Mark/Release pairs unwind LIFO.
func selectValuesScratch(a *arena.Arena, probeVal func(t int) uint32, cands [][]uint32, d int) int {
	k := len(cands)
	if k == 0 {
		panic("core: SelectValues with no candidates")
	}
	if k == 1 {
		return 0
	}
	width := len(cands[0])
	for i, c := range cands {
		if len(c) != width {
			panic("core: candidate length mismatch at " + strconv.Itoa(i))
		}
	}

	var active []bool
	var disagree, probed []int
	if a != nil {
		defer a.Release(a.Mark())
		active = a.Bools(k)
		disagree = a.Ints(k)
		probed = a.Ints(width)
	} else {
		active = make([]bool, k)
		disagree = make([]int, k)
		probed = make([]int, width)
	}
	for i := range active {
		active[i] = true
	}
	nActive := k
	for t := range probed {
		probed[t] = -1 // -1 unprobed, else observed value
	}

	for nActive > 1 {
		t := -1
		for u := 0; u < width && t < 0; u++ {
			if probed[u] >= 0 {
				continue
			}
			first := uint32(0)
			have := false
			for i := range cands {
				if !active[i] {
					continue
				}
				if !have {
					first, have = cands[i][u], true
				} else if cands[i][u] != first {
					t = u
					break
				}
			}
		}
		if t < 0 {
			break
		}
		val := probeVal(t)
		probed[t] = int(val)
		for i := range cands {
			if active[i] && cands[i][t] != val {
				disagree[i]++
				if disagree[i] > d {
					active[i] = false
					nActive--
				}
			}
		}
	}

	pool := active
	if nActive == 0 {
		if a != nil {
			pool = a.Bools(k)
		} else {
			pool = make([]bool, k)
		}
		for i := range pool {
			pool[i] = true
			disagree[i] = 0
			for t, v := range probed {
				if v >= 0 && cands[i][t] != uint32(v) {
					disagree[i]++
				}
			}
		}
	}
	best := -1
	for i := range cands {
		if !pool[i] {
			continue
		}
		switch {
		case best < 0,
			disagree[i] < disagree[best],
			disagree[i] == disagree[best] && lessU32(cands[i], cands[best]):
			best = i
		}
	}
	return best
}

func lessU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
