package core

import (
	"strconv"

	"tellme/internal/bitvec"
	"tellme/internal/probe"
)

// SelectPartial implements Algorithm Select (Fig. 3): the deterministic
// Choose Closest with a distance bound.
//
// cands are candidate vectors defined over the object coordinate set
// objs — candidate coordinate t corresponds to real object objs[t] — and
// may contain '?' entries, which all distance computations ignore
// (Notation 3.2's d~). d is the promised bound: some candidate is within
// d of the player's true vector on objs.
//
// It returns the index of the chosen candidate: the lexicographically
// first among those closest to the player's vector on the probed set Y.
// If the promise holds, Theorem 3.2 guarantees the choice is a true
// closest vector and at most len(cands)·(d+1) probes are spent.
//
// Per the paper's remark, Select ignores probes done before its
// execution: it re-probes coordinates it needs (the engine's default
// ChargeAll policy also charges them, matching the paper's cost model).
func SelectPartial(pl *probe.Player, objs []int, cands []bitvec.Partial, d int) int {
	k := len(cands)
	if k == 0 {
		panic("core: SelectPartial with no candidates")
	}
	if k == 1 {
		return 0
	}
	for i, c := range cands {
		if c.Len() != len(objs) {
			panic("core: candidate length mismatch at " + strconv.Itoa(i))
		}
	}

	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	nActive := k
	disagree := make([]int, k)
	probed := make([]int8, len(objs)) // -1 unprobed, else observed value
	for t := range probed {
		probed[t] = -1
	}

	// Step 1: repeatedly probe the first unprobed coordinate on which two
	// active candidates have differing non-? values; drop candidates that
	// exceed d disagreements.
	for nActive > 1 {
		t := nextDisputed(cands, active, probed)
		if t < 0 {
			break // X(V) fully probed or empty
		}
		val := pl.Probe(objs[t])
		probed[t] = int8(val)
		for i := range cands {
			if !active[i] {
				continue
			}
			b := cands[i].Get(t)
			if b != bitvec.Unknown && b != val {
				disagree[i]++
				if disagree[i] > d {
					active[i] = false
					nActive--
				}
			}
		}
	}

	// Step 2: among the surviving candidates (or all of them, if the
	// promise was violated and everything was removed), output the
	// lexicographically first vector closest to v(p) on the probed set Y.
	pool := active
	if nActive == 0 {
		pool = make([]bool, k)
		for i := range pool {
			pool[i] = true
		}
		// disagree counts stopped when candidates were deactivated;
		// recompute exactly over Y.
		for i := range cands {
			disagree[i] = disagreementsOn(cands[i], probed)
		}
	}
	// Ties on the probed set prefer fewer '?' entries (a wildcard is a
	// guaranteed coin-flip under Fill(0) output semantics, invisible to
	// d~), then the paper's lexicographic rule.
	best := -1
	for i := range cands {
		if !pool[i] {
			continue
		}
		if best < 0 || disagree[i] < disagree[best] {
			best = i
			continue
		}
		if disagree[i] == disagree[best] {
			ui, ub := cands[i].UnknownCount(), cands[best].UnknownCount()
			if ui < ub || (ui == ub && cands[i].Less(cands[best])) {
				best = i
			}
		}
	}
	return best
}

// nextDisputed returns the first unprobed coordinate where two active
// candidates hold differing non-? values, or -1 if none exists.
func nextDisputed(cands []bitvec.Partial, active []bool, probed []int8) int {
	for t := range probed {
		if probed[t] >= 0 {
			continue
		}
		seen := byte(bitvec.Unknown)
		for i := range cands {
			if !active[i] {
				continue
			}
			b := cands[i].Get(t)
			if b == bitvec.Unknown {
				continue
			}
			if seen == bitvec.Unknown {
				seen = b
			} else if seen != b {
				return t
			}
		}
	}
	return -1
}

// disagreementsOn counts candidate disagreements with the probed values.
func disagreementsOn(c bitvec.Partial, probed []int8) int {
	d := 0
	for t, v := range probed {
		if v < 0 {
			continue
		}
		if b := c.Get(t); b != bitvec.Unknown && b != byte(v) {
			d++
		}
	}
	return d
}

// SelectValues is Algorithm Select over generic value vectors: candidate
// i assigns value cands[i][t] to abstract object t, and probeVal(t)
// reveals the player's own value for t (each invocation is charged by
// whatever probing probeVal performs). Used by ZeroRadius when its
// "objects" are object groups whose "values" are Coalesce candidates
// (Large Radius, Step 4).
//
// Returns the index of the lexicographically first closest candidate,
// with the same k(d+1) probe bound as SelectPartial.
func SelectValues(probeVal func(t int) uint32, cands [][]uint32, d int) int {
	k := len(cands)
	if k == 0 {
		panic("core: SelectValues with no candidates")
	}
	if k == 1 {
		return 0
	}
	width := len(cands[0])
	for i, c := range cands {
		if len(c) != width {
			panic("core: candidate length mismatch at " + strconv.Itoa(i))
		}
	}

	active := make([]bool, k)
	for i := range active {
		active[i] = true
	}
	nActive := k
	disagree := make([]int, k)
	probed := make([]int64, width)
	for t := range probed {
		probed[t] = -1
	}

	for nActive > 1 {
		t := -1
		for u := 0; u < width && t < 0; u++ {
			if probed[u] >= 0 {
				continue
			}
			first := uint32(0)
			have := false
			for i := range cands {
				if !active[i] {
					continue
				}
				if !have {
					first, have = cands[i][u], true
				} else if cands[i][u] != first {
					t = u
					break
				}
			}
		}
		if t < 0 {
			break
		}
		val := probeVal(t)
		probed[t] = int64(val)
		for i := range cands {
			if active[i] && cands[i][t] != val {
				disagree[i]++
				if disagree[i] > d {
					active[i] = false
					nActive--
				}
			}
		}
	}

	pool := active
	if nActive == 0 {
		pool = make([]bool, k)
		for i := range pool {
			pool[i] = true
			disagree[i] = 0
			for t, v := range probed {
				if v >= 0 && cands[i][t] != uint32(v) {
					disagree[i]++
				}
			}
		}
	}
	best := -1
	for i := range cands {
		if !pool[i] {
			continue
		}
		switch {
		case best < 0,
			disagree[i] < disagree[best],
			disagree[i] == disagree[best] && lessU32(cands[i], cands[best]):
			best = i
		}
	}
	return best
}

func lessU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
