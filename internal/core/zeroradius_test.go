package core

import (
	"math"
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
)

// runZR runs ZeroRadius over a full instance and returns outputs.
func runZR(t testing.TB, in *prefs.Instance, alpha float64, seed uint64) ([][]uint32, *Env) {
	t.Helper()
	env, _ := newTestEnv(t, in, seed)
	out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), alpha)
	return out, env
}

// bitsToVec converts a ZeroRadius value vector to a bitvec.Vector.
func bitsToVec(vals []uint32) bitvec.Vector {
	v := bitvec.New(len(vals))
	for i, x := range vals {
		if x != 0 {
			v.Set(i, 1)
		}
	}
	return v
}

func TestZeroRadiusIdenticalCommunityExact(t *testing.T) {
	in := prefs.Identical(256, 256, 0.5, 1)
	out, _ := runZR(t, in, 0.5, 2)
	c := in.Communities[0]
	for _, p := range c.Members {
		if got := bitsToVec(out[p]); !got.Equal(c.Center) {
			t.Fatalf("member %d output distance %d from center", p, got.Dist(c.Center))
		}
	}
}

func TestZeroRadiusAllIdentical(t *testing.T) {
	in := prefs.Identical(128, 128, 1.0, 3)
	out, _ := runZR(t, in, 1.0, 4)
	c := in.Communities[0]
	for p := 0; p < in.N; p++ {
		if !bitsToVec(out[p]).Equal(c.Center) {
			t.Fatalf("player %d wrong", p)
		}
	}
}

func TestZeroRadiusSmallAlphaCommunity(t *testing.T) {
	in := prefs.Identical(512, 512, 0.125, 5)
	out, _ := runZR(t, in, 0.125, 6)
	c := in.Communities[0]
	bad := 0
	for _, p := range c.Members {
		if !bitsToVec(out[p]).Equal(c.Center) {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d community members failed", bad, len(c.Members))
	}
}

func TestZeroRadiusProbeComplexity(t *testing.T) {
	// Theorem 3.1: O(log n / α) probes per player (for m = Θ(n)).
	// Measured against the explicit bound C·(log n)/α with a generous C;
	// the point is polylog scaling, checked across sizes in E1.
	for _, n := range []int{128, 256, 512} {
		in := prefs.Identical(n, n, 0.5, uint64(n))
		out, env := runZR(t, in, 0.5, uint64(n)+1)
		_ = out
		var maxProbes int64
		for p := 0; p < n; p++ {
			if c := env.Engine.Charged(p); c > maxProbes {
				maxProbes = c
			}
		}
		bound := int64(60 * math.Log(float64(n)) / 0.5)
		if maxProbes > bound {
			t.Fatalf("n=%d: max probes %d > %d (not polylog?)", n, maxProbes, bound)
		}
		if maxProbes >= int64(in.M) {
			t.Fatalf("n=%d: probing as much as going solo (%d)", n, maxProbes)
		}
	}
}

func TestZeroRadiusAdversarialOutsiders(t *testing.T) {
	// Colluding outsider blocks must not corrupt community outputs.
	in := prefs.AdversarialVoteSplit(256, 256, 0.3, 0, 7)
	out, _ := runZR(t, in, 0.3, 8)
	c := in.Communities[0]
	for _, p := range c.Members {
		if !bitsToVec(out[p]).Equal(c.Center) {
			t.Fatalf("adversarial split corrupted member %d", p)
		}
	}
}

func TestZeroRadiusTinyInstanceBruteForce(t *testing.T) {
	// Below the leaf threshold the algorithm must just probe everything.
	in := prefs.Identical(2, 8, 1.0, 9)
	out, env := runZR(t, in, 1.0, 10)
	for p := 0; p < in.N; p++ {
		if got := bitsToVec(out[p]); !got.Equal(in.Truth[p]) {
			t.Fatalf("player %d wrong on brute-force path", p)
		}
	}
	// Everyone probed all 8 objects.
	for p := 0; p < in.N; p++ {
		if env.Engine.Charged(p) != 8 {
			t.Fatalf("player %d probed %d, want 8", p, env.Engine.Charged(p))
		}
	}
}

func TestZeroRadiusSubsetOfObjects(t *testing.T) {
	in := prefs.Identical(128, 256, 0.5, 11)
	env, _ := newTestEnv(t, in, 12)
	objs := []int{3, 10, 17, 50, 99, 130, 200, 255, 8, 77, 123, 180}
	out := ZeroRadiusBits(env, allPlayers(in.N), objs, 0.5)
	c := in.Communities[0]
	for _, p := range c.Members {
		for j, o := range objs {
			if byte(out[p][j]) != c.Center.Get(o) {
				t.Fatalf("member %d object %d wrong", p, o)
			}
		}
	}
}

func TestZeroRadiusSubsetOfPlayers(t *testing.T) {
	in := prefs.Identical(200, 128, 0.5, 13)
	env, _ := newTestEnv(t, in, 14)
	// Only the first 100 players participate; community overlap is ~50.
	players := allPlayers(100)
	inComm := map[int]bool{}
	for _, p := range in.Communities[0].Members {
		inComm[p] = true
	}
	commCount := 0
	for _, p := range players {
		if inComm[p] {
			commCount++
		}
	}
	alpha := float64(commCount) / float64(len(players))
	if alpha < 0.3 {
		t.Skip("unlucky overlap")
	}
	out := ZeroRadius(env, players, BinarySpace{Objs: seqObjs(in.M)}, alpha)
	for _, p := range players {
		if inComm[p] {
			if !bitsToVec(out[p][:in.M]).Equal(in.Communities[0].Center.Project(seqObjs(in.M))) {
				t.Fatalf("participant member %d wrong", p)
			}
		}
	}
	// Non-participants have nil outputs.
	if out[150] != nil {
		t.Fatal("non-participant has output")
	}
}

func TestZeroRadiusDeterministic(t *testing.T) {
	in := prefs.Identical(64, 64, 0.5, 15)
	a, _ := runZR(t, in, 0.5, 16)
	b, _ := runZR(t, in, 0.5, 16)
	for p := 0; p < in.N; p++ {
		for j := range a[p] {
			if a[p][j] != b[p][j] {
				t.Fatalf("run not reproducible at player %d obj %d", p, j)
			}
		}
	}
}

func TestZeroRadiusEmptyPlayers(t *testing.T) {
	in := prefs.Identical(8, 8, 1.0, 17)
	env, _ := newTestEnv(t, in, 18)
	out := ZeroRadius(env, nil, BinarySpace{Objs: seqObjs(8)}, 1.0)
	for _, o := range out {
		if o != nil {
			t.Fatal("output for empty player set")
		}
	}
}

func TestZeroRadiusDropsTopics(t *testing.T) {
	in := prefs.Identical(128, 128, 0.5, 19)
	_, env := runZR(t, in, 0.5, 20)
	if n := env.Board.TopicCount(); n != 0 {
		t.Fatalf("%d topics leaked", n)
	}
}

func BenchmarkZeroRadius1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		in := prefs.Identical(1024, 1024, 0.5, uint64(i))
		env, _ := newTestEnv(b, in, uint64(i)+1)
		_ = ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), 0.5)
	}
}
