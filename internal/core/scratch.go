package core

import (
	"tellme/internal/arena"
	"tellme/internal/bitvec"
	"tellme/internal/rng"
)

// coScratch is the coordinator's region allocator: per-call working
// memory of the algorithm bodies (recursion-tree nodes, partition
// lists, stitched-vector backings) that the next call reuses instead of
// reallocating. It lives on the Env and is owned by the coordinator
// goroutine — algorithms allocate from it only between phases; phase
// bodies at most write into rows handed out before the phase started
// (the barrier publishes those writes), never allocate.
//
// Discipline (DESIGN.md §11): every algorithm takes a mark on entry and
// releases it on exit via defer, so nested calls (LargeRadius →
// SmallRadius → ZeroRadius) unwind LIFO even when an Abort panic cuts
// through the recursion. Values that outlive the call — every returned
// output — must be heap-allocated or cloned out, never arena-backed.
type coScratch struct {
	a        arena.Arena
	nodes    arena.Slab[zrNode]
	nodePtrs arena.Slab[*zrNode]
	lists    arena.Slab[[]int]
	u32Lists arena.Slab[[]uint32]
	vecs     arena.Slab[bitvec.Vector]
	partials arena.Slab[bitvec.Partial]

	// posOf maps a player id to its index in the players slice of the
	// positional algorithm call currently running phases (see fillPos).
	// Persistent rather than arena-backed: it is refilled, never
	// cleared, so entries for players outside the current call are
	// stale — and never read, because phases only ever run the call's
	// own participants.
	posOf []int
}

// coMark is a position across all of coScratch's slabs.
type coMark struct {
	a        arena.Mark
	nodes    arena.Pos
	nodePtrs arena.Pos
	lists    arena.Pos
	u32Lists arena.Pos
	vecs     arena.Pos
	partials arena.Pos
}

func (s *coScratch) mark() coMark {
	return coMark{
		a:        s.a.Mark(),
		nodes:    s.nodes.Mark(),
		nodePtrs: s.nodePtrs.Mark(),
		lists:    s.lists.Mark(),
		u32Lists: s.u32Lists.Mark(),
		vecs:     s.vecs.Mark(),
		partials: s.partials.Mark(),
	}
}

func (s *coScratch) release(m coMark) {
	s.a.Release(m.a)
	s.nodes.Release(m.nodes)
	s.nodePtrs.Release(m.nodePtrs)
	s.lists.Release(m.lists)
	s.u32Lists.Release(m.u32Lists)
	s.vecs.Release(m.vecs)
	s.partials.Release(m.partials)
}

// fillPos refills posOf for a call over players whose ids are < n and
// returns it. Refilling is idempotent for nested calls over the same
// players slice (SmallRadius's phases stay valid across the ZeroRadius
// calls it makes per partition part), and an outer algorithm that runs
// phases after a nested call over *different* players (LargeRadius
// after its per-group SmallRadius runs) must refill before those
// phases — its Step 4 ZeroRadius over the full player set does exactly
// that.
func (s *coScratch) fillPos(n int, players []int) []int {
	if len(s.posOf) < n {
		s.posOf = make([]int, n)
	}
	for i, p := range players {
		s.posOf[p] = i
	}
	return s.posOf
}

// iota fills an arena-backed slice with [0, n).
func (s *coScratch) iota(n int) []int {
	out := s.a.Ints(n)
	for i := range out {
		out[i] = i
	}
	return out
}

// splitHalfArena is splitHalf with the shuffled copy taken from the
// scratch arena — same coin consumption, same halves.
func splitHalfArena(s *coScratch, r *rng.Rand, ids []int) (a, b []int) {
	shuffled := s.a.CopyInts(ids)
	r.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	half := (len(shuffled) + 1) / 2
	return shuffled[:half:half], shuffled[half:]
}

// assignPartsArena is assignParts with every slice — the part headers
// and the shared backing — taken from the scratch arena. Identical coin
// consumption and part contents.
func assignPartsArena(s *coScratch, r *rng.Rand, ids []int, parts int) [][]int {
	assign := s.a.Ints(len(ids))
	counts := s.a.Ints(parts)
	for i := range ids {
		a := r.Intn(parts)
		assign[i] = a
		counts[a]++
	}
	backing := s.a.Ints(len(ids))
	out := s.lists.Make(parts)
	off := 0
	for a, c := range counts {
		out[a] = backing[off : off : off+c]
		off += c
	}
	for i, id := range ids {
		a := assign[i]
		out[a] = append(out[a], id)
	}
	return out
}
