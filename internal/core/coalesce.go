package core

import (
	"math"
	"sort"

	"tellme/internal/bitvec"
)

// Coalesce implements Algorithm Coalesce (Fig. 6): the deterministic,
// probe-free clustering step of Large Radius.
//
// Input: a multiset of vectors (possibly with '?' entries — distances
// are the ?-ignoring d~), a distance parameter d, and a frequency
// parameter alpha. The threshold is alpha·len(vecs), fixed at entry.
//
// Guarantees (Theorem 5.3): the output has at most 1/alpha vectors; if a
// sub-multiset VT of size ≥ alpha·len(vecs) has pairwise distance ≤ d,
// then exactly one output vector v* is closest to every member of VT,
// with d~(v*, v) ≤ 2d for all v ∈ VT and at most 5d/alpha '?' entries.
//
// The result is deterministic: it depends only on the multiset content,
// never on input order, so all players compute the same output — the
// property Large Radius relies on.
func Coalesce(vecs []bitvec.Partial, d int, alpha float64) []bitvec.Partial {
	if len(vecs) == 0 {
		return nil
	}
	if alpha <= 0 || alpha > 1 {
		panic("core: Coalesce alpha out of (0,1]")
	}
	threshold := int(math.Ceil(alpha * float64(len(vecs))))
	if threshold < 1 {
		threshold = 1
	}

	// Work on an index set sorted lexicographically so "lexicographically
	// first vector in V" is an O(1) scan and the result is order-free.
	order := make([]int, len(vecs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vecs[order[a]].Less(vecs[order[b]])
	})
	alive := make([]bool, len(vecs))
	for i := range alive {
		alive[i] = true
	}
	nAlive := len(vecs)

	ballSize := func(i int) int {
		c := 0
		for j := range vecs {
			if alive[j] && vecs[i].DistKnown(vecs[j]) <= d {
				c++
			}
		}
		return c
	}

	// Steps 1–2: greedy ball cover.
	var a []bitvec.Partial
	for nAlive > 0 {
		// Step 2a: simultaneously remove all vectors with small balls.
		toRemove := make([]int, 0)
		for i := range vecs {
			if alive[i] && ballSize(i) < threshold {
				toRemove = append(toRemove, i)
			}
		}
		for _, i := range toRemove {
			alive[i] = false
			nAlive--
		}
		if nAlive == 0 {
			break
		}
		// Step 2b: lexicographically first remaining vector.
		var pick int = -1
		for _, i := range order {
			if alive[i] {
				pick = i
				break
			}
		}
		// Step 2c: add it and remove its ball.
		a = append(a, vecs[pick])
		for j := range vecs {
			if alive[j] && vecs[pick].DistKnown(vecs[j]) <= d {
				alive[j] = false
				nAlive--
			}
		}
	}

	// Step 4: merge near pairs (≤ 5d) into wildcard vectors until no two
	// output vectors are close. Scanning pairs in a fixed lexicographic
	// order keeps the procedure deterministic; the final set is the same
	// regardless (the merge relation is confluent here because merging
	// only rewrites disagreeing coordinates to '?').
	b := append([]bitvec.Partial(nil), a...)
	for {
		merged := false
		sort.SliceStable(b, func(x, y int) bool { return b[x].Less(b[y]) })
	scan:
		for i := 0; i < len(b); i++ {
			for j := i + 1; j < len(b); j++ {
				if b[i].DistKnown(b[j]) <= 5*d {
					v := b[i].Merge(b[j])
					nb := append([]bitvec.Partial(nil), b[:i]...)
					nb = append(nb, b[i+1:j]...)
					nb = append(nb, b[j+1:]...)
					nb = append(nb, v)
					b = nb
					merged = true
					break scan
				}
			}
		}
		if !merged {
			break
		}
	}
	sort.SliceStable(b, func(x, y int) bool { return b[x].Less(b[y]) })
	return b
}
