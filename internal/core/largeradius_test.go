package core

import (
	"testing"

	"tellme/internal/bitvec"
	"tellme/internal/prefs"
)

func TestVirtualSpaceProbe(t *testing.T) {
	pl, e := singlePlayer(t, "01100110", 40)
	space := &VirtualSpace{
		GroupObjs: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}},
		Cands: [][]bitvec.Partial{
			{part(t, "1111"), part(t, "0110")},
			{part(t, "0110"), part(t, "0000")},
		},
		Bound: 0,
	}
	if space.Len() != 2 {
		t.Fatal("Len")
	}
	if got := space.Probe(pl, 0); got != 1 {
		t.Fatalf("group 0 chose %d", got)
	}
	if got := space.Probe(pl, 1); got != 0 {
		t.Fatalf("group 1 chose %d", got)
	}
	if e.Charged(0) == 0 {
		t.Fatal("virtual probes performed no real probes")
	}
}

func TestLargeRadiusErrorBound(t *testing.T) {
	// Theorem 5.4: output error O(D/α) for typical players. We check a
	// concrete constant (≤ 8·D/α) that holds comfortably at this scale.
	in := prefs.Planted(512, 512, 0.5, 24, 50)
	env, _ := newTestEnv(t, in, 51)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 24)
	c := in.Communities[0]
	limit := 8 * 24 * 2 // 8·D/α
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e > limit {
			t.Fatalf("member %d error %d > %d", p, e, limit)
		}
	}
}

func TestLargeRadiusTypicalPlayersAgree(t *testing.T) {
	// After Step 4 all typical players should share one output vector.
	in := prefs.Planted(512, 512, 0.5, 20, 52)
	env, _ := newTestEnv(t, in, 53)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 20)
	c := in.Communities[0]
	first := out[c.Members[0]]
	agree := 0
	for _, p := range c.Members {
		if out[p].Equal(first) {
			agree++
		}
	}
	if agree < len(c.Members)*9/10 {
		t.Fatalf("only %d/%d typical players agree on the output", agree, len(c.Members))
	}
}

func TestLargeRadiusUnknownBudget(t *testing.T) {
	// The paper allows up to O(D/α) '?' entries.
	in := prefs.Planted(512, 512, 0.5, 24, 54)
	env, _ := newTestEnv(t, in, 55)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 24)
	c := in.Communities[0]
	limit := 8 * 24 * 2
	for _, p := range c.Members {
		if q := out[p].UnknownCount(); q > limit {
			t.Fatalf("member %d has %d ?s", p, q)
		}
	}
}

func TestLargeRadiusEmptyInputs(t *testing.T) {
	in := prefs.Planted(16, 16, 0.5, 4, 56)
	env, _ := newTestEnv(t, in, 57)
	out := LargeRadius(env, nil, seqObjs(16), 0.5, 4)
	for _, o := range out {
		if o.Len() != 0 {
			t.Fatal("output for empty players")
		}
	}
}

func TestLargeRadiusDeterministic(t *testing.T) {
	in := prefs.Planted(256, 256, 0.5, 16, 58)
	run := func() []string {
		env, _ := newTestEnv(t, in, 59)
		out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 16)
		ss := make([]string, in.N)
		for p := range ss {
			ss[p] = out[p].String()
		}
		return ss
	}
	a, b := run(), run()
	for p := range a {
		if a[p] != b[p] {
			t.Fatalf("nondeterministic at player %d", p)
		}
	}
}

func TestLargeRadiusNoTopicLeak(t *testing.T) {
	in := prefs.Planted(128, 128, 0.5, 12, 60)
	env, _ := newTestEnv(t, in, 61)
	_ = LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 12)
	if n := env.Board.TopicCount(); n != 0 {
		t.Fatalf("%d topics leaked", n)
	}
}

func TestLargeRadiusSingleGroupDegenerate(t *testing.T) {
	// d small enough that there is only one group: Large Radius should
	// still return sane outputs (the dispatcher wouldn't route here, but
	// the function must not break).
	in := prefs.Planted(128, 128, 0.5, 4, 62)
	env, _ := newTestEnv(t, in, 63)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 4)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e > 60 {
			t.Fatalf("member %d error %d in degenerate single group", p, e)
		}
	}
}
