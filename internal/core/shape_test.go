package core

// Tests for non-square instance shapes (m ≠ n) and simultaneous
// multi-community recovery — cases the paper handles by reduction
// ("when m > n each player simulates ⌈m/n⌉ players; if m < n add dummy
// objects") but which the implementation supports directly.

import (
	"testing"

	"tellme/internal/prefs"
)

func TestZeroRadiusWideMatrix(t *testing.T) {
	// m = 4n: more objects than players.
	in := prefs.Identical(128, 512, 0.5, 90)
	env, _ := newTestEnv(t, in, 91)
	out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), 0.5)
	c := in.Communities[0]
	for _, p := range c.Members {
		for j := 0; j < in.M; j++ {
			if byte(out[p][j]) != c.Center.Get(j) {
				t.Fatalf("member %d wrong at %d (wide matrix)", p, j)
			}
		}
	}
	// cost should still be well below m
	var worst int64
	for p := 0; p < in.N; p++ {
		if pr := env.Engine.Charged(p); pr > worst {
			worst = pr
		}
	}
	if worst >= int64(in.M) {
		t.Fatalf("wide matrix cost %d ≥ m", worst)
	}
}

func TestZeroRadiusTallMatrix(t *testing.T) {
	// n = 4m: more players than objects.
	in := prefs.Identical(512, 128, 0.5, 92)
	env, _ := newTestEnv(t, in, 93)
	out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), 0.5)
	c := in.Communities[0]
	for _, p := range c.Members {
		for j := 0; j < in.M; j++ {
			if byte(out[p][j]) != c.Center.Get(j) {
				t.Fatalf("member %d wrong at %d (tall matrix)", p, j)
			}
		}
	}
}

func TestSmallRadiusWideMatrix(t *testing.T) {
	in := prefs.Planted(128, 384, 0.5, 4, 94)
	env, _ := newTestEnv(t, in, 95)
	out := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 4, 0)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := out[p].Dist(in.Truth[p]); e > 20 {
			t.Fatalf("member %d error %d (wide)", p, e)
		}
	}
}

func TestLargeRadiusWideMatrix(t *testing.T) {
	in := prefs.Planted(256, 512, 0.5, 32, 96)
	env, _ := newTestEnv(t, in, 97)
	out := LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 32)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := in.Err(p, out[p]); e > 8*32*2 {
			t.Fatalf("member %d error %d (wide)", p, e)
		}
	}
}

func TestZeroRadiusMultiCommunitySimultaneous(t *testing.T) {
	// Three identical-taste communities recovered by ONE run: ZeroRadius
	// with α = the smallest community fraction serves them all at once.
	in := prefs.MultiCommunity(300, 300, []prefs.CommunitySpec{
		{Alpha: 0.4, D: 0},
		{Alpha: 0.3, D: 0},
		{Alpha: 0.2, D: 0},
	}, 98)
	env, _ := newTestEnv(t, in, 99)
	out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), 0.2)
	for ci, c := range in.Communities {
		for _, p := range c.Members {
			for j := 0; j < in.M; j++ {
				if byte(out[p][j]) != c.Center.Get(j) {
					t.Fatalf("community %d member %d wrong at %d", ci, p, j)
				}
			}
		}
	}
}

func TestRunCounters(t *testing.T) {
	in := prefs.Planted(256, 256, 0.5, 32, 100)
	env, _ := newTestEnv(t, in, 101)
	_ = LargeRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 32)
	counts := env.RunCounts()
	if counts["LargeRadius"] != 1 {
		t.Fatalf("LargeRadius count %d", counts["LargeRadius"])
	}
	if counts["SmallRadius"] < 1 {
		t.Fatal("no SmallRadius sub-runs recorded")
	}
	if counts["ZeroRadius"] < counts["SmallRadius"] {
		t.Fatalf("ZeroRadius %d < SmallRadius %d", counts["ZeroRadius"], counts["SmallRadius"])
	}
	if counts["Coalesce"] < 1 {
		t.Fatal("no Coalesce runs recorded")
	}
}

func TestCounterString(t *testing.T) {
	names := map[Counter]string{
		CountZeroRadius:  "ZeroRadius",
		CountSmallRadius: "SmallRadius",
		CountLargeRadius: "LargeRadius",
		CountCoalesce:    "Coalesce",
		Counter(99):      "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}
