package core

// Validation of the cost model: the simulator normally reports "max
// probes per player" as the round count; here full algorithms execute
// under sim.LockstepRunner — the strict one-probe-per-round semantics of
// the paper's model — and the realized round count must equal the sum
// over phases of the per-phase max, which is what Clock-style accounting
// measures.

import (
	"context"
	"testing"

	"tellme/internal/billboard"
	"tellme/internal/ints"
	"tellme/internal/prefs"
	"tellme/internal/probe"
	"tellme/internal/rng"
	"tellme/internal/sim"
)

// accountingLockstep wraps a LockstepRunner and, per phase, accumulates
// the max per-player probe delta — the simulator's usual metric — so it
// can be compared with the gate's true round count.
type accountingLockstep struct {
	inner  *sim.LockstepRunner
	engine *probe.Engine
	rounds int64
	snap   []int64
}

func (r *accountingLockstep) Phase(ctx context.Context, players []int, f func(p int)) error {
	r.snap = r.engine.Snapshot(r.snap)
	err := r.inner.Phase(ctx, players, f)
	r.rounds += r.engine.MaxDelta(r.snap)
	return err
}

func (r *accountingLockstep) PhaseAll(ctx context.Context, n int, f func(p int)) error {
	return r.Phase(ctx, ints.Iota(n), f)
}

func TestZeroRadiusUnderStrictLockstep(t *testing.T) {
	in := prefs.Identical(64, 64, 0.5, 31)
	board := billboard.New(in.N, in.M)
	gate := sim.NewGate()
	engine := probe.NewEngine(in, board, rng.NewSource(32),
		probe.WithProbeHook(func(int) { gate.Tick() }))
	runner := &accountingLockstep{inner: &sim.LockstepRunner{G: gate}, engine: engine}
	env := NewEnv(engine, runner, rng.NewSource(33), DefaultConfig())

	out := ZeroRadiusBits(env, allPlayers(in.N), seqObjs(in.M), 0.5)

	// correctness unchanged under the strict model
	c := in.Communities[0]
	for _, p := range c.Members {
		for j := 0; j < in.M; j++ {
			if byte(out[p][j]) != c.Center.Get(j) {
				t.Fatalf("member %d wrong at %d under lockstep", p, j)
			}
		}
	}
	// the gate's true round count equals the phase-accounted rounds
	if gate.Rounds() != runner.rounds {
		t.Fatalf("strict rounds %d != accounted rounds %d", gate.Rounds(), runner.rounds)
	}
	// and the per-player max is a lower bound on (and here, close to)
	// the round count
	var maxProbes int64
	for p := 0; p < in.N; p++ {
		if c := engine.Charged(p); c > maxProbes {
			maxProbes = c
		}
	}
	if maxProbes > gate.Rounds() {
		t.Fatalf("max per-player probes %d exceeds strict rounds %d", maxProbes, gate.Rounds())
	}
}

func TestSmallRadiusUnderStrictLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("lockstep is one goroutine per player")
	}
	in := prefs.Planted(48, 48, 0.5, 2, 34)
	board := billboard.New(in.N, in.M)
	gate := sim.NewGate()
	engine := probe.NewEngine(in, board, rng.NewSource(35),
		probe.WithProbeHook(func(int) { gate.Tick() }))
	runner := &accountingLockstep{inner: &sim.LockstepRunner{G: gate}, engine: engine}
	env := NewEnv(engine, runner, rng.NewSource(36), DefaultConfig())

	sr := SmallRadius(env, allPlayers(in.N), seqObjs(in.M), 0.5, 2, 2)
	c := in.Communities[0]
	for _, p := range c.Members {
		if e := sr[p].Dist(in.Truth[p]); e > 10 {
			t.Fatalf("member %d error %d under lockstep", p, e)
		}
	}
	if gate.Rounds() != runner.rounds {
		t.Fatalf("strict rounds %d != accounted rounds %d", gate.Rounds(), runner.rounds)
	}
}
